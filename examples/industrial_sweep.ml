(* Industrial-scale study in the style of Section VI-B.

   Generates a synthetic PSA model, dynamizes an increasing share of its
   most important basic events (Fussell-Vesely ranking, trigger chains
   among equal-importance groups) and reports how the failure frequency and
   the analysis time evolve — the experiment behind the paper's sweep table
   and Figure 2.

   Run with:  dune exec examples/industrial_sweep.exe            (small model)
              dune exec examples/industrial_sweep.exe -- medium  (bigger)  *)

let () =
  let params =
    match if Array.length Sys.argv > 1 then Sys.argv.(1) else "small" with
    | "medium" -> Industrial.medium
    | "model1" -> Industrial.model_1
    | "model2" -> Industrial.model_2
    | _ -> Industrial.small
  in
  let tree, gen_seconds =
    Sdft_util.Timer.time (fun () -> Industrial.generate params)
  in
  Format.printf "generated model: %a (%.2fs)@." Fault_tree.pp_stats
    (Fault_tree.stats tree) gen_seconds;
  let chain_groups = Industrial.run_event_groups tree in
  Format.printf "%d failure-in-operation events form %d triggering chains@.@."
    (List.length (Industrial.run_events tree))
    (List.length chain_groups);

  let table =
    Sdft_util.Table.create ~title:"Dynamization sweep (24h, k=1, cutoff 1e-15)"
      ~columns:
        [ "% dyn. BE"; "% trigg. BE"; "failure freq."; "MCS"; "dyn. MCS"; "time" ]
  in
  let static_rea, n_static =
    Sdft_analysis.static_rare_event ~engine:Sdft_analysis.Bdd_engine tree
  in
  Sdft_util.Table.add_row table
    [ "0"; "0"; Sdft_util.Table.cell_sci static_rea; string_of_int n_static; "0"; "-" ];
  (* One quantification cache across the whole sweep: industrial models
     repeat the same component models across trains, so many cutset
     sub-models are isomorphic within and across the sweep points. *)
  let cache = Quant_cache.create () in
  let last_dynamized = ref None in
  List.iter
    (fun percent ->
      let config =
        {
          Dynamize.default_config with
          dynamic_fraction = float_of_int percent /. 100.0;
          trigger_fraction = float_of_int percent /. 1000.0;
          repair_rate = Some 0.05;
          chain_groups = Some chain_groups;
        }
      in
      let d = Dynamize.run ~config tree in
      let options =
        { Sdft_analysis.default_options with engine = Sdft_analysis.Bdd_engine }
      in
      let result, seconds =
        Sdft_util.Timer.time (fun () ->
            Sdft_analysis.analyze ~options ~cache d.Dynamize.sd)
      in
      Sdft_util.Table.add_row table
        [
          string_of_int percent;
          Printf.sprintf "%.1f" (float_of_int percent /. 10.0);
          Sdft_util.Table.cell_sci result.Sdft_analysis.total;
          string_of_int result.Sdft_analysis.n_cutsets;
          string_of_int result.Sdft_analysis.n_dynamic_cutsets;
          Sdft_util.Table.cell_duration seconds;
        ];
      if percent = 100 then begin
        last_dynamized := Some d.Dynamize.sd;
        Format.printf
          "@.dynamic events per minimal cutset at 100%% dynamization:@.";
        Sdft_util.Histogram.print_ascii (Sdft_analysis.dynamic_histogram result)
      end)
    [ 10; 20; 30; 40; 50; 100 ];
  Sdft_util.Table.print table;
  Format.printf "quantification cache: %d hits / %d misses@."
    (Quant_cache.hits cache) (Quant_cache.misses cache);

  (* Horizon sweep on the fully dynamized model, sharing a fresh cache
     across the points through Sdft_analysis.sweep. *)
  match !last_dynamized with
  | None -> ()
  | Some sd ->
    let horizons = [ 8.0; 24.0; 72.0 ] in
    let option_sets =
      List.map
        (fun horizon ->
          {
            Sdft_analysis.default_options with
            engine = Sdft_analysis.Bdd_engine;
            horizon;
          })
        horizons
    in
    let points, sweep_cache = Sdft_analysis.sweep sd option_sets in
    let htable =
      Sdft_util.Table.create ~title:"Horizon sweep (100% dynamized, shared cache)"
        ~columns:[ "horizon"; "failure freq."; "cache hits"; "cache misses" ]
    in
    List.iter
      (fun (p : Sdft_analysis.sweep_point) ->
        Sdft_util.Table.add_row htable
          [
            Printf.sprintf "%.0fh" p.Sdft_analysis.sweep_options.Sdft_analysis.horizon;
            Sdft_util.Table.cell_sci p.Sdft_analysis.sweep_result.Sdft_analysis.total;
            string_of_int p.Sdft_analysis.cache_hits;
            string_of_int p.Sdft_analysis.cache_misses;
          ])
      points;
    Sdft_util.Table.print htable;
    Format.printf "horizon-sweep cache: %d hits / %d misses@."
      (Quant_cache.hits sweep_cache) (Quant_cache.misses sweep_cache)

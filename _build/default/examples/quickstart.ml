(* Quickstart: build a small SD fault tree with the public API, analyse it,
   and cross-check the answer three ways.

   The system: a primary cooling pump (runs from the start, repairable) and
   a standby pump (switched on when the primary fails), plus a shared power
   supply. Cooling is lost when both pumps are failed at the same time, or
   when power is lost.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* 1. Describe the static structure: basic events and gates. *)
  let b = Fault_tree.Builder.create () in
  let power = Fault_tree.Builder.basic b ~prob:1e-4 "power" in
  let primary = Fault_tree.Builder.basic b "primary_pump" in
  let standby = Fault_tree.Builder.basic b "standby_pump" in
  let primary_down =
    Fault_tree.Builder.gate b "primary_down" Fault_tree.Or [ primary ]
  in
  ignore primary_down;
  let pumps_down =
    Fault_tree.Builder.gate b "pumps_down" Fault_tree.And [ primary; standby ]
  in
  let top =
    Fault_tree.Builder.gate b "cooling_lost" Fault_tree.Or [ pumps_down; power ]
  in
  let tree = Fault_tree.Builder.build b ~top in

  (* 2. Make the pumps dynamic. The primary fails in operation about once
     per 1000 hours and takes ~20 hours to repair. The standby is switched
     on by the failure of the primary (the "primary_down" gate), does not
     degrade while idle, and is repaired even while switched off. *)
  let sd =
    Sdft.make tree
      ~dynamic:
        [
          ("primary_pump", Dbe.exponential ~lambda:1e-3 ~mu:5e-2 ());
          ( "standby_pump",
            Dbe.triggered_exponential ~lambda:1e-3 ~mu:5e-2 ~passive_factor:0.0
              ~repair_when_off:true () );
        ]
      ~triggers:[ ("primary_down", "standby_pump") ]
  in
  Format.printf "model: %a@." Sdft.pp_summary sd;

  (* 3. Check what the triggering structure costs (Section V-A). *)
  Format.printf "%a@." (Sdft_classify.pp_report sd) (Sdft_classify.report sd);

  (* 4. Run the scalable two-phase analysis over a 24-hour mission. *)
  let options = { Sdft_analysis.default_options with horizon = 24.0 } in
  let result = Sdft_analysis.analyze ~options sd in
  Format.printf "@.%a@.@." Sdft_analysis.pp_summary result;
  List.iter
    (fun (info : Sdft_analysis.cutset_info) ->
      Format.printf "  %a: p~ = %.3e (%d dynamic events, %d chain states)@."
        (Cutset.pp tree) info.cutset info.probability info.n_dynamic
        info.product_states)
    result.cutsets;

  (* 5. Cross-check: the model is small enough for the exact product chain
     and for Monte-Carlo simulation. *)
  let exact = Sdft_product.solve sd ~horizon:24.0 in
  let mc = Simulator.unreliability sd ~horizon:24.0 ~trials:200_000 in
  let lo, hi = Simulator.confidence_95 mc in
  Format.printf
    "@.cross-checks:@.  exact product chain: %.4e@.  Monte-Carlo (200k trials): %.4e (95%% CI [%.4e, %.4e])@."
    exact mc.Simulator.estimate lo hi

(* A repairable-plant study combining the extension features: modeling
   templates, beta-factor common-cause failures, mission unreliability vs
   steady-state unavailability, and parameter uncertainty.

   The plant: two cooling loops, each a running/standby pump pair built with
   Templates.standby_pair; plant cooling is lost when both loops are down or
   the shared heat sink is lost. The pump fail-to-start events of loop 1
   form a common-cause group.

   Run with: dune exec examples/availability_study.exe *)

let () =
  let b = Fault_tree.Builder.create () in
  let loop1, p1 =
    Templates.standby_pair b ~name:"loop1" ~p_start:2e-3 ~lambda:8e-4 ~mu:5e-2 ()
  in
  let loop2, p2 =
    Templates.standby_pair b ~name:"loop2" ~p_start:2e-3 ~lambda:8e-4 ~mu:5e-2 ()
  in
  let sink = Fault_tree.Builder.basic b ~prob:5e-5 "heat_sink" in
  let loops = Fault_tree.Builder.gate b "loops" Fault_tree.And [ loop1; loop2 ] in
  let top = Fault_tree.Builder.gate b "cooling_lost" Fault_tree.Or [ loops; sink ] in
  let pending = Templates.merge [ p1; p2 ] in
  let sd = Templates.make_sdft b ~top pending in
  Format.printf "%a@.@." Sdft.pp_summary sd;

  (* Mission unreliability over growing horizons. *)
  print_endline "mission unreliability (probability of losing cooling at least once):";
  List.iter
    (fun horizon ->
      let options = { Sdft_analysis.default_options with horizon } in
      let r = Sdft_analysis.analyze ~options sd in
      Printf.printf "  %4.0fh: %.4e (%d cutsets)\n" horizon
        r.Sdft_analysis.total r.Sdft_analysis.n_cutsets)
    [ 24.0; 168.0; 720.0 ];

  (* Long-run unavailability: repairs make it converge. *)
  (match Availability.analyze sd with
  | Some r ->
    Printf.printf "\nsteady-state unavailability: %.4e\n" r.Availability.unavailability
  | None -> print_endline "\nsteady-state unavailability undefined (unrepairable event)");

  (* The effect of a common-cause group across the two loops' running
     pumps, on the static study. *)
  let tree = Sdft.tree sd in
  let with_ccf =
    Ccf.apply tree
      [
        {
          Ccf.name = "pump_start";
          members =
            [ "loop1.A.start"; "loop1.B.start"; "loop2.A.start"; "loop2.B.start" ];
          beta = 0.1;
        };
      ]
  in
  let rea_before, _ = Sdft_analysis.static_rare_event tree in
  let rea_after, _ = Sdft_analysis.static_rare_event with_ccf in
  Printf.printf
    "\nstatic frequency without CCF: %.4e, with a beta=0.1 group across all \
     four pumps' start failures: %.4e (x%.1f)\n"
    rea_before rea_after (rea_after /. rea_before);

  (* Parameter uncertainty on the CCF'd static model. *)
  let cutsets = Mocus.minimal_cutsets with_ccf in
  let stats =
    Uncertainty.propagate with_ccf cutsets
      ~spec:(fun _ -> Uncertainty.Lognormal { error_factor = 3.0 })
  in
  Format.printf "\nuncertainty (EF=3 on every event): %a@." Uncertainty.pp_stats stats

(* The fictive BWR safety study of Section VI-A.

   Reproduces the small-model experiment: the effect of repairs and of
   adding trigger dependencies (FEED&BLEED, then the second trains of RHR,
   EFW, ECC, SWS and CCW) on the computed core-damage frequency.

   Run with: dune exec examples/bwr_cooling.exe *)

let () =
  let tree = Bwr.static_tree () in
  Format.printf "BWR model: %a@." Fault_tree.pp_stats (Fault_tree.stats tree);
  let static_rea, n_mcs = Sdft_analysis.static_rare_event tree in
  Format.printf "static study: %d minimal cutsets, core damage frequency %.3e@.@."
    n_mcs static_rea;

  let table =
    Sdft_util.Table.create ~title:"Effect of repairs and triggers (24h, k=1)"
      ~columns:[ "setting"; "failure freq."; "analysis time" ]
  in
  Sdft_util.Table.add_row table
    [ "no timing"; Sdft_util.Table.cell_sci static_rea; "-" ];
  let row label config =
    let sd = Bwr.build config in
    let result, seconds =
      Sdft_util.Timer.time (fun () -> Sdft_analysis.analyze sd)
    in
    Sdft_util.Table.add_row table
      [
        label;
        Sdft_util.Table.cell_sci result.Sdft_analysis.total;
        Sdft_util.Table.cell_duration seconds;
      ]
  in
  row "dynamic, no repairs" Bwr.default_config;
  row "repair rate 1/100h" { Bwr.default_config with repair_rate = Some 0.01 };
  row "repair rate 1/10h" { Bwr.default_config with repair_rate = Some 0.1 };
  let base = { Bwr.default_config with repair_rate = Some 0.1 } in
  let labels =
    [ "+FEED&BLEED trigger"; "+RHR trigger"; "+EFW trigger"; "+ECC trigger";
      "+SWS trigger"; "+CCW trigger" ]
  in
  List.iteri
    (fun i label ->
      let triggers =
        List.filteri (fun j _ -> j <= i) Bwr.all_trigger_sites
      in
      row label { base with triggers })
    labels;
  Sdft_util.Table.print table;

  (* The paper reports that roughly half the cutsets contain dynamic events
     and how many extra events the triggering logic adds. *)
  let sd = Bwr.build { base with triggers = Bwr.all_trigger_sites } in
  let result = Sdft_analysis.analyze sd in
  Format.printf
    "@.fully dynamic model: %d of %d cutsets need Markov analysis;@."
    result.Sdft_analysis.n_dynamic_cutsets result.Sdft_analysis.n_cutsets;
  let h = Sdft_analysis.dynamic_histogram result in
  let dynamic_only_mean =
    (* mean over cutsets that have at least one dynamic event *)
    let num = ref 0 and acc = ref 0 in
    List.iter
      (fun (bucket, count) ->
        if bucket > 0 then begin
          num := !num + count;
          acc := !acc + (bucket * count)
        end)
      (Sdft_util.Histogram.buckets h);
    if !num = 0 then 0.0 else float_of_int !acc /. float_of_int !num
  in
  Format.printf
    "average dynamic events per dynamic cutset: %.2f, of which %.2f were added by triggering logic@."
    dynamic_only_mean
    (Sdft_analysis.mean_added_dynamic result);
  Format.printf "@.trigger gate classes:@.%a@."
    (Sdft_classify.pp_report sd)
    (Sdft_classify.report sd)

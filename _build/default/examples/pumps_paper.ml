(* The paper's running example, end to end (Examples 1-11).

   Walks through everything the paper demonstrates on the emergency cooling
   system with a water tank and two redundant pumps: the static analysis
   (scenarios, minimal cutsets, rare-event approximation), the SD version
   with a dynamic running pump and a triggered spare, the translation to an
   equivalent static tree, the per-cutset models, and the final numbers.

   Run with: dune exec examples/pumps_paper.exe *)

let section title = Format.printf "@.== %s ==@." title

let () =
  (* Example 1: the static fault tree. *)
  section "Example 1: static fault tree";
  let tree = Pumps.static_tree () in
  Format.printf "%a@." Fault_tree.pp_stats (Fault_tree.stats tree);
  let a = Option.get (Fault_tree.basic_index tree "a") in
  let d = Option.get (Fault_tree.basic_index tree "d") in
  let xi = Sdft_util.Int_set.of_list [ a; d ] in
  Format.printf "p({a,d}) = %.4e (paper: 2.988e-6)@."
    (Fault_tree.scenario_probability tree xi);

  (* Examples 7-8: minimal cutsets by MOCUS, checked against the BDD. *)
  section "Examples 7-8: minimal cutsets";
  let mcs = Mocus.minimal_cutsets tree in
  List.iter
    (fun c ->
      Format.printf "  %a  p = %.3e@." (Cutset.pp tree) c
        (Cutset.probability tree c))
    mcs;
  let bdd_mcs = Minsol.fault_tree_cutsets tree in
  Format.printf "BDD engine agrees: %b@."
    (List.sort Sdft_util.Int_set.compare mcs
    = List.sort Sdft_util.Int_set.compare bdd_mcs);
  Format.printf "rare-event approximation: %.4e@."
    (Cutset.rare_event_approximation tree mcs);
  Format.printf "exact (BDD Shannon expansion): %.4e@."
    (let m, root = Bdd.of_fault_tree tree in
     Bdd.probability m (Fault_tree.prob tree) root);

  (* Examples 2-3: the SD fault tree with dynamic b and triggered d. *)
  section "Examples 2-3: the SD fault tree";
  let sd = Pumps.sd_tree () in
  Format.printf "%a@." Sdft.pp_summary sd;
  let d_dbe = Sdft.dbe sd d in
  Format.printf "spare pump model: %a@." Dbe.pp d_dbe;
  Format.printf "worst-case failure probability within 24h: %.4e@."
    (Dbe.worst_case_failure_probability d_dbe ~horizon:24.0);

  (* Examples 4-6: the product Markov chain semantics, exact. *)
  section "Examples 4-6: product chain semantics";
  let built = Sdft_product.build sd in
  Format.printf "product chain: %d states, %d transitions@."
    built.Sdft_product.n_states
    (Ctmc.n_transitions built.Sdft_product.chain);
  let exact = Sdft_product.unreliability built ~horizon:24.0 in
  Format.printf "p(FT, 24h) = %.6e@." exact;

  (* Section V: translation and per-cutset quantification. *)
  section "Section V: translation FT-bar";
  let translation = Sdft_translate.translate sd ~horizon:24.0 in
  Format.printf "translated tree: %a@." Fault_tree.pp_stats
    (Fault_tree.stats translation.Sdft_translate.static_tree);
  Format.printf "same minimal cutsets: %b@."
    (List.sort Sdft_util.Int_set.compare
       (Mocus.minimal_cutsets translation.Sdft_translate.static_tree)
    = List.sort Sdft_util.Int_set.compare mcs);

  section "Section V-C: per-cutset models";
  List.iter
    (fun c ->
      let model = Cutset_model.build sd c in
      let q = Cutset_model.quantify model ~horizon:24.0 in
      Format.printf "  %a: p~ = %.4e (%d dynamic, %d added, %d states)@."
        (Cutset.pp tree) c q.Cutset_model.probability
        model.Cutset_model.n_dynamic_in_cutset
        model.Cutset_model.n_added_dynamic q.Cutset_model.product_states)
    mcs;

  section "Full analysis";
  let result = Sdft_analysis.analyze sd in
  Format.printf "%a@." Sdft_analysis.pp_summary result;
  Format.printf
    "static would have said %.4e; the time-aware analysis says %.4e; exact is %.6e@."
    (Cutset.rare_event_approximation tree mcs)
    result.Sdft_analysis.total exact

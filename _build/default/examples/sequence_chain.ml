(* Event trees as a source of long triggering chains (Section V-A).

   A loss-of-feedwater event tree demands four safety functions in order:
   high-pressure injection, depressurisation, low-pressure injection and
   long-term heat removal. Each function's standby equipment is started by
   the failure of the previous function — the event-tree ordering becomes a
   chain of triggers, which is exactly the modelling pattern the paper
   advocates for SD fault trees.

   Run with: dune exec examples/sequence_chain.exe *)

let make_function name ~p_start ~n_extra =
  {
    Event_tree.name;
    build_failure =
      (fun b ->
        let start =
          Fault_tree.Builder.basic b ~prob:p_start (name ^ ".start")
        in
        let run = Fault_tree.Builder.basic b (name ^ ".run") in
        let extras =
          List.init n_extra (fun i ->
              Fault_tree.Builder.basic b ~prob:5e-4
                (Printf.sprintf "%s.aux%d" name (i + 1)))
        in
        Fault_tree.Builder.gate b (name ^ ".fail") Fault_tree.Or
          (start :: run :: extras));
    demand_started = [ name ^ ".run" ];
  }

let () =
  let et =
    {
      Event_tree.initiator = "loss_of_feedwater";
      initiator_prob = 1e-2;
      functions =
        [
          make_function "HPI" ~p_start:2e-3 ~n_extra:2;
          make_function "DEP" ~p_start:1e-3 ~n_extra:1;
          make_function "LPI" ~p_start:2e-3 ~n_extra:2;
          make_function "RHR" ~p_start:1e-3 ~n_extra:2;
        ];
      outcome_of =
        (fun pattern ->
          (* Core damage when all injection paths are lost or heat removal
             fails after successful injection. *)
          match pattern with
          | [ true; true; _; _ ] -> Event_tree.Damage "CD"
          | [ true; false; true; _ ] -> Event_tree.Damage "CD"
          | [ _; _; _; true ] -> Event_tree.Damage "CD"
          | _ -> Event_tree.Ok)
    }
  in
  let n_damage =
    List.length
      (List.filter
         (fun (_, o) -> o = Event_tree.Damage "CD")
         (Event_tree.sequences et))
  in
  Format.printf "event tree: %d safety functions, %d damage sequences@."
    (List.length et.Event_tree.functions)
    n_damage;

  let lambda = 1e-3 in
  (* Baseline: every function's equipment runs (and can fail) from time
     zero — the conservative static-style treatment. *)
  let running name = (name ^ ".run", Dbe.exponential ~lambda ~mu:0.05 ()) in
  let without_chain =
    Event_tree.compile_sd et ~category:"CD"
      ~dynamic:(List.map running [ "HPI"; "DEP"; "LPI"; "RHR" ])
      ~demand_triggers:false ()
  in
  (* Chained: standby equipment is only demanded (and only degrades
     meaningfully) once the previous function has failed. *)
  let standby name =
    ( name ^ ".run",
      Dbe.triggered_exponential ~lambda ~mu:0.05 ~passive_factor:0.01 () )
  in
  let dynamic = running "HPI" :: List.map standby [ "DEP"; "LPI"; "RHR" ] in
  let with_chain = Event_tree.compile_sd et ~category:"CD" ~dynamic () in
  Format.printf "trigger chain: %d edges@."
    (List.length (Sdft.trigger_edges with_chain));
  Format.printf "%a@."
    (Sdft_classify.pp_report with_chain)
    (Sdft_classify.report with_chain);

  let horizon = 72.0 in
  let options = { Sdft_analysis.default_options with horizon } in
  let r_without = Sdft_analysis.analyze ~options without_chain in
  let r_with = Sdft_analysis.analyze ~options with_chain in
  Format.printf
    "@.core damage frequency over %gh:@.  all functions running from t=0:  %.4e@.  demand-triggered chain:          %.4e@."
    horizon r_without.Sdft_analysis.total r_with.Sdft_analysis.total;
  Format.printf
    "the chain accounts for the sequencing of demands and removes %.0f%% of the conservatism@."
    (100.0
    *. (r_without.Sdft_analysis.total -. r_with.Sdft_analysis.total)
    /. r_without.Sdft_analysis.total)

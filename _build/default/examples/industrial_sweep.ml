(* Industrial-scale study in the style of Section VI-B.

   Generates a synthetic PSA model, dynamizes an increasing share of its
   most important basic events (Fussell-Vesely ranking, trigger chains
   among equal-importance groups) and reports how the failure frequency and
   the analysis time evolve — the experiment behind the paper's sweep table
   and Figure 2.

   Run with:  dune exec examples/industrial_sweep.exe            (small model)
              dune exec examples/industrial_sweep.exe -- medium  (bigger)  *)

let () =
  let params =
    match if Array.length Sys.argv > 1 then Sys.argv.(1) else "small" with
    | "medium" -> Industrial.medium
    | "model1" -> Industrial.model_1
    | "model2" -> Industrial.model_2
    | _ -> Industrial.small
  in
  let tree, gen_seconds =
    Sdft_util.Timer.time (fun () -> Industrial.generate params)
  in
  Format.printf "generated model: %a (%.2fs)@." Fault_tree.pp_stats
    (Fault_tree.stats tree) gen_seconds;
  let chain_groups = Industrial.run_event_groups tree in
  Format.printf "%d failure-in-operation events form %d triggering chains@.@."
    (List.length (Industrial.run_events tree))
    (List.length chain_groups);

  let table =
    Sdft_util.Table.create ~title:"Dynamization sweep (24h, k=1, cutoff 1e-15)"
      ~columns:
        [ "% dyn. BE"; "% trigg. BE"; "failure freq."; "MCS"; "dyn. MCS"; "time" ]
  in
  let static_rea, n_static =
    Sdft_analysis.static_rare_event ~engine:Sdft_analysis.Bdd_engine tree
  in
  Sdft_util.Table.add_row table
    [ "0"; "0"; Sdft_util.Table.cell_sci static_rea; string_of_int n_static; "0"; "-" ];
  List.iter
    (fun percent ->
      let config =
        {
          Dynamize.default_config with
          dynamic_fraction = float_of_int percent /. 100.0;
          trigger_fraction = float_of_int percent /. 1000.0;
          repair_rate = Some 0.05;
          chain_groups = Some chain_groups;
        }
      in
      let d = Dynamize.run ~config tree in
      let options =
        { Sdft_analysis.default_options with engine = Sdft_analysis.Bdd_engine }
      in
      let result, seconds =
        Sdft_util.Timer.time (fun () -> Sdft_analysis.analyze ~options d.Dynamize.sd)
      in
      Sdft_util.Table.add_row table
        [
          string_of_int percent;
          Printf.sprintf "%.1f" (float_of_int percent /. 10.0);
          Sdft_util.Table.cell_sci result.Sdft_analysis.total;
          string_of_int result.Sdft_analysis.n_cutsets;
          string_of_int result.Sdft_analysis.n_dynamic_cutsets;
          Sdft_util.Table.cell_duration seconds;
        ];
      if percent = 100 then begin
        Format.printf
          "@.dynamic events per minimal cutset at 100%% dynamization:@.";
        Sdft_util.Histogram.print_ascii (Sdft_analysis.dynamic_histogram result)
      end)
    [ 10; 20; 30; 40; 50; 100 ];
  Sdft_util.Table.print table

examples/availability_study.ml: Availability Ccf Fault_tree Format List Mocus Printf Sdft Sdft_analysis Templates Uncertainty

examples/pumps_paper.mli:

examples/pumps_paper.ml: Bdd Ctmc Cutset Cutset_model Dbe Fault_tree Format List Minsol Mocus Option Pumps Sdft Sdft_analysis Sdft_product Sdft_translate Sdft_util

examples/bwr_cooling.ml: Bwr Fault_tree Format List Sdft_analysis Sdft_classify Sdft_util

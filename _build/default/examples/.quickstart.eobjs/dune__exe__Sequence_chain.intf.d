examples/sequence_chain.mli:

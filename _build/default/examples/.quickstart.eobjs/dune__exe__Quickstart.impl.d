examples/quickstart.ml: Cutset Dbe Fault_tree Format List Sdft Sdft_analysis Sdft_classify Sdft_product Simulator

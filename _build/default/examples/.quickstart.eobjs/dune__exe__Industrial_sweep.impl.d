examples/industrial_sweep.ml: Array Dynamize Fault_tree Format Industrial List Printf Quant_cache Sdft_analysis Sdft_util Sys

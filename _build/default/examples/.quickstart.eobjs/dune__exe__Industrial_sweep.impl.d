examples/industrial_sweep.ml: Array Dynamize Fault_tree Format Industrial List Printf Sdft_analysis Sdft_util Sys

examples/quickstart.mli:

examples/industrial_sweep.mli:

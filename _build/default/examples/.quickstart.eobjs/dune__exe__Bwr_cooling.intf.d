examples/bwr_cooling.mli:

examples/sequence_chain.ml: Dbe Event_tree Fault_tree Format List Printf Sdft Sdft_analysis Sdft_classify

(* Tests for the bundled models: the running example, the BWR safety study,
   the industrial generator and the importance-driven dynamization. *)

module Int_set = Sdft_util.Int_set

(* Pumps *)

let test_pumps_mcs_count () =
  let mcs = Mocus.minimal_cutsets (Pumps.static_tree ()) in
  Alcotest.(check int) "five MCS" 5 (List.length mcs)

let test_pumps_sd_valid () =
  let sd = Pumps.sd_tree () in
  Alcotest.(check int) "2 dynamic" 2 (List.length (Sdft.dynamic_basics sd));
  Alcotest.(check int) "1 trigger" 1 (List.length (Sdft.trigger_edges sd))

(* BWR *)

let test_bwr_structure () =
  let tree = Bwr.static_tree () in
  let s = Fault_tree.stats tree in
  Alcotest.(check bool) "dozens of basics" true (s.Fault_tree.n_basic >= 40);
  Alcotest.(check bool) "gates" true (s.Fault_tree.n_gate >= 20);
  (* All five systems with two trains present. *)
  List.iter
    (fun name ->
      if Fault_tree.gate_index tree name = None then
        Alcotest.failf "missing gate %s" name)
    [ "ECC.T1"; "ECC.T2"; "EFW.T1"; "RHR.T2"; "CCW.T1"; "SWS.T2"; "RHR.fail"; "FB.fail" ]

let test_bwr_ccf_flag () =
  let without = Bwr.static_tree () in
  let with_ccf = Bwr.static_tree ~include_ccf:true () in
  Alcotest.(check bool) "ccf adds events" true
    (Fault_tree.n_basics with_ccf > Fault_tree.n_basics without);
  Alcotest.(check bool) "ccf event present" true
    (Fault_tree.basic_index with_ccf "ECC.ccf" <> None)

let test_bwr_ccf_defeats_redundancy () =
  (* With CCF included, a single support-system CCF event plus the
     initiator forms a dominant order-2 cutset. *)
  let tree = Bwr.static_tree ~include_ccf:true () in
  let mcs = Mocus.minimal_cutsets tree in
  let ie = Option.get (Fault_tree.basic_index tree "IE.loss_of_feedwater") in
  let ccf = Option.get (Fault_tree.basic_index tree "CCW.ccf") in
  Alcotest.(check bool) "{IE, CCW.ccf} is an MCS" true
    (List.exists (Int_set.equal (Int_set.of_list [ ie; ccf ])) mcs);
  let rea_ccf, _ = Sdft_analysis.static_rare_event tree in
  let rea_plain, _ = Sdft_analysis.static_rare_event (Bwr.static_tree ()) in
  Alcotest.(check bool) "CCF dominates" true (rea_ccf > 2.0 *. rea_plain)

let test_bwr_static_equals_dynamic_norepair () =
  (* Without repairs or triggers, the worst-case translation equals the
     static study: same REA. *)
  let static_rea, _ = Sdft_analysis.static_rare_event (Bwr.static_tree ()) in
  let sd = Bwr.build Bwr.default_config in
  let r = Sdft_analysis.analyze sd in
  if Float.abs (static_rea -. r.Sdft_analysis.total) > 1e-3 *. static_rea then
    Alcotest.failf "static %.6e vs dynamic-norepair %.6e" static_rea
      r.Sdft_analysis.total

let test_bwr_repairs_reduce_frequency () =
  let freq config =
    (Sdft_analysis.analyze (Bwr.build config)).Sdft_analysis.total
  in
  let no_repair = freq Bwr.default_config in
  let slow = freq { Bwr.default_config with repair_rate = Some 0.01 } in
  let fast = freq { Bwr.default_config with repair_rate = Some 0.1 } in
  Alcotest.(check bool) "slow repair helps" true (slow < no_repair);
  Alcotest.(check bool) "fast repair helps more" true (fast < slow)

let test_bwr_triggers_reduce_frequency () =
  let base = { Bwr.default_config with repair_rate = Some 0.1 } in
  let freq config =
    (Sdft_analysis.analyze (Bwr.build config)).Sdft_analysis.total
  in
  let without = freq base in
  let with_all = freq { base with triggers = Bwr.all_trigger_sites } in
  Alcotest.(check bool) "triggers reduce" true (with_all < without)

let test_bwr_trigger_classes () =
  let sd =
    Bwr.build
      { Bwr.default_config with repair_rate = Some 0.1; triggers = Bwr.all_trigger_sites }
  in
  let report = Sdft_classify.report sd in
  (* RHR.T1, SWS.T1 and RHR.fail (whose subtrees have at most one dynamic
     child per OR gate) have static branching; the ECC/EFW/CCW train gates
     see two dynamic subtrees under an OR (their own pump and the support
     chain), hence static joins. Nothing is general: the BWR structure is
     exactly the "efficient" shape of Section V-A. *)
  Alcotest.(check int) "no general gate" 0 report.Sdft_classify.n_general;
  Alcotest.(check int) "three static branching" 3 report.Sdft_classify.n_static_branching;
  Alcotest.(check int) "three static joins" 3
    (report.Sdft_classify.n_static_joins_other
    + report.Sdft_classify.n_static_joins_uniform)

(* Industrial generator *)

let test_industrial_deterministic () =
  let a = Industrial.generate Industrial.small in
  let b = Industrial.generate Industrial.small in
  Alcotest.(check int) "same basics" (Fault_tree.n_basics a) (Fault_tree.n_basics b);
  Alcotest.(check int) "same gates" (Fault_tree.n_gates a) (Fault_tree.n_gates b);
  Alcotest.(check string) "same name" (Fault_tree.basic_name a 17) (Fault_tree.basic_name b 17)

let test_industrial_seed_changes_model () =
  let a = Industrial.generate Industrial.small in
  let b = Industrial.generate { Industrial.small with seed = 99 } in
  (* Structures generally differ; at minimum some probability differs. *)
  let differs = ref (Fault_tree.n_basics a <> Fault_tree.n_basics b) in
  if not !differs then
    for i = 0 to Fault_tree.n_basics a - 1 do
      if Fault_tree.prob a i <> Fault_tree.prob b i then differs := true
    done;
  Alcotest.(check bool) "different model" true !differs

let test_industrial_run_events () =
  let tree = Industrial.generate Industrial.small in
  let runs = Industrial.run_events tree in
  Alcotest.(check bool) "found run events" true (List.length runs > 5);
  List.iter
    (fun i ->
      let name = Fault_tree.basic_name tree i in
      let n = String.length name in
      Alcotest.(check string) "suffix" ".run" (String.sub name (n - 4) 4))
    runs

let test_industrial_engines_agree_small () =
  let tree = Industrial.generate Industrial.small in
  let sound =
    Mocus.minimal_cutsets
      ~options:{ Mocus.default_options with cutoff = 1e-12 }
      tree
  in
  let bdd = Minsol.fault_tree_cutsets_above tree ~cutoff:1e-12 in
  Alcotest.(check bool) "MOCUS = BDD above cutoff" true
    (List.sort Int_set.compare sound = List.sort Int_set.compare bdd)

(* Dynamize *)

let test_dynamize_counts () =
  let tree = Industrial.generate Industrial.small in
  let config =
    {
      Dynamize.default_config with
      dynamic_fraction = 0.15;
      trigger_fraction = 0.03;
      candidates = Some (Industrial.run_events tree);
    }
  in
  let r = Dynamize.run ~config tree in
  Alcotest.(check bool) "some dynamic" true (r.Dynamize.n_dynamic > 0);
  Alcotest.(check bool) "triggered <= dynamic" true
    (r.Dynamize.n_triggered <= r.Dynamize.n_dynamic);
  Alcotest.(check int) "sdft dynamic count" r.Dynamize.n_dynamic
    (List.length (Sdft.dynamic_basics r.Dynamize.sd))

let test_dynamize_zero_fraction () =
  let tree = Industrial.generate Industrial.small in
  let config = { Dynamize.default_config with dynamic_fraction = 0.0; trigger_fraction = 0.0 } in
  let r = Dynamize.run ~config tree in
  Alcotest.(check int) "no dynamic" 0 r.Dynamize.n_dynamic;
  Alcotest.(check int) "no triggers" 0 r.Dynamize.n_triggered

let test_dynamize_triggers_have_static_branching () =
  (* Chains use single-event wrapper gates, the simplest static-branching
     pattern of Figure 1. *)
  let tree = Industrial.generate Industrial.small in
  let config =
    {
      Dynamize.default_config with
      dynamic_fraction = 0.2;
      trigger_fraction = 0.05;
      candidates = Some (Industrial.run_events tree);
    }
  in
  let r = Dynamize.run ~config tree in
  let sd = r.Dynamize.sd in
  List.iter
    (fun (g, _) ->
      match Sdft_classify.classify sd g with
      | Sdft_classify.Static_branching -> ()
      | c ->
        Alcotest.failf "wrapper gate %s is %a"
          (Fault_tree.gate_name (Sdft.tree sd) g)
          Sdft_classify.pp_class c)
    (Sdft.trigger_edges sd)

let test_dynamize_mission_probability_calibration () =
  (* With the mission-probability calibration and no repairs, the
     worst-case failure probability of every dynamized event within the
     mission must equal its original static probability, whatever k. *)
  let tree = Industrial.generate Industrial.small in
  List.iter
    (fun phases ->
      let config =
        {
          Dynamize.default_config with
          dynamic_fraction = 0.1;
          trigger_fraction = 0.0;
          phases;
          calibration = Dynamize.Mission_probability;
        }
      in
      let r = Dynamize.run ~config tree in
      let sd = r.Dynamize.sd in
      let wrapped = Sdft.tree sd in
      List.iter
        (fun b ->
          let p_static =
            Fault_tree.prob tree
              (Option.get
                 (Fault_tree.basic_index tree (Fault_tree.basic_name wrapped b)))
          in
          let p_dyn =
            Dbe.worst_case_failure_probability (Sdft.dbe sd b) ~horizon:24.0
          in
          if Float.abs (p_static -. p_dyn) > 1e-9 *. Float.max p_static 1e-12
          then
            Alcotest.failf "k=%d %s: static %.6e vs dynamic %.6e" phases
              (Fault_tree.basic_name wrapped b)
              p_static p_dyn)
        (Sdft.dynamic_basics sd))
    [ 1; 2; 3 ]

let test_dynamize_preserves_static_rea () =
  (* The wrapper gates hang off the DAG, so the static cutsets and REA of
     the wrapped tree must be unchanged. *)
  let tree = Industrial.generate Industrial.small in
  let config =
    { Dynamize.default_config with dynamic_fraction = 0.2; trigger_fraction = 0.05 }
  in
  let r = Dynamize.run ~config tree in
  let rea_before, n_before = Sdft_analysis.static_rare_event tree in
  let rea_after, n_after = Sdft_analysis.static_rare_event (Sdft.tree r.Dynamize.sd) in
  Alcotest.(check int) "same cutset count" n_before n_after;
  if Float.abs (rea_before -. rea_after) > 1e-15 then
    Alcotest.failf "REA changed: %.6e vs %.6e" rea_before rea_after

(* CCF beta-factor rewriting *)

let redundant_pair_tree p =
  let b = Fault_tree.Builder.create () in
  let x = Fault_tree.Builder.basic b ~prob:p "x" in
  let y = Fault_tree.Builder.basic b ~prob:p "y" in
  let top = Fault_tree.Builder.gate b "top" Fault_tree.And [ x; y ] in
  Fault_tree.Builder.build b ~top

let test_ccf_beta_zero_is_identity () =
  let tree = redundant_pair_tree 0.01 in
  let tree' = Ccf.apply tree [ { Ccf.name = "xy"; members = [ "x"; "y" ]; beta = 0.0 } ] in
  let p = Fault_tree.exact_top_probability_enumerate tree in
  let p' = Fault_tree.exact_top_probability_enumerate tree' in
  if Float.abs (p -. p') > 1e-15 then Alcotest.failf "beta=0 changed: %g vs %g" p p'

let test_ccf_beta_one_collapses () =
  (* With beta = 1 all failures are common: AND(x,y) fails with probability
     p instead of p^2. *)
  let p = 0.01 in
  let tree = redundant_pair_tree p in
  let tree' = Ccf.apply tree [ { Ccf.name = "xy"; members = [ "x"; "y" ]; beta = 1.0 } ] in
  let got = Fault_tree.exact_top_probability_enumerate tree' in
  if Float.abs (got -. p) > 1e-12 then Alcotest.failf "beta=1: %g vs %g" got p

let test_ccf_intermediate_beta () =
  (* Closed form: 1 - (1 - beta p)(1 - ((1-beta) p)^2 (1 - beta p)) ... or
     simply: top fails iff ccf, or both independents. *)
  let p = 0.02 and beta = 0.1 in
  let tree = redundant_pair_tree p in
  let tree' = Ccf.apply tree [ { Ccf.name = "xy"; members = [ "x"; "y" ]; beta } ] in
  let pi = (1.0 -. beta) *. p and pc = beta *. p in
  let expected = pc +. ((1.0 -. pc) *. pi *. pi) in
  let got = Fault_tree.exact_top_probability_enumerate tree' in
  if Float.abs (got -. expected) > 1e-12 then
    Alcotest.failf "beta=0.1: %g vs %g" got expected;
  (* The CCF makes the pair markedly less reliable than independence. *)
  Alcotest.(check bool) "dominates independent" true
    (got > Fault_tree.exact_top_probability_enumerate tree *. 5.0)

let test_ccf_mcs_include_ccf_event () =
  let tree = redundant_pair_tree 0.01 in
  let tree' = Ccf.apply tree [ { Ccf.name = "xy"; members = [ "x"; "y" ]; beta = 0.05 } ] in
  let mcs =
    Mocus.minimal_cutsets ~options:{ Mocus.default_options with cutoff = 0.0 } tree'
  in
  Alcotest.(check int) "two cutsets" 2 (List.length mcs);
  let ccf = Option.get (Fault_tree.basic_index tree' "CCF:xy") in
  Alcotest.(check bool) "singleton CCF cutset" true
    (List.exists (Int_set.equal (Int_set.singleton ccf)) mcs)

let test_ccf_validation () =
  let tree = redundant_pair_tree 0.01 in
  let fails groups =
    match Ccf.apply tree groups with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "one member" true
    (fails [ { Ccf.name = "g"; members = [ "x" ]; beta = 0.1 } ]);
  Alcotest.(check bool) "unknown member" true
    (fails [ { Ccf.name = "g"; members = [ "x"; "zz" ]; beta = 0.1 } ]);
  Alcotest.(check bool) "bad beta" true
    (fails [ { Ccf.name = "g"; members = [ "x"; "y" ]; beta = 1.5 } ]);
  Alcotest.(check bool) "overlapping groups" true
    (fails
       [
         { Ccf.name = "g1"; members = [ "x"; "y" ]; beta = 0.1 };
         { Ccf.name = "g2"; members = [ "y"; "x" ]; beta = 0.1 };
       ])

(* Templates *)

let test_templates_standby_pair () =
  let builder = Fault_tree.Builder.create () in
  let gate, pending =
    Templates.standby_pair builder ~name:"pumps" ~p_start:1e-3 ~lambda:1e-3
      ~mu:0.05 ()
  in
  let sd = Templates.make_sdft builder ~top:gate pending in
  let tree = Sdft.tree sd in
  Alcotest.(check int) "four basics" 4 (Fault_tree.n_basics tree);
  Alcotest.(check int) "two dynamic" 2 (List.length (Sdft.dynamic_basics sd));
  Alcotest.(check int) "one trigger" 1 (List.length (Sdft.trigger_edges sd));
  (* The standby's run event is triggered by the running train's gate. *)
  let b_run = Option.get (Fault_tree.basic_index tree "pumps.B.run") in
  let a_gate = Option.get (Fault_tree.gate_index tree "pumps.A") in
  Alcotest.(check (option int)) "trigger source" (Some a_gate)
    (Sdft.trigger_of sd b_run);
  (* And the analysis pipeline runs end to end on it. *)
  let r = Sdft_analysis.analyze sd in
  Alcotest.(check bool) "sane probability" true
    (r.Sdft_analysis.total > 0.0 && r.Sdft_analysis.total < 1.0)

let test_templates_component_untriggered () =
  let builder = Fault_tree.Builder.create () in
  let gate, pending =
    Templates.component builder ~name:"fan" ~p_start:1e-2 ~lambda:1e-3 ()
  in
  let sd = Templates.make_sdft builder ~top:gate pending in
  Alcotest.(check int) "one dynamic" 1 (List.length (Sdft.dynamic_basics sd));
  Alcotest.(check (list (pair int int))) "no triggers" [] (Sdft.trigger_edges sd)

(* Random trees *)

let test_random_tree_all_basics_relevant () =
  let rng = Sdft_util.Rng.create 3 in
  let tree = Random_tree.tree rng ~n_basics:6 ~n_gates:5 in
  (* Failing everything must fail the top (coherence + top covers all). *)
  Alcotest.(check bool) "all fail => top fails" true
    (Fault_tree.fails_top tree ~failed:(fun _ -> true));
  Alcotest.(check bool) "none fail => top ok" false
    (Fault_tree.fails_top tree ~failed:(fun _ -> false))

let test_random_sd_valid () =
  for seed = 0 to 30 do
    let rng = Sdft_util.Rng.create seed in
    let sd = Random_tree.sd rng ~n_basics:6 ~n_gates:5 ~n_dynamic:3 ~n_triggers:2 in
    (* Validation is internal to Sdft.make; just touch the accessors. *)
    ignore (Sdft.dynamic_basics sd);
    ignore (Sdft.trigger_edges sd)
  done

let () =
  Alcotest.run "models"
    [
      ( "pumps",
        [
          Alcotest.test_case "mcs count" `Quick test_pumps_mcs_count;
          Alcotest.test_case "sd valid" `Quick test_pumps_sd_valid;
        ] );
      ( "bwr",
        [
          Alcotest.test_case "structure" `Quick test_bwr_structure;
          Alcotest.test_case "ccf flag" `Quick test_bwr_ccf_flag;
          Alcotest.test_case "ccf defeats redundancy" `Quick test_bwr_ccf_defeats_redundancy;
          Alcotest.test_case "static = no-repair dynamic" `Slow
            test_bwr_static_equals_dynamic_norepair;
          Alcotest.test_case "repairs reduce" `Slow test_bwr_repairs_reduce_frequency;
          Alcotest.test_case "triggers reduce" `Slow test_bwr_triggers_reduce_frequency;
          Alcotest.test_case "trigger classes" `Quick test_bwr_trigger_classes;
        ] );
      ( "industrial",
        [
          Alcotest.test_case "deterministic" `Quick test_industrial_deterministic;
          Alcotest.test_case "seed changes model" `Quick test_industrial_seed_changes_model;
          Alcotest.test_case "run events" `Quick test_industrial_run_events;
          Alcotest.test_case "engines agree" `Slow test_industrial_engines_agree_small;
        ] );
      ( "dynamize",
        [
          Alcotest.test_case "counts" `Slow test_dynamize_counts;
          Alcotest.test_case "zero fraction" `Quick test_dynamize_zero_fraction;
          Alcotest.test_case "static branching chains" `Slow
            test_dynamize_triggers_have_static_branching;
          Alcotest.test_case "preserves static REA" `Slow test_dynamize_preserves_static_rea;
          Alcotest.test_case "mission-probability calibration" `Slow
            test_dynamize_mission_probability_calibration;
        ] );
      ( "ccf",
        [
          Alcotest.test_case "beta 0" `Quick test_ccf_beta_zero_is_identity;
          Alcotest.test_case "beta 1" `Quick test_ccf_beta_one_collapses;
          Alcotest.test_case "intermediate beta" `Quick test_ccf_intermediate_beta;
          Alcotest.test_case "mcs" `Quick test_ccf_mcs_include_ccf_event;
          Alcotest.test_case "validation" `Quick test_ccf_validation;
        ] );
      ( "templates",
        [
          Alcotest.test_case "standby pair" `Quick test_templates_standby_pair;
          Alcotest.test_case "component" `Quick test_templates_component_untriggered;
        ] );
      ( "random",
        [
          Alcotest.test_case "relevance" `Quick test_random_tree_all_basics_relevant;
          Alcotest.test_case "sd valid" `Quick test_random_sd_valid;
        ] );
    ]

(* Tests for the Monte-Carlo simulator: statistical agreement with the exact
   product semantics and with closed forms. *)

let check_within_sigma ?(sigma = 4.0) exact (stats : Simulator.stats) =
  let err = Float.abs (stats.Simulator.estimate -. exact) in
  let bound = sigma *. Float.max stats.Simulator.std_error 1e-9 in
  if err > bound then
    Alcotest.failf "estimate %.5f vs exact %.5f (>%g sigma)"
      stats.Simulator.estimate exact sigma

let test_static_tree_estimate () =
  (* Static tree: simulation is just Bernoulli sampling of the scenarios. *)
  let b = Fault_tree.Builder.create () in
  let x = Fault_tree.Builder.basic b ~prob:0.3 "x" in
  let y = Fault_tree.Builder.basic b ~prob:0.4 "y" in
  let top = Fault_tree.Builder.gate b "top" Fault_tree.Or [ x; y ] in
  let tree = Fault_tree.Builder.build b ~top in
  let sd = Sdft.static_only tree in
  let stats = Simulator.unreliability ~seed:1 sd ~horizon:1.0 ~trials:100_000 in
  check_within_sigma (1.0 -. (0.7 *. 0.6)) stats

let test_exponential_event () =
  let b = Fault_tree.Builder.create () in
  let x = Fault_tree.Builder.basic b "x" in
  let top = Fault_tree.Builder.gate b "top" Fault_tree.Or [ x ] in
  let tree = Fault_tree.Builder.build b ~top in
  let sd = Sdft.make tree ~dynamic:[ ("x", Dbe.exponential ~lambda:0.1 ()) ] ~triggers:[] in
  let t = 8.0 in
  let stats = Simulator.unreliability ~seed:2 sd ~horizon:t ~trials:100_000 in
  check_within_sigma (1.0 -. exp (-0.1 *. t)) stats

let test_simulator_vs_product_with_triggers () =
  (* A model that exercises triggering, untriggering after repair, and
     re-triggering: top = AND(x, y), y triggered by x's wrapper, x
     repairable. Scaled-up rates so failures are frequent enough to
     estimate. *)
  let b = Fault_tree.Builder.create () in
  let x = Fault_tree.Builder.basic b "x" in
  let y = Fault_tree.Builder.basic b "y" in
  let wrap = Fault_tree.Builder.gate b "wrap" Fault_tree.Or [ x ] in
  ignore wrap;
  let top = Fault_tree.Builder.gate b "top" Fault_tree.And [ x; y ] in
  let tree = Fault_tree.Builder.build b ~top in
  let sd =
    Sdft.make tree
      ~dynamic:
        [
          ("x", Dbe.exponential ~lambda:0.3 ~mu:0.5 ());
          ("y", Dbe.triggered_exponential ~lambda:0.4 ~mu:0.2 ~passive_factor:0.01 ());
        ]
      ~triggers:[ ("wrap", "y") ]
  in
  let horizon = 10.0 in
  let exact = Sdft_product.solve sd ~horizon in
  let stats = Simulator.unreliability ~seed:3 sd ~horizon ~trials:60_000 in
  check_within_sigma exact stats

let test_simulator_pumps_running_example () =
  let sd = Pumps.sd_tree () in
  let exact = Sdft_product.solve sd ~horizon:24.0 in
  let stats = Simulator.unreliability ~seed:42 sd ~horizon:24.0 ~trials:300_000 in
  check_within_sigma exact stats

let test_simulator_deterministic () =
  let sd = Pumps.sd_tree () in
  let a = Simulator.unreliability ~seed:9 sd ~horizon:24.0 ~trials:20_000 in
  let b = Simulator.unreliability ~seed:9 sd ~horizon:24.0 ~trials:20_000 in
  Alcotest.(check int) "same failures" a.Simulator.failures b.Simulator.failures

let test_simulator_failure_time () =
  (* Single exponential event: conditional mean failure time within a long
     horizon approaches 1/lambda. *)
  let b = Fault_tree.Builder.create () in
  let x = Fault_tree.Builder.basic b "x" in
  let top = Fault_tree.Builder.gate b "top" Fault_tree.Or [ x ] in
  let tree = Fault_tree.Builder.build b ~top in
  let sd = Sdft.make tree ~dynamic:[ ("x", Dbe.exponential ~lambda:0.5 ()) ] ~triggers:[] in
  match Simulator.failure_time ~seed:4 sd ~horizon:200.0 ~trials:50_000 with
  | Some mean ->
    if Float.abs (mean -. 2.0) > 0.05 then
      Alcotest.failf "mean failure time %.3f far from 2.0" mean
  | None -> Alcotest.fail "expected failures"

let test_simulator_rejects_zero_trials () =
  let sd = Pumps.sd_tree () in
  Alcotest.check_raises "trials" (Invalid_argument "Simulator: need at least one trial")
    (fun () -> ignore (Simulator.unreliability sd ~horizon:1.0 ~trials:0))

let () =
  Alcotest.run "sim"
    [
      ( "simulator",
        [
          Alcotest.test_case "static tree" `Slow test_static_tree_estimate;
          Alcotest.test_case "exponential" `Slow test_exponential_event;
          Alcotest.test_case "triggers vs product" `Slow test_simulator_vs_product_with_triggers;
          Alcotest.test_case "pumps example" `Slow test_simulator_pumps_running_example;
          Alcotest.test_case "deterministic" `Quick test_simulator_deterministic;
          Alcotest.test_case "failure time" `Slow test_simulator_failure_time;
          Alcotest.test_case "zero trials" `Quick test_simulator_rejects_zero_trials;
        ] );
    ]

test/test_eventtree.mli:

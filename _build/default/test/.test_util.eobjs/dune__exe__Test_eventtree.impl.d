test/test_eventtree.ml: Alcotest Dbe Event_tree Fault_tree Float Fun List Option Sdft Sdft_analysis Sdft_product

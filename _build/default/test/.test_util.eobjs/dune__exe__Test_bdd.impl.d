test/test_bdd.ml: Alcotest Array Bdd Fault_tree Float Fun List Minsol Option Pumps QCheck QCheck_alcotest Random_tree Sdft_util Set Zdd

test/test_ctmc.ml: Alcotest Array Ctmc Float List Poisson QCheck QCheck_alcotest Sdft_util Steady_state Transient

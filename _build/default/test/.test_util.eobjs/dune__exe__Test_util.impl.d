test/test_util.ml: Alcotest Array Float Fun Gen Histogram Int Int_set Kahan List QCheck QCheck_alcotest Rng Sdft_util Set String Table Timer Vec

test/test_util.ml: Alcotest Array Buffer Domain Float Format Fun Gen Histogram Int Int_set Kahan List Metrics Parallel QCheck QCheck_alcotest Rng Sdft_util Set String Table Timer Vec

test/test_mocus.ml: Alcotest Bwr Cutset Fault_tree Float Importance List Minsol Mocus Option Pumps QCheck QCheck_alcotest Random_tree Sdft_util Sensitivity Uncertainty

test/test_models.ml: Alcotest Bwr Ccf Dbe Dynamize Fault_tree Float Industrial List Minsol Mocus Option Pumps Random_tree Sdft Sdft_analysis Sdft_classify Sdft_util String Templates

test/test_fault_tree.ml: Alcotest Array Dot Expand Fault_tree Float List Modules Option Printf Pumps QCheck QCheck_alcotest Random_tree Sdft Sdft_util String

test/test_sim.ml: Alcotest Dbe Fault_tree Float Pumps Sdft Sdft_product Simulator

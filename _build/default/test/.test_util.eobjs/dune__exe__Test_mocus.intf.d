test/test_mocus.mli:

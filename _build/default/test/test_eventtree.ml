(* Tests for the event-tree layer: sequence enumeration, compilation to
   fault trees, demand-trigger chains. *)

(* A two-function event tree: after the initiator, function A runs; if it
   fails, function B is demanded. Damage when both fail. *)
let two_function_tree ?(category = "CD") () =
  ignore category;
  {
    Event_tree.initiator = "IE";
    initiator_prob = 0.01;
    functions =
      [
        {
          Event_tree.name = "A";
          build_failure =
            (fun b ->
              let a1 = Fault_tree.Builder.basic b ~prob:0.1 "A.static" in
              let a2 = Fault_tree.Builder.basic b "A.run" in
              Fault_tree.Builder.gate b "A.fail" Fault_tree.Or [ a1; a2 ]);
          demand_started = [ "A.run" ];
        };
        {
          Event_tree.name = "B";
          build_failure =
            (fun b ->
              let b1 = Fault_tree.Builder.basic b ~prob:0.2 "B.static" in
              let b2 = Fault_tree.Builder.basic b "B.run" in
              Fault_tree.Builder.gate b "B.fail" Fault_tree.Or [ b1; b2 ]);
          demand_started = [ "B.run" ];
        };
      ];
    outcome_of =
      (fun pattern ->
        match pattern with
        | [ true; true ] -> Event_tree.Damage "CD"
        | _ -> Event_tree.Ok);
  }

let test_sequences_enumeration () =
  let et = two_function_tree () in
  let seqs = Event_tree.sequences et in
  Alcotest.(check int) "four sequences" 4 (List.length seqs);
  let damage =
    List.filter (fun (_, o) -> o = Event_tree.Damage "CD") seqs
  in
  Alcotest.(check int) "one damage sequence" 1 (List.length damage)

let test_compile_static () =
  let et = two_function_tree () in
  let tree = Event_tree.compile et ~category:"CD" in
  (* Damage = IE and A.fail and B.fail. With run events at probability 0,
     p = 0.01 * 0.1 * 0.2. *)
  let p = Fault_tree.exact_top_probability_enumerate tree in
  if Float.abs (p -. (0.01 *. 0.1 *. 0.2)) > 1e-12 then
    Alcotest.failf "probability %.6e" p

let test_compile_unknown_category () =
  let et = two_function_tree () in
  Alcotest.(check bool) "raises" true
    (match Event_tree.compile et ~category:"nope" with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_compile_sd_triggers_chain () =
  let et = two_function_tree () in
  let sd =
    Event_tree.compile_sd et ~category:"CD"
      ~dynamic:
        [
          ("A.run", Dbe.exponential ~lambda:0.05 ());
          ( "B.run",
            Dbe.triggered_exponential ~lambda:0.05 ~passive_factor:0.0 () );
        ]
      ()
  in
  let tree = Sdft.tree sd in
  let b_run = Option.get (Fault_tree.basic_index tree "B.run") in
  let a_fail = Option.get (Fault_tree.gate_index tree "A.fail") in
  (* B's demand-started event is triggered by A's failure gate; A's own
     event runs from time zero (no trigger). *)
  Alcotest.(check (option int)) "B triggered by A" (Some a_fail)
    (Sdft.trigger_of sd b_run);
  let a_run = Option.get (Fault_tree.basic_index tree "A.run") in
  Alcotest.(check (option int)) "A untriggered" None (Sdft.trigger_of sd a_run)

let test_compile_sd_no_triggers () =
  let et = two_function_tree () in
  let sd =
    Event_tree.compile_sd et ~category:"CD"
      ~dynamic:[ ("A.run", Dbe.exponential ~lambda:0.05 ()) ]
      ~demand_triggers:false ()
  in
  Alcotest.(check (list (pair int int))) "no edges" [] (Sdft.trigger_edges sd)

let test_compile_sd_analysis_shape () =
  (* The demanded function's event starts later, so the dynamic analysis
     must give a lower frequency than the untriggered one. *)
  let et = two_function_tree () in
  let dynamic () =
    [
      ("A.run", Dbe.exponential ~lambda:0.05 ());
      ("B.run", Dbe.triggered_exponential ~lambda:0.05 ~passive_factor:0.0 ());
    ]
  in
  let with_chain =
    Event_tree.compile_sd et ~category:"CD" ~dynamic:(dynamic ()) ()
  in
  let sd_chain = Sdft_analysis.analyze with_chain in
  (* Exact reference. *)
  let exact = Sdft_product.solve with_chain ~horizon:24.0 in
  Alcotest.(check bool) "REA >= exact" true
    (sd_chain.Sdft_analysis.total >= exact -. 1e-12);
  (* The basic events here are not rare (tenths), so the rare-event
     approximation visibly over-counts overlapping cutsets; it must still
     stay within ~50%. *)
  Alcotest.(check bool) "within 50%" true
    (sd_chain.Sdft_analysis.total <= exact *. 1.5)

let test_three_function_chain () =
  (* Chain of three functions: C's event is triggered by B's failure gate,
     B's by A's. *)
  let make_fn name prob =
    {
      Event_tree.name;
      build_failure =
        (fun b ->
          let s = Fault_tree.Builder.basic b ~prob (name ^ ".static") in
          let r = Fault_tree.Builder.basic b (name ^ ".run") in
          Fault_tree.Builder.gate b (name ^ ".fail") Fault_tree.Or [ s; r ]);
      demand_started = [ name ^ ".run" ];
    }
  in
  let et =
    {
      Event_tree.initiator = "IE";
      initiator_prob = 0.05;
      functions = [ make_fn "A" 0.1; make_fn "B" 0.1; make_fn "C" 0.1 ];
      outcome_of =
        (fun pattern ->
          if List.for_all Fun.id pattern then Event_tree.Damage "CD"
          else Event_tree.Ok);
    }
  in
  let trig_dbe () = Dbe.triggered_exponential ~lambda:0.02 ~passive_factor:0.0 () in
  let sd =
    Event_tree.compile_sd et ~category:"CD"
      ~dynamic:
        [
          ("A.run", Dbe.exponential ~lambda:0.02 ());
          ("B.run", trig_dbe ());
          ("C.run", trig_dbe ());
        ]
      ()
  in
  Alcotest.(check int) "two trigger edges" 2 (List.length (Sdft.trigger_edges sd));
  (* End-to-end: analysis bounded by exact. *)
  let r = Sdft_analysis.analyze sd in
  let exact = Sdft_product.solve sd ~horizon:24.0 in
  Alcotest.(check bool) "REA >= exact" true (r.Sdft_analysis.total >= exact -. 1e-12)

let test_categories () =
  let et = two_function_tree () in
  Alcotest.(check (list string)) "one category" [ "CD" ] (Event_tree.categories et)

let test_analyze_categories () =
  let et =
    {
      (two_function_tree ()) with
      Event_tree.outcome_of =
        (fun pattern ->
          match pattern with
          | [ true; true ] -> Event_tree.Damage "CD"
          | [ true; false ] -> Event_tree.Damage "minor"
          | _ -> Event_tree.Ok);
    }
  in
  let results =
    Event_tree.analyze_categories et
      ~dynamic:
        [
          ("A.run", Dbe.exponential ~lambda:0.002 ());
          ("B.run", Dbe.triggered_exponential ~lambda:0.002 ~passive_factor:0.0 ());
        ]
      ()
  in
  Alcotest.(check int) "two categories" 2 (List.length results);
  let freq c = (List.assoc c results).Sdft_analysis.total in
  (* "minor" (A fails, B recovers) is far more likely than full damage. *)
  Alcotest.(check bool) "minor > CD" true (freq "minor" > freq "CD")

let () =
  Alcotest.run "eventtree"
    [
      ( "event trees",
        [
          Alcotest.test_case "sequences" `Quick test_sequences_enumeration;
          Alcotest.test_case "compile static" `Quick test_compile_static;
          Alcotest.test_case "unknown category" `Quick test_compile_unknown_category;
          Alcotest.test_case "demand triggers" `Quick test_compile_sd_triggers_chain;
          Alcotest.test_case "no triggers" `Quick test_compile_sd_no_triggers;
          Alcotest.test_case "analysis shape" `Quick test_compile_sd_analysis_shape;
          Alcotest.test_case "three-function chain" `Quick test_three_function_chain;
          Alcotest.test_case "categories" `Quick test_categories;
          Alcotest.test_case "analyze categories" `Quick test_analyze_categories;
        ] );
    ]

lib/bdd/minsol.mli: Bdd Fault_tree Sdft_util Zdd

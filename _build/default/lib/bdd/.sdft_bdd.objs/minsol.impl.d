lib/bdd/minsol.ml: Array Bdd Fault_tree Hashtbl List Sdft_util Zdd

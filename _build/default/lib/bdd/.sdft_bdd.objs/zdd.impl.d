lib/bdd/zdd.ml: Array Hashtbl List Sdft_util

lib/bdd/bdd.mli: Fault_tree

lib/bdd/zdd.mli: Sdft_util

lib/bdd/bdd.ml: Array Fault_tree Hashtbl Sdft_util

(** Zero-suppressed decision diagrams over families of sets.

    Cutset collections are families of sets of basic events; ZDDs represent
    them compactly and support the subsumption operations needed by the
    minimal-solutions algorithm. Shares the variable-order convention of
    {!Bdd} (levels from the root down). *)

type manager

type node = private int

val manager : ?var_order:int array -> n_vars:int -> unit -> manager

val bottom : node
(** The empty family, {[ {} ]}. *)

val top : node
(** The family containing only the empty set, {[ {{}} ]}. *)

val elem : manager -> int -> node
(** The family [{{v}}]. *)

val make_node : manager -> int -> node -> node -> node
(** [make_node m v low high] is the canonical node for
    [low ∪ { s ∪ {v} | s ∈ high }]. The variable [v] must sit strictly above
    the top variables of [low] and [high] in the order.

    @raise Invalid_argument when the level constraint is violated. *)

val node_top_level : manager -> node -> int
(** Level of the root variable; [max_int] for terminals. *)

val node_var : manager -> node -> int
(** Root variable of an internal node. *)

val node_low : manager -> node -> node
(** Sets not containing the root variable. *)

val node_high : manager -> node -> node
(** Rests of the sets containing the root variable. *)

val is_terminal : node -> bool

val union : manager -> node -> node -> node

val inter : manager -> node -> node -> node

val diff : manager -> node -> node -> node

val without : manager -> node -> node -> node
(** [without m u v] removes from [u] every set that is a (non-strict)
    superset of some set in [v] — the subsumption difference at the heart of
    minimal-solution extraction. *)

val minimal : manager -> node -> node
(** Keep only the inclusion-minimal sets of the family. *)

val count : manager -> node -> int
(** Number of sets in the family (may overflow for astronomically large
    families; families of relevant cutsets are fine). *)

val iter_sets : manager -> node -> (int list -> unit) -> unit
(** Enumerate the sets; elements are produced in level order. *)

val to_cutsets : manager -> node -> Sdft_util.Int_set.t list

val of_sets : manager -> Sdft_util.Int_set.t list -> node

val size : manager -> node -> int

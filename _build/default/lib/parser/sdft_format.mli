(** Text format for SD fault trees.

    A model is a sequence of top-level forms; nodes must be defined before
    they are used (gates reference earlier basics/gates, which also
    guarantees the DAG is acyclic):

    {v
    (basic NAME PROB)
    (dynamic NAME SPEC)
    (gate NAME and|or|(atleast K) INPUT ...)
    (trigger GATE BASIC)
    (top GATE)
    v}

    where [SPEC] is one of

    {v
    (exponential (lambda L) [(mu M)])
    (erlang (phases K) (lambda L) [(mu M)])
    (triggered-erlang (phases K) (lambda L) [(mu M)] [(passive F)]
                      [(repair-when-off)])
    (ctmc (states N) (init (S P) ...) (transitions (SRC DST RATE) ...)
          (failed S ...) [(switch (modes on|off ...) (partner I ...))])
    v}

    The printer always emits the lossless [ctmc] form; the reader accepts
    both. *)

exception Error of string

val of_string : string -> Sdft.t
(** @raise Error on syntactic or semantic problems. *)

val of_file : string -> Sdft.t

val to_string : Sdft.t -> string
(** Round-trips: [of_string (to_string sd)] describes the same model. *)

val to_file : string -> Sdft.t -> unit

(** A minimal XML parser — just enough for the Open-PSA model exchange
    format (elements, attributes, text, comments, declarations, CDATA; no
    namespaces, no DTD processing). *)

type t = {
  tag : string;
  attributes : (string * string) list;
  children : node list;
}

and node =
  | Element of t
  | Text of string

exception Parse_error of { line : int; message : string }

val parse_string : string -> t
(** The root element (prologue and comments are skipped).
    @raise Parse_error on malformed input. *)

val parse_file : string -> t

val attribute : t -> string -> string option

val attribute_exn : t -> string -> string
(** @raise Parse_error (line 0) when missing. *)

val elements : t -> t list
(** Child elements (text nodes skipped). *)

val find_all : t -> string -> t list
(** Child elements with the given tag. *)

val find_opt : t -> string -> t option

val text : t -> string
(** Concatenated text content of the element (direct children only). *)

val to_string : t -> string
(** Serialise with indentation; escapes special characters. *)

lib/parser/sdft_format.ml: Array Buffer Ctmc Dbe Fault_tree Fun List Printf Sdft Sexp

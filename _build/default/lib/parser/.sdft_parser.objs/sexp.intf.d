lib/parser/sexp.mli: Format

lib/parser/sdft_format.mli: Sdft

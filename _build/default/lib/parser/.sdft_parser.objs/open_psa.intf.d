lib/parser/open_psa.mli: Fault_tree

lib/parser/sexp.ml: Buffer Format Fun List Printf String

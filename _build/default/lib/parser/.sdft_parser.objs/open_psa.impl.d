lib/parser/open_psa.ml: Array Fault_tree Fun Hashtbl List Printf String Xml

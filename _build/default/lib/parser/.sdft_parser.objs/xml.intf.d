lib/parser/xml.mli:

lib/parser/xml.ml: Buffer Char Fun List Printf String

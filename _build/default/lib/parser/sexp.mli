(** Minimal s-expressions: the concrete syntax of the SD fault tree text
    format. Atoms are bare words or double-quoted strings; [;] starts a
    comment to end of line. *)

type t =
  | Atom of string
  | List of t list

exception Parse_error of { line : int; message : string }

val parse_string : string -> t list
(** All top-level expressions in the input.
    @raise Parse_error on malformed input. *)

val parse_file : string -> t list

val to_string : t -> string
(** Canonical rendering (quotes atoms when necessary). *)

val pp : Format.formatter -> t -> unit
(** Pretty-printer with indentation for nested lists. *)

(** {1 Accessor helpers} *)

val atom : t -> string
(** @raise Parse_error (line 0) when the expression is a list. *)

val float_atom : t -> float

val int_atom : t -> int

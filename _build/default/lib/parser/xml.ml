type t = {
  tag : string;
  attributes : (string * string) list;
  children : node list;
}

and node =
  | Element of t
  | Text of string

exception Parse_error of { line : int; message : string }

let error line fmt =
  Printf.ksprintf (fun message -> raise (Parse_error { line; message })) fmt

type lexer = {
  input : string;
  mutable pos : int;
  mutable line : int;
}

let peek lx = if lx.pos < String.length lx.input then Some lx.input.[lx.pos] else None

let peek2 lx =
  if lx.pos + 1 < String.length lx.input then Some lx.input.[lx.pos + 1] else None

let advance lx =
  (match peek lx with
  | Some '\n' -> lx.line <- lx.line + 1
  | Some _ | None -> ());
  lx.pos <- lx.pos + 1

let looking_at lx prefix =
  let n = String.length prefix in
  lx.pos + n <= String.length lx.input && String.sub lx.input lx.pos n = prefix

let skip_past lx terminator =
  let rec loop () =
    if looking_at lx terminator then
      for _ = 1 to String.length terminator do
        advance lx
      done
    else if peek lx = None then error lx.line "unterminated %s" terminator
    else begin
      advance lx;
      loop ()
    end
  in
  loop ()

let is_space = function ' ' | '\t' | '\r' | '\n' -> true | _ -> false

let rec skip_spaces lx =
  match peek lx with
  | Some c when is_space c ->
    advance lx;
    skip_spaces lx
  | Some _ | None -> ()

let is_name_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | ':' | '.' -> true
  | _ -> false

let read_name lx =
  let start = lx.pos in
  while (match peek lx with Some c -> is_name_char c | None -> false) do
    advance lx
  done;
  if lx.pos = start then error lx.line "expected a name";
  String.sub lx.input start (lx.pos - start)

let unescape line s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    if s.[!i] = '&' then begin
      match String.index_from_opt s !i ';' with
      | None -> error line "unterminated entity"
      | Some j ->
        let entity = String.sub s (!i + 1) (j - !i - 1) in
        let c =
          match entity with
          | "lt" -> "<"
          | "gt" -> ">"
          | "amp" -> "&"
          | "quot" -> "\""
          | "apos" -> "'"
          | _ ->
            if String.length entity > 1 && entity.[0] = '#' then
              let code =
                if entity.[1] = 'x' then
                  int_of_string ("0x" ^ String.sub entity 2 (String.length entity - 2))
                else int_of_string (String.sub entity 1 (String.length entity - 1))
              in
              String.make 1 (Char.chr code)
            else error line "unknown entity &%s;" entity
        in
        Buffer.add_string buf c;
        i := j + 1
    end
    else begin
      Buffer.add_char buf s.[!i];
      incr i
    end
  done;
  Buffer.contents buf

let read_attribute lx =
  let name = read_name lx in
  skip_spaces lx;
  (match peek lx with
  | Some '=' -> advance lx
  | _ -> error lx.line "expected '=' after attribute %s" name);
  skip_spaces lx;
  let quote =
    match peek lx with
    | Some (('"' | '\'') as q) ->
      advance lx;
      q
    | _ -> error lx.line "expected a quoted attribute value"
  in
  let start = lx.pos in
  while (match peek lx with Some c -> c <> quote | None -> false) do
    advance lx
  done;
  if peek lx = None then error lx.line "unterminated attribute value";
  let value = String.sub lx.input start (lx.pos - start) in
  advance lx;
  (name, unescape lx.line value)

(* Skip comments, processing instructions and the XML declaration. *)
let rec skip_misc lx =
  skip_spaces lx;
  if looking_at lx "<!--" then begin
    skip_past lx "-->";
    skip_misc lx
  end
  else if looking_at lx "<?" then begin
    skip_past lx "?>";
    skip_misc lx
  end
  else if looking_at lx "<!DOCTYPE" then begin
    skip_past lx ">";
    skip_misc lx
  end

let rec read_element lx =
  (match peek lx with
  | Some '<' -> advance lx
  | _ -> error lx.line "expected '<'");
  let tag = read_name lx in
  let attributes = ref [] in
  let rec read_attrs () =
    skip_spaces lx;
    match peek lx with
    | Some '>' ->
      advance lx;
      `Open
    | Some '/' when peek2 lx = Some '>' ->
      advance lx;
      advance lx;
      `SelfClosing
    | Some _ ->
      attributes := read_attribute lx :: !attributes;
      read_attrs ()
    | None -> error lx.line "unterminated tag <%s" tag
  in
  let kind = read_attrs () in
  let attributes = List.rev !attributes in
  match kind with
  | `SelfClosing -> { tag; attributes; children = [] }
  | `Open ->
    let children = ref [] in
    let rec read_children () =
      if looking_at lx "<!--" then begin
        skip_past lx "-->";
        read_children ()
      end
      else if looking_at lx "<![CDATA[" then begin
        let start = lx.pos + 9 in
        skip_past lx "]]>";
        let stop = lx.pos - 3 in
        children := Text (String.sub lx.input start (stop - start)) :: !children;
        read_children ()
      end
      else if looking_at lx "</" then begin
        advance lx;
        advance lx;
        let closing = read_name lx in
        if closing <> tag then
          error lx.line "mismatched closing tag </%s> for <%s>" closing tag;
        skip_spaces lx;
        match peek lx with
        | Some '>' -> advance lx
        | _ -> error lx.line "expected '>' in closing tag"
      end
      else if looking_at lx "<" then begin
        children := Element (read_element lx) :: !children;
        read_children ()
      end
      else begin
        let start = lx.pos in
        while (match peek lx with Some c -> c <> '<' | None -> false) do
          advance lx
        done;
        if peek lx = None then error lx.line "unterminated element <%s>" tag;
        let raw = String.sub lx.input start (lx.pos - start) in
        let trimmed = String.trim raw in
        if trimmed <> "" then children := Text (unescape lx.line trimmed) :: !children;
        read_children ()
      end
    in
    read_children ();
    { tag; attributes; children = List.rev !children }

let parse_string input =
  let lx = { input; pos = 0; line = 1 } in
  skip_misc lx;
  (match peek lx with
  | Some '<' -> ()
  | _ -> error lx.line "expected a root element");
  let root = read_element lx in
  skip_misc lx;
  (match peek lx with
  | None -> ()
  | Some _ -> error lx.line "trailing content after the root element");
  root

let parse_file path =
  let ic = open_in path in
  let contents =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  parse_string contents

let attribute t name = List.assoc_opt name t.attributes

let attribute_exn t name =
  match attribute t name with
  | Some v -> v
  | None -> error 0 "element <%s> is missing attribute %S" t.tag name

let elements t =
  List.filter_map (function Element e -> Some e | Text _ -> None) t.children

let find_all t tag = List.filter (fun e -> e.tag = tag) (elements t)

let find_opt t tag = List.find_opt (fun e -> e.tag = tag) (elements t)

let text t =
  String.concat ""
    (List.filter_map (function Text s -> Some s | Element _ -> None) t.children)

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | '"' -> Buffer.add_string buf "&quot;"
      | _ -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_string root =
  let buf = Buffer.create 1024 in
  let rec emit indent t =
    Buffer.add_string buf indent;
    Buffer.add_char buf '<';
    Buffer.add_string buf t.tag;
    List.iter
      (fun (k, v) ->
        Buffer.add_string buf (Printf.sprintf " %s=\"%s\"" k (escape v)))
      t.attributes;
    match t.children with
    | [] -> Buffer.add_string buf "/>\n"
    | [ Text s ] ->
      Buffer.add_string buf (Printf.sprintf ">%s</%s>\n" (escape s) t.tag)
    | children ->
      Buffer.add_string buf ">\n";
      List.iter
        (function
          | Element e -> emit (indent ^ "  ") e
          | Text s ->
            Buffer.add_string buf (indent ^ "  ");
            Buffer.add_string buf (escape s);
            Buffer.add_char buf '\n')
        children;
      Buffer.add_string buf indent;
      Buffer.add_string buf (Printf.sprintf "</%s>\n" t.tag)
  in
  emit "" root;
  Buffer.contents buf

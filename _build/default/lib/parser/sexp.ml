type t =
  | Atom of string
  | List of t list

exception Parse_error of { line : int; message : string }

let error line fmt =
  Printf.ksprintf (fun message -> raise (Parse_error { line; message })) fmt

type lexer = {
  input : string;
  mutable pos : int;
  mutable line : int;
}

let peek lx = if lx.pos < String.length lx.input then Some lx.input.[lx.pos] else None

let advance lx =
  (match peek lx with
  | Some '\n' -> lx.line <- lx.line + 1
  | Some _ | None -> ());
  lx.pos <- lx.pos + 1

let rec skip_blanks lx =
  match peek lx with
  | Some (' ' | '\t' | '\r' | '\n') ->
    advance lx;
    skip_blanks lx
  | Some ';' ->
    let rec to_eol () =
      match peek lx with
      | Some '\n' | None -> ()
      | Some _ ->
        advance lx;
        to_eol ()
    in
    to_eol ();
    skip_blanks lx
  | Some _ | None -> ()

let is_atom_char = function
  | '(' | ')' | ' ' | '\t' | '\r' | '\n' | ';' | '"' -> false
  | _ -> true

let read_quoted lx =
  let buf = Buffer.create 16 in
  advance lx;
  (* opening quote *)
  let rec loop () =
    match peek lx with
    | None -> error lx.line "unterminated string"
    | Some '"' -> advance lx
    | Some '\\' ->
      advance lx;
      (match peek lx with
      | Some c ->
        Buffer.add_char buf c;
        advance lx;
        loop ()
      | None -> error lx.line "unterminated escape")
    | Some c ->
      Buffer.add_char buf c;
      advance lx;
      loop ()
  in
  loop ();
  Buffer.contents buf

let read_bare lx =
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek lx with
    | Some c when is_atom_char c ->
      Buffer.add_char buf c;
      advance lx;
      loop ()
    | Some _ | None -> ()
  in
  loop ();
  Buffer.contents buf

let rec read_expr lx =
  skip_blanks lx;
  match peek lx with
  | None -> error lx.line "unexpected end of input"
  | Some '(' ->
    advance lx;
    let items = ref [] in
    let rec loop () =
      skip_blanks lx;
      match peek lx with
      | Some ')' -> advance lx
      | None -> error lx.line "unterminated list"
      | Some _ ->
        items := read_expr lx :: !items;
        loop ()
    in
    loop ();
    List (List.rev !items)
  | Some ')' -> error lx.line "unexpected ')'"
  | Some '"' -> Atom (read_quoted lx)
  | Some _ -> Atom (read_bare lx)

let parse_string input =
  let lx = { input; pos = 0; line = 1 } in
  let out = ref [] in
  let rec loop () =
    skip_blanks lx;
    if peek lx <> None then begin
      out := read_expr lx :: !out;
      loop ()
    end
  in
  loop ();
  List.rev !out

let parse_file path =
  let ic = open_in path in
  let contents =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  parse_string contents

let needs_quotes s =
  s = "" || not (String.for_all is_atom_char s)

let quote s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      if c = '"' || c = '\\' then Buffer.add_char buf '\\';
      Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let rec to_string = function
  | Atom s -> if needs_quotes s then quote s else s
  | List items -> "(" ^ String.concat " " (List.map to_string items) ^ ")"

let rec pp ppf = function
  | Atom s -> Format.pp_print_string ppf (if needs_quotes s then quote s else s)
  | List items ->
    Format.fprintf ppf "@[<hov 1>(";
    List.iteri
      (fun i item ->
        if i > 0 then Format.fprintf ppf "@ ";
        pp ppf item)
      items;
    Format.fprintf ppf ")@]"

let atom = function
  | Atom s -> s
  | List _ -> error 0 "expected an atom"

let float_atom e =
  let s = atom e in
  match float_of_string_opt s with
  | Some f -> f
  | None -> error 0 "expected a number, got %S" s

let int_atom e =
  let s = atom e in
  match int_of_string_opt s with
  | Some i -> i
  | None -> error 0 "expected an integer, got %S" s

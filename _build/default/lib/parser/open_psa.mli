(** A practical subset of the Open-PSA Model Exchange Format.

    Open-PSA MEF is the XML interchange format understood by the major PSA
    tools (XFTA, SCRAM, RiskSpectrum converters). This module reads and
    writes the static fault-tree subset:

    - [<define-fault-tree>] with [<define-gate>] definitions,
    - formulas [<and>], [<or>], [<atleast min="k">] (also accepted as
      [<vote>]), with references [<gate name=.../>],
      [<basic-event name=.../>] and [<event name=.../>],
    - [<define-basic-event>] carrying [<float value=.../>] probabilities,
      either inside the fault tree or in [<model-data>],
    - nested anonymous formulas inside gate definitions.

    Definitions may appear in any order; references are resolved after
    parsing (cyclic definitions are rejected). Dynamic features are not part
    of the exchange format — imported models are static fault trees that can
    then be dynamized with {!Dynamize}-style tooling or by hand. *)

exception Error of string

val of_string : string -> Fault_tree.t
(** Reads the first fault tree of the document; the top gate is the gate
    named by the fault-tree's ["top"] attribute if present, otherwise the
    unique gate no other gate references.

    @raise Error on malformed documents, unknown references, cyclic
    definitions, or when no top gate can be determined. *)

val of_file : string -> Fault_tree.t

val to_string : ?name:string -> Fault_tree.t -> string
(** Serialise as [<opsa-mef>] with one fault tree and its model data.
    Round-trips through {!of_string}. *)

val to_file : ?name:string -> string -> Fault_tree.t -> unit

(* A gate g is a module iff every strict-subtree node has all its parents
   inside the subtree (the gate itself may be referenced from anywhere). *)

let subtree_nodes tree g =
  let gates = Hashtbl.create 16 and basics = Hashtbl.create 16 in
  let rec walk g =
    if not (Hashtbl.mem gates g) then begin
      Hashtbl.add gates g ();
      Array.iter
        (function
          | Fault_tree.B b -> Hashtbl.replace basics b ()
          | Fault_tree.G g' -> walk g')
        (Fault_tree.gate_inputs tree g)
    end
  in
  walk g;
  (gates, basics)

let is_module tree g =
  let gates, basics = subtree_nodes tree g in
  let inside_gate g' = Hashtbl.mem gates g' in
  let ok = ref true in
  Hashtbl.iter
    (fun g' () ->
      if g' <> g then
        Array.iter
          (fun parent -> if not (inside_gate parent) then ok := false)
          (Fault_tree.gate_parents tree g'))
    gates;
  Hashtbl.iter
    (fun b () ->
      Array.iter
        (fun parent -> if not (inside_gate parent) then ok := false)
        (Fault_tree.basic_parents tree b))
    basics;
  !ok

let reachable_gates tree =
  let seen = Hashtbl.create 64 in
  let rec walk g =
    if not (Hashtbl.mem seen g) then begin
      Hashtbl.add seen g ();
      Array.iter
        (function
          | Fault_tree.B _ -> ()
          | Fault_tree.G g' -> walk g')
        (Fault_tree.gate_inputs tree g)
    end
  in
  walk (Fault_tree.top tree);
  seen

let find tree =
  let reachable = reachable_gates tree in
  List.filter
    (fun g -> Hashtbl.mem reachable g && is_module tree g)
    (List.init (Fault_tree.n_gates tree) Fun.id)

let dynamic_modules tree ~is_dynamic =
  List.filter
    (fun g ->
      Sdft_util.Int_set.exists is_dynamic (Fault_tree.descendant_basics tree g))
    (find tree)

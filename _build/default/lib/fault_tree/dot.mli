(** Graphviz export of fault trees, for inspecting generated models. *)

val to_dot :
  ?highlight_basics:(int -> bool) ->
  ?dynamic_basics:(int -> bool) ->
  ?trigger_edges:(int * int) list ->
  Fault_tree.t ->
  string
(** [to_dot tree] renders the DAG in Graphviz syntax. [highlight_basics]
    fills matching leaves (e.g. a cutset), [dynamic_basics] draws leaves with
    a double circle (the paper's notation), and [trigger_edges] draws dashed
    [gate -> basic] trigger arrows. *)

val write_file : string -> string -> unit
(** [write_file path contents]. *)

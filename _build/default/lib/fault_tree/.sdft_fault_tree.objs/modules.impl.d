lib/fault_tree/modules.ml: Array Fault_tree Fun Hashtbl List Sdft_util

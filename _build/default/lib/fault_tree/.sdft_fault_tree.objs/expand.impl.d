lib/fault_tree/expand.ml: Array Fault_tree List Printf

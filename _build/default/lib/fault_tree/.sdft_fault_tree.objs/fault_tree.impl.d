lib/fault_tree/fault_tree.ml: Array Float Format Hashtbl List Printf Sdft_util

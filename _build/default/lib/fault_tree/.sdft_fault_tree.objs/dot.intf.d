lib/fault_tree/dot.mli: Fault_tree

lib/fault_tree/dot.ml: Array Buffer Fault_tree Fun List Printf String

lib/fault_tree/modules.mli: Fault_tree

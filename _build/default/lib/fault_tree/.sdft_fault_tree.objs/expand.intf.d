lib/fault_tree/expand.mli: Fault_tree

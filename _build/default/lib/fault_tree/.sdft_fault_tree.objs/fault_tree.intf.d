lib/fault_tree/fault_tree.mli: Format Sdft_util

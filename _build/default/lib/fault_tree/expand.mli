(** Expansion of K-of-N gates into AND/OR structure.

    The paper's formalism (and the cutset algorithms) work on AND/OR trees;
    this pass rewrites every [Atleast k] gate using the recursive identity
    [atleast k (x :: rest) = (x AND atleast (k-1) rest) OR atleast k rest],
    producing O(n*k) auxiliary gates per voting gate and preserving the
    boolean function, hence the minimal cutsets. *)

val expand_atleast : Fault_tree.t -> Fault_tree.t
(** Identity (same physical tree) when no K-of-N gate is present. Auxiliary
    gate names are suffixed with ["#k/i"] and do not clash with user
    names. *)

val has_atleast : Fault_tree.t -> bool

let has_atleast tree =
  let rec loop g =
    g < Fault_tree.n_gates tree
    && (match Fault_tree.gate_kind tree g with
       | Fault_tree.Atleast _ -> true
       | Fault_tree.And | Fault_tree.Or -> loop (g + 1))
  in
  loop 0

let expand_atleast tree =
  if not (has_atleast tree) then tree
  else begin
    let b = Fault_tree.Builder.create () in
    let basic_map =
      Array.init (Fault_tree.n_basics tree) (fun i ->
          Fault_tree.Builder.basic b
            ~prob:(Fault_tree.prob tree i)
            (Fault_tree.basic_name tree i))
    in
    let gate_map = Array.make (Fault_tree.n_gates tree) None in
    let fresh = ref 0 in
    let aux_name base =
      incr fresh;
      Printf.sprintf "%s#%d" base !fresh
    in
    let translate_node gate_of = function
      | Fault_tree.B i -> basic_map.(i)
      | Fault_tree.G g -> gate_of g
    in
    let rec gate_of g =
      match gate_map.(g) with
      | Some n -> n
      | None ->
        let name = Fault_tree.gate_name tree g in
        let inputs =
          Array.to_list
            (Array.map (translate_node gate_of) (Fault_tree.gate_inputs tree g))
        in
        let n =
          match Fault_tree.gate_kind tree g with
          | Fault_tree.And -> Fault_tree.Builder.gate b name Fault_tree.And inputs
          | Fault_tree.Or -> Fault_tree.Builder.gate b name Fault_tree.Or inputs
          | Fault_tree.Atleast k -> atleast name k inputs
        in
        gate_map.(g) <- Some n;
        n
    (* atleast k xs with 1 <= k <= length xs, producing a gate node. *)
    and atleast name k xs =
      let n = List.length xs in
      if k = 1 then Fault_tree.Builder.gate b name Fault_tree.Or xs
      else if k = n then Fault_tree.Builder.gate b name Fault_tree.And xs
      else
        match xs with
        | [] | [ _ ] -> assert false (* 1 < k < n implies n >= 2 *)
        | x :: rest ->
          let with_x =
            let sub = atleast (aux_name name) (k - 1) rest in
            Fault_tree.Builder.gate b (aux_name name) Fault_tree.And [ x; sub ]
          in
          let without_x = atleast (aux_name name) k rest in
          Fault_tree.Builder.gate b name Fault_tree.Or [ with_x; without_x ]
    in
    let top = gate_of (Fault_tree.top tree) in
    Fault_tree.Builder.build b ~top
  end

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c -> if c = '"' then Buffer.add_string buf "\\\"" else Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_dot ?(highlight_basics = fun _ -> false) ?(dynamic_basics = fun _ -> false)
    ?(trigger_edges = []) tree =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph fault_tree {\n  rankdir=TB;\n";
  for b = 0 to Fault_tree.n_basics tree - 1 do
    let shape = if dynamic_basics b then "doublecircle" else "circle" in
    let fill = if highlight_basics b then ", style=filled, fillcolor=lightcoral" else "" in
    Buffer.add_string buf
      (Printf.sprintf "  b%d [label=\"%s\", shape=%s%s];\n" b
         (escape (Fault_tree.basic_name tree b))
         shape fill)
  done;
  for g = 0 to Fault_tree.n_gates tree - 1 do
    let kind =
      match Fault_tree.gate_kind tree g with
      | Fault_tree.And -> "AND"
      | Fault_tree.Or -> "OR"
      | Fault_tree.Atleast k ->
        Printf.sprintf "%d/%d" k (Array.length (Fault_tree.gate_inputs tree g))
    in
    let peripheries = if g = Fault_tree.top tree then 2 else 1 in
    Buffer.add_string buf
      (Printf.sprintf
         "  g%d [label=\"%s\\n[%s]\", shape=box, peripheries=%d];\n" g
         (escape (Fault_tree.gate_name tree g))
         kind peripheries)
  done;
  for g = 0 to Fault_tree.n_gates tree - 1 do
    Array.iter
      (function
        | Fault_tree.B b -> Buffer.add_string buf (Printf.sprintf "  g%d -> b%d;\n" g b)
        | Fault_tree.G g' -> Buffer.add_string buf (Printf.sprintf "  g%d -> g%d;\n" g g'))
      (Fault_tree.gate_inputs tree g)
  done;
  List.iter
    (fun (g, b) ->
      Buffer.add_string buf
        (Printf.sprintf "  g%d -> b%d [style=dashed, color=blue, constraint=false];\n" g b))
    trigger_edges;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

type calibration =
  | Mttf
  | Mission_probability

type config = {
  dynamic_fraction : float;
  trigger_fraction : float;
  phases : int;
  repair_rate : float option;
  mission_hours : float;
  candidates : int list option;
  chain_groups : int list list option;
  cutoff : float;
  ranking_engine : Sdft_analysis.engine;
  calibration : calibration;
}

let default_config =
  {
    dynamic_fraction = 0.1;
    trigger_fraction = 0.01;
    phases = 1;
    repair_rate = None;
    mission_hours = 24.0;
    candidates = None;
    chain_groups = None;
    cutoff = 1e-15;
    ranking_engine = Sdft_analysis.Bdd_engine;
    calibration = Mttf;
  }

type result = {
  sd : Sdft.t;
  n_dynamic : int;
  n_triggered : int;
  dynamic_events : string list;
}

(* Rebuild the tree with one single-input OR gate ("<name>@w") above each
   listed basic event, available as a trigger source; the wrappers hang off
   the DAG (they feed no other gate), which is all a trigger needs. *)
let add_wrapper_gates tree basics =
  let b = Fault_tree.Builder.create () in
  let basic_nodes =
    Array.init (Fault_tree.n_basics tree) (fun i ->
        Fault_tree.Builder.basic b ~prob:(Fault_tree.prob tree i)
          (Fault_tree.basic_name tree i))
  in
  let gate_map = Array.make (Fault_tree.n_gates tree) None in
  let rec gate_of g =
    match gate_map.(g) with
    | Some node -> node
    | None ->
      let inputs =
        Array.to_list
          (Array.map
             (function
               | Fault_tree.B i -> basic_nodes.(i)
               | Fault_tree.G g' -> gate_of g')
             (Fault_tree.gate_inputs tree g))
      in
      let node =
        Fault_tree.Builder.gate b (Fault_tree.gate_name tree g)
          (Fault_tree.gate_kind tree g)
          inputs
      in
      gate_map.(g) <- Some node;
      node
  in
  let top = gate_of (Fault_tree.top tree) in
  let wrappers =
    List.map
      (fun i ->
        let name = Fault_tree.basic_name tree i ^ "@w" in
        let _ =
          Fault_tree.Builder.gate b name Fault_tree.Or [ basic_nodes.(i) ]
        in
        (i, name))
      basics
  in
  (Fault_tree.Builder.build b ~top, wrappers)

let run ?(config = default_config) tree =
  if config.dynamic_fraction < 0.0 || config.dynamic_fraction > 1.0 then
    invalid_arg "Dynamize.run: dynamic_fraction out of [0,1]";
  let nb = Fault_tree.n_basics tree in
  let cutsets =
    (Sdft_analysis.generate_cutsets ~cutoff:config.cutoff config.ranking_engine
       tree)
      .Mocus.cutsets
  in
  let importance = Importance.compute tree cutsets in
  let eligible =
    match config.candidates with
    | None -> fun _ -> true
    | Some l ->
      let set = Sdft_util.Int_set.of_list l in
      fun i -> Sdft_util.Int_set.mem i set
  in
  let usable i =
    eligible i
    &&
    let p = Fault_tree.prob tree i in
    p > 0.0 && p < 1.0
  in
  let n_dynamic =
    int_of_float (Float.round (config.dynamic_fraction *. float_of_int nb))
  in
  let ranked =
    List.filter usable (Importance.rank_by_fussell_vesely importance)
  in
  let chosen =
    List.filteri (fun idx _ -> idx < n_dynamic) ranked
  in
  let chosen_set = Sdft_util.Int_set.of_list chosen in
  (* Triggering chains among equal-importance groups of chosen events,
     highest importance first, until the trigger quota is reached. Every
     chain link "event e_i triggers e_{i+1}" needs a wrapper gate above
     e_i. *)
  let n_triggers =
    int_of_float (Float.round (config.trigger_fraction *. float_of_int nb))
  in
  let groups =
    match config.chain_groups with
    | Some explicit ->
      (* Keep the given order within each group; order groups by the
         importance of their most important member. *)
      let fv_of group =
        List.fold_left
          (fun acc i -> Float.max acc (Importance.fussell_vesely importance i))
          0.0 group
      in
      List.map snd
        (List.sort
           (fun (a, _) (b, _) -> compare b a)
           (List.map (fun g -> (fv_of g, g)) explicit))
    | None -> Importance.groups_by_fussell_vesely importance
  in
  let chains = ref [] (* (source event, triggered event) *) in
  let n_placed = ref 0 in
  List.iter
    (fun group ->
      let members =
        List.filter (fun i -> Sdft_util.Int_set.mem i chosen_set) group
      in
      let rec link = function
        | src :: dst :: rest when !n_placed < n_triggers ->
          chains := (src, dst) :: !chains;
          incr n_placed;
          link (dst :: rest)
        | _ -> ()
      in
      link members)
    groups;
  let chains = List.rev !chains in
  let sources = List.sort_uniq compare (List.map fst chains) in
  let wrapped_tree, wrappers = add_wrapper_gates tree sources in
  let wrapper_of = List.to_seq wrappers |> Hashtbl.of_seq in
  let triggered = List.map snd chains in
  let triggered_set = Sdft_util.Int_set.of_list triggered in
  (* CDF of an Erlang-k failure built from phase rate k*lambda. *)
  let erlang_cdf k lambda t =
    let r = float_of_int k *. lambda *. t in
    let term = ref 1.0 and acc = ref 1.0 in
    for i = 1 to k - 1 do
      term := !term *. r /. float_of_int i;
      acc := !acc +. !term
    done;
    1.0 -. (exp (-.r) *. !acc)
  in
  let rate_of i =
    let p = Fault_tree.prob tree i in
    match config.calibration with
    | Mttf -> -.log (1.0 -. p) /. config.mission_hours
    | Mission_probability ->
      (* Bisection on lambda: the CDF is increasing in the rate. *)
      let t = config.mission_hours in
      let k = config.phases in
      let lo = ref 0.0 and hi = ref (1.0 /. t) in
      while erlang_cdf k !hi t < p do
        hi := !hi *. 2.0
      done;
      for _ = 1 to 200 do
        let mid = 0.5 *. (!lo +. !hi) in
        if erlang_cdf k mid t < p then lo := mid else hi := mid
      done;
      0.5 *. (!lo +. !hi)
  in
  let dynamic =
    List.map
      (fun i ->
        let name = Fault_tree.basic_name tree i in
        let lambda = rate_of i in
        let d =
          if Sdft_util.Int_set.mem i triggered_set then
            Dbe.triggered_erlang ~phases:config.phases ~lambda
              ?mu:config.repair_rate ~passive_factor:0.01 ()
          else
            Dbe.erlang ~phases:config.phases ~lambda ?mu:config.repair_rate ()
        in
        (name, d))
      chosen
  in
  let triggers =
    List.map
      (fun (src, dst) ->
        (Hashtbl.find wrapper_of src, Fault_tree.basic_name tree dst))
      chains
  in
  let sd = Sdft.make wrapped_tree ~dynamic ~triggers in
  {
    sd;
    n_dynamic = List.length chosen;
    n_triggered = List.length triggers;
    dynamic_events = List.map (fun i -> Fault_tree.basic_name tree i) chosen;
  }

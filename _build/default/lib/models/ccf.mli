(** Common-cause failures by the beta-factor model.

    Redundant trains defeat the AND logic of a fault tree only through
    shared causes; PSA models capture this with parametric CCF models. The
    beta-factor model splits each member's failure probability [p] into an
    independent part [(1-beta) p] and a common part [beta p] failing all
    members of the group at once. The paper notes CCFs "are less influenced
    by timing dependencies and usually dominate the result", which is why
    its dynamics experiment disregards them — this module lets a model
    include or exclude them explicitly and quantifies that remark. *)

type group = {
  name : string;  (** the new CCF basic event is called ["CCF:" ^ name] *)
  members : string list;  (** basic events of the group (at least two) *)
  beta : float;  (** fraction of the failure probability that is common *)
}

val apply : Fault_tree.t -> group list -> Fault_tree.t
(** Rebuild the tree: every member [b] of a group is replaced (everywhere it
    occurs) by an OR gate ["b+ccf"] over [b] (probability scaled by
    [1-beta]) and the group's shared CCF event (probability [beta * p],
    where [p] is the members' common probability).

    @raise Invalid_argument when a member is unknown or dynamic groups
    overlap, when [beta] is outside [[0,1]], or when members of one group
    have different probabilities (the beta-factor model assumes identical
    redundant components). *)

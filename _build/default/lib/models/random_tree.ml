module Rng = Sdft_util.Rng

let tree ?(max_prob = 0.3) rng ~n_basics ~n_gates =
  if n_basics < 1 || n_gates < 1 then
    invalid_arg "Random_tree.tree: need at least one basic and one gate";
  let b = Fault_tree.Builder.create () in
  let nodes = Sdft_util.Vec.create () in
  for i = 0 to n_basics - 1 do
    let prob = Rng.float rng *. max_prob in
    Sdft_util.Vec.push nodes
      (Fault_tree.Builder.basic b ~prob (Printf.sprintf "e%d" i))
  done;
  let used = Hashtbl.create 16 in
  for g = 0 to n_gates - 2 do
    let pool = Sdft_util.Vec.length nodes in
    let arity = 2 + Rng.int rng (min 3 pool) in
    let inputs = ref [] in
    while List.length !inputs < min arity pool do
      let candidate = Sdft_util.Vec.get nodes (Rng.int rng pool) in
      if not (List.mem candidate !inputs) then inputs := candidate :: !inputs
    done;
    let n_inputs = List.length !inputs in
    let kind =
      match Rng.int rng (if n_inputs >= 3 then 5 else 4) with
      | 0 | 1 -> Fault_tree.And
      | 2 | 3 -> Fault_tree.Or
      | _ -> Fault_tree.Atleast (2 + Rng.int rng (n_inputs - 2 + 1))
    in
    let node = Fault_tree.Builder.gate b (Printf.sprintf "g%d" g) kind !inputs in
    List.iter (fun i -> Hashtbl.replace used i ()) !inputs;
    Sdft_util.Vec.push nodes node
  done;
  (* Top: OR over everything not used as an input, so that no node is dead. *)
  let orphans =
    Sdft_util.Vec.fold_left
      (fun acc node -> if Hashtbl.mem used node then acc else node :: acc)
      [] nodes
  in
  let top = Fault_tree.Builder.gate b "top" Fault_tree.Or orphans in
  Fault_tree.Builder.build b ~top

let random_dbe rng =
  let lambda = 0.01 +. (Rng.float rng *. 0.1) in
  let mu = if Rng.bool rng then Some (0.05 +. (Rng.float rng *. 0.2)) else None in
  let phases = 1 + Rng.int rng 2 in
  if Rng.bool rng then Dbe.erlang ~phases ~lambda ?mu ()
  else
    Dbe.triggered_erlang ~phases ~lambda ?mu
      ~passive_factor:(if Rng.bool rng then 0.0 else 0.01)
      ()

let sd ?max_prob ?(n_dynamic = 3) ?(n_triggers = 2) rng ~n_basics ~n_gates =
  let t = tree ?max_prob rng ~n_basics ~n_gates in
  let nb = Fault_tree.n_basics t in
  let ng = Fault_tree.n_gates t in
  let candidates = Array.init nb Fun.id in
  Rng.shuffle rng candidates;
  let dynamic_ids =
    Array.to_list (Array.sub candidates 0 (min n_dynamic nb))
  in
  let dynamic =
    List.map (fun i -> (i, random_dbe rng)) dynamic_ids
  in
  (* Only events with on/off structure can be triggered. *)
  let triggerable =
    List.filter_map
      (fun (i, d) -> if Dbe.is_triggered_model d then Some i else None)
      dynamic
  in
  (* Sample candidate edges and keep those that Sdft.make accepts; the
     acyclicity and single-trigger rules are enforced by retrying. *)
  let edges = ref [] in
  let attempts = ref 0 in
  while List.length !edges < n_triggers && !attempts < 50 do
    incr attempts;
    match triggerable with
    | [] -> attempts := 50
    | _ ->
      let b = List.nth triggerable (Rng.int rng (List.length triggerable)) in
      let g = Rng.int rng ng in
      let candidate = (g, b) :: !edges in
      if not (List.exists (fun (_, b') -> b' = b) !edges) then begin
        match Sdft.of_indexed t ~dynamic ~triggers:candidate with
        | _ -> edges := candidate
        | exception Invalid_argument _ -> ()
      end
  done;
  (* Untriggered events must not keep an off-mode initial state they can
     never leave: replace triggered-model events that ended up untriggered
     by their always-on equivalents. *)
  let triggered_ids = List.map snd !edges in
  let dynamic =
    List.map
      (fun (i, d) ->
        if Dbe.is_triggered_model d && not (List.mem i triggered_ids) then
          (i, Dbe.make ~n_states:(Dbe.n_states d)
                ~init:(Dbe.initial_on d)
                ~transitions:
                  (let acc = ref [] in
                   Ctmc.iter_transitions (Dbe.chain d) (fun s dst r ->
                       acc := (s, dst, r) :: !acc);
                   !acc)
                ~failed:
                  (List.filter (Dbe.is_failed d)
                     (List.init (Dbe.n_states d) Fun.id))
                ())
        else (i, d))
      dynamic
  in
  Sdft.of_indexed t ~dynamic ~triggers:!edges

(** Synthetic industrial-scale PSA models (substitute for the proprietary
    nuclear safety studies of Section VI-B).

    The generator mimics the structure of a full-scope probabilistic safety
    assessment: an event-tree layer (initiating events combined with the
    failure of several frontline safety systems per accident sequence) on
    top of frontline systems with redundant pump trains, per-train component
    chains with multiple failure modes, shared support systems (power,
    cooling chains) that make the model a DAG, optional 2-of-3 actuation
    logic, and transfer-gate chains. All randomness is drawn from the seed,
    so every model is reproducible.

    Two presets approximate the paper's "model 1" and "model 2" in the
    quantities that drive analysis cost (minimal-cutset counts in the tens
    of thousands, cutset orders 1-6); [small] is a scaled-down configuration
    for quick runs and tests. *)

type params = {
  seed : int;
  n_frontline : int;
  n_support : int;
  trains_per_system : int * int;  (** min/max, inclusive *)
  components_per_train : int;
  modes_per_component : int * int;  (** failure modes per component *)
  n_initiators : int;
  n_sequences : int;
  systems_per_sequence : int * int;
  transfer_depth : int;  (** pass-through gate chains above train gates *)
  with_actuation : bool;  (** 2-of-3 sensor voting per system *)
  mission_hours : float;
}

val small : params
(** ~150 basic events; seconds to analyse. *)

val medium : params
(** ~600 basic events; default for the benchmark harness. *)

val model_1 : params
(** Paper-scale preset (thousands of basic events). *)

val model_2 : params
(** As [model_1] but with deeper sequence logic (more, longer sequences),
    which the paper observed to be substantially more expensive. *)

val generate : params -> Fault_tree.t

val run_events : Fault_tree.t -> int list
(** Indices of the failure-in-operation ("*.run") events — the candidates
    for dynamic treatment. *)

val run_event_groups : Fault_tree.t -> int list list
(** The same events grouped by system (the symmetric redundant trains),
    ordered by train number — the natural triggering chains for
    {!Dynamize}. *)

type pending = {
  dynamic : (string * Dbe.t) list;
  triggers : (string * string) list;
}

let empty = { dynamic = []; triggers = [] }

let merge ps =
  {
    dynamic = List.concat_map (fun p -> p.dynamic) ps;
    triggers = List.concat_map (fun p -> p.triggers) ps;
  }

let make_sdft builder ~top pending =
  let tree = Fault_tree.Builder.build builder ~top in
  Sdft.make tree ~dynamic:pending.dynamic ~triggers:pending.triggers

let component builder ~name ~p_start ~lambda ?mu ?(phases = 1)
    ?(triggered = false) () =
  let start =
    Fault_tree.Builder.basic builder ~prob:p_start (name ^ ".start")
  in
  let run = Fault_tree.Builder.basic builder (name ^ ".run") in
  let gate =
    Fault_tree.Builder.gate builder name Fault_tree.Or [ start; run ]
  in
  let dbe =
    if triggered then
      Dbe.triggered_erlang ~phases ~lambda ?mu ~passive_factor:0.01 ()
    else Dbe.erlang ~phases ~lambda ?mu ()
  in
  (gate, { dynamic = [ (name ^ ".run", dbe) ]; triggers = [] })

let trigger ~gate ~tree_gate_name pending ~event =
  (match gate with
  | Fault_tree.G _ -> ()
  | Fault_tree.B _ -> invalid_arg "Templates.trigger: trigger source must be a gate");
  { pending with triggers = (tree_gate_name, event) :: pending.triggers }

let standby_pair builder ~name ~p_start ~lambda ?mu ?phases () =
  let a, pa =
    component builder ~name:(name ^ ".A") ~p_start ~lambda ?mu ?phases ()
  in
  let b, pb =
    component builder ~name:(name ^ ".B") ~p_start ~lambda ?mu ?phases
      ~triggered:true ()
  in
  let gate = Fault_tree.Builder.gate builder name Fault_tree.And [ a; b ] in
  let pending = merge [ pa; pb ] in
  let pending =
    trigger ~gate:a ~tree_gate_name:(name ^ ".A") pending
      ~event:(name ^ ".B.run")
  in
  (gate, pending)

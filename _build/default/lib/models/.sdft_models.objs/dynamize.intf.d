lib/models/dynamize.mli: Fault_tree Sdft Sdft_analysis

lib/models/industrial.ml: Array Fault_tree Hashtbl List Printf Sdft_util String

lib/models/ccf.mli: Fault_tree

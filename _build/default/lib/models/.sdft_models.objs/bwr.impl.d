lib/models/bwr.ml: Array Dbe Fault_tree List Printf Sdft

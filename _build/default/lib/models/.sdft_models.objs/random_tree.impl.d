lib/models/random_tree.ml: Array Ctmc Dbe Fault_tree Fun Hashtbl List Printf Sdft Sdft_util

lib/models/random_tree.mli: Fault_tree Sdft Sdft_util

lib/models/dynamize.ml: Array Dbe Fault_tree Float Hashtbl Importance List Mocus Sdft Sdft_analysis Sdft_util

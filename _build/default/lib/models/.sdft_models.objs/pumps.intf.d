lib/models/pumps.mli: Fault_tree Sdft

lib/models/pumps.ml: Dbe Fault_tree Sdft

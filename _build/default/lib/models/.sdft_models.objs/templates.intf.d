lib/models/templates.mli: Dbe Fault_tree Sdft

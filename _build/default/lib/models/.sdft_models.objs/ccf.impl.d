lib/models/ccf.ml: Array Fault_tree Float Hashtbl List Option Printf

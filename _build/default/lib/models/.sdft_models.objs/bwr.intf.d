lib/models/bwr.mli: Fault_tree Sdft

lib/models/templates.ml: Dbe Fault_tree List Sdft

lib/models/industrial.mli: Fault_tree

let failure_rate = 1e-3

let repair_rate = 5e-2

let gate_pump1 = "pump1"

let gate_pump2 = "pump2"

let gate_pumps = "pumps"

let gate_cooling = "cooling"

let static_tree () =
  let b = Fault_tree.Builder.create () in
  let a = Fault_tree.Builder.basic b ~prob:3e-3 "a" in
  let fb = Fault_tree.Builder.basic b ~prob:1e-3 "b" in
  let c = Fault_tree.Builder.basic b ~prob:3e-3 "c" in
  let d = Fault_tree.Builder.basic b ~prob:1e-3 "d" in
  let e = Fault_tree.Builder.basic b ~prob:3e-6 "e" in
  let pump1 = Fault_tree.Builder.gate b gate_pump1 Fault_tree.Or [ a; fb ] in
  let pump2 = Fault_tree.Builder.gate b gate_pump2 Fault_tree.Or [ c; d ] in
  let pumps = Fault_tree.Builder.gate b gate_pumps Fault_tree.And [ pump1; pump2 ] in
  let top = Fault_tree.Builder.gate b gate_cooling Fault_tree.Or [ pumps; e ] in
  Fault_tree.Builder.build b ~top

let sd_tree () =
  let tree = static_tree () in
  (* Pump 1 operates from the start: plain repairable exponential failure.
     Pump 2 is the spare: switched on when pump 1 fails, no failures while
     off, repaired even while off (Example 2). *)
  let b_dyn = Dbe.exponential ~lambda:failure_rate ~mu:repair_rate () in
  let d_dyn =
    Dbe.triggered_exponential ~lambda:failure_rate ~mu:repair_rate
      ~passive_factor:0.0 ~repair_when_off:true ()
  in
  Sdft.make tree
    ~dynamic:[ ("b", b_dyn); ("d", d_dyn) ]
    ~triggers:[ (gate_pump1, "d") ]

(** Random fault trees and random SD fault trees for property-based
    testing.

    Trees are built bottom-up (each gate draws inputs among the nodes
    created before it, so the DAG property holds by construction) and the
    top gate is an OR over all orphan nodes, which guarantees every basic
    event can influence the top. Trigger edges are sampled and checked
    against the acyclicity rule; invalid candidates are skipped. *)

val tree :
  ?max_prob:float ->
  Sdft_util.Rng.t ->
  n_basics:int ->
  n_gates:int ->
  Fault_tree.t
(** Random coherent tree with AND/OR/K-of-N gates; basic-event probabilities
    are uniform in [[0, max_prob]] (default 0.3 — large enough that test
    oracles see non-trivial numbers). *)

val sd :
  ?max_prob:float ->
  ?n_dynamic:int ->
  ?n_triggers:int ->
  Sdft_util.Rng.t ->
  n_basics:int ->
  n_gates:int ->
  Sdft.t
(** Random SD fault tree: a random tree, a random subset of dynamic events
    (exponential or two-phase Erlang, some repairable), and up to
    [n_triggers] valid trigger edges. *)

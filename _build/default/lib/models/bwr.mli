(** The fictive boiling-water-reactor safety study of Section VI-A.

    Five safety systems related to cooling, each with two redundant pump
    trains: ECC (Emergency Core Cooling), EFW (Emergency Feed Water), RHR
    (Residual Heat Removal), and the support systems CCW (Component Cooling
    Water, needed by both ECC and EFW) and SWS (Service Water, needed by
    CCW). If both RHR trains fail, the FEED&BLEED operator recovery is
    demanded. Core damage requires the initiating event and either the loss
    of both injection systems (ECC and EFW) or the loss of decay-heat
    removal (RHR and FEED&BLEED).

    Each pump can fail to start (static) or fail in operation (a candidate
    for dynamic treatment). Trigger edges follow the paper: the failure of
    the first train of a system triggers the failure-in-operation event of
    the second train's pump of the same system, and the failure of the
    complete RHR system triggers the FEED&BLEED injection event.

    The structure makes the train-level trigger gates satisfy {e static
    joins} (support-system chains hang under OR gates only), while the
    FEED&BLEED trigger gate (an AND over the two RHR trains) is {e general}
    — exercising all three classes of Section V-A. *)

type trigger_site =
  | Feed_and_bleed  (** RHR system failure triggers the F&B injection *)
  | Rhr_second_train
  | Efw_second_train
  | Ecc_second_train
  | Sws_second_train
  | Ccw_second_train

val all_trigger_sites : trigger_site list
(** In the cumulative order of the paper's table. *)

type config = {
  mission_hours : float;
      (** mission time used for the static probabilities of
          failure-in-operation events (paper: 24h) *)
  dynamic_pumps : bool;
      (** replace all failure-in-operation events by dynamic basic events *)
  phases : int;  (** Erlang phases [k] of the dynamic failures *)
  repair_rate : float option;  (** [mu]; [None] disables repairs *)
  triggers : trigger_site list;
  include_ccf : bool;
      (** add static common-cause failure events per pump pair (the paper
          disregards them in the dynamics experiment, noting they dominate
          otherwise) *)
}

val default_config : config
(** 24h mission, dynamic pumps with one phase, no repairs, no triggers, no
    CCF. *)

val static_config : config
(** The purely static legacy study (the table's "no timing" row). *)

val build : config -> Sdft.t

val static_tree : ?include_ccf:bool -> ?mission_hours:float -> unit -> Fault_tree.t

val run_failure_rate : float
(** Failure-in-operation rate of every pump (2e-4 per hour). *)

val fb_gate : string
(** Name of the gate whose failure demands FEED&BLEED (the RHR system
    failure gate). *)

type group = {
  name : string;
  members : string list;
  beta : float;
}

let apply tree groups =
  let member_info = Hashtbl.create 16 in
  (* member basic id -> (group index, beta) *)
  List.iteri
    (fun gi g ->
      if List.length g.members < 2 then
        invalid_arg
          (Printf.sprintf "Ccf.apply: group %S needs at least two members" g.name);
      if g.beta < 0.0 || g.beta > 1.0 then
        invalid_arg (Printf.sprintf "Ccf.apply: group %S: beta out of [0,1]" g.name);
      let probs =
        List.map
          (fun m ->
            match Fault_tree.basic_index tree m with
            | Some b -> Fault_tree.prob tree b
            | None ->
              invalid_arg
                (Printf.sprintf "Ccf.apply: unknown member %S of group %S" m g.name))
          g.members
      in
      (match probs with
      | p :: rest ->
        if List.exists (fun q -> Float.abs (q -. p) > 1e-12) rest then
          invalid_arg
            (Printf.sprintf
               "Ccf.apply: group %S: members must have equal probabilities"
               g.name)
      | [] -> assert false);
      List.iter
        (fun m ->
          let b = Option.get (Fault_tree.basic_index tree m) in
          if Hashtbl.mem member_info b then
            invalid_arg
              (Printf.sprintf "Ccf.apply: %S belongs to two CCF groups" m);
          Hashtbl.replace member_info b gi)
        g.members)
    groups;
  let groups_arr = Array.of_list groups in
  let builder = Fault_tree.Builder.create () in
  (* Basic events in original order (indices preserved), with member
     probabilities scaled down by (1 - beta). *)
  let basic_nodes =
    Array.init (Fault_tree.n_basics tree) (fun b ->
        let p = Fault_tree.prob tree b in
        let p =
          match Hashtbl.find_opt member_info b with
          | Some gi -> p *. (1.0 -. groups_arr.(gi).beta)
          | None -> p
        in
        Fault_tree.Builder.basic builder ~prob:p (Fault_tree.basic_name tree b))
  in
  (* One shared CCF event per group. *)
  let ccf_nodes =
    Array.mapi
      (fun _ g ->
        let member = List.hd g.members in
        let p = Fault_tree.prob tree (Option.get (Fault_tree.basic_index tree member)) in
        Fault_tree.Builder.basic builder ~prob:(g.beta *. p) ("CCF:" ^ g.name))
      groups_arr
  in
  (* Wrapper OR gates replacing the member occurrences. *)
  let wrapper = Hashtbl.create 16 in
  let node_of_basic b =
    match Hashtbl.find_opt member_info b with
    | None -> basic_nodes.(b)
    | Some gi -> (
      match Hashtbl.find_opt wrapper b with
      | Some node -> node
      | None ->
        let node =
          Fault_tree.Builder.gate builder
            (Fault_tree.basic_name tree b ^ "+ccf")
            Fault_tree.Or
            [ basic_nodes.(b); ccf_nodes.(gi) ]
        in
        Hashtbl.replace wrapper b node;
        node)
  in
  let gate_map = Array.make (Fault_tree.n_gates tree) None in
  let rec gate_of g =
    match gate_map.(g) with
    | Some node -> node
    | None ->
      let inputs =
        Array.to_list
          (Array.map
             (function
               | Fault_tree.B b -> node_of_basic b
               | Fault_tree.G g' -> gate_of g')
             (Fault_tree.gate_inputs tree g))
      in
      let node =
        Fault_tree.Builder.gate builder (Fault_tree.gate_name tree g)
          (Fault_tree.gate_kind tree g)
          inputs
      in
      gate_map.(g) <- Some node;
      node
  in
  let top = gate_of (Fault_tree.top tree) in
  Fault_tree.Builder.build builder ~top

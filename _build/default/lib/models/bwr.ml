type trigger_site =
  | Feed_and_bleed
  | Rhr_second_train
  | Efw_second_train
  | Ecc_second_train
  | Sws_second_train
  | Ccw_second_train

let all_trigger_sites =
  [
    Feed_and_bleed;
    Rhr_second_train;
    Efw_second_train;
    Ecc_second_train;
    Sws_second_train;
    Ccw_second_train;
  ]

type config = {
  mission_hours : float;
  dynamic_pumps : bool;
  phases : int;
  repair_rate : float option;
  triggers : trigger_site list;
  include_ccf : bool;
}

let default_config =
  {
    mission_hours = 24.0;
    dynamic_pumps = true;
    phases = 1;
    repair_rate = None;
    triggers = [];
    include_ccf = false;
  }

let static_config = { default_config with dynamic_pumps = false }

(* Failure data (per-demand probabilities and hourly rates). *)
let run_failure_rate = 2e-4

let p_pump_start = 1e-3

let p_mov = 3e-4

let p_breaker = 1e-4

let p_suction = 1e-5

let p_hx = 1e-4

let p_strainer = 2e-4

let p_loop = 1e-2 (* loss of offsite power during the mission *)

let p_dg_start = 1e-2

let dg_run_rate = 5e-4

let p_fb_operator = 1e-2

let p_fb_valve = 2e-3

let p_initiating_event = 1e-3

let p_ccf = 2e-4

let fb_gate = "RHR.fail"

let mission_probability rate hours = 1.0 -. exp (-.rate *. hours)

(* Names of the failure-in-operation events per system and train. *)
let run_event system train = Printf.sprintf "%s.P%d.run" system train

let fb_run_event = "FB.run"

let static_tree_builder ~include_ccf ~mission_hours =
  let b = Fault_tree.Builder.create () in
  let basic = Fault_tree.Builder.basic b in
  let gate = Fault_tree.Builder.gate b in
  let p_run = mission_probability run_failure_rate mission_hours in
  let p_dg_run = mission_probability dg_run_rate mission_hours in
  (* Electric power: one bus per train; a bus fails when offsite power is
     lost and the train's diesel generator fails. *)
  let loop = basic ~prob:p_loop "LOOP" in
  let bus =
    Array.init 2 (fun i ->
        let t = i + 1 in
        let dg_start = basic ~prob:p_dg_start (Printf.sprintf "DG%d.start" t) in
        let dg_run = basic ~prob:p_dg_run (Printf.sprintf "DG%d.run" t) in
        let dg =
          gate (Printf.sprintf "DG%d.fail" t) Fault_tree.Or [ dg_start; dg_run ]
        in
        gate (Printf.sprintf "BUS%d" t) Fault_tree.And [ loop; dg ])
  in
  (* A pump train of [system]: the pump fails to start or in operation, plus
     train-local equipment and the support inputs. *)
  let pump_train system t extra_inputs =
    let s = basic ~prob:p_pump_start (Printf.sprintf "%s.P%d.start" system t) in
    let r = basic ~prob:p_run (run_event system t) in
    gate
      (Printf.sprintf "%s.T%d" system t)
      Fault_tree.Or
      ([ s; r ] @ extra_inputs)
  in
  (* A common-cause event per pump pair, shared by both trains of the
     system: it defeats the train redundancy directly, which is why the
     paper notes CCFs "usually dominate the result". *)
  let ccf_of system =
    if include_ccf then [ basic ~prob:p_ccf (Printf.sprintf "%s.ccf" system) ]
    else []
  in
  (* Service Water System: bottom of the support chain. *)
  let sws_ccf = ccf_of "SWS" in
  let sws_train =
    Array.init 2 (fun i ->
        let t = i + 1 in
        let strainer =
          basic ~prob:p_strainer (Printf.sprintf "SWS.T%d.strainer" t)
        in
        pump_train "SWS" t (strainer :: sws_ccf))
  in
  (* Component Cooling Water: needs service water. *)
  let ccw_ccf = ccf_of "CCW" in
  let ccw_train =
    Array.init 2 (fun i ->
        let t = i + 1 in
        let hx = basic ~prob:p_hx (Printf.sprintf "CCW.T%d.hx" t) in
        pump_train "CCW" t ([ hx; sws_train.(i) ] @ ccw_ccf))
  in
  (* A frontline train: valve, breaker, bus, and optionally component
     cooling; suction source is shared between the two trains of a
     system. *)
  let frontline system ~needs_ccw =
    let suction = basic ~prob:p_suction (Printf.sprintf "%s.suction" system) in
    let ccf = ccf_of system in
    let trains =
      Array.init 2 (fun i ->
          let t = i + 1 in
          let mov = basic ~prob:p_mov (Printf.sprintf "%s.T%d.mov" system t) in
          let breaker =
            basic ~prob:p_breaker (Printf.sprintf "%s.T%d.breaker" system t)
          in
          let support = if needs_ccw then [ ccw_train.(i) ] else [] in
          pump_train system t ([ mov; breaker; suction; bus.(i) ] @ support @ ccf))
    in
    gate
      (Printf.sprintf "%s.trains" system)
      Fault_tree.And
      (Array.to_list trains)
  in
  let system_fail system trains_gate =
    gate (Printf.sprintf "%s.fail" system) Fault_tree.Or [ trains_gate ]
  in
  let ecc = system_fail "ECC" (frontline "ECC" ~needs_ccw:true) in
  let efw = system_fail "EFW" (frontline "EFW" ~needs_ccw:true) in
  let rhr = system_fail "RHR" (frontline "RHR" ~needs_ccw:false) in
  (* FEED&BLEED recovery: operator action, two relief valves, and the
     injection failing in operation. *)
  let fb =
    let operator = basic ~prob:p_fb_operator "FB.operator" in
    let v1 = basic ~prob:p_fb_valve "FB.valve1" in
    let v2 = basic ~prob:p_fb_valve "FB.valve2" in
    let run = basic ~prob:p_run fb_run_event in
    gate "FB.fail" Fault_tree.Or [ operator; v1; v2; run ]
  in
  let injection = gate "no_injection" Fault_tree.And [ ecc; efw ] in
  let heat_removal = gate "no_heat_removal" Fault_tree.And [ rhr; fb ] in
  let ie = basic ~prob:p_initiating_event "IE.loss_of_feedwater" in
  let sequences = gate "sequences" Fault_tree.Or [ injection; heat_removal ] in
  let top = gate "core_damage" Fault_tree.And [ ie; sequences ] in
  Fault_tree.Builder.build b ~top

let static_tree ?(include_ccf = false) ?(mission_hours = 24.0) () =
  static_tree_builder ~include_ccf ~mission_hours

let build config =
  let tree =
    static_tree_builder ~include_ccf:config.include_ccf
      ~mission_hours:config.mission_hours
  in
  if not config.dynamic_pumps then Sdft.static_only tree
  else begin
    let triggers =
      List.filter_map
        (function
          | Feed_and_bleed -> Some (fb_gate, fb_run_event)
          | Rhr_second_train -> Some ("RHR.T1", run_event "RHR" 2)
          | Efw_second_train -> Some ("EFW.T1", run_event "EFW" 2)
          | Ecc_second_train -> Some ("ECC.T1", run_event "ECC" 2)
          | Sws_second_train -> Some ("SWS.T1", run_event "SWS" 2)
          | Ccw_second_train -> Some ("CCW.T1", run_event "CCW" 2))
        config.triggers
    in
    let triggered_events = List.map snd triggers in
    let run_events =
      fb_run_event
      :: List.concat_map
           (fun system -> [ run_event system 1; run_event system 2 ])
           [ "ECC"; "EFW"; "RHR"; "CCW"; "SWS" ]
    in
    let dbe_for name =
      if List.mem name triggered_events then
        Dbe.triggered_erlang ~phases:config.phases ~lambda:run_failure_rate
          ?mu:config.repair_rate ~passive_factor:0.01 ()
      else
        Dbe.erlang ~phases:config.phases ~lambda:run_failure_rate
          ?mu:config.repair_rate ()
    in
    let dynamic = List.map (fun name -> (name, dbe_for name)) run_events in
    Sdft.make tree ~dynamic ~triggers
  end

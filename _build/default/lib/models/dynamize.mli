(** Automatic dynamization of a static fault tree (Section VI-B).

    Reproduces the paper's procedure for turning a legacy static study into
    an SD fault tree: the given fraction of basic events with the highest
    Fussell-Vesely importance is replaced by dynamic basic events (Erlang
    failures preserving each event's mean time to failure over the mission),
    and triggering chains are created among dynamic events of equal
    importance (symmetric redundant trains): the first event of a chain
    directly triggers the second, the second the third, and so on — the
    simplest static-branching pattern of Figure 1, realised by a
    single-input wrapper gate above each triggering event. *)

type calibration =
  | Mttf
      (** preserve the event's mean time to failure (the paper's rule):
          [lambda = -ln(1-p)/mission]. With Erlang phases and [lambda *
          mission << 1] the within-mission failure probability drops
          sharply as [k] grows. *)
  | Mission_probability
      (** choose the Erlang rate so that the probability of failing within
          the mission equals the original static probability for every
          phase count — isolates the chain-size effect of [k]. *)

type config = {
  dynamic_fraction : float;  (** share of basic events made dynamic, [0,1] *)
  trigger_fraction : float;
      (** share of basic events that become triggered (paper: one tenth of
          [dynamic_fraction]) *)
  phases : int;
  repair_rate : float option;
  mission_hours : float;
      (** converts the static probability [p] back to a rate
          [-ln(1-p)/mission] *)
  candidates : int list option;
      (** restrict dynamization to these events (e.g. failure-in-operation
          events); [None] allows every event *)
  chain_groups : int list list option;
      (** explicit groups of symmetric redundant events to chain (e.g.
          {!Industrial.run_event_groups}); [None] falls back to grouping by
          equal Fussell-Vesely importance *)
  cutoff : float;  (** cutoff for the importance-ranking cutset run *)
  ranking_engine : Sdft_analysis.engine;
      (** cutset engine used for the importance ranking (default
          [Bdd_engine]: exact and fast on event-tree-shaped models) *)
  calibration : calibration;  (** default [Mttf] *)
}

val default_config : config
(** 10% dynamic, 1% triggered, one phase, no repair, 24h mission, all
    events, cutoff 1e-15, BDD ranking engine. *)

type result = {
  sd : Sdft.t;
  n_dynamic : int;
  n_triggered : int;
  dynamic_events : string list;
}

val run : ?config:config -> Fault_tree.t -> result

(** Reusable SD modeling patterns (Figure 1 of the paper).

    Building an SD fault tree with the raw API means creating gates and
    separately accumulating the dynamic-event and trigger associations.
    These helpers build the recurring patterns — a component with a static
    failure-to-start and a dynamic failure-in-operation, a running/standby
    spare pair, a redundant system triggering its standby train — and return
    the {e pending} associations to pass to {!Sdft.make} at the end. *)

type pending = {
  dynamic : (string * Dbe.t) list;
  triggers : (string * string) list;
}

val empty : pending

val merge : pending list -> pending

val make_sdft : Fault_tree.Builder.t -> top:Fault_tree.node -> pending -> Sdft.t
(** [Builder.build] followed by [Sdft.make] with the accumulated
    associations. *)

val component :
  Fault_tree.Builder.t ->
  name:string ->
  p_start:float ->
  lambda:float ->
  ?mu:float ->
  ?phases:int ->
  ?triggered:bool ->
  unit ->
  Fault_tree.node * pending
(** Figure 1 (left, 2): an OR gate ["<name>"] over a static
    failure-to-start ["<name>.start"] and a dynamic failure-in-operation
    ["<name>.run"]. With [triggered] the run event gets on/off structure
    (and must be connected by {!trigger} or inside {!standby_pair}). *)

val trigger : gate:Fault_tree.node -> tree_gate_name:string -> pending -> event:string -> pending
(** Add a trigger edge [gate -> event] to the pending set; [tree_gate_name]
    must be the gate's name. (Exposed for custom wiring; the pair helpers
    below do this internally.) *)

val standby_pair :
  Fault_tree.Builder.t ->
  name:string ->
  p_start:float ->
  lambda:float ->
  ?mu:float ->
  ?phases:int ->
  unit ->
  Fault_tree.node * pending
(** Figure 1 (left, 3): an AND gate ["<name>"] over a running component
    ["<name>.A"] and a standby component ["<name>.B"] whose
    failure-in-operation is triggered by the failure of the running one.
    Fails when both trains are failed at the same time. *)

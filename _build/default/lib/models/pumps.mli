(** The paper's running example: an emergency cooling system with a water
    tank and two redundant pumps (Examples 1-6).

    Basic events: [a]/[c] — pump 1/2 fails to start (probability 3e-3),
    [b]/[d] — pump 1/2 fails in operation (probability 1e-3 statically; rate
    1e-3 per hour with repair rate 5e-2 dynamically), [e] — water tank
    failure (3e-6). Structure:
    [cooling = OR(AND(OR(a,b), OR(c,d)), e)]. *)

val static_tree : unit -> Fault_tree.t
(** Example 1. Its minimal cutsets are [{e}], [{a,c}], [{a,d}], [{b,c}],
    [{b,d}]; the scenario [{a,d}] has probability ~2.988e-6. *)

val sd_tree : unit -> Sdft.t
(** Example 3: [b] and [d] become dynamic. [b] runs from time zero (pump 1
    operates from the start); [d] belongs to the spare pump and is triggered
    by the failure of pump 1 (gate ["pump1"]), with repair continuing while
    untriggered and no passive failures — exactly Example 2's chains. *)

val failure_rate : float
(** 1e-3 per hour. *)

val repair_rate : float
(** 5e-2 per hour. *)

(** Names of the gates/basics for convenience in tests. *)

val gate_pump1 : string

val gate_pump2 : string

val gate_pumps : string

val gate_cooling : string

type params = {
  seed : int;
  n_frontline : int;
  n_support : int;
  trains_per_system : int * int;
  components_per_train : int;
  modes_per_component : int * int;
  n_initiators : int;
  n_sequences : int;
  systems_per_sequence : int * int;
  transfer_depth : int;
  with_actuation : bool;
  mission_hours : float;
}

let small =
  {
    seed = 7;
    n_frontline = 5;
    n_support = 3;
    trains_per_system = (2, 2);
    components_per_train = 3;
    modes_per_component = (1, 2);
    n_initiators = 3;
    n_sequences = 8;
    systems_per_sequence = (2, 3);
    transfer_depth = 1;
    with_actuation = false;
    mission_hours = 24.0;
  }

let medium =
  {
    seed = 11;
    n_frontline = 8;
    n_support = 4;
    trains_per_system = (2, 3);
    components_per_train = 5;
    modes_per_component = (1, 3);
    n_initiators = 5;
    n_sequences = 20;
    systems_per_sequence = (2, 3);
    transfer_depth = 2;
    with_actuation = true;
    mission_hours = 24.0;
  }

let model_1 =
  {
    seed = 1;
    n_frontline = 16;
    n_support = 8;
    trains_per_system = (2, 3);
    components_per_train = 8;
    modes_per_component = (2, 3);
    n_initiators = 10;
    n_sequences = 48;
    systems_per_sequence = (2, 4);
    transfer_depth = 3;
    with_actuation = true;
    mission_hours = 24.0;
  }

let model_2 =
  {
    model_1 with
    seed = 2;
    n_sequences = 72;
    systems_per_sequence = (3, 5);
    transfer_depth = 4;
  }

let between rng (lo, hi) =
  if hi < lo then invalid_arg "Industrial: empty range";
  lo + Sdft_util.Rng.int rng (hi - lo + 1)

(* Log-uniform probability in [lo, hi]. *)
let log_uniform rng lo hi =
  let u = Sdft_util.Rng.float rng in
  exp (log lo +. (u *. (log hi -. log lo)))

let mission_probability rate hours = 1.0 -. exp (-.rate *. hours)

let generate p =
  let rng = Sdft_util.Rng.create p.seed in
  let b = Fault_tree.Builder.create () in
  let basic = Fault_tree.Builder.basic b in
  let gate = Fault_tree.Builder.gate b in
  (* Pass-through transfer-gate chain, as used pervasively in real PSA
     models to share subtrees across event-tree sequences. *)
  let transfer name depth node =
    let out = ref node in
    for i = 1 to depth do
      out := gate (Printf.sprintf "%s.xfer%d" name i) Fault_tree.Or [ !out ]
    done;
    !out
  in
  (* 2-of-3 actuation logic: three instrument channels vote. *)
  let actuation name =
    let channel i =
      let sensor =
        basic ~prob:(log_uniform rng 5e-5 5e-4) (Printf.sprintf "%s.ch%d.sensor" name i)
      in
      let relay =
        basic ~prob:(log_uniform rng 5e-5 5e-4) (Printf.sprintf "%s.ch%d.relay" name i)
      in
      gate (Printf.sprintf "%s.ch%d" name i) Fault_tree.Or [ sensor; relay ]
    in
    gate
      (Printf.sprintf "%s.actuation" name)
      (Fault_tree.Atleast 2)
      [ channel 1; channel 2; channel 3 ]
  in
  (* One component with several failure modes. Redundant trains carry
     identical equipment, so the mode probabilities are drawn once per
     component position and shared across the trains of a system. *)
  let component name probs =
    let modes =
      List.mapi
        (fun i prob -> basic ~prob (Printf.sprintf "%s.m%d" name (i + 1)))
        probs
    in
    match modes with
    | [ single ] -> single
    | [] -> assert false
    | several -> gate name Fault_tree.Or several
  in
  let draw_component_probs () =
    let n_modes = between rng p.modes_per_component in
    List.init n_modes (fun _ -> log_uniform rng 1e-5 1e-3)
  in
  (* Electric power: shared buses; a bus fails when offsite power is lost
     and its diesel fails. *)
  let loop = basic ~prob:1e-2 "LOOP" in
  let n_buses = 3 in
  let buses =
    Array.init n_buses (fun i ->
        let t = i + 1 in
        let dg_start = basic ~prob:1e-2 (Printf.sprintf "DG%d.start" t) in
        let dg_run =
          basic
            ~prob:(mission_probability 5e-4 p.mission_hours)
            (Printf.sprintf "DG%d.run" t)
        in
        let dg =
          gate (Printf.sprintf "DG%d.fail" t) Fault_tree.Or [ dg_start; dg_run ]
        in
        gate (Printf.sprintf "BUS%d" t) Fault_tree.And [ loop; dg ])
  in
  (* A pump train. [support] gives the train-level failure of support
     systems feeding this train; [run_rate] and [component_probs] are shared
     by all trains of the system (identical redundant equipment). *)
  let train system t ~run_rate ~component_probs ~support =
    let name = Printf.sprintf "%s.T%d" system t in
    let start = basic ~prob:1e-3 (Printf.sprintf "%s.P%d.start" system t) in
    let run =
      basic
        ~prob:(mission_probability run_rate p.mission_hours)
        (Printf.sprintf "%s.P%d.run" system t)
    in
    let components =
      List.mapi
        (fun i probs -> component (Printf.sprintf "%s.C%d" name (i + 1)) probs)
        component_probs
    in
    let bus = buses.(t mod n_buses) in
    let node =
      gate name Fault_tree.Or ([ start; run; bus ] @ components @ support)
    in
    transfer name p.transfer_depth node
  in
  (* A system: its trains must all fail (or K-of-N for voting systems),
     plus optional actuation. Returns the per-train gates so support
     systems can be wired train-to-train. *)
  let system name ~support_of_train ~voting =
    let n_trains = between rng p.trains_per_system in
    let run_rate = log_uniform rng 1e-5 1e-4 in
    let component_probs =
      List.init p.components_per_train (fun _ -> draw_component_probs ())
    in
    let trains =
      List.init n_trains (fun i ->
          train name (i + 1) ~run_rate ~component_probs
            ~support:(support_of_train i))
    in
    let kind =
      if voting && n_trains >= 3 then Fault_tree.Atleast (n_trains - 1)
      else Fault_tree.And
    in
    let trains_gate = gate (name ^ ".trains") kind trains in
    let inputs =
      if p.with_actuation then [ trains_gate; actuation name ]
      else [ trains_gate ]
    in
    let fail = gate (name ^ ".fail") Fault_tree.Or inputs in
    (fail, Array.of_list trains)
  in
  (* Support systems form a chain-structured DAG: system i may feed on a
     deeper one. Built deepest-first. *)
  let support_fail = Array.make p.n_support Fault_tree.(B 0) in
  let support_trains = Array.make p.n_support [||] in
  for i = p.n_support - 1 downto 0 do
    let name = Printf.sprintf "SUP%d" (i + 1) in
    let deeper = p.n_support - 1 - i in
    let support_of_train t =
      if deeper > 0 && Sdft_util.Rng.float rng < 0.6 then begin
        (* Feed from the train of a deeper support system with matching
           index (support chains are train-aligned in real plants). *)
        let j = i + 1 + Sdft_util.Rng.int rng deeper in
        let trains = support_trains.(j) in
        [ trains.(t mod Array.length trains) ]
      end
      else []
    in
    let fail, trains =
      system name ~support_of_train ~voting:(Sdft_util.Rng.float rng < 0.3)
    in
    support_fail.(i) <- fail;
    support_trains.(i) <- trains
  done;
  ignore support_fail;
  (* Frontline systems, each wired to one or two support systems. *)
  let frontline =
    Array.init p.n_frontline (fun i ->
        let name = Printf.sprintf "SYS%d" (i + 1) in
        let n_sup = if p.n_support = 0 then 0 else 1 + Sdft_util.Rng.int rng 2 in
        let sups =
          List.init n_sup (fun _ -> Sdft_util.Rng.int rng p.n_support)
        in
        let sups = List.sort_uniq compare sups in
        let support_of_train t =
          List.map
            (fun j ->
              let trains = support_trains.(j) in
              trains.(t mod Array.length trains))
            sups
        in
        let fail, _ = system name ~support_of_train ~voting:false in
        fail)
  in
  (* Initiating events and accident sequences. *)
  let initiators =
    Array.init p.n_initiators (fun i ->
        basic
          ~prob:(log_uniform rng 1e-4 3e-3)
          (Printf.sprintf "IE%d" (i + 1)))
  in
  let sequences =
    List.init p.n_sequences (fun s ->
        let ie = initiators.(Sdft_util.Rng.int rng p.n_initiators) in
        let n_sys = between rng p.systems_per_sequence in
        (* Cover every frontline system across the sequence set by cycling
           the first pick; remaining picks are random. *)
        let first = s mod p.n_frontline in
        let picks = ref [ first ] in
        while List.length !picks < min n_sys p.n_frontline do
          let c = Sdft_util.Rng.int rng p.n_frontline in
          if not (List.mem c !picks) then picks := c :: !picks
        done;
        let systems = List.map (fun i -> frontline.(i)) !picks in
        gate (Printf.sprintf "SEQ%d" (s + 1)) Fault_tree.And (ie :: systems))
  in
  let top = gate "top" Fault_tree.Or sequences in
  Fault_tree.Builder.build b ~top

let run_events tree =
  let out = ref [] in
  for i = Fault_tree.n_basics tree - 1 downto 0 do
    let name = Fault_tree.basic_name tree i in
    let n = String.length name in
    if n > 4 && String.sub name (n - 4) 4 = ".run" then out := i :: !out
  done;
  !out

let run_event_groups tree =
  (* "SYS3.P2.run" -> system "SYS3"; diesel generators ("DG1.run") have no
     ".P" segment and each form their own group. *)
  let system_of name =
    match String.index_opt name '.' with
    | Some dot -> String.sub name 0 dot
    | None -> name
  in
  let groups : (string, int list) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun i ->
      let key = system_of (Fault_tree.basic_name tree i) in
      let prev = try Hashtbl.find groups key with Not_found -> [] in
      Hashtbl.replace groups key (i :: prev))
    (run_events tree);
  Hashtbl.fold (fun _ members acc -> List.rev members :: acc) groups []
  |> List.sort compare

module Int_set = Sdft_util.Int_set

type t = {
  tree : Fault_tree.t;
  dynamic : Dbe.t option array; (* per basic event *)
  trigger_of : int option array; (* basic -> triggering gate *)
  triggered_by : int list array; (* gate -> triggered basics, increasing *)
  mutable descendants_memo : (Int_set.t * Int_set.t) option array;
      (* per gate: (dynamic, static) basic events of the subtree — computed
         lazily because per-cutset model construction queries them for the
         same trigger gates over and over *)
}

(* The fault tree graph with edges from every gate to its inputs, enriched
   by an edge from every triggered basic event back to its triggering gate,
   must be acyclic (Section III-B). Node encoding: gate g -> g, basic b ->
   n_gates + b. *)
let check_acyclic tree trigger_of =
  let ng = Fault_tree.n_gates tree and nb = Fault_tree.n_basics tree in
  let n = ng + nb in
  let successors node =
    if node < ng then
      Array.to_list
        (Array.map
           (function
             | Fault_tree.B b -> ng + b
             | Fault_tree.G g -> g)
           (Fault_tree.gate_inputs tree node))
    else
      match trigger_of.(node - ng) with
      | Some g -> [ g ]
      | None -> []
  in
  (* Colors: 0 unvisited, 1 on stack, 2 done. Recursion depth is bounded by
     the tree depth plus the longest trigger chain. *)
  let color = Array.make n 0 in
  let rec visit node =
    if color.(node) = 1 then
      invalid_arg "Sdft.make: cyclic trigger structure"
    else if color.(node) = 0 then begin
      color.(node) <- 1;
      List.iter visit (successors node);
      color.(node) <- 2
    end
  in
  for node = 0 to n - 1 do
    visit node
  done

let of_indexed tree ~dynamic ~triggers =
  let nb = Fault_tree.n_basics tree and ng = Fault_tree.n_gates tree in
  let dyn = Array.make nb None in
  List.iter
    (fun (b, d) ->
      if b < 0 || b >= nb then invalid_arg "Sdft.of_indexed: basic out of range";
      if dyn.(b) <> None then
        invalid_arg
          (Printf.sprintf "Sdft.of_indexed: %s declared dynamic twice"
             (Fault_tree.basic_name tree b));
      dyn.(b) <- Some d)
    dynamic;
  let trig = Array.make nb None in
  let by_gate = Array.make ng [] in
  List.iter
    (fun (g, b) ->
      if g < 0 || g >= ng then invalid_arg "Sdft.of_indexed: gate out of range";
      if b < 0 || b >= nb then invalid_arg "Sdft.of_indexed: basic out of range";
      (match dyn.(b) with
      | None ->
        invalid_arg
          (Printf.sprintf "Sdft.of_indexed: triggered event %s is not dynamic"
             (Fault_tree.basic_name tree b))
      | Some d ->
        if not (Dbe.is_triggered_model d) then
          invalid_arg
            (Printf.sprintf
               "Sdft.of_indexed: %s is triggered but has no on/off structure"
               (Fault_tree.basic_name tree b)));
      if trig.(b) <> None then
        invalid_arg
          (Printf.sprintf "Sdft.of_indexed: %s triggered by two gates"
             (Fault_tree.basic_name tree b));
      trig.(b) <- Some g;
      by_gate.(g) <- b :: by_gate.(g))
    triggers;
  let by_gate = Array.map (List.sort compare) by_gate in
  check_acyclic tree trig;
  {
    tree;
    dynamic = dyn;
    trigger_of = trig;
    triggered_by = by_gate;
    descendants_memo = Array.make ng None;
  }

let make tree ~dynamic ~triggers =
  let basic name =
    match Fault_tree.basic_index tree name with
    | Some b -> b
    | None -> invalid_arg (Printf.sprintf "Sdft.make: unknown basic event %S" name)
  in
  let gate name =
    match Fault_tree.gate_index tree name with
    | Some g -> g
    | None -> invalid_arg (Printf.sprintf "Sdft.make: unknown gate %S" name)
  in
  of_indexed tree
    ~dynamic:(List.map (fun (n, d) -> (basic n, d)) dynamic)
    ~triggers:(List.map (fun (g, b) -> (gate g, basic b)) triggers)

let static_only tree = of_indexed tree ~dynamic:[] ~triggers:[]

let tree t = t.tree

let n_basics t = Fault_tree.n_basics t.tree

let is_dynamic t b = t.dynamic.(b) <> None

let dbe t b =
  match t.dynamic.(b) with
  | Some d -> d
  | None ->
    invalid_arg
      (Printf.sprintf "Sdft.dbe: %s is a static basic event"
         (Fault_tree.basic_name t.tree b))

let dynamic_basics t =
  let out = ref [] in
  for b = n_basics t - 1 downto 0 do
    if t.dynamic.(b) <> None then out := b :: !out
  done;
  !out

let trigger_of t b = t.trigger_of.(b)

let triggered_by t g = t.triggered_by.(g)

let trigger_edges t =
  let out = ref [] in
  Array.iteri
    (fun g basics -> List.iter (fun b -> out := (g, b) :: !out) basics)
    t.triggered_by;
  List.rev !out

let descendants t g =
  match t.descendants_memo.(g) with
  | Some pair -> pair
  | None ->
    let dyn, stat =
      List.partition (is_dynamic t)
        (Int_set.to_list (Fault_tree.descendant_basics t.tree g))
    in
    let pair = (Int_set.of_list dyn, Int_set.of_list stat) in
    t.descendants_memo.(g) <- Some pair;
    pair

let dynamic_descendants t g = fst (descendants t g)

let static_descendants t g = snd (descendants t g)

let is_gate_dynamic t g = Int_set.cardinal (dynamic_descendants t g) > 0

let pp_summary ppf t =
  let n_dyn = List.length (dynamic_basics t) in
  let n_trig = List.length (trigger_edges t) in
  Format.fprintf ppf "SD fault tree: %a; %d dynamic events, %d trigger edges"
    Fault_tree.pp_stats
    (Fault_tree.stats t.tree)
    n_dyn n_trig

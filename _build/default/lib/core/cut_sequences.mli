(** Minimal cut sequences: cutsets with temporal order information.

    The paper's related work cites the extraction of minimal cut
    {e sequences} from BDMP models — cutsets annotated with the order in
    which their events fail. For an SD fault tree this order is governed by
    the triggers: a spare can only fail after its trigger has fired, so some
    orders carry all the probability and others none. This module splits a
    cutset's time-aware probability [p~(C)] over the possible failure orders
    of its dynamic events by tracking failure recency in the product chain.

    The {e order} of a run is the sequence of the cutset's dynamic events
    sorted by their most recent failure time at the first moment all of them
    are failed together (repairs re-order: an event that fails, is repaired
    and fails again counts by its last failure). *)

type sequence = {
  order : int list;
      (** dynamic events of the cutset (original indices), first-failed
          first *)
  probability : float;  (** contribution to [p~(C)], static factor included *)
}

type result = {
  sequences : sequence list;  (** decreasing probability *)
  total : float;  (** [p~(C)] — equals the sum of the sequences *)
}

val of_cutset :
  ?epsilon:float ->
  ?max_states:int ->
  ?rel_rule:Cutset_model.rel_rule ->
  Sdft.t ->
  Cutset.t ->
  horizon:float ->
  result
(** Orders with zero probability are omitted; a purely static cutset yields
    one empty-order sequence carrying its probability.

    @raise Sdft_product.Too_many_states when the order-augmented chain
    exceeds [max_states] (default 1_000_000). *)

val pp : Sdft.t -> Format.formatter -> sequence -> unit

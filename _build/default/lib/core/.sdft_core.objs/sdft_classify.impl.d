lib/core/sdft_classify.ml: Array Fault_tree Format Hashtbl List Sdft Sdft_util

lib/core/sdft_classify.mli: Fault_tree Format Sdft

lib/core/sdft_translate.ml: Array Dbe Fault_tree Sdft

lib/core/quant_cache.ml: Array Atomic Buffer Ctmc Cutset_model Dbe Fault_tree Fun Hashtbl List Mutex Printf Sdft Sdft_product Sdft_util

lib/core/sdft.ml: Array Dbe Fault_tree Format List Printf Sdft_util

lib/core/dbe.ml: Array Ctmc Float Format Fun List Transient

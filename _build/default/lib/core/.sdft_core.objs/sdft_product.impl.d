lib/core/sdft_product.ml: Array Ctmc Dbe Fault_tree Fun Hashtbl List Queue Sdft Sdft_util Transient

lib/core/sdft_analysis.mli: Cutset Cutset_model Fault_tree Format Mocus Quant_cache Sdft Sdft_translate Sdft_util

lib/core/dbe.mli: Ctmc Format

lib/core/availability.ml: Array Ctmc Dbe Fault_tree Fun List Mocus Sdft Sdft_analysis Sdft_translate Sdft_util Steady_state

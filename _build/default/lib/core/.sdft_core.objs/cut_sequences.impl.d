lib/core/cut_sequences.ml: Array Ctmc Cutset_model Fault_tree Format Hashtbl List Queue Sdft Sdft_product Sdft_util String Transient

lib/core/sdft_translate.mli: Fault_tree Sdft

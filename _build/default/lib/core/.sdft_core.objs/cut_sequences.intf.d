lib/core/cut_sequences.mli: Cutset Cutset_model Format Sdft

lib/core/sdft.mli: Dbe Fault_tree Format Sdft_util

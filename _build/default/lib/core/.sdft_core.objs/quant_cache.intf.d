lib/core/quant_cache.mli: Cutset_model Sdft

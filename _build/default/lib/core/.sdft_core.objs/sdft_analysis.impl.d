lib/core/sdft_analysis.ml: Array Cutset Cutset_model Fault_tree Format Fun List Minsol Mocus Quant_cache Sdft Sdft_product Sdft_translate Sdft_util

lib/core/sdft_analysis.ml: Array Atomic Cutset Cutset_model Domain Fault_tree Format Fun List Minsol Mocus Option Sdft Sdft_product Sdft_translate Sdft_util

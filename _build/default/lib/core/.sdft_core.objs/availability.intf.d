lib/core/availability.mli: Dbe Sdft Sdft_analysis

lib/core/sdft_product.mli: Ctmc Sdft Sdft_util

lib/core/cutset_model.mli: Cutset Sdft

lib/core/cutset_model.ml: Bdd Fault_tree Hashtbl List Minsol Printf Queue Sdft Sdft_classify Sdft_product Sdft_util

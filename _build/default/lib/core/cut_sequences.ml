module Int_set = Sdft_util.Int_set

type sequence = {
  order : int list;
  probability : float;
}

type result = {
  sequences : sequence list;
  total : float;
}

(* Recency update: [before]/[after] are the failed flags of the tracked
   slots; the order lists tracked slots, first-failed first. *)
let update_recency order ~before ~after n_tracked =
  let order = List.filter (fun slot -> after.(slot)) order in
  let additions = ref [] in
  for slot = n_tracked - 1 downto 0 do
    if after.(slot) && not before.(slot) then additions := slot :: !additions
  done;
  order @ !additions

let of_cutset ?(epsilon = 1e-12) ?(max_states = 1_000_000) ?rel_rule sd cutset
    ~horizon =
  let model = Cutset_model.build ?rel_rule sd cutset in
  if model.Cutset_model.impossible then { sequences = []; total = 0.0 }
  else
    match model.Cutset_model.model with
    | None ->
      let p = model.Cutset_model.static_multiplier in
      { sequences = [ { order = []; probability = p } ]; total = p }
    | Some sd_c ->
      let sem = Sdft_product.semantics sd_c in
      let components = Sdft_product.sem_components sem in
      let tree_c = Sdft.tree sd_c in
      let tree = Sdft.tree sd in
      (* Tracked slots: components of FT_C corresponding to the dynamic
         events of the cutset, identified by name. *)
      let original_of_name = Hashtbl.create 8 in
      Int_set.iter
        (fun b ->
          if Sdft.is_dynamic sd b then
            Hashtbl.replace original_of_name (Fault_tree.basic_name tree b) b)
        cutset;
      let tracked = ref [] in
      Array.iteri
        (fun slot c ->
          let name = Fault_tree.basic_name tree_c c.Sdft_product.basic in
          if Hashtbl.mem original_of_name name then
            tracked := (slot, Hashtbl.find original_of_name name) :: !tracked)
        components;
      let tracked = Array.of_list (List.rev !tracked) in
      let n_tracked = Array.length tracked in
      let tracked_index = Hashtbl.create 8 in
      Array.iteri (fun i (slot, _) -> Hashtbl.replace tracked_index slot i) tracked;
      let failed_flags state =
        Array.map
          (fun (slot, _) ->
            components.(slot).Sdft_product.failed_local.(state.(slot)))
          tracked
      in
      (* Augmented state space: (product state, recency order). *)
      let ids : (int array * int list, int) Hashtbl.t = Hashtbl.create 256 in
      let states = Sdft_util.Vec.create () in
      let absorbing_order = Sdft_util.Vec.create () in
      let frontier = Queue.create () in
      let intern state order =
        let key = (state, order) in
        match Hashtbl.find_opt ids key with
        | Some id -> id
        | None ->
          let id = Sdft_util.Vec.length states in
          if id >= max_states then
            raise (Sdft_product.Too_many_states id);
          Hashtbl.add ids key id;
          Sdft_util.Vec.push states key;
          let absorbed =
            if Sdft_product.sem_fails_top sem state then Some order else None
          in
          Sdft_util.Vec.push absorbing_order absorbed;
          if absorbed = None then Queue.add id frontier;
          id
      in
      let init =
        List.map
          (fun (state, mass) ->
            let flags = failed_flags state in
            let order =
              update_recency []
                ~before:(Array.make n_tracked false)
                ~after:flags n_tracked
            in
            (intern state order, mass))
          (Sdft_product.sem_initial_states sem ~max_states)
      in
      let transitions = Sdft_util.Vec.create () in
      while not (Queue.is_empty frontier) do
        let src = Queue.pop frontier in
        let state, order = Sdft_util.Vec.get states src in
        let before = failed_flags state in
        Array.iteri
          (fun slot c ->
            Array.iter
              (fun (dst_local, rate) ->
                let next = Array.copy state in
                next.(slot) <- dst_local;
                Sdft_product.sem_close sem next;
                let after = failed_flags next in
                let order' = update_recency order ~before ~after n_tracked in
                let dst = intern next order' in
                if dst <> src then
                  Sdft_util.Vec.push transitions (src, dst, rate))
              c.Sdft_product.rows.(state.(slot)))
          components
      done;
      let n_states = Sdft_util.Vec.length states in
      let chain =
        Ctmc.make ~n_states ~transitions:(Sdft_util.Vec.to_list transitions)
      in
      let options = { Transient.default_options with epsilon } in
      let dist = Transient.distribution ~options chain ~init ~t:horizon in
      (* Group the absorbed mass by order, translating tracked slots back to
         original basic-event indices. *)
      let by_order : (int list, float) Hashtbl.t = Hashtbl.create 16 in
      Sdft_util.Vec.iteri
        (fun id absorbed ->
          match absorbed with
          | Some order when dist.(id) > 0.0 ->
            let original =
              List.map (fun slot -> snd tracked.(Hashtbl.find tracked_index slot)) order
            in
            let prev = try Hashtbl.find by_order original with Not_found -> 0.0 in
            Hashtbl.replace by_order original (prev +. dist.(id))
          | Some _ | None -> ())
        absorbing_order;
      let multiplier = model.Cutset_model.static_multiplier in
      let sequences =
        Hashtbl.fold
          (fun order mass acc ->
            { order; probability = mass *. multiplier } :: acc)
          by_order []
        |> List.sort (fun a b -> compare b.probability a.probability)
      in
      let total =
        Sdft_util.Kahan.sum_list (List.map (fun s -> s.probability) sequences)
      in
      { sequences; total }

let pp sd ppf s =
  let tree = Sdft.tree sd in
  Format.fprintf ppf "%.3e: "
    s.probability;
  Format.pp_print_string ppf
    (String.concat " -> " (List.map (Fault_tree.basic_name tree) s.order))

(** SD fault trees: static fault trees enriched with dynamic basic events and
    triggers (Section III-B of the paper).

    An SD fault tree is a static fault tree whose basic events are
    partitioned into static ones (a failure probability, stored in the
    underlying {!Fault_tree.t}) and dynamic ones (a {!Dbe.t}). A gate may
    {e trigger} dynamic basic events: when the gate fails, the events are
    switched on; when it recovers, they are switched off. Each dynamic event
    is triggered by at most one gate, and the graph of tree edges plus
    reversed trigger edges must be acyclic. *)

type t

val make :
  Fault_tree.t ->
  dynamic:(string * Dbe.t) list ->
  triggers:(string * string) list ->
  t
(** [make tree ~dynamic ~triggers] marks the named basic events as dynamic
    and installs the named [(gate, basic)] trigger edges.

    @raise Invalid_argument when a name is unknown, a basic event is
    triggered twice, a triggered event lacks on/off structure, or the
    combined graph has a cycle. *)

val of_indexed :
  Fault_tree.t ->
  dynamic:(int * Dbe.t) list ->
  triggers:(int * int) list ->
  t
(** Same with raw indices ([(gate_index, basic_index)] for triggers). *)

val static_only : Fault_tree.t -> t
(** Embed a static fault tree (no dynamic events, no triggers). *)

(** {1 Accessors} *)

val tree : t -> Fault_tree.t

val n_basics : t -> int

val is_dynamic : t -> int -> bool

val dbe : t -> int -> Dbe.t
(** @raise Invalid_argument on static basic events. *)

val dynamic_basics : t -> int list
(** Indices of dynamic events, increasing. *)

val trigger_of : t -> int -> int option
(** The gate triggering the given basic event, if any. *)

val triggered_by : t -> int -> int list
(** Basic events triggered by the given gate ([trig(g)]). *)

val trigger_edges : t -> (int * int) list
(** All [(gate, basic)] trigger edges. *)

val is_gate_dynamic : t -> int -> bool
(** Does the subtree of the gate contain a dynamic basic event? *)

val dynamic_descendants : t -> int -> Sdft_util.Int_set.t
(** Dynamic basic events in the subtree of a gate ([Dyn_g]). *)

val static_descendants : t -> int -> Sdft_util.Int_set.t
(** Static basic events in the subtree of a gate ([Sta_g]). *)

val pp_summary : Format.formatter -> t -> unit

type t = {
  n : int;
  rows : (int * float) array array;
  exit : float array;
}

let make ~n_states ~transitions =
  if n_states <= 0 then invalid_arg "Ctmc.make: need at least one state";
  let buckets = Array.make n_states [] in
  List.iter
    (fun (src, dst, rate) ->
      if src < 0 || src >= n_states || dst < 0 || dst >= n_states then
        invalid_arg "Ctmc.make: state out of range";
      if src = dst then invalid_arg "Ctmc.make: self-loop";
      if rate <= 0.0 || not (Float.is_finite rate) then
        invalid_arg "Ctmc.make: rate must be positive and finite";
      buckets.(src) <- (dst, rate) :: buckets.(src))
    transitions;
  let merge_row lst =
    let tbl = Hashtbl.create 8 in
    List.iter
      (fun (dst, rate) ->
        let prev = try Hashtbl.find tbl dst with Not_found -> 0.0 in
        Hashtbl.replace tbl dst (prev +. rate))
      lst;
    let row = Hashtbl.fold (fun dst rate acc -> (dst, rate) :: acc) tbl [] in
    let row = Array.of_list row in
    Array.sort (fun (a, _) (b, _) -> compare a b) row;
    row
  in
  let rows = Array.map merge_row buckets in
  let exit =
    Array.map (Array.fold_left (fun acc (_, r) -> acc +. r) 0.0) rows
  in
  { n = n_states; rows; exit }

let n_states c = c.n

let rate c i j =
  if i < 0 || i >= c.n || j < 0 || j >= c.n then
    invalid_arg "Ctmc.rate: state out of range";
  let row = c.rows.(i) in
  let rec loop k =
    if k >= Array.length row then 0.0
    else
      let dst, r = row.(k) in
      if dst = j then r else loop (k + 1)
  in
  loop 0

let exit_rate c i =
  if i < 0 || i >= c.n then invalid_arg "Ctmc.exit_rate: state out of range";
  c.exit.(i)

let max_exit_rate c = Array.fold_left max 0.0 c.exit

let outgoing c i =
  if i < 0 || i >= c.n then invalid_arg "Ctmc.outgoing: state out of range";
  c.rows.(i)

let n_transitions c =
  Array.fold_left (fun acc row -> acc + Array.length row) 0 c.rows

let iter_transitions c f =
  Array.iteri (fun src row -> Array.iter (fun (dst, r) -> f src dst r) row) c.rows

let restrict_absorbing c is_absorbing =
  let rows =
    Array.mapi (fun i row -> if is_absorbing i then [||] else row) c.rows
  in
  let exit =
    Array.map (Array.fold_left (fun acc (_, r) -> acc +. r) 0.0) rows
  in
  { n = c.n; rows; exit }

let embedded_dtmc_row c i =
  let row = outgoing c i in
  let e = c.exit.(i) in
  if e = 0.0 then [||] else Array.map (fun (dst, r) -> (dst, r /. e)) row

let pp ppf c =
  Format.fprintf ppf "@[<v>CTMC with %d states, %d transitions@," c.n
    (n_transitions c);
  Array.iteri
    (fun src row ->
      Array.iter
        (fun (dst, r) -> Format.fprintf ppf "  %d -> %d @@ %g@," src dst r)
        row)
    c.rows;
  Format.fprintf ppf "@]"

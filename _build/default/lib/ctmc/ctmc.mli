(** Finite continuous-time Markov chains with a sparse rate matrix.

    A CTMC over states [0 .. n-1] is given by its outgoing transitions
    [R(i,j) >= 0] for [i <> j]. Self-loops carry no semantics in a CTMC and
    are rejected by the builder. *)

type t

val make : n_states:int -> transitions:(int * int * float) list -> t
(** [make ~n_states ~transitions] builds a chain from [(src, dst, rate)]
    triples. Parallel transitions between the same pair of states are merged
    by summing their rates.

    @raise Invalid_argument on out-of-range states, non-positive rates, or
    self-loops. *)

val n_states : t -> int

val rate : t -> int -> int -> float
(** [rate c i j] is [R(i,j)] (0 when there is no transition). *)

val exit_rate : t -> int -> float
(** Total outgoing rate of a state. *)

val max_exit_rate : t -> float
(** Uniformization constant [q >= max_i E(i)]. *)

val outgoing : t -> int -> (int * float) array
(** Outgoing transitions of a state as [(dst, rate)] pairs (shared array; do
    not mutate). *)

val n_transitions : t -> int

val iter_transitions : t -> (int -> int -> float -> unit) -> unit

val restrict_absorbing : t -> (int -> bool) -> t
(** [restrict_absorbing c is_absorbing] removes every outgoing transition of
    the states selected by [is_absorbing], making them absorbing. Used to
    turn transient occupancy of a target set into time-bounded
    reachability. *)

val embedded_dtmc_row : t -> int -> (int * float) array
(** Jump-chain probabilities of a state: outgoing rates normalised by the
    exit rate. Empty for absorbing states. *)

val pp : Format.formatter -> t -> unit

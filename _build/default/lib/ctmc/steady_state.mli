(** Long-run behaviour of CTMCs.

    Repairable safety systems are often characterised by their steady-state
    unavailability (the long-run fraction of time spent failed) in addition
    to the mission unreliability computed by {!Transient}. This module
    solves the global balance equations by Gauss–Seidel sweeps on the
    embedded jump structure. *)

val solve : ?max_iter:int -> ?tolerance:float -> Ctmc.t -> float array option
(** [solve chain] is the stationary distribution [pi] with
    [pi Q = 0, sum pi = 1], or [None] when the iteration does not converge
    within [max_iter] (default 100_000) sweeps to [tolerance] (default
    1e-12). Intended for irreducible chains; on reducible chains the result
    depends on the (uniform) starting vector and is returned as-is. *)

val unavailability : ?max_iter:int -> ?tolerance:float -> Ctmc.t -> failed:(int -> bool) -> float option
(** Long-run probability mass of the failed states. *)

val expected_occupancy :
  ?epsilon:float -> Ctmc.t -> init:(int * float) list -> t:float -> float array
(** [expected_occupancy chain ~init ~t] is the expected total time spent in
    each state during [[0, t]] (the integral of the transient distribution),
    computed by uniformization: the cumulative Poisson tail weights the
    DTMC iterates. [Sum_i occupancy(i) = t]. The mission unavailability of a
    repairable system is [occupancy(failed) / t]. *)

(** Transient analysis of CTMCs by uniformization.

    This is the numerical core used to quantify every minimal cutset: the
    probability of reaching a target set within a time horizon, computed as
    the transient mass of the target states after making them absorbing. *)

type options = {
  epsilon : float;  (** truncation error bound for the Poisson window *)
  steady_state_detection : bool;
      (** stop iterating the DTMC once the vector is numerically stationary *)
}

val default_options : options

val distribution :
  ?options:options -> Ctmc.t -> init:(int * float) list -> t:float -> float array
(** [distribution chain ~init ~t] is the state distribution at time [t]
    starting from the (sub)distribution [init] (pairs [(state, mass)]; masses
    must be non-negative and sum to at most 1).

    @raise Invalid_argument on a negative horizon or an invalid initial
    distribution. *)

val reach_within :
  ?options:options ->
  Ctmc.t ->
  init:(int * float) list ->
  target:(int -> bool) ->
  t:float ->
  float
(** [reach_within chain ~init ~target ~t] is
    [Pr(exists t' <= t. X(t') in target)]: target states are made absorbing
    and their transient mass at [t] is summed. *)

val expected_time_to_absorption :
  Ctmc.t -> init:(int * float) list -> float option
(** Mean time to reach the absorbing states, by solving the linear system on
    the transient states with Gauss–Seidel; [None] if some initial mass can
    never be absorbed (or the iteration does not converge). Used by tests and
    by model exploration tooling. *)

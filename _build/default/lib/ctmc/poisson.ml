type window = {
  left : int;
  right : int;
  weights : float array;
}

(* log k! by direct summation; k stays modest (window widths are
   O(sqrt qt) around the mode). Memoized incrementally. *)
let log_factorial =
  let cache = ref [| 0.0 |] in
  fun k ->
    let c = !cache in
    let n = Array.length c in
    if k < n then c.(k)
    else begin
      let c' = Array.make (k + 1) 0.0 in
      Array.blit c 0 c' 0 n;
      for i = n to k do
        c'.(i) <- c'.(i - 1) +. log (float_of_int i)
      done;
      cache := c';
      c'.(k)
    end

let pmf qt k =
  if k < 0 then 0.0
  else if qt = 0.0 then if k = 0 then 1.0 else 0.0
  else exp ((float_of_int k *. log qt) -. qt -. log_factorial k)

let weights ?(epsilon = 1e-12) qt =
  if qt < 0.0 || not (Float.is_finite qt) then
    invalid_arg "Poisson.weights: mean must be finite and non-negative";
  if qt = 0.0 then { left = 0; right = 0; weights = [| 1.0 |] }
  else begin
    let mode = int_of_float qt in
    (* Unnormalized weights, w(mode) = 1. The per-term relative threshold
       [tau] keeps each neglected term below epsilon / window_width of the
       total, which bounds the neglected mass by epsilon. *)
    let spread = 4.0 *. sqrt qt +. 40.0 in
    let tau = epsilon /. (4.0 *. spread) in
    let left_buf = Sdft_util.Vec.create () in
    let w = ref 1.0 in
    let k = ref mode in
    while !k > 0 && !w > tau do
      (* w(k-1) = w(k) * k / qt *)
      w := !w *. float_of_int !k /. qt;
      decr k;
      Sdft_util.Vec.push left_buf !w
    done;
    let left = !k in
    let right_buf = Sdft_util.Vec.create () in
    let w = ref 1.0 in
    let k = ref mode in
    let continue = ref true in
    while !continue do
      let k' = !k + 1 in
      let next = !w *. qt /. float_of_int k' in
      if next <= tau then continue := false
      else begin
        w := next;
        k := k';
        Sdft_util.Vec.push right_buf next
      end
    done;
    let right = !k in
    let n = right - left + 1 in
    let weights = Array.make n 0.0 in
    weights.(mode - left) <- 1.0;
    (* left_buf.(i) is w(mode - 1 - i) *)
    Sdft_util.Vec.iteri (fun i v -> weights.(mode - left - 1 - i) <- v) left_buf;
    Sdft_util.Vec.iteri (fun i v -> weights.(mode - left + 1 + i) <- v) right_buf;
    let total = Sdft_util.Kahan.sum weights in
    let weights = Array.map (fun v -> v /. total) weights in
    { left; right; weights }
  end

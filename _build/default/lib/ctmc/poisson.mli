(** Truncated Poisson weights for uniformization (Fox–Glynn style).

    For a Poisson distribution with mean [qt], computes a window
    [left .. right] and normalized weights such that the probability mass
    outside the window is below the requested [epsilon]. The weights are
    computed by the numerically stable mode-centred recurrence, avoiding
    under/overflow for large [qt]. *)

type window = {
  left : int;
  right : int;
  weights : float array;  (** [weights.(k - left)] approximates [P(N = k)]. *)
}

val weights : ?epsilon:float -> float -> window
(** [weights qt] for [qt >= 0]. [epsilon] (default [1e-12]) bounds the total
    truncated mass.

    @raise Invalid_argument when [qt] is negative or not finite. *)

val pmf : float -> int -> float
(** Exact Poisson pmf via log-space evaluation, for testing. *)

module Metrics = Sdft_util.Metrics

let m_solves = Metrics.counter "transient.solves"
let m_steps = Metrics.counter "transient.uniformization_steps"
let m_window = Metrics.counter "transient.window_width_total"
let m_steady = Metrics.counter "transient.steady_state_exits"

type options = {
  epsilon : float;
  steady_state_detection : bool;
}

let default_options = { epsilon = 1e-12; steady_state_detection = true }

let check_init n init =
  let total =
    List.fold_left
      (fun acc (s, m) ->
        if s < 0 || s >= n then
          invalid_arg "Transient: initial state out of range";
        if m < 0.0 || not (Float.is_finite m) then
          invalid_arg "Transient: initial mass must be non-negative";
        acc +. m)
      0.0 init
  in
  if total > 1.0 +. 1e-9 then
    invalid_arg "Transient: initial distribution sums to more than 1"

(* One step of the uniformized DTMC P = I + Q/q: out := pi * P. *)
let dtmc_step chain q pi out =
  let n = Array.length pi in
  Array.fill out 0 n 0.0;
  for src = 0 to n - 1 do
    let mass = pi.(src) in
    if mass > 0.0 then begin
      let exit = Ctmc.exit_rate chain src in
      out.(src) <- out.(src) +. (mass *. (1.0 -. (exit /. q)));
      let row = Ctmc.outgoing chain src in
      Array.iter
        (fun (dst, r) -> out.(dst) <- out.(dst) +. (mass *. r /. q))
        row
    end
  done

let max_abs_diff a b =
  let d = ref 0.0 in
  Array.iteri
    (fun i x ->
      let diff = Float.abs (x -. b.(i)) in
      if diff > !d then d := diff)
    a;
  !d

let distribution ?(options = default_options) chain ~init ~t =
  if t < 0.0 || not (Float.is_finite t) then
    invalid_arg "Transient.distribution: bad horizon";
  let n = Ctmc.n_states chain in
  check_init n init;
  let pi0 = Array.make n 0.0 in
  List.iter (fun (s, m) -> pi0.(s) <- pi0.(s) +. m) init;
  let q = Ctmc.max_exit_rate chain in
  if t = 0.0 || q = 0.0 then pi0
  else begin
    let window = Poisson.weights ~epsilon:options.epsilon (q *. t) in
    Metrics.incr m_solves;
    Metrics.add m_window (window.right - window.left + 1);
    let result = Array.make n 0.0 in
    let accumulate weight pi =
      if weight > 0.0 then
        for i = 0 to n - 1 do
          result.(i) <- result.(i) +. (weight *. pi.(i))
        done
    in
    let pi = Array.copy pi0 in
    let scratch = Array.make n 0.0 in
    let weight_of k =
      if k < window.left || k > window.right then 0.0
      else window.weights.(k - window.left)
    in
    let k = ref 0 in
    let remaining = ref 1.0 in
    let stationary = ref false in
    while !k <= window.right && not !stationary do
      let w = weight_of !k in
      accumulate w pi;
      remaining := !remaining -. w;
      if !k < window.right then begin
        dtmc_step chain q pi scratch;
        if
          options.steady_state_detection
          && max_abs_diff pi scratch < options.epsilon /. 8.0
        then stationary := true
        else Array.blit scratch 0 pi 0 n
      end;
      incr k
    done;
    (* One atomic add per solve, not per step. *)
    Metrics.add m_steps !k;
    if !stationary then Metrics.incr m_steady;
    if !stationary && !remaining > 0.0 then accumulate !remaining pi;
    result
  end

let reach_within ?(options = default_options) chain ~init ~target ~t =
  let absorbed = Ctmc.restrict_absorbing chain target in
  let dist = distribution ~options absorbed ~init ~t in
  let acc = Sdft_util.Kahan.create () in
  Array.iteri (fun s m -> if target s then Sdft_util.Kahan.add acc m) dist;
  (* Clamp tiny numerical overshoot. *)
  Float.min 1.0 (Sdft_util.Kahan.total acc)

let expected_time_to_absorption chain ~init =
  let n = Ctmc.n_states chain in
  check_init n init;
  (* Solve (for transient states i): E(i) * h(i) = 1 + sum_j R(i,j) h(j),
     i.e. h(i) = (1 + sum_j R(i,j) h(j)) / E(i), by Gauss-Seidel. *)
  let h = Array.make n 0.0 in
  let transient i = Ctmc.exit_rate chain i > 0.0 in
  let max_iter = 100_000 and tol = 1e-12 in
  let rec iterate round =
    if round > max_iter then None
    else begin
      let delta = ref 0.0 in
      for i = 0 to n - 1 do
        if transient i then begin
          let e = Ctmc.exit_rate chain i in
          let acc = ref 1.0 in
          Array.iter
            (fun (dst, r) -> acc := !acc +. (r *. h.(dst)))
            (Ctmc.outgoing chain i);
          let v = !acc /. e in
          let d = Float.abs (v -. h.(i)) in
          if d > !delta then delta := d;
          h.(i) <- v
        end
      done;
      if !delta < tol then Some ()
      else iterate (round + 1)
    end
  in
  (* Reachability of absorption must be certain for the system to converge;
     detect obviously divergent cases by bounding the iteration count. *)
  match iterate 0 with
  | None -> None
  | Some () ->
    let total =
      List.fold_left (fun acc (s, m) -> acc +. (m *. h.(s))) 0.0 init
    in
    if Float.is_finite total then Some total else None

lib/ctmc/steady_state.mli: Ctmc

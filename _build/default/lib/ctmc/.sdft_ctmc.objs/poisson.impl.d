lib/ctmc/poisson.ml: Array Float Sdft_util

lib/ctmc/poisson.mli:

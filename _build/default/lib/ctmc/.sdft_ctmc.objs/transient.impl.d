lib/ctmc/transient.ml: Array Ctmc Float List Poisson Sdft_util

lib/ctmc/ctmc.ml: Array Float Format Hashtbl List

lib/ctmc/steady_state.ml: Array Ctmc Float List Poisson Sdft_util

(** Sets of small non-negative integers as sorted, duplicate-free arrays.

    Cutsets are sets of basic-event indices; this representation makes the
    subsumption tests at the heart of cutset minimization cache-friendly. *)

type t = private int array
(** Invariant: strictly increasing. *)

val empty : t

val of_array : int array -> t
(** Sorts and deduplicates a copy of the argument. *)

val of_list : int list -> t

val to_list : t -> int list

val singleton : int -> t

val cardinal : t -> int

val mem : int -> t -> bool
(** Binary search. *)

val add : int -> t -> t

val remove : int -> t -> t
(** Returns the argument unchanged (no copy) if the element is absent. *)

val union : t -> t -> t

val subset : t -> t -> bool
(** [subset a b] — is [a ⊆ b]? Linear merge. *)

val inter : t -> t -> t

val diff : t -> t -> t

val equal : t -> t -> bool

val compare : t -> t -> int
(** Total order: first by cardinality, then lexicographic — the order in
    which minimization wants to scan candidate cutsets. *)

val iter : (int -> unit) -> t -> unit

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a

val exists : (int -> bool) -> t -> bool

val for_all : (int -> bool) -> t -> bool

val pp : Format.formatter -> t -> unit

val hash : t -> int

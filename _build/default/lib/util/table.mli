(** Plain-text tables, in the style of the tables in the paper.

    The benchmark harness prints one [Table.t] per reproduced table so the
    output can be compared side by side with the publication. *)

type t

val create : title:string -> columns:string list -> t

val add_row : t -> string list -> unit
(** Rows may be shorter than the header; missing cells render empty. *)

val print : t -> unit
(** Render to stdout with aligned columns and a rule under the header. *)

val to_string : t -> string

(** Formatting helpers for numeric cells. *)

val cell_sci : float -> string
(** Scientific notation with 3 significant digits, e.g. ["4.09e-09"]. *)

val cell_float : ?decimals:int -> float -> string

val cell_duration : float -> string
(** Seconds rendered like the paper ("7.9s", "1m 53s"). *)

(** Lightweight process-global metrics: named monotonic counters, gauges and
    span timers, with JSON serialization.

    The registry is shared by the whole process so that library code
    ([Mocus.run], [Transient.distribution], [Sdft_analysis.analyze]) can
    publish counters without threading handles through every call, and the
    harnesses ([bin/main.ml --metrics], [bench/main.ml]) can dump one
    consolidated snapshot at the end.

    All updates are thread-safe under multiple domains: counters and spans
    are updated with [Atomic] read-modify-write loops (no global mutex on
    the hot path); only registration of a {e new} name takes a lock.
    Instruments are cheap enough to update from parallel workers, but code
    with a very hot inner loop should accumulate locally and publish once
    per call (see {!add}). *)

type counter
(** A monotonically increasing integer. *)

type gauge
(** A last-write-wins float. *)

type span
(** An accumulating wall-clock timer: total seconds plus a count of the
    recorded intervals. *)

(** {1 Registration}

    Registering the same name twice returns the same instrument, so
    instruments can be created at module-initialization time or lazily.
    Names are namespaced by convention, e.g. ["mocus.partials_generated"].
    A name may be reused across kinds (counters, gauges and spans live in
    separate namespaces). *)

val counter : string -> counter

val gauge : string -> gauge

val span : string -> span

(** {1 Updates} *)

val incr : counter -> unit

val add : counter -> int -> unit
(** [add c n] bumps the counter by [n >= 0]. Use this to publish a locally
    accumulated total with a single atomic update. *)

val set : gauge -> float -> unit

val record : span -> float -> unit
(** [record s seconds] adds one interval of the given length. *)

val time : span -> (unit -> 'a) -> 'a
(** [time s f] runs [f] and records its wall-clock duration on [s]. The
    duration is recorded whether [f] returns or raises. *)

(** {1 Reads} *)

val counter_value : counter -> int

val gauge_value : gauge -> float

val span_seconds : span -> float
(** Total recorded seconds. *)

val span_count : span -> int
(** Number of recorded intervals. *)

(** {1 Snapshots} *)

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  spans : (string * (float * int)) list;
      (** name -> (total seconds, interval count) *)
}
(** All lists are sorted by name. *)

val snapshot : unit -> snapshot

val reset : unit -> unit
(** Zero every registered instrument (the registrations themselves are
    kept, so handles created earlier remain valid). Meant for tests and
    for harnesses that dump several windows from one process. *)

val to_json : unit -> string
(** The current snapshot as a JSON object:
    [{"counters": {..}, "gauges": {..}, "spans": {"name": {"seconds": s,
    "count": n}, ..}}]. *)

val write_file : string -> unit
(** Write {!to_json} (plus a trailing newline) to the given path. *)

(** Integer-bucket histograms (Figure 2 of the paper counts how many minimal
    cutsets contain 0, 1, 2, ... dynamic basic events). *)

type t

val create : unit -> t

val observe : t -> int -> unit
(** Count one observation of the given non-negative bucket. *)

val count : t -> int -> int

val total : t -> int

val max_bucket : t -> int
(** Largest bucket observed so far; [-1] when empty. *)

val buckets : t -> (int * int) list
(** All buckets from 0 to [max_bucket] with their counts. *)

val mean : t -> float
(** Mean bucket value, 0 when empty. *)

val print_ascii : ?label:string -> t -> unit
(** Horizontal bar chart on stdout, one line per bucket. *)

let map_init ~domains init f work =
  let n = Array.length work in
  if n = 0 then [||]
  else if domains <= 1 then begin
    let state = init () in
    Array.map (f state) work
  end
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    (* First worker exception wins; everyone else drains and exits. *)
    let failure :
        (exn * Printexc.raw_backtrace) option Atomic.t =
      Atomic.make None
    in
    let fail exn bt =
      ignore (Atomic.compare_and_set failure None (Some (exn, bt)))
    in
    let worker () =
      match init () with
      | exception exn -> fail exn (Printexc.get_raw_backtrace ())
      | state ->
        let continue = ref true in
        while !continue do
          if Atomic.get failure <> None then continue := false
          else begin
            let i = Atomic.fetch_and_add next 1 in
            if i >= n then continue := false
            else
              match f state work.(i) with
              | r -> results.(i) <- Some r
              | exception exn -> fail exn (Printexc.get_raw_backtrace ())
          end
        done
    in
    let spawned =
      Array.init (domains - 1) (fun _ -> Domain.spawn worker)
    in
    worker ();
    Array.iter Domain.join spawned;
    match Atomic.get failure with
    | Some (exn, bt) -> Printexc.raise_with_backtrace exn bt
    | None ->
      Array.map
        (function
          | Some r -> r
          | None -> assert false (* no failure ⟹ every slot was filled *))
        results
  end

let map ~domains f work = map_init ~domains ignore (fun () x -> f x) work

(** Growable arrays (OCaml 5.1 has no [Dynarray] yet).

    A [Vec.t] is a mutable sequence with amortized O(1) [push] and O(1)
    random access. Used pervasively by the state-space builders. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** Fresh empty vector. [capacity] pre-allocates backing storage. *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit
(** Append an element at the end. *)

val pop : 'a t -> 'a option
(** Remove and return the last element, or [None] when empty. *)

val get : 'a t -> int -> 'a
(** [get v i] is the [i]-th element; raises [Invalid_argument] when out of
    bounds. *)

val set : 'a t -> int -> 'a -> unit

val clear : 'a t -> unit
(** Remove all elements (keeps capacity). *)

val iter : ('a -> unit) -> 'a t -> unit

val iteri : (int -> 'a -> unit) -> 'a t -> unit

val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc

val to_array : 'a t -> 'a array
(** Fresh array holding the current elements in order. *)

val to_list : 'a t -> 'a list

val of_list : 'a list -> 'a t

val exists : ('a -> bool) -> 'a t -> bool

val sort : ('a -> 'a -> int) -> 'a t -> unit
(** In-place sort of the live prefix. *)

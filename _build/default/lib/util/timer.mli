(** Wall-clock timing helpers for the experiment harness. *)

type t

val start : unit -> t

val elapsed_s : t -> float
(** Seconds since [start]. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f ()] and returns its result with the elapsed seconds. *)

val pp_duration : Format.formatter -> float -> unit
(** Human-readable duration, e.g. ["7.9s"], ["1m 53s"], ["12m 47s"]. *)

type t = int array

let empty = [||]

let of_array a =
  let a = Array.copy a in
  Array.sort compare a;
  let n = Array.length a in
  if n = 0 then a
  else begin
    (* Deduplicate in place. *)
    let w = ref 1 in
    for r = 1 to n - 1 do
      if a.(r) <> a.(!w - 1) then begin
        a.(!w) <- a.(r);
        incr w
      end
    done;
    if !w = n then a else Array.sub a 0 !w
  end

let of_list l = of_array (Array.of_list l)

let to_list = Array.to_list

let singleton x = [| x |]

let cardinal = Array.length

let mem x a =
  let rec loop lo hi =
    if lo >= hi then false
    else
      let mid = (lo + hi) / 2 in
      if a.(mid) = x then true
      else if a.(mid) < x then loop (mid + 1) hi
      else loop lo mid
  in
  loop 0 (Array.length a)

let union a b =
  let na = Array.length a and nb = Array.length b in
  if na = 0 then b
  else if nb = 0 then a
  else begin
    let out = Array.make (na + nb) 0 in
    let i = ref 0 and j = ref 0 and k = ref 0 in
    while !i < na && !j < nb do
      let x = a.(!i) and y = b.(!j) in
      if x < y then begin out.(!k) <- x; incr i end
      else if y < x then begin out.(!k) <- y; incr j end
      else begin out.(!k) <- x; incr i; incr j end;
      incr k
    done;
    while !i < na do out.(!k) <- a.(!i); incr i; incr k done;
    while !j < nb do out.(!k) <- b.(!j); incr j; incr k done;
    if !k = na + nb then out else Array.sub out 0 !k
  end

let add x a = if mem x a then a else union (singleton x) a

let remove x a =
  if not (mem x a) then a
  else begin
    let n = Array.length a in
    let out = Array.make (n - 1) 0 in
    let k = ref 0 in
    for i = 0 to n - 1 do
      if a.(i) <> x then begin
        out.(!k) <- a.(i);
        incr k
      end
    done;
    out
  end

let subset a b =
  let na = Array.length a and nb = Array.length b in
  if na > nb then false
  else begin
    let i = ref 0 and j = ref 0 in
    while !i < na && !j < nb do
      if a.(!i) = b.(!j) then begin incr i; incr j end
      else if a.(!i) > b.(!j) then incr j
      else j := nb (* a.(i) missing from b: fail *)
    done;
    !i = na
  end

let inter a b =
  let na = Array.length a and nb = Array.length b in
  let out = Array.make (min na nb) 0 in
  let i = ref 0 and j = ref 0 and k = ref 0 in
  while !i < na && !j < nb do
    if a.(!i) = b.(!j) then begin
      out.(!k) <- a.(!i);
      incr i; incr j; incr k
    end
    else if a.(!i) < b.(!j) then incr i
    else incr j
  done;
  Array.sub out 0 !k

let diff a b =
  let na = Array.length a and nb = Array.length b in
  let out = Array.make na 0 in
  let i = ref 0 and j = ref 0 and k = ref 0 in
  while !i < na do
    if !j >= nb || a.(!i) < b.(!j) then begin
      out.(!k) <- a.(!i);
      incr i; incr k
    end
    else if a.(!i) = b.(!j) then begin incr i; incr j end
    else incr j
  done;
  Array.sub out 0 !k

let equal a b = a = b

let compare a b =
  let c = Stdlib.compare (Array.length a) (Array.length b) in
  if c <> 0 then c else Stdlib.compare a b

let iter = Array.iter

let fold f a acc = Array.fold_left (fun acc x -> f x acc) acc a

let exists = Array.exists

let for_all = Array.for_all

let pp ppf a =
  Format.fprintf ppf "{";
  Array.iteri
    (fun i x -> if i = 0 then Format.fprintf ppf "%d" x else Format.fprintf ppf ", %d" x)
    a;
  Format.fprintf ppf "}"

let hash a = Hashtbl.hash a

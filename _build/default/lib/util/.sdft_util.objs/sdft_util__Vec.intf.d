lib/util/vec.mli:

lib/util/table.mli:

lib/util/rng.mli:

lib/util/parallel.mli:

lib/util/metrics.mli:

lib/util/histogram.mli:

lib/util/int_set.ml: Array Format Hashtbl Stdlib

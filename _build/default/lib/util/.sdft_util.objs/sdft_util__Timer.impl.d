lib/util/timer.ml: Format Unix

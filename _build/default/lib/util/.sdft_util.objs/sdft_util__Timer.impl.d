lib/util/timer.ml: Float Format Unix

lib/util/kahan.mli:

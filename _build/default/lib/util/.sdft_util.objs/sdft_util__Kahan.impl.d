lib/util/kahan.ml: Array List

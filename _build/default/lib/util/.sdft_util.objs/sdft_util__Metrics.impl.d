lib/util/metrics.ml: Atomic Buffer Char Float Fun Hashtbl List Mutex Printf String Timer

type t = {
  mutable counts : int array;
  mutable total : int;
  mutable max_bucket : int;
}

let create () = { counts = Array.make 8 0; total = 0; max_bucket = -1 }

let ensure t bucket =
  let n = Array.length t.counts in
  if bucket >= n then begin
    let counts = Array.make (max (bucket + 1) (2 * n)) 0 in
    Array.blit t.counts 0 counts 0 n;
    t.counts <- counts
  end

let observe t bucket =
  if bucket < 0 then invalid_arg "Histogram.observe: negative bucket";
  ensure t bucket;
  t.counts.(bucket) <- t.counts.(bucket) + 1;
  t.total <- t.total + 1;
  if bucket > t.max_bucket then t.max_bucket <- bucket

let count t bucket =
  if bucket < 0 || bucket >= Array.length t.counts then 0 else t.counts.(bucket)

let total t = t.total

let max_bucket t = t.max_bucket

let buckets t =
  List.init (t.max_bucket + 1) (fun i -> (i, t.counts.(i)))

let mean t =
  if t.total = 0 then 0.0
  else begin
    let acc = ref 0 in
    for i = 0 to t.max_bucket do
      acc := !acc + (i * t.counts.(i))
    done;
    float_of_int !acc /. float_of_int t.total
  end

let print_ascii ?(label = "") t =
  if label <> "" then Printf.printf "%s\n" label;
  let peak = Array.fold_left max 1 t.counts in
  let bar_width = 50 in
  for i = 0 to t.max_bucket do
    let c = t.counts.(i) in
    let w = c * bar_width / peak in
    Printf.printf "  %3d | %-*s %d\n" i bar_width (String.make w '#') c
  done

type t = {
  title : string;
  columns : string list;
  rows : string list Vec.t;
}

let create ~title ~columns = { title; columns; rows = Vec.create () }

let add_row t row = Vec.push t.rows row

let widths t =
  let n = List.length t.columns in
  let w = Array.make n 0 in
  let account row =
    List.iteri
      (fun i cell -> if i < n then w.(i) <- max w.(i) (String.length cell))
      row
  in
  account t.columns;
  Vec.iter account t.rows;
  w

let render_row w row buf =
  let n = Array.length w in
  List.iteri
    (fun i cell ->
      if i < n then begin
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf cell;
        if i < n - 1 then
          Buffer.add_string buf (String.make (w.(i) - String.length cell) ' ')
      end)
    row;
  Buffer.add_char buf '\n'

let to_string t =
  let w = widths t in
  let total = Array.fold_left ( + ) 0 w + (2 * (Array.length w - 1)) in
  let buf = Buffer.create 256 in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  render_row w t.columns buf;
  Buffer.add_string buf (String.make (max total 4) '-');
  Buffer.add_char buf '\n';
  Vec.iter (fun row -> render_row w row buf) t.rows;
  Buffer.contents buf

let print t = print_string (to_string t)

let cell_sci x = Printf.sprintf "%.3e" x

let cell_float ?(decimals = 2) x = Printf.sprintf "%.*f" decimals x

let cell_duration seconds = Format.asprintf "%a" Timer.pp_duration seconds

(** Compensated (Kahan) summation.

    Rare-event sums add tens of thousands of terms spanning many orders of
    magnitude; compensation keeps the accumulated rounding error at one ulp
    of the result instead of growing linearly in the number of terms. *)

type t

val create : unit -> t

val add : t -> float -> unit

val total : t -> float

val sum : float array -> float
(** Compensated sum of a whole array. *)

val sum_list : float list -> float

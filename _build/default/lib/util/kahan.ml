type t = {
  mutable sum : float;
  mutable compensation : float;
}

let create () = { sum = 0.0; compensation = 0.0 }

let add t x =
  let y = x -. t.compensation in
  let s = t.sum +. y in
  t.compensation <- s -. t.sum -. y;
  t.sum <- s

let total t = t.sum

let sum a =
  let t = create () in
  Array.iter (add t) a;
  total t

let sum_list l =
  let t = create () in
  List.iter (add t) l;
  total t

type t = float

let start () = Unix.gettimeofday ()

let elapsed_s t0 = Unix.gettimeofday () -. t0

let time f =
  let t0 = start () in
  let result = f () in
  (result, elapsed_s t0)

let pp_duration ppf seconds =
  (* Round once, then split: otherwise 119.96 would print as "1m 60s"
     (minutes truncated, rest rounded independently). *)
  let tenths = Float.round (seconds *. 10.0) /. 10.0 in
  if tenths < 60.0 then Format.fprintf ppf "%.1fs" tenths
  else begin
    let total = int_of_float (Float.round seconds) in
    Format.fprintf ppf "%dm %ds" (total / 60) (total mod 60)
  end

type t = float

let start () = Unix.gettimeofday ()

let elapsed_s t0 = Unix.gettimeofday () -. t0

let time f =
  let t0 = start () in
  let result = f () in
  (result, elapsed_s t0)

let pp_duration ppf seconds =
  if seconds < 60.0 then Format.fprintf ppf "%.1fs" seconds
  else begin
    let minutes = int_of_float (seconds /. 60.0) in
    let rest = seconds -. (float_of_int minutes *. 60.0) in
    Format.fprintf ppf "%dm %.0fs" minutes rest
  end

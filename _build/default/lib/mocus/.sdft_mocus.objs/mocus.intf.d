lib/mocus/mocus.mli: Cutset Fault_tree

lib/mocus/cutset.mli: Fault_tree Format Sdft_util

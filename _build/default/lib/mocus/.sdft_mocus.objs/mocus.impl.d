lib/mocus/mocus.ml: Array Cutset Expand Fault_tree Float Hashtbl List Sdft_util Stack

lib/mocus/mocus.ml: Array Cutset Expand Fault_tree Float Hashtbl Sdft_util Stack

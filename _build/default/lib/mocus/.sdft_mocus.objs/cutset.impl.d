lib/mocus/cutset.ml: Array Fault_tree Format Hashtbl List Sdft_util

(** Cutsets and lists of minimal cutsets (Section IV-A).

    A cutset is a set of basic-event indices whose joint failure fails the
    top gate; it is minimal when no proper subset is a cutset. This module
    provides the operations shared by the MOCUS and BDD back ends:
    subsumption-based minimization and the standard probabilistic
    aggregations. *)

type t = Sdft_util.Int_set.t

val probability : Fault_tree.t -> t -> float
(** [p(C) = prod_{a in C} p(a)] — the total probability of all scenarios the
    cutset represents (property (ii) in the paper). *)

val is_cutset : Fault_tree.t -> t -> bool
(** Does failing exactly the events of [t] fail the top gate? (For coherent
    trees this is equivalent to all represented scenarios failing.) *)

val is_minimal_cutset : Fault_tree.t -> t -> bool
(** Is [t] a cutset none of whose one-element-removed subsets is one? (For
    coherent trees, minimality reduces to this check.) *)

val minimize : t list -> t list
(** Remove every set that is a (non-strict) superset of another one;
    duplicates collapse to one representative. The result is sorted by
    cardinality then lexicographically. Runs in roughly
    O(total size * average occurrence-list length). *)

val rare_event_approximation : Fault_tree.t -> t list -> float
(** Sum of cutset probabilities — the upper approximation used throughout
    the paper. *)

val mcub : Fault_tree.t -> t list -> float
(** Min-cut upper bound [1 - prod (1 - p(C))] — a tighter standard upper
    bound, provided for comparison. *)

val sort_by_probability : Fault_tree.t -> t list -> t list
(** Decreasing probability (ties broken by the set order). *)

val pp : Fault_tree.t -> Format.formatter -> t -> unit
(** Render with event names, e.g. [{pump1_start, pump2_run}]. *)

module Int_set = Sdft_util.Int_set

type t = Int_set.t

let probability tree c =
  Int_set.fold (fun b acc -> acc *. Fault_tree.prob tree b) c 1.0

let is_cutset tree c = Fault_tree.fails_top tree ~failed:(fun b -> Int_set.mem b c)

let is_minimal_cutset tree c =
  is_cutset tree c
  && Int_set.for_all
       (fun b ->
         let without = Int_set.diff c (Int_set.singleton b) in
         not (is_cutset tree without))
       c

let minimize sets =
  let sets = List.sort_uniq Int_set.compare sets in
  match sets with
  | [] -> []
  | first :: _ when Int_set.cardinal first = 0 ->
    (* The empty set subsumes everything (and the occurrence-index test
       below cannot see it, having no elements to index). *)
    [ Int_set.empty ]
  | _ ->
    (* Scan in increasing cardinality; a set is kept unless some already
       kept (hence no larger) set is a subset. The occurrence index maps a
       basic event to the kept cutsets containing it, so the subset test
       only counts hits among cutsets sharing elements with the candidate. *)
    let max_elt =
      List.fold_left
        (fun acc s -> Int_set.fold (fun x m -> max x m) s acc)
        0 sets
    in
    let occurrences = Array.make (max_elt + 1) [] in
    let kept = Sdft_util.Vec.create () in
    let kept_size = Sdft_util.Vec.create () in
    let hit_count = Hashtbl.create 64 in
    let subsumed candidate =
      Hashtbl.reset hit_count;
      let found = ref false in
      Int_set.iter
        (fun b ->
          if not !found then
            List.iter
              (fun id ->
                let c = (try Hashtbl.find hit_count id with Not_found -> 0) + 1 in
                Hashtbl.replace hit_count id c;
                if c = Sdft_util.Vec.get kept_size id then found := true)
              occurrences.(b))
        candidate;
      !found
    in
    List.iter
      (fun s ->
        if not (subsumed s) then begin
          let id = Sdft_util.Vec.length kept in
          Sdft_util.Vec.push kept s;
          Sdft_util.Vec.push kept_size (Int_set.cardinal s);
          Int_set.iter (fun b -> occurrences.(b) <- id :: occurrences.(b)) s
        end)
      sets;
    Sdft_util.Vec.to_list kept

let rare_event_approximation tree sets =
  Sdft_util.Kahan.sum_list (List.map (probability tree) sets)

let mcub tree sets =
  1.0 -. List.fold_left (fun acc c -> acc *. (1.0 -. probability tree c)) 1.0 sets

let sort_by_probability tree sets =
  let keyed = List.map (fun c -> (probability tree c, c)) sets in
  let sorted =
    List.sort
      (fun (p1, c1) (p2, c2) ->
        let cmp = compare p2 p1 in
        if cmp <> 0 then cmp else Int_set.compare c1 c2)
      keyed
  in
  List.map snd sorted

let pp tree ppf c =
  Format.fprintf ppf "{";
  let first = ref true in
  Int_set.iter
    (fun b ->
      if !first then first := false else Format.fprintf ppf ", ";
      Format.pp_print_string ppf (Fault_tree.basic_name tree b))
    c;
  Format.fprintf ppf "}"

(** Discrete-event Monte-Carlo simulation of the full SD fault tree
    semantics.

    Simulates the product process of Section III-C directly — static events
    sampled at time zero, dynamic events racing exponential transitions,
    trigger updates applied instantaneously after every jump — without ever
    building the product state space. Used as a statistical baseline to
    validate the analytic pipeline (and as the only practical oracle for
    models too large for {!Sdft_product.solve} but with failure
    probabilities large enough to estimate). *)

type stats = {
  trials : int;
  failures : int;
  estimate : float;  (** failure fraction *)
  std_error : float;  (** binomial standard error *)
}

val unreliability :
  ?seed:int -> Sdft.t -> horizon:float -> trials:int -> stats
(** [unreliability sd ~horizon ~trials] — probability that the top gate
    fails within the horizon, estimated over independent trials. The
    default seed is 42; results are deterministic per seed. *)

val failure_time :
  ?seed:int -> Sdft.t -> horizon:float -> trials:int -> float option
(** Mean time to first top-gate failure among failing trials, [None] when
    no trial failed. *)

val confidence_95 : stats -> float * float
(** Normal-approximation 95% interval, clamped to [[0, 1]]. *)

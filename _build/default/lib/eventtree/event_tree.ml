type function_spec = {
  name : string;
  build_failure : Fault_tree.Builder.t -> Fault_tree.node;
  demand_started : string list;
}

type outcome =
  | Ok
  | Damage of string

type t = {
  initiator : string;
  initiator_prob : float;
  functions : function_spec list;
  outcome_of : bool list -> outcome;
}

let sequences t =
  let n = List.length t.functions in
  let rec enumerate prefix k =
    if k = n then
      let pattern = List.rev prefix in
      [ (pattern, t.outcome_of pattern) ]
    else
      enumerate (false :: prefix) (k + 1) @ enumerate (true :: prefix) (k + 1)
  in
  enumerate [] 0

let compile_builder t ~category =
  if List.length t.functions > 20 then
    invalid_arg "Event_tree.compile: too many safety functions";
  let builder = Fault_tree.Builder.create () in
  let ie =
    Fault_tree.Builder.basic builder ~prob:t.initiator_prob t.initiator
  in
  let function_gates =
    List.map (fun f -> (f, f.build_failure builder)) t.functions
  in
  let damage_sequences =
    List.filter_map
      (fun (pattern, outcome) ->
        match outcome with
        | Damage c when c = category -> Some pattern
        | Damage _ | Ok -> None)
      (sequences t)
  in
  if damage_sequences = [] then
    invalid_arg
      (Printf.sprintf "Event_tree.compile: no sequence reaches category %S"
         category);
  let seq_gates =
    List.mapi
      (fun i pattern ->
        let failed_functions =
          List.filteri (fun j _ -> List.nth pattern j) function_gates
        in
        let inputs = ie :: List.map snd failed_functions in
        Fault_tree.Builder.gate builder
          (Printf.sprintf "seq%d" (i + 1))
          Fault_tree.And inputs)
      damage_sequences
  in
  let top =
    Fault_tree.Builder.gate builder
      (Printf.sprintf "top_%s" category)
      Fault_tree.Or seq_gates
  in
  (Fault_tree.Builder.build builder ~top, function_gates)

let compile t ~category = fst (compile_builder t ~category)

let categories t =
  List.sort_uniq compare
    (List.filter_map
       (fun (_, o) -> match o with Damage c -> Some c | Ok -> None)
       (sequences t))

let compile_sd t ~category ~dynamic ?(demand_triggers = true) () =
  let tree, function_gates = compile_builder t ~category in
  let dynamic_names = List.map fst dynamic in
  let triggers =
    if not demand_triggers then []
    else begin
      (* Function i's demand-started events are triggered by the failure
         gate of the latest preceding function (function 0's events run
         from time zero and stay untriggered). *)
      let rec chain prev acc = function
        | [] -> acc
        | (f, gate_node) :: rest ->
          let acc =
            match prev with
            | None -> acc
            | Some prev_gate ->
              let gate_name =
                match prev_gate with
                | Fault_tree.G g -> Fault_tree.gate_name tree g
                | Fault_tree.B _ ->
                  invalid_arg
                    "Event_tree.compile_sd: function failure must be a gate"
              in
              List.fold_left
                (fun acc ev ->
                  if List.mem ev dynamic_names then (gate_name, ev) :: acc
                  else acc)
                acc f.demand_started
          in
          chain (Some gate_node) acc rest
      in
      List.rev (chain None [] function_gates)
    end
  in
  Sdft.make tree ~dynamic ~triggers

let analyze_categories t ~dynamic ?demand_triggers ?options () =
  List.map
    (fun category ->
      let sd = compile_sd t ~category ~dynamic ?demand_triggers () in
      (category, Sdft_analysis.analyze ?options sd))
    (categories t)

(** Event trees: the higher-level formalism that orders safety functions.

    A (binary) event tree starts from an initiating event and asks, for each
    safety function in order, whether it succeeds or fails; every path
    through the branches is an {e accident sequence} ending in an outcome
    (OK or a damage category). The paper points out (Section V-A) that this
    ordering information is exactly what SD fault trees can exploit: the
    demand of the next safety function coincides with the failure of the
    previous one, so the failure gate of function [i] naturally triggers the
    standby equipment of function [i+1], "offering a possibility for long
    triggering chains".

    This module compiles an event tree into a fault tree per damage category
    (the standard coherent approximation: a sequence contributes the AND of
    its initiating event and its failed functions; successful branches are
    ignored) and, optionally, installs the demand-trigger chain to produce
    an SD fault tree. *)

type function_spec = {
  name : string;
  build_failure : Fault_tree.Builder.t -> Fault_tree.node;
      (** failure logic of the safety function, built into the shared
          builder; called exactly once *)
  demand_started : string list;
      (** names of (dynamic) basic events of this function that are started
          on demand — targets for the trigger chain *)
}

type outcome =
  | Ok
  | Damage of string  (** damage category, e.g. "CD" *)

type t = {
  initiator : string;
  initiator_prob : float;
  functions : function_spec list;
  outcome_of : bool list -> outcome;
      (** maps the failure pattern (one bool per function, [true] = failed)
          to the sequence outcome *)
}

val compile : t -> category:string -> Fault_tree.t
(** Static fault tree whose top models reaching the given damage category.

    @raise Invalid_argument when no sequence reaches the category or there
    are more than 20 safety functions (sequences are enumerated). *)

val compile_sd :
  t ->
  category:string ->
  dynamic:(string * Dbe.t) list ->
  ?demand_triggers:bool ->
  unit ->
  Sdft.t
(** As [compile], declaring the given events dynamic. With [demand_triggers]
    (default true), each demand-started event of function [i] is triggered
    by the failure gate of the latest preceding function that has one —
    the event-tree ordering turned into a triggering chain. Events of the
    first function run from time zero. *)

val sequences : t -> (bool list * outcome) list
(** All failure patterns with their outcomes, in branching order. *)

val categories : t -> string list
(** Damage categories reachable by some sequence, sorted. *)

val analyze_categories :
  t ->
  dynamic:(string * Dbe.t) list ->
  ?demand_triggers:bool ->
  ?options:Sdft_analysis.options ->
  unit ->
  (string * Sdft_analysis.result) list
(** Compile and analyse every damage category (the per-category SD fault
    trees share the function structure but are built independently; the
    [dynamic] association is re-instantiated per category). *)

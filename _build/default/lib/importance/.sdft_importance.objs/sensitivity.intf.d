lib/importance/sensitivity.mli: Cutset Fault_tree

lib/importance/sensitivity.ml: Fault_tree Float List Printf Sdft_util String

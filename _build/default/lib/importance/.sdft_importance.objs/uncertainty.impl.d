lib/importance/uncertainty.ml: Array Fault_tree Float Format Hashtbl List Sdft_util

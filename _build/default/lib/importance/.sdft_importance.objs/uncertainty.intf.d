lib/importance/uncertainty.mli: Cutset Fault_tree Format

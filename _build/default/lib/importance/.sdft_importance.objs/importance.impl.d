lib/importance/importance.ml: Array Cutset Fault_tree Float Fun List Sdft_util

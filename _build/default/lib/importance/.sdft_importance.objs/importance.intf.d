lib/importance/importance.mli: Cutset Fault_tree

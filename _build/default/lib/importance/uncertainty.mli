(** Parameter-uncertainty propagation over a minimal-cutset list.

    Probabilistic safety assessments attach an uncertainty distribution to
    every basic-event probability (typically a lognormal characterised by an
    error factor) and propagate it by Monte-Carlo: the cutset list is fixed
    and re-quantified for every sampled parameter vector. The paper's
    concluding remark — importance and uncertainty analyses "need to
    evaluate the list of minimal cutsets many times" and are "easy to
    parallelize" — is exactly this workload. *)

type distribution =
  | Point  (** no uncertainty; keep the point value *)
  | Lognormal of { error_factor : float }
      (** median = point value, 95th percentile = EF * median; samples are
          clamped to 1 *)
  | Uniform of { lower : float; upper : float }
  | Triangular of { lower : float; upper : float }
      (** mode = point value *)

type stats = {
  samples : int;
  mean : float;
  std : float;
  p05 : float;  (** 5th percentile *)
  median : float;
  p95 : float;  (** 95th percentile *)
  point : float;  (** rare-event approximation at the point values *)
}

val propagate :
  ?samples:int ->
  ?seed:int ->
  Fault_tree.t ->
  Cutset.t list ->
  spec:(int -> distribution) ->
  stats
(** [propagate tree cutsets ~spec] resamples the basic-event probabilities
    [samples] times (default 2000) and re-evaluates the rare-event
    approximation over the fixed cutset list. [spec] gives each event's
    distribution (events not in any cutset are never sampled). *)

val pp_stats : Format.formatter -> stats -> unit

type entry = {
  event : int;
  low : float;
  high : float;
  swing : float;
}

type t = {
  point : float;
  entries : entry list;
}

let clamp01 x = Float.max 0.0 (Float.min 1.0 x)

let tornado ?(factor = 10.0) tree cutsets =
  if factor <= 1.0 then invalid_arg "Sensitivity.tornado: factor must exceed 1";
  let involved =
    List.fold_left
      (fun acc c -> Sdft_util.Int_set.union acc c)
      Sdft_util.Int_set.empty cutsets
  in
  (* REA as a function of one overridden event. *)
  let rea override_event override_p =
    let acc = Sdft_util.Kahan.create () in
    List.iter
      (fun c ->
        let p =
          Sdft_util.Int_set.fold
            (fun b m ->
              m *. (if b = override_event then override_p else Fault_tree.prob tree b))
            c 1.0
        in
        Sdft_util.Kahan.add acc p)
      cutsets;
    Sdft_util.Kahan.total acc
  in
  let point = rea (-1) 0.0 in
  let entries =
    Sdft_util.Int_set.fold
      (fun event acc ->
        let p = Fault_tree.prob tree event in
        let low = rea event (clamp01 (p /. factor)) in
        let high = rea event (clamp01 (p *. factor)) in
        { event; low; high; swing = high -. low } :: acc)
      involved []
  in
  let entries =
    List.sort (fun a b -> compare b.swing a.swing) entries
  in
  { point; entries }

let top_contributors t n =
  List.filteri (fun i _ -> i < n) t.entries
  |> List.map (fun e -> (e.event, e.swing))

let print_ascii tree ?(top = 15) t =
  Printf.printf "point estimate: %.3e\n" t.point;
  let peak =
    List.fold_left (fun acc e -> Float.max acc e.swing) 1e-300 t.entries
  in
  List.iteri
    (fun i e ->
      if i < top then begin
        let width = int_of_float (50.0 *. e.swing /. peak) in
        Printf.printf "  %-30s %-50s [%.2e, %.2e]\n"
          (Fault_tree.basic_name tree e.event)
          (String.make (max width 1) '#')
          e.low e.high
      end)
    t.entries

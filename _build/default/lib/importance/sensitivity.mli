(** One-at-a-time sensitivity analysis (tornado diagrams).

    Each basic event's probability is pushed to its pessimistic and
    optimistic bound (by a multiplicative factor, clamped to [[0,1]]) while
    all other events stay at their point values; the swing of the rare-event
    approximation measures how much the result depends on that parameter.
    Sorting by swing gives the classical tornado diagram of a PSA review. *)

type entry = {
  event : int;
  low : float;  (** REA with the event's probability divided by the factor *)
  high : float;  (** REA with it multiplied by the factor *)
  swing : float;  (** [high - low] *)
}

type t = {
  point : float;
  entries : entry list;  (** decreasing swing *)
}

val tornado : ?factor:float -> Fault_tree.t -> Cutset.t list -> t
(** [factor] defaults to 10 (one order of magnitude each way). Only events
    appearing in some cutset are analysed. *)

val top_contributors : t -> int -> (int * float) list
(** The [n] largest swings as [(event, swing)]. *)

val print_ascii : Fault_tree.t -> ?top:int -> t -> unit
(** Horizontal tornado bars on stdout. *)

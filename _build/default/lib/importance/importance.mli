(** Importance measures over a minimal-cutset list.

    The paper dynamizes its industrial models by replacing the basic events
    with the highest Fussell-Vesely importance and building trigger chains
    among events of equal importance (Section VI-B); this module provides
    those measures. All quantities use the rare-event approximation, the
    standard practice for large PSA models. *)

type t

val compute : Fault_tree.t -> Cutset.t list -> t
(** Pre-computes per-event sums over the cutset list. *)

val total : t -> float
(** Rare-event approximation of the top probability. *)

val fussell_vesely : t -> int -> float
(** Fraction of the top probability carried by cutsets containing the
    event. *)

val birnbaum : t -> int -> float
(** Marginal importance [dQ/dp(a)]: sum over cutsets containing [a] of the
    product of the other events' probabilities. *)

val raw : t -> int -> float
(** Risk achievement worth [Q(p_a := 1) / Q]; infinite when [Q = 0]. *)

val rrw : t -> int -> float
(** Risk reduction worth [Q / Q(p_a := 0)]; infinite when removing the
    event removes all risk. *)

val rank_by_fussell_vesely : t -> int list
(** All basic events, most important first; ties broken by index. *)

val groups_by_fussell_vesely : ?tolerance:float -> t -> int list list
(** Events partitioned into groups of (nearly) equal Fussell-Vesely
    importance, most important group first. The paper uses such groups to
    identify symmetric redundant trains. *)

type t = {
  total : float;
  with_event : float array; (* sum of p(C) over cutsets containing a *)
  birnbaum : float array; (* sum of p(C)/p(a) over cutsets containing a *)
}

let compute tree cutsets =
  let nb = Fault_tree.n_basics tree in
  let with_event = Array.make nb 0.0 in
  let birnbaum = Array.make nb 0.0 in
  let total = Sdft_util.Kahan.create () in
  List.iter
    (fun c ->
      let p = Cutset.probability tree c in
      Sdft_util.Kahan.add total p;
      Sdft_util.Int_set.iter
        (fun a ->
          with_event.(a) <- with_event.(a) +. p;
          (* Product of the other events' probabilities; recomputed rather
             than divided so that p(a) = 0 stays meaningful. *)
          let rest =
            Sdft_util.Int_set.fold
              (fun b acc -> if b = a then acc else acc *. Fault_tree.prob tree b)
              c 1.0
          in
          birnbaum.(a) <- birnbaum.(a) +. rest)
        c)
    cutsets;
  { total = Sdft_util.Kahan.total total; with_event; birnbaum }

let total t = t.total

let fussell_vesely t a =
  if t.total = 0.0 then 0.0 else t.with_event.(a) /. t.total

let birnbaum t a = t.birnbaum.(a)

let raw t a =
  if t.total = 0.0 then infinity
  else (t.total -. t.with_event.(a) +. t.birnbaum.(a)) /. t.total

let rrw t a =
  let reduced = t.total -. t.with_event.(a) in
  if reduced = 0.0 then infinity else t.total /. reduced

let rank_by_fussell_vesely t =
  let n = Array.length t.with_event in
  let events = List.init n Fun.id in
  List.sort
    (fun a b ->
      let c = compare (fussell_vesely t b) (fussell_vesely t a) in
      if c <> 0 then c else compare a b)
    events

let groups_by_fussell_vesely ?(tolerance = 1e-12) t =
  let ranked = rank_by_fussell_vesely t in
  let rec group acc current last = function
    | [] -> List.rev (List.rev current :: acc)
    | a :: rest ->
      let fv = fussell_vesely t a in
      if Float.abs (fv -. last) <= tolerance *. Float.max 1.0 (Float.abs last)
      then group acc (a :: current) last rest
      else group (List.rev current :: acc) [ a ] fv rest
  in
  match ranked with
  | [] -> []
  | a :: rest -> group [] [ a ] (fussell_vesely t a) rest

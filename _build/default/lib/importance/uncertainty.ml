type distribution =
  | Point
  | Lognormal of { error_factor : float }
  | Uniform of { lower : float; upper : float }
  | Triangular of { lower : float; upper : float }

type stats = {
  samples : int;
  mean : float;
  std : float;
  p05 : float;
  median : float;
  p95 : float;
  point : float;
}

let clamp01 x = Float.max 0.0 (Float.min 1.0 x)

let sample_value rng point = function
  | Point -> point
  | Lognormal { error_factor } ->
    if point <= 0.0 then point
    else clamp01 (Sdft_util.Rng.lognormal rng ~median:point ~error_factor)
  | Uniform { lower; upper } ->
    if upper < lower then invalid_arg "Uncertainty: empty uniform range";
    clamp01 (lower +. (Sdft_util.Rng.float rng *. (upper -. lower)))
  | Triangular { lower; upper } ->
    if upper < lower || point < lower || point > upper then
      invalid_arg "Uncertainty: bad triangular parameters";
    (* Inverse-CDF sampling with mode = point. *)
    let u = Sdft_util.Rng.float rng in
    let fc = if upper = lower then 0.5 else (point -. lower) /. (upper -. lower) in
    let v =
      if u < fc then lower +. sqrt (u *. (upper -. lower) *. (point -. lower))
      else upper -. sqrt ((1.0 -. u) *. (upper -. lower) *. (upper -. point))
    in
    clamp01 v

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else begin
    let pos = q *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor pos) in
    let hi = min (n - 1) (lo + 1) in
    let frac = pos -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
  end

let propagate ?(samples = 2000) ?(seed = 20240) tree cutsets ~spec =
  if samples <= 0 then invalid_arg "Uncertainty.propagate: need samples";
  let rng = Sdft_util.Rng.create seed in
  (* Only events that occur in some cutset matter. *)
  let involved =
    List.fold_left
      (fun acc c -> Sdft_util.Int_set.union acc c)
      Sdft_util.Int_set.empty cutsets
  in
  let involved = (involved :> int array) in
  let point_of = Array.map (Fault_tree.prob tree) involved in
  let slot_of = Hashtbl.create (Array.length involved) in
  Array.iteri (fun slot b -> Hashtbl.replace slot_of b slot) involved;
  let cutset_slots =
    List.map
      (fun c ->
        let members = Array.of_list (Sdft_util.Int_set.to_list c) in
        Array.map (Hashtbl.find slot_of) members)
      cutsets
  in
  let current = Array.copy point_of in
  let rea () =
    let acc = Sdft_util.Kahan.create () in
    List.iter
      (fun slots ->
        let p = Array.fold_left (fun acc s -> acc *. current.(s)) 1.0 slots in
        Sdft_util.Kahan.add acc p)
      cutset_slots;
    Sdft_util.Kahan.total acc
  in
  let point = rea () in
  let values =
    Array.init samples (fun _ ->
        Array.iteri
          (fun slot b ->
            current.(slot) <- sample_value rng point_of.(slot) (spec b))
          involved;
        rea ())
  in
  let mean = Sdft_util.Kahan.sum values /. float_of_int samples in
  let variance =
    Array.fold_left (fun acc v -> acc +. ((v -. mean) ** 2.0)) 0.0 values
    /. float_of_int (max 1 (samples - 1))
  in
  let sorted = Array.copy values in
  Array.sort compare sorted;
  {
    samples;
    mean;
    std = sqrt variance;
    p05 = percentile sorted 0.05;
    median = percentile sorted 0.5;
    p95 = percentile sorted 0.95;
    point;
  }

let pp_stats ppf s =
  Format.fprintf ppf
    "point %.3e; mean %.3e (std %.3e); 5%% %.3e, median %.3e, 95%% %.3e (%d samples)"
    s.point s.mean s.std s.p05 s.median s.p95 s.samples

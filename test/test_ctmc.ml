(* Tests for the CTMC engine: construction, Poisson weights, uniformization
   against closed-form solutions. *)

let check_close ?(eps = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

(* Ctmc construction *)

let test_make_rejects_self_loop () =
  Alcotest.check_raises "self loop" (Invalid_argument "Ctmc.make: self-loop")
    (fun () -> ignore (Ctmc.make ~n_states:2 ~transitions:[ (0, 0, 1.0) ]))

let test_make_rejects_bad_rate () =
  Alcotest.check_raises "zero rate"
    (Invalid_argument "Ctmc.make: rate must be positive and finite") (fun () ->
      ignore (Ctmc.make ~n_states:2 ~transitions:[ (0, 1, 0.0) ]))

let test_make_rejects_out_of_range () =
  Alcotest.check_raises "range" (Invalid_argument "Ctmc.make: state out of range")
    (fun () -> ignore (Ctmc.make ~n_states:2 ~transitions:[ (0, 2, 1.0) ]))

let test_make_merges_parallel () =
  let c = Ctmc.make ~n_states:2 ~transitions:[ (0, 1, 1.0); (0, 1, 2.5) ] in
  check_close "merged rate" 3.5 (Ctmc.rate c 0 1);
  check_close "exit" 3.5 (Ctmc.exit_rate c 0);
  Alcotest.(check int) "one merged transition" 1 (Ctmc.n_transitions c)

let test_exit_and_max_rate () =
  let c =
    Ctmc.make ~n_states:3 ~transitions:[ (0, 1, 1.0); (0, 2, 2.0); (1, 2, 5.0) ]
  in
  check_close "exit 0" 3.0 (Ctmc.exit_rate c 0);
  check_close "exit 1" 5.0 (Ctmc.exit_rate c 1);
  check_close "exit 2 (absorbing)" 0.0 (Ctmc.exit_rate c 2);
  check_close "max" 5.0 (Ctmc.max_exit_rate c)

let test_restrict_absorbing () =
  let c = Ctmc.make ~n_states:2 ~transitions:[ (0, 1, 1.0); (1, 0, 1.0) ] in
  let c' = Ctmc.restrict_absorbing c (fun s -> s = 1) in
  check_close "outgoing removed" 0.0 (Ctmc.exit_rate c' 1);
  check_close "other kept" 1.0 (Ctmc.exit_rate c' 0)

let test_embedded_dtmc () =
  let c = Ctmc.make ~n_states:3 ~transitions:[ (0, 1, 1.0); (0, 2, 3.0) ] in
  let row = Ctmc.embedded_dtmc_row c 0 in
  Alcotest.(check int) "two targets" 2 (Array.length row);
  check_close "p(0->1)" 0.25 (snd row.(0));
  check_close "p(0->2)" 0.75 (snd row.(1));
  Alcotest.(check int) "absorbing empty" 0 (Array.length (Ctmc.embedded_dtmc_row c 2))

(* Poisson *)

let test_poisson_matches_pmf () =
  List.iter
    (fun qt ->
      let w = Poisson.weights qt in
      for k = w.Poisson.left to min w.Poisson.right (w.Poisson.left + 200) do
        let expected = Poisson.pmf qt k in
        let got = w.Poisson.weights.(k - w.Poisson.left) in
        if Float.abs (expected -. got) > 1e-9 then
          Alcotest.failf "pmf mismatch qt=%g k=%d: %g vs %g" qt k expected got
      done)
    [ 0.1; 1.0; 5.0; 25.0; 100.0 ]

let test_poisson_weights_sum_to_one () =
  List.iter
    (fun qt ->
      let w = Poisson.weights qt in
      check_close ~eps:1e-10 "weights sum"
        1.0
        (Sdft_util.Kahan.sum w.Poisson.weights))
    [ 0.0; 0.5; 3.0; 50.0; 1000.0; 100000.0 ]

let test_poisson_zero_mean () =
  let w = Poisson.weights 0.0 in
  Alcotest.(check int) "left" 0 w.Poisson.left;
  Alcotest.(check int) "right" 0 w.Poisson.right;
  check_close "weight" 1.0 w.Poisson.weights.(0)

let test_poisson_covers_mass () =
  (* The window must cover all but ~epsilon of the distribution. *)
  let qt = 40.0 in
  let w = Poisson.weights ~epsilon:1e-12 qt in
  let outside = ref 0.0 in
  for k = 0 to w.Poisson.left - 1 do
    outside := !outside +. Poisson.pmf qt k
  done;
  for k = w.Poisson.right + 1 to w.Poisson.right + 300 do
    outside := !outside +. Poisson.pmf qt k
  done;
  Alcotest.(check bool) "truncated mass tiny" true (!outside < 1e-10)

let test_poisson_mode_in_window () =
  List.iter
    (fun qt ->
      let w = Poisson.weights qt in
      let mode = int_of_float qt in
      Alcotest.(check bool) "mode covered" true
        (w.Poisson.left <= mode && mode <= w.Poisson.right);
      (* The mode carries the largest weight. *)
      let wm = w.Poisson.weights.(mode - w.Poisson.left) in
      Alcotest.(check bool) "mode maximal" true
        (Array.for_all (fun x -> x <= wm +. 1e-15) w.Poisson.weights))
    [ 0.5; 7.0; 300.0; 12345.0 ]

let test_poisson_rejects_negative () =
  Alcotest.check_raises "negative"
    (Invalid_argument "Poisson.weights: mean must be finite and non-negative")
    (fun () -> ignore (Poisson.weights (-1.0)))

(* Transient analysis vs closed forms *)

(* Two-state chain 0 ->(l) 1: P(in 1 at t) = 1 - exp(-l t). *)
let test_transient_single_exponential () =
  let l = 0.3 in
  let c = Ctmc.make ~n_states:2 ~transitions:[ (0, 1, l) ] in
  List.iter
    (fun t ->
      let d = Transient.distribution c ~init:[ (0, 1.0) ] ~t in
      check_close ~eps:1e-10 "P(failed)" (1.0 -. exp (-.l *. t)) d.(1))
    [ 0.0; 0.5; 2.0; 10.0 ]

(* Repairable machine: 0 <-> 1 with failure l and repair m.
   P(in 1 at t) = l/(l+m) (1 - exp(-(l+m) t)). *)
let test_transient_birth_death () =
  let l = 0.2 and m = 1.3 in
  let c = Ctmc.make ~n_states:2 ~transitions:[ (0, 1, l); (1, 0, m) ] in
  List.iter
    (fun t ->
      let d = Transient.distribution c ~init:[ (0, 1.0) ] ~t in
      let expected = l /. (l +. m) *. (1.0 -. exp (-.(l +. m) *. t)) in
      check_close ~eps:1e-10 "P(down)" expected d.(1))
    [ 0.1; 1.0; 5.0; 50.0 ]

(* Erlang-2: time to absorb is the sum of two Exp(l); CDF is
   1 - e^{-lt}(1 + lt). *)
let test_transient_erlang_2 () =
  let l = 0.7 in
  let c = Ctmc.make ~n_states:3 ~transitions:[ (0, 1, l); (1, 2, l) ] in
  List.iter
    (fun t ->
      let p =
        Transient.reach_within c ~init:[ (0, 1.0) ] ~target:(fun s -> s = 2) ~t
      in
      let expected = 1.0 -. (exp (-.l *. t) *. (1.0 +. (l *. t))) in
      check_close ~eps:1e-10 "Erlang CDF" expected p)
    [ 0.5; 2.0; 8.0 ]

(* Reachability makes the target absorbing: a chain that passes through
   state 1 and leaves it again must still count the visit. *)
let test_reach_counts_transient_visits () =
  let c = Ctmc.make ~n_states:3 ~transitions:[ (0, 1, 10.0); (1, 2, 10.0) ] in
  let p_visit =
    Transient.reach_within c ~init:[ (0, 1.0) ] ~target:(fun s -> s = 1) ~t:10.0
  in
  let d = Transient.distribution c ~init:[ (0, 1.0) ] ~t:10.0 in
  Alcotest.(check bool) "occupancy < reach" true (d.(1) < 0.5 && p_visit > 0.99)

let test_reach_at_time_zero () =
  let c = Ctmc.make ~n_states:2 ~transitions:[ (0, 1, 1.0) ] in
  let p =
    Transient.reach_within c ~init:[ (1, 0.4); (0, 0.6) ] ~target:(fun s -> s = 1)
      ~t:0.0
  in
  check_close "initial mass counts" 0.4 p

let test_transient_substochastic_init_rejected () =
  let c = Ctmc.make ~n_states:2 ~transitions:[ (0, 1, 1.0) ] in
  Alcotest.check_raises "too much mass"
    (Invalid_argument "Transient: initial distribution sums to more than 1")
    (fun () ->
      ignore (Transient.distribution c ~init:[ (0, 0.8); (1, 0.4) ] ~t:1.0))

let test_transient_large_qt () =
  (* Stiff chain: fast repair, long horizon. Steady-state detection should
     kick in; result must match the closed form. *)
  let l = 0.001 and m = 100.0 in
  let c = Ctmc.make ~n_states:2 ~transitions:[ (0, 1, l); (1, 0, m) ] in
  let t = 1000.0 in
  let d = Transient.distribution c ~init:[ (0, 1.0) ] ~t in
  let expected = l /. (l +. m) *. (1.0 -. exp (-.(l +. m) *. t)) in
  check_close ~eps:1e-8 "stiff chain" expected d.(1)

let test_expected_time_to_absorption () =
  (* Erlang-3 with rate l: mean 3/l. *)
  let l = 2.0 in
  let c =
    Ctmc.make ~n_states:4 ~transitions:[ (0, 1, l); (1, 2, l); (2, 3, l) ]
  in
  match Transient.expected_time_to_absorption c ~init:[ (0, 1.0) ] with
  | Some m -> check_close ~eps:1e-9 "mean" 1.5 m
  | None -> Alcotest.fail "expected convergence"

let test_expected_time_with_branching () =
  (* From 0: to absorbing 1 with rate a, to absorbing 2 with rate b.
     Mean time = 1/(a+b). *)
  let a = 1.0 and b = 3.0 in
  let c = Ctmc.make ~n_states:3 ~transitions:[ (0, 1, a); (0, 2, b) ] in
  match Transient.expected_time_to_absorption c ~init:[ (0, 1.0) ] with
  | Some m -> check_close ~eps:1e-9 "mean" 0.25 m
  | None -> Alcotest.fail "expected convergence"

(* Steady state *)

let test_steady_state_birth_death () =
  let l = 0.3 and m = 1.7 in
  let c = Ctmc.make ~n_states:2 ~transitions:[ (0, 1, l); (1, 0, m) ] in
  match Steady_state.solve c with
  | Some pi ->
    check_close ~eps:1e-9 "pi(down)" (l /. (l +. m)) pi.(1);
    check_close ~eps:1e-9 "pi(up)" (m /. (l +. m)) pi.(0)
  | None -> Alcotest.fail "no convergence"

let test_steady_state_unavailability () =
  let l = 0.01 and m = 0.5 in
  let c = Ctmc.make ~n_states:2 ~transitions:[ (0, 1, l); (1, 0, m) ] in
  match Steady_state.unavailability c ~failed:(fun s -> s = 1) with
  | Some q -> check_close ~eps:1e-9 "unavailability" (l /. (l +. m)) q
  | None -> Alcotest.fail "no convergence"

let test_steady_state_cycle () =
  (* Three-state cycle with equal rates: uniform stationary distribution. *)
  let c =
    Ctmc.make ~n_states:3 ~transitions:[ (0, 1, 1.0); (1, 2, 1.0); (2, 0, 1.0) ]
  in
  match Steady_state.solve c with
  | Some pi ->
    Array.iter (fun p -> check_close ~eps:1e-9 "uniform" (1.0 /. 3.0) p) pi
  | None -> Alcotest.fail "no convergence"

let test_occupancy_sums_to_horizon () =
  let c =
    Ctmc.make ~n_states:3 ~transitions:[ (0, 1, 0.7); (1, 0, 0.2); (1, 2, 0.4) ]
  in
  List.iter
    (fun t ->
      let occ = Steady_state.expected_occupancy c ~init:[ (0, 1.0) ] ~t in
      check_close ~eps:1e-8 "total time" t (Array.fold_left ( +. ) 0.0 occ))
    [ 0.0; 1.0; 10.0 ]

let test_occupancy_closed_form () =
  (* Repairable machine: expected downtime in [0,t] is
     q*t - q*(1 - exp(-(l+m) t))/(l+m) with q = l/(l+m). *)
  let l = 0.4 and m = 0.9 in
  let c = Ctmc.make ~n_states:2 ~transitions:[ (0, 1, l); (1, 0, m) ] in
  List.iter
    (fun t ->
      let occ = Steady_state.expected_occupancy c ~init:[ (0, 1.0) ] ~t in
      let q = l /. (l +. m) in
      let s = l +. m in
      let expected = (q *. t) -. (q /. s *. (1.0 -. exp (-.s *. t))) in
      check_close ~eps:1e-7 "downtime" expected occ.(1))
    [ 0.5; 3.0; 20.0 ]

let test_occupancy_absorbing () =
  (* Single jump 0 -> 1 at rate l: expected time in 0 within [0,t] is
     (1 - exp(-l t))/l. *)
  let l = 0.25 in
  let c = Ctmc.make ~n_states:2 ~transitions:[ (0, 1, l) ] in
  let t = 6.0 in
  let occ = Steady_state.expected_occupancy c ~init:[ (0, 1.0) ] ~t in
  check_close ~eps:1e-8 "time in 0" ((1.0 -. exp (-.l *. t)) /. l) occ.(0)

(* qcheck: transient distribution stays a distribution. *)

let prop_distribution_sums_to_one =
  let gen =
    QCheck.make
      QCheck.Gen.(
        let* n = 2 -- 6 in
        let* edges = list_size (1 -- 12) (triple (0 -- (n - 1)) (0 -- (n - 1)) (1 -- 50)) in
        let* t = 0 -- 40 in
        return (n, edges, float_of_int t /. 4.0))
  in
  QCheck.Test.make ~name:"transient distribution sums to 1" ~count:200 gen
    (fun (n, edges, t) ->
      let transitions =
        List.filter_map
          (fun (a, b, r) ->
            if a = b then None else Some (a, b, float_of_int r /. 10.0))
          edges
      in
      let c = Ctmc.make ~n_states:n ~transitions in
      let d = Transient.distribution c ~init:[ (0, 1.0) ] ~t in
      let total = Array.fold_left ( +. ) 0.0 d in
      Float.abs (total -. 1.0) < 1e-8 && Array.for_all (fun x -> x >= -1e-12) d)

let prop_reach_monotone_in_t =
  let gen =
    QCheck.make
      QCheck.Gen.(
        let* n = 2 -- 5 in
        let* edges = list_size (1 -- 8) (triple (0 -- (n - 1)) (0 -- (n - 1)) (1 -- 30)) in
        return (n, edges))
  in
  QCheck.Test.make ~name:"reach probability monotone in horizon" ~count:100 gen
    (fun (n, edges) ->
      let transitions =
        List.filter_map
          (fun (a, b, r) ->
            if a = b then None else Some (a, b, float_of_int r /. 10.0))
          edges
      in
      let c = Ctmc.make ~n_states:n ~transitions in
      let reach t =
        Transient.reach_within c ~init:[ (0, 1.0) ] ~target:(fun s -> s = n - 1) ~t
      in
      let p1 = reach 1.0 and p2 = reach 2.0 and p5 = reach 5.0 in
      p1 <= p2 +. 1e-9 && p2 <= p5 +. 1e-9)

(* The CSR kernels against the retained pre-CSR implementation. *)

let random_chain_gen =
  QCheck.make
    QCheck.Gen.(
      let* n = 2 -- 7 in
      let* edges =
        list_size (1 -- 20) (triple (0 -- (n - 1)) (0 -- (n - 1)) (1 -- 50))
      in
      let* t = 0 -- 40 in
      return (n, edges, float_of_int t /. 4.0))

let transitions_of_edges edges =
  List.filter_map
    (fun (a, b, r) ->
      if a = b then None else Some (a, b, float_of_int r /. 10.0))
    edges

let prop_csr_matches_reference =
  (* One workspace shared across all cases: also exercises buffer growth and
     reuse over chains of different sizes. *)
  let ws = Transient.workspace () in
  QCheck.Test.make ~name:"CSR distribution matches reference impl" ~count:300
    random_chain_gen (fun (n, edges, t) ->
      let transitions = transitions_of_edges edges in
      let c = Ctmc.make ~n_states:n ~transitions in
      let r = Reference.make ~n_states:n ~transitions in
      let init = [ (0, 0.75); (n - 1, 0.25) ] in
      let d_csr = Transient.distribution ~workspace:ws c ~init ~t in
      let d_ref = Reference.distribution r ~init ~t in
      let max_diff = ref 0.0 in
      Array.iteri
        (fun i x ->
          let d = Float.abs (x -. d_ref.(i)) in
          if d > !max_diff then max_diff := d)
        d_csr;
      !max_diff <= 1e-12)

let prop_restrict_absorbing_pure =
  QCheck.Test.make ~name:"restrict_absorbing leaves the parent intact"
    ~count:200 random_chain_gen (fun (n, edges, _) ->
      let transitions = transitions_of_edges edges in
      let c = Ctmc.make ~n_states:n ~transitions in
      let before = Array.init n (Ctmc.outgoing c) in
      let exits_before = Array.init n (Ctmc.exit_rate c) in
      let restricted = Ctmc.restrict_absorbing c (fun s -> s mod 2 = 0) in
      let after = Array.init n (Ctmc.outgoing c) in
      let exits_after = Array.init n (Ctmc.exit_rate c) in
      before = after && exits_before = exits_after
      && Array.for_all
           (fun s ->
             if s mod 2 = 0 then
               Ctmc.outgoing restricted s = [||]
               && Ctmc.exit_rate restricted s = 0.0
             else
               Ctmc.outgoing restricted s = before.(s)
               && Ctmc.exit_rate restricted s = exits_before.(s))
           (Array.init n Fun.id))

let test_merge_order_matches_reference () =
  (* Three parallel edges whose rates do not sum associatively: the merged
     rate must match the historical accumulation order bit-for-bit. *)
  let rates = [ 1.0; 1e-16; 1e-16 ] in
  let transitions = List.map (fun r -> (0, 1, r)) rates @ [ (0, 2, 0.5) ] in
  let c = Ctmc.make ~n_states:3 ~transitions in
  let r = Reference.make ~n_states:3 ~transitions in
  let pi = [| 1.0; 0.0; 0.0 |] in
  let q = Ctmc.max_exit_rate c in
  Alcotest.(check (float 0.0)) "q" (Reference.max_exit_rate r) q;
  let out_c = Array.make 3 0.0 and out_r = Array.make 3 0.0 in
  Transient.dtmc_step c q pi out_c;
  Reference.dtmc_step r q pi out_r;
  Array.iteri
    (fun i x -> Alcotest.(check (float 0.0)) "step mass" x out_c.(i))
    out_r

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "ctmc"
    [
      ( "construction",
        [
          Alcotest.test_case "self loop" `Quick test_make_rejects_self_loop;
          Alcotest.test_case "bad rate" `Quick test_make_rejects_bad_rate;
          Alcotest.test_case "out of range" `Quick test_make_rejects_out_of_range;
          Alcotest.test_case "merge parallel" `Quick test_make_merges_parallel;
          Alcotest.test_case "merge order = reference" `Quick
            test_merge_order_matches_reference;
          Alcotest.test_case "exit rates" `Quick test_exit_and_max_rate;
          Alcotest.test_case "absorbing" `Quick test_restrict_absorbing;
          Alcotest.test_case "embedded dtmc" `Quick test_embedded_dtmc;
        ] );
      ( "poisson",
        [
          Alcotest.test_case "matches pmf" `Quick test_poisson_matches_pmf;
          Alcotest.test_case "sums to one" `Quick test_poisson_weights_sum_to_one;
          Alcotest.test_case "zero mean" `Quick test_poisson_zero_mean;
          Alcotest.test_case "covers mass" `Quick test_poisson_covers_mass;
          Alcotest.test_case "mode in window" `Quick test_poisson_mode_in_window;
          Alcotest.test_case "rejects negative" `Quick test_poisson_rejects_negative;
        ] );
      ( "transient",
        [
          Alcotest.test_case "exponential" `Quick test_transient_single_exponential;
          Alcotest.test_case "birth-death" `Quick test_transient_birth_death;
          Alcotest.test_case "erlang-2" `Quick test_transient_erlang_2;
          Alcotest.test_case "reach vs occupancy" `Quick test_reach_counts_transient_visits;
          Alcotest.test_case "t = 0" `Quick test_reach_at_time_zero;
          Alcotest.test_case "init validation" `Quick test_transient_substochastic_init_rejected;
          Alcotest.test_case "stiff chain" `Quick test_transient_large_qt;
          Alcotest.test_case "mean absorption (erlang)" `Quick test_expected_time_to_absorption;
          Alcotest.test_case "mean absorption (branching)" `Quick test_expected_time_with_branching;
        ]
        @ qc
            [
              prop_distribution_sums_to_one;
              prop_reach_monotone_in_t;
              prop_csr_matches_reference;
              prop_restrict_absorbing_pure;
            ] );
      ( "steady state",
        [
          Alcotest.test_case "birth-death" `Quick test_steady_state_birth_death;
          Alcotest.test_case "unavailability" `Quick test_steady_state_unavailability;
          Alcotest.test_case "cycle" `Quick test_steady_state_cycle;
          Alcotest.test_case "occupancy total" `Quick test_occupancy_sums_to_horizon;
          Alcotest.test_case "occupancy closed form" `Quick test_occupancy_closed_form;
          Alcotest.test_case "occupancy absorbing" `Quick test_occupancy_absorbing;
        ] );
    ]

(* Tests for the utility library: vectors, RNG, compensated sums, sorted
   integer sets, histograms, tables. *)

open Sdft_util

let check_float = Alcotest.(check (float 1e-12))

(* Vec *)

let test_vec_push_get () =
  let v = Vec.create () in
  Alcotest.(check bool) "fresh is empty" true (Vec.is_empty v);
  for i = 0 to 99 do
    Vec.push v (i * i)
  done;
  Alcotest.(check int) "length" 100 (Vec.length v);
  Alcotest.(check int) "get 7" 49 (Vec.get v 7);
  Alcotest.(check int) "get 99" 9801 (Vec.get v 99)

let test_vec_pop () =
  let v = Vec.of_list [ 1; 2; 3 ] in
  Alcotest.(check (option int)) "pop 3" (Some 3) (Vec.pop v);
  Alcotest.(check (option int)) "pop 2" (Some 2) (Vec.pop v);
  Alcotest.(check int) "length after pops" 1 (Vec.length v);
  Alcotest.(check (option int)) "pop 1" (Some 1) (Vec.pop v);
  Alcotest.(check (option int)) "pop empty" None (Vec.pop v)

let test_vec_set_out_of_bounds () =
  let v = Vec.of_list [ 1 ] in
  Alcotest.check_raises "set out of bounds"
    (Invalid_argument "Vec.set: index out of bounds") (fun () -> Vec.set v 1 0);
  Alcotest.check_raises "get out of bounds"
    (Invalid_argument "Vec.get: index out of bounds") (fun () ->
      ignore (Vec.get v (-1)))

let test_vec_iter_fold () =
  let v = Vec.of_list [ 1; 2; 3; 4 ] in
  let sum = Vec.fold_left ( + ) 0 v in
  Alcotest.(check int) "fold" 10 sum;
  let seen = ref [] in
  Vec.iteri (fun i x -> seen := (i, x) :: !seen) v;
  Alcotest.(check (list (pair int int)))
    "iteri order"
    [ (0, 1); (1, 2); (2, 3); (3, 4) ]
    (List.rev !seen)

let test_vec_clear_reuse () =
  let v = Vec.of_list [ 1; 2 ] in
  Vec.clear v;
  Alcotest.(check int) "cleared" 0 (Vec.length v);
  Vec.push v 9;
  Alcotest.(check int) "reused" 9 (Vec.get v 0)

let test_vec_sort () =
  let v = Vec.of_list [ 3; 1; 2 ] in
  Vec.sort compare v;
  Alcotest.(check (list int)) "sorted" [ 1; 2; 3 ] (Vec.to_list v)

(* Rng *)

let test_rng_deterministic () =
  let a = Rng.create 123 and b = Rng.create 123 in
  for _ = 1 to 50 do
    Alcotest.(check int) "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_float_range () =
  let rng = Rng.create 7 in
  for _ = 1 to 1000 do
    let f = Rng.float rng in
    if f < 0.0 || f >= 1.0 then Alcotest.failf "float out of range: %f" f
  done

let test_rng_int_range () =
  let rng = Rng.create 9 in
  for _ = 1 to 1000 do
    let i = Rng.int rng 17 in
    if i < 0 || i >= 17 then Alcotest.failf "int out of range: %d" i
  done

let test_rng_int_bad_bound () =
  let rng = Rng.create 1 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_rng_exponential_mean () =
  let rng = Rng.create 4 in
  let n = 50_000 in
  let rate = 2.5 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential rng rate
  done;
  let mean = !sum /. float_of_int n in
  (* mean of Exp(2.5) is 0.4; tolerance ~4 sigma *)
  Alcotest.(check bool) "mean close to 1/rate" true (Float.abs (mean -. 0.4) < 0.01)

let test_rng_split_independent () =
  let rng = Rng.create 5 in
  let child = Rng.split rng in
  let a = Rng.int64 rng and b = Rng.int64 child in
  Alcotest.(check bool) "streams differ" true (a <> b)

let test_rng_normal_moments () =
  let rng = Rng.create 11 in
  let n = 50_000 in
  let sum = ref 0.0 and sq = ref 0.0 in
  for _ = 1 to n do
    let z = Rng.normal rng in
    sum := !sum +. z;
    sq := !sq +. (z *. z)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sq /. float_of_int n) -. (mean *. mean) in
  Alcotest.(check bool) "mean ~ 0" true (Float.abs mean < 0.02);
  Alcotest.(check bool) "variance ~ 1" true (Float.abs (var -. 1.0) < 0.03)

let test_rng_lognormal_median () =
  let rng = Rng.create 12 in
  let n = 20_001 in
  let samples =
    Array.init n (fun _ -> Rng.lognormal rng ~median:3e-3 ~error_factor:5.0)
  in
  Array.sort compare samples;
  let median = samples.(n / 2) in
  Alcotest.(check bool) "median ~ 3e-3" true
    (Float.abs (median -. 3e-3) < 3e-4);
  (* ~95% of samples below EF * median. *)
  let below = Array.fold_left (fun acc x -> if x < 15e-3 then acc + 1 else acc) 0 samples in
  let frac = float_of_int below /. float_of_int n in
  Alcotest.(check bool) "EF is the 95th percentile" true (Float.abs (frac -. 0.95) < 0.01)

let test_rng_lognormal_validation () =
  let rng = Rng.create 1 in
  Alcotest.check_raises "bad median"
    (Invalid_argument "Rng.lognormal: median must be positive") (fun () ->
      ignore (Rng.lognormal rng ~median:0.0 ~error_factor:2.0));
  Alcotest.check_raises "bad EF"
    (Invalid_argument "Rng.lognormal: error factor must be at least 1") (fun () ->
      ignore (Rng.lognormal rng ~median:0.1 ~error_factor:0.5))

let test_rng_shuffle_permutation () =
  let rng = Rng.create 6 in
  let a = Array.init 20 Fun.id in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 20 Fun.id) sorted

(* Kahan *)

let test_kahan_simple () =
  check_float "sum" 6.0 (Kahan.sum [| 1.0; 2.0; 3.0 |])

let test_kahan_compensation () =
  (* Adding 1e-16 ten million times to 1.0: naive summation loses it all. *)
  let k = Kahan.create () in
  Kahan.add k 1.0;
  for _ = 1 to 10_000_000 do
    Kahan.add k 1e-16
  done;
  let expected = 1.0 +. 1e-9 in
  Alcotest.(check bool)
    "compensated sum keeps small terms" true
    (Float.abs (Kahan.total k -. expected) < 1e-12)

let test_kahan_list () =
  check_float "sum_list" 1.0 (Kahan.sum_list [ 0.25; 0.25; 0.5 ])

(* Int_set *)

let iset = Alcotest.testable Int_set.pp Int_set.equal

let test_int_set_of_array_dedup () =
  Alcotest.check iset "dedup + sort"
    (Int_set.of_list [ 1; 2; 3 ])
    (Int_set.of_array [| 3; 1; 2; 3; 1 |])

let test_int_set_mem () =
  let s = Int_set.of_list [ 2; 5; 9; 40 ] in
  Alcotest.(check bool) "mem 5" true (Int_set.mem 5 s);
  Alcotest.(check bool) "mem 40" true (Int_set.mem 40 s);
  Alcotest.(check bool) "mem 3" false (Int_set.mem 3 s);
  Alcotest.(check bool) "mem empty" false (Int_set.mem 3 Int_set.empty)

let test_int_set_ops () =
  let a = Int_set.of_list [ 1; 3; 5 ] and b = Int_set.of_list [ 3; 4; 5; 6 ] in
  Alcotest.check iset "union" (Int_set.of_list [ 1; 3; 4; 5; 6 ]) (Int_set.union a b);
  Alcotest.check iset "inter" (Int_set.of_list [ 3; 5 ]) (Int_set.inter a b);
  Alcotest.check iset "diff" (Int_set.of_list [ 1 ]) (Int_set.diff a b);
  Alcotest.check iset "diff rev" (Int_set.of_list [ 4; 6 ]) (Int_set.diff b a)

let test_int_set_subset () =
  let a = Int_set.of_list [ 1; 3 ] and b = Int_set.of_list [ 1; 2; 3 ] in
  Alcotest.(check bool) "a subset b" true (Int_set.subset a b);
  Alcotest.(check bool) "b not subset a" false (Int_set.subset b a);
  Alcotest.(check bool) "empty subset" true (Int_set.subset Int_set.empty a);
  Alcotest.(check bool) "self subset" true (Int_set.subset a a)

let test_int_set_compare_by_cardinality () =
  let small = Int_set.of_list [ 9 ] and big = Int_set.of_list [ 1; 2 ] in
  Alcotest.(check bool) "smaller first" true (Int_set.compare small big < 0)

(* qcheck properties for Int_set against the stdlib Set. *)

module IS = Set.Make (Int)

let to_stdlib s = IS.of_list (Int_set.to_list s)

let small_list = QCheck.(list_of_size Gen.(0 -- 12) (int_bound 30))

let prop_union =
  QCheck.Test.make ~name:"Int_set.union agrees with Set.union" ~count:500
    (QCheck.pair small_list small_list) (fun (a, b) ->
      let sa = Int_set.of_list a and sb = Int_set.of_list b in
      IS.equal (to_stdlib (Int_set.union sa sb)) (IS.union (to_stdlib sa) (to_stdlib sb)))

let prop_inter =
  QCheck.Test.make ~name:"Int_set.inter agrees with Set.inter" ~count:500
    (QCheck.pair small_list small_list) (fun (a, b) ->
      let sa = Int_set.of_list a and sb = Int_set.of_list b in
      IS.equal (to_stdlib (Int_set.inter sa sb)) (IS.inter (to_stdlib sa) (to_stdlib sb)))

let prop_diff =
  QCheck.Test.make ~name:"Int_set.diff agrees with Set.diff" ~count:500
    (QCheck.pair small_list small_list) (fun (a, b) ->
      let sa = Int_set.of_list a and sb = Int_set.of_list b in
      IS.equal (to_stdlib (Int_set.diff sa sb)) (IS.diff (to_stdlib sa) (to_stdlib sb)))

let prop_subset =
  QCheck.Test.make ~name:"Int_set.subset agrees with Set.subset" ~count:500
    (QCheck.pair small_list small_list) (fun (a, b) ->
      let sa = Int_set.of_list a and sb = Int_set.of_list b in
      Int_set.subset sa sb = IS.subset (to_stdlib sa) (to_stdlib sb))

let prop_mem =
  QCheck.Test.make ~name:"Int_set.mem agrees with Set.mem" ~count:500
    (QCheck.pair (QCheck.int_bound 30) small_list) (fun (x, l) ->
      Int_set.mem x (Int_set.of_list l) = IS.mem x (IS.of_list l))

(* Histogram *)

let test_histogram_counts () =
  let h = Histogram.create () in
  List.iter (Histogram.observe h) [ 0; 1; 1; 2; 2; 2; 5 ];
  Alcotest.(check int) "count 0" 1 (Histogram.count h 0);
  Alcotest.(check int) "count 1" 2 (Histogram.count h 1);
  Alcotest.(check int) "count 2" 3 (Histogram.count h 2);
  Alcotest.(check int) "count 3" 0 (Histogram.count h 3);
  Alcotest.(check int) "count 5" 1 (Histogram.count h 5);
  Alcotest.(check int) "total" 7 (Histogram.total h);
  Alcotest.(check int) "max bucket" 5 (Histogram.max_bucket h)

let test_histogram_mean () =
  let h = Histogram.create () in
  List.iter (Histogram.observe h) [ 1; 2; 3 ];
  check_float "mean" 2.0 (Histogram.mean h);
  let empty = Histogram.create () in
  check_float "empty mean" 0.0 (Histogram.mean empty)

let test_histogram_negative () =
  let h = Histogram.create () in
  Alcotest.check_raises "negative bucket"
    (Invalid_argument "Histogram.observe: negative bucket") (fun () ->
      Histogram.observe h (-1))

(* Table *)

let test_table_renders () =
  let t = Table.create ~title:"demo" ~columns:[ "a"; "bbbb" ] in
  Table.add_row t [ "1"; "2" ];
  Table.add_row t [ "333"; "4" ];
  let s = Table.to_string t in
  Alcotest.(check bool) "title present" true
    (String.length s > 0 && String.sub s 0 7 = "== demo");
  Alcotest.(check bool) "row present" true
    (String.length (String.concat "" (String.split_on_char '3' s)) < String.length s)

let test_table_cells () =
  Alcotest.(check string) "sci" "4.090e-09" (Table.cell_sci 4.09e-9);
  Alcotest.(check string) "float" "3.14" (Table.cell_float 3.14159);
  Alcotest.(check string) "duration short" "7.9s" (Table.cell_duration 7.9);
  Alcotest.(check string) "duration long" "1m 53s" (Table.cell_duration 113.0)

let test_int_set_remove () =
  let s = Int_set.of_list [ 1; 3; 5 ] in
  Alcotest.check iset "remove middle" (Int_set.of_list [ 1; 5 ]) (Int_set.remove 3 s);
  Alcotest.check iset "remove first" (Int_set.of_list [ 3; 5 ]) (Int_set.remove 1 s);
  Alcotest.check iset "remove last" (Int_set.of_list [ 1; 3 ]) (Int_set.remove 5 s);
  Alcotest.check iset "remove absent" s (Int_set.remove 4 s);
  Alcotest.check iset "remove to empty" Int_set.empty
    (Int_set.remove 7 (Int_set.singleton 7));
  Alcotest.check iset "remove from empty" Int_set.empty (Int_set.remove 7 Int_set.empty)

let prop_remove =
  QCheck.Test.make ~name:"Int_set.remove agrees with Set.remove" ~count:500
    (QCheck.pair (QCheck.int_bound 30) small_list) (fun (x, l) ->
      let s = Int_set.of_list l in
      IS.equal (to_stdlib (Int_set.remove x s)) (IS.remove x (to_stdlib s)))

(* Timer *)

let test_timer_monotone () =
  let t = Timer.start () in
  let x = ref 0 in
  for i = 1 to 100_000 do
    x := !x + i
  done;
  Alcotest.(check bool) "elapsed non-negative" true (Timer.elapsed_s t >= 0.0)

let dur s = Format.asprintf "%a" Timer.pp_duration s

let test_pp_duration_boundaries () =
  Alcotest.(check string) "short" "7.9s" (dur 7.9);
  Alcotest.(check string) "long" "1m 53s" (dur 113.0);
  Alcotest.(check string) "exact minute" "1m 0s" (dur 60.0);
  (* 119.96 used to print as "1m 60s": minutes truncated, seconds rounded
     independently. *)
  Alcotest.(check string) "rounds to next minute" "2m 0s" (dur 119.96);
  Alcotest.(check string) "rounds within minute" "1m 59s" (dur 119.4);
  Alcotest.(check string) "rounds up across 60s" "1m 0s" (dur 59.97);
  Alcotest.(check string) "stays below 60s" "59.9s" (dur 59.94)

(* Metrics *)

let test_metrics_counter () =
  let c = Metrics.counter "test.counter" in
  Alcotest.(check int) "fresh" 0 (Metrics.counter_value c);
  Metrics.incr c;
  Metrics.add c 41;
  Alcotest.(check int) "42" 42 (Metrics.counter_value c);
  (* Registration is idempotent: same name, same instrument. *)
  Metrics.incr (Metrics.counter "test.counter");
  Alcotest.(check int) "shared" 43 (Metrics.counter_value c)

let test_metrics_gauge_span () =
  let g = Metrics.gauge "test.gauge" in
  Metrics.set g 2.5;
  Metrics.set g 1.5;
  check_float "gauge last write" 1.5 (Metrics.gauge_value g);
  let s = Metrics.span "test.span" in
  Metrics.record s 0.25;
  Metrics.record s 0.5;
  check_float "span total" 0.75 (Metrics.span_seconds s);
  Alcotest.(check int) "span count" 2 (Metrics.span_count s);
  let v = Metrics.time s (fun () -> 7) in
  Alcotest.(check int) "time result" 7 v;
  Alcotest.(check int) "time recorded" 3 (Metrics.span_count s);
  (* The duration is recorded even when the timed function raises. *)
  Alcotest.check_raises "raise passes through" Exit (fun () ->
      Metrics.time s (fun () -> raise Exit));
  Alcotest.(check int) "raise recorded" 4 (Metrics.span_count s)

let test_metrics_snapshot_json_reset () =
  Metrics.reset ();
  let c = Metrics.counter "test.snap_counter" in
  Metrics.add c 5;
  let s = Metrics.span "test.snap_span" in
  Metrics.record s 1.5;
  let snap = Metrics.snapshot () in
  Alcotest.(check (option int))
    "counter in snapshot" (Some 5)
    (List.assoc_opt "test.snap_counter" snap.Metrics.counters);
  Alcotest.(check bool)
    "span in snapshot" true
    (List.assoc_opt "test.snap_span" snap.Metrics.spans = Some (1.5, 1));
  let names = List.map fst snap.Metrics.counters in
  Alcotest.(check (list string)) "sorted" (List.sort compare names) names;
  let json = Metrics.to_json () in
  let contains needle =
    let n = String.length needle and h = String.length json in
    let rec loop i = i + n <= h && (String.sub json i n = needle || loop (i + 1)) in
    loop 0
  in
  Alcotest.(check bool) "json counters" true (contains "\"counters\"");
  Alcotest.(check bool) "json counter entry" true (contains "\"test.snap_counter\": 5");
  Alcotest.(check bool) "json span fields" true (contains "\"count\": 1");
  Metrics.reset ();
  Alcotest.(check int) "reset zeroes" 0 (Metrics.counter_value c);
  Alcotest.(check int) "reset keeps handle" 0 (Metrics.span_count s)

let test_metrics_concurrent () =
  let c = Metrics.counter "test.concurrent_counter" in
  let s = Metrics.span "test.concurrent_span" in
  let before_c = Metrics.counter_value c in
  let before_total = Metrics.span_seconds s in
  let before_n = Metrics.span_count s in
  let per_domain = 10_000 in
  let worker () =
    for _ = 1 to per_domain do
      Metrics.incr c;
      Metrics.record s 0.001
    done
  in
  let domains = Array.init 3 (fun _ -> Domain.spawn worker) in
  worker ();
  Array.iter Domain.join domains;
  Alcotest.(check int) "no lost increments" (before_c + (4 * per_domain))
    (Metrics.counter_value c);
  Alcotest.(check int) "no lost records" (before_n + (4 * per_domain))
    (Metrics.span_count s);
  Alcotest.(check bool) "no lost float mass" true
    (Float.abs (Metrics.span_seconds s -. before_total -. (0.001 *. float_of_int (4 * per_domain)))
     < 1e-6)

(* Trace *)

let with_tracing f =
  Trace.reset ();
  Trace.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Trace.set_enabled false;
      Trace.reset ())
    f

let test_trace_disabled_noop () =
  Trace.reset ();
  Alcotest.(check bool) "disabled by default" false (Trace.enabled ());
  let v = Trace.with_span "t.off" (fun () -> 41 + 1) in
  Alcotest.(check int) "value passes through" 42 v;
  Trace.add_attr "k" (Trace.Int 1);
  Trace.instant "t.off_instant";
  Alcotest.(check int) "nothing recorded" 0 (List.length (Trace.snapshot ()))

let test_trace_spans_nesting () =
  with_tracing (fun () ->
      let v =
        Trace.with_span "t.outer" (fun () ->
            Trace.add_attr "n" (Trace.Int 7);
            Trace.with_span "t.inner" ~attrs:[ ("ok", Trace.Bool true) ]
              (fun () -> Trace.instant "t.tick");
            3)
      in
      Alcotest.(check int) "result" 3 v;
      (* A span that raises is still recorded. *)
      Alcotest.check_raises "raise passes through" Exit (fun () ->
          Trace.with_span "t.raises" (fun () -> raise Exit));
      let events = Trace.snapshot () in
      Alcotest.(check int) "event count" 4 (List.length events);
      let find name =
        List.find (fun e -> e.Trace.ev_name = name) events
      in
      Alcotest.(check int) "outer depth" 0 (find "t.outer").Trace.ev_depth;
      Alcotest.(check int) "inner depth" 1 (find "t.inner").Trace.ev_depth;
      Alcotest.(check int) "instant depth" 2 (find "t.tick").Trace.ev_depth;
      Alcotest.(check bool) "instant kind" true
        ((find "t.tick").Trace.ev_kind = Trace.Instant);
      Alcotest.(check bool) "outer attr recorded" true
        (List.mem_assoc "n" (find "t.outer").Trace.ev_attrs);
      Alcotest.(check bool) "inner attrs recorded" true
        (List.mem_assoc "ok" (find "t.inner").Trace.ev_attrs);
      Alcotest.(check bool) "nesting: inner within outer" true
        (let o = find "t.outer" and i = find "t.inner" in
         i.Trace.ev_start >= o.Trace.ev_start
         && i.Trace.ev_start +. i.Trace.ev_dur
            <= o.Trace.ev_start +. o.Trace.ev_dur +. 1e-6);
      let agg = Trace.aggregate () in
      Alcotest.(check (option int)) "aggregate count" (Some 1)
        (Option.map (fun (c, _) -> c) (List.assoc_opt "t.inner" agg)))

let test_trace_multi_domain () =
  with_tracing (fun () ->
      let per_item = 25 in
      let work = Array.init (4 * per_item) Fun.id in
      let results =
        Parallel.map_init ~domains:4
          (fun () -> ())
          (fun () x ->
            Trace.with_span "t.work"
              ~attrs:[ ("item", Trace.Int x) ]
              (fun () ->
                Trace.instant "t.item";
                x * 2))
          work
      in
      Alcotest.(check (array int))
        "results correct" (Array.map (fun x -> x * 2) work) results;
      (* Worker domains are dead by now; their buffers must still be in the
         merged snapshot — one span and one instant per item, no losses. *)
      let events = Trace.snapshot () in
      let count name =
        List.length (List.filter (fun e -> e.Trace.ev_name = name) events)
      in
      Alcotest.(check int) "all spans survive the join" (4 * per_item)
        (count "t.work");
      Alcotest.(check int) "all instants survive the join" (4 * per_item)
        (count "t.item");
      let agg = Trace.aggregate () in
      Alcotest.(check (option int)) "aggregate sees every span"
        (Some (4 * per_item))
        (Option.map (fun (c, _) -> c) (List.assoc_opt "t.work" agg)))

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec loop i = i + n <= h && (String.sub hay i n = needle || loop (i + 1)) in
  loop 0

let test_trace_json_escaping () =
  with_tracing (fun () ->
      Trace.with_span "t.\"quoted\"\\back"
        ~attrs:
          [
            ("ctrl", Trace.Str "a\nb\tc\rd\x01e");
            ("inf", Trace.Float infinity);
          ]
        (fun () -> ());
      let jsonl = Trace.to_jsonl () in
      Alcotest.(check bool) "quote escaped" true
        (contains ~needle:{|t.\"quoted\"\\back|} jsonl);
      Alcotest.(check bool) "newline/tab/cr escaped" true
        (contains ~needle:{|a\nb\tc\rd\u0001e|} jsonl);
      Alcotest.(check bool) "non-finite floats become null" true
        (contains ~needle:{|"inf": null|} jsonl);
      Alcotest.(check bool) "no raw control chars" true
        (String.for_all (fun c -> c = '\n' || c >= ' ') jsonl);
      let chrome = Trace.to_chrome () in
      Alcotest.(check bool) "chrome is an array" true
        (String.length chrome > 0 && chrome.[0] = '[');
      Alcotest.(check bool) "chrome complete events" true
        (contains ~needle:{|"ph": "X"|} chrome);
      Alcotest.(check bool) "chrome escapes too" true
        (contains ~needle:{|t.\"quoted\"\\back|} chrome))

let test_metrics_json_escaping () =
  Metrics.reset ();
  let c = Metrics.counter "test.\"esc\"\nname" in
  Metrics.add c 3;
  let json = Metrics.to_json () in
  Alcotest.(check bool) "metrics name escaped" true
    (contains ~needle:{|test.\"esc\"\nname|} json);
  Alcotest.(check bool) "no raw control chars" true
    (String.for_all (fun ch -> ch = '\n' || ch >= ' ') json);
  Metrics.reset ()

(* Parallel *)

let test_parallel_map_matches_sequential () =
  let work = Array.init 100 Fun.id in
  let f x = (x * x) + 1 in
  Alcotest.(check (array int))
    "domains=4 matches map" (Array.map f work)
    (Parallel.map ~domains:4 f work);
  Alcotest.(check (array int))
    "domains=1 matches map" (Array.map f work)
    (Parallel.map ~domains:1 f work);
  Alcotest.(check (array int)) "empty" [||] (Parallel.map ~domains:4 f [||])

let test_parallel_map_init () =
  (* Each domain gets its own scratch buffer; results must not depend on
     which domain claimed which item. *)
  let work = Array.init 50 Fun.id in
  let init () = Buffer.create 8 in
  let f buf x =
    Buffer.clear buf;
    Buffer.add_string buf (string_of_int (x * 2));
    Buffer.contents buf
  in
  Alcotest.(check (array string))
    "per-domain state" (Array.map (fun x -> string_of_int (x * 2)) work)
    (Parallel.map_init ~domains:4 init f work)

let test_parallel_worker_exception () =
  (* The original exception must surface — not Invalid_argument from
     collecting unfilled result slots. *)
  let work = Array.init 64 Fun.id in
  let f x = if x = 37 then failwith "boom" else x in
  Alcotest.check_raises "original exception" (Failure "boom") (fun () ->
      ignore (Parallel.map ~domains:4 f work));
  Alcotest.check_raises "sequential path too" (Failure "boom") (fun () ->
      ignore (Parallel.map ~domains:1 f work))

let test_parallel_init_exception () =
  let work = Array.init 8 Fun.id in
  Alcotest.check_raises "init failure surfaces" (Failure "bad init") (fun () ->
      ignore (Parallel.map_init ~domains:4 (fun () -> failwith "bad init") (fun () x -> x) work))

(* Backoff *)

let test_backoff_deterministic () =
  let delays b = List.init 10 (fun _ -> Backoff.next b) in
  let a = delays (Backoff.create ~seed:7 ()) in
  let b = delays (Backoff.create ~seed:7 ()) in
  Alcotest.(check (list (float 0.0))) "same seed, same schedule" a b;
  let c = delays (Backoff.create ~seed:8 ()) in
  Alcotest.(check bool) "different seed differs somewhere" true (a <> c)

let test_backoff_delay_for_matches_next () =
  let stateful = Backoff.create ~seed:3 () in
  let pure = Backoff.create ~seed:3 () in
  for k = 1 to 12 do
    let d = Backoff.next stateful in
    Alcotest.(check (float 0.0))
      (Printf.sprintf "attempt %d" k)
      d (Backoff.delay_for pure k)
  done;
  Alcotest.(check int) "stateful consumed attempts" 12
    (Backoff.attempt stateful);
  Alcotest.(check int) "delay_for left the counter alone" 0
    (Backoff.attempt pure)

let test_backoff_bounds_and_cap () =
  let base = 0.05 and factor = 2.0 and cap = 5.0 and jitter = 0.25 in
  let b = Backoff.create ~base ~factor ~cap ~jitter ~seed:11 () in
  for k = 1 to 30 do
    let ideal = Float.min cap (base *. (factor ** float_of_int (k - 1))) in
    let d = Backoff.delay_for b k in
    Alcotest.(check bool)
      (Printf.sprintf "attempt %d within jitter band" k)
      true
      (d >= ideal *. (1.0 -. jitter) -. 1e-12
      && d <= ideal *. (1.0 +. jitter) +. 1e-12)
  done;
  (* Without jitter the schedule is exactly the capped exponential. *)
  let exact = Backoff.create ~base ~factor ~cap ~jitter:0.0 () in
  Alcotest.(check (float 1e-15)) "first delay is base" base
    (Backoff.delay_for exact 1);
  Alcotest.(check (float 1e-15)) "deep attempts sit on the cap" cap
    (Backoff.delay_for exact 20)

let test_backoff_reset () =
  let b = Backoff.create ~seed:5 () in
  let first = Backoff.next b in
  ignore (Backoff.next b);
  Backoff.reset b;
  Alcotest.(check int) "reset rewinds the counter" 0 (Backoff.attempt b);
  Alcotest.(check (float 0.0)) "schedule restarts identically" first
    (Backoff.next b)

let test_backoff_invalid_args () =
  let invalid name f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s should be rejected" name
  in
  invalid "negative base" (fun () -> Backoff.create ~base:(-1.0) ());
  invalid "factor below one" (fun () -> Backoff.create ~factor:0.5 ());
  invalid "cap below base" (fun () -> Backoff.create ~base:1.0 ~cap:0.5 ());
  invalid "jitter above one" (fun () -> Backoff.create ~jitter:1.5 ());
  invalid "non-finite cap" (fun () -> Backoff.create ~cap:Float.nan ());
  invalid "attempt zero" (fun () ->
      Backoff.delay_for (Backoff.create ()) 0)

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "util"
    [
      ( "vec",
        [
          Alcotest.test_case "push/get" `Quick test_vec_push_get;
          Alcotest.test_case "pop" `Quick test_vec_pop;
          Alcotest.test_case "bounds" `Quick test_vec_set_out_of_bounds;
          Alcotest.test_case "iter/fold" `Quick test_vec_iter_fold;
          Alcotest.test_case "clear/reuse" `Quick test_vec_clear_reuse;
          Alcotest.test_case "sort" `Quick test_vec_sort;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "int range" `Quick test_rng_int_range;
          Alcotest.test_case "bad bound" `Quick test_rng_int_bad_bound;
          Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
          Alcotest.test_case "split" `Quick test_rng_split_independent;
          Alcotest.test_case "shuffle" `Quick test_rng_shuffle_permutation;
          Alcotest.test_case "normal moments" `Slow test_rng_normal_moments;
          Alcotest.test_case "lognormal median" `Slow test_rng_lognormal_median;
          Alcotest.test_case "lognormal validation" `Quick test_rng_lognormal_validation;
        ] );
      ( "kahan",
        [
          Alcotest.test_case "simple" `Quick test_kahan_simple;
          Alcotest.test_case "compensation" `Quick test_kahan_compensation;
          Alcotest.test_case "sum_list" `Quick test_kahan_list;
        ] );
      ( "int_set",
        [
          Alcotest.test_case "of_array dedup" `Quick test_int_set_of_array_dedup;
          Alcotest.test_case "mem" `Quick test_int_set_mem;
          Alcotest.test_case "union/inter/diff" `Quick test_int_set_ops;
          Alcotest.test_case "subset" `Quick test_int_set_subset;
          Alcotest.test_case "compare" `Quick test_int_set_compare_by_cardinality;
          Alcotest.test_case "remove" `Quick test_int_set_remove;
        ]
        @ qc [ prop_union; prop_inter; prop_diff; prop_subset; prop_mem; prop_remove ] );
      ( "histogram",
        [
          Alcotest.test_case "counts" `Quick test_histogram_counts;
          Alcotest.test_case "mean" `Quick test_histogram_mean;
          Alcotest.test_case "negative" `Quick test_histogram_negative;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_renders;
          Alcotest.test_case "cells" `Quick test_table_cells;
        ] );
      ( "timer",
        [
          Alcotest.test_case "monotone" `Quick test_timer_monotone;
          Alcotest.test_case "pp_duration boundaries" `Quick test_pp_duration_boundaries;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counter" `Quick test_metrics_counter;
          Alcotest.test_case "gauge/span" `Quick test_metrics_gauge_span;
          Alcotest.test_case "snapshot/json/reset" `Quick test_metrics_snapshot_json_reset;
          Alcotest.test_case "concurrent updates" `Quick test_metrics_concurrent;
          Alcotest.test_case "json escaping" `Quick test_metrics_json_escaping;
        ] );
      ( "trace",
        [
          Alcotest.test_case "disabled no-op" `Quick test_trace_disabled_noop;
          Alcotest.test_case "spans/nesting/attrs" `Quick test_trace_spans_nesting;
          Alcotest.test_case "multi-domain merge" `Quick test_trace_multi_domain;
          Alcotest.test_case "json escaping" `Quick test_trace_json_escaping;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "map matches sequential" `Quick test_parallel_map_matches_sequential;
          Alcotest.test_case "map_init state" `Quick test_parallel_map_init;
          Alcotest.test_case "worker exception" `Quick test_parallel_worker_exception;
          Alcotest.test_case "init exception" `Quick test_parallel_init_exception;
        ] );
      ( "backoff",
        [
          Alcotest.test_case "deterministic schedule" `Quick test_backoff_deterministic;
          Alcotest.test_case "delay_for matches next" `Quick test_backoff_delay_for_matches_next;
          Alcotest.test_case "jitter bounds and cap" `Quick test_backoff_bounds_and_cap;
          Alcotest.test_case "reset" `Quick test_backoff_reset;
          Alcotest.test_case "invalid args" `Quick test_backoff_invalid_args;
        ] );
    ]

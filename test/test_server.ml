(* The resident analysis server, driven in-process through the exact code
   paths the socket daemon uses.

   The load-bearing properties: the NDJSON codec is total under byte
   fuzzing (garbage, mutations and truncated frames reject, never raise);
   eight concurrent clients hammering one shared quantification cache get
   responses bit-identical to a sequential replay of the same request
   lines, with nothing leaking into the process-global default
   metrics/trace/failpoint registries; admission control answers a full
   queue or an exhausted client quota with a structured [retry_after]
   rejection instead of stalling; and an injected fault — a poisoned
   request, a crashing parallel worker, a failing disk append — costs
   exactly its own request (or degrades it in place) while the daemon
   keeps serving and the on-disk store stays uncorrupted. *)

open Sdft_util
module Protocol = Sdft_server.Protocol
module Core = Sdft_server.Server_core

(* ------------------------------------------------------------------ *)
(* Helpers *)

let with_temp_dir f =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "sdft_server_%d_%d" (Unix.getpid ()) (Random.bits ()))
  in
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
        (Sys.readdir dir);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> f dir)

let contains hay needle =
  let rec search i =
    i + String.length needle <= String.length hay
    && (String.sub hay i (String.length needle) = needle || search (i + 1))
  in
  search 0

let parse_json line =
  match Json.parse line with
  | Ok v -> v
  | Error e -> Alcotest.failf "unparseable response %S: %s" line e

let response_ok line =
  match Option.bind (Json.member "ok" (parse_json line)) Json.to_bool with
  | Some b -> b
  | None -> Alcotest.failf "response without an ok field: %s" line

let error_code line =
  match
    Option.bind
      (Json.member "error" (parse_json line))
      (fun e -> Option.bind (Json.member "code" e) Json.to_string)
  with
  | Some c -> c
  | None -> Alcotest.failf "response without an error code: %s" line

let retry_after line =
  Option.bind
    (Json.member "error" (parse_json line))
    (fun e -> Option.bind (Json.member "retry_after" e) Json.to_float)

let result_field line name =
  Option.bind (Json.member "result" (parse_json line)) (Json.member name)

let result_int line name = Option.bind (result_field line name) Json.to_int
let result_bool line name = Option.bind (result_field line name) Json.to_bool

let counter_of snap name =
  match List.assoc_opt name snap.Metrics.counters with Some n -> n | None -> 0

(* Reply mailbox for asynchronous [submit]: the reply closure fills it
   from whichever domain answers; [wait] blocks until it does. *)
let waiter () =
  let m = Mutex.create () and cv = Condition.create () and r = ref None in
  let reply s =
    Mutex.lock m;
    r := Some s;
    Condition.signal cv;
    Mutex.unlock m
  in
  let wait () =
    Mutex.lock m;
    while !r = None do
      Condition.wait cv m
    done;
    let s = Option.get !r in
    Mutex.unlock m;
    s
  in
  (reply, wait)

let stat_int core name =
  let r = Core.call core ~client:"probe" (Protocol.simple_line "stats") in
  match result_int r name with
  | Some n -> n
  | None -> Alcotest.failf "stats response lacks %s: %s" name r

let wait_until ?(timeout = 10.0) what f =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    if f () then ()
    else if Unix.gettimeofday () > deadline then
      Alcotest.failf "timed out waiting for %s" what
    else begin
      Unix.sleepf 0.01;
      go ()
    end
  in
  go ()

(* Model corpus: the two named reference models plus a spread of generated
   static/dynamic trees. *)
let pumps_text = lazy (Sdft_format.to_string (Pumps.sd_tree ()))

let bwr_text =
  lazy
    (Sdft_format.to_string
       (Bwr.build
          {
            Bwr.default_config with
            repair_rate = Some 0.1;
            triggers = Bwr.all_trigger_sites;
          }))

let gen_corpus =
  lazy (Array.init 20 (fun i -> Sdft_format.to_string (Gen_sdft.sd (100 + i))))

(* ------------------------------------------------------------------ *)
(* Codec: total under fuzzing, exact on round-trips *)

let arbitrary_bytes =
  QCheck.make
    ~print:(Printf.sprintf "%S")
    QCheck.Gen.(string_size ~gen:char (int_bound 80))

let qcheck_json_parse_total =
  QCheck.Test.make ~name:"Json.parse is total on byte garbage" ~count:2000
    arbitrary_bytes (fun s ->
      match Json.parse s with Ok _ | Error _ -> true)

(* Bounded-depth JSON values with finite numbers (NaN breaks structural
   equality and non-finite numbers have no JSON spelling by design). *)
let json_value_gen =
  let open QCheck.Gen in
  let finite_float = map (fun f -> if Float.is_finite f then f else 1.5) float in
  let short_string = string_size ~gen:printable (int_bound 10) in
  let scalar =
    oneof
      [
        return Json.Null;
        map (fun b -> Json.Bool b) bool;
        map (fun f -> Json.Number f) finite_float;
        map (fun s -> Json.String s) short_string;
      ]
  in
  sized
  @@ fix (fun self n ->
         if n <= 0 then scalar
         else
           frequency
             [
               (3, scalar);
               ( 1,
                 map
                   (fun vs -> Json.Array vs)
                   (list_size (int_bound 4) (self (n / 2))) );
               ( 1,
                 map
                   (fun fields -> Json.Object fields)
                   (list_size (int_bound 4)
                      (pair short_string (self (n / 2)))) );
             ])

let qcheck_json_roundtrip =
  QCheck.Test.make ~name:"Json writer/parser round-trip is the identity"
    ~count:1000
    (QCheck.make ~print:Json.value_to_string json_value_gen)
    (fun v -> Json.parse (Json.value_to_string v) = Ok v)

let qcheck_request_parse_total =
  QCheck.Test.make ~name:"parse_request is total on byte garbage" ~count:2000
    arbitrary_bytes (fun s ->
      match Protocol.parse_request ~max_bytes:4096 s with
      | Ok _ | Error _ -> true)

let qcheck_mutated_frames =
  QCheck.Test.make ~name:"mutated valid frames never raise" ~count:500
    (QCheck.make QCheck.Gen.(triple (int_bound 19) nat nat))
    (fun (idx, pos, byte) ->
      let line =
        Protocol.analyze_line
          ~id:(Printf.sprintf "m-%d" idx)
          ~engine:"auto"
          ~model:(Lazy.force gen_corpus).(idx)
          ()
      in
      let b = Bytes.of_string line in
      Bytes.set b (pos mod Bytes.length b) (Char.chr (byte mod 256));
      match Protocol.parse_request ~max_bytes:(1 lsl 20) (Bytes.to_string b) with
      | Ok _ | Error _ -> true)

let qcheck_truncated_frames =
  QCheck.Test.make ~name:"every truncated frame is rejected" ~count:500
    (QCheck.make QCheck.Gen.(pair (int_bound 19) nat))
    (fun (idx, cut) ->
      let line =
        Protocol.analyze_line ~id:"t" ~horizon:12.5 ~engine:"zdd"
          ~model:(Lazy.force gen_corpus).(idx)
          ()
      in
      (* A strict prefix of a single JSON object is never valid JSON. *)
      let cut = cut mod String.length line in
      match Protocol.parse_request ~max_bytes:(1 lsl 20) (String.sub line 0 cut)
      with
      | Error _ -> true
      | Ok _ -> false)

let params_of_seed seed =
  let rng = Rng.create seed in
  let engines = [| "mocus"; "mocus-aggressive"; "bdd"; "zdd"; "auto" |] in
  let horizon = 0.5 +. (Rng.float rng *. 100.0) in
  let cutoff = Rng.float rng *. 1e-9 in
  let domains = 1 + Rng.int rng 8 in
  let max_order = 1 + Rng.int rng 5 in
  let engine = engines.(Rng.int rng 5) in
  let verbose = Rng.int rng 2 = 1 in
  (horizon, cutoff, domains, max_order, engine, verbose)

let qcheck_analyze_roundtrip =
  QCheck.Test.make
    ~name:"analyze_line round-trips exactly through parse_request" ~count:300
    Gen_sdft.seed_gen
    (fun seed ->
      let horizon, cutoff, domains, max_order, engine, verbose =
        params_of_seed seed
      in
      let id = Printf.sprintf "rt-%d" seed in
      let fp = "cache.lookup=delay:0.0@nth:1000000" in
      let model = (Lazy.force gen_corpus).(seed mod 20) in
      let line =
        Protocol.analyze_line ~id ~client:"fuzz" ~horizon ~cutoff ~engine
          ~domains ~max_order ~failpoints:fp ~verbose ~model ()
      in
      match Protocol.parse_request ~max_bytes:(1 lsl 20) line with
      | Error _ -> false
      | Ok req -> (
        req.Protocol.id = Json.String id
        && req.Protocol.client = Some "fuzz"
        && req.Protocol.failpoints = Some fp
        &&
        match req.Protocol.op with
        | Protocol.Analyze p ->
          p.Protocol.model_text = model
          && p.Protocol.horizon = horizon
          && p.Protocol.cutoff = cutoff
          && p.Protocol.domains = domains
          && p.Protocol.max_order = Some max_order
          && p.Protocol.verbose = verbose
          && Sdft_analysis.engine_name p.Protocol.engine = engine
        | _ -> false))

let test_codec_rejections () =
  let parse s = Protocol.parse_request ~max_bytes:256 s in
  let code = function
    | Error (_, e) -> Protocol.error_code_name e.Protocol.code
    | Ok _ -> Alcotest.fail "frame unexpectedly accepted"
  in
  Alcotest.(check string) "garbage" "bad_request" (code (parse "{not json"));
  Alcotest.(check string)
    "oversized frame" "bad_request"
    (code (parse ("{\"op\":\"ping\",\"pad\":\"" ^ String.make 300 'x' ^ "\"}")));
  Alcotest.(check string)
    "unknown op" "bad_request"
    (code (parse {|{"id":7,"op":"teapot"}|}));
  Alcotest.(check string)
    "analyze without model" "bad_request"
    (code (parse {|{"op":"analyze"}|}));
  Alcotest.(check string)
    "unknown engine" "bad_request"
    (code (parse {|{"op":"analyze","model":"x","params":{"engine":"gpu"}}|}));
  Alcotest.(check string)
    "type-confused horizon" "bad_request"
    (code (parse {|{"op":"analyze","model":"x","params":{"horizon":"soon"}}|}));
  (* The id survives rejection so the client can correlate the error. *)
  (match parse {|{"id":7,"op":"teapot"}|} with
  | Error (Json.Number n, _) when n = 7.0 -> ()
  | _ -> Alcotest.fail "id not recovered from a rejected frame");
  (* Response builders emit parseable envelopes. *)
  let ok =
    Protocol.ok_response ~id:(Json.String "x") (fun b ->
        Buffer.add_string b "\"pong\":true")
  in
  Alcotest.(check bool) "ok envelope" true (response_ok ok);
  let err =
    Protocol.error_response ~id:Json.Null
      {
        Protocol.code = Protocol.Saturated;
        message = "full";
        retry_after = Some 0.25;
      }
  in
  Alcotest.(check bool) "error envelope" false (response_ok err);
  Alcotest.(check string) "error code on the wire" "saturated" (error_code err);
  Alcotest.(check (option (float 1e-9)))
    "retry_after on the wire" (Some 0.25) (retry_after err)

(* ------------------------------------------------------------------ *)
(* Inline ops and malformed traffic *)

let test_ops_smoke () =
  let core = Core.create () in
  Fun.protect ~finally:(fun () -> Core.shutdown core) @@ fun () ->
  Alcotest.(check string)
    "ping is canonical"
    {|{"id":"p1","ok":true,"result":{"pong":true}}|}
    (Core.call core ~client:"t" (Protocol.simple_line ~id:"p1" "ping"));
  let stats = Core.call core ~client:"t" (Protocol.simple_line "stats") in
  Alcotest.(check (option int)) "stats: workers" (Some 2)
    (result_int stats "workers");
  Alcotest.(check (option int)) "stats: nothing queued" (Some 0)
    (result_int stats "queued");
  let m = Core.call core ~client:"t" (Protocol.simple_line "metrics") in
  (match Option.bind (result_field m "prometheus") Json.to_string with
  | Some text ->
    Alcotest.(check bool)
      "scrape body counts requests" true
      (contains text "sdft_server_requests")
  | None -> Alcotest.failf "metrics op without prometheus body: %s" m);
  (* A malformed line answers bad_request and costs nothing else. *)
  let bad = Core.call core ~client:"t" "{not json" in
  Alcotest.(check bool) "malformed line rejected" false (response_ok bad);
  Alcotest.(check string) "as bad_request" "bad_request" (error_code bad);
  Alcotest.(check bool)
    "daemon unaffected by garbage" true
    (response_ok (Core.call core ~client:"t" (Protocol.simple_line "ping")))

let test_shutdown_semantics () =
  let core = Core.create () in
  let r = Core.call core ~client:"t" (Protocol.simple_line ~id:"s" "shutdown") in
  Alcotest.(check (option bool)) "shutdown acknowledged" (Some true)
    (result_bool r "stopping");
  Alcotest.(check bool) "core reports stopping" true (Core.stopping core);
  let late = Core.call core ~client:"t" (Protocol.simple_line "ping") in
  Alcotest.(check string)
    "post-shutdown requests refused" "shutting_down" (error_code late);
  Core.shutdown core;
  (* Idempotent: a second graceful shutdown is a no-op. *)
  Core.shutdown core

(* ------------------------------------------------------------------ *)
(* Concurrency soak: 8 clients x 50 mixed requests over one shared cache,
   bit-identical to a sequential replay, nothing in default registries *)

(* The soak's request mix: mostly cheap generated trees, frequent repeats
   of the pumps reference model (cache-hit heavy), one BWR request per
   client (cache-miss heavy), engines and horizons cycling, and a sprinkle
   of per-request failpoint specs whose trigger never fires — armed on the
   request's private registry, they must not perturb anything. *)
let soak_lines () =
  let pumps = Lazy.force pumps_text
  and bwr = Lazy.force bwr_text
  and gens = Lazy.force gen_corpus in
  let engines = [| "mocus"; "zdd"; "auto" |] in
  let horizons = [| 8.0; 24.0 |] in
  Array.init 8 (fun c ->
      Array.init 50 (fun j ->
          let model =
            if j = 13 then bwr
            else if j mod 3 = 0 then pumps
            else gens.((c + j) mod 6)
          in
          let failpoints =
            if j mod 7 = 2 then Some "mocus.expand=delay:0.0@nth:1000000"
            else None
          in
          Protocol.analyze_line
            ~id:(Printf.sprintf "c%d-r%d" c j)
            ~client:(Printf.sprintf "client-%d" c)
            ~engine:engines.(j mod 3)
            ~horizon:horizons.(j mod 2)
            ?failpoints ~model ()))

(* The disk tier deliberately publishes its process-level instruments
   ([cache.appends], [cache.load_ms]) on the default registry — they are
   per-cache, not per-request, state. The isolation assertion filters
   exactly those two names; everything else in the default registry must
   stay byte-identical across the soak. *)
let filtered_default_snapshot () =
  let s = Metrics.snapshot () in
  let drop names = List.filter (fun (n, _) -> not (List.mem n names)) in
  {
    s with
    Metrics.counters = drop [ "cache.appends" ] s.Metrics.counters;
    Metrics.gauges = drop [ "cache.load_ms" ] s.Metrics.gauges;
  }

let test_soak_concurrent_vs_sequential () =
  Metrics.reset ();
  Trace.reset ();
  Failpoint.clear_all ();
  with_temp_dir @@ fun dir ->
  let cache = Quant_cache.open_disk (Filename.concat dir "soak.store") in
  let before = filtered_default_snapshot () in
  let config =
    { Core.default_config with workers = 4; queue_capacity = 64 }
  in
  let core = Core.create ~config ~cache () in
  let lines = soak_lines () in
  let clients =
    Array.mapi
      (fun c ls ->
        Domain.spawn (fun () ->
            Array.map
              (Core.call core ~client:(Printf.sprintf "conn-%d" c))
              ls))
      lines
  in
  let concurrent = Array.map Domain.join clients in
  Core.shutdown core;
  Array.iter
    (Array.iter (fun r ->
         if not (response_ok r) then Alcotest.failf "soak request failed: %s" r))
    concurrent;
  Alcotest.(check bool)
    "the shared cache actually served hits" true
    (Quant_cache.hits cache > 0);
  Quant_cache.close cache;
  (* Sequential baseline: a fresh single-worker core over a fresh
     memory-only cache replays the exact same request lines in order. *)
  let base = Core.create ~config:{ config with workers = 1 } () in
  Array.iteri
    (fun c ls ->
      Array.iteri
        (fun j line ->
          let got = Core.call base ~client:"seq" line in
          if got <> concurrent.(c).(j) then
            Alcotest.failf
              "response for c%d-r%d is not bit-identical:\n\
               concurrent: %s\n\
               sequential: %s"
              c j
              concurrent.(c).(j)
              got)
        ls)
    lines;
  Core.shutdown base;
  (* Zero cross-request contamination of the process-global context. *)
  let after = filtered_default_snapshot () in
  if after <> before then
    Alcotest.fail
      "default metrics registry changed across the soak (beyond the \
       disk tier's own cache.appends/cache.load_ms)";
  Alcotest.(check (list string))
    "default trace untouched" []
    (List.map fst (Trace.aggregate ()));
  Alcotest.(check int)
    "default failpoint registry silent: server.handle" 0
    (Failpoint.hit_count "server.handle");
  Alcotest.(check int)
    "default failpoint registry silent: cache.lookup" 0
    (Failpoint.hit_count "cache.lookup");
  Alcotest.(check int)
    "default failpoint registry silent: mocus.expand" 0
    (Failpoint.hit_count "mocus.expand")

(* ------------------------------------------------------------------ *)
(* Admission control: saturation and quota reject with retry_after *)

let test_saturation_retry_after () =
  let config =
    { Core.default_config with workers = 1; queue_capacity = 1 }
  in
  let core = Core.create ~config () in
  Fun.protect ~finally:(fun () -> Core.shutdown core) @@ fun () ->
  let model = Lazy.force pumps_text in
  let slow id =
    Protocol.analyze_line ~id ~failpoints:"server.handle=delay:0.5" ~model ()
  in
  let reply_a, wait_a = waiter () and reply_b, wait_b = waiter () in
  Core.submit core ~client:"a" ~reply:reply_a (slow "slow-a");
  wait_until "the worker to pick up the slow request" (fun () ->
      stat_int core "running" = 1);
  (* Fills the queue; admission is synchronous, so it is queued on return. *)
  Core.submit core ~client:"b" ~reply:reply_b (slow "slow-b");
  Alcotest.(check int) "queue holds one request" 1 (stat_int core "queued");
  let reply_c, wait_c = waiter () in
  Core.submit core ~client:"c" ~reply:reply_c
    (Protocol.analyze_line ~id:"sat-c" ~model ());
  let rc = wait_c () in
  Alcotest.(check bool) "saturated request rejected" false (response_ok rc);
  Alcotest.(check string) "as saturated" "saturated" (error_code rc);
  (match retry_after rc with
  | Some s when s > 0.0 -> ()
  | _ -> Alcotest.failf "saturation reject without retry_after: %s" rc);
  (* The rejection stalled nothing: both admitted requests complete. *)
  Alcotest.(check bool) "first request served" true (response_ok (wait_a ()));
  Alcotest.(check bool) "queued request served" true (response_ok (wait_b ()));
  let snap = Metrics.snapshot_in (Core.metrics core) in
  Alcotest.(check int) "one saturation reject counted" 1
    (counter_of snap "server.rejected_saturated")

let test_client_quota () =
  let config =
    {
      Core.default_config with
      workers = 1;
      queue_capacity = 8;
      client_quota = 2;
    }
  in
  let core = Core.create ~config () in
  Fun.protect ~finally:(fun () -> Core.shutdown core) @@ fun () ->
  let model = Lazy.force pumps_text in
  let slow id =
    Protocol.analyze_line ~id ~failpoints:"server.handle=delay:0.4" ~model ()
  in
  let r1, w1 = waiter () and r2, w2 = waiter () in
  Core.submit core ~client:"greedy" ~reply:r1 (slow "g1");
  wait_until "the greedy client's first request to run" (fun () ->
      stat_int core "running" = 1);
  Core.submit core ~client:"greedy" ~reply:r2 (slow "g2");
  (* Third in-flight request from the same client: over quota. *)
  let r3, w3 = waiter () in
  Core.submit core ~client:"greedy" ~reply:r3
    (Protocol.analyze_line ~id:"g3" ~model ());
  let rg3 = w3 () in
  Alcotest.(check string) "over-quota rejected" "quota_exceeded"
    (error_code rg3);
  (match retry_after rg3 with
  | Some s when s > 0.0 -> ()
  | _ -> Alcotest.failf "quota reject without retry_after: %s" rg3);
  (* Another client is not punished for the greedy one's backlog. *)
  let ro, wo = waiter () in
  Core.submit core ~client:"other" ~reply:ro
    (Protocol.analyze_line ~id:"o1" ~model ());
  Alcotest.(check bool) "other client admitted and served" true
    (response_ok (wo ()));
  Alcotest.(check bool) "greedy 1 served" true (response_ok (w1 ()));
  Alcotest.(check bool) "greedy 2 served" true (response_ok (w2 ()));
  let snap = Metrics.snapshot_in (Core.metrics core) in
  Alcotest.(check int) "one quota reject counted" 1
    (counter_of snap "server.rejected_quota")

(* ------------------------------------------------------------------ *)
(* Fault injection on the request path *)

let test_crash_contained () =
  let core = Core.create () in
  Fun.protect ~finally:(fun () -> Core.shutdown core) @@ fun () ->
  let model = Lazy.force pumps_text in
  let poisoned =
    Core.call core ~client:"f"
      (Protocol.analyze_line ~id:"boom" ~failpoints:"server.handle=raise"
         ~model ())
  in
  Alcotest.(check bool) "poisoned request fails" false (response_ok poisoned);
  Alcotest.(check string) "contained as a crash error" "crash"
    (error_code poisoned);
  (match Json.member "id" (parse_json poisoned) with
  | Some (Json.String "boom") -> ()
  | _ -> Alcotest.failf "crash response lost the request id: %s" poisoned);
  (* Exactly one request died; the daemon keeps serving. *)
  Alcotest.(check bool)
    "daemon serves an analyze after the crash" true
    (response_ok
       (Core.call core ~client:"f" (Protocol.analyze_line ~id:"after" ~model ())));
  let snap = Metrics.snapshot_in (Core.metrics core) in
  Alcotest.(check int) "one crash counted" 1 (counter_of snap "server.crashes");
  Alcotest.(check bool)
    "crash visible on the scrape" true
    (contains (Core.prometheus core) "sdft_server_crashes 1")

let test_request_failpoint_degrades_in_place () =
  let core = Core.create () in
  Fun.protect ~finally:(fun () -> Core.shutdown core) @@ fun () ->
  let model = Lazy.force pumps_text in
  let clean_line = Protocol.analyze_line ~id:"probe" ~model () in
  let clean_before = Core.call core ~client:"f" clean_line in
  Alcotest.(check bool) "clean baseline ok" true (response_ok clean_before);
  (* Every cache lookup of this one request raises; each dynamic cutset is
     contained as a worker-crash fallback, so the request degrades in
     place instead of failing. *)
  let hurt =
    Core.call core ~client:"f"
      (Protocol.analyze_line ~id:"hurt" ~failpoints:"cache.lookup=raise"
         ~model ())
  in
  Alcotest.(check bool) "faulted request still answers ok" true
    (response_ok hurt);
  (match result_int hurt "n_fallbacks" with
  | Some n when n > 0 -> ()
  | _ -> Alcotest.failf "expected worker-crash fallbacks: %s" hurt);
  Alcotest.(check (option bool)) "and reports degradation" (Some true)
    (result_bool hurt "degraded");
  (* The injection was request-private: the same clean request is
     bit-identical afterwards, so neither the shared cache nor any global
     registry was poisoned. *)
  Alcotest.(check string) "clean request bit-identical after the fault"
    clean_before
    (Core.call core ~client:"f" clean_line)

let test_parallel_worker_crash () =
  let config = { Core.default_config with max_request_domains = 2 } in
  let core = Core.create ~config () in
  Fun.protect ~finally:(fun () -> Core.shutdown core) @@ fun () ->
  let model = Lazy.force bwr_text in
  Failpoint.set "parallel.worker" ~trigger:(Failpoint.Nth 1) Failpoint.Raise;
  let faulted =
    Fun.protect ~finally:(fun () -> Failpoint.clear "parallel.worker")
    @@ fun () ->
    Core.call core ~client:"f"
      (Protocol.analyze_line ~id:"pw" ~domains:2 ~model ())
  in
  (* The crashed domain poisons only its own cutsets (worst-case
     fallbacks); the request itself still answers. *)
  Alcotest.(check bool) "request survives a crashed solver domain" true
    (response_ok faulted);
  Alcotest.(check bool)
    "daemon serves after the domain crash" true
    (response_ok
       (Core.call core ~client:"f"
          (Protocol.analyze_line ~id:"pw2" ~model:(Lazy.force pumps_text) ())))

let test_store_append_fault_keeps_store_intact () =
  with_temp_dir @@ fun dir ->
  let path = Filename.concat dir "faulty.store" in
  let cache = Quant_cache.open_disk path in
  let core = Core.create ~cache () in
  (* Phase 1: clean entries reach the disk. *)
  Alcotest.(check bool)
    "clean request ok" true
    (response_ok
       (Core.call core ~client:"f"
          (Protocol.analyze_line ~id:"clean" ~model:(Lazy.force pumps_text) ())));
  Quant_cache.flush cache;
  let pre =
    match Quant_cache.disk_stats cache with
    | Some d -> d.Quant_cache.appends
    | None -> Alcotest.fail "disk tier missing"
  in
  Alcotest.(check bool) "baseline appended records" true (pre > 0);
  (* Phase 2: every disk append fails; the tier degrades to memory-only,
     the request is not harmed, the daemon keeps serving. *)
  Failpoint.set "store.append" Failpoint.Raise;
  Fun.protect ~finally:(fun () -> Failpoint.clear "store.append")
  @@ fun () ->
  Alcotest.(check bool)
    "request during the append fault still ok" true
    (response_ok
       (Core.call core ~client:"f"
          (Protocol.analyze_line ~id:"fault" ~model:(Lazy.force bwr_text) ())));
  Quant_cache.flush cache;
  (match Quant_cache.disk_stats cache with
  | Some d when d.Quant_cache.disk_error <> None -> ()
  | _ -> Alcotest.fail "disk tier did not record the degradation");
  Alcotest.(check bool)
    "daemon serves after the disk fault" true
    (response_ok (Core.call core ~client:"f" (Protocol.simple_line "ping")));
  Core.shutdown core;
  Quant_cache.close cache;
  (* The store file holds exactly the pre-fault records — the failed
     appends never reached it, and reopening finds no corruption. *)
  let reopened = Quant_cache.open_disk path in
  (match Quant_cache.disk_stats reopened with
  | Some d ->
    Alcotest.(check (option string)) "reopen sees no error" None
      d.Quant_cache.disk_error;
    Alcotest.(check int) "exactly the pre-fault records survive" pre
      d.Quant_cache.entries_loaded
  | None -> Alcotest.fail "reopen lost the disk tier");
  Quant_cache.close reopened

(* ------------------------------------------------------------------ *)
(* Self-healing: retry_after clamping, health op, watchdog, idem window *)

let test_clamp_retry_after () =
  let check_clamp label expected raw =
    Alcotest.(check (float 0.0)) label expected (Core.clamp_retry_after raw)
  in
  check_clamp "in-band value passes through" 0.5 0.5;
  check_clamp "floor" 0.05 0.0;
  check_clamp "negative maps to the floor" 0.05 (-3.0);
  check_clamp "ceiling" 60.0 1e9;
  check_clamp "nan maps to the floor" 0.05 Float.nan;
  check_clamp "infinity maps to the ceiling" 60.0 Float.infinity;
  (* Every retry_after on the wire is clamped: saturate a tiny server
     whose EWMA is still zero and check the floor is respected. *)
  let config =
    { Core.default_config with workers = 1; queue_capacity = 1 }
  in
  let core = Core.create ~config () in
  Fun.protect ~finally:(fun () -> Core.shutdown core) @@ fun () ->
  Failpoint.set "server.handle" ~trigger:(Failpoint.Nth 1)
    (Failpoint.Delay 0.2);
  Fun.protect ~finally:(fun () -> Failpoint.clear "server.handle")
  @@ fun () ->
  let slow_reply, slow_wait = waiter () in
  Core.submit core ~client:"a" ~reply:slow_reply
    (Protocol.analyze_line ~id:"slow" ~model:(Lazy.force pumps_text) ());
  wait_until "worker busy" (fun () -> stat_int core "running" = 1);
  let fill_reply, fill_wait = waiter () in
  Core.submit core ~client:"b" ~reply:fill_reply
    (Protocol.analyze_line ~id:"fill" ~model:(Lazy.force pumps_text) ());
  let rejected =
    Core.call core ~client:"c"
      (Protocol.analyze_line ~id:"rej" ~model:(Lazy.force pumps_text) ())
  in
  Alcotest.(check string) "saturated" "saturated" (error_code rejected);
  (match retry_after rejected with
  | Some ra ->
    Alcotest.(check bool) "clamped into [0.05, 60]" true
      (ra >= 0.05 && ra <= 60.0)
  | None -> Alcotest.fail "saturated without retry_after");
  ignore (slow_wait ());
  ignore (fill_wait ())

let test_health_op () =
  let core = Core.create () in
  Fun.protect ~finally:(fun () -> Core.shutdown core) @@ fun () ->
  let h = Core.call core ~client:"probe" (Protocol.simple_line "health") in
  Alcotest.(check bool) "ok" true (response_ok h);
  Alcotest.(check (option bool)) "healthy" (Some true)
    (result_bool h "healthy");
  Alcotest.(check (option int)) "workers" (Some 2) (result_int h "workers");
  Alcotest.(check (option int)) "none busy" (Some 0)
    (result_int h "workers_busy");
  Alcotest.(check (option int)) "none lost" (Some 0)
    (result_int h "workers_lost");
  Alcotest.(check (option int)) "queue empty" (Some 0) (result_int h "queued");
  Alcotest.(check bool) "uptime present" true
    (Option.is_some
       (Option.bind (result_field h "uptime_s") Json.to_float))

let test_watchdog_respawns_hung_worker () =
  let config =
    { Core.default_config with workers = 1; watchdog_timeout = Some 0.15 }
  in
  let core = Core.create ~config () in
  Fun.protect ~finally:(fun () -> Core.shutdown core) @@ fun () ->
  let reply, wait = waiter () in
  (* The per-request delay failpoint stalls the worker inside the handler,
     where it emits no heartbeats — indistinguishable from a hang. *)
  Core.submit core ~client:"w" ~reply
    (Protocol.analyze_line ~id:"hung" ~failpoints:"server.handle=delay:0.8"
       ~model:(Lazy.force pumps_text) ());
  let lost = wait () in
  Alcotest.(check string) "declared worker_lost" "worker_lost"
    (error_code lost);
  Alcotest.(check bool) "safe to retry: carries retry_after" true
    (retry_after lost <> None);
  (* The slot was respawned under the same index: a follow-up request is
     served by the fresh domain long before the zombie wakes up. *)
  let after =
    Core.call core ~client:"w"
      (Protocol.analyze_line ~id:"after" ~model:(Lazy.force pumps_text) ())
  in
  Alcotest.(check bool) "fresh worker serves immediately" true
    (response_ok after);
  let h = Core.call core ~client:"w" (Protocol.simple_line "health") in
  Alcotest.(check (option int)) "health counts the lost worker" (Some 1)
    (result_int h "workers_lost");
  Alcotest.(check (option bool)) "pool capacity restored: still healthy"
    (Some true) (result_bool h "healthy");
  let snap = Metrics.snapshot_in (Core.metrics core) in
  Alcotest.(check int) "server.worker_lost counted" 1
    (counter_of snap "server.worker_lost");
  (* Let the zombie finish its nap and discover the reply is already
     owned, so shutdown below observes a quiet pool. *)
  Unix.sleepf 0.9

let test_idem_replay_bit_identical () =
  let core = Core.create () in
  Fun.protect ~finally:(fun () -> Core.shutdown core) @@ fun () ->
  (* verbose:true makes the response carry wall-clock timing — two real
     executions could never be byte-identical, so byte identity proves
     the second answer came verbatim from the response window. *)
  let line =
    Protocol.analyze_line ~id:"i1" ~idem:"retry-key-1" ~verbose:true
      ~model:(Lazy.force pumps_text) ()
  in
  let r1 = Core.call core ~client:"c" line in
  Alcotest.(check bool) "first execution ok" true (response_ok r1);
  let r2 = Core.call core ~client:"c" line in
  Alcotest.(check string) "retry answered with the verbatim bytes" r1 r2;
  let snap = Metrics.snapshot_in (Core.metrics core) in
  Alcotest.(check int) "replay counted" 1 (counter_of snap "server.idem_hits");
  (* The window is keyed by (client, idem): another client with the same
     key gets its own execution. *)
  let r3 = Core.call core ~client:"other" line in
  Alcotest.(check bool) "other client recomputes" true (response_ok r3);
  let snap = Metrics.snapshot_in (Core.metrics core) in
  Alcotest.(check int) "no cross-client replay" 1
    (counter_of snap "server.idem_hits")

let test_idem_window_bounded () =
  let config = { Core.default_config with response_window = 2 } in
  let core = Core.create ~config () in
  Fun.protect ~finally:(fun () -> Core.shutdown core) @@ fun () ->
  let ask idem =
    Core.call core ~client:"c"
      (Protocol.analyze_line ~id:idem ~idem ~model:(Lazy.force pumps_text) ())
  in
  ignore (ask "k1");
  ignore (ask "k2");
  ignore (ask "k3");
  (* k1 was evicted FIFO; k3 is still cached. *)
  ignore (ask "k3");
  ignore (ask "k1");
  let snap = Metrics.snapshot_in (Core.metrics core) in
  Alcotest.(check int) "only the still-windowed key replays" 1
    (counter_of snap "server.idem_hits")

(* ------------------------------------------------------------------ *)
(* Process-level chaos: kill -9 the real daemon binary mid-conversation,
   warm-restart it on the same socket and cache, and drive a retrying
   client straight through the outage. *)

let sdft_bin = "../bin/main.exe"

let spawn_daemon ~sock ~cache ~log =
  let fd =
    Unix.openfile log [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o600
  in
  let pid =
    Unix.create_process sdft_bin
      [|
        sdft_bin; "serve"; "--listen"; "unix:" ^ sock; "--workers"; "2";
        "--cache"; cache;
      |]
      Unix.stdin fd fd
  in
  Unix.close fd;
  pid

let test_daemon_kill9_warm_restart () =
  if not (Sys.file_exists sdft_bin) then
    Alcotest.skip ()
  else
    with_temp_dir @@ fun dir ->
    let sock = Filename.concat dir "chaos.sock" in
    let cache = Filename.concat dir "chaos.store" in
    let model = Lazy.force pumps_text in
    let pid1 =
      spawn_daemon ~sock ~cache ~log:(Filename.concat dir "serve1.log")
    in
    let cl =
      Sdft_server.Client.connect ~timeout:30.0 ~retries:12
        (Sdft_server.Daemon.Unix_sock sock)
    in
    Fun.protect ~finally:(fun () -> Sdft_server.Client.close cl) @@ fun () ->
    let line = Protocol.analyze_line ~id:"chaos" ~idem:"chaos-1" ~model () in
    let r1 = Sdft_server.Client.request cl line in
    Alcotest.(check bool) "first daemon answers" true (response_ok r1);
    (* SIGKILL: no drain, no flush, socket left stale on disk. *)
    Unix.kill pid1 Sys.sigkill;
    ignore (Unix.waitpid [] pid1);
    let pid2 =
      spawn_daemon ~sock ~cache ~log:(Filename.concat dir "serve2.log")
    in
    (* The same client object rides through the outage: broken-socket
       reconnects with backoff until the restarted daemon binds. *)
    let r2 = Sdft_server.Client.request cl line in
    Alcotest.(check string) "answer after kill -9 is bit-identical" r1 r2;
    Alcotest.(check bool) "the outage actually cost retries" true
      (Sdft_server.Client.retries_used cl > 0);
    let bye = Sdft_server.Client.request cl (Protocol.simple_line "shutdown") in
    Alcotest.(check bool) "restarted daemon shuts down gracefully" true
      (response_ok bye);
    ignore (Unix.waitpid [] pid2)

(* ------------------------------------------------------------------ *)

let qcheck = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "server"
    [
      ( "codec",
        qcheck
          [
            qcheck_json_parse_total;
            qcheck_json_roundtrip;
            qcheck_request_parse_total;
            qcheck_mutated_frames;
            qcheck_truncated_frames;
            qcheck_analyze_roundtrip;
          ]
        @ [
            Alcotest.test_case "structured rejections" `Quick
              test_codec_rejections;
          ] );
      ( "server",
        [
          Alcotest.test_case "inline ops and malformed traffic" `Quick
            test_ops_smoke;
          Alcotest.test_case "graceful shutdown semantics" `Quick
            test_shutdown_semantics;
          Alcotest.test_case "8-client soak bit-identical to sequential" `Quick
            test_soak_concurrent_vs_sequential;
        ] );
      ( "admission",
        [
          Alcotest.test_case "saturation rejects with retry_after" `Quick
            test_saturation_retry_after;
          Alcotest.test_case "per-client quota" `Quick test_client_quota;
        ] );
      ( "faults",
        [
          Alcotest.test_case "poisoned request cannot kill the daemon" `Quick
            test_crash_contained;
          Alcotest.test_case "per-request failpoint degrades in place" `Quick
            test_request_failpoint_degrades_in_place;
          Alcotest.test_case "crashed solver domain is contained" `Quick
            test_parallel_worker_crash;
          Alcotest.test_case "failing disk append leaves the store intact"
            `Quick test_store_append_fault_keeps_store_intact;
        ] );
      ( "self-healing",
        [
          Alcotest.test_case "retry_after is clamped to [floor, ceiling]"
            `Quick test_clamp_retry_after;
          Alcotest.test_case "health op reports pool state" `Quick
            test_health_op;
          Alcotest.test_case "watchdog respawns a hung worker" `Quick
            test_watchdog_respawns_hung_worker;
          Alcotest.test_case "idempotent retry replays verbatim bytes" `Quick
            test_idem_replay_bit_identical;
          Alcotest.test_case "response window is bounded FIFO" `Quick
            test_idem_window_bounded;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "kill -9 daemon, warm restart, client rides through"
            `Quick test_daemon_kill9_warm_restart;
        ] );
    ]

(* Tests for cutsets and the MOCUS algorithm: paper examples, properties of
   minimization, agreement with the exact BDD engine. *)

module Int_set = Sdft_util.Int_set

let iset = Alcotest.testable Int_set.pp Int_set.equal

let check_close ?(eps = 1e-12) msg expected actual =
  if Float.abs (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

let pumps = Pumps.static_tree ()

let idx name = Option.get (Fault_tree.basic_index pumps name)

let set names = Int_set.of_list (List.map idx names)

(* Paper Example 7/8: the five MCS of the running example. *)
let test_pumps_mcs () =
  let mcs = Mocus.minimal_cutsets pumps in
  let expected =
    List.sort Int_set.compare
      [
        set [ "e" ];
        set [ "a"; "c" ];
        set [ "a"; "d" ];
        set [ "b"; "c" ];
        set [ "b"; "d" ];
      ]
  in
  Alcotest.(check (list iset)) "paper MCS" expected mcs

let test_pumps_cutset_predicates () =
  (* Example 7: {a,b,c} is a cutset but not minimal. *)
  Alcotest.(check bool) "cutset" true (Cutset.is_cutset pumps (set [ "a"; "b"; "c" ]));
  Alcotest.(check bool) "not minimal" false
    (Cutset.is_minimal_cutset pumps (set [ "a"; "b"; "c" ]));
  Alcotest.(check bool) "minimal" true (Cutset.is_minimal_cutset pumps (set [ "a"; "c" ]));
  Alcotest.(check bool) "not cutset" false (Cutset.is_cutset pumps (set [ "a"; "b" ]))

let test_cutset_probability () =
  check_close "p({a,c})" 9e-6 (Cutset.probability pumps (set [ "a"; "c" ]));
  check_close "p({e})" 3e-6 (Cutset.probability pumps (set [ "e" ]))

let test_rare_event_and_mcub () =
  let mcs = Mocus.minimal_cutsets pumps in
  let rea = Cutset.rare_event_approximation pumps mcs in
  let mcub = Cutset.mcub pumps mcs in
  let exact = Fault_tree.exact_top_probability_enumerate pumps in
  Alcotest.(check bool) "exact <= mcub" true (exact <= mcub +. 1e-15);
  Alcotest.(check bool) "mcub <= rea" true (mcub <= rea +. 1e-15);
  check_close ~eps:1e-12 "rea value" (3e-6 +. 9e-6 +. 3e-6 +. 3e-6 +. 1e-6) rea

let test_minimize () =
  let sets =
    [
      Int_set.of_list [ 1; 2 ];
      Int_set.of_list [ 1; 2; 3 ];
      Int_set.of_list [ 2 ];
      Int_set.of_list [ 4; 5 ];
      Int_set.of_list [ 2 ];
      Int_set.of_list [ 5; 4 ];
    ]
  in
  let minimized = List.sort Int_set.compare (Cutset.minimize sets) in
  Alcotest.(check (list iset))
    "minimized"
    [ Int_set.of_list [ 2 ]; Int_set.of_list [ 4; 5 ] ]
    minimized

let test_minimize_empty_set_dominates () =
  let sets = [ Int_set.empty; Int_set.of_list [ 1 ] ] in
  Alcotest.(check (list iset)) "only empty" [ Int_set.empty ] (Cutset.minimize sets)

let test_sort_by_probability () =
  let mcs = Mocus.minimal_cutsets pumps in
  let sorted = Cutset.sort_by_probability pumps mcs in
  Alcotest.check iset "largest first" (set [ "a"; "c" ]) (List.hd sorted)

(* Cutoff behaviour. *)

let test_cutoff_drops_small_cutsets () =
  (* With cutoff 2e-6: {b,d} (1e-6) is pruned; others survive. *)
  let options = { Mocus.default_options with cutoff = 2e-6 } in
  let r = Mocus.run ~options pumps in
  Alcotest.(check int) "4 cutsets" 4 (List.length r.Mocus.cutsets);
  Alcotest.(check bool) "pruned counted" true (r.Mocus.pruned_by_cutoff > 0);
  Alcotest.(check bool) "{b,d} gone" true
    (not (List.exists (Int_set.equal (set [ "b"; "d" ])) r.Mocus.cutsets))

let test_max_order () =
  let options = { Mocus.default_options with max_order = Some 1; cutoff = 0.0 } in
  let r = Mocus.run ~options pumps in
  Alcotest.(check (list iset)) "only {e}" [ set [ "e" ] ] r.Mocus.cutsets

let test_max_cutsets_truncates () =
  let options = { Mocus.default_options with max_cutsets = Some 2; cutoff = 0.0 } in
  let r = Mocus.run ~options pumps in
  Alcotest.(check bool) "truncated flag" true r.Mocus.truncated;
  Alcotest.(check bool) "at most 2" true (List.length r.Mocus.cutsets <= 2)

let test_zero_cutoff_exhaustive () =
  let options = { Mocus.default_options with cutoff = 0.0 } in
  let r = Mocus.run ~options pumps in
  Alcotest.(check int) "all 5" 5 (List.length r.Mocus.cutsets)

(* Error-budget satellite: the probability mass MOCUS discards at the prune
   site must be an exact accounting when every pruned branch is a completed
   cutset. An OR over disjoint AND groups has exactly one cutset per group
   and no shared events, so pruning can only ever happen at a finished
   product of basics — the pruned mass must equal the rare-event sum lost
   relative to a no-cutoff run, to full float precision. *)
let disjoint_groups_tree =
  let b = Fault_tree.Builder.create () in
  let group i probs =
    let leaves =
      List.mapi
        (fun j p ->
          Fault_tree.Builder.basic b ~prob:p (Printf.sprintf "g%d_%d" i j))
        probs
    in
    match leaves with
    | [ single ] -> single
    | several ->
      Fault_tree.Builder.gate b (Printf.sprintf "and%d" i) Fault_tree.And
        several
  in
  let groups =
    List.mapi group
      [
        [ 0.3; 0.2 ];        (* 6.0e-2 *)
        [ 1e-3; 2e-3 ];      (* 2.0e-6 *)
        [ 1e-4; 5e-4; 0.1 ]; (* 5.0e-9 *)
        [ 2e-5 ];            (* 2.0e-5 *)
        [ 1e-6; 3e-3 ];      (* 3.0e-9 *)
      ]
  in
  let top = Fault_tree.Builder.gate b "top" Fault_tree.Or groups in
  Fault_tree.Builder.build b ~top

let test_pruned_mass_exact_on_disjoint_tree () =
  let tree = disjoint_groups_tree in
  let exact = Mocus.run ~options:{ Mocus.default_options with cutoff = 0.0 } tree in
  check_close "no-cutoff run prunes nothing" 0.0 exact.Mocus.pruned_mass;
  let rea cutsets = Cutset.rare_event_approximation tree cutsets in
  let full = rea exact.Mocus.cutsets in
  List.iter
    (fun cutoff ->
      let r = Mocus.run ~options:{ Mocus.default_options with cutoff } tree in
      let kept = rea r.Mocus.cutsets in
      check_close
        (Printf.sprintf "pruned mass = lost REA at cutoff %g" cutoff)
        (full -. kept) r.Mocus.pruned_mass;
      Alcotest.(check bool)
        (Printf.sprintf "mass only when pruning happened (cutoff %g)" cutoff)
        (r.Mocus.pruned_by_cutoff > 0)
        (r.Mocus.pruned_mass > 0.0))
    [ 1e-10; 1e-8; 1e-6; 1e-4; 1.0 ]

(* On a shared-event tree the pruned partials need not be complete cutsets,
   so the accumulated mass is only an upper bound on the lost REA — but it
   must still be one, and zero exactly when nothing was pruned. *)
let test_pruned_mass_bounds_lost_rea () =
  let exact = Mocus.run ~options:{ Mocus.default_options with cutoff = 0.0 } pumps in
  let full = Cutset.rare_event_approximation pumps exact.Mocus.cutsets in
  List.iter
    (fun cutoff ->
      let r = Mocus.run ~options:{ Mocus.default_options with cutoff } pumps in
      let kept = Cutset.rare_event_approximation pumps r.Mocus.cutsets in
      Alcotest.(check bool)
        (Printf.sprintf "pruned mass bounds lost REA (cutoff %g)" cutoff)
        true
        (r.Mocus.pruned_mass >= full -. kept -. 1e-15))
    [ 2e-6; 1e-4; 1.0 ]

(* Regression for the pick_gate early-exit and Int_set.remove hot-path
   changes: MOCUS output on the seed models must still match the exact BDD
   engine exactly (the expansion order may legally change, the cutset list
   may not). *)
let test_seed_models_mocus_equals_bdd () =
  let check_model name tree =
    let cutoff = 1e-15 in
    let above = List.filter (fun c -> Cutset.probability tree c > cutoff) in
    let options = { Mocus.default_options with cutoff } in
    let mocus =
      List.sort Int_set.compare (above (Mocus.minimal_cutsets ~options tree))
    in
    let bdd =
      List.sort Int_set.compare (above (Minsol.fault_tree_cutsets_above tree ~cutoff))
    in
    Alcotest.(check int) (name ^ ": same count") (List.length bdd) (List.length mocus);
    List.iter2
      (fun a b ->
        if not (Int_set.equal a b) then Alcotest.failf "%s: cutset lists differ" name)
      mocus bdd
  in
  check_model "pumps" pumps;
  check_model "bwr" (Bwr.static_tree ())

(* Agreement with the exact BDD engine on random trees — the central
   correctness property of the MOCUS implementation. *)

let prop_mocus_equals_bdd =
  QCheck.Test.make ~name:"MOCUS (cutoff 0) = BDD minsol" ~count:200
    (QCheck.make QCheck.Gen.(0 -- 100000))
    (fun seed ->
      let rng = Sdft_util.Rng.create seed in
      let tree = Random_tree.tree rng ~n_basics:8 ~n_gates:7 in
      let options = { Mocus.default_options with cutoff = 0.0 } in
      let mocus = Mocus.minimal_cutsets ~options tree in
      let bdd = Minsol.fault_tree_cutsets tree in
      List.sort Int_set.compare mocus = List.sort Int_set.compare bdd)

let prop_cutoff_keeps_all_above =
  (* Soundness of the basics-only cutoff: every MCS with probability above
     the cutoff must be found. *)
  QCheck.Test.make ~name:"cutoff keeps every MCS above it" ~count:200
    (QCheck.make QCheck.Gen.(pair (0 -- 100000) (1 -- 9)))
    (fun (seed, c) ->
      let cutoff = float_of_int c /. 100.0 in
      let rng = Sdft_util.Rng.create seed in
      let tree = Random_tree.tree rng ~n_basics:8 ~n_gates:6 in
      let options = { Mocus.default_options with cutoff } in
      let got = Mocus.minimal_cutsets ~options tree in
      let all = Minsol.fault_tree_cutsets tree in
      List.for_all
        (fun mcs ->
          Cutset.probability tree mcs < cutoff
          || List.exists (Int_set.equal mcs) got)
        all)

let prop_mocus_results_are_minimal_cutsets =
  QCheck.Test.make ~name:"every result is a minimal cutset" ~count:200
    (QCheck.make QCheck.Gen.(0 -- 100000))
    (fun seed ->
      let rng = Sdft_util.Rng.create seed in
      let tree = Random_tree.tree rng ~n_basics:8 ~n_gates:7 in
      let options = { Mocus.default_options with cutoff = 0.0 } in
      let mcs = Mocus.minimal_cutsets ~options tree in
      List.for_all (Cutset.is_minimal_cutset tree) mcs)

let prop_aggressive_covered_by_sound =
  (* Aggressive pruning may drop cutsets (and then report a formerly
     subsumed superset as minimal), but it never invents failure modes: every
     reported cutset must contain some cutset of the sound run. *)
  QCheck.Test.make ~name:"aggressive cutsets are covered by sound ones" ~count:100
    (QCheck.make QCheck.Gen.(0 -- 100000))
    (fun seed ->
      let rng = Sdft_util.Rng.create seed in
      let tree = Random_tree.tree rng ~n_basics:8 ~n_gates:7 in
      let sound =
        Mocus.minimal_cutsets
          ~options:{ Mocus.default_options with cutoff = 1e-4 }
          tree
      in
      let aggressive =
        Mocus.minimal_cutsets
          ~options:
            { Mocus.default_options with cutoff = 1e-4; gate_bound_pruning = true }
          tree
      in
      List.for_all
        (fun c -> List.exists (fun s -> Int_set.subset s c) sound)
        aggressive)

(* Importance measures on the running example. *)

let test_importance_pumps () =
  let mcs = Mocus.minimal_cutsets pumps in
  let imp = Importance.compute pumps mcs in
  let total = Importance.total imp in
  check_close ~eps:1e-15 "total = rea" (Cutset.rare_event_approximation pumps mcs) total;
  (* FV of a: cutsets {a,c} 9e-6 and {a,d} 3e-6 => 12e-6 / 19e-6. *)
  check_close ~eps:1e-12 "FV(a)" (12e-6 /. 19e-6)
    (Importance.fussell_vesely imp (idx "a"));
  (* Birnbaum of e: only {e}, product of others = 1. *)
  check_close ~eps:1e-12 "Birnbaum(e)" 1.0 (Importance.birnbaum imp (idx "e"));
  (* Symmetry: a and c play symmetric roles. *)
  check_close ~eps:1e-15 "FV symmetric"
    (Importance.fussell_vesely imp (idx "a"))
    (Importance.fussell_vesely imp (idx "c"))

let test_importance_rank_and_groups () =
  let mcs = Mocus.minimal_cutsets pumps in
  let imp = Importance.compute pumps mcs in
  let ranked = Importance.rank_by_fussell_vesely imp in
  Alcotest.(check int) "all events ranked" 5 (List.length ranked);
  (* a and c have equal FV, as do b and d: groups must reflect that. *)
  let groups = Importance.groups_by_fussell_vesely imp in
  let group_of x =
    List.find (fun g -> List.mem (idx x) g) groups
  in
  Alcotest.(check bool) "a ~ c" true (group_of "a" == group_of "c");
  Alcotest.(check bool) "b ~ d" true (group_of "b" == group_of "d");
  Alcotest.(check bool) "a <> b group" true (group_of "a" != group_of "b")

let test_importance_raw_rrw () =
  let mcs = Mocus.minimal_cutsets pumps in
  let imp = Importance.compute pumps mcs in
  let raw_e = Importance.raw imp (idx "e") in
  (* Setting p(e) = 1 makes Q = 16e-6 (others) + 1 => RAW = (16e-6+1)/19e-6 *)
  check_close ~eps:1e-6 "RAW(e)" ((16e-6 +. 1.0) /. 19e-6) raw_e;
  let rrw_e = Importance.rrw imp (idx "e") in
  check_close ~eps:1e-9 "RRW(e)" (19e-6 /. 16e-6) rrw_e

(* Uncertainty propagation. *)

let test_uncertainty_point_is_degenerate () =
  let mcs = Mocus.minimal_cutsets pumps in
  let s = Uncertainty.propagate ~samples:100 pumps mcs ~spec:(fun _ -> Uncertainty.Point) in
  check_close ~eps:1e-15 "mean = point" s.Uncertainty.point s.Uncertainty.mean;
  check_close ~eps:1e-15 "std zero" 0.0 s.Uncertainty.std;
  check_close ~eps:1e-15 "median = point" s.Uncertainty.point s.Uncertainty.median

let test_uncertainty_lognormal_spread () =
  let mcs = Mocus.minimal_cutsets pumps in
  let spec _ = Uncertainty.Lognormal { error_factor = 3.0 } in
  let s = Uncertainty.propagate ~samples:4000 pumps mcs ~spec in
  Alcotest.(check bool) "p05 < median" true (s.Uncertainty.p05 < s.Uncertainty.median);
  Alcotest.(check bool) "median < p95" true (s.Uncertainty.median < s.Uncertainty.p95);
  (* Lognormal parameter uncertainty skews the mean above the median. *)
  Alcotest.(check bool) "mean > median" true (s.Uncertainty.mean > s.Uncertainty.median);
  (* The median of the output stays near the point estimate. *)
  Alcotest.(check bool) "median near point" true
    (Float.abs (s.Uncertainty.median -. s.Uncertainty.point)
    < 0.25 *. s.Uncertainty.point)

let test_uncertainty_deterministic () =
  let mcs = Mocus.minimal_cutsets pumps in
  let spec _ = Uncertainty.Lognormal { error_factor = 5.0 } in
  let a = Uncertainty.propagate ~samples:500 ~seed:7 pumps mcs ~spec in
  let b = Uncertainty.propagate ~samples:500 ~seed:7 pumps mcs ~spec in
  check_close ~eps:0.0 "same mean" a.Uncertainty.mean b.Uncertainty.mean

let test_uncertainty_uniform_bounds () =
  (* A single-event tree: the output distribution is the input one. *)
  let b = Fault_tree.Builder.create () in
  let x = Fault_tree.Builder.basic b ~prob:0.5 "x" in
  let top = Fault_tree.Builder.gate b "top" Fault_tree.Or [ x ] in
  let tree = Fault_tree.Builder.build b ~top in
  let mcs = Mocus.minimal_cutsets ~options:{ Mocus.default_options with cutoff = 0.0 } tree in
  let spec _ = Uncertainty.Uniform { lower = 0.2; upper = 0.8 } in
  let s = Uncertainty.propagate ~samples:4000 tree mcs ~spec in
  Alcotest.(check bool) "within bounds" true
    (s.Uncertainty.p05 >= 0.2 && s.Uncertainty.p95 <= 0.8);
  Alcotest.(check bool) "mean near 0.5" true (Float.abs (s.Uncertainty.mean -. 0.5) < 0.02)

let test_uncertainty_triangular () =
  let b = Fault_tree.Builder.create () in
  let x = Fault_tree.Builder.basic b ~prob:0.3 "x" in
  let top = Fault_tree.Builder.gate b "top" Fault_tree.Or [ x ] in
  let tree = Fault_tree.Builder.build b ~top in
  let mcs = Mocus.minimal_cutsets ~options:{ Mocus.default_options with cutoff = 0.0 } tree in
  let spec _ = Uncertainty.Triangular { lower = 0.1; upper = 0.8 } in
  let s = Uncertainty.propagate ~samples:4000 tree mcs ~spec in
  (* Triangular(0.1, 0.3, 0.8) has mean (a+b+c)/3 = 0.4. *)
  Alcotest.(check bool) "mean near 0.4" true (Float.abs (s.Uncertainty.mean -. 0.4) < 0.02)

(* Tornado sensitivity *)

let test_tornado_point_and_order () =
  let mcs = Mocus.minimal_cutsets pumps in
  let t = Sensitivity.tornado pumps mcs in
  check_close ~eps:1e-15 "point = rea" (Cutset.rare_event_approximation pumps mcs)
    t.Sensitivity.point;
  (* Swings decrease down the list. *)
  let rec decreasing = function
    | a :: (b :: _ as rest) ->
      a.Sensitivity.swing >= b.Sensitivity.swing -. 1e-15 && decreasing rest
    | _ -> true
  in
  Alcotest.(check bool) "sorted" true (decreasing t.Sensitivity.entries);
  Alcotest.(check int) "all events" 5 (List.length t.Sensitivity.entries)

let test_tornado_single_event_swing () =
  (* For the single-event cutset {e}: moving p(e) by x10 moves the REA by
     exactly (10 - 1/10) * p(e). *)
  let mcs = Mocus.minimal_cutsets pumps in
  let t = Sensitivity.tornado ~factor:10.0 pumps mcs in
  let e = idx "e" in
  let entry = List.find (fun en -> en.Sensitivity.event = e) t.Sensitivity.entries in
  check_close ~eps:1e-15 "swing(e)" (3e-6 *. (10.0 -. 0.1)) entry.Sensitivity.swing

let test_tornado_clamps () =
  (* An event with probability 0.5: multiplying by 10 clamps to 1. *)
  let b = Fault_tree.Builder.create () in
  let x = Fault_tree.Builder.basic b ~prob:0.5 "x" in
  let top = Fault_tree.Builder.gate b "top" Fault_tree.Or [ x ] in
  let tree = Fault_tree.Builder.build b ~top in
  let mcs = Mocus.minimal_cutsets ~options:{ Mocus.default_options with cutoff = 0.0 } tree in
  let t = Sensitivity.tornado tree mcs in
  let entry = List.hd t.Sensitivity.entries in
  check_close ~eps:1e-15 "high clamped" 1.0 entry.Sensitivity.high;
  check_close ~eps:1e-15 "low" 0.05 entry.Sensitivity.low

let test_tornado_top_contributors () =
  let mcs = Mocus.minimal_cutsets pumps in
  let t = Sensitivity.tornado pumps mcs in
  Alcotest.(check int) "two entries" 2 (List.length (Sensitivity.top_contributors t 2))

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "mocus"
    [
      ( "paper example",
        [
          Alcotest.test_case "five MCS" `Quick test_pumps_mcs;
          Alcotest.test_case "cutset predicates" `Quick test_pumps_cutset_predicates;
          Alcotest.test_case "cutset probability" `Quick test_cutset_probability;
          Alcotest.test_case "rea and mcub" `Quick test_rare_event_and_mcub;
        ] );
      ( "minimize",
        [
          Alcotest.test_case "subsumption" `Quick test_minimize;
          Alcotest.test_case "empty dominates" `Quick test_minimize_empty_set_dominates;
          Alcotest.test_case "sort by probability" `Quick test_sort_by_probability;
        ] );
      ( "options",
        [
          Alcotest.test_case "cutoff" `Quick test_cutoff_drops_small_cutsets;
          Alcotest.test_case "max order" `Quick test_max_order;
          Alcotest.test_case "max cutsets" `Quick test_max_cutsets_truncates;
          Alcotest.test_case "exhaustive" `Quick test_zero_cutoff_exhaustive;
          Alcotest.test_case "pruned mass exact (disjoint)" `Quick test_pruned_mass_exact_on_disjoint_tree;
          Alcotest.test_case "pruned mass bounds lost REA" `Quick test_pruned_mass_bounds_lost_rea;
          Alcotest.test_case "seed models = BDD" `Quick test_seed_models_mocus_equals_bdd;
        ] );
      ( "properties",
        qc
          [
            prop_mocus_equals_bdd;
            prop_cutoff_keeps_all_above;
            prop_mocus_results_are_minimal_cutsets;
            prop_aggressive_covered_by_sound;
          ] );
      ( "importance",
        [
          Alcotest.test_case "FV and Birnbaum" `Quick test_importance_pumps;
          Alcotest.test_case "rank and groups" `Quick test_importance_rank_and_groups;
          Alcotest.test_case "RAW and RRW" `Quick test_importance_raw_rrw;
        ] );
      ( "sensitivity",
        [
          Alcotest.test_case "point and order" `Quick test_tornado_point_and_order;
          Alcotest.test_case "single-event swing" `Quick test_tornado_single_event_swing;
          Alcotest.test_case "clamping" `Quick test_tornado_clamps;
          Alcotest.test_case "top contributors" `Quick test_tornado_top_contributors;
        ] );
      ( "uncertainty",
        [
          Alcotest.test_case "point degenerate" `Quick test_uncertainty_point_is_degenerate;
          Alcotest.test_case "lognormal spread" `Quick test_uncertainty_lognormal_spread;
          Alcotest.test_case "deterministic" `Quick test_uncertainty_deterministic;
          Alcotest.test_case "uniform bounds" `Quick test_uncertainty_uniform_bounds;
          Alcotest.test_case "triangular mean" `Quick test_uncertainty_triangular;
        ] );
    ]

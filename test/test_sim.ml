(* Tests for the Monte-Carlo simulator: statistical agreement with the exact
   product semantics and with closed forms. *)

let check_within_sigma ?(sigma = 4.0) exact (stats : Simulator.stats) =
  let err = Float.abs (stats.Simulator.estimate -. exact) in
  let bound = sigma *. Float.max stats.Simulator.std_error 1e-9 in
  if err > bound then
    Alcotest.failf "estimate %.5f vs exact %.5f (>%g sigma)"
      stats.Simulator.estimate exact sigma

let test_static_tree_estimate () =
  (* Static tree: simulation is just Bernoulli sampling of the scenarios. *)
  let b = Fault_tree.Builder.create () in
  let x = Fault_tree.Builder.basic b ~prob:0.3 "x" in
  let y = Fault_tree.Builder.basic b ~prob:0.4 "y" in
  let top = Fault_tree.Builder.gate b "top" Fault_tree.Or [ x; y ] in
  let tree = Fault_tree.Builder.build b ~top in
  let sd = Sdft.static_only tree in
  let stats = Simulator.unreliability ~seed:1 sd ~horizon:1.0 ~trials:100_000 in
  check_within_sigma (1.0 -. (0.7 *. 0.6)) stats

let test_exponential_event () =
  let b = Fault_tree.Builder.create () in
  let x = Fault_tree.Builder.basic b "x" in
  let top = Fault_tree.Builder.gate b "top" Fault_tree.Or [ x ] in
  let tree = Fault_tree.Builder.build b ~top in
  let sd = Sdft.make tree ~dynamic:[ ("x", Dbe.exponential ~lambda:0.1 ()) ] ~triggers:[] in
  let t = 8.0 in
  let stats = Simulator.unreliability ~seed:2 sd ~horizon:t ~trials:100_000 in
  check_within_sigma (1.0 -. exp (-0.1 *. t)) stats

let test_simulator_vs_product_with_triggers () =
  (* A model that exercises triggering, untriggering after repair, and
     re-triggering: top = AND(x, y), y triggered by x's wrapper, x
     repairable. Scaled-up rates so failures are frequent enough to
     estimate. *)
  let b = Fault_tree.Builder.create () in
  let x = Fault_tree.Builder.basic b "x" in
  let y = Fault_tree.Builder.basic b "y" in
  let wrap = Fault_tree.Builder.gate b "wrap" Fault_tree.Or [ x ] in
  ignore wrap;
  let top = Fault_tree.Builder.gate b "top" Fault_tree.And [ x; y ] in
  let tree = Fault_tree.Builder.build b ~top in
  let sd =
    Sdft.make tree
      ~dynamic:
        [
          ("x", Dbe.exponential ~lambda:0.3 ~mu:0.5 ());
          ("y", Dbe.triggered_exponential ~lambda:0.4 ~mu:0.2 ~passive_factor:0.01 ());
        ]
      ~triggers:[ ("wrap", "y") ]
  in
  let horizon = 10.0 in
  let exact = Sdft_product.solve sd ~horizon in
  let stats = Simulator.unreliability ~seed:3 sd ~horizon ~trials:60_000 in
  check_within_sigma exact stats

let test_simulator_pumps_running_example () =
  let sd = Pumps.sd_tree () in
  let exact = Sdft_product.solve sd ~horizon:24.0 in
  let stats = Simulator.unreliability ~seed:42 sd ~horizon:24.0 ~trials:300_000 in
  check_within_sigma exact stats

let test_simulator_deterministic () =
  let sd = Pumps.sd_tree () in
  let a = Simulator.unreliability ~seed:9 sd ~horizon:24.0 ~trials:20_000 in
  let b = Simulator.unreliability ~seed:9 sd ~horizon:24.0 ~trials:20_000 in
  Alcotest.(check int) "same failures" a.Simulator.failures b.Simulator.failures

let test_simulator_failure_time () =
  (* Single exponential event: conditional mean failure time within a long
     horizon approaches 1/lambda. *)
  let b = Fault_tree.Builder.create () in
  let x = Fault_tree.Builder.basic b "x" in
  let top = Fault_tree.Builder.gate b "top" Fault_tree.Or [ x ] in
  let tree = Fault_tree.Builder.build b ~top in
  let sd = Sdft.make tree ~dynamic:[ ("x", Dbe.exponential ~lambda:0.5 ()) ] ~triggers:[] in
  match Simulator.failure_time ~seed:4 sd ~horizon:200.0 ~trials:50_000 with
  | Some mean ->
    if Float.abs (mean -. 2.0) > 0.05 then
      Alcotest.failf "mean failure time %.3f far from 2.0" mean
  | None -> Alcotest.fail "expected failures"

let test_simulator_rejects_zero_trials () =
  let sd = Pumps.sd_tree () in
  Alcotest.check_raises "trials" (Invalid_argument "Simulator: need at least one trial")
    (fun () -> ignore (Simulator.unreliability sd ~horizon:1.0 ~trials:0))

(* ------------------------------------------------------------------ *)
(* Wilson score intervals: the degenerate 0-failure and all-failure runs
   must still produce informative (non-point) intervals. *)

let test_wilson_zero_failures () =
  (* An effectively impossible event: no failures in any finite run. *)
  let b = Fault_tree.Builder.create () in
  let x = Fault_tree.Builder.basic b "x" in
  let top = Fault_tree.Builder.gate b "top" Fault_tree.Or [ x ] in
  let tree = Fault_tree.Builder.build b ~top in
  let sd =
    Sdft.make tree ~dynamic:[ ("x", Dbe.exponential ~lambda:1e-12 ()) ] ~triggers:[]
  in
  let stats = Simulator.unreliability ~seed:5 sd ~horizon:1.0 ~trials:1000 in
  Alcotest.(check int) "no failures" 0 stats.Simulator.failures;
  let lo, hi = Simulator.confidence_95 stats in
  Alcotest.(check (float 0.0)) "lower is 0" 0.0 lo;
  if hi <= 0.0 || hi >= 0.01 then
    Alcotest.failf "0-failure Wilson upper %.4e not in (0, 0.01)" hi

let test_wilson_all_failures () =
  let b = Fault_tree.Builder.create () in
  let x = Fault_tree.Builder.basic b ~prob:1.0 "x" in
  let top = Fault_tree.Builder.gate b "top" Fault_tree.Or [ x ] in
  let tree = Fault_tree.Builder.build b ~top in
  let sd = Sdft.static_only tree in
  let stats = Simulator.unreliability ~seed:5 sd ~horizon:1.0 ~trials:1000 in
  Alcotest.(check int) "all failures" 1000 stats.Simulator.failures;
  let lo, hi = Simulator.confidence_95 stats in
  Alcotest.(check (float 0.0)) "upper is 1" 1.0 hi;
  if lo >= 1.0 || lo <= 0.99 then
    Alcotest.failf "all-failure Wilson lower %.6f not in (0.99, 1)" lo

(* ------------------------------------------------------------------ *)
(* The truncated-exponential sampler against its analytic CDF: bin 20_000
   draws into 20 equiprobable bins of F(x) = (1-e^{-rate x})/(1-e^{-rate b})
   and chi-square the counts. Fixed seed; the 50.0 threshold corresponds to
   p ~ 1e-4 at 19 degrees of freedom, so a pass is stable, and a fail means
   the sampler, not the luck, is wrong. *)

let test_truncated_exponential_chi_square () =
  let rng = Sdft_util.Rng.create 2024 in
  let rate = 0.7 and bound = 3.0 in
  let n = 20_000 and bins = 20 in
  let counts = Array.make bins 0 in
  let norm = -.expm1 (-.rate *. bound) in
  for _ = 1 to n do
    let x = Sdft_util.Rng.truncated_exponential rng rate ~bound in
    if x <= 0.0 || x > bound then
      Alcotest.failf "sample %.6f outside (0, %.1f]" x bound;
    let u = -.expm1 (-.rate *. x) /. norm in
    let k = min (bins - 1) (int_of_float (u *. float_of_int bins)) in
    counts.(k) <- counts.(k) + 1
  done;
  let expected = float_of_int n /. float_of_int bins in
  let chi2 =
    Array.fold_left
      (fun acc c ->
        let d = float_of_int c -. expected in
        acc +. (d *. d /. expected))
      0.0 counts
  in
  if chi2 > 50.0 then
    Alcotest.failf "chi-square %.2f > 50.0 (df 19): sampler disagrees with CDF"
      chi2

(* ------------------------------------------------------------------ *)
(* Rare_event: the importance-sampling estimator. *)

(* Closed form: AND of a static p = 1e-3 and an exponential lambda = 1e-3
   over 24h fails with probability p * (1 - e^{-0.024}) = 2.3714e-5.
   Exercises both measure changes (static biasing and forcing) at once. *)
let closed_form_and () =
  let b = Fault_tree.Builder.create () in
  let s = Fault_tree.Builder.basic b ~prob:1e-3 "s" in
  let x = Fault_tree.Builder.basic b "x" in
  let top = Fault_tree.Builder.gate b "top" Fault_tree.And [ s; x ] in
  let tree = Fault_tree.Builder.build b ~top in
  Sdft.make tree ~dynamic:[ ("x", Dbe.exponential ~lambda:1e-3 ()) ] ~triggers:[]

let test_rare_event_closed_form () =
  let sd = closed_form_and () in
  let exact = 1e-3 *. (1.0 -. exp (-0.024)) in
  let options = { Rare_event.default_options with trials = 50_000; seed = 17 } in
  let e = Rare_event.run ~options sd ~horizon:24.0 in
  let err = Float.abs (e.Rare_event.estimate -. exact) in
  if err > 4.0 *. e.Rare_event.std_error then
    Alcotest.failf "IS estimate %.6e vs closed form %.6e (> 4 sigma, se %.2e)"
      e.Rare_event.estimate exact e.Rare_event.std_error;
  (* The measure change must actually be doing something: crude Monte-Carlo
     at this probability would see ~1 hit, IS should see thousands. *)
  if e.Rare_event.hits < 1000 then
    Alcotest.failf "only %d hits — the biasing is not engaged" e.Rare_event.hits

let test_rare_event_weights_average_to_one () =
  (* Static biasing alone (forcing off) is a likelihood-ratio measure
     change with E[w] = 1 exactly — the standard calibration check. *)
  let sd = Pumps.sd_tree () in
  let options =
    { Rare_event.default_options with trials = 50_000; seed = 23; forcing = false }
  in
  let e = Rare_event.run ~options sd ~horizon:24.0 in
  if Float.abs (e.Rare_event.mean_weight -. 1.0) > 0.02 then
    Alcotest.failf "mean likelihood weight %.5f should be ~1.0"
      e.Rare_event.mean_weight

let test_rare_event_parallel_deterministic () =
  (* Same seed => bit-identical estimate regardless of the domain count:
     streams are pre-split per batch and merged in index order. *)
  let sd = Pumps.sd_tree () in
  let base = { Rare_event.default_options with trials = 20_000; batch = 1024; seed = 31 } in
  let reference = Rare_event.run ~options:base sd ~horizon:24.0 in
  List.iter
    (fun domains ->
      let e = Rare_event.run ~options:{ base with domains } sd ~horizon:24.0 in
      Alcotest.(check bool) "identical estimate" true
        (e.Rare_event.estimate = reference.Rare_event.estimate);
      Alcotest.(check bool) "identical variance" true
        (e.Rare_event.variance = reference.Rare_event.variance);
      Alcotest.(check bool) "identical mean weight" true
        (e.Rare_event.mean_weight = reference.Rare_event.mean_weight);
      Alcotest.(check int) "identical hits" reference.Rare_event.hits
        e.Rare_event.hits)
    [ 2; 3; 8 ]

let test_rare_event_early_stopping_deterministic () =
  (* The stopping rule fires at fixed wave boundaries, so early-stopped
     runs are domain-independent too — and really do stop early. *)
  let sd = Pumps.sd_tree () in
  let base =
    {
      Rare_event.default_options with
      trials = 200_000;
      batch = 1024;
      seed = 7;
      target_rel_error = Some 0.05;
    }
  in
  let a = Rare_event.run ~options:base sd ~horizon:24.0 in
  let b = Rare_event.run ~options:{ base with domains = 4 } sd ~horizon:24.0 in
  Alcotest.(check int) "same trial count" a.Rare_event.trials b.Rare_event.trials;
  Alcotest.(check bool) "identical estimate" true
    (a.Rare_event.estimate = b.Rare_event.estimate);
  if a.Rare_event.trials >= 200_000 then
    Alcotest.fail "expected the 5% relative-error target to stop the run early";
  if a.Rare_event.rel_error > 0.05 then
    Alcotest.failf "stopped at rel error %.3f > target 0.05" a.Rare_event.rel_error

let test_rare_event_rejects_bad_options () =
  let sd = Pumps.sd_tree () in
  Alcotest.check_raises "trials" (Invalid_argument "Rare_event: need at least one trial")
    (fun () ->
      ignore
        (Rare_event.run
           ~options:{ Rare_event.default_options with trials = 0 }
           sd ~horizon:1.0));
  Alcotest.check_raises "cap"
    (Invalid_argument "Rare_event: static_bias_cap must lie in (0, 1)")
    (fun () ->
      ignore
        (Rare_event.run
           ~options:{ Rare_event.default_options with static_bias_cap = 1.0 }
           sd ~horizon:1.0))

let () =
  Alcotest.run "sim"
    [
      ( "simulator",
        [
          Alcotest.test_case "static tree" `Slow test_static_tree_estimate;
          Alcotest.test_case "exponential" `Slow test_exponential_event;
          Alcotest.test_case "triggers vs product" `Slow test_simulator_vs_product_with_triggers;
          Alcotest.test_case "pumps example" `Slow test_simulator_pumps_running_example;
          Alcotest.test_case "deterministic" `Quick test_simulator_deterministic;
          Alcotest.test_case "failure time" `Slow test_simulator_failure_time;
          Alcotest.test_case "zero trials" `Quick test_simulator_rejects_zero_trials;
          Alcotest.test_case "Wilson: zero failures" `Quick test_wilson_zero_failures;
          Alcotest.test_case "Wilson: all failures" `Quick test_wilson_all_failures;
        ] );
      ( "rare-event",
        [
          Alcotest.test_case "truncated exponential chi-square" `Slow
            test_truncated_exponential_chi_square;
          Alcotest.test_case "closed form" `Slow test_rare_event_closed_form;
          Alcotest.test_case "weights average to 1" `Slow
            test_rare_event_weights_average_to_one;
          Alcotest.test_case "parallel deterministic" `Slow
            test_rare_event_parallel_deterministic;
          Alcotest.test_case "early stopping deterministic" `Slow
            test_rare_event_early_stopping_deterministic;
          Alcotest.test_case "bad options" `Quick test_rare_event_rejects_bad_options;
        ] );
    ]

(* Observability: histogram algebra, Prometheus exposition, scoped
   contexts, progress reporting, and crash-safe dumps.

   The load-bearing properties: histogram merges are exact on counts
   (associative and commutative), the Prometheus writer agrees with the
   JSON export on _sum/_count and emits monotone cumulative buckets, and
   two concurrent analyses with separate {!Obs.t} contexts share nothing —
   not counters, not spans, not failpoints, and neither leaks into the
   process-global default registry. *)

open Sdft_util

(* ------------------------------------------------------------------ *)
(* Histogram algebra *)

(* Deterministic value arrays spanning many decades (and a few extremes),
   derived from a qcheck seed so failures shrink to a reproducer. *)
let values_of_seed seed =
  let rng = Rng.create seed in
  let n = Rng.int rng 60 in
  Array.init n (fun _ ->
      match Rng.int rng 20 with
      | 0 -> 0.0
      | 1 -> -1.0
      | 2 -> infinity
      | 3 -> 1e12
      | _ -> (0.1 +. Rng.float rng) *. (10.0 ** float_of_int (Rng.int rng 20 - 10)))

let hist_counts_equal a b =
  a.Metrics.buckets = b.Metrics.buckets && a.Metrics.count = b.Metrics.count

let qcheck_merge_assoc =
  QCheck.Test.make ~name:"hist_merge associative (exact counts)" ~count:200
    Gen_sdft.seed_gen (fun seed ->
      let a = Metrics.hist_of_values (values_of_seed seed)
      and b = Metrics.hist_of_values (values_of_seed (seed + 1))
      and c = Metrics.hist_of_values (values_of_seed (seed + 2)) in
      let l = Metrics.hist_merge (Metrics.hist_merge a b) c
      and r = Metrics.hist_merge a (Metrics.hist_merge b c) in
      hist_counts_equal l r
      (* sums differ only by float-addition reassociation (and compare
         equal when an infinite observation saturates both) *)
      && (l.Metrics.sum = r.Metrics.sum
          || Float.abs (l.Metrics.sum -. r.Metrics.sum)
             <= 1e-9 *. (1.0 +. Float.abs l.Metrics.sum)))

let qcheck_merge_comm =
  QCheck.Test.make ~name:"hist_merge commutative" ~count:200 Gen_sdft.seed_gen
    (fun seed ->
      let a = Metrics.hist_of_values (values_of_seed seed)
      and b = Metrics.hist_of_values (values_of_seed (seed + 7)) in
      Metrics.hist_merge a b = Metrics.hist_merge b a)

let qcheck_count_conservation =
  QCheck.Test.make ~name:"hist split/merge conserves every bucket" ~count:200
    Gen_sdft.seed_gen (fun seed ->
      let vs = values_of_seed seed in
      let n = Array.length vs in
      let k = if n = 0 then 0 else Rng.int (Rng.create (seed + 13)) (n + 1) in
      let left = Array.sub vs 0 k and right = Array.sub vs k (n - k) in
      let whole = Metrics.hist_of_values vs in
      let merged =
        Metrics.hist_merge
          (Metrics.hist_of_values left)
          (Metrics.hist_of_values right)
      in
      hist_counts_equal whole merged
      && whole.Metrics.count = n
      && Array.fold_left ( + ) 0 whole.Metrics.buckets = n)

let test_hist_quantile_brackets () =
  let v = 3.7e-4 in
  let h = Metrics.hist_of_values [| v |] in
  let q = Metrics.hist_quantile h 0.5 in
  if q < v then Alcotest.failf "quantile %g below observation %g" q v;
  (* bucket boundaries are 4 per decade *)
  if q > v *. (10.0 ** 0.25) *. 1.000001 then
    Alcotest.failf "quantile %g more than one bucket above %g" q v;
  Alcotest.(check bool)
    "empty quantile is nan" true
    (Float.is_nan (Metrics.hist_quantile Metrics.hist_empty 0.5));
  Alcotest.(check (float 0.0))
    "overflow rank maps to +Inf" infinity
    (Metrics.hist_quantile (Metrics.hist_of_values [| 1e300 |]) 0.5)

let test_hist_boundaries () =
  Alcotest.(check bool)
    "boundaries strictly increasing" true
    (let ok = ref true in
     for i = 1 to Metrics.n_buckets - 1 do
       if not (Metrics.bucket_le i > Metrics.bucket_le (i - 1)) then ok := false
     done;
     !ok);
  Alcotest.(check (float 0.0))
    "last boundary is +Inf" infinity
    (Metrics.bucket_le (Metrics.n_buckets - 1))

(* ------------------------------------------------------------------ *)
(* Prometheus exposition *)

let test_prometheus_golden () =
  let m = Metrics.create () in
  let c = Metrics.counter_in m "analysis.runs" in
  Metrics.incr c;
  Metrics.incr c;
  Metrics.incr c;
  Metrics.set (Metrics.gauge_in m "analysis.peak_heap_mb") 12.5;
  let s = Metrics.span_in m "analysis.analyze" in
  Metrics.record s 0.25;
  Metrics.record s 0.5;
  let expected =
    "# TYPE sdft_analysis_runs counter\n\
     sdft_analysis_runs 3\n\
     # TYPE sdft_analysis_peak_heap_mb gauge\n\
     sdft_analysis_peak_heap_mb 12.5\n\
     # TYPE sdft_analysis_analyze_seconds summary\n\
     sdft_analysis_analyze_seconds_sum 0.75\n\
     sdft_analysis_analyze_seconds_count 2\n"
  in
  Alcotest.(check string) "exposition" expected (Metrics.to_prometheus_in m)

(* Pull every `name_bucket{le="..."} n` line out of an exposition. *)
let bucket_lines text name =
  let prefix = name ^ "_bucket{le=\"" in
  List.filter_map
    (fun line ->
      if String.length line > String.length prefix
         && String.sub line 0 (String.length prefix) = prefix
      then
        let rest =
          String.sub line (String.length prefix)
            (String.length line - String.length prefix)
        in
        match String.index_opt rest '"' with
        | None -> None
        | Some q ->
          let le = String.sub rest 0 q in
          let count =
            int_of_string
              (String.trim
                 (String.sub rest (q + 2) (String.length rest - q - 2)))
          in
          Some (le, count)
      else None)
    (String.split_on_char '\n' text)

let scalar_line text name =
  List.find_map
    (fun line ->
      match String.index_opt line ' ' with
      | Some i when String.sub line 0 i = name ->
        Some (String.sub line (i + 1) (String.length line - i - 1))
      | _ -> None)
    (String.split_on_char '\n' text)

let test_prometheus_histogram_buckets () =
  let m = Metrics.create () in
  let h = Metrics.histogram_in m "cache.lookup_s" in
  let values = [ 1e-6; 3e-6; 3e-6; 0.02; 150.0; 1e300 ] in
  List.iter (Metrics.observe h) values;
  let text = Metrics.to_prometheus_in m in
  let buckets = bucket_lines text "sdft_cache_lookup_s" in
  Alcotest.(check int) "one line per bucket" Metrics.n_buckets
    (List.length buckets);
  (* cumulative and monotone, ending at +Inf with the total count *)
  let rec monotone prev = function
    | [] -> true
    | (_, c) :: rest -> c >= prev && monotone c rest
  in
  Alcotest.(check bool) "cumulative counts monotone" true (monotone 0 buckets);
  let last_le, last_count = List.nth buckets (List.length buckets - 1) in
  Alcotest.(check string) "last bucket is +Inf" "+Inf" last_le;
  Alcotest.(check int) "+Inf bucket holds everything" (List.length values)
    last_count;
  (* _sum/_count agree with the snapshot (and hence the JSON export,
     which reads the same snapshot) *)
  let snap = (Metrics.snapshot_in m).Metrics.histograms in
  let hist = List.assoc "cache.lookup_s" snap in
  Alcotest.(check (option string))
    "_count matches snapshot"
    (Some (string_of_int hist.Metrics.count))
    (scalar_line text "sdft_cache_lookup_s_count");
  (match scalar_line text "sdft_cache_lookup_s_sum" with
  | None -> Alcotest.fail "missing _sum line"
  | Some s ->
    Alcotest.(check (float 0.0)) "_sum matches snapshot" hist.Metrics.sum
      (float_of_string s));
  (* and the JSON export names the same count *)
  let json = Metrics.to_json_in m in
  let has_fragment fragment =
    let rec search i =
      i + String.length fragment <= String.length json
      && (String.sub json i (String.length fragment) = fragment
          || search (i + 1))
    in
    search 0
  in
  Alcotest.(check bool)
    "JSON export carries the same count" true
    (has_fragment (Printf.sprintf "\"count\": %d" hist.Metrics.count))

(* ------------------------------------------------------------------ *)
(* gauge_max under contention *)

let test_gauge_max_parallel () =
  let m = Metrics.create () in
  let g = Metrics.gauge_max_in m "peak" in
  let per_domain = 2000 in
  let domains =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            let rng = Rng.create (100 + d) in
            let local_max = ref neg_infinity in
            for _ = 1 to per_domain do
              let v = Rng.float rng *. 1000.0 in
              if v > !local_max then local_max := v;
              Metrics.set_max g v
            done;
            !local_max))
  in
  let expected =
    List.fold_left (fun acc d -> Float.max acc (Domain.join d)) neg_infinity
      domains
  in
  Alcotest.(check (float 0.0)) "max survives the race" expected
    (Metrics.gauge_value g)

(* ------------------------------------------------------------------ *)
(* Scoped contexts: two concurrent analyses share nothing *)

let counter_of snap name =
  match List.assoc_opt name snap.Metrics.counters with Some n -> n | None -> 0

let span_count_of snap name =
  match List.assoc_opt name snap.Metrics.spans with
  | Some (_, n) -> n
  | None -> 0

let test_concurrent_isolation () =
  (* Quiesce the default registries so any leak is visible. *)
  Metrics.reset ();
  Trace.reset ();
  Failpoint.clear_all ();
  let default_before = Metrics.snapshot () in
  let obs_a = Obs.create () and obs_b = Obs.create () in
  (* Arm a hot-path site in A only, with a trigger that never fires: the
     hit counter advances without perturbing the analysis. *)
  Failpoint.set_in obs_a.Obs.failpoints "mocus.expand"
    ~trigger:(Failpoint.Nth max_int) Failpoint.Raise;
  let run obs seed = Sdft_analysis.analyze ~obs (Gen_sdft.sd seed) in
  let da = Domain.spawn (fun () -> run obs_a 41) in
  let db = Domain.spawn (fun () -> run obs_b 42) in
  let ra = Domain.join da and rb = Domain.join db in
  Alcotest.(check bool)
    "both analyses produced totals" true
    (Float.is_finite ra.Sdft_analysis.total
     && Float.is_finite rb.Sdft_analysis.total);
  let sa = Metrics.snapshot_in obs_a.Obs.metrics
  and sb = Metrics.snapshot_in obs_b.Obs.metrics in
  (* Each context saw exactly its own run. *)
  Alcotest.(check int) "A: one run" 1 (counter_of sa "analysis.runs");
  Alcotest.(check int) "B: one run" 1 (counter_of sb "analysis.runs");
  Alcotest.(check int) "A: one quantification span" 1
    (span_count_of sa "analysis.quantification");
  Alcotest.(check int) "B: one quantification span" 1
    (span_count_of sb "analysis.quantification");
  Alcotest.(check int) "A: its own cutsets only"
    (List.length ra.Sdft_analysis.cutsets)
    (counter_of sa "analysis.cutsets_quantified");
  Alcotest.(check int) "B: its own cutsets only"
    (List.length rb.Sdft_analysis.cutsets)
    (counter_of sb "analysis.cutsets_quantified");
  (* The failpoint armed in A was exercised there and nowhere else. *)
  Alcotest.(check bool)
    "A's failpoint saw hits" true
    (Failpoint.hit_count_in obs_a.Obs.failpoints "mocus.expand" > 0);
  Alcotest.(check int) "B's registry silent" 0
    (Failpoint.hit_count_in obs_b.Obs.failpoints "mocus.expand");
  Alcotest.(check int) "default registry silent" 0
    (Failpoint.hit_count "mocus.expand");
  (* Traces stayed in their own sinks. *)
  Alcotest.(check bool)
    "A traced its own analyze span" true
    (List.mem_assoc "analysis.analyze" (Trace.aggregate_in obs_a.Obs.trace));
  Alcotest.(check bool)
    "B traced its own analyze span" true
    (List.mem_assoc "analysis.analyze" (Trace.aggregate_in obs_b.Obs.trace));
  (* And nothing bled into the process-global default context. *)
  let default_after = Metrics.snapshot () in
  let dump s =
    String.concat ", "
      (List.map (fun (n, v) -> Printf.sprintf "%s=%d" n v) s.Metrics.counters
      @ List.map
          (fun (n, v) -> Printf.sprintf "%s=%g" n v)
          s.Metrics.gauges
      @ List.map
          (fun (n, (sec, c)) -> Printf.sprintf "%s=%d/%g" n c sec)
          s.Metrics.spans
      @ List.map
          (fun (n, h) -> Printf.sprintf "%s#%d" n h.Metrics.count)
          s.Metrics.histograms)
  in
  if default_after <> default_before then
    Alcotest.failf "default metrics changed:\nbefore: %s\nafter:  %s"
      (dump default_before) (dump default_after);
  Alcotest.(check (list string)) "default trace untouched" []
    (List.map fst (Trace.aggregate ()))

(* ------------------------------------------------------------------ *)
(* Observability only observes: results are bit-identical whichever
   context is passed, with progress on or off *)

let test_bit_identity_across_contexts () =
  Metrics.reset ();
  let module A = Sdft_analysis in
  let run obs = A.analyze ~obs (Gen_sdft.sd 4242) in
  let baseline = A.analyze (Gen_sdft.sd 4242) in
  let fresh = run (Obs.create ()) in
  let progress_lines = ref 0 in
  let progress =
    Progress.create ~interval:0.0
      ~emit:(fun _ -> Stdlib.incr progress_lines)
      ~emit_end:(fun () -> ())
      ()
  in
  let with_progress = run (Obs.with_progress (Obs.create ()) progress) in
  let same a b =
    a.A.total = b.A.total
    && a.A.budget.A.lower = b.A.budget.A.lower
    && a.A.budget.A.upper = b.A.budget.A.upper
    && List.map (fun i -> i.A.probability) a.A.cutsets
       = List.map (fun i -> i.A.probability) b.A.cutsets
  in
  Alcotest.(check bool) "fresh context bit-identical" true (same baseline fresh);
  Alcotest.(check bool)
    "progress context bit-identical" true
    (same baseline with_progress);
  Alcotest.(check bool) "progress actually reported" true (!progress_lines > 0)

(* ------------------------------------------------------------------ *)
(* Progress rendering *)

let test_progress_rendering () =
  let lines = ref [] and ended = ref false in
  let p =
    Progress.create ~interval:0.0
      ~emit:(fun l -> lines := l :: !lines)
      ~emit_end:(fun () -> ended := true)
      ()
  in
  Progress.begin_phase p "quantification" ~total:4 ~cost_total:10.0 ();
  List.iter (fun c -> Progress.step p ~cost:c ()) [ 4.0; 3.0; 2.0; 1.0 ];
  Progress.tick p ~heap_mb:12.0;
  Progress.finish p;
  Alcotest.(check bool) "emitted lines" true (!lines <> []);
  Alcotest.(check bool) "finish called emit_end" true !ended;
  let contains hay needle =
    let rec search i =
      i + String.length needle <= String.length hay
      && (String.sub hay i (String.length needle) = needle || search (i + 1))
    in
    search 0
  in
  let final = List.hd !lines in
  Alcotest.(check bool) "final line names the phase" true
    (contains final "quantification");
  Alcotest.(check bool) "final line shows 4/4" true (contains final "4/4")

(* A resumed sweep reports checkpoint-skipped items separately from live
   work: the count segment stays done/total over the items actually run,
   with a "(+N checkpointed)" annotation for the journal-certified rest. *)
let test_progress_skipped_rendering () =
  let lines = ref [] in
  let p =
    Progress.create ~interval:0.0
      ~emit:(fun l -> lines := l :: !lines)
      ~emit_end:(fun () -> ())
      ()
  in
  Progress.begin_phase p "sweep" ~total:2 ~skipped:3 ~n_done:1 ();
  Progress.step p ();
  Progress.finish p;
  let contains hay needle =
    let rec search i =
      i + String.length needle <= String.length hay
      && (String.sub hay i (String.length needle) = needle || search (i + 1))
    in
    search 0
  in
  let final = List.hd !lines in
  Alcotest.(check bool) "shows live progress over run items" true
    (contains final "2/2");
  Alcotest.(check bool) "annotates checkpointed items" true
    (contains final "(+3 checkpointed)");
  (* A phase with nothing skipped renders without the annotation. *)
  let lines2 = ref [] in
  let q =
    Progress.create ~interval:0.0
      ~emit:(fun l -> lines2 := l :: !lines2)
      ~emit_end:(fun () -> ())
      ()
  in
  Progress.begin_phase q "sweep" ~total:1 ();
  Progress.step q ();
  Progress.finish q;
  Alcotest.(check bool) "no annotation without skips" true
    (not (contains (List.hd !lines2) "checkpointed"))

(* The default sink frames lines for its destination: CR-overwriting on a
   TTY, plain newline-terminated lines anywhere else — a captured log or
   CI pipe must never receive carriage returns. *)
let test_progress_rendered_modes () =
  let tty = Progress.rendered ~tty:true "phase 1/2" in
  Alcotest.(check bool) "tty framing leads with CR" true (tty.[0] = '\r');
  Alcotest.(check int) "tty framing pads to a fixed width" 80
    (String.length tty);
  Alcotest.(check bool) "tty framing has no newline" true
    (not (String.contains tty '\n'));
  Alcotest.(check string) "plain framing appends a newline" "phase 1/2\n"
    (Progress.rendered ~tty:false "phase 1/2");
  Alcotest.(check bool) "plain framing has no CR" true
    (not (String.contains (Progress.rendered ~tty:false "x") '\r'))

(* Drive the real default sink in both modes, capturing stderr through a
   temporary file. *)
let capture_stderr f =
  let path = Filename.temp_file "sdft_progress" ".log" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  flush stderr;
  let saved = Unix.dup Unix.stderr in
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 in
  Unix.dup2 fd Unix.stderr;
  Unix.close fd;
  Fun.protect
    ~finally:(fun () ->
      flush stderr;
      Unix.dup2 saved Unix.stderr;
      Unix.close saved)
    f;
  In_channel.with_open_bin path In_channel.input_all

let test_progress_sink_adapts () =
  let run ~tty =
    capture_stderr (fun () ->
        let p = Progress.create ~tty ~interval:0.0 () in
        Progress.begin_phase p "demo" ~total:2 ();
        Progress.step p ();
        Progress.finish p)
  in
  let on_tty = run ~tty:true in
  Alcotest.(check bool) "tty sink overwrites with CR" true
    (String.contains on_tty '\r');
  Alcotest.(check bool) "tty sink terminates the display" true
    (String.length on_tty > 0 && on_tty.[String.length on_tty - 1] = '\n');
  let plain = run ~tty:false in
  Alcotest.(check bool) "captured log is CR-free" true
    (not (String.contains plain '\r'));
  Alcotest.(check bool) "captured log lines are newline-terminated" true
    (String.length plain > 0 && plain.[String.length plain - 1] = '\n');
  Alcotest.(check bool) "captured log names the phase" true
    (let contains hay needle =
       let rec search i =
         i + String.length needle <= String.length hay
         && (String.sub hay i (String.length needle) = needle || search (i + 1))
       in
       search 0
     in
     contains plain "demo")

(* ------------------------------------------------------------------ *)
(* Trace aggregation determinism *)

let test_aggregate_deterministic () =
  let sink = Trace.create ~enabled:true () in
  Trace.with_span ~sink "beta" (fun () -> ());
  Trace.with_span ~sink "alpha" (fun () -> ());
  Trace.with_span ~sink "alpha" (fun () -> ());
  let names = List.map fst (Trace.aggregate_in sink) in
  Alcotest.(check (list string)) "sorted by name" [ "alpha"; "beta" ] names;
  let count name =
    match List.assoc_opt name (Trace.aggregate_in sink) with
    | Some (n, _) -> n
    | None -> 0
  in
  Alcotest.(check int) "alpha counted twice" 2 (count "alpha");
  Alcotest.(check int) "beta counted once" 1 (count "beta")

(* ------------------------------------------------------------------ *)
(* Crash-safe dumps *)

let with_temp_dir f =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "sdft_obs_%d_%d" (Unix.getpid ()) (Random.bits ()))
  in
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
        (Sys.readdir dir);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> f dir)

let test_atomic_write () =
  with_temp_dir @@ fun dir ->
  let path = Filename.concat dir "metrics.json" in
  Atomic_io.write_file path "first";
  Atomic_io.write_file path "second";
  Alcotest.(check string) "overwrite wins" "second"
    (In_channel.with_open_bin path In_channel.input_all);
  (* No temporary droppings left behind. *)
  Alcotest.(check (list string)) "directory holds only the target"
    [ "metrics.json" ]
    (List.sort String.compare (Array.to_list (Sys.readdir dir)));
  (* A failing rename (destination is a directory) leaves the original
     world intact and cleans up its temp file. *)
  let blocked = Filename.concat dir "blocked" in
  Unix.mkdir blocked 0o755;
  (try
     Atomic_io.write_file blocked "overwrite a directory";
     Alcotest.fail "expected Sys_error"
   with Sys_error _ -> ());
  Alcotest.(check bool) "destination untouched" true (Sys.is_directory blocked);
  Alcotest.(check (list string)) "no temp residue after failure"
    [ "blocked"; "metrics.json" ]
    (List.sort String.compare (Array.to_list (Sys.readdir dir)));
  Unix.rmdir blocked

let test_metrics_write_file_formats () =
  with_temp_dir @@ fun dir ->
  let m = Metrics.create () in
  Metrics.incr (Metrics.counter_in m "runs");
  Metrics.observe (Metrics.histogram_in m "lat") 0.01;
  let json_path = Filename.concat dir "m.json" in
  let prom_path = Filename.concat dir "m.prom" in
  Metrics.write_file_in m json_path;
  Metrics.write_file_in ~format:Metrics.Prom_format m prom_path;
  Alcotest.(check string) "json file is export plus newline"
    (Metrics.to_json_in m ^ "\n")
    (In_channel.with_open_bin json_path In_channel.input_all);
  Alcotest.(check string) "prom file is the exposition"
    (Metrics.to_prometheus_in m)
    (In_channel.with_open_bin prom_path In_channel.input_all)

(* ------------------------------------------------------------------ *)

let qcheck = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "obs"
    [
      ( "histogram",
        qcheck [ qcheck_merge_assoc; qcheck_merge_comm; qcheck_count_conservation ]
        @ [
            Alcotest.test_case "quantile brackets observation" `Quick
              test_hist_quantile_brackets;
            Alcotest.test_case "bucket boundaries" `Quick test_hist_boundaries;
          ] );
      ( "prometheus",
        [
          Alcotest.test_case "golden exposition" `Quick test_prometheus_golden;
          Alcotest.test_case "cumulative histogram buckets" `Quick
            test_prometheus_histogram_buckets;
        ] );
      ( "contexts",
        [
          Alcotest.test_case "gauge_max under contention" `Quick
            test_gauge_max_parallel;
          Alcotest.test_case "two concurrent analyses are isolated" `Quick
            test_concurrent_isolation;
          Alcotest.test_case "results bit-identical across contexts" `Quick
            test_bit_identity_across_contexts;
        ] );
      ( "progress",
        [
          Alcotest.test_case "rendering and finish" `Quick
            test_progress_rendering;
          Alcotest.test_case "checkpoint-skipped annotation" `Quick
            test_progress_skipped_rendering;
          Alcotest.test_case "tty vs plain framing" `Quick
            test_progress_rendered_modes;
          Alcotest.test_case "default sink adapts to non-TTY stderr" `Quick
            test_progress_sink_adapts;
        ] );
      ( "trace",
        [
          Alcotest.test_case "aggregate is deterministic" `Quick
            test_aggregate_deterministic;
        ] );
      ( "dumps",
        [
          Alcotest.test_case "atomic write" `Quick test_atomic_write;
          Alcotest.test_case "metrics write_file formats" `Quick
            test_metrics_write_file_formats;
        ] );
    ]

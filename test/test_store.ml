(* Tests for the persistent quantification store: the Store framing layer
   (truncation, corruption, stamp invalidation, reader/writer locking) and
   the Quant_cache disk tier built on top of it.

   The robustness invariant exercised throughout: whatever happens to the
   store file — torn tails, flipped bytes, stale solver stamps, concurrent
   readers — the analysis result is bit-identical to an uncached run. A
   damaged store may cost re-solves; it must never change a certified
   interval. *)

module Store = Sdft_util.Store
module Failpoint = Sdft_util.Failpoint

let temp_store () =
  let path = Filename.temp_file "sdft_test" ".store" in
  Sys.remove path;
  path

let with_store f =
  let path = temp_store () in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let write_records path stamp records =
  let s, loaded = Store.open_ ~stamp path in
  Alcotest.(check (list string)) "fresh store is empty" [] loaded;
  List.iter (fun r -> ignore (Store.append s r)) records;
  Store.close s

let read_records path stamp =
  let s, loaded = Store.open_ ~stamp path in
  Store.close s;
  loaded

let records = [ "alpha"; "beta-record"; "gamma with spaces"; ""; "delta" ]

(* Store framing *)

let test_store_round_trip () =
  with_store (fun path ->
      write_records path "stamp/1" records;
      Alcotest.(check (list string))
        "records survive reopen" records
        (read_records path "stamp/1"))

let test_store_truncated_tail () =
  with_store (fun path ->
      write_records path "stamp/1" records;
      (* Chop a few bytes off the last frame: the torn record must be
         discarded, every earlier one preserved. *)
      let size = (Unix.stat path).Unix.st_size in
      let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
      Unix.ftruncate fd (size - 3);
      Unix.close fd;
      Alcotest.(check (list string))
        "valid prefix survives truncation"
        [ "alpha"; "beta-record"; "gamma with spaces"; "" ]
        (read_records path "stamp/1");
      (* The writer repairs the tail: appending after the truncation leaves
         a fully valid file again. *)
      let s, _ = Store.open_ ~stamp:"stamp/1" path in
      Alcotest.(check bool) "writer mode" true (Store.mode s = Store.Writer);
      ignore (Store.append s "epsilon");
      Store.close s;
      Alcotest.(check (list string))
        "repaired tail"
        [ "alpha"; "beta-record"; "gamma with spaces"; ""; "epsilon" ]
        (read_records path "stamp/1"))

(* A read-only snapshot opened while a writer is mid-append must see a
   valid prefix of the log — flushed frames exactly, and never a torn
   frame even if half-written bytes are already on disk. *)
let test_store_reader_snapshot_of_active_writer () =
  with_store (fun path ->
      let w, _ = Store.open_ ~batch:1 ~stamp:"stamp/1" path in
      Fun.protect ~finally:(fun () -> Store.close w) @@ fun () ->
      Alcotest.(check bool) "first handle writes" true
        (Store.mode w = Store.Writer);
      ignore (Store.append w "one");
      ignore (Store.append w "two");
      (* Snapshot while the writer holds the lock: read-only, flushed
         prefix visible. *)
      let r, loaded = Store.open_ ~stamp:"stamp/1" path in
      Alcotest.(check bool) "snapshot is read-only" true
        (Store.mode r = Store.Reader);
      Alcotest.(check (list string)) "snapshot sees the flushed prefix"
        [ "one"; "two" ] loaded;
      Store.close r;
      ignore (Store.append w "three");
      (* Simulate catching the writer mid-write: raw half-frame bytes on
         the tail (a length header promising more than exists). The
         snapshot must stop at the last whole frame, not surface garbage
         — and must not truncate the live writer's file. *)
      let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_APPEND ] 0o644 in
      let torn = "\xff\xff\xff\x7f torn frame" in
      ignore (Unix.write_substring fd torn 0 (String.length torn));
      Unix.close fd;
      let size_before = (Unix.stat path).Unix.st_size in
      let r2, loaded2 = Store.open_ ~stamp:"stamp/1" path in
      Alcotest.(check (list string))
        "torn tail invisible, whole frames intact"
        [ "one"; "two"; "three" ] loaded2;
      Store.close r2;
      Alcotest.(check int) "reader did not truncate the writer's file"
        size_before
        (Unix.stat path).Unix.st_size)

let test_store_flipped_byte () =
  with_store (fun path ->
      write_records path "stamp/1" records;
      (* Flip one byte inside the payload of the fourth frame (the empty
         record contributes an 8-byte frame; aim into "gamma..."). The CRC
         catches it and scanning stops there. *)
      let content = In_channel.with_open_bin path In_channel.input_all in
      let needle = "gamma" in
      let pos =
        let rec find i =
          if String.sub content i (String.length needle) = needle then i
          else find (i + 1)
        in
        find 0
      in
      let corrupted = Bytes.of_string content in
      Bytes.set corrupted pos (Char.chr (Char.code content.[pos] lxor 0x40));
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_bytes oc corrupted);
      Alcotest.(check (list string))
        "records before the corruption survive"
        [ "alpha"; "beta-record" ]
        (read_records path "stamp/1"))

let test_store_stamp_mismatch () =
  with_store (fun path ->
      write_records path "stamp/1" records;
      (* A different stamp invalidates the whole file... *)
      Alcotest.(check (list string))
        "no records under a new stamp" []
        (read_records path "stamp/2");
      (* ...and the writer has rewritten it under the new stamp, so the old
         stamp now yields nothing either. *)
      Alcotest.(check (list string))
        "old stamp invalidated" []
        (read_records path "stamp/1");
      write_records path "stamp/2" [ "fresh" ];
      Alcotest.(check (list string))
        "new-stamp records persist" [ "fresh" ]
        (read_records path "stamp/2"))

let test_store_reader_sharing () =
  with_store (fun path ->
      let writer, _ = Store.open_ ~stamp:"stamp/1" path in
      ignore (Store.append writer "one");
      ignore (Store.append writer "two");
      Store.flush writer;
      ignore (Store.append writer "unflushed");
      (* A second same-path handle while the writer is live degrades to a
         read-only snapshot of the flushed records. *)
      let reader, snapshot = Store.open_ ~stamp:"stamp/1" path in
      Alcotest.(check bool) "reader mode" true (Store.mode reader = Store.Reader);
      Alcotest.(check (list string))
        "snapshot holds flushed records" [ "one"; "two" ] snapshot;
      Alcotest.(check bool)
        "reader appends are dropped" false
        (Store.append reader "stowaway");
      Store.close reader;
      Store.close writer;
      Alcotest.(check (list string))
        "writer records all land" [ "one"; "two"; "unflushed" ]
        (read_records path "stamp/1"))

let test_store_crc32_vector () =
  (* IEEE CRC-32 known-answer test ("123456789" -> 0xCBF43926). *)
  Alcotest.(check int)
    "check vector" 0xCBF43926
    (Store.crc32 "123456789")

(* Quant_cache disk tier: every degraded store still yields bit-identical
   analysis results. *)

let check_same_result label (a : Sdft_analysis.result)
    (b : Sdft_analysis.result) =
  Alcotest.(check bool)
    (label ^ ": total") true
    (a.Sdft_analysis.total = b.Sdft_analysis.total);
  Alcotest.(check bool)
    (label ^ ": lower") true
    (a.Sdft_analysis.budget.Sdft_analysis.lower
    = b.Sdft_analysis.budget.Sdft_analysis.lower);
  Alcotest.(check bool)
    (label ^ ": upper") true
    (a.Sdft_analysis.budget.Sdft_analysis.upper
    = b.Sdft_analysis.budget.Sdft_analysis.upper)

let test_cache_warm_reload_identical () =
  with_store (fun path ->
      let sd = Pumps.sd_tree () in
      let baseline = Sdft_analysis.analyze sd in
      let cold = Quant_cache.open_disk path in
      let r_cold = Sdft_analysis.analyze ~cache:cold sd in
      Quant_cache.close cold;
      let stats =
        match Quant_cache.disk_stats cold with
        | Some s -> s
        | None -> Alcotest.fail "disk tier missing after open_disk"
      in
      Alcotest.(check bool) "cold run appends" true (stats.appends > 0);
      let warm = Quant_cache.open_disk path in
      let r_warm = Sdft_analysis.analyze ~cache:warm sd in
      Quant_cache.close warm;
      let wstats = Option.get (Quant_cache.disk_stats warm) in
      Alcotest.(check int)
        "warm load sees every append" stats.appends wstats.entries_loaded;
      Alcotest.(check int) "warm run never misses" 0 wstats.disk_misses;
      Alcotest.(check bool) "warm run hits disk" true (wstats.disk_hits > 0);
      check_same_result "cold vs uncached" r_cold baseline;
      check_same_result "warm vs uncached" r_warm baseline)

let damaged_store_still_identical damage =
  with_store (fun path ->
      let sd = Pumps.sd_tree () in
      let baseline = Sdft_analysis.analyze sd in
      let cold = Quant_cache.open_disk path in
      ignore (Sdft_analysis.analyze ~cache:cold sd);
      Quant_cache.close cold;
      damage path;
      let warm = Quant_cache.open_disk path in
      let r = Sdft_analysis.analyze ~cache:warm sd in
      Quant_cache.close warm;
      check_same_result "damaged store" r baseline)

let test_cache_truncated_store_identical () =
  damaged_store_still_identical (fun path ->
      let size = (Unix.stat path).Unix.st_size in
      let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
      Unix.ftruncate fd (size / 2);
      Unix.close fd)

let test_cache_corrupted_store_identical () =
  damaged_store_still_identical (fun path ->
      let content = In_channel.with_open_bin path In_channel.input_all in
      let b = Bytes.of_string content in
      (* Flip a byte in the middle of the record area, past the header. *)
      let pos = Bytes.length b / 2 in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0xFF));
      Out_channel.with_open_bin path (fun oc -> Out_channel.output_bytes oc b))

let test_cache_stamp_mismatch_identical () =
  damaged_store_still_identical (fun path ->
      (* Rewrite the file under a foreign stamp: Quant_cache must treat it
         as empty rather than replay foreign records. *)
      let s, _ = Store.open_ ~stamp:"some-other-solver/0" path in
      ignore (Store.append s "not a cache record at all");
      Store.close s)

let test_cache_readonly_sharing () =
  with_store (fun path ->
      let sd = Pumps.sd_tree () in
      let baseline = Sdft_analysis.analyze sd in
      let writer = Quant_cache.open_disk path in
      ignore (Sdft_analysis.analyze ~cache:writer sd);
      Quant_cache.flush writer;
      (* Second handle while the writer is open: read-only snapshot, but the
         analysis through it is still exact. *)
      let reader = Quant_cache.open_disk path in
      let rstats = Option.get (Quant_cache.disk_stats reader) in
      Alcotest.(check bool) "reader is read-only" true rstats.read_only;
      Alcotest.(check bool)
        "reader sees flushed entries" true
        (rstats.entries_loaded > 0);
      let r = Sdft_analysis.analyze ~cache:reader sd in
      let rstats = Option.get (Quant_cache.disk_stats reader) in
      Alcotest.(check int) "reader never appends" 0 rstats.appends;
      Quant_cache.close reader;
      Quant_cache.close writer;
      check_same_result "read-only sharing" r baseline)

let test_cache_open_failure_degrades () =
  Failpoint.configure_string "store.open=raise";
  Fun.protect ~finally:Failpoint.clear_all (fun () ->
      let sd = Pumps.sd_tree () in
      let baseline = Sdft_analysis.analyze sd in
      let cache = Quant_cache.open_disk "/nonexistent/dir/q.store" in
      Alcotest.(check bool)
        "degrades to memory-only" true
        (Quant_cache.disk_stats cache = None);
      let r = Sdft_analysis.analyze ~cache sd in
      Quant_cache.close cache;
      check_same_result "open failure" r baseline)

let test_cache_append_failure_degrades () =
  with_store (fun path ->
      let sd = Pumps.sd_tree () in
      let baseline = Sdft_analysis.analyze sd in
      Failpoint.configure_string "store.append=raise";
      Fun.protect ~finally:Failpoint.clear_all (fun () ->
          let cache = Quant_cache.open_disk path in
          let r = Sdft_analysis.analyze ~cache sd in
          Quant_cache.close cache;
          let stats = Option.get (Quant_cache.disk_stats cache) in
          Alcotest.(check bool)
            "tier reported broken" true
            (stats.disk_error <> None);
          check_same_result "append failure" r baseline))

(* Circuit breaker: an injected append failure trips the breaker; after
   the deterministic cooldown the half-open probe heals the tier in place
   — same process, no reopen by the caller — and backfills every record
   that failed or was skipped while the breaker was open. Pumps analysis
   appends exactly 3 records, so with threshold 1 and cooldown 1 the walk
   is: append 1 fails (trip), append 2 skipped (cooldown ends), append 3
   probes and recovers. *)
let test_cache_breaker_recovers_in_place () =
  with_store (fun path ->
      let sd = Pumps.sd_tree () in
      let baseline = Sdft_analysis.analyze sd in
      Failpoint.configure_string "store.append=raise@first:1";
      Fun.protect ~finally:Failpoint.clear_all (fun () ->
          let cache =
            Quant_cache.open_disk ~breaker_threshold:1 ~breaker_cooldown:1
              path
          in
          let r = Sdft_analysis.analyze ~cache sd in
          check_same_result "result unharmed by the breaker cycle" r baseline;
          let s = Option.get (Quant_cache.disk_stats cache) in
          Alcotest.(check string) "breaker closed again" "closed"
            s.Quant_cache.breaker;
          Alcotest.(check int) "tripped once" 1 s.Quant_cache.breaker_opens;
          Alcotest.(check int) "probed once" 1 s.Quant_cache.breaker_probes;
          Alcotest.(check int) "recovered once" 1
            s.Quant_cache.breaker_recoveries;
          Alcotest.(check (option string)) "error cleared by the recovery"
            None s.Quant_cache.disk_error;
          Alcotest.(check int) "failed and skipped appends backfilled" 3
            s.Quant_cache.appends;
          Quant_cache.close cache;
          (* Nothing was lost: a warm reopen loads every record, including
             the two that originally failed or were skipped. *)
          let warm = Quant_cache.open_disk path in
          let ws = Option.get (Quant_cache.disk_stats warm) in
          Alcotest.(check int) "every entry reached the disk" 3
            ws.Quant_cache.entries_loaded;
          Quant_cache.close warm))

(* A persistent fault leaves the breaker open with the failure recorded —
   the signal [report_disk_cache] and the server surface as degraded. *)
let test_cache_breaker_stays_open_under_persistent_fault () =
  with_store (fun path ->
      let sd = Pumps.sd_tree () in
      Failpoint.configure_string "store.append=raise";
      Fun.protect ~finally:Failpoint.clear_all (fun () ->
          let cache =
            Quant_cache.open_disk ~breaker_threshold:1 ~breaker_cooldown:1
              path
          in
          ignore (Sdft_analysis.analyze ~cache sd);
          let s = Option.get (Quant_cache.disk_stats cache) in
          Alcotest.(check bool) "breaker not closed" true
            (s.Quant_cache.breaker <> "closed");
          Alcotest.(check bool) "failure recorded" true
            (s.Quant_cache.disk_error <> None);
          Alcotest.(check int) "nothing appended" 0 s.Quant_cache.appends;
          Quant_cache.close cache))

(* Checkpoint journal: the sweep-level crash-safety layer on the same
   store framing. *)

let sweep_options_at horizons =
  List.map
    (fun horizon -> { Sdft_analysis.default_options with horizon })
    horizons

let sweep_horizons = [ 6.0; 12.0; 18.0 ]

let check_point_matches_golden label (p : Checkpoint.point)
    (g : Sdft_analysis.sweep_point) =
  Alcotest.(check bool) (label ^ ": total bit-identical") true
    (p.Checkpoint.pt_total = g.Sdft_analysis.sweep_result.Sdft_analysis.total);
  Alcotest.(check bool) (label ^ ": lower bit-identical") true
    (p.Checkpoint.pt_lower
    = g.Sdft_analysis.sweep_result.Sdft_analysis.budget.Sdft_analysis.lower);
  Alcotest.(check bool) (label ^ ": upper bit-identical") true
    (p.Checkpoint.pt_upper
    = g.Sdft_analysis.sweep_result.Sdft_analysis.budget.Sdft_analysis.upper);
  Alcotest.(check int) (label ^ ": cutsets")
    g.Sdft_analysis.sweep_result.Sdft_analysis.n_cutsets
    p.Checkpoint.pt_n_cutsets

let test_checkpoint_point_codec () =
  let roundtrip p =
    match Checkpoint.decode_point (Checkpoint.encode_point p) with
    | None -> Alcotest.fail "point failed to decode"
    | Some p' -> Alcotest.(check bool) "point round-trips" true (p = p')
  in
  roundtrip
    {
      Checkpoint.pt_key = "abc123";
      pt_horizon = 24.0;
      pt_total = 3.5216110815998225e-04;
      pt_lower = 1.9787536570744333e-04;
      pt_upper = 3.5216110916598228e-04;
      pt_vacuous = false;
      pt_n_cutsets = 5;
      pt_n_dynamic = 3;
      pt_degraded = None;
    };
  (* The degradation description is free text — it may contain the field
     separator and must still round-trip. *)
  roundtrip
    {
      Checkpoint.pt_key = "k";
      pt_horizon = 1e-300;
      pt_total = Float.min_float;
      pt_lower = 0.0;
      pt_upper = 1.0;
      pt_vacuous = true;
      pt_n_cutsets = 0;
      pt_n_dynamic = 0;
      pt_degraded = Some "deadline expired | 3 fallbacks | cutoff";
    };
  Alcotest.(check (option Alcotest.reject)) "garbage rejects" None
    (Checkpoint.decode_point "p|not|a|point")

let test_checkpoint_resume_bit_identical () =
  let sd = Pumps.sd_tree () in
  let golden, _ = Sdft_analysis.sweep sd (sweep_options_at sweep_horizons) in
  with_store (fun jpath ->
      (* Interrupted run: only the first point completes before the
         "crash" (we simply stop driving the sweep). *)
      let j = Checkpoint.open_ jpath in
      let _ =
        Sdft_analysis.sweep_checkpointed ~journal:j ~resume:false sd
          (sweep_options_at [ List.hd sweep_horizons ])
      in
      Checkpoint.close j;
      (* Resume over the full horizon set. *)
      let j2 = Checkpoint.open_ jpath in
      Alcotest.(check int) "one certified point in the journal" 1
        (Checkpoint.n_points j2);
      Alcotest.(check bool) "warm entries in the journal" true
        (Checkpoint.entries j2 <> []);
      let items, cache =
        Sdft_analysis.sweep_checkpointed ~journal:j2 ~resume:true sd
          (sweep_options_at sweep_horizons)
      in
      Checkpoint.close j2;
      (match (items, golden) with
      | ( [ Sdft_analysis.Sweep_skipped p; Sdft_analysis.Sweep_run b;
            Sdft_analysis.Sweep_run c ],
          [ g1; g2; g3 ] ) ->
        check_point_matches_golden "skipped point" p g1;
        Alcotest.(check bool) "second point bit-identical" true
          (b.Sdft_analysis.sweep_result.Sdft_analysis.total
          = g2.Sdft_analysis.sweep_result.Sdft_analysis.total);
        Alcotest.(check bool) "third point bit-identical" true
          (c.Sdft_analysis.sweep_result.Sdft_analysis.total
          = g3.Sdft_analysis.sweep_result.Sdft_analysis.total)
      | _ ->
        Alcotest.failf "expected skip+run+run, got %d items"
          (List.length items));
      (* The resumed run only quantified the two unfinished points. *)
      Alcotest.(check int) "only unfinished points quantified" 6
        (Quant_cache.misses cache))

let test_checkpoint_torn_tail_reruns_last_point () =
  let sd = Pumps.sd_tree () in
  let golden, _ = Sdft_analysis.sweep sd (sweep_options_at sweep_horizons) in
  with_store (fun jpath ->
      let j = Checkpoint.open_ jpath in
      let _ =
        Sdft_analysis.sweep_checkpointed ~journal:j ~resume:false sd
          (sweep_options_at [ List.hd sweep_horizons ])
      in
      Checkpoint.close j;
      (* SIGKILL mid-write: the last frame (the point record) is torn. *)
      let size = (Unix.stat jpath).Unix.st_size in
      let fd = Unix.openfile jpath [ Unix.O_WRONLY ] 0o644 in
      Unix.ftruncate fd (size - 3);
      Unix.close fd;
      let j2 = Checkpoint.open_ jpath in
      Alcotest.(check int) "torn point certificate discarded" 0
        (Checkpoint.n_points j2);
      let items, _ =
        Sdft_analysis.sweep_checkpointed ~journal:j2 ~resume:true sd
          (sweep_options_at sweep_horizons)
      in
      Checkpoint.close j2;
      (* Every point re-runs (the torn certificate cannot be trusted), but
         the surviving cache entries still make the replay bit-identical. *)
      List.iter2
        (fun item (g : Sdft_analysis.sweep_point) ->
          match item with
          | Sdft_analysis.Sweep_run p ->
            Alcotest.(check bool) "re-run point bit-identical" true
              (p.Sdft_analysis.sweep_result.Sdft_analysis.total
              = g.Sdft_analysis.sweep_result.Sdft_analysis.total)
          | Sdft_analysis.Sweep_skipped _ ->
            Alcotest.fail "no point should be trusted after the torn tail")
        items golden)

(* Warm-start export/seed (the manifest payload path). *)

let test_cache_export_seed () =
  let sd = Pumps.sd_tree () in
  let a = Quant_cache.create () in
  let r1 = Sdft_analysis.analyze ~cache:a sd in
  let exported = Quant_cache.export a in
  Alcotest.(check bool) "exports entries" true (exported <> []);
  let b = Quant_cache.create () in
  Alcotest.(check int)
    "all entries seed" (List.length exported)
    (Quant_cache.seed b exported);
  Alcotest.(check int) "re-seeding adds nothing" 0 (Quant_cache.seed b exported);
  let r2 = Sdft_analysis.analyze ~cache:b sd in
  Alcotest.(check int) "seeded run never misses" 0 (Quant_cache.misses b);
  check_same_result "seeded" r2 r1

(* Manifest round-trip and diff. *)

let test_manifest_round_trip () =
  let sd = Pumps.sd_tree () in
  let options = Sdft_analysis.default_options in
  let cache = Quant_cache.create () in
  let r = Sdft_analysis.analyze ~options ~cache sd in
  let m = Manifest.of_result ~cache sd options r in
  Alcotest.(check bool) "stamp matches" true (Manifest.stamp_matches m);
  let path = Filename.temp_file "sdft_test" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Manifest.save path m;
      match Manifest.load path with
      | Error e -> Alcotest.failf "manifest reload failed: %s" e
      | Ok m' ->
        Alcotest.(check bool) "total round-trips" true (m'.Manifest.total = m.Manifest.total);
        Alcotest.(check bool) "bounds round-trip" true
          (m'.Manifest.lower = m.Manifest.lower
          && m'.Manifest.upper = m.Manifest.upper);
        Alcotest.(check int) "cutsets round-trip"
          (List.length m.Manifest.cutsets)
          (List.length m'.Manifest.cutsets);
        Alcotest.(check int) "cache entries round-trip"
          (List.length m.Manifest.cache_entries)
          (List.length m'.Manifest.cache_entries);
        List.iter2
          (fun (a : Manifest.cutset_record) (b : Manifest.cutset_record) ->
            Alcotest.(check (list string)) "events" a.Manifest.events b.Manifest.events;
            Alcotest.(check bool) "probability bit-exact" true
              (a.Manifest.q.Cutset_model.probability
              = b.Manifest.q.Cutset_model.probability))
          m.Manifest.cutsets m'.Manifest.cutsets)

let test_manifest_diff_self_empty () =
  let sd = Pumps.sd_tree () in
  let options = Sdft_analysis.default_options in
  let cache = Quant_cache.create () in
  let r = Sdft_analysis.analyze ~options ~cache sd in
  let m = Manifest.of_result ~cache sd options r in
  (* Diff against a warm re-run of the same model: nothing changed, nothing
     requantified. *)
  let seeded = Quant_cache.create () in
  ignore (Quant_cache.seed seeded m.Manifest.cache_entries);
  let r2 = Sdft_analysis.analyze ~options ~cache:seeded sd in
  let d = Manifest.diff m sd r2 in
  Alcotest.(check int) "no moved cutsets" 0 (List.length d.Manifest.entries);
  Alcotest.(check int) "nothing requantified" 0 d.Manifest.n_requantified;
  Alcotest.(check int) "all cutsets unchanged"
    (List.length m.Manifest.cutsets)
    d.Manifest.n_unchanged

let test_manifest_diff_detects_change () =
  let options = Sdft_analysis.default_options in
  let sd = Pumps.sd_tree () in
  let cache = Quant_cache.create () in
  let r = Sdft_analysis.analyze ~options ~cache sd in
  let m = Manifest.of_result ~cache sd options r in
  (* Re-analyze at a different horizon: every dynamic cutset moves. *)
  let options2 = { options with Sdft_analysis.horizon = 48.0 } in
  let r2 = Sdft_analysis.analyze ~options:options2 sd in
  let d = Manifest.diff m sd r2 in
  Alcotest.(check bool) "some cutsets moved" true (d.Manifest.entries <> []);
  Alcotest.(check bool) "totals differ" true
    (d.Manifest.old_total <> d.Manifest.new_total);
  List.iter
    (fun (e : Manifest.diff_entry) ->
      match e.Manifest.d_change with
      | Manifest.Moved (o, n) ->
        Alcotest.(check bool) "moved probabilities differ" true (o <> n)
      | Manifest.Appeared _ | Manifest.Disappeared _ ->
        Alcotest.fail "same model: no cutset should appear or disappear")
    d.Manifest.entries

(* Record codec round-trip. *)

let entry_gen =
  QCheck.Gen.(
    map
      (fun (prob, states, transitions, steps) ->
        { Quant_cache.e_prob = prob; e_states = states;
          e_transitions = transitions; e_steps = steps })
      (quad (float_bound_inclusive 1.0) (int_bound 100_000)
         (int_bound 1_000_000) (int_bound 10_000)))

let key_gen =
  (* Keys are digests plus printf-formatted parameters, but the codec must
     not care: exercise it with arbitrary bytes except newline (records are
     framed, not line-delimited, so even newlines are fine — include them). *)
  QCheck.Gen.(string_size ~gen:(map Char.chr (int_range 1 255)) (1 -- 80))

let prop_record_codec_round_trip =
  QCheck.Test.make ~name:"record codec round-trips" ~count:500
    (QCheck.make
       QCheck.Gen.(pair key_gen entry_gen)
       ~print:(fun (k, e) ->
         Printf.sprintf "key=%S prob=%h states=%d" k e.Quant_cache.e_prob
           e.Quant_cache.e_states))
    (fun (key, e) ->
      match Quant_cache.decode_record (Quant_cache.encode_record key e) with
      | None -> false
      | Some (k', e') ->
        k' = key
        && e'.Quant_cache.e_prob = e.Quant_cache.e_prob
        && e'.Quant_cache.e_states = e.Quant_cache.e_states
        && e'.Quant_cache.e_transitions = e.Quant_cache.e_transitions
        && e'.Quant_cache.e_steps = e.Quant_cache.e_steps)

let prop_decode_total =
  QCheck.Test.make ~name:"decode_record never raises" ~count:500
    (QCheck.make
       QCheck.Gen.(string_size ~gen:(map Char.chr (int_bound 255)) (0 -- 60))
       ~print:(Printf.sprintf "%S"))
    (fun s ->
      match Quant_cache.decode_record s with Some _ | None -> true)

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "store"
    [
      ( "framing",
        [
          Alcotest.test_case "round trip" `Quick test_store_round_trip;
          Alcotest.test_case "truncated tail" `Quick test_store_truncated_tail;
          Alcotest.test_case "reader snapshot of active writer" `Quick
            test_store_reader_snapshot_of_active_writer;
          Alcotest.test_case "flipped byte" `Quick test_store_flipped_byte;
          Alcotest.test_case "stamp mismatch" `Quick test_store_stamp_mismatch;
          Alcotest.test_case "reader sharing" `Quick test_store_reader_sharing;
          Alcotest.test_case "crc32 vector" `Quick test_store_crc32_vector;
        ] );
      ( "disk cache",
        [
          Alcotest.test_case "warm reload identical" `Quick
            test_cache_warm_reload_identical;
          Alcotest.test_case "truncated store identical" `Quick
            test_cache_truncated_store_identical;
          Alcotest.test_case "corrupted store identical" `Quick
            test_cache_corrupted_store_identical;
          Alcotest.test_case "stamp mismatch identical" `Quick
            test_cache_stamp_mismatch_identical;
          Alcotest.test_case "read-only sharing" `Quick
            test_cache_readonly_sharing;
          Alcotest.test_case "open failure degrades" `Quick
            test_cache_open_failure_degrades;
          Alcotest.test_case "append failure degrades" `Quick
            test_cache_append_failure_degrades;
          Alcotest.test_case "breaker recovers in place" `Quick
            test_cache_breaker_recovers_in_place;
          Alcotest.test_case "breaker stays open under persistent fault"
            `Quick test_cache_breaker_stays_open_under_persistent_fault;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "point codec round-trip" `Quick
            test_checkpoint_point_codec;
          Alcotest.test_case "resume bit-identical" `Quick
            test_checkpoint_resume_bit_identical;
          Alcotest.test_case "torn tail re-runs the last point" `Quick
            test_checkpoint_torn_tail_reruns_last_point;
        ] );
      ( "warm start",
        [
          Alcotest.test_case "export/seed" `Quick test_cache_export_seed;
          Alcotest.test_case "manifest round trip" `Quick
            test_manifest_round_trip;
          Alcotest.test_case "diff of identical run" `Quick
            test_manifest_diff_self_empty;
          Alcotest.test_case "diff detects change" `Quick
            test_manifest_diff_detects_change;
        ] );
      ("codec", qc [ prop_record_codec_round_trip; prop_decode_total ]);
    ]

(* Differential suite: the importance-sampling oracle against the exact
   product semantics, and against its own crude Monte-Carlo special case,
   on a fixed population of randomly generated small models.

   Every model is small enough for [Sdft_product.solve] to give the exact
   Section III-C probability, so the importance-sampling estimator — a
   completely independent computation path (sampling + likelihood
   reweighting vs uniformized transient analysis) — must bracket it with
   its confidence interval. Seeds are fixed, so these are deterministic
   regression tests, not flaky statistical ones: the tolerances below were
   chosen once against the expected 99% coverage and then frozen. *)

let horizon = 8.0

let trials = 20_000

(* 20 fixed generator seeds; a model whose product chain is too large for
   the exact solver is skipped (the bound protects the oracle, not us). *)
let seeds = [ 3; 7; 11; 19; 23; 31; 42; 57; 64; 71; 88; 99; 104; 123; 151; 208; 313; 404; 512; 777 ]

let exact_of sd =
  match Sdft_product.solve sd ~horizon with
  | exact -> Some exact
  | exception Sdft_product.Too_many_states _ -> None

let is_options seed =
  { Rare_event.default_options with trials; batch = 1024; seed }

(* IS 99% confidence interval (plus one extra standard error of slack for
   the expected handful of >2.58-sigma draws among 20 models) contains the
   exact product probability. *)
let test_is_ci_contains_exact () =
  let checked = ref 0 in
  List.iter
    (fun seed ->
      let sd = Gen_sdft.sd seed in
      match exact_of sd with
      | None -> ()
      | Some exact ->
        incr checked;
        let e = Rare_event.run ~options:(is_options seed) sd ~horizon in
        let lo, hi = Rare_event.confidence ~z:Rare_event.z99 e in
        let slack = e.Rare_event.std_error +. 1e-9 in
        if exact < lo -. slack || exact > hi +. slack then
          Alcotest.failf
            "seed %d: exact %.6e outside IS 99%% CI [%.6e, %.6e] (se %.2e)"
            seed exact lo hi e.Rare_event.std_error)
    seeds;
  if !checked < 15 then
    Alcotest.failf "only %d/20 models were solvable exactly" !checked

(* On these non-rare models crude Monte-Carlo also observes failures, so
   the two estimators must agree within their combined standard errors. *)
let test_is_agrees_with_crude () =
  List.iter
    (fun seed ->
      let sd = Gen_sdft.sd seed in
      let opts = is_options seed in
      let is = Rare_event.run ~options:opts sd ~horizon in
      let crude = Rare_event.run ~options:(Rare_event.crude opts) sd ~horizon in
      let se =
        sqrt
          ((is.Rare_event.std_error *. is.Rare_event.std_error)
          +. (crude.Rare_event.std_error *. crude.Rare_event.std_error))
      in
      let diff = Float.abs (is.Rare_event.estimate -. crude.Rare_event.estimate) in
      if diff > (4.0 *. se) +. 1e-9 then
        Alcotest.failf
          "seed %d: IS %.6e vs crude %.6e differ by %.2e > 4 x combined se %.2e"
          seed is.Rare_event.estimate crude.Rare_event.estimate diff se)
    seeds

(* The crude special case of the weighted estimator must agree with the
   original [Simulator] (same sampling measure, independent streams). *)
let test_crude_agrees_with_simulator () =
  let sd = Gen_sdft.sd 42 in
  let crude =
    Rare_event.run ~options:(Rare_event.crude (is_options 5)) sd ~horizon
  in
  let stats = Simulator.unreliability ~seed:6 sd ~horizon ~trials in
  let se =
    sqrt
      ((crude.Rare_event.std_error *. crude.Rare_event.std_error)
      +. (stats.Simulator.std_error *. stats.Simulator.std_error))
  in
  let diff = Float.abs (crude.Rare_event.estimate -. stats.Simulator.estimate) in
  if diff > 4.0 *. se then
    Alcotest.failf "crude %.6e vs simulator %.6e (> 4 sigma)"
      crude.Rare_event.estimate stats.Simulator.estimate

(* End-to-end: Rare_event.verify's interval check against the analytic
   pipeline's certified budget interval holds on the running example. *)
let test_verify_pumps_overlaps () =
  let sd = Pumps.sd_tree () in
  let result = Sdft_analysis.analyze sd in
  let options = { Rare_event.default_options with trials = 50_000; seed = 13 } in
  let _, check = Rare_event.verify ~options sd ~horizon:24.0 result in
  Alcotest.(check bool) "overlaps" true check.Sdft_analysis.overlaps;
  Alcotest.(check bool) "not vacuous" false check.Sdft_analysis.vacuous_budget;
  Alcotest.(check (float 1e-12)) "no gap" 0.0 check.Sdft_analysis.gap

let () =
  Alcotest.run "differential"
    [
      ( "is-vs-exact",
        [
          Alcotest.test_case "IS CI contains exact" `Slow test_is_ci_contains_exact;
          Alcotest.test_case "IS agrees with crude" `Slow test_is_agrees_with_crude;
          Alcotest.test_case "crude agrees with Simulator" `Slow
            test_crude_agrees_with_simulator;
          Alcotest.test_case "verify on pumps" `Slow test_verify_pumps_overlaps;
        ] );
    ]

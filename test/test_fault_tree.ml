(* Tests for static fault trees: builder validation, evaluation semantics,
   scenario probabilities, K-of-N expansion. *)

module Int_set = Sdft_util.Int_set

let check_close ?(eps = 1e-12) msg expected actual =
  if Float.abs (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

(* Builder validation *)

let test_duplicate_name_rejected () =
  let b = Fault_tree.Builder.create () in
  let _ = Fault_tree.Builder.basic b "x" in
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Fault_tree.Builder: duplicate name \"x\"") (fun () ->
      ignore (Fault_tree.Builder.basic b "x"))

let test_bad_probability_rejected () =
  let b = Fault_tree.Builder.create () in
  Alcotest.check_raises "prob > 1"
    (Invalid_argument "Fault_tree.Builder: probability of \"x\" out of [0,1]")
    (fun () -> ignore (Fault_tree.Builder.basic b ~prob:1.5 "x"))

let test_empty_gate_rejected () =
  let b = Fault_tree.Builder.create () in
  Alcotest.check_raises "empty"
    (Invalid_argument "Fault_tree.Builder: gate \"g\" has no inputs") (fun () ->
      ignore (Fault_tree.Builder.gate b "g" Fault_tree.And []))

let test_duplicate_inputs_rejected () =
  let b = Fault_tree.Builder.create () in
  let x = Fault_tree.Builder.basic b "x" in
  Alcotest.check_raises "dup inputs"
    (Invalid_argument "Fault_tree.Builder: gate \"g\" has duplicate inputs")
    (fun () -> ignore (Fault_tree.Builder.gate b "g" Fault_tree.Or [ x; x ]))

let test_bad_atleast_rejected () =
  let b = Fault_tree.Builder.create () in
  let x = Fault_tree.Builder.basic b "x" in
  let y = Fault_tree.Builder.basic b "y" in
  Alcotest.check_raises "k too big"
    (Invalid_argument "Fault_tree.Builder: gate \"g\": bad K-of-N threshold")
    (fun () ->
      ignore (Fault_tree.Builder.gate b "g" (Fault_tree.Atleast 3) [ x; y ]))

let test_basic_top_rejected () =
  let b = Fault_tree.Builder.create () in
  let x = Fault_tree.Builder.basic b "x" in
  Alcotest.check_raises "basic top"
    (Invalid_argument "Fault_tree.Builder.build: top must be a gate") (fun () ->
      ignore (Fault_tree.Builder.build b ~top:x))

(* Evaluation on the running example (paper Example 1/7). *)

let pumps = Pumps.static_tree ()

let idx name = Option.get (Fault_tree.basic_index pumps name)

let test_pumps_structure () =
  Alcotest.(check int) "basics" 5 (Fault_tree.n_basics pumps);
  Alcotest.(check int) "gates" 4 (Fault_tree.n_gates pumps);
  let s = Fault_tree.stats pumps in
  Alcotest.(check int) "ands" 1 s.Fault_tree.n_and;
  Alcotest.(check int) "ors" 3 s.Fault_tree.n_or;
  Alcotest.(check int) "depth" 3 (Fault_tree.depth pumps)

let test_pumps_evaluation () =
  let fails set =
    let s = Int_set.of_list (List.map idx set) in
    Fault_tree.fails_top pumps ~failed:(fun b -> Int_set.mem b s)
  in
  Alcotest.(check bool) "{} ok" false (fails []);
  Alcotest.(check bool) "{a} ok" false (fails [ "a" ]);
  Alcotest.(check bool) "{a,b} ok (same pump)" false (fails [ "a"; "b" ]);
  Alcotest.(check bool) "{a,c} fails" true (fails [ "a"; "c" ]);
  Alcotest.(check bool) "{b,d} fails" true (fails [ "b"; "d" ]);
  Alcotest.(check bool) "{e} fails" true (fails [ "e" ]);
  Alcotest.(check bool) "{a,b,c,d,e} fails" true (fails [ "a"; "b"; "c"; "d"; "e" ])

let test_scenario_probability_paper () =
  (* Example 1: p({a,d}) ~ 2.988e-6. *)
  let xi = Int_set.of_list [ idx "a"; idx "d" ] in
  let p = Fault_tree.scenario_probability pumps xi in
  check_close ~eps:1e-12 "paper value"
    (3e-3 *. 1e-3 *. (1.0 -. 1e-3) *. (1.0 -. 3e-3) *. (1.0 -. 3e-6))
    p;
  Alcotest.(check bool) "~2.988e-6" true (Float.abs (p -. 2.988e-6) < 1e-9)

let test_exact_probability_small () =
  (* Independent check: exact by enumeration equals inclusion-exclusion over
     the 5 known MCS computed by hand via the complement:
     p = 1 - (1 - p_e) * (1 - p_pumps_and) where
     p_pumps = (a or b)(c or d). *)
  let pa = 3e-3 and pb = 1e-3 and pc = 3e-3 and pd = 1e-3 and pe = 3e-6 in
  let p_pump1 = 1.0 -. ((1.0 -. pa) *. (1.0 -. pb)) in
  let p_pump2 = 1.0 -. ((1.0 -. pc) *. (1.0 -. pd)) in
  let expected = 1.0 -. ((1.0 -. (p_pump1 *. p_pump2)) *. (1.0 -. pe)) in
  check_close ~eps:1e-15 "closed form" expected
    (Fault_tree.exact_top_probability_enumerate pumps)

let test_eval_gates_names () =
  let values =
    Fault_tree.eval_gates pumps ~failed:(fun b -> b = idx "a" || b = idx "c")
  in
  let gate name = values.(Option.get (Fault_tree.gate_index pumps name)) in
  Alcotest.(check bool) "pump1" true (gate "pump1");
  Alcotest.(check bool) "pump2" true (gate "pump2");
  Alcotest.(check bool) "pumps" true (gate "pumps");
  Alcotest.(check bool) "cooling" true (gate "cooling")

let test_descendants () =
  let g = Option.get (Fault_tree.gate_index pumps "pump1") in
  Alcotest.(check (list int))
    "pump1 descendants"
    [ idx "a"; idx "b" ]
    (Int_set.to_list (Fault_tree.descendant_basics pumps g));
  let top = Fault_tree.top pumps in
  Alcotest.(check int) "all under top" 5
    (Int_set.cardinal (Fault_tree.descendant_basics pumps top))

let test_parents () =
  let g_pumps = Option.get (Fault_tree.gate_index pumps "pumps") in
  let g_pump1 = Option.get (Fault_tree.gate_index pumps "pump1") in
  Alcotest.(check (array int)) "pump1's parents" [| g_pumps |]
    (Fault_tree.gate_parents pumps g_pump1);
  Alcotest.(check (array int)) "a's parents" [| g_pump1 |]
    (Fault_tree.basic_parents pumps (idx "a"))

let test_with_probs () =
  let t = Fault_tree.with_probs pumps (Array.make 5 0.5) in
  check_close "updated" 0.5 (Fault_tree.prob t 0);
  check_close "original untouched" 3e-3 (Fault_tree.prob pumps 0);
  Alcotest.check_raises "wrong length"
    (Invalid_argument "Fault_tree.with_probs: wrong length") (fun () ->
      ignore (Fault_tree.with_probs pumps [| 0.1 |]))

(* K-of-N semantics and expansion. *)

let atleast_tree k n =
  let b = Fault_tree.Builder.create () in
  let inputs =
    List.init n (fun i ->
        Fault_tree.Builder.basic b ~prob:0.2 (Printf.sprintf "x%d" i))
  in
  let top = Fault_tree.Builder.gate b "vote" (Fault_tree.Atleast k) inputs in
  Fault_tree.Builder.build b ~top

let test_atleast_semantics () =
  let t = atleast_tree 2 4 in
  let fails set = Fault_tree.fails_top t ~failed:(fun b -> List.mem b set) in
  Alcotest.(check bool) "0 of 4" false (fails []);
  Alcotest.(check bool) "1 of 4" false (fails [ 0 ]);
  Alcotest.(check bool) "2 of 4" true (fails [ 0; 3 ]);
  Alcotest.(check bool) "4 of 4" true (fails [ 0; 1; 2; 3 ])

let test_expand_atleast_identity_when_pure () =
  let t = Pumps.static_tree () in
  Alcotest.(check bool) "no atleast" false (Expand.has_atleast t);
  Alcotest.(check bool) "same tree" true (Expand.expand_atleast t == t)

let test_expand_atleast_equivalent () =
  List.iter
    (fun (k, n) ->
      let t = atleast_tree k n in
      let t' = Expand.expand_atleast t in
      Alcotest.(check bool) "expanded has no atleast" false (Expand.has_atleast t');
      (* Same boolean function on all 2^n assignments. *)
      for mask = 0 to (1 lsl n) - 1 do
        let failed b = mask land (1 lsl b) <> 0 in
        if
          Fault_tree.fails_top t ~failed <> Fault_tree.fails_top t' ~failed
        then Alcotest.failf "mismatch k=%d n=%d mask=%d" k n mask
      done;
      (* Probabilities preserved too. *)
      check_close ~eps:1e-12 "probability preserved"
        (Fault_tree.exact_top_probability_enumerate t)
        (Fault_tree.exact_top_probability_enumerate t'))
    [ (1, 3); (2, 3); (3, 3); (2, 4); (3, 5); (4, 6) ]

(* Modules *)

let test_modules_pumps () =
  (* No sharing in the running example: every gate is a module. *)
  let mods = Modules.find pumps in
  Alcotest.(check int) "all four gates" 4 (List.length mods);
  Alcotest.(check bool) "top included" true
    (List.mem (Fault_tree.top pumps) mods)

let test_modules_shared_leaf () =
  let b = Fault_tree.Builder.create () in
  let x = Fault_tree.Builder.basic b ~prob:0.1 "x" in
  let y = Fault_tree.Builder.basic b ~prob:0.1 "y" in
  let s = Fault_tree.Builder.basic b ~prob:0.1 "s" in
  let g1 = Fault_tree.Builder.gate b "g1" Fault_tree.Or [ x; s ] in
  let g2 = Fault_tree.Builder.gate b "g2" Fault_tree.Or [ y; s ] in
  let top = Fault_tree.Builder.gate b "top" Fault_tree.And [ g1; g2 ] in
  let tree = Fault_tree.Builder.build b ~top in
  let g1_id = Option.get (Fault_tree.gate_index tree "g1") in
  let g2_id = Option.get (Fault_tree.gate_index tree "g2") in
  Alcotest.(check bool) "g1 not a module (shares s)" false (Modules.is_module tree g1_id);
  Alcotest.(check bool) "g2 not a module" false (Modules.is_module tree g2_id);
  Alcotest.(check (list int)) "only top" [ Fault_tree.top tree ] (Modules.find tree)

let test_modules_shared_gate () =
  (* A gate used by two parents is itself fine, but it stops its parents
     from being modules. *)
  let b = Fault_tree.Builder.create () in
  let x = Fault_tree.Builder.basic b ~prob:0.1 "x" in
  let y = Fault_tree.Builder.basic b ~prob:0.1 "y" in
  let z = Fault_tree.Builder.basic b ~prob:0.1 "z" in
  let shared = Fault_tree.Builder.gate b "shared" Fault_tree.Or [ z ] in
  let g1 = Fault_tree.Builder.gate b "g1" Fault_tree.And [ x; shared ] in
  let g2 = Fault_tree.Builder.gate b "g2" Fault_tree.And [ y; shared ] in
  let top = Fault_tree.Builder.gate b "top" Fault_tree.Or [ g1; g2 ] in
  let tree = Fault_tree.Builder.build b ~top in
  let name n = Option.get (Fault_tree.gate_index tree n) in
  Alcotest.(check bool) "shared is a module" true (Modules.is_module tree (name "shared"));
  Alcotest.(check bool) "g1 not" false (Modules.is_module tree (name "g1"));
  Alcotest.(check bool) "top yes" true (Modules.is_module tree (Fault_tree.top tree))

let test_modules_ignore_dangling () =
  (* An unreachable gate that references a basic inside the live tree must
     not break modularity — the top event never sees it. Regression: the
     industrial generator's scaffolding gates used to strip the top gate of
     its module status, violating [find]'s contract. *)
  let b = Fault_tree.Builder.create () in
  let s = Fault_tree.Builder.basic b ~prob:0.1 "s" in
  let a = Fault_tree.Builder.basic b ~prob:0.1 "a" in
  let c = Fault_tree.Builder.basic b ~prob:0.1 "c" in
  let _dangling = Fault_tree.Builder.gate b "dangling" Fault_tree.Or [ s; c ] in
  let sub = Fault_tree.Builder.gate b "sub" Fault_tree.Or [ s; a ] in
  let top = Fault_tree.Builder.gate b "top" Fault_tree.And [ sub; c ] in
  let tree = Fault_tree.Builder.build b ~top in
  let name n = Option.get (Fault_tree.gate_index tree n) in
  Alcotest.(check bool) "top is a module" true
    (Modules.is_module tree (Fault_tree.top tree));
  Alcotest.(check bool) "sub is a module despite dangling ref to s" true
    (Modules.is_module tree (name "sub"));
  Alcotest.(check bool) "dangling gate itself not reported" false
    (List.mem (name "dangling") (Modules.find tree));
  Alcotest.(check (list int)) "find = reachable modules"
    [ name "sub"; Fault_tree.top tree ]
    (Modules.find tree)

let test_dynamic_modules () =
  let tree = pumps in
  let d = Option.get (Fault_tree.basic_index tree "d") in
  let mods = Modules.dynamic_modules tree ~is_dynamic:(fun b -> b = d) in
  (* d sits under pump2, pumps and cooling. *)
  Alcotest.(check int) "three dynamic modules" 3 (List.length mods)

(* Graphviz export *)

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec loop i = i + n <= h && (String.sub haystack i n = needle || loop (i + 1)) in
  loop 0

let test_dot_export () =
  let sd = Pumps.sd_tree () in
  let dot =
    Dot.to_dot ~dynamic_basics:(Sdft.is_dynamic sd)
      ~trigger_edges:(Sdft.trigger_edges sd) pumps
  in
  Alcotest.(check bool) "digraph" true (contains ~needle:"digraph fault_tree" dot);
  Alcotest.(check bool) "dynamic double circle" true
    (contains ~needle:"doublecircle" dot);
  Alcotest.(check bool) "dashed trigger" true (contains ~needle:"style=dashed" dot);
  Alcotest.(check bool) "AND label" true (contains ~needle:"[AND]" dot);
  Alcotest.(check bool) "top has double border" true (contains ~needle:"peripheries=2" dot)

let test_dot_quotes_names () =
  let b = Fault_tree.Builder.create () in
  let x = Fault_tree.Builder.basic b ~prob:0.1 "weird\"name" in
  let top = Fault_tree.Builder.gate b "top" Fault_tree.Or [ x ] in
  let tree = Fault_tree.Builder.build b ~top in
  let dot = Dot.to_dot tree in
  Alcotest.(check bool) "escaped" true (contains ~needle:"weird\\\"name" dot)

(* Random trees: expansion preserves the boolean function. *)

let prop_expand_preserves_function =
  QCheck.Test.make ~name:"expand_atleast preserves the function" ~count:100
    (QCheck.make QCheck.Gen.(0 -- 10000))
    (fun seed ->
      let rng = Sdft_util.Rng.create seed in
      let t = Random_tree.tree rng ~n_basics:6 ~n_gates:5 in
      let t' = Expand.expand_atleast t in
      let ok = ref true in
      for mask = 0 to 63 do
        let failed b = mask land (1 lsl b) <> 0 in
        if Fault_tree.fails_top t ~failed <> Fault_tree.fails_top t' ~failed then
          ok := false
      done;
      !ok)

let prop_coherence =
  (* Adding failures never un-fails the top gate (the trees are coherent). *)
  QCheck.Test.make ~name:"random trees are coherent (monotone)" ~count:100
    (QCheck.make QCheck.Gen.(0 -- 10000))
    (fun seed ->
      let rng = Sdft_util.Rng.create seed in
      let t = Random_tree.tree rng ~n_basics:7 ~n_gates:6 in
      let ok = ref true in
      for mask = 0 to 127 do
        let failed b = mask land (1 lsl b) <> 0 in
        if Fault_tree.fails_top t ~failed then begin
          (* any superset must fail too: test by adding one bit *)
          for extra = 0 to 6 do
            let failed' b = failed b || b = extra in
            if not (Fault_tree.fails_top t ~failed:failed') then ok := false
          done
        end
      done;
      !ok)

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "fault_tree"
    [
      ( "builder",
        [
          Alcotest.test_case "duplicate name" `Quick test_duplicate_name_rejected;
          Alcotest.test_case "bad probability" `Quick test_bad_probability_rejected;
          Alcotest.test_case "empty gate" `Quick test_empty_gate_rejected;
          Alcotest.test_case "duplicate inputs" `Quick test_duplicate_inputs_rejected;
          Alcotest.test_case "bad atleast" `Quick test_bad_atleast_rejected;
          Alcotest.test_case "basic top" `Quick test_basic_top_rejected;
        ] );
      ( "semantics",
        [
          Alcotest.test_case "structure" `Quick test_pumps_structure;
          Alcotest.test_case "evaluation" `Quick test_pumps_evaluation;
          Alcotest.test_case "scenario probability (paper)" `Quick test_scenario_probability_paper;
          Alcotest.test_case "exact probability" `Quick test_exact_probability_small;
          Alcotest.test_case "gate values" `Quick test_eval_gates_names;
          Alcotest.test_case "descendants" `Quick test_descendants;
          Alcotest.test_case "parents" `Quick test_parents;
          Alcotest.test_case "with_probs" `Quick test_with_probs;
        ] );
      ( "dot",
        [
          Alcotest.test_case "export" `Quick test_dot_export;
          Alcotest.test_case "escaping" `Quick test_dot_quotes_names;
        ] );
      ( "modules",
        [
          Alcotest.test_case "pumps" `Quick test_modules_pumps;
          Alcotest.test_case "shared leaf" `Quick test_modules_shared_leaf;
          Alcotest.test_case "shared gate" `Quick test_modules_shared_gate;
          Alcotest.test_case "dangling gates ignored" `Quick
            test_modules_ignore_dangling;
          Alcotest.test_case "dynamic modules" `Quick test_dynamic_modules;
        ] );
      ( "atleast",
        [
          Alcotest.test_case "semantics" `Quick test_atleast_semantics;
          Alcotest.test_case "identity" `Quick test_expand_atleast_identity_when_pure;
          Alcotest.test_case "equivalence" `Quick test_expand_atleast_equivalent;
        ]
        @ qc [ prop_expand_preserves_function; prop_coherence ] );
    ]

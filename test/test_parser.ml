(* Tests for the s-expression reader and the SD fault tree text format. *)

(* Sexp *)

let sexp = Alcotest.testable Sexp.pp (fun a b -> a = b)

let test_sexp_atoms_and_lists () =
  Alcotest.(check (list sexp)) "flat"
    [ Sexp.Atom "a"; Sexp.List [ Sexp.Atom "b"; Sexp.Atom "c" ] ]
    (Sexp.parse_string "a (b c)")

let test_sexp_nesting () =
  Alcotest.(check (list sexp)) "nested"
    [ Sexp.List [ Sexp.Atom "a"; Sexp.List [ Sexp.List [ Sexp.Atom "b" ] ] ] ]
    (Sexp.parse_string "(a ((b)))")

let test_sexp_comments_and_whitespace () =
  Alcotest.(check (list sexp)) "comments"
    [ Sexp.Atom "x"; Sexp.Atom "y" ]
    (Sexp.parse_string "; header\n x ; trailing\n\t y\n; eof")

let test_sexp_quoted_strings () =
  Alcotest.(check (list sexp)) "quoted"
    [ Sexp.Atom "hello world"; Sexp.Atom "quo\"te" ]
    (Sexp.parse_string "\"hello world\" \"quo\\\"te\"")

let test_sexp_errors () =
  let fails s =
    match Sexp.parse_string s with
    | exception Sexp.Parse_error _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "unterminated list" true (fails "(a b");
  Alcotest.(check bool) "stray paren" true (fails ")");
  Alcotest.(check bool) "unterminated string" true (fails "\"abc")

let test_sexp_error_line_number () =
  match Sexp.parse_string "a\nb\n(" with
  | exception Sexp.Parse_error { line; _ } -> Alcotest.(check int) "line 3" 3 line
  | _ -> Alcotest.fail "expected error"

let test_sexp_roundtrip () =
  let original = "(gate top and (x y) \"sp ace\")" in
  let parsed = Sexp.parse_string original in
  let printed = String.concat " " (List.map Sexp.to_string parsed) in
  Alcotest.(check (list sexp)) "roundtrip" parsed (Sexp.parse_string printed)

let prop_sexp_roundtrip =
  let rec gen_sexp depth st =
    let open QCheck.Gen in
    if depth = 0 then Sexp.Atom (string_size ~gen:(char_range 'a' 'z') (1 -- 6) st)
    else if bool st then
      Sexp.Atom (string_size ~gen:(char_range 'a' 'z') (1 -- 6) st)
    else Sexp.List (list_size (0 -- 4) (gen_sexp (depth - 1)) st)
  in
  QCheck.Test.make ~name:"sexp print/parse roundtrip" ~count:300
    (QCheck.make (gen_sexp 3))
    (fun e -> Sexp.parse_string (Sexp.to_string e) = [ e ])

(* Sdft format *)

let analyze sd = (Sdft_analysis.analyze sd).Sdft_analysis.total

let test_format_roundtrip_pumps () =
  let sd = Pumps.sd_tree () in
  let sd' = Sdft_format.of_string (Sdft_format.to_string sd) in
  (* Same structure... *)
  Alcotest.(check int) "basics" (Sdft.n_basics sd) (Sdft.n_basics sd');
  Alcotest.(check int) "dynamic"
    (List.length (Sdft.dynamic_basics sd))
    (List.length (Sdft.dynamic_basics sd'));
  Alcotest.(check int) "triggers"
    (List.length (Sdft.trigger_edges sd))
    (List.length (Sdft.trigger_edges sd'));
  (* ... and same semantics. *)
  let a = analyze sd and b = analyze sd' in
  if Float.abs (a -. b) > 1e-12 then Alcotest.failf "semantics changed: %g vs %g" a b

let test_format_roundtrip_bwr () =
  let sd =
    Bwr.build
      {
        Bwr.default_config with
        repair_rate = Some 0.1;
        triggers = [ Bwr.Feed_and_bleed; Bwr.Ccw_second_train ];
        phases = 2;
      }
  in
  let sd' = Sdft_format.of_string (Sdft_format.to_string sd) in
  let a = analyze sd and b = analyze sd' in
  if Float.abs (a -. b) > 1e-15 +. (1e-9 *. a) then
    Alcotest.failf "semantics changed: %g vs %g" a b

let test_format_shorthand_specs () =
  let text =
    {|
(basic z 0.25)
(dynamic x (exponential (lambda 0.1) (mu 0.4)))
(dynamic y (triggered-erlang (phases 2) (lambda 0.2) (passive 0.0)))
(gate src or z)
(gate top and z x y)
(trigger src y)
(top top)
|}
  in
  let sd = Sdft_format.of_string text in
  Alcotest.(check int) "3 basics" 3 (Sdft.n_basics sd);
  Alcotest.(check int) "2 dynamic" 2 (List.length (Sdft.dynamic_basics sd));
  let tree = Sdft.tree sd in
  let y = Option.get (Fault_tree.basic_index tree "y") in
  Alcotest.(check bool) "y triggered" true (Sdft.trigger_of sd y <> None);
  Alcotest.(check int) "y has 6 states" 6 (Dbe.n_states (Sdft.dbe sd y))

let test_format_erlang_shorthand () =
  let text =
    {|
(dynamic x (erlang (phases 3) (lambda 0.5) (mu 1.0)))
(gate top or x)
(top top)
|}
  in
  let sd = Sdft_format.of_string text in
  let x = Option.get (Fault_tree.basic_index (Sdft.tree sd) "x") in
  Alcotest.(check int) "4 states" 4 (Dbe.n_states (Sdft.dbe sd x))

let test_format_atleast () =
  let text =
    {|
(basic a 0.5) (basic b 0.5) (basic c 0.5)
(gate vote (atleast 2) a b c)
(top vote)
|}
  in
  let sd = Sdft_format.of_string text in
  let tree = Sdft.tree sd in
  match Fault_tree.gate_kind tree (Fault_tree.top tree) with
  | Fault_tree.Atleast 2 -> ()
  | _ -> Alcotest.fail "expected 2-of-3"

let test_format_errors () =
  let fails text =
    match Sdft_format.of_string text with
    | exception Sdft_format.Error _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "missing top" true (fails "(basic a 0.1)");
  Alcotest.(check bool) "unknown node" true (fails "(gate g or nope) (top g)");
  Alcotest.(check bool) "unknown form" true (fails "(frobnicate) (top g)");
  Alcotest.(check bool) "trigger without switch" true
    (fails
       "(dynamic x (exponential (lambda 1.0))) (gate g or x) (trigger g x) (top g)");
  Alcotest.(check bool) "bad number" true (fails "(basic a abc) (gate g or a) (top g)")

(* Every rejection must be a one-line [Error] naming the offending element,
   never a raw [Invalid_argument] escaping from the tree builder. *)
let contains_substring haystack needle =
  let hl = String.length haystack and nl = String.length needle in
  let rec at i = i + nl <= hl && (String.sub haystack i nl = needle || at (i + 1)) in
  at 0

let test_format_validation () =
  let fails_mentioning fragment text =
    match Sdft_format.of_string text with
    | exception Sdft_format.Error m ->
      if not (contains_substring m fragment) then
        Alcotest.failf "error %S does not mention %S" m fragment
    | exception e ->
      Alcotest.failf "expected Sdft_format.Error, got %s" (Printexc.to_string e)
    | _ -> Alcotest.fail "expected a parse error"
  in
  fails_mentioning "\"a\"" "(basic a 1.5) (gate g or a) (top g)";
  fails_mentioning "\"a\"" "(basic a -0.1) (gate g or a) (top g)";
  fails_mentioning "\"a\"" "(basic a nan) (gate g or a) (top g)";
  fails_mentioning "duplicate" "(basic a 0.1) (basic a 0.2) (gate g or a) (top g)";
  fails_mentioning "\"x\""
    "(dynamic x (exponential (lambda -2.0))) (gate g or x) (top g)";
  fails_mentioning "\"x\""
    "(dynamic x (exponential (lambda nan))) (gate g or x) (top g)";
  fails_mentioning "\"x\""
    "(dynamic x (exponential (lambda 0.1) (mu -1.0))) (gate g or x) (top g)";
  fails_mentioning "\"x\""
    {|(dynamic x (ctmc (states 2) (init (0 1.0)) (transitions (0 1 nan)) (failed 1)))
      (gate g or x) (top g)|};
  fails_mentioning "\"x\""
    {|(dynamic x (ctmc (states 2) (init (0 1.5)) (transitions (0 1 0.1)) (failed 1)))
      (gate g or x) (top g)|}

let test_format_file_io () =
  let path = Filename.temp_file "sdft" ".sdft" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let sd = Pumps.sd_tree () in
      Sdft_format.to_file path sd;
      let sd' = Sdft_format.of_file path in
      Alcotest.(check int) "basics" (Sdft.n_basics sd) (Sdft.n_basics sd'))

let prop_random_sd_roundtrip =
  QCheck.Test.make ~name:"random SD fault trees roundtrip" ~count:50
    (QCheck.make QCheck.Gen.(0 -- 100000))
    (fun seed ->
      let rng = Sdft_util.Rng.create seed in
      let sd = Random_tree.sd rng ~n_basics:6 ~n_gates:5 ~n_dynamic:2 ~n_triggers:1 in
      let sd' = Sdft_format.of_string (Sdft_format.to_string sd) in
      let p = Sdft_product.solve sd ~horizon:3.0 in
      let p' = Sdft_product.solve sd' ~horizon:3.0 in
      Float.abs (p -. p') < 1e-12)

(* Xml *)

let test_xml_basic () =
  let root = Xml.parse_string "<a x=\"1\"><b/><c>text</c></a>" in
  Alcotest.(check string) "tag" "a" root.Xml.tag;
  Alcotest.(check (option string)) "attr" (Some "1") (Xml.attribute root "x");
  Alcotest.(check int) "children" 2 (List.length (Xml.elements root));
  let c = Option.get (Xml.find_opt root "c") in
  Alcotest.(check string) "text" "text" (Xml.text c)

let test_xml_prologue_comments () =
  let root =
    Xml.parse_string
      "<?xml version=\"1.0\"?><!-- hi --><root><!-- inner --><x/></root>"
  in
  Alcotest.(check string) "root" "root" root.Xml.tag;
  Alcotest.(check int) "one child" 1 (List.length (Xml.elements root))

let test_xml_entities () =
  let root = Xml.parse_string "<a t=\"&lt;&amp;&gt;\">x &amp; y</a>" in
  Alcotest.(check (option string)) "attr entities" (Some "<&>") (Xml.attribute root "t");
  Alcotest.(check string) "text entities" "x & y" (Xml.text root)

let test_xml_cdata () =
  let root = Xml.parse_string "<a><![CDATA[1 < 2 & 3]]></a>" in
  Alcotest.(check string) "cdata" "1 < 2 & 3" (Xml.text root)

let test_xml_errors () =
  let fails s =
    match Xml.parse_string s with
    | exception Xml.Parse_error _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "unclosed" true (fails "<a><b></a>");
  Alcotest.(check bool) "unterminated" true (fails "<a>");
  Alcotest.(check bool) "trailing" true (fails "<a/><b/>");
  Alcotest.(check bool) "bad attr" true (fails "<a x></a>")

let test_xml_roundtrip () =
  let root = Xml.parse_string "<a x=\"q&quot;q\"><b><c y=\"2\"/></b>txt</a>" in
  let again = Xml.parse_string (Xml.to_string root) in
  Alcotest.(check bool) "same" true (root = again)

(* Open-PSA *)

let opsa_doc =
  {|<?xml version="1.0"?>
<opsa-mef>
  <define-fault-tree name="demo">
    <define-gate name="top"><or><gate name="g1"/><basic-event name="e"/></or></define-gate>
    <define-gate name="g1"><and><event name="a"/><atleast min="2">
      <basic-event name="x"/><basic-event name="y"/><basic-event name="z"/>
    </atleast></and></define-gate>
  </define-fault-tree>
  <model-data>
    <define-basic-event name="a"><float value="0.1"/></define-basic-event>
    <define-basic-event name="e"><float value="0.01"/></define-basic-event>
    <define-basic-event name="x"><float value="0.2"/></define-basic-event>
    <define-basic-event name="y"><float value="0.2"/></define-basic-event>
    <define-basic-event name="z"><float value="0.2"/></define-basic-event>
  </model-data>
</opsa-mef>|}

let test_opsa_parse () =
  let tree = Open_psa.of_string opsa_doc in
  Alcotest.(check int) "basics" 5 (Fault_tree.n_basics tree);
  Alcotest.(check string) "top name" "top"
    (Fault_tree.gate_name tree (Fault_tree.top tree));
  (* Exact probability: top = e OR (a AND 2-of-3(x,y,z)). *)
  let p_vote = (3.0 *. 0.2 *. 0.2 *. 0.8) +. (0.2 ** 3.0) in
  let expected = 1.0 -. ((1.0 -. 0.01) *. (1.0 -. (0.1 *. p_vote))) in
  let got = Fault_tree.exact_top_probability_enumerate tree in
  if Float.abs (got -. expected) > 1e-12 then
    Alcotest.failf "probability %.8f vs %.8f" got expected

let test_opsa_top_inference () =
  (* Without a top attribute the unreferenced gate wins. *)
  let doc =
    {|<opsa-mef><define-fault-tree name="d">
        <define-gate name="root"><or><gate name="sub"/></or></define-gate>
        <define-gate name="sub"><or><basic-event name="e"/></or></define-gate>
      </define-fault-tree></opsa-mef>|}
  in
  let tree = Open_psa.of_string doc in
  Alcotest.(check string) "inferred" "root"
    (Fault_tree.gate_name tree (Fault_tree.top tree))

let test_opsa_errors () =
  let fails s =
    match Open_psa.of_string s with
    | exception Open_psa.Error _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "cyclic" true
    (fails
       {|<opsa-mef><define-fault-tree name="d" top="a">
          <define-gate name="a"><or><gate name="b"/></or></define-gate>
          <define-gate name="b"><or><gate name="a"/></or></define-gate>
        </define-fault-tree></opsa-mef>|});
  Alcotest.(check bool) "undefined gate" true
    (fails
       {|<opsa-mef><define-fault-tree name="d" top="a">
          <define-gate name="a"><or><gate name="nope"/></or></define-gate>
        </define-fault-tree></opsa-mef>|});
  Alcotest.(check bool) "no fault tree" true (fails "<opsa-mef/>");
  Alcotest.(check bool) "bad root" true (fails "<something/>")

let test_opsa_validation () =
  let fails_mentioning fragment s =
    match Open_psa.of_string s with
    | exception Open_psa.Error m ->
      if not (contains_substring m fragment) then
        Alcotest.failf "error %S does not mention %S" m fragment
    | exception e ->
      Alcotest.failf "expected Open_psa.Error, got %s" (Printexc.to_string e)
    | _ -> Alcotest.fail "expected a parse error"
  in
  let doc body =
    Printf.sprintf
      {|<opsa-mef><define-fault-tree name="d" top="g">
          <define-gate name="g"><or><basic-event name="e"/></or></define-gate>
          %s
        </define-fault-tree></opsa-mef>|}
      body
  in
  fails_mentioning "duplicate"
    (doc
       {|<define-basic-event name="e"><float value="0.1"/></define-basic-event>
         <define-basic-event name="e"><float value="0.2"/></define-basic-event>|});
  fails_mentioning "duplicate"
    (doc {|<define-gate name="g"><or><basic-event name="e"/></or></define-gate>|});
  fails_mentioning "\"e\""
    (doc {|<define-basic-event name="e"><float value="1.5"/></define-basic-event>|});
  fails_mentioning "\"e\""
    (doc {|<define-basic-event name="e"><float value="-0.5"/></define-basic-event>|});
  fails_mentioning "\"e\""
    (doc {|<define-basic-event name="e"><float value="nan"/></define-basic-event>|})

let test_opsa_roundtrip_pumps () =
  let tree = Pumps.static_tree () in
  let tree' = Open_psa.of_string (Open_psa.to_string tree) in
  Alcotest.(check int) "basics" (Fault_tree.n_basics tree) (Fault_tree.n_basics tree');
  Alcotest.(check int) "gates" (Fault_tree.n_gates tree) (Fault_tree.n_gates tree');
  let p = Fault_tree.exact_top_probability_enumerate tree in
  let p' = Fault_tree.exact_top_probability_enumerate tree' in
  if Float.abs (p -. p') > 1e-15 then Alcotest.failf "prob changed %g vs %g" p p'

let prop_opsa_roundtrip_random =
  QCheck.Test.make ~name:"Open-PSA roundtrip preserves cutsets" ~count:50
    (QCheck.make QCheck.Gen.(0 -- 100000))
    (fun seed ->
      let rng = Sdft_util.Rng.create seed in
      let tree = Random_tree.tree rng ~n_basics:7 ~n_gates:6 in
      let tree' = Open_psa.of_string (Open_psa.to_string tree) in
      let mcs t =
        List.sort Sdft_util.Int_set.compare
          (Mocus.minimal_cutsets ~options:{ Mocus.default_options with cutoff = 0.0 } t)
      in
      (* Basic indices survive (creation order differs), so compare by
         names. *)
      let names t =
        List.map
          (fun c ->
            List.sort compare
              (List.map (Fault_tree.basic_name t) (Sdft_util.Int_set.to_list c)))
          (mcs t)
        |> List.sort compare
      in
      names tree = names tree')

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "parser"
    [
      ( "sexp",
        [
          Alcotest.test_case "atoms and lists" `Quick test_sexp_atoms_and_lists;
          Alcotest.test_case "nesting" `Quick test_sexp_nesting;
          Alcotest.test_case "comments" `Quick test_sexp_comments_and_whitespace;
          Alcotest.test_case "quoting" `Quick test_sexp_quoted_strings;
          Alcotest.test_case "errors" `Quick test_sexp_errors;
          Alcotest.test_case "error line" `Quick test_sexp_error_line_number;
          Alcotest.test_case "roundtrip" `Quick test_sexp_roundtrip;
        ]
        @ qc [ prop_sexp_roundtrip ] );
      ( "format",
        [
          Alcotest.test_case "pumps roundtrip" `Quick test_format_roundtrip_pumps;
          Alcotest.test_case "bwr roundtrip" `Slow test_format_roundtrip_bwr;
          Alcotest.test_case "shorthand" `Quick test_format_shorthand_specs;
          Alcotest.test_case "erlang" `Quick test_format_erlang_shorthand;
          Alcotest.test_case "atleast" `Quick test_format_atleast;
          Alcotest.test_case "errors" `Quick test_format_errors;
          Alcotest.test_case "validation" `Quick test_format_validation;
          Alcotest.test_case "file io" `Quick test_format_file_io;
        ]
        @ qc [ prop_random_sd_roundtrip ] );
      ( "xml",
        [
          Alcotest.test_case "basic" `Quick test_xml_basic;
          Alcotest.test_case "prologue/comments" `Quick test_xml_prologue_comments;
          Alcotest.test_case "entities" `Quick test_xml_entities;
          Alcotest.test_case "cdata" `Quick test_xml_cdata;
          Alcotest.test_case "errors" `Quick test_xml_errors;
          Alcotest.test_case "roundtrip" `Quick test_xml_roundtrip;
        ] );
      ( "open-psa",
        [
          Alcotest.test_case "parse" `Quick test_opsa_parse;
          Alcotest.test_case "top inference" `Quick test_opsa_top_inference;
          Alcotest.test_case "errors" `Quick test_opsa_errors;
          Alcotest.test_case "validation" `Quick test_opsa_validation;
          Alcotest.test_case "pumps roundtrip" `Quick test_opsa_roundtrip_pumps;
        ]
        @ qc [ prop_opsa_roundtrip_random ] );
    ]

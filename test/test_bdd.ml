(* Tests for the BDD/ZDD engine: boolean operations against truth tables,
   probabilities against enumeration, minimal solutions against a brute
   force oracle. *)

module Int_set = Sdft_util.Int_set

let check_close ?(eps = 1e-12) msg expected actual =
  if Float.abs (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

(* Basic BDD algebra *)

let test_terminals () =
  let m = Bdd.manager ~n_vars:2 () in
  Alcotest.(check bool) "and zero" true (Bdd.apply_and m Bdd.zero Bdd.one = Bdd.zero);
  Alcotest.(check bool) "or one" true (Bdd.apply_or m Bdd.zero Bdd.one = Bdd.one);
  Alcotest.(check bool) "not zero" true (Bdd.apply_not m Bdd.zero = Bdd.one)

let test_var_eval () =
  let m = Bdd.manager ~n_vars:3 () in
  let x = Bdd.var m 0 and y = Bdd.var m 2 in
  let f = Bdd.apply_and m x (Bdd.apply_not m y) in
  Alcotest.(check bool) "x & !y at (1,_,0)" true (Bdd.eval m (fun v -> v = 0) f);
  Alcotest.(check bool) "x & !y at (1,_,1)" false (Bdd.eval m (fun _ -> true) f);
  Alcotest.(check bool) "x & !y at (0,_,0)" false (Bdd.eval m (fun _ -> false) f)

let test_hash_consing () =
  let m = Bdd.manager ~n_vars:2 () in
  let a = Bdd.apply_or m (Bdd.var m 0) (Bdd.var m 1) in
  let b = Bdd.apply_or m (Bdd.var m 1) (Bdd.var m 0) in
  Alcotest.(check bool) "canonical" true (a = b);
  let double_neg = Bdd.apply_not m (Bdd.apply_not m a) in
  Alcotest.(check bool) "double negation" true (double_neg = a)

let test_restrict () =
  let m = Bdd.manager ~n_vars:2 () in
  let f = Bdd.apply_and m (Bdd.var m 0) (Bdd.var m 1) in
  Alcotest.(check bool) "f|x0=1 = x1" true (Bdd.restrict m f 0 true = Bdd.var m 1);
  Alcotest.(check bool) "f|x0=0 = 0" true (Bdd.restrict m f 0 false = Bdd.zero)

let test_ite () =
  let m = Bdd.manager ~n_vars:3 () in
  let f = Bdd.ite m (Bdd.var m 0) (Bdd.var m 1) (Bdd.var m 2) in
  let eval a0 a1 a2 =
    Bdd.eval m (fun v -> [| a0; a1; a2 |].(v)) f
  in
  Alcotest.(check bool) "ite(1,x,_)" true (eval true true false);
  Alcotest.(check bool) "ite(1,0,_)" false (eval true false true);
  Alcotest.(check bool) "ite(0,_,x)" true (eval false false true);
  Alcotest.(check bool) "ite(0,_,0)" false (eval false true false)

(* qcheck: random 3-variable formulas vs truth tables. *)

type formula =
  | Var of int
  | And of formula * formula
  | Or of formula * formula
  | Not of formula

let rec gen_formula depth st =
  let open QCheck.Gen in
  if depth = 0 then Var (int_bound 3 st)
  else
    match int_bound 3 st with
    | 0 -> Var (int_bound 3 st)
    | 1 -> And (gen_formula (depth - 1) st, gen_formula (depth - 1) st)
    | 2 -> Or (gen_formula (depth - 1) st, gen_formula (depth - 1) st)
    | _ -> Not (gen_formula (depth - 1) st)

let rec eval_formula assignment = function
  | Var v -> assignment v
  | And (a, b) -> eval_formula assignment a && eval_formula assignment b
  | Or (a, b) -> eval_formula assignment a || eval_formula assignment b
  | Not a -> not (eval_formula assignment a)

let rec build_formula m = function
  | Var v -> Bdd.var m v
  | And (a, b) -> Bdd.apply_and m (build_formula m a) (build_formula m b)
  | Or (a, b) -> Bdd.apply_or m (build_formula m a) (build_formula m b)
  | Not a -> Bdd.apply_not m (build_formula m a)

let prop_formula_semantics =
  QCheck.Test.make ~name:"BDD agrees with truth table" ~count:300
    (QCheck.make (gen_formula 4))
    (fun f ->
      let m = Bdd.manager ~n_vars:4 () in
      let node = build_formula m f in
      let ok = ref true in
      for mask = 0 to 15 do
        let assignment v = mask land (1 lsl v) <> 0 in
        if Bdd.eval m assignment node <> eval_formula assignment f then ok := false
      done;
      !ok)

let prop_probability_matches_enumeration =
  QCheck.Test.make ~name:"BDD probability = enumeration" ~count:200
    (QCheck.make (gen_formula 4))
    (fun f ->
      let m = Bdd.manager ~n_vars:4 () in
      let node = build_formula m f in
      let p v = [| 0.1; 0.35; 0.5; 0.81 |].(v) in
      let exact = ref 0.0 in
      for mask = 0 to 15 do
        let assignment v = mask land (1 lsl v) <> 0 in
        if eval_formula assignment f then begin
          let w = ref 1.0 in
          for v = 0 to 3 do
            w := !w *. (if assignment v then p v else 1.0 -. p v)
          done;
          exact := !exact +. !w
        end
      done;
      Float.abs (Bdd.probability m p node -. !exact) < 1e-12)

(* Fault tree compilation: probability equals enumeration on the running
   example, and with assumptions. *)

let pumps = Pumps.static_tree ()

let test_of_fault_tree_probability () =
  let m, root = Bdd.of_fault_tree pumps in
  check_close ~eps:1e-15 "pumps exact"
    (Fault_tree.exact_top_probability_enumerate pumps)
    (Bdd.probability m (Fault_tree.prob pumps) root)

let test_of_fault_tree_assume () =
  (* Conditioning on e = true makes the top certain. *)
  let e = Option.get (Fault_tree.basic_index pumps "e") in
  let m, root =
    Bdd.of_fault_tree ~assume:(fun b -> if b = e then Some true else None) pumps
  in
  ignore m;
  Alcotest.(check bool) "constant true" true (root = Bdd.one);
  (* Conditioning e = false and a = false, c = false: top impossible only if
     also b or d cannot happen... pumps requires (a|b)&(c|d); with a=c=false
     it is b & d. *)
  let a = Option.get (Fault_tree.basic_index pumps "a") in
  let c = Option.get (Fault_tree.basic_index pumps "c") in
  let m2, root2 =
    Bdd.of_fault_tree
      ~assume:(fun bb ->
        if bb = e || bb = a || bb = c then Some false else None)
      pumps
  in
  let b = Option.get (Fault_tree.basic_index pumps "b") in
  let d = Option.get (Fault_tree.basic_index pumps "d") in
  let expected = Bdd.apply_and m2 (Bdd.var m2 b) (Bdd.var m2 d) in
  Alcotest.(check bool) "b & d" true (root2 = expected)

let test_bdd_size_and_levels () =
  let m = Bdd.manager ~var_order:[| 2; 0; 1 |] ~n_vars:3 () in
  Alcotest.(check int) "level of 2" 0 (Bdd.level_of_var m 2);
  Alcotest.(check int) "level of 1" 2 (Bdd.level_of_var m 1);
  let f = Bdd.apply_or m (Bdd.var m 0) (Bdd.apply_and m (Bdd.var m 1) (Bdd.var m 2)) in
  Alcotest.(check bool) "size positive" true (Bdd.size m f >= 3);
  Alcotest.(check int) "terminal size" 0 (Bdd.size m Bdd.one)

let test_bdd_gate_compilation () =
  let t = Pumps.static_tree () in
  let g = Option.get (Fault_tree.gate_index t "pump1") in
  let m, root = Bdd.of_fault_tree_gate t g in
  (* pump1 = a OR b. *)
  let a = Option.get (Fault_tree.basic_index t "a") in
  let b = Option.get (Fault_tree.basic_index t "b") in
  Alcotest.(check bool) "a or b" true
    (root = Bdd.apply_or m (Bdd.var m a) (Bdd.var m b))

let test_zdd_make_node_validation () =
  let zm = Zdd.manager ~n_vars:3 () in
  let low = Zdd.elem zm 2 in
  (* Variable 2 is at the deepest level; putting it above itself fails. *)
  Alcotest.(check bool) "level violation" true
    (match Zdd.make_node zm 2 low Zdd.top with
    | exception Invalid_argument _ -> true
    | _ -> false);
  (* Variable 0 above variable 2 is fine. *)
  let n = Zdd.make_node zm 0 low Zdd.top in
  Alcotest.(check int) "two sets" 2 (Zdd.count zm n)

(* ZDD operations against a set-of-sets model. *)

module SS = Set.Make (struct
  type t = Int_set.t

  let compare = Int_set.compare
end)

let to_model zm node = SS.of_list (Zdd.to_cutsets zm node)

let sets_gen =
  QCheck.Gen.(
    list_size (0 -- 6) (list_size (0 -- 4) (int_bound 4))
    >|= List.map Int_set.of_list)

let with_zdd f (a, b) =
  let zm = Zdd.manager ~n_vars:5 () in
  let za = Zdd.of_sets zm a and zb = Zdd.of_sets zm b in
  f zm za zb (SS.of_list a) (SS.of_list b)

let prop_zdd_union =
  QCheck.Test.make ~name:"Zdd.union" ~count:300
    (QCheck.make QCheck.Gen.(pair sets_gen sets_gen))
    (with_zdd (fun zm za zb ma mb ->
         SS.equal (to_model zm (Zdd.union zm za zb)) (SS.union ma mb)))

let prop_zdd_inter =
  QCheck.Test.make ~name:"Zdd.inter" ~count:300
    (QCheck.make QCheck.Gen.(pair sets_gen sets_gen))
    (with_zdd (fun zm za zb ma mb ->
         SS.equal (to_model zm (Zdd.inter zm za zb)) (SS.inter ma mb)))

let prop_zdd_diff =
  QCheck.Test.make ~name:"Zdd.diff" ~count:300
    (QCheck.make QCheck.Gen.(pair sets_gen sets_gen))
    (with_zdd (fun zm za zb ma mb ->
         SS.equal (to_model zm (Zdd.diff zm za zb)) (SS.diff ma mb)))

let prop_zdd_without =
  QCheck.Test.make ~name:"Zdd.without removes exactly the subsumed sets"
    ~count:300
    (QCheck.make QCheck.Gen.(pair sets_gen sets_gen))
    (with_zdd (fun zm za zb ma mb ->
         let expected =
           SS.filter
             (fun s -> not (SS.exists (fun w -> Int_set.subset w s) mb))
             ma
         in
         SS.equal (to_model zm (Zdd.without zm za zb)) expected))

let prop_zdd_minimal =
  QCheck.Test.make ~name:"Zdd.minimal keeps the inclusion-minimal sets"
    ~count:300
    (QCheck.make sets_gen)
    (fun sets ->
      let zm = Zdd.manager ~n_vars:5 () in
      let z = Zdd.of_sets zm sets in
      let model = SS.of_list sets in
      let expected =
        SS.filter
          (fun s ->
            not
              (SS.exists
                 (fun w -> Int_set.compare w s <> 0 && Int_set.subset w s)
                 model))
          model
      in
      SS.equal (to_model zm (Zdd.minimal zm z)) expected)

(* Algebraic laws the engine's subsumption passes lean on: [without] is
   idempotent in its second argument and annihilates itself (every set
   subsumes itself); [minimal] is idempotent and emits an antichain. Hash
   consing makes these checkable by handle equality. *)

let prop_zdd_without_algebra =
  QCheck.Test.make ~name:"Zdd.without: idempotent, self-annihilating"
    ~count:300
    (QCheck.make QCheck.Gen.(pair sets_gen sets_gen))
    (with_zdd (fun zm za zb _ _ ->
         let w = Zdd.without zm za zb in
         Zdd.without zm w zb = w && Zdd.without zm za za = Zdd.bottom))

let prop_zdd_minimal_algebra =
  QCheck.Test.make ~name:"Zdd.minimal: idempotent antichain" ~count:300
    (QCheck.make sets_gen) (fun sets ->
      let zm = Zdd.manager ~n_vars:5 () in
      let m = Zdd.minimal zm (Zdd.of_sets zm sets) in
      let l = Zdd.to_cutsets zm m in
      let antichain =
        List.for_all
          (fun s ->
            List.for_all
              (fun w -> Int_set.compare w s = 0 || not (Int_set.subset w s))
              l)
          l
      in
      Zdd.minimal zm m = m && antichain)

let test_zdd_count () =
  let zm = Zdd.manager ~n_vars:4 () in
  let z =
    Zdd.of_sets zm
      [ Int_set.of_list [ 0 ]; Int_set.of_list [ 1; 2 ]; Int_set.of_list [ 0 ] ]
  in
  Alcotest.(check int) "distinct sets" 2 (Zdd.count zm z);
  Alcotest.(check int) "bottom" 0 (Zdd.count zm Zdd.bottom);
  Alcotest.(check int) "top" 1 (Zdd.count zm Zdd.top)

(* Regression: the walks must not be depth-bounded by the OCaml stack. A
   300k-node low-spine chain (the family of all singletons) overflows any
   naively recursive [count]/[iter_sets]/[size]; the iterative versions,
   and the tail-recursive [has_empty], must survive it. *)
let test_zdd_deep_chain () =
  let n = 300_000 in
  let zm = Zdd.manager ~n_vars:n () in
  let chain = ref Zdd.bottom in
  for v = n - 1 downto 0 do
    chain := Zdd.make_node zm v !chain Zdd.top
  done;
  let chain = !chain in
  Alcotest.(check int) "count" n (Zdd.count zm chain);
  Alcotest.(check int) "size" n (Zdd.size zm chain);
  let seen = ref 0 in
  Zdd.iter_sets zm chain (fun s ->
      incr seen;
      assert (List.length s = 1));
  Alcotest.(check int) "iter_sets visits all" n !seen;
  (* Uniform weight w: the weighted count of the singleton family is n*w. *)
  let w = Zdd.weighted_count zm (fun _ -> 0.5) chain in
  Alcotest.(check bool) "weighted count" true
    (Float.abs (w -. (0.5 *. float_of_int n)) < 1e-6)

(* A 70-level doubling diagram holds 2^70 sets: [count] must saturate at
   [max_int] ("at least max_int") instead of overflowing into garbage. *)
let test_zdd_count_saturates () =
  let levels = 70 in
  let zm = Zdd.manager ~n_vars:levels () in
  let d = ref Zdd.top in
  for v = levels - 1 downto 0 do
    d := Zdd.make_node zm v !d !d
  done;
  Alcotest.(check int) "saturated" max_int (Zdd.count zm !d);
  (* The float weighted count has the headroom the int count lacks. *)
  let w = Zdd.weighted_count zm (fun _ -> 1.0) !d in
  Alcotest.(check bool) "2^70 sets by weight" true
    (Float.abs ((w /. Float.pow 2.0 70.0) -. 1.0) < 1e-9)

(* The manager's guard governs the recursive set operations: an expired
   deadline must surface as [Limit_hit] from inside the ZDD layer. *)
let test_zdd_guard_trips () =
  let guard = Sdft_util.Guard.create ~deadline:0.0 () in
  let zm = Zdd.manager ~guard ~n_vars:5 () in
  let trips =
    match
      let a = Zdd.elem zm 0 and b = Zdd.elem zm 1 in
      for _ = 1 to 1_000_000 do
        ignore (Zdd.union zm a b)
      done
    with
    | () -> false
    | exception Sdft_util.Guard.Limit_hit Sdft_util.Guard.Deadline -> true
  in
  Alcotest.(check bool) "deadline trips inside zdd ops" true trips

(* [clear_caches] drops only memo tables: every handle stays valid and
   recomputed operations return the identical hash-consed nodes. *)
let test_zdd_clear_caches () =
  let zm = Zdd.manager ~n_vars:5 () in
  let a = Zdd.of_sets zm [ Int_set.of_list [ 0; 1 ]; Int_set.of_list [ 2 ] ] in
  let b = Zdd.of_sets zm [ Int_set.of_list [ 0 ]; Int_set.of_list [ 3; 4 ] ] in
  let u = Zdd.union zm a b and w = Zdd.without zm a b in
  Zdd.clear_caches zm;
  Alcotest.(check bool) "union stable" true (Zdd.union zm a b = u);
  Alcotest.(check bool) "without stable" true (Zdd.without zm a b = w);
  Alcotest.(check int) "handles still enumerable" 4 (Zdd.count zm u)

(* Minimal solutions: brute force oracle over random fault trees. *)

let brute_force_mcs tree =
  let n = Fault_tree.n_basics tree in
  assert (n <= 12);
  let failing = ref [] in
  for mask = 0 to (1 lsl n) - 1 do
    let failed b = mask land (1 lsl b) <> 0 in
    if Fault_tree.fails_top tree ~failed then begin
      let set =
        Int_set.of_list (List.filter (fun b -> failed b) (List.init n Fun.id))
      in
      failing := set :: !failing
    end
  done;
  (* keep inclusion-minimal *)
  List.filter
    (fun s ->
      not
        (List.exists
           (fun w -> Int_set.compare w s <> 0 && Int_set.subset w s)
           !failing))
    !failing
  |> List.sort Int_set.compare

let prop_minsol_matches_brute_force =
  QCheck.Test.make ~name:"minsol = brute force minimal cutsets" ~count:150
    (QCheck.make QCheck.Gen.(0 -- 100000))
    (fun seed ->
      let rng = Sdft_util.Rng.create seed in
      let tree = Random_tree.tree rng ~n_basics:7 ~n_gates:6 in
      let got = Minsol.fault_tree_cutsets tree in
      let expected = brute_force_mcs tree in
      got = expected)

let test_cutsets_above_prunes_by_probability () =
  (* pumps: MCS probabilities are 3e-6 (e), 9e-6 (a,c), 3e-6 (a,d and b,c),
     1e-6 (b,d). Cutoff 2e-6 must keep exactly the four largest. *)
  let sets = Minsol.fault_tree_cutsets_above pumps ~cutoff:2e-6 in
  Alcotest.(check int) "4 cutsets above 2e-6" 4 (List.length sets);
  let all = Minsol.fault_tree_cutsets_above pumps ~cutoff:0.0 in
  Alcotest.(check int) "all 5 with cutoff 0" 5 (List.length all)

let test_cutsets_above_max_order () =
  let sets = Minsol.fault_tree_cutsets_above ~max_order:1 pumps ~cutoff:0.0 in
  Alcotest.(check int) "only {e}" 1 (List.length sets)

(* The in-walk cardinality/probability pruning must emit exactly what
   enumerating everything and filtering afterwards would. *)
let prop_cutsets_above_equals_post_filter =
  QCheck.Test.make ~name:"cutsets_above = enumerate-then-filter" ~count:300
    (QCheck.make QCheck.Gen.(pair sets_gen (1 -- 3)))
    (fun (sets, k) ->
      let zm = Zdd.manager ~n_vars:5 () in
      let z = Zdd.minimal zm (Zdd.of_sets zm sets) in
      let probs v = 0.2 +. (0.1 *. float_of_int v) in
      let cutoff = 0.05 in
      let got = Minsol.cutsets_above ~max_order:k zm z ~probs ~cutoff in
      let expected =
        Zdd.to_cutsets zm z
        |> List.filter (fun s ->
               Int_set.cardinal s <= k
               && Int_set.fold (fun v acc -> acc *. probs v) s 1.0 >= cutoff)
        |> List.sort Int_set.compare
      in
      got = expected)

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "bdd"
    [
      ( "bdd",
        [
          Alcotest.test_case "terminals" `Quick test_terminals;
          Alcotest.test_case "vars" `Quick test_var_eval;
          Alcotest.test_case "hash consing" `Quick test_hash_consing;
          Alcotest.test_case "restrict" `Quick test_restrict;
          Alcotest.test_case "ite" `Quick test_ite;
        ]
        @ qc [ prop_formula_semantics; prop_probability_matches_enumeration ] );
      ( "fault trees",
        [
          Alcotest.test_case "probability" `Quick test_of_fault_tree_probability;
          Alcotest.test_case "assumptions" `Quick test_of_fault_tree_assume;
          Alcotest.test_case "size and levels" `Quick test_bdd_size_and_levels;
          Alcotest.test_case "gate compilation" `Quick test_bdd_gate_compilation;
          Alcotest.test_case "zdd make_node" `Quick test_zdd_make_node_validation;
        ] );
      ( "zdd",
        [
          Alcotest.test_case "count" `Quick test_zdd_count;
          Alcotest.test_case "deep chain (stack safety)" `Quick
            test_zdd_deep_chain;
          Alcotest.test_case "count saturation" `Quick test_zdd_count_saturates;
          Alcotest.test_case "guard trips" `Quick test_zdd_guard_trips;
          Alcotest.test_case "clear caches" `Quick test_zdd_clear_caches;
        ]
        @ qc
            [
              prop_zdd_union;
              prop_zdd_inter;
              prop_zdd_diff;
              prop_zdd_without;
              prop_zdd_minimal;
              prop_zdd_without_algebra;
              prop_zdd_minimal_algebra;
            ] );
      ( "minsol",
        [
          Alcotest.test_case "cutoff pruning" `Quick test_cutsets_above_prunes_by_probability;
          Alcotest.test_case "max order" `Quick test_cutsets_above_max_order;
        ]
        @ qc
            [
              prop_minsol_matches_brute_force;
              prop_cutsets_above_equals_post_filter;
            ] );
    ]

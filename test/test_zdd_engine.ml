(* The ZDD cutset engine against its oracles: the exact minimal-solutions
   enumeration (Minsol), exact MOCUS (cutoff 0), and the analysis-level
   certified-interval accounting. *)

module Int_set = Sdft_util.Int_set

let seed_gen = QCheck.make QCheck.Gen.(0 -- 100000)

let random_tree seed =
  let rng = Sdft_util.Rng.create seed in
  Random_tree.tree rng ~n_basics:8 ~n_gates:7

let product tree s =
  Int_set.fold (fun b acc -> acc *. Fault_tree.prob tree b) s 1.0

let mass tree sets =
  Sdft_util.Kahan.sum_list (List.map (product tree) sets)

let close ?(eps = 1e-12) a b =
  Float.abs (a -. b) <= eps *. Float.max 1.0 (Float.max (Float.abs a) (Float.abs b))

(* cutoff 0: the engine must reproduce the exact minimal-cutset family,
   and its weighted count must equal the enumerated mass. *)
let prop_engine_matches_minsol =
  QCheck.Test.make ~name:"zdd engine (cutoff 0) = exact minimal cutsets"
    ~count:200 seed_gen (fun seed ->
      let tree = random_tree seed in
      let exact = Minsol.fault_tree_cutsets tree in
      let r = Zdd_engine.run tree in
      r.Zdd_engine.cutsets = exact
      && r.Zdd_engine.n_minimal = List.length exact
      && (not r.Zdd_engine.n_minimal_saturated)
      && close r.Zdd_engine.total_mass (mass tree exact)
      && close r.Zdd_engine.residual_mass 0.0)

(* Nonzero cutoff: emitted = exact filtered by product, residual = the
   exact mass of what was filtered out (not an upper bound). *)
let prop_engine_cutoff_accounting =
  QCheck.Test.make ~name:"zdd engine cutoff: exact residual-mass accounting"
    ~count:200
    (QCheck.make
       QCheck.Gen.(pair (0 -- 100000) (oneofl [ 1e-6; 1e-4; 1e-3; 1e-2 ])))
    (fun (seed, cutoff) ->
      let tree = random_tree seed in
      let exact = Minsol.fault_tree_cutsets tree in
      let above, below =
        List.partition (fun s -> product tree s >= cutoff) exact
      in
      let r = Zdd_engine.run ~cutoff tree in
      r.Zdd_engine.cutsets = above
      && r.Zdd_engine.n_minimal = List.length exact
      && close r.Zdd_engine.emitted_mass (mass tree above)
      && close r.Zdd_engine.residual_mass (mass tree below))

let prop_engine_max_order =
  QCheck.Test.make ~name:"zdd engine max_order: in-walk pruning = post-filter"
    ~count:200
    (QCheck.make QCheck.Gen.(pair (0 -- 100000) (1 -- 4)))
    (fun (seed, k) ->
      let tree = random_tree seed in
      let exact = Minsol.fault_tree_cutsets tree in
      let within, beyond =
        List.partition (fun s -> Int_set.cardinal s <= k) exact
      in
      let r = Zdd_engine.run ~max_order:k tree in
      r.Zdd_engine.cutsets = within
      && close r.Zdd_engine.residual_mass (mass tree beyond))

(* Engine race at the library level: exact MOCUS (cutoff 0) and the ZDD
   engine must produce identical families and rare-event totals. *)
let prop_engine_matches_mocus_exact =
  QCheck.Test.make ~name:"zdd engine = exact MOCUS (family and total)"
    ~count:200 seed_gen (fun seed ->
      let tree = random_tree seed in
      let mocus =
        Mocus.run ~options:{ Mocus.default_options with cutoff = 0.0 } tree
      in
      let sorted = List.sort Int_set.compare mocus.Mocus.cutsets in
      let r = Zdd_engine.run tree in
      r.Zdd_engine.cutsets = sorted
      && close r.Zdd_engine.total_mass (mass tree sorted))

let static_sd seed =
  let rng = Sdft_util.Rng.create seed in
  Random_tree.sd rng ~max_prob:0.2 ~n_basics:6 ~n_gates:5 ~n_dynamic:0
    ~n_triggers:0

(* Full-analysis equivalence on static SD trees: same quantified total to
   1e-12, and the ZDD engine's certified interval is exact-width (zero
   pruned mass at cutoff 0) and never vacuous. *)
let prop_analyze_equivalence =
  QCheck.Test.make ~name:"analyze: zdd engine total = mocus total (static)"
    ~count:100 seed_gen (fun seed ->
      let sd = static_sd seed in
      let run engine =
        Sdft_analysis.analyze
          ~options:
            {
              Sdft_analysis.default_options with
              engine;
              cutoff = 1e-12;
            }
          sd
      in
      let m = run Sdft_analysis.Mocus_sound in
      let z = run Sdft_analysis.Zdd_engine in
      close m.Sdft_analysis.total z.Sdft_analysis.total
      && (not z.Sdft_analysis.budget.Sdft_analysis.vacuous)
      && z.Sdft_analysis.budget.Sdft_analysis.lower <= z.Sdft_analysis.total
      && z.Sdft_analysis.total
         <= z.Sdft_analysis.budget.Sdft_analysis.upper +. 1e-15
      (* MOCUS over-accounts what it prunes; the ZDD residual is exact, so
         the ZDD interval can only be at least as tight. *)
      && z.Sdft_analysis.budget.Sdft_analysis.upper
         <= m.Sdft_analysis.budget.Sdft_analysis.upper +. 1e-15)

(* The acceptance scenario: a model where MOCUS records nonzero pruned
   mass (partials below the cutoff that refine only into non-minimal
   cutsets) while the ZDD engine emits every minimal cutset and accounts
   zero residual. *)
let test_zero_pruned_mass_where_mocus_prunes () =
  let b = Fault_tree.Builder.create () in
  let basic name p = Fault_tree.Builder.basic b ~prob:p name in
  let x = basic "x" 1e-6 and y = basic "y" 1e-6 and z = basic "z" 1e-6 in
  let and2 = Fault_tree.Builder.gate b "and2" Fault_tree.And [ x; y ] in
  (* Subsumed branch: refines only into the non-minimal {x, y, z}, whose
     partial product 1e-18 falls below the cutoff and gets pruned. *)
  let and3 = Fault_tree.Builder.gate b "and3" Fault_tree.And [ x; y; z ] in
  let top = Fault_tree.Builder.gate b "top" Fault_tree.Or [ and2; and3 ] in
  let tree = Fault_tree.Builder.build b ~top in
  let cutoff = 1e-15 in
  let mocus =
    Mocus.run ~options:{ Mocus.default_options with cutoff } tree
  in
  Alcotest.(check bool) "mocus prunes" true (mocus.Mocus.pruned_mass > 0.0);
  let r = Zdd_engine.run ~cutoff tree in
  Alcotest.(check int) "one minimal cutset" 1 (List.length r.Zdd_engine.cutsets);
  Alcotest.(check (float 0.0)) "zero residual" 0.0 r.Zdd_engine.residual_mass;
  Alcotest.(check bool) "same family" true
    (r.Zdd_engine.cutsets = List.sort Int_set.compare mocus.Mocus.cutsets);
  (* And at the analysis level: the synthesized generation result carries
     zero pruned mass and a non-vacuous interval. *)
  let gen =
    Sdft_analysis.generate_cutsets ~cutoff Sdft_analysis.Zdd_engine tree
  in
  Alcotest.(check (float 0.0)) "zero pruned mass" 0.0 gen.Mocus.pruned_mass;
  Alcotest.(check bool) "not truncated" false gen.Mocus.truncated

(* Regression: dangling gates (unreachable from the top event but sharing
   basic events with the reachable tree — the industrial generator emits
   these) used to disqualify the top gate from being a module, crashing the
   engine with [Not_found] when it looked up the top module's info. *)
let test_dangling_gate_regression () =
  let b = Fault_tree.Builder.create () in
  let basic name p = Fault_tree.Builder.basic b ~prob:p name in
  let s = basic "s" 0.01 and a = basic "a" 0.02 and c = basic "c" 0.03 in
  let _dangling = Fault_tree.Builder.gate b "dangling" Fault_tree.Or [ s; c ] in
  let top = Fault_tree.Builder.gate b "top" Fault_tree.And [ s; a ] in
  let tree = Fault_tree.Builder.build b ~top in
  Alcotest.(check bool) "top is still a module" true
    (Modules.is_module tree (Fault_tree.top tree));
  let r = Zdd_engine.run tree in
  Alcotest.(check int) "one minimal cutset" 1 (List.length r.Zdd_engine.cutsets);
  Alcotest.(check bool) "exact total" true
    (close r.Zdd_engine.total_mass (0.01 *. 0.02));
  (* Same story at industrial scale: the generator's scaffolding gates must
     not break the modular decomposition. *)
  let ind = Industrial.generate Industrial.small in
  let ri = Zdd_engine.run ~cutoff:1e-9 ind in
  Alcotest.(check bool) "industrial runs" true (ri.Zdd_engine.total_mass > 0.0)

(* Acceptance: a ZDD analysis under an already-expired deadline degrades
   (sound, vacuous interval; DEGRADED provenance) instead of overrunning. *)
let test_deadline_degrades () =
  let sd = static_sd 42 in
  let r =
    Sdft_analysis.analyze
      ~options:
        {
          Sdft_analysis.default_options with
          engine = Sdft_analysis.Zdd_engine;
          deadline = Some 0.0;
        }
      sd
  in
  Alcotest.(check bool) "degraded" true (Sdft_analysis.degraded r);
  Alcotest.(check bool) "generation limit recorded" true
    (r.Sdft_analysis.degradation.Sdft_analysis.generation_limit <> None);
  Alcotest.(check bool) "vacuous but sound" true
    r.Sdft_analysis.budget.Sdft_analysis.vacuous;
  let exact =
    Sdft_analysis.analyze
      ~options:
        { Sdft_analysis.default_options with engine = Sdft_analysis.Zdd_engine }
      sd
  in
  Alcotest.(check bool) "degraded interval brackets the exact total" true
    (r.Sdft_analysis.budget.Sdft_analysis.lower <= exact.Sdft_analysis.total
    && exact.Sdft_analysis.total
       <= r.Sdft_analysis.budget.Sdft_analysis.upper)

let test_module_stats () =
  let tree = Pumps.static_tree () in
  let stats = Zdd_engine.module_stats tree in
  Alcotest.(check bool) "top gate is a module" true
    (List.exists
       (fun s -> s.Zdd_engine.ms_gate = Fault_tree.top tree)
       stats);
  List.iter
    (fun s ->
      Alcotest.(check bool) "cut width positive" true
        (s.Zdd_engine.ms_basics + s.Zdd_engine.ms_inner_modules > 0))
    stats

let test_auto_resolution () =
  (* Static, small: auto picks the ZDD engine. *)
  let static_tree = Pumps.static_tree () in
  Alcotest.(check bool) "static resolves to zdd" true
    (Sdft_analysis.resolve_engine Sdft_analysis.Auto static_tree
    = Sdft_analysis.Zdd_engine);
  (* Translated triggered model: the @trig gates send auto to MOCUS. *)
  let sd = Pumps.sd_tree () in
  let translation = Sdft_translate.translate sd ~horizon:24.0 in
  Alcotest.(check bool) "triggered resolves to mocus" true
    (Sdft_analysis.resolve_engine Sdft_analysis.Auto
       translation.Sdft_translate.static_tree
    = Sdft_analysis.Mocus_sound);
  (* Concrete engines resolve to themselves. *)
  Alcotest.(check bool) "mocus fixed" true
    (Sdft_analysis.resolve_engine Sdft_analysis.Mocus_sound static_tree
    = Sdft_analysis.Mocus_sound)

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "zdd_engine"
    [
      ( "oracle equivalence",
        qc
          [
            prop_engine_matches_minsol;
            prop_engine_cutoff_accounting;
            prop_engine_max_order;
            prop_engine_matches_mocus_exact;
          ] );
      ( "analysis integration",
        [
          Alcotest.test_case "zero pruned mass where MOCUS prunes" `Quick
            test_zero_pruned_mass_where_mocus_prunes;
          Alcotest.test_case "dangling gates keep top modular" `Quick
            test_dangling_gate_regression;
          Alcotest.test_case "deadline degrades soundly" `Quick
            test_deadline_degrades;
          Alcotest.test_case "module stats" `Quick test_module_stats;
          Alcotest.test_case "auto engine resolution" `Quick
            test_auto_resolution;
        ]
        @ qc [ prop_analyze_equivalence ] );
    ]

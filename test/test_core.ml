(* Tests for the core SD fault tree library: dynamic basic events, model
   validation, trigger-gate classification, the static translation, product
   semantics, per-cutset models and the full analysis pipeline.

   The deepest checks compare the paper's decomposed analysis against the
   exact full-product semantics and against closed-form solutions of
   hand-built models. *)

module Int_set = Sdft_util.Int_set

let check_close ?(eps = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

(* ------------------------------------------------------------------ *)
(* Dbe *)

let test_dbe_init_must_sum_to_one () =
  Alcotest.check_raises "bad init"
    (Invalid_argument "Dbe.make: initial distribution must sum to 1") (fun () ->
      ignore (Dbe.make ~n_states:2 ~init:[ (0, 0.5) ] ~transitions:[] ~failed:[ 1 ] ()))

let test_dbe_needs_failed_state () =
  Alcotest.check_raises "no failed"
    (Invalid_argument "Dbe.make: a dynamic event needs at least one failed state")
    (fun () ->
      ignore (Dbe.make ~n_states:2 ~init:[ (0, 1.0) ] ~transitions:[] ~failed:[] ()))

let test_dbe_failed_must_be_on () =
  (* 2 states: 0 off, 1 on; partner swaps; failed = 0 (off) is illegal. *)
  Alcotest.check_raises "failed off"
    (Invalid_argument "Dbe.make: failed states must be switched on") (fun () ->
      ignore
        (Dbe.make ~n_states:2 ~init:[ (0, 1.0) ] ~transitions:[] ~failed:[ 0 ]
           ~switch:([| Dbe.Off; Dbe.On |], [| 1; 0 |])
           ()))

let test_dbe_triggered_starts_off () =
  Alcotest.check_raises "init on"
    (Invalid_argument "Dbe.make: triggered events must start switched off")
    (fun () ->
      ignore
        (Dbe.make ~n_states:2 ~init:[ (1, 1.0) ] ~transitions:[] ~failed:[ 1 ]
           ~switch:([| Dbe.Off; Dbe.On |], [| 1; 0 |])
           ()))

let test_dbe_partner_opposite_mode () =
  Alcotest.check_raises "partner same mode"
    (Invalid_argument "Dbe.make: switch partner must be in the opposite mode")
    (fun () ->
      ignore
        (Dbe.make ~n_states:2 ~init:[ (0, 1.0) ] ~transitions:[] ~failed:[ 1 ]
           ~switch:([| Dbe.Off; Dbe.On |], [| 0; 1 |])
           ()))

let test_dbe_exponential_worst_case () =
  (* With the failed state absorbing, repairs are irrelevant for the first
     failure: P = 1 - exp(-lambda t). *)
  let lambda = 0.05 and t = 24.0 in
  List.iter
    (fun mu ->
      let d = Dbe.exponential ~lambda ?mu () in
      check_close ~eps:1e-10 "worst case"
        (1.0 -. exp (-.lambda *. t))
        (Dbe.worst_case_failure_probability d ~horizon:t))
    [ None; Some 0.5 ]

let test_dbe_erlang_worst_case () =
  (* Erlang-2 with per-phase rate 2*lambda: CDF 1 - e^{-2lt}(1 + 2lt). *)
  let lambda = 0.02 and t = 10.0 in
  let d = Dbe.erlang ~phases:2 ~lambda () in
  let r = 2.0 *. lambda in
  check_close ~eps:1e-10 "erlang-2 cdf"
    (1.0 -. (exp (-.r *. t) *. (1.0 +. (r *. t))))
    (Dbe.worst_case_failure_probability d ~horizon:t)

let test_dbe_triggered_equals_untriggered_worst_case () =
  (* The worst case of a triggered event is "on from time zero", which for
     the constructors matches the untriggered chain. *)
  let lambda = 0.03 in
  let plain = Dbe.erlang ~phases:3 ~lambda ~mu:0.2 () in
  let triggered =
    Dbe.triggered_erlang ~phases:3 ~lambda ~mu:0.2 ~passive_factor:0.01 ()
  in
  check_close ~eps:1e-10 "same worst case"
    (Dbe.worst_case_failure_probability plain ~horizon:24.0)
    (Dbe.worst_case_failure_probability triggered ~horizon:24.0)

let test_dbe_triggered_structure () =
  let d = Dbe.triggered_erlang ~phases:2 ~lambda:0.1 ~mu:0.5 () in
  Alcotest.(check int) "states" 6 (Dbe.n_states d);
  Alcotest.(check bool) "is triggered" true (Dbe.is_triggered_model d);
  (* off-phases 0..2, on-phases 3..5 *)
  Alcotest.(check bool) "0 is off" true (Dbe.mode_of d 0 = Dbe.Off);
  Alcotest.(check bool) "3 is on" true (Dbe.mode_of d 3 = Dbe.On);
  Alcotest.(check int) "on(0)" 3 (Dbe.switch_on d 0);
  Alcotest.(check int) "off(5)" 2 (Dbe.switch_off d 5);
  Alcotest.(check bool) "failed on-phase" true (Dbe.is_failed d 5);
  Alcotest.(check bool) "broken off-phase not failed" false (Dbe.is_failed d 2);
  Alcotest.(check (list (pair int (float 0.0)))) "initial on" [ (3, 1.0) ]
    (Dbe.initial_on d)

let test_dbe_repair_only_when_on () =
  let d = Dbe.triggered_erlang ~phases:1 ~lambda:0.1 ~mu:0.5 () in
  let chain = Dbe.chain d in
  (* on-failed is state 3, on-ok is 2, off-failed is 1, off-ok is 0. *)
  check_close "repair from on-failed" 0.5 (Ctmc.rate chain 3 2);
  check_close "no repair off" 0.0 (Ctmc.rate chain 1 0)

let test_dbe_repair_when_off () =
  let d =
    Dbe.triggered_erlang ~phases:1 ~lambda:0.1 ~mu:0.5 ~repair_when_off:true ()
  in
  let chain = Dbe.chain d in
  check_close "repair when off too" 0.5 (Ctmc.rate chain 1 0)

(* ------------------------------------------------------------------ *)
(* Sdft validation *)

let simple_dyn () = Dbe.exponential ~lambda:0.1 ()

let triggered_dyn () =
  Dbe.triggered_exponential ~lambda:0.1 ~passive_factor:0.0 ()

let test_sdft_unknown_names () =
  let tree = Pumps.static_tree () in
  Alcotest.check_raises "unknown basic"
    (Invalid_argument "Sdft.make: unknown basic event \"zz\"") (fun () ->
      ignore (Sdft.make tree ~dynamic:[ ("zz", simple_dyn ()) ] ~triggers:[]));
  Alcotest.check_raises "unknown gate"
    (Invalid_argument "Sdft.make: unknown gate \"gg\"") (fun () ->
      ignore
        (Sdft.make tree
           ~dynamic:[ ("b", triggered_dyn ()) ]
           ~triggers:[ ("gg", "b") ]))

let test_sdft_trigger_requires_switch () =
  let tree = Pumps.static_tree () in
  Alcotest.check_raises "no switch"
    (Invalid_argument
       "Sdft.of_indexed: d is triggered but has no on/off structure") (fun () ->
      ignore
        (Sdft.make tree
           ~dynamic:[ ("d", simple_dyn ()) ]
           ~triggers:[ ("pump1", "d") ]))

let test_sdft_double_trigger_rejected () =
  let tree = Pumps.static_tree () in
  Alcotest.check_raises "two triggers"
    (Invalid_argument "Sdft.of_indexed: d triggered by two gates") (fun () ->
      ignore
        (Sdft.make tree
           ~dynamic:[ ("d", triggered_dyn ()) ]
           ~triggers:[ ("pump1", "d"); ("pumps", "d") ]))

let test_sdft_cyclic_trigger_rejected () =
  (* d is under pump2; pump2 triggering d closes a cycle. *)
  let tree = Pumps.static_tree () in
  Alcotest.check_raises "cycle"
    (Invalid_argument "Sdft.make: cyclic trigger structure") (fun () ->
      ignore
        (Sdft.make tree
           ~dynamic:[ ("d", triggered_dyn ()) ]
           ~triggers:[ ("pump2", "d") ]))

let test_sdft_accessors () =
  let sd = Pumps.sd_tree () in
  let tree = Sdft.tree sd in
  let b = Option.get (Fault_tree.basic_index tree "b") in
  let d = Option.get (Fault_tree.basic_index tree "d") in
  let pump1 = Option.get (Fault_tree.gate_index tree "pump1") in
  Alcotest.(check bool) "b dynamic" true (Sdft.is_dynamic sd b);
  Alcotest.(check bool) "a static" false (Sdft.is_dynamic sd 0);
  Alcotest.(check (list int)) "dynamic list" [ b; d ] (Sdft.dynamic_basics sd);
  Alcotest.(check (option int)) "trigger of d" (Some pump1) (Sdft.trigger_of sd d);
  Alcotest.(check (option int)) "trigger of b" None (Sdft.trigger_of sd b);
  Alcotest.(check (list int)) "triggered by pump1" [ d ] (Sdft.triggered_by sd pump1);
  Alcotest.(check (list (pair int int))) "edges" [ (pump1, d) ] (Sdft.trigger_edges sd)

(* ------------------------------------------------------------------ *)
(* Classification (Section V-A shapes of Figure 1) *)

(* Helper: tree with a trigger gate of a chosen shape. The triggered event
   [tgt] sits beside the shape under the top AND. *)
let classified_shape build_shape =
  let b = Fault_tree.Builder.create () in
  let tgt = Fault_tree.Builder.basic b "tgt" in
  let shape, dynamic = build_shape b in
  let top = Fault_tree.Builder.gate b "top" Fault_tree.And [ shape; tgt ] in
  let tree = Fault_tree.Builder.build b ~top in
  let sd =
    Sdft.make tree
      ~dynamic:(("tgt", triggered_dyn ()) :: dynamic)
      ~triggers:
        [ ((match shape with
           | Fault_tree.G g -> Fault_tree.gate_name tree g
           | Fault_tree.B _ -> assert false),
           "tgt") ]
  in
  let g =
    match shape with Fault_tree.G g -> g | Fault_tree.B _ -> assert false
  in
  (sd, g)

let test_classify_static_branching () =
  (* OR(dyn, static): one dynamic child per OR gate. *)
  let sd, g =
    classified_shape (fun b ->
        let x = Fault_tree.Builder.basic b "x" in
        let s = Fault_tree.Builder.basic b ~prob:0.1 "s" in
        let gate = Fault_tree.Builder.gate b "g" Fault_tree.Or [ x; s ] in
        (gate, [ ("x", simple_dyn ()) ]))
  in
  Alcotest.(check bool) "SB" true
    (Sdft_classify.classify sd g = Sdft_classify.Static_branching)

let test_classify_static_joins () =
  (* OR(dyn1, dyn2): two dynamic children under an OR, no AND with dynamic
     children — the simplest static-joins shape. *)
  let sd, g =
    classified_shape (fun b ->
        let x = Fault_tree.Builder.basic b "x" in
        let y = Fault_tree.Builder.basic b "y" in
        let gate = Fault_tree.Builder.gate b "g" Fault_tree.Or [ x; y ] in
        (gate, [ ("x", simple_dyn ()); ("y", simple_dyn ()) ]))
  in
  match Sdft_classify.classify sd g with
  | Sdft_classify.Static_joins _ -> ()
  | other ->
    Alcotest.failf "expected static joins, got %s"
      (Format.asprintf "%a" Sdft_classify.pp_class other)

let test_classify_and_only_is_static_branching () =
  (* AND(dyn1, dyn2): no OR gate in the subtree, so the static-branching
     condition holds vacuously (the paper's condition constrains OR gates
     only — Figure 1 left, case 3). *)
  let sd, g =
    classified_shape (fun b ->
        let x = Fault_tree.Builder.basic b "x" in
        let y = Fault_tree.Builder.basic b "y" in
        let gate = Fault_tree.Builder.gate b "g" Fault_tree.And [ x; y ] in
        (gate, [ ("x", simple_dyn ()); ("y", simple_dyn ()) ]))
  in
  Alcotest.(check bool) "vacuous SB" true
    (Sdft_classify.classify sd g = Sdft_classify.Static_branching)

let test_classify_general () =
  (* AND(OR(dyn1, dyn2), dyn3): the OR violates static branching and the
     AND (with dynamic children) violates static joins. *)
  let sd, g =
    classified_shape (fun b ->
        let x = Fault_tree.Builder.basic b "x" in
        let y = Fault_tree.Builder.basic b "y" in
        let z = Fault_tree.Builder.basic b "z" in
        let o = Fault_tree.Builder.gate b "o" Fault_tree.Or [ x; y ] in
        let gate = Fault_tree.Builder.gate b "g" Fault_tree.And [ o; z ] in
        ( gate,
          [ ("x", simple_dyn ()); ("y", simple_dyn ()); ("z", simple_dyn ()) ]
        ))
  in
  Alcotest.(check bool) "general" true
    (Sdft_classify.classify sd g = Sdft_classify.General)

let test_classify_pumps_running_example () =
  let sd = Pumps.sd_tree () in
  let tree = Sdft.tree sd in
  let pump1 = Option.get (Fault_tree.gate_index tree "pump1") in
  Alcotest.(check bool) "pump1 SB" true
    (Sdft_classify.classify sd pump1 = Sdft_classify.Static_branching);
  let r = Sdft_classify.report sd in
  Alcotest.(check int) "one trigger gate" 1 (List.length r.Sdft_classify.per_trigger_gate);
  Alcotest.(check int) "SB count" 1 r.Sdft_classify.n_static_branching

let test_classify_uniform_triggering () =
  (* Two triggered events under one OR, both triggered by the same external
     gate: static joins with uniform triggering. *)
  let b = Fault_tree.Builder.create () in
  let x = Fault_tree.Builder.basic b "x" in
  let y = Fault_tree.Builder.basic b "y" in
  let s = Fault_tree.Builder.basic b ~prob:0.2 "s" in
  let src = Fault_tree.Builder.gate b "src" Fault_tree.Or [ s ] in
  let g = Fault_tree.Builder.gate b "g" Fault_tree.Or [ x; y ] in
  let top = Fault_tree.Builder.gate b "top" Fault_tree.And [ src; g ] in
  let tree = Fault_tree.Builder.build b ~top in
  let sd =
    Sdft.make tree
      ~dynamic:[ ("x", triggered_dyn ()); ("y", triggered_dyn ()) ]
      ~triggers:[ ("src", "x"); ("src", "y") ]
  in
  let g_id = Option.get (Fault_tree.gate_index tree "g") in
  Alcotest.(check bool) "SJ uniform" true
    (Sdft_classify.classify sd g_id
    = Sdft_classify.Static_joins { uniform = true });
  Alcotest.(check bool) "uniform check" true (Sdft_classify.has_uniform_triggering sd g_id)

(* ------------------------------------------------------------------ *)
(* Translation (Section V-B) *)

let test_translate_pumps_preserves_mcs () =
  let sd = Pumps.sd_tree () in
  let tree = Sdft.tree sd in
  let translation = Sdft_translate.translate sd ~horizon:24.0 in
  let mcs_sd =
    Mocus.minimal_cutsets ~options:{ Mocus.default_options with cutoff = 0.0 }
      translation.Sdft_translate.static_tree
  in
  let expected =
    Mocus.minimal_cutsets ~options:{ Mocus.default_options with cutoff = 0.0 }
      tree
  in
  (* Basic-event indices are preserved by the translation. *)
  Alcotest.(check int) "same count" (List.length expected) (List.length mcs_sd);
  Alcotest.(check bool) "same sets" true
    (List.sort Int_set.compare mcs_sd = List.sort Int_set.compare expected)

let test_translate_worst_case_values () =
  let sd = Pumps.sd_tree () in
  let translation = Sdft_translate.translate sd ~horizon:24.0 in
  let tree = Sdft.tree sd in
  let b = Option.get (Fault_tree.basic_index tree "b") in
  let a = Option.get (Fault_tree.basic_index tree "a") in
  check_close ~eps:1e-10 "dynamic got worst case"
    (1.0 -. exp (-.Pumps.failure_rate *. 24.0))
    translation.Sdft_translate.worst_case.(b);
  check_close ~eps:1e-15 "static kept" 3e-3 translation.Sdft_translate.worst_case.(a)

let test_translate_adds_trigger_and () =
  let sd = Pumps.sd_tree () in
  let translation = Sdft_translate.translate sd ~horizon:24.0 in
  let t = translation.Sdft_translate.static_tree in
  Alcotest.(check bool) "wrapper gate exists" true
    (Fault_tree.gate_index t "d@trig" <> None);
  (* One extra gate compared to the original. *)
  Alcotest.(check int) "gate count" 5 (Fault_tree.n_gates t)

let test_translate_triggered_event_mcs_includes_trigger () =
  (* top = OR(d); d triggered by gate over a static z: the MCS must include
     z because d alone cannot fail. *)
  let b = Fault_tree.Builder.create () in
  let z = Fault_tree.Builder.basic b ~prob:0.3 "z" in
  let d = Fault_tree.Builder.basic b "d" in
  let src = Fault_tree.Builder.gate b "src" Fault_tree.Or [ z ] in
  let top = Fault_tree.Builder.gate b "top" Fault_tree.Or [ d; src ] in
  ignore src;
  let tree = Fault_tree.Builder.build b ~top in
  let sd =
    Sdft.make tree ~dynamic:[ ("d", triggered_dyn ()) ] ~triggers:[ ("src", "d") ]
  in
  let translation = Sdft_translate.translate sd ~horizon:24.0 in
  let mcs =
    Mocus.minimal_cutsets ~options:{ Mocus.default_options with cutoff = 0.0 }
      translation.Sdft_translate.static_tree
  in
  (* MCS: {z} alone (src fails top through OR). {d} is NOT an MCS; {d,z} is
     subsumed by {z}. *)
  Alcotest.(check (list (Alcotest.testable Int_set.pp Int_set.equal)))
    "only {z}"
    [ Int_set.singleton 0 ]
    mcs

(* ------------------------------------------------------------------ *)
(* Product semantics (Section III-C) *)

let test_product_static_tree_matches_exact () =
  let tree = Pumps.static_tree () in
  let sd = Sdft.static_only tree in
  let p = Sdft_product.solve sd ~horizon:5.0 in
  check_close ~eps:1e-12 "static product = enumeration"
    (Fault_tree.exact_top_probability_enumerate tree)
    p

let test_product_trigger_sequence_is_erlang () =
  (* top = AND(x, y), y triggered by a wrapper around x, both Exp(lambda)
     with no repairs and no passive failures: the top fails exactly when
     x fails and then y fails — an Erlang-2 time. *)
  let lambda = 0.2 in
  let b = Fault_tree.Builder.create () in
  let x = Fault_tree.Builder.basic b "x" in
  let y = Fault_tree.Builder.basic b "y" in
  let wrap = Fault_tree.Builder.gate b "wrap" Fault_tree.Or [ x ] in
  ignore wrap;
  let top = Fault_tree.Builder.gate b "top" Fault_tree.And [ x; y ] in
  let tree = Fault_tree.Builder.build b ~top in
  let sd =
    Sdft.make tree
      ~dynamic:
        [
          ("x", Dbe.exponential ~lambda ());
          ("y", Dbe.triggered_exponential ~lambda ~passive_factor:0.0 ());
        ]
      ~triggers:[ ("wrap", "y") ]
  in
  List.iter
    (fun t ->
      let p = Sdft_product.solve sd ~horizon:t in
      let lt = lambda *. t in
      check_close ~eps:1e-9 "erlang-2" (1.0 -. (exp (-.lt) *. (1.0 +. lt))) p)
    [ 1.0; 5.0; 20.0 ]

let test_product_untriggered_spare_never_fails () =
  (* A triggered event whose trigger never fires (source probability 0)
     cannot fail. *)
  let b = Fault_tree.Builder.create () in
  let z = Fault_tree.Builder.basic b ~prob:0.0 "z" in
  let y = Fault_tree.Builder.basic b "y" in
  let src = Fault_tree.Builder.gate b "src" Fault_tree.Or [ z ] in
  ignore src;
  let top = Fault_tree.Builder.gate b "top" Fault_tree.Or [ y ] in
  let tree = Fault_tree.Builder.build b ~top in
  let sd =
    Sdft.make tree
      ~dynamic:[ ("y", Dbe.triggered_exponential ~lambda:5.0 ~passive_factor:0.0 ()) ]
      ~triggers:[ ("src", "y") ]
  in
  check_close ~eps:1e-12 "never" 0.0 (Sdft_product.solve sd ~horizon:100.0)

let test_product_passive_failures_do_count () =
  (* With passive failures enabled, the off-copy degrades too, but the
     event only *counts* as failed once triggered; with a never-failing
     trigger the top never fails. *)
  let b = Fault_tree.Builder.create () in
  let z = Fault_tree.Builder.basic b ~prob:0.0 "z" in
  let y = Fault_tree.Builder.basic b "y" in
  let src = Fault_tree.Builder.gate b "src" Fault_tree.Or [ z ] in
  ignore src;
  let top = Fault_tree.Builder.gate b "top" Fault_tree.Or [ y ] in
  let tree = Fault_tree.Builder.build b ~top in
  let sd =
    Sdft.make tree
      ~dynamic:[ ("y", Dbe.triggered_exponential ~lambda:5.0 ~passive_factor:1.0 ()) ]
      ~triggers:[ ("src", "y") ]
  in
  check_close ~eps:1e-12 "broken but off is not failed" 0.0
    (Sdft_product.solve sd ~horizon:100.0)

let test_product_max_states_guard () =
  let sd = Pumps.sd_tree () in
  Alcotest.(check bool) "raises" true
    (match Sdft_product.build ~max_states:2 sd with
    | exception Sdft_product.Too_many_states _ -> true
    | _ -> false)

let test_product_pumps_value () =
  (* Golden value cross-checked against the Monte-Carlo simulator and the
     rare-event approximation. *)
  let sd = Pumps.sd_tree () in
  let p = Sdft_product.solve sd ~horizon:24.0 in
  check_close ~eps:1e-8 "pumps 24h" 3.505477e-4 p

(* ------------------------------------------------------------------ *)
(* Cutset models (Section V-C) *)

let pumps_sd = Pumps.sd_tree ()

let pumps_tree = Sdft.tree pumps_sd

let pidx name = Option.get (Fault_tree.basic_index pumps_tree name)

let pset names = Int_set.of_list (List.map pidx names)

let test_cutset_model_static_only () =
  let m = Cutset_model.build pumps_sd (pset [ "a"; "c" ]) in
  Alcotest.(check bool) "no model" true (m.Cutset_model.model = None);
  check_close ~eps:1e-15 "multiplier" 9e-6 m.Cutset_model.static_multiplier;
  let q = Cutset_model.quantify m ~horizon:24.0 in
  check_close ~eps:1e-15 "prob" 9e-6 q.Cutset_model.probability;
  Alcotest.(check int) "no chain" 0 q.Cutset_model.product_states

let test_cutset_model_dynamic_pair () =
  let m = Cutset_model.build pumps_sd (pset [ "b"; "d" ]) in
  Alcotest.(check int) "2 dynamic" 2 m.Cutset_model.n_dynamic_in_cutset;
  Alcotest.(check int) "0 added" 0 m.Cutset_model.n_added_dynamic;
  check_close ~eps:1e-15 "multiplier 1" 1.0 m.Cutset_model.static_multiplier;
  let q = Cutset_model.quantify m ~horizon:24.0 in
  Alcotest.(check bool) "chain built" true (q.Cutset_model.product_states > 0);
  Alcotest.(check bool) "nontrivial prob" true
    (q.Cutset_model.probability > 0.0 && q.Cutset_model.probability < 1.0)

let test_cutset_model_impossible () =
  (* {d} alone: d is triggered by pump1 but nothing of pump1 is in the
     cutset, so under static branching the trigger can never fire. *)
  let m = Cutset_model.build pumps_sd (pset [ "d" ]) in
  Alcotest.(check bool) "impossible" true m.Cutset_model.impossible;
  let q = Cutset_model.quantify m ~horizon:24.0 in
  check_close ~eps:0.0 "zero" 0.0 q.Cutset_model.probability

let test_cutset_model_always_triggered () =
  (* {a, d}: a (static, in C) fails pump1, so d is triggered from time 0;
     p~ = p(a) * P(d fails within t | on from 0). *)
  let m = Cutset_model.build pumps_sd (pset [ "a"; "d" ]) in
  Alcotest.(check bool) "has model" true (m.Cutset_model.model <> None);
  let q = Cutset_model.quantify m ~horizon:24.0 in
  let d_worst =
    Dbe.worst_case_failure_probability
      (Sdft.dbe pumps_sd (pidx "d"))
      ~horizon:24.0
  in
  check_close ~eps:1e-9 "p(a) * worst(d)" (3e-3 *. d_worst) q.Cutset_model.probability

let test_cutset_model_rea_matches_exact_pumps () =
  (* Sum of p~ over the five MCS vs the exact product semantics: the REA
     over-approximates but stays within a percent on this model. *)
  let r = Sdft_analysis.analyze pumps_sd in
  let exact = Sdft_product.solve pumps_sd ~horizon:24.0 in
  Alcotest.(check bool) "REA >= exact" true
    (r.Sdft_analysis.total >= exact -. 1e-12);
  Alcotest.(check bool) "REA within 1%" true
    (r.Sdft_analysis.total -. exact < 0.01 *. exact)

(* Static joins: the added event f must appear in FT_C, and the single-MCS
   rare-event approximation must equal the exact value. *)
let static_joins_model () =
  let b = Fault_tree.Builder.create () in
  let y = Fault_tree.Builder.basic b "y" in
  let f = Fault_tree.Builder.basic b "f" in
  let j = Fault_tree.Builder.basic b "j" in
  let g = Fault_tree.Builder.gate b "g" Fault_tree.Or [ y; f ] in
  ignore g;
  let top = Fault_tree.Builder.gate b "top" Fault_tree.And [ y; j ] in
  let tree = Fault_tree.Builder.build b ~top in
  Sdft.make tree
    ~dynamic:
      [
        ("y", Dbe.exponential ~lambda:0.08 ~mu:0.3 ());
        ("f", Dbe.exponential ~lambda:0.05 ~mu:0.4 ());
        ("j", Dbe.triggered_exponential ~lambda:0.1 ~mu:0.2 ~passive_factor:0.0 ());
      ]
    ~triggers:[ ("g", "j") ]

let test_cutset_model_static_joins_adds_events () =
  let sd = static_joins_model () in
  let tree = Sdft.tree sd in
  let y = Option.get (Fault_tree.basic_index tree "y") in
  let j = Option.get (Fault_tree.basic_index tree "j") in
  let g = Option.get (Fault_tree.gate_index tree "g") in
  (match Sdft_classify.classify sd g with
  | Sdft_classify.Static_joins _ -> ()
  | c -> Alcotest.failf "expected SJ, got %a" Sdft_classify.pp_class c);
  let m = Cutset_model.build sd (Int_set.of_list [ y; j ]) in
  Alcotest.(check int) "f added" 1 m.Cutset_model.n_added_dynamic;
  (* Exactness: {y, j} is the only MCS, and Failed({y,j}) is exactly the
     top-failure set, so p~ must equal the full product probability. *)
  let q = Cutset_model.quantify m ~horizon:24.0 in
  let exact = Sdft_product.solve sd ~horizon:24.0 in
  check_close ~eps:1e-9 "p~ = exact" exact q.Cutset_model.probability

(* The same comparison on a general-case trigger: the trigger gate is an
   AND over an OR of two dynamic events and a static guard that is not in
   the cutset, forcing the general Rel rule to pull the guard in. *)
let test_cutset_model_general_trigger_exact () =
  let b = Fault_tree.Builder.create () in
  let x1 = Fault_tree.Builder.basic b "x1" in
  let x2 = Fault_tree.Builder.basic b "x2" in
  let s = Fault_tree.Builder.basic b ~prob:0.6 "s" in
  let j = Fault_tree.Builder.basic b "j" in
  let o = Fault_tree.Builder.gate b "o" Fault_tree.Or [ x1; x2 ] in
  let g = Fault_tree.Builder.gate b "g" Fault_tree.And [ o; s ] in
  ignore g;
  let top = Fault_tree.Builder.gate b "top" Fault_tree.And [ x1; j ] in
  let tree = Fault_tree.Builder.build b ~top in
  let sd =
    Sdft.make tree
      ~dynamic:
        [
          ("x1", Dbe.exponential ~lambda:0.07 ~mu:0.25 ());
          ("x2", Dbe.exponential ~lambda:0.09 ~mu:0.35 ());
          ("j", Dbe.triggered_exponential ~lambda:0.2 ~mu:0.1 ~passive_factor:0.0 ());
        ]
      ~triggers:[ ("g", "j") ]
  in
  let g_id = Option.get (Fault_tree.gate_index tree "g") in
  Alcotest.(check bool) "general" true
    (Sdft_classify.classify sd g_id = Sdft_classify.General);
  let ids names = List.map (fun n -> Option.get (Fault_tree.basic_index tree n)) names in
  let m = Cutset_model.build sd (Int_set.of_list (ids [ "x1"; "j" ])) in
  (* x2 (dynamic) and s (static, not in C) are both pulled into FT_C. *)
  Alcotest.(check int) "x2 added" 1 m.Cutset_model.n_added_dynamic;
  Alcotest.(check int) "s added" 1 m.Cutset_model.n_added_static;
  let q = Cutset_model.quantify m ~horizon:12.0 in
  let exact = Sdft_product.solve sd ~horizon:12.0 in
  check_close ~eps:1e-9 "p~ = exact" exact q.Cutset_model.probability

(* ------------------------------------------------------------------ *)
(* Full analysis pipeline *)

let test_analysis_pumps_summary () =
  let r = Sdft_analysis.analyze pumps_sd in
  Alcotest.(check int) "5 cutsets" 5 r.Sdft_analysis.n_cutsets;
  Alcotest.(check int) "3 dynamic cutsets" 3 r.Sdft_analysis.n_dynamic_cutsets;
  check_close ~eps:1e-7 "golden total" 3.522e-4 r.Sdft_analysis.total;
  let h = Sdft_analysis.dynamic_histogram r in
  Alcotest.(check int) "hist 0" 2 (Sdft_util.Histogram.count h 0);
  Alcotest.(check int) "hist 1" 2 (Sdft_util.Histogram.count h 1);
  Alcotest.(check int) "hist 2" 1 (Sdft_util.Histogram.count h 2);
  check_close ~eps:1e-12 "no added events" 0.0 (Sdft_analysis.mean_added_dynamic r)

let test_analysis_cutoff_excludes () =
  let options =
    { Sdft_analysis.default_options with cutoff = 1e-4 }
  in
  let r = Sdft_analysis.analyze ~options pumps_sd in
  (* Only {b,d} (1.98e-4) survives a 1e-4 cutoff in the final sum. *)
  Alcotest.(check bool) "total ~ 1.98e-4" true
    (Float.abs (r.Sdft_analysis.total -. 1.979e-4) < 1e-6)

let test_analysis_static_rare_event () =
  let tree = Pumps.static_tree () in
  let rea, n = Sdft_analysis.static_rare_event tree in
  Alcotest.(check int) "5 relevant" 5 n;
  check_close ~eps:1e-12 "rea" 1.9e-5 rea

let test_analysis_dynamic_importance () =
  let r = Sdft_analysis.analyze pumps_sd in
  (* FV of d: cutsets {b,d} and {a,d} carry its weight. *)
  let p_of names =
    let s = pset names in
    (List.find
       (fun (i : Sdft_analysis.cutset_info) -> Int_set.equal i.cutset s)
       r.Sdft_analysis.cutsets)
      .probability
  in
  let expected = (p_of [ "b"; "d" ] +. p_of [ "a"; "d" ]) /. r.Sdft_analysis.total in
  check_close ~eps:1e-12 "FV(d)" expected
    (Sdft_analysis.fussell_vesely r (pidx "d"));
  (* Ranking: the dynamic events dominate the static ones here. *)
  match Sdft_analysis.rank_by_fussell_vesely r ~n_basics:5 with
  | first :: _ ->
    Alcotest.(check bool) "most important is dynamic" true
      (Sdft.is_dynamic pumps_sd first)
  | [] -> Alcotest.fail "empty ranking"

let test_analysis_parallel_matches_sequential () =
  let sequential = Sdft_analysis.analyze pumps_sd in
  let options = { Sdft_analysis.default_options with domains = 3 } in
  let parallel = Sdft_analysis.analyze ~options pumps_sd in
  check_close ~eps:1e-15 "same total" sequential.Sdft_analysis.total
    parallel.Sdft_analysis.total;
  Alcotest.(check int) "same cutsets" sequential.Sdft_analysis.n_cutsets
    parallel.Sdft_analysis.n_cutsets

let test_analysis_engines_agree () =
  let total engine =
    let options = { Sdft_analysis.default_options with engine } in
    (Sdft_analysis.analyze ~options pumps_sd).Sdft_analysis.total
  in
  let reference = total Sdft_analysis.Mocus_sound in
  check_close ~eps:1e-12 "aggressive" reference (total Sdft_analysis.Mocus_aggressive);
  check_close ~eps:1e-12 "bdd" reference (total Sdft_analysis.Bdd_engine)

let test_analysis_fv_respects_cutoff () =
  (* With cutoff 1e-4 only {b,d} survives into [total]; the FV sums must
     apply the same filter or fractions exceed 1 ({a,d} used to leak into
     FV(d)'s numerator but not into the denominator). *)
  let options = { Sdft_analysis.default_options with cutoff = 1e-4 } in
  let r = Sdft_analysis.analyze ~options pumps_sd in
  for a = 0 to 4 do
    let fv = Sdft_analysis.fussell_vesely r a in
    if fv < 0.0 || fv > 1.0 then Alcotest.failf "FV out of [0,1]: %f" fv
  done;
  check_close ~eps:1e-12 "FV(d) = 1 (sole surviving cutset)" 1.0
    (Sdft_analysis.fussell_vesely r (pidx "d"));
  check_close ~eps:1e-12 "FV(a) = 0 (all its cutsets below cutoff)" 0.0
    (Sdft_analysis.fussell_vesely r (pidx "a"));
  (* The ranking must be driven by the same filtered sums. *)
  (match Sdft_analysis.rank_by_fussell_vesely r ~n_basics:5 with
  | first :: second :: _ ->
    let top2 = List.sort compare [ first; second ] in
    Alcotest.(check (list int)) "b and d lead" [ pidx "b"; pidx "d" ] top2
  | _ -> Alcotest.fail "short ranking");
  (* Sanity: without a binding cutoff the fractions are unchanged. *)
  let r0 = Sdft_analysis.analyze pumps_sd in
  let sum_fv =
    List.fold_left
      (fun acc a -> acc +. Sdft_analysis.fussell_vesely r0 a)
      0.0 [ 0; 1; 2; 3; 4 ]
  in
  Alcotest.(check bool) "each event's FV still positive" true (sum_fv > 0.0)

let test_analysis_parallel_4_identical_probabilities () =
  let seq = Sdft_analysis.analyze pumps_sd in
  let options = { Sdft_analysis.default_options with domains = 4 } in
  let par = Sdft_analysis.analyze ~options pumps_sd in
  let key (i : Sdft_analysis.cutset_info) = (i.cutset, i.probability) in
  Alcotest.(check int) "same count" seq.Sdft_analysis.n_cutsets
    par.Sdft_analysis.n_cutsets;
  (* Per-cutset probabilities must be bit-identical, not merely close:
     the work distribution cannot change any numerical path. *)
  List.iter2
    (fun a b ->
      let ca, pa = key a and cb, pb = key b in
      Alcotest.(check bool) "same cutset" true (Int_set.equal ca cb);
      Alcotest.(check bool) "identical probability" true (pa = pb))
    seq.Sdft_analysis.cutsets par.Sdft_analysis.cutsets;
  (* The cost-descending schedule reorders work internally; the results
     must come back in input order, so the Kahan total sums identically. *)
  Alcotest.(check bool) "identical total" true
    (seq.Sdft_analysis.total = par.Sdft_analysis.total)

(* Error budget *)

let test_budget_certifies_pumps () =
  let r = Sdft_analysis.analyze pumps_sd in
  let b = r.Sdft_analysis.budget in
  Alcotest.(check bool) "not vacuous" false b.Sdft_analysis.vacuous;
  Alcotest.(check bool) "lower <= total" true (b.Sdft_analysis.lower <= r.Sdft_analysis.total);
  Alcotest.(check bool) "total <= upper" true (r.Sdft_analysis.total <= b.Sdft_analysis.upper);
  (* The certificate itself: the exact product-chain probability must lie
     inside the interval (pumps is small enough to solve exactly). *)
  let exact = Sdft_product.solve pumps_sd ~horizon:24.0 in
  Alcotest.(check bool) "lower <= exact" true (b.Sdft_analysis.lower <= exact +. 1e-12);
  Alcotest.(check bool) "exact <= upper" true (exact <= b.Sdft_analysis.upper +. 1e-12);
  (* Term structure: nothing pruned at the default cutoff, a positive but
     tiny solver budget, slack = total - lower. *)
  check_close ~eps:1e-15 "no pruned mass" 0.0 b.Sdft_analysis.pruned_mass;
  check_close ~eps:1e-15 "no below-cutoff mass" 0.0 b.Sdft_analysis.below_cutoff_mass;
  Alcotest.(check bool) "solver budget positive" true (b.Sdft_analysis.solver_error_total > 0.0);
  Alcotest.(check bool) "solver budget tiny" true (b.Sdft_analysis.solver_error_total < 1e-9);
  check_close ~eps:1e-15 "slack = total - lower"
    (r.Sdft_analysis.total -. b.Sdft_analysis.lower)
    b.Sdft_analysis.rare_event_slack;
  check_close ~eps:1e-15 "upper = total + terms"
    (r.Sdft_analysis.total +. b.Sdft_analysis.pruned_mass
    +. b.Sdft_analysis.below_cutoff_mass +. b.Sdft_analysis.solver_error_total)
    b.Sdft_analysis.upper

let test_budget_below_cutoff_mass () =
  (* Generation prunes on worst-case probabilities, the relevance filter on
     the (smaller) time-aware p~. Cutoff 3e-4 sits between the two for
     {b,d} (worst case 5.6e-4, p~ 1.98e-4): the cutset survives generation,
     is quantified, then excluded from [total] — and must show up, in full,
     as below-cutoff mass in the upper bound. *)
  let options = { Sdft_analysis.default_options with cutoff = 3e-4 } in
  let r = Sdft_analysis.analyze ~options pumps_sd in
  let b = r.Sdft_analysis.budget in
  let excluded =
    List.filter
      (fun (i : Sdft_analysis.cutset_info) -> i.probability <= 3e-4)
      r.Sdft_analysis.cutsets
  in
  Alcotest.(check bool) "some quantified cutsets excluded" true
    (excluded <> []);
  let mass =
    List.fold_left (fun acc (i : Sdft_analysis.cutset_info) -> acc +. i.probability) 0.0 excluded
  in
  check_close ~eps:1e-15 "below-cutoff mass accounted" mass
    b.Sdft_analysis.below_cutoff_mass;
  (* The widened interval still contains the full-precision answer. *)
  let full = Sdft_analysis.analyze pumps_sd in
  Alcotest.(check bool) "upper covers the unfiltered total" true
    (full.Sdft_analysis.total <= b.Sdft_analysis.upper)

let test_budget_pruned_mass_from_generation () =
  (* A generation-time cutoff (not just the relevance filter) must surface
     as pruned mass and keep the interval sound. MOCUS prunes on worst-case
     translated probabilities, so use a cutoff between the smallest and
     largest cutset contributions. *)
  let options = { Sdft_analysis.default_options with cutoff = 1e-5 } in
  let r = Sdft_analysis.analyze ~options pumps_sd in
  let b = r.Sdft_analysis.budget in
  Alcotest.(check bool) "not vacuous" false b.Sdft_analysis.vacuous;
  Alcotest.(check bool) "something pruned at generation" true
    (r.Sdft_analysis.generation.Mocus.pruned_by_cutoff > 0);
  Alcotest.(check bool) "pruned mass positive" true (b.Sdft_analysis.pruned_mass > 0.0);
  let exact = Sdft_product.solve pumps_sd ~horizon:24.0 in
  Alcotest.(check bool) "interval still contains exact" true
    (b.Sdft_analysis.lower <= exact +. 1e-12
    && exact <= b.Sdft_analysis.upper +. 1e-12)

let test_budget_vacuous_cases () =
  (* BDD engine with a nonzero cutoff drops cutsets without counting their
     mass: the interval must degrade to a marked-vacuous [lower, >=1]. *)
  let options =
    { Sdft_analysis.default_options with engine = Sdft_analysis.Bdd_engine }
  in
  let r = Sdft_analysis.analyze ~options pumps_sd in
  let b = r.Sdft_analysis.budget in
  Alcotest.(check bool) "bdd + cutoff is vacuous" true b.Sdft_analysis.vacuous;
  Alcotest.(check bool) "vacuous upper covers everything" true
    (b.Sdft_analysis.upper >= 1.0);
  (* With cutoff 0 and no order bound the BDD enumeration is exhaustive and
     the certificate is meaningful again. *)
  let options0 =
    { options with cutoff = 0.0 }
  in
  let r0 = Sdft_analysis.analyze ~options:options0 pumps_sd in
  Alcotest.(check bool) "exhaustive bdd not vacuous" false
    r0.Sdft_analysis.budget.Sdft_analysis.vacuous

let test_budget_fallback_excluded_from_lower () =
  (* Starve the state bound so every dynamic cutset falls back to its
     worst-case product: those over-approximations must not anchor the
     lower bound, which falls to the best purely static cutset. *)
  let options = { Sdft_analysis.default_options with max_product_states = 1 } in
  let r = Sdft_analysis.analyze ~options pumps_sd in
  Alcotest.(check bool) "fallbacks happened" true (r.Sdft_analysis.n_fallbacks > 0);
  let best_static =
    List.fold_left
      (fun acc (i : Sdft_analysis.cutset_info) ->
        if i.used_fallback then acc else Float.max acc i.probability)
      0.0 r.Sdft_analysis.cutsets
  in
  Alcotest.(check bool) "lower anchored by non-fallback cutsets" true
    (r.Sdft_analysis.budget.Sdft_analysis.lower <= best_static)

let test_trace_does_not_change_results () =
  (* Bit-identical analytic output with tracing on and off — tracing only
     observes. *)
  Sdft_util.Trace.reset ();
  let off = Sdft_analysis.analyze pumps_sd in
  Sdft_util.Trace.set_enabled true;
  let on =
    Fun.protect
      ~finally:(fun () ->
        Sdft_util.Trace.set_enabled false;
        Sdft_util.Trace.reset ())
      (fun () -> Sdft_analysis.analyze pumps_sd)
  in
  Alcotest.(check bool) "identical total" true
    (off.Sdft_analysis.total = on.Sdft_analysis.total);
  Alcotest.(check bool) "identical bounds" true
    (off.Sdft_analysis.budget.Sdft_analysis.lower
     = on.Sdft_analysis.budget.Sdft_analysis.lower
    && off.Sdft_analysis.budget.Sdft_analysis.upper
       = on.Sdft_analysis.budget.Sdft_analysis.upper);
  List.iter2
    (fun (a : Sdft_analysis.cutset_info) (b : Sdft_analysis.cutset_info) ->
      Alcotest.(check bool) "identical p~" true (a.probability = b.probability))
    off.Sdft_analysis.cutsets on.Sdft_analysis.cutsets

(* Quantification cache *)

let sweep_options_for horizon =
  { Sdft_analysis.default_options with horizon }

let test_cache_sweep_second_pass_hits () =
  let option_sets = List.map sweep_options_for [ 12.0; 24.0 ] in
  let cache = Quant_cache.create () in
  let first, _ = Sdft_analysis.sweep ~cache pumps_sd option_sets in
  let misses_after_first = Quant_cache.misses cache in
  Alcotest.(check bool) "first pass misses" true (misses_after_first > 0);
  let second, _ = Sdft_analysis.sweep ~cache pumps_sd option_sets in
  Alcotest.(check int) "second pass: no new misses" misses_after_first
    (Quant_cache.misses cache);
  Alcotest.(check bool) "second pass: hits" true
    (List.for_all (fun (p : Sdft_analysis.sweep_point) -> p.cache_hits > 0) second);
  (* Cached results must match independent uncached runs to 1e-12. *)
  List.iter2
    (fun (p : Sdft_analysis.sweep_point) opts ->
      let uncached = Sdft_analysis.analyze ~options:opts pumps_sd in
      check_close ~eps:1e-12 "cached total = uncached total"
        uncached.Sdft_analysis.total p.sweep_result.Sdft_analysis.total;
      List.iter2
        (fun (a : Sdft_analysis.cutset_info) (b : Sdft_analysis.cutset_info) ->
          Alcotest.(check bool) "same cutset" true (Int_set.equal a.cutset b.cutset);
          check_close ~eps:1e-12 "cached p~ = uncached p~" a.probability b.probability)
        uncached.Sdft_analysis.cutsets p.sweep_result.Sdft_analysis.cutsets)
    (first @ second) (option_sets @ option_sets)

let test_cache_isomorphic_cutsets_share () =
  (* OR(AND(x1,y1), AND(x2,y2)) with identical DBE descriptors: the two
     cutsets build isomorphic FT_C models, so one analyze call needs only
     one transient solve. *)
  let b = Fault_tree.Builder.create () in
  let mk name = Fault_tree.Builder.basic b name in
  let x1 = mk "x1" and y1 = mk "y1" and x2 = mk "x2" and y2 = mk "y2" in
  let a1 = Fault_tree.Builder.gate b "a1" Fault_tree.And [ x1; y1 ] in
  let a2 = Fault_tree.Builder.gate b "a2" Fault_tree.And [ x2; y2 ] in
  let top = Fault_tree.Builder.gate b "top" Fault_tree.Or [ a1; a2 ] in
  let tree = Fault_tree.Builder.build b ~top in
  let dbe () = Dbe.erlang ~phases:2 ~lambda:1e-3 ~mu:0.05 () in
  let sd =
    Sdft.make tree
      ~dynamic:[ ("x1", dbe ()); ("y1", dbe ()); ("x2", dbe ()); ("y2", dbe ()) ]
      ~triggers:[]
  in
  let cache = Quant_cache.create () in
  let r = Sdft_analysis.analyze ~cache sd in
  Alcotest.(check int) "two cutsets" 2 r.Sdft_analysis.n_cutsets;
  Alcotest.(check int) "one miss" 1 (Quant_cache.misses cache);
  Alcotest.(check int) "one hit" 1 (Quant_cache.hits cache);
  let uncached = Sdft_analysis.analyze sd in
  check_close ~eps:1e-12 "total matches uncached" uncached.Sdft_analysis.total
    r.Sdft_analysis.total

let test_cache_industrial_sweep_matches_uncached () =
  (* The acceptance scenario: a ≥3-horizon sweep on the (dynamized)
     industrial model must hit the cache and agree with independent
     uncached runs to 1e-12. *)
  let tree = Industrial.generate Industrial.small in
  let config =
    {
      Dynamize.default_config with
      dynamic_fraction = 0.3;
      trigger_fraction = 0.03;
      repair_rate = Some 0.05;
      chain_groups = Some (Industrial.run_event_groups tree);
    }
  in
  let sd = (Dynamize.run ~config tree).Dynamize.sd in
  let option_sets =
    List.map
      (fun horizon ->
        {
          Sdft_analysis.default_options with
          engine = Sdft_analysis.Bdd_engine;
          horizon;
        })
      [ 8.0; 24.0; 72.0 ]
  in
  let points, cache = Sdft_analysis.sweep sd option_sets in
  Alcotest.(check bool) "nonzero hit rate" true (Quant_cache.hits cache > 0);
  List.iter2
    (fun (p : Sdft_analysis.sweep_point) opts ->
      let uncached = Sdft_analysis.analyze ~options:opts sd in
      check_close ~eps:1e-12 "total matches uncached"
        uncached.Sdft_analysis.total p.sweep_result.Sdft_analysis.total;
      List.iter2
        (fun (a : Sdft_analysis.cutset_info) (b : Sdft_analysis.cutset_info) ->
          Alcotest.(check bool) "same cutset" true (Int_set.equal a.cutset b.cutset);
          check_close ~eps:1e-12 "p~ matches uncached" a.probability b.probability)
        uncached.Sdft_analysis.cutsets p.sweep_result.Sdft_analysis.cutsets)
    points option_sets

let test_cache_fingerprint_name_independent () =
  let model names =
    let b = Fault_tree.Builder.create () in
    let leaves = List.map (fun n -> Fault_tree.Builder.basic b n) names in
    let top = Fault_tree.Builder.gate b "g" Fault_tree.And leaves in
    let tree = Fault_tree.Builder.build b ~top in
    Sdft.make tree
      ~dynamic:(List.map (fun n -> (n, Dbe.exponential ~lambda:2e-3 ())) names)
      ~triggers:[]
  in
  Alcotest.(check string) "renaming preserves the fingerprint"
    (Quant_cache.fingerprint (model [ "u"; "v" ]))
    (Quant_cache.fingerprint (model [ "p"; "q" ]));
  Alcotest.(check bool) "different rates change it" true
    (Quant_cache.fingerprint (model [ "u"; "v" ])
    <> Quant_cache.fingerprint
         (let b = Fault_tree.Builder.create () in
          let leaves = [ Fault_tree.Builder.basic b "u"; Fault_tree.Builder.basic b "v" ] in
          let top = Fault_tree.Builder.gate b "g" Fault_tree.And leaves in
          let tree = Fault_tree.Builder.build b ~top in
          Sdft.make tree
            ~dynamic:[ ("u", Dbe.exponential ~lambda:2e-3 ());
                       ("v", Dbe.exponential ~lambda:3e-3 ()) ]
            ~triggers:[]))

(* Soundness properties on random SD fault trees (cutoff 0):

   - with the exact [All_events] relevant sets, the rare-event sum
     upper-bounds the exact product probability (property (i) of Section V:
     the failed runs are covered by the per-cutset reach events);
   - the paper's reduced relevant sets never yield more than the exact
     rule (they model a subset of the triggering paths);
   - untriggered models need no trigger logic at all, so there the paper
     rule itself upper-bounds the exact value. *)
let random_sd ?(n_triggers = 1) seed = Gen_sdft.sd ~n_triggers seed

let analyze_with ?(rel_rule = Cutset_model.Paper) sd =
  let options =
    { Sdft_analysis.default_options with cutoff = 0.0; horizon = 8.0; rel_rule }
  in
  (Sdft_analysis.analyze ~options sd).Sdft_analysis.total

let prop_analysis_bounds_exact_untriggered =
  QCheck.Test.make ~name:"REA >= exact (untriggered models)" ~count:60
    Gen_sdft.seed_gen
    (fun seed ->
      let sd = random_sd ~n_triggers:0 seed in
      match Sdft_product.solve sd ~horizon:8.0 with
      | exact -> analyze_with sd >= exact -. 1e-7
      | exception Sdft_product.Too_many_states _ -> QCheck.assume_fail ())

let prop_analysis_all_events_bounds_exact =
  QCheck.Test.make ~name:"REA (All_events rule) >= exact" ~count:60
    Gen_sdft.seed_gen
    (fun seed ->
      let sd = random_sd seed in
      match Sdft_product.solve sd ~horizon:8.0 with
      | exact ->
        analyze_with ~rel_rule:Cutset_model.All_events sd >= exact -. 1e-7
      | exception Sdft_product.Too_many_states _ -> QCheck.assume_fail ())

let prop_paper_rule_below_exact_rule =
  QCheck.Test.make ~name:"paper rule <= All_events rule" ~count:60
    Gen_sdft.seed_gen
    (fun seed ->
      let sd = random_sd seed in
      analyze_with sd <= analyze_with ~rel_rule:Cutset_model.All_events sd +. 1e-9)

let test_analysis_parallel_reordered_schedule_identical () =
  (* A model with heterogeneous cutset costs (0/1/2 dynamic events across
     cutsets) so the load-balancing sort genuinely permutes the schedule;
     every per-cutset field must still match the sequential run exactly. *)
  let sd = random_sd 4242 in
  let base = { Sdft_analysis.default_options with cutoff = 0.0; horizon = 8.0 } in
  let seq = Sdft_analysis.analyze ~options:base sd in
  List.iter
    (fun domains ->
      let par = Sdft_analysis.analyze ~options:{ base with domains } sd in
      Alcotest.(check bool) "identical total" true
        (seq.Sdft_analysis.total = par.Sdft_analysis.total);
      List.iter2
        (fun (a : Sdft_analysis.cutset_info) (b : Sdft_analysis.cutset_info) ->
          Alcotest.(check bool) "same cutset" true
            (Int_set.equal a.cutset b.cutset);
          Alcotest.(check bool) "identical probability" true
            (a.probability = b.probability);
          Alcotest.(check int) "same product states" a.product_states
            b.product_states;
          Alcotest.(check int) "same n_dynamic" a.n_dynamic b.n_dynamic)
        seq.Sdft_analysis.cutsets par.Sdft_analysis.cutsets)
    [ 2; 3 ]

let prop_packed_matches_generic =
  (* The mixed-radix packed exploration must be indistinguishable from the
     array-keyed generic path: same interning order, hence identical chain,
     initial distribution, failure labelling, and solve result (to the bit). *)
  QCheck.Test.make ~name:"packed product build = generic build" ~count:80
    Gen_sdft.seed_gen
    (fun seed ->
      let sd = random_sd seed in
      match Sdft_product.build sd with
      | exception Sdft_product.Too_many_states _ -> QCheck.assume_fail ()
      | packed ->
        let generic = Sdft_product.build ~generic:true sd in
        let transitions b =
          let acc = ref [] in
          Ctmc.iter_transitions b.Sdft_product.chain (fun s d r ->
              acc := (s, d, r) :: !acc);
          List.rev !acc
        in
        packed.Sdft_product.n_states = generic.Sdft_product.n_states
        && packed.Sdft_product.init = generic.Sdft_product.init
        && packed.Sdft_product.failed = generic.Sdft_product.failed
        && packed.Sdft_product.participants = generic.Sdft_product.participants
        && transitions packed = transitions generic
        && Sdft_product.unreliability packed ~horizon:8.0
           = Sdft_product.unreliability generic ~horizon:8.0)

let prop_analysis_single_mcs_exact =
  (* With a single minimal cutset and the exact relevant sets, the analysis
     equals the exact probability; the paper rule never exceeds it. *)
  QCheck.Test.make ~name:"single-MCS models are quantified exactly" ~count:60
    Gen_sdft.seed_gen
    (fun seed ->
      let rng = Sdft_util.Rng.create seed in
      let sd =
        Random_tree.sd rng ~max_prob:0.2 ~n_basics:4 ~n_gates:3 ~n_dynamic:2
          ~n_triggers:1
      in
      let options =
        { Sdft_analysis.default_options with cutoff = 0.0; horizon = 6.0;
          rel_rule = Cutset_model.All_events }
      in
      let r = Sdft_analysis.analyze ~options sd in
      if r.Sdft_analysis.n_cutsets <> 1 then QCheck.assume_fail ()
      else begin
        let exact = Sdft_product.solve sd ~horizon:6.0 in
        let paper =
          (Sdft_analysis.analyze
             ~options:{ options with rel_rule = Cutset_model.Paper }
             sd)
            .Sdft_analysis.total
        in
        Float.abs (r.Sdft_analysis.total -. exact) < 1e-7
        && paper <= exact +. 1e-7
      end)

(* ------------------------------------------------------------------ *)
(* Cut sequences *)

let test_sequences_triggered_order_forced () =
  (* {b, d}: the spare pump d can only fail after b has failed, so the only
     order is b -> d and it carries all of p~(C). *)
  let r = Cut_sequences.of_cutset pumps_sd (pset [ "b"; "d" ]) ~horizon:24.0 in
  Alcotest.(check int) "one order" 1 (List.length r.Cut_sequences.sequences);
  let s = List.hd r.Cut_sequences.sequences in
  Alcotest.(check (list int)) "b then d" [ pidx "b"; pidx "d" ] s.Cut_sequences.order;
  let m = Cutset_model.build pumps_sd (pset [ "b"; "d" ]) in
  let q = Cutset_model.quantify m ~horizon:24.0 in
  check_close ~eps:1e-12 "total = p~" q.Cutset_model.probability r.Cut_sequences.total

let test_sequences_symmetric_split () =
  let b = Fault_tree.Builder.create () in
  let x = Fault_tree.Builder.basic b "x" in
  let y = Fault_tree.Builder.basic b "y" in
  let top = Fault_tree.Builder.gate b "top" Fault_tree.And [ x; y ] in
  let tree = Fault_tree.Builder.build b ~top in
  let sd =
    Sdft.make tree
      ~dynamic:
        [ ("x", Dbe.exponential ~lambda:0.1 ()); ("y", Dbe.exponential ~lambda:0.1 ()) ]
      ~triggers:[]
  in
  let r =
    Cut_sequences.of_cutset sd (Int_set.of_list [ 0; 1 ]) ~horizon:10.0
  in
  Alcotest.(check int) "two orders" 2 (List.length r.Cut_sequences.sequences);
  (match r.Cut_sequences.sequences with
  | [ s1; s2 ] -> check_close ~eps:1e-12 "50/50" s1.Cut_sequences.probability s2.Cut_sequences.probability
  | _ -> Alcotest.fail "expected two sequences");
  (* total = (1 - e^-1)^2 *)
  let p1 = 1.0 -. exp (-1.0) in
  check_close ~eps:1e-9 "closed form" (p1 *. p1) r.Cut_sequences.total

let test_sequences_static_cutset () =
  let r = Cut_sequences.of_cutset pumps_sd (pset [ "a"; "c" ]) ~horizon:24.0 in
  Alcotest.(check int) "one empty order" 1 (List.length r.Cut_sequences.sequences);
  check_close ~eps:1e-15 "static probability" 9e-6 r.Cut_sequences.total

let test_sequences_asymmetric_rates () =
  (* x fails much faster than y: the order x -> y must dominate. *)
  let b = Fault_tree.Builder.create () in
  let x = Fault_tree.Builder.basic b "x" in
  let y = Fault_tree.Builder.basic b "y" in
  let top = Fault_tree.Builder.gate b "top" Fault_tree.And [ x; y ] in
  let tree = Fault_tree.Builder.build b ~top in
  let sd =
    Sdft.make tree
      ~dynamic:
        [ ("x", Dbe.exponential ~lambda:1.0 ()); ("y", Dbe.exponential ~lambda:0.05 ()) ]
      ~triggers:[]
  in
  let r = Cut_sequences.of_cutset sd (Int_set.of_list [ 0; 1 ]) ~horizon:10.0 in
  match r.Cut_sequences.sequences with
  | s1 :: _ ->
    Alcotest.(check (list int)) "x first dominates" [ 0; 1 ] s1.Cut_sequences.order;
    Alcotest.(check bool) "dominant" true
      (s1.Cut_sequences.probability > 0.8 *. r.Cut_sequences.total)
  | [] -> Alcotest.fail "no sequences"

let test_sequences_sum_matches_quantification () =
  (* On the static-joins model the sequence masses must add up to p~. *)
  let sd = static_joins_model () in
  let tree = Sdft.tree sd in
  let ids = List.map (fun n -> Option.get (Fault_tree.basic_index tree n)) in
  let cutset = Int_set.of_list (ids [ "y"; "j" ]) in
  let r = Cut_sequences.of_cutset sd cutset ~horizon:24.0 in
  let q = Cutset_model.quantify (Cutset_model.build sd cutset) ~horizon:24.0 in
  check_close ~eps:1e-9 "sum = p~" q.Cutset_model.probability r.Cut_sequences.total;
  Alcotest.(check bool) "several orders" true (List.length r.Cut_sequences.sequences >= 2)

(* ------------------------------------------------------------------ *)
(* Steady-state availability *)

let test_availability_exponential () =
  let lambda = 0.02 and mu = 0.4 in
  let d = Dbe.exponential ~lambda ~mu () in
  match Availability.event_unavailability d with
  | Some q -> check_close ~eps:1e-9 "q" (lambda /. (lambda +. mu)) q
  | None -> Alcotest.fail "expected steady state"

let test_availability_unrepairable () =
  let d = Dbe.exponential ~lambda:0.02 () in
  Alcotest.(check bool) "no steady state" true
    (Availability.event_unavailability d = None)

let test_availability_triggered () =
  (* The on-copy of a triggered exponential with repair is the plain
     repairable machine. *)
  let lambda = 0.05 and mu = 0.3 in
  let d = Dbe.triggered_exponential ~lambda ~mu ~passive_factor:0.0 () in
  match Availability.event_unavailability d with
  | Some q -> check_close ~eps:1e-9 "q" (lambda /. (lambda +. mu)) q
  | None -> Alcotest.fail "expected steady state"

let test_availability_analyze () =
  (* top = AND(x, y), both repairable: long-run unavailability is the
     product of the two steady-state unavailabilities (REA over one
     cutset). *)
  let b = Fault_tree.Builder.create () in
  let x = Fault_tree.Builder.basic b "x" in
  let y = Fault_tree.Builder.basic b "y" in
  let top = Fault_tree.Builder.gate b "top" Fault_tree.And [ x; y ] in
  let tree = Fault_tree.Builder.build b ~top in
  let sd =
    Sdft.make tree
      ~dynamic:
        [
          ("x", Dbe.exponential ~lambda:0.02 ~mu:0.5 ());
          ("y", Dbe.exponential ~lambda:0.03 ~mu:0.4 ());
        ]
      ~triggers:[]
  in
  match Availability.analyze ~cutoff:0.0 sd with
  | Some r ->
    let qx = 0.02 /. 0.52 and qy = 0.03 /. 0.43 in
    check_close ~eps:1e-9 "product" (qx *. qy) r.Availability.unavailability;
    Alcotest.(check int) "one cutset" 1 r.Availability.n_cutsets
  | None -> Alcotest.fail "expected result"

let test_availability_mixed_static () =
  (* OR of a static event and a repairable one. *)
  let b = Fault_tree.Builder.create () in
  let s = Fault_tree.Builder.basic b ~prob:1e-3 "s" in
  let x = Fault_tree.Builder.basic b "x" in
  let top = Fault_tree.Builder.gate b "top" Fault_tree.Or [ s; x ] in
  let tree = Fault_tree.Builder.build b ~top in
  let sd =
    Sdft.make tree ~dynamic:[ ("x", Dbe.exponential ~lambda:0.01 ~mu:1.0 ()) ] ~triggers:[]
  in
  match Availability.analyze ~cutoff:0.0 sd with
  | Some r ->
    check_close ~eps:1e-9 "sum" (1e-3 +. (0.01 /. 1.01)) r.Availability.unavailability
  | None -> Alcotest.fail "expected result"

let test_availability_rejects_unrepairable_model () =
  let sd = Pumps.sd_tree () in
  ignore sd;
  (* pumps has repairable dynamics, so it should work... build an
     unrepairable one instead. *)
  let b = Fault_tree.Builder.create () in
  let x = Fault_tree.Builder.basic b "x" in
  let top = Fault_tree.Builder.gate b "top" Fault_tree.Or [ x ] in
  let tree = Fault_tree.Builder.build b ~top in
  let bad =
    Sdft.make tree ~dynamic:[ ("x", Dbe.exponential ~lambda:0.01 ()) ] ~triggers:[]
  in
  Alcotest.(check bool) "None for unrepairable" true (Availability.analyze bad = None)

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "core"
    [
      ( "dbe",
        [
          Alcotest.test_case "init sums to 1" `Quick test_dbe_init_must_sum_to_one;
          Alcotest.test_case "needs failed state" `Quick test_dbe_needs_failed_state;
          Alcotest.test_case "failed must be on" `Quick test_dbe_failed_must_be_on;
          Alcotest.test_case "starts off" `Quick test_dbe_triggered_starts_off;
          Alcotest.test_case "partner modes" `Quick test_dbe_partner_opposite_mode;
          Alcotest.test_case "exponential worst case" `Quick test_dbe_exponential_worst_case;
          Alcotest.test_case "erlang worst case" `Quick test_dbe_erlang_worst_case;
          Alcotest.test_case "triggered = untriggered worst case" `Quick
            test_dbe_triggered_equals_untriggered_worst_case;
          Alcotest.test_case "triggered structure" `Quick test_dbe_triggered_structure;
          Alcotest.test_case "repair only on" `Quick test_dbe_repair_only_when_on;
          Alcotest.test_case "repair when off" `Quick test_dbe_repair_when_off;
        ] );
      ( "sdft",
        [
          Alcotest.test_case "unknown names" `Quick test_sdft_unknown_names;
          Alcotest.test_case "trigger needs switch" `Quick test_sdft_trigger_requires_switch;
          Alcotest.test_case "double trigger" `Quick test_sdft_double_trigger_rejected;
          Alcotest.test_case "cyclic trigger" `Quick test_sdft_cyclic_trigger_rejected;
          Alcotest.test_case "accessors" `Quick test_sdft_accessors;
        ] );
      ( "classify",
        [
          Alcotest.test_case "static branching" `Quick test_classify_static_branching;
          Alcotest.test_case "static joins" `Quick test_classify_static_joins;
          Alcotest.test_case "AND-only is SB" `Quick test_classify_and_only_is_static_branching;
          Alcotest.test_case "general" `Quick test_classify_general;
          Alcotest.test_case "running example" `Quick test_classify_pumps_running_example;
          Alcotest.test_case "uniform triggering" `Quick test_classify_uniform_triggering;
        ] );
      ( "translate",
        [
          Alcotest.test_case "preserves MCS" `Quick test_translate_pumps_preserves_mcs;
          Alcotest.test_case "worst-case values" `Quick test_translate_worst_case_values;
          Alcotest.test_case "adds AND gates" `Quick test_translate_adds_trigger_and;
          Alcotest.test_case "trigger in MCS" `Quick test_translate_triggered_event_mcs_includes_trigger;
        ] );
      ( "product",
        (qc [ prop_packed_matches_generic ])
        @ [
          Alcotest.test_case "static = enumeration" `Quick test_product_static_tree_matches_exact;
          Alcotest.test_case "trigger sequence = Erlang" `Quick test_product_trigger_sequence_is_erlang;
          Alcotest.test_case "unfired trigger" `Quick test_product_untriggered_spare_never_fails;
          Alcotest.test_case "passive failure not failed" `Quick test_product_passive_failures_do_count;
          Alcotest.test_case "max states guard" `Quick test_product_max_states_guard;
          Alcotest.test_case "pumps golden" `Quick test_product_pumps_value;
        ] );
      ( "cutset model",
        [
          Alcotest.test_case "static only" `Quick test_cutset_model_static_only;
          Alcotest.test_case "dynamic pair" `Quick test_cutset_model_dynamic_pair;
          Alcotest.test_case "impossible" `Quick test_cutset_model_impossible;
          Alcotest.test_case "always triggered" `Quick test_cutset_model_always_triggered;
          Alcotest.test_case "REA vs exact (pumps)" `Quick test_cutset_model_rea_matches_exact_pumps;
          Alcotest.test_case "static joins adds events" `Quick test_cutset_model_static_joins_adds_events;
          Alcotest.test_case "general trigger exact" `Quick test_cutset_model_general_trigger_exact;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "pumps summary" `Quick test_analysis_pumps_summary;
          Alcotest.test_case "cutoff" `Quick test_analysis_cutoff_excludes;
          Alcotest.test_case "static rare event" `Quick test_analysis_static_rare_event;
          Alcotest.test_case "engines agree" `Quick test_analysis_engines_agree;
          Alcotest.test_case "parallel = sequential" `Quick
            test_analysis_parallel_matches_sequential;
          Alcotest.test_case "parallel(4) identical probabilities" `Quick
            test_analysis_parallel_4_identical_probabilities;
          Alcotest.test_case "parallel reordered schedule identical" `Quick
            test_analysis_parallel_reordered_schedule_identical;
          Alcotest.test_case "dynamic importance" `Quick test_analysis_dynamic_importance;
          Alcotest.test_case "FV respects cutoff" `Quick test_analysis_fv_respects_cutoff;
        ]
        @ [
            Alcotest.test_case "budget certifies pumps" `Quick test_budget_certifies_pumps;
            Alcotest.test_case "budget below-cutoff mass" `Quick test_budget_below_cutoff_mass;
            Alcotest.test_case "budget pruned mass" `Quick test_budget_pruned_mass_from_generation;
            Alcotest.test_case "budget vacuous cases" `Quick test_budget_vacuous_cases;
            Alcotest.test_case "budget fallback lower bound" `Quick test_budget_fallback_excluded_from_lower;
            Alcotest.test_case "trace does not change results" `Quick test_trace_does_not_change_results;
          ]
        @ qc
            [
              prop_analysis_bounds_exact_untriggered;
              prop_analysis_all_events_bounds_exact;
              prop_paper_rule_below_exact_rule;
              prop_analysis_single_mcs_exact;
            ] );
      ( "quant cache",
        [
          Alcotest.test_case "sweep second pass hits" `Quick
            test_cache_sweep_second_pass_hits;
          Alcotest.test_case "isomorphic cutsets share" `Quick
            test_cache_isomorphic_cutsets_share;
          Alcotest.test_case "fingerprint name-independent" `Quick
            test_cache_fingerprint_name_independent;
          Alcotest.test_case "industrial sweep matches uncached" `Slow
            test_cache_industrial_sweep_matches_uncached;
        ] );
      ( "cut sequences",
        [
          Alcotest.test_case "triggered order forced" `Quick test_sequences_triggered_order_forced;
          Alcotest.test_case "symmetric split" `Quick test_sequences_symmetric_split;
          Alcotest.test_case "static cutset" `Quick test_sequences_static_cutset;
          Alcotest.test_case "asymmetric rates" `Quick test_sequences_asymmetric_rates;
          Alcotest.test_case "sum = quantification" `Quick test_sequences_sum_matches_quantification;
        ] );
      ( "availability",
        [
          Alcotest.test_case "exponential" `Quick test_availability_exponential;
          Alcotest.test_case "unrepairable" `Quick test_availability_unrepairable;
          Alcotest.test_case "triggered" `Quick test_availability_triggered;
          Alcotest.test_case "analyze" `Quick test_availability_analyze;
          Alcotest.test_case "mixed static" `Quick test_availability_mixed_static;
          Alcotest.test_case "rejects unrepairable" `Quick
            test_availability_rejects_unrepairable_model;
        ] );
    ]

(* Tests for the resource-governance layer: guards, failpoints, crash
   containment, and the graceful-degradation ladder of the analysis.

   The soundness invariant exercised throughout: however the analysis is
   degraded — expired deadline, simulated OOM, injected worker crashes —
   it must terminate normally and its certified interval
   [budget.lower, budget.upper] must still contain the exact
   product-semantics probability. *)

module Guard = Sdft_util.Guard
module Failpoint = Sdft_util.Failpoint

let with_failpoints spec f =
  Failpoint.configure_string spec;
  Fun.protect ~finally:Failpoint.clear_all f

(* Guard *)

let test_guard_none () =
  Alcotest.(check bool) "unlimited" true (Guard.unlimited Guard.none);
  Alcotest.(check bool) "status" true (Guard.status Guard.none = None);
  for _ = 1 to 10_000 do
    Guard.check Guard.none
  done;
  Guard.check_now Guard.none;
  Alcotest.(check bool) "remaining" true (Guard.remaining_s Guard.none = infinity)

let test_guard_deadline () =
  let g = Guard.create ~deadline:0.0 () in
  (* The deadline comparison is strict, so let the clock tick past it. *)
  ignore (Unix.select [] [] [] 0.002);
  Alcotest.(check bool) "tripped" true (Guard.status g = Some Guard.Deadline);
  Alcotest.(check bool) "negative remaining" true (Guard.remaining_s g <= 0.0);
  (match Guard.check_now g with
  | exception Guard.Limit_hit Guard.Deadline -> ()
  | _ -> Alcotest.fail "check_now should raise");
  let far = Guard.create ~deadline:3600.0 () in
  Alcotest.(check bool) "not tripped" true (Guard.status far = None);
  Guard.check_now far

let test_guard_check_is_amortized () =
  let g = Guard.create ~deadline:0.0 () in
  (* [check] probes only every ~4096 calls; it must still raise within a
     bounded number of iterations on an expired guard. *)
  let raised_at = ref 0 in
  (try
     for i = 1 to 10_000 do
       Guard.check g;
       raised_at := i
     done
   with Guard.Limit_hit Guard.Deadline -> ());
  if !raised_at >= 5_000 then
    Alcotest.failf "check never probed (ran %d iterations)" !raised_at

let test_guard_mem_limit () =
  let g = Guard.create ~mem_limit_mb:1 () in
  (* Force the major heap well past 1 MB. *)
  (* The ballast must stay live across the probe: once dead, the collector
     returns its pages to the OS and [heap_words] shrinks again. *)
  let ballast = Array.make (2 * 1024 * 1024) 0.0 in
  let st = Guard.status g in
  ignore (Sys.opaque_identity ballast);
  (match st with
  | Some Guard.Mem_limit -> ()
  | other ->
    Alcotest.failf "status %s with heap_words=%d"
      (match other with
      | None -> "none"
      | Some r -> Guard.reason_to_string r)
      (Gc.quick_stat ()).Gc.heap_words)

let test_guard_invalid_args () =
  let invalid f = match f () with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "negative deadline" true
    (invalid (fun () -> Guard.create ~deadline:(-1.0) ()));
  Alcotest.(check bool) "zero ceiling" true
    (invalid (fun () -> Guard.create ~mem_limit_mb:0 ()))

(* Failpoint *)

let test_failpoint_nth () =
  Fun.protect ~finally:Failpoint.clear_all (fun () ->
      Failpoint.set "t.nth" ~trigger:(Failpoint.Nth 3) Failpoint.Raise;
      Failpoint.hit "t.nth";
      Failpoint.hit "t.nth";
      (match Failpoint.hit "t.nth" with
      | exception Failpoint.Injected "t.nth" -> ()
      | _ -> Alcotest.fail "3rd hit should fire");
      Failpoint.hit "t.nth";
      Alcotest.(check int) "hit count" 4 (Failpoint.hit_count "t.nth"))

let test_failpoint_prob_deterministic () =
  let firing () =
    Failpoint.set "t.prob"
      ~trigger:(Failpoint.Prob (0.5, 42))
      Failpoint.Raise;
    let fired = ref [] in
    for i = 1 to 100 do
      match Failpoint.hit "t.prob" with
      | () -> ()
      | exception Failpoint.Injected _ -> fired := i :: !fired
    done;
    !fired
  in
  Fun.protect ~finally:Failpoint.clear_all (fun () ->
      let a = firing () in
      let b = firing () in
      Alcotest.(check bool) "some fire" true (a <> []);
      Alcotest.(check bool) "some pass" true (List.length a < 100);
      Alcotest.(check (list int)) "deterministic" a b)

let test_failpoint_configure_string () =
  Fun.protect ~finally:Failpoint.clear_all (fun () ->
      Failpoint.configure_string "t.cfg=deadline@nth:2";
      Failpoint.hit "t.cfg";
      (match Failpoint.hit "t.cfg" with
      | exception Guard.Limit_hit Guard.Deadline -> ()
      | _ -> Alcotest.fail "2nd hit should raise Limit_hit Deadline"));
  (match Failpoint.configure_string "nonsense" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "malformed spec should fail");
  match Failpoint.configure_string "a.b=explode" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "unknown action should fail"

let test_failpoint_env () =
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "SDFT_FAILPOINTS" "";
      Failpoint.clear_all ())
    (fun () ->
      Unix.putenv "SDFT_FAILPOINTS" "t.env=oom";
      Failpoint.load_env ();
      match Failpoint.hit "t.env" with
      | exception Out_of_memory -> ()
      | _ -> Alcotest.fail "env-armed site should fire")

(* Parallel crash containment *)

let test_map_init_result_contains () =
  let work = Array.init 10 Fun.id in
  let f () x = if x = 5 then failwith "poisoned" else x * x in
  List.iter
    (fun domains ->
      let r = Sdft_util.Parallel.map_init_result ~domains (fun () -> ()) f work in
      Array.iteri
        (fun i slot ->
          match slot with
          | Ok y when i <> 5 -> Alcotest.(check int) "value" (i * i) y
          | Error (Failure m, _) when i = 5 ->
            Alcotest.(check string) "message" "poisoned" m
          | Ok _ -> Alcotest.failf "slot %d should be Error" i
          | Error _ -> Alcotest.failf "slot %d should be Ok" i)
        r)
    [ 1; 4 ]

let test_map_init_result_failpoint () =
  with_failpoints "parallel.worker=raise@nth:1" (fun () ->
      let work = Array.init 8 Fun.id in
      let r =
        Sdft_util.Parallel.map_init_result ~domains:2
          (fun () -> ())
          (fun () x -> x + 1)
          work
      in
      let errors =
        Array.to_list r
        |> List.filter (function Error _ -> true | Ok _ -> false)
      in
      (* nth:1 fires on exactly the first hit of the site, wherever the
         scheduler sent it; it must be contained in that one slot. *)
      Alcotest.(check int) "one contained crash" 1 (List.length errors))

(* MOCUS degradation *)

let test_mocus_limit_folds_stack () =
  let tree = Pumps.static_tree () in
  with_failpoints "mocus.expand=deadline@nth:3" (fun () ->
      let r = Mocus.run ~guard:(Guard.create ~deadline:3600.0 ()) tree in
      Alcotest.(check bool) "limit recorded" true
        (r.Mocus.limit_hit = Some Guard.Deadline);
      (* The partials still on the stack were folded into the pruned mass,
         so the interval stays sound (and non-vacuous: truncated is about
         order bounds, not resource limits). *)
      Alcotest.(check bool) "mass folded" true (r.Mocus.pruned_mass > 0.0);
      Alcotest.(check bool) "not truncated" true (not r.Mocus.truncated));
  (* Without failpoints the same run is clean. *)
  let r = Mocus.run tree in
  Alcotest.(check bool) "clean" true (r.Mocus.limit_hit = None)

(* Analysis degradation ladder *)

let interval_contains r exact =
  let lower = r.Sdft_analysis.budget.Sdft_analysis.lower in
  let upper = r.Sdft_analysis.budget.Sdft_analysis.upper in
  if not (lower <= exact +. 1e-9 && exact <= upper +. 1e-9) then
    Alcotest.failf "interval [%g, %g] misses exact %g" lower upper exact

let test_analyze_expired_deadline () =
  let sd = Pumps.sd_tree () in
  let exact = Sdft_product.solve sd ~horizon:24.0 in
  let options =
    { Sdft_analysis.default_options with deadline = Some 0.0 }
  in
  let r = Sdft_analysis.analyze ~options sd in
  Alcotest.(check bool) "degraded" true (Sdft_analysis.degraded r);
  let deadline_fallbacks =
    List.filter
      (fun info -> info.Sdft_analysis.degraded = Some Guard.Deadline)
      r.Sdft_analysis.cutsets
  in
  Alcotest.(check bool) "deadline fallbacks" true (deadline_fallbacks <> []);
  List.iter
    (fun info ->
      Alcotest.(check bool) "fallback flagged" true
        info.Sdft_analysis.used_fallback)
    deadline_fallbacks;
  interval_contains r exact;
  (* The summary leads with the DEGRADED banner. *)
  let summary = Format.asprintf "%a" Sdft_analysis.pp_summary r in
  Alcotest.(check bool) "banner" true
    (String.length summary >= 8 && String.sub summary 0 8 = "DEGRADED")

let test_analyze_generation_limit () =
  let sd = Pumps.sd_tree () in
  let exact = Sdft_product.solve sd ~horizon:24.0 in
  with_failpoints "mocus.expand=deadline@nth:3" (fun () ->
      let r = Sdft_analysis.analyze sd in
      Alcotest.(check bool) "generation limit" true
        (r.Sdft_analysis.degradation.Sdft_analysis.generation_limit
        = Some Guard.Deadline);
      Alcotest.(check bool) "degraded" true (Sdft_analysis.degraded r);
      interval_contains r exact)

let test_analyze_transient_oom () =
  let sd = Pumps.sd_tree () in
  let exact = Sdft_product.solve sd ~horizon:24.0 in
  (* [always]: translation's per-event worst-case solves degrade to the
     trivial bound, and every dynamic cutset's product solve falls back. *)
  with_failpoints "transient.step=oom" (fun () ->
      let r = Sdft_analysis.analyze sd in
      let mem_fallbacks =
        List.filter
          (fun (reason, _) -> reason = Guard.Mem_limit)
          r.Sdft_analysis.degradation.Sdft_analysis.degraded_cutsets
      in
      Alcotest.(check bool) "mem fallback counted" true (mem_fallbacks <> []);
      interval_contains r exact)

let test_analyze_worker_crash_parallel () =
  let sd = Pumps.sd_tree () in
  let exact = Sdft_product.solve sd ~horizon:24.0 in
  with_failpoints "parallel.worker=raise@nth:1" (fun () ->
      let options = { Sdft_analysis.default_options with domains = 2 } in
      let r = Sdft_analysis.analyze ~options sd in
      let crashes =
        List.assoc_opt Guard.Worker_crash
          r.Sdft_analysis.degradation.Sdft_analysis.degraded_cutsets
      in
      Alcotest.(check (option int)) "one contained crash" (Some 1) crashes;
      interval_contains r exact)

let test_analyze_cache_crash_contained () =
  let sd = Pumps.sd_tree () in
  let exact = Sdft_product.solve sd ~horizon:24.0 in
  with_failpoints "cache.lookup=raise" (fun () ->
      let cache = Quant_cache.create () in
      let r = Sdft_analysis.analyze ~cache sd in
      let crashes =
        List.assoc_opt Guard.Worker_crash
          r.Sdft_analysis.degradation.Sdft_analysis.degraded_cutsets
      in
      Alcotest.(check bool) "crashes contained" true (crashes <> None);
      interval_contains r exact)

let test_delay_failpoints_preserve_results () =
  let sd = Pumps.sd_tree () in
  let baseline = Sdft_analysis.analyze sd in
  with_failpoints
    "mocus.expand=delay:0.0002@nth:3,transient.step=delay:0.0001@nth:2"
    (fun () ->
      let r = Sdft_analysis.analyze sd in
      (* Delays perturb timing only: every numerical output is bit-identical
         to the undisturbed run. *)
      Alcotest.(check bool) "total" true
        (r.Sdft_analysis.total = baseline.Sdft_analysis.total);
      Alcotest.(check bool) "upper" true
        (r.Sdft_analysis.budget.Sdft_analysis.upper
        = baseline.Sdft_analysis.budget.Sdft_analysis.upper);
      Alcotest.(check bool) "lower" true
        (r.Sdft_analysis.budget.Sdft_analysis.lower
        = baseline.Sdft_analysis.budget.Sdft_analysis.lower);
      Alcotest.(check int) "cutsets" baseline.Sdft_analysis.n_cutsets
        r.Sdft_analysis.n_cutsets;
      Alcotest.(check bool) "not degraded" true (not (Sdft_analysis.degraded r)))

let test_product_guard_limit () =
  let sd = Pumps.sd_tree () in
  with_failpoints "product.explore=mem@nth:2" (fun () ->
      match Sdft_product.build ~guard:(Guard.create ~deadline:3600.0 ()) sd with
      | exception Guard.Limit_hit Guard.Mem_limit -> ()
      | _ -> Alcotest.fail "exploration should hit the injected limit")

let test_failpoint_first () =
  Fun.protect ~finally:Failpoint.clear_all (fun () ->
      Failpoint.configure_string "t.first=raise@first:2";
      (* A transient fault: fires on hits 1..2, then heals for good. *)
      (match Failpoint.hit "t.first" with
      | exception Failpoint.Injected "t.first" -> ()
      | _ -> Alcotest.fail "1st hit should fire");
      (match Failpoint.hit "t.first" with
      | exception Failpoint.Injected "t.first" -> ()
      | _ -> Alcotest.fail "2nd hit should fire");
      Failpoint.hit "t.first";
      Failpoint.hit "t.first";
      Alcotest.(check int) "hit count" 4 (Failpoint.hit_count "t.first"))

(* ------------------------------------------------------------------ *)
(* Process-level chaos: kill -9 a checkpointed sweep mid-run, resume it,
   and demand output bit-identical to an uninterrupted run. *)

let sdft_bin = "../bin/main.exe"
let read_file path = In_channel.with_open_bin path In_channel.input_all

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* Spawn the CLI with stdout redirected to [out]; [extra_env] entries
   replace same-named inherited variables. Returns the pid. *)
let spawn_cli ?(extra_env = []) args ~out =
  let fd =
    Unix.openfile out [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o600
  in
  let overridden = List.map (fun kv -> String.sub kv 0 (String.index kv '=')) extra_env in
  let inherited =
    Unix.environment () |> Array.to_list
    |> List.filter (fun kv ->
           match String.index_opt kv '=' with
           | None -> true
           | Some i -> not (List.mem (String.sub kv 0 i) overridden))
  in
  let env = Array.of_list (inherited @ extra_env) in
  let pid =
    Unix.create_process_env sdft_bin
      (Array.of_list (sdft_bin :: args))
      env Unix.stdin fd Unix.stderr
  in
  Unix.close fd;
  pid

let run_cli ?extra_env args ~out =
  snd (Unix.waitpid [] (spawn_cli ?extra_env args ~out))

(* The numeric content of a sweep table: the printed (horizon,
   frequency, cutsets) columns of each data row. String equality on the
   printed representation is bit-identity at full printf precision. *)
let data_rows text =
  String.split_on_char '\n' text
  |> List.filter_map (fun line ->
         match
           String.split_on_char ' ' line |> List.filter (fun s -> s <> "")
         with
         | h :: f :: c :: _ when float_of_string_opt h <> None ->
           Some (h ^ " " ^ f ^ " " ^ c)
         | _ -> None)

let test_chaos_sweep_kill9_resume () =
  if not (Sys.file_exists sdft_bin) then Alcotest.skip ()
  else begin
    let dir = Filename.temp_file "sdft_chaos" "" in
    Sys.remove dir;
    Unix.mkdir dir 0o700;
    Fun.protect
      ~finally:(fun () ->
        Array.iter
          (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
          (Sys.readdir dir);
        try Unix.rmdir dir with Unix.Unix_error _ -> ())
    @@ fun () ->
    let path name = Filename.concat dir name in
    let model = path "pumps.sdft" in
    (match run_cli [ "gen"; "pumps"; "-o"; model ] ~out:(path "gen.out") with
    | Unix.WEXITED 0 -> ()
    | _ -> Alcotest.fail "gen failed");
    let sweep = [ "sweep"; model; "--horizons"; "6,12,18" ] in
    let golden_out = path "golden.out" in
    (match run_cli sweep ~out:golden_out with
    | Unix.WEXITED 0 -> ()
    | _ -> Alcotest.fail "golden sweep failed");
    let golden = data_rows (read_file golden_out) in
    Alcotest.(check int) "golden has 3 points" 3 (List.length golden);
    (* Interrupted pass: every point slowed to >= 0.45 s by a delay
       failpoint (delays never change results), then SIGKILL as soon as
       the first data row appears. A printed row means the point is
       already journaled: rows are emitted by the [on_point] hook, which
       runs after [record_point]. *)
    let ck = path "sweep.ckpt" in
    let killed_out = path "killed.out" in
    let pid =
      spawn_cli
        ~extra_env:[ "SDFT_FAILPOINTS=cache.lookup=delay:0.15" ]
        (sweep @ [ "--checkpoint"; ck ])
        ~out:killed_out
    in
    let deadline = Unix.gettimeofday () +. 60.0 in
    let rec poll () =
      if data_rows (read_file killed_out) <> [] then ()
      else if Unix.gettimeofday () > deadline then begin
        Unix.kill pid Sys.sigkill;
        ignore (Unix.waitpid [] pid);
        Alcotest.fail "sweep produced no data row within 60 s"
      end
      else
        match Unix.waitpid [ Unix.WNOHANG ] pid with
        | 0, _ ->
          ignore (Unix.select [] [] [] 0.01);
          poll ()
        | _ -> Alcotest.fail "sweep exited before producing a data row"
    in
    poll ();
    Unix.kill pid Sys.sigkill;
    ignore (Unix.waitpid [] pid);
    (* Resume at full speed: journaled points are replayed, the rest
       recomputed, and the table is bit-identical to the golden run. *)
    let resumed_out = path "resumed.out" in
    (match run_cli (sweep @ [ "--checkpoint"; ck; "--resume" ]) ~out:resumed_out with
    | Unix.WEXITED 0 -> ()
    | _ -> Alcotest.fail "resumed sweep failed");
    let resumed_text = read_file resumed_out in
    Alcotest.(check (list string)) "resume bit-identical to uninterrupted run"
      golden (data_rows resumed_text);
    Alcotest.(check bool) "at least one point served from the journal" true
      (contains resumed_text "(checkpointed)")
  end

(* Degradation soundness under randomized fault injection: whatever the
   failpoints do to the pipeline, the analysis must terminate and its
   certified interval must still contain the exact product-semantics
   probability. *)
let prop_degraded_interval_sound =
  QCheck.Test.make ~name:"degraded certified interval contains exact value"
    ~count:30 Gen_sdft.seed_gen (fun seed ->
      let sd = Gen_sdft.sd seed in
      let exact = Sdft_product.solve sd ~horizon:3.0 in
      let spec =
        Printf.sprintf
          "transient.step=oom@prob:0.2:%d,mocus.expand=deadline@nth:%d"
          seed
          (20 + (seed mod 50))
      in
      with_failpoints spec (fun () ->
          let options =
            { Sdft_analysis.default_options with horizon = 3.0 }
          in
          let r = Sdft_analysis.analyze ~options sd in
          let lower = r.Sdft_analysis.budget.Sdft_analysis.lower in
          let upper = r.Sdft_analysis.budget.Sdft_analysis.upper in
          lower <= exact +. 1e-9 && exact <= upper +. 1e-9))

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "robustness"
    [
      ( "guard",
        [
          Alcotest.test_case "none" `Quick test_guard_none;
          Alcotest.test_case "deadline" `Quick test_guard_deadline;
          Alcotest.test_case "amortized check" `Quick test_guard_check_is_amortized;
          Alcotest.test_case "mem limit" `Quick test_guard_mem_limit;
          Alcotest.test_case "invalid args" `Quick test_guard_invalid_args;
        ] );
      ( "failpoint",
        [
          Alcotest.test_case "nth trigger" `Quick test_failpoint_nth;
          Alcotest.test_case "prob trigger" `Quick test_failpoint_prob_deterministic;
          Alcotest.test_case "configure string" `Quick test_failpoint_configure_string;
          Alcotest.test_case "env" `Quick test_failpoint_env;
          Alcotest.test_case "first:N transient trigger" `Quick
            test_failpoint_first;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "containment" `Quick test_map_init_result_contains;
          Alcotest.test_case "worker failpoint" `Quick test_map_init_result_failpoint;
        ] );
      ( "degradation",
        [
          Alcotest.test_case "mocus stack fold" `Quick test_mocus_limit_folds_stack;
          Alcotest.test_case "expired deadline" `Quick test_analyze_expired_deadline;
          Alcotest.test_case "generation limit" `Quick test_analyze_generation_limit;
          Alcotest.test_case "transient oom" `Quick test_analyze_transient_oom;
          Alcotest.test_case "parallel worker crash" `Quick
            test_analyze_worker_crash_parallel;
          Alcotest.test_case "cache crash contained" `Quick
            test_analyze_cache_crash_contained;
          Alcotest.test_case "delay bit-identity" `Quick
            test_delay_failpoints_preserve_results;
          Alcotest.test_case "product limit" `Quick test_product_guard_limit;
        ]
        @ qc [ prop_degraded_interval_sound ] );
      ( "chaos",
        [
          Alcotest.test_case "kill -9 checkpointed sweep, resume bit-identical"
            `Quick test_chaos_sweep_kill9_resume;
        ] );
    ]

(* Shared random-model generation for the test suites.

   One place owns the shape parameters of the random SD fault trees used by
   the soundness properties (test_core), the simulator statistics
   (test_sim), and the analytic-vs-simulation differential suite
   (test_differential) — so "a random small model" means the same thing
   everywhere and the suites genuinely cross-check each other. *)

(* qcheck seed generator shared by the property tests. *)
let seed_gen = QCheck.make QCheck.Gen.(0 -- 100000)

(* A small random SD fault tree, derived deterministically from [seed].
   Defaults match the historical test_core shape: 5 static basics with
   probabilities below 0.2, 4 gates, 2 dynamic events, 1 trigger. *)
let sd ?(max_prob = 0.2) ?(n_basics = 5) ?(n_gates = 4) ?(n_dynamic = 2)
    ?(n_triggers = 1) seed =
  let rng = Sdft_util.Rng.create seed in
  Random_tree.sd rng ~max_prob ~n_basics ~n_gates ~n_dynamic ~n_triggers

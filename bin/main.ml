(* sdft — command-line front end for the SD fault tree toolkit. *)

open Cmdliner

(* Exit discipline: 2 = bad input (unparseable model, missing file), 1 = the
   analysis itself reached a failing verdict (disjoint verification
   intervals, --on-limit=fail degradation, unusable model). Raised instead
   of calling [exit] directly so that the [Fun.protect] finalizers of
   [with_observability] still flush the --metrics/--trace dumps on the way
   out — [exit] does not unwind the stack. *)
exception Exit_code of int

let load_model path =
  try
    if Filename.check_suffix path ".xml" then
      Ok (Sdft.static_only (Open_psa.of_file path))
    else Ok (Sdft_format.of_file path)
  with
  | Sdft_format.Error m -> Error m
  | Open_psa.Error m -> Error m
  | Sys_error m -> Error m
  | Failure m -> Error m
  | Invalid_argument m -> Error m

let or_die = function
  | Ok v -> v
  | Error m ->
    Printf.eprintf "sdft: %s\n" m;
    raise (Exit_code 2)

(* Shared arguments. *)

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Model file (SD fault tree text format).")

let horizon_arg =
  Arg.(value & opt float 24.0 & info [ "horizon"; "t" ] ~docv:"HOURS" ~doc:"Analysis horizon in hours.")

let cutoff_arg =
  Arg.(value & opt float 1e-15 & info [ "cutoff"; "c" ] ~docv:"P" ~doc:"Probabilistic cutoff $(i,c*) for cutset generation.")

(* Observability: every analysis-flavoured subcommand accepts the same
   [--metrics FILE] / [--metrics-format] / [--trace FILE] / [--progress]
   quartet.  Tracing is enabled before the command body runs (the library's
   spans are no-ops otherwise) and both dumps are written on the way out,
   even if the body raises.  The body receives an {!Sdft_util.Obs.t} built
   on the process-default registries — identical instrumentation routing to
   the pre-context CLI — optionally carrying a live stderr progress
   reporter; results are bit-identical either way. *)

type observability = {
  obs_metrics : string option;
  obs_format : Sdft_util.Metrics.format;
  obs_trace : string option;
  obs_progress : bool;
}

let observability_term =
  let metrics =
    Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc:"Dump internal counters, span timers and histograms to $(docv) on exit (format per $(b,--metrics-format)).")
  in
  let format =
    Arg.(value
         & opt (enum [ ("json", Sdft_util.Metrics.Json_format);
                       ("prom", Sdft_util.Metrics.Prom_format) ])
             Sdft_util.Metrics.Json_format
         & info [ "metrics-format" ] ~docv:"FMT" ~doc:"Format of the $(b,--metrics) dump: $(b,json) (default) or $(b,prom) (Prometheus text exposition 0.0.4: counters, gauges, spans as summaries, histograms with cumulative $(i,le) buckets).")
  in
  let trace =
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc:"Record hierarchical trace spans and write them to $(docv) on exit ($(b,.json) selects the Chrome trace-event format, anything else JSONL).")
  in
  let progress =
    Arg.(value & flag & info [ "progress" ] ~doc:"Live one-line progress reporter on stderr: phase, cutsets done/total, cost-weighted ETA, elapsed time and peak heap. Purely observational — results are bit-identical with and without it.")
  in
  Term.(const (fun obs_metrics obs_format obs_trace obs_progress ->
            { obs_metrics; obs_format; obs_trace; obs_progress })
        $ metrics $ format $ trace $ progress)

let with_observability obs f =
  if obs.obs_trace <> None then Sdft_util.Trace.set_enabled true;
  let ctx =
    if obs.obs_progress then
      Sdft_util.Obs.with_progress Sdft_util.Obs.default
        (Sdft_util.Progress.create ())
    else Sdft_util.Obs.default
  in
  let write () =
    Sdft_util.Obs.finish_progress ctx;
    (match obs.obs_metrics with
    | None -> ()
    | Some path -> (
      try Sdft_util.Metrics.write_file ~format:obs.obs_format path
      with Sys_error m -> Printf.eprintf "sdft: %s\n" m));
    match obs.obs_trace with
    | None -> ()
    | Some path -> (
      try Sdft_util.Trace.write_file path
      with Sys_error m -> Printf.eprintf "sdft: %s\n" m)
  in
  Fun.protect ~finally:write (fun () -> f ctx)

(* Resource governance: analysis-flavoured subcommands accept the same
   --deadline / --mem-limit-mb / --on-limit triple. *)

type resource = {
  res_deadline : float option;
  res_mem_mb : int option;
  res_fail : bool; (* --on-limit=fail: degraded results exit nonzero *)
}

let resource_term =
  let deadline =
    Arg.(value & opt (some float) None & info [ "deadline" ] ~docv:"SECONDS" ~doc:"Wall-clock budget for the analysis. When it expires the analysis degrades gracefully (conservative bounds, DEGRADED banner) instead of running on.")
  in
  let mem =
    Arg.(value & opt (some int) None & info [ "mem-limit-mb" ] ~docv:"MB" ~doc:"Major-heap ceiling in megabytes; exceeded means degrade, like $(b,--deadline).")
  in
  let on_limit =
    Arg.(value & opt (enum [ ("degrade", false); ("fail", true) ]) false
         & info [ "on-limit" ] ~docv:"POLICY" ~doc:"What a degraded result means for the exit status: $(b,degrade) (default) exits 0 with the DEGRADED banner, $(b,fail) exits 1.")
  in
  Term.(const (fun res_deadline res_mem_mb res_fail ->
            { res_deadline; res_mem_mb; res_fail })
        $ deadline $ mem $ on_limit)

(* The guard doubles as the progress heartbeat: a --progress run without
   limits still gets a (passive) guard whose probe drives the reporter. *)
let guard_of_resource ctx res =
  match (res.res_deadline, res.res_mem_mb, Sdft_util.Obs.on_probe ctx) with
  | None, None, None -> Sdft_util.Guard.none
  | deadline, mem_limit_mb, on_probe ->
    Sdft_util.Guard.create ?deadline ?mem_limit_mb ?on_probe ()

(* For subcommands that drive MOCUS directly: report an interrupted
   generation and apply the --on-limit policy. *)
let warn_generation_limit res (generation : Mocus.result) =
  match generation.Mocus.limit_hit with
  | None -> ()
  | Some r ->
    Printf.eprintf
      "sdft: DEGRADED: cutset generation stopped early (%s); results cover \
       only the cutsets generated before the limit\n"
      (Sdft_util.Guard.reason_to_string r);
    if res.res_fail then raise (Exit_code 1)

let check_on_limit_fail res result =
  if res.res_fail && Sdft_analysis.degraded result then begin
    Printf.eprintf "sdft: analysis degraded (%s) and --on-limit=fail is set\n"
      (Sdft_analysis.degradation_description result);
    raise (Exit_code 1)
  end

(* Persistent quantification cache: the analysis-flavoured subcommands
   share one [--cache FILE] option (env: SDFT_CACHE). The store is opened
   before the command body and flushed/closed on the way out, even if the
   body raises; IO trouble degrades to memory-only silently here and
   visibly through [report_disk_cache]. *)

let cache_arg =
  Arg.(value & opt (some string) None
       & info [ "cache" ] ~docv:"FILE" ~env:(Cmd.Env.info "SDFT_CACHE")
           ~doc:"Persistent cross-run quantification cache: warm-start from \
                 $(docv) (created if absent) and append fresh solves to it on \
                 exit. A corrupted tail or a file written by a different \
                 solver build is ignored (and rewritten); when another \
                 process holds the writer lock the file is shared \
                 read-only.")

let with_disk_cache path_opt f =
  match path_opt with
  | None -> f None
  | Some path ->
    let cache = Quant_cache.open_disk path in
    Fun.protect
      ~finally:(fun () ->
        try Quant_cache.close cache
        with Sys_error m -> Printf.eprintf "sdft: cache: %s\n" m)
      (fun () -> f (Some cache))

let report_disk_cache cache =
  match Quant_cache.disk_stats cache with
  | None -> ()
  | Some s ->
    Printf.printf
      "disk cache: %s%s — %d entries loaded (%.1f ms), %d disk hits / %d \
       disk misses, %d appended\n"
      s.Quant_cache.disk_path
      (if s.Quant_cache.read_only then " (read-only)" else "")
      s.Quant_cache.entries_loaded s.Quant_cache.load_ms
      s.Quant_cache.disk_hits s.Quant_cache.disk_misses s.Quant_cache.appends;
    (match s.Quant_cache.disk_error with
    | Some e ->
      Printf.eprintf "sdft: cache degraded to memory-only: %s\n" e
    | None -> ())

let engine_arg =
  Arg.(value
       & opt (enum [ ("mocus", Sdft_analysis.Mocus_sound);
                     ("mocus-aggressive", Sdft_analysis.Mocus_aggressive);
                     ("bdd", Sdft_analysis.Bdd_engine);
                     ("zdd", Sdft_analysis.Zdd_engine);
                     ("auto", Sdft_analysis.Auto) ])
           Sdft_analysis.Mocus_sound
       & info [ "engine" ] ~docv:"ENGINE"
           ~doc:"Cutset engine: $(b,mocus), $(b,mocus-aggressive), $(b,bdd), \
                 $(b,zdd) (modular ZDD weighted counting, exact residual-mass \
                 accounting), or $(b,auto) (picks $(b,zdd) for static models \
                 whose modules are narrow enough, $(b,mocus) for translated \
                 trigger logic or very wide modules).")

let domains_arg =
  Arg.(value & opt int 1 & info [ "domains"; "j" ] ~docv:"N" ~doc:"Worker domains for cutset quantification.")

(* analyze *)

let analyze_cmd =
  let run file horizon cutoff top_n show_histogram show_budget engine domains
      cache_path save_path diff_path res obs =
    with_observability obs (fun ctx ->
        with_disk_cache cache_path (fun disk_cache ->
        let sd = or_die (load_model file) in
        let options =
          {
            Sdft_analysis.default_options with
            horizon;
            cutoff;
            engine;
            domains;
            deadline = res.res_deadline;
            mem_limit_mb = res.res_mem_mb;
          }
        in
        (* --save/--diff need a cache even without --cache: --save exports
           its entries into the manifest, --diff seeds them back so only
           changed-fingerprint cutsets re-solve. *)
        let cache =
          match disk_cache with
          | Some c -> Some c
          | None ->
            if save_path <> None || diff_path <> None then
              Some (Quant_cache.create ())
            else None
        in
        let old_manifest =
          Option.map (fun p -> or_die (Manifest.load p)) diff_path
        in
        (match (old_manifest, cache) with
        | Some m, Some c ->
          if Manifest.stamp_matches m then
            ignore (Quant_cache.seed c m.Manifest.cache_entries)
          else
            Printf.eprintf
              "sdft: note: manifest %s was written by a different solver \
               build; its cached results are not trusted, every dynamic \
               cutset re-solves\n"
              (Option.get diff_path)
        | _ -> ());
        let result = Sdft_analysis.analyze ~options ?cache ~obs:ctx sd in
        Format.printf "%a@." Sdft_analysis.pp_summary result;
        if show_budget then Format.printf "%a@." Sdft_analysis.pp_budget result;
        if show_histogram then begin
          print_endline "dynamic events per minimal cutset:";
          Sdft_util.Histogram.print_ascii
            (Sdft_analysis.dynamic_histogram result)
        end;
        if top_n > 0 then begin
          Printf.printf "top %d cutsets:\n" top_n;
          let tree = Sdft.tree sd in
          List.iteri
            (fun i (info : Sdft_analysis.cutset_info) ->
              if i < top_n then
                Format.printf "  %.3e  %a  (%d dynamic, %d states)@."
                  info.probability (Cutset.pp tree) info.cutset info.n_dynamic
                  info.product_states)
            result.cutsets
        end;
        (match old_manifest with
        | Some m ->
          Format.printf "%a@." Manifest.pp_diff (Manifest.diff m sd result)
        | None -> ());
        (match save_path with
        | Some path ->
          Manifest.save path (Manifest.of_result ?cache sd options result);
          Printf.printf "manifest saved to %s\n" path
        | None -> ());
        (match cache with Some c -> report_disk_cache c | None -> ());
        check_on_limit_fail res result))
  in
  let top_n =
    Arg.(value & opt int 10 & info [ "top" ] ~docv:"N" ~doc:"Print the $(docv) most important cutsets (0 disables).")
  in
  let histogram =
    Arg.(value & flag & info [ "histogram" ] ~doc:"Print the dynamic-events-per-cutset histogram (Figure 2).")
  in
  let budget =
    Arg.(value & flag & info [ "budget" ] ~doc:"Print the itemized error budget behind the certified interval.")
  in
  let save =
    Arg.(value & opt (some string) None & info [ "save" ] ~docv:"FILE" ~doc:"Save the result as a JSON manifest (parameters, certified interval, per-cutset quantifications, warm-start cache entries) for later $(b,--diff).")
  in
  let diff =
    Arg.(value & opt (some string) None & info [ "diff" ] ~docv:"FILE" ~doc:"Differential re-analysis against a manifest saved with $(b,--save): warm-start from its cache entries so only cutsets whose canonical fingerprints changed re-solve, then report which cutsets moved the certified interval and by how much.")
  in
  Cmd.v
    (Cmd.info "analyze" ~doc:"Run the full SD fault tree analysis (Section V).")
    Term.(const run $ file_arg $ horizon_arg $ cutoff_arg $ top_n $ histogram $ budget $ engine_arg $ domains_arg $ cache_arg $ save $ diff $ resource_term $ observability_term)

(* explain *)

let explain_cmd =
  let run file horizon cutoff top_n spans_n engine domains cache_path res obs =
    with_observability obs (fun ctx ->
        with_disk_cache cache_path (fun disk_cache ->
        (* Tracing is always on inside [explain]: the top-spans section needs
           it even when no --trace file was requested. *)
        Sdft_util.Trace.set_enabled true;
        let sd = or_die (load_model file) in
        let options =
          {
            Sdft_analysis.default_options with
            horizon;
            cutoff;
            engine;
            domains;
            deadline = res.res_deadline;
            mem_limit_mb = res.res_mem_mb;
          }
        in
        let cache =
          match disk_cache with
          | Some c -> c
          | None -> Quant_cache.create ()
        in
        let result = Sdft_analysis.analyze ~options ~cache ~obs:ctx sd in
        let tree = Sdft.tree sd in
        Format.printf "%a@.@." Sdft_analysis.pp_summary result;
        Format.printf "%a@.@." Sdft_analysis.pp_budget result;
        let report = Sdft_classify.report sd in
        if report.Sdft_classify.per_trigger_gate <> [] then
          Format.printf "%a@.@." (Sdft_classify.pp_report sd) report;
        let shown = min top_n result.Sdft_analysis.n_cutsets in
        Printf.printf "top %d of %d cutsets (by contribution):\n" shown
          result.Sdft_analysis.n_cutsets;
        Printf.printf "%12s %7s %4s %8s %9s %7s %6s %9s  %s\n" "p~(C)"
          "share" "dyn" "states" "trans" "steps" "cache" "time" "cutset";
        List.iteri
          (fun i (info : Sdft_analysis.cutset_info) ->
            if i < top_n then begin
              let share =
                if result.Sdft_analysis.total > 0.0 then
                  100.0 *. info.probability /. result.Sdft_analysis.total
                else 0.0
              in
              Format.printf "%12.3e %6.2f%% %4d %8d %9d %7d %6s %9s  %a@."
                info.probability share info.n_dynamic info.product_states
                info.product_transitions info.solver_steps
                (* Degraded cutsets show the reason for their worst-case
                   fallback where exact solves show cache provenance. *)
                (match info.degraded with
                 | Some Sdft_util.Guard.Deadline -> "ddl!"
                 | Some Sdft_util.Guard.Mem_limit -> "mem!"
                 | Some Sdft_util.Guard.State_limit -> "state!"
                 | Some Sdft_util.Guard.Worker_crash -> "crash!"
                 | None ->
                   if info.used_fallback then "fall!"
                   else if info.from_cache then "hit"
                   else if info.product_states > 0 then "miss"
                   else "-")
                (Format.asprintf "%a" Sdft_util.Timer.pp_duration
                   info.solve_seconds)
                (Cutset.pp tree) info.cutset
            end)
          result.Sdft_analysis.cutsets;
        Printf.printf "\nquantification cache: %d hits / %d misses\n"
          (Quant_cache.hits cache) (Quant_cache.misses cache);
        report_disk_cache cache;
        let spans = Sdft_util.Trace.aggregate () in
        if spans <> [] then begin
          Printf.printf "\ntop trace spans (by total time):\n";
          Printf.printf "%-28s %8s %12s\n" "span" "count" "total";
          List.iteri
            (fun i (name, (count, total)) ->
              if i < spans_n then
                Format.printf "%-28s %8d %12s@." name count
                  (Format.asprintf "%a" Sdft_util.Timer.pp_duration total))
            spans
        end;
        let histograms =
          List.filter
            (fun (_, h) -> h.Sdft_util.Metrics.count > 0)
            (Sdft_util.Metrics.snapshot ()).Sdft_util.Metrics.histograms
        in
        if histograms <> [] then begin
          Printf.printf "\nlatency/throughput histograms (bucket quantiles):\n";
          Printf.printf "%-28s %8s %11s %11s %11s\n" "histogram" "count"
            "p50" "p90" "p99";
          List.iter
            (fun (name, h) ->
              let q p = Sdft_util.Metrics.hist_quantile h p in
              Printf.printf "%-28s %8d %11.3e %11.3e %11.3e\n" name
                h.Sdft_util.Metrics.count (q 0.5) (q 0.9) (q 0.99))
            histograms
        end;
        check_on_limit_fail res result))
  in
  let top_n =
    Arg.(value & opt int 20 & info [ "top" ] ~docv:"N" ~doc:"Rows of the per-cutset provenance table (0 disables).")
  in
  let spans_n =
    Arg.(value & opt int 10 & info [ "spans" ] ~docv:"N" ~doc:"Rows of the top-trace-spans table.")
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:"Account for an analysis result: per-cutset provenance (contribution, chain sizes, solver effort, cache traffic, degradation), the error budget behind the certified interval, and the top trace spans.")
    Term.(const run $ file_arg $ horizon_arg $ cutoff_arg $ top_n $ spans_n $ engine_arg $ domains_arg $ cache_arg $ resource_term $ observability_term)

(* sweep *)

let sweep_cmd =
  let print_header () =
    Printf.printf "%10s %14s %9s %11s %11s\n" "horizon" "frequency" "cutsets"
      "cache-hits" "cache-miss"
  in
  (* Rows are flushed as they complete so a killed sweep leaves a readable
     prefix on the terminal to match the checkpoint journal's state. *)
  let print_item = function
    | Sdft_analysis.Sweep_run p ->
      Printf.printf "%10g %14.6e %9d %11d %11d\n%!"
        p.Sdft_analysis.sweep_options.Sdft_analysis.horizon
        p.Sdft_analysis.sweep_result.Sdft_analysis.total
        p.Sdft_analysis.sweep_result.Sdft_analysis.n_cutsets
        p.Sdft_analysis.cache_hits p.Sdft_analysis.cache_misses
    | Sdft_analysis.Sweep_skipped pt ->
      Printf.printf "%10g %14.6e %9d %11d %11d (checkpointed)\n%!"
        pt.Checkpoint.pt_horizon pt.Checkpoint.pt_total
        pt.Checkpoint.pt_n_cutsets 0 0
  in
  let item_degradation = function
    | Sdft_analysis.Sweep_run p ->
      if Sdft_analysis.degraded p.Sdft_analysis.sweep_result then
        Some
          ( p.Sdft_analysis.sweep_options.Sdft_analysis.horizon,
            Sdft_analysis.degradation_description
              p.Sdft_analysis.sweep_result )
      else None
    | Sdft_analysis.Sweep_skipped pt ->
      Option.map
        (fun d -> (pt.Checkpoint.pt_horizon, d))
        pt.Checkpoint.pt_degraded
  in
  let finish_sweep res items cache =
    Printf.printf "cache: %d hits / %d misses\n" (Quant_cache.hits cache)
      (Quant_cache.misses cache);
    report_disk_cache cache;
    let degradations = List.filter_map item_degradation items in
    List.iter
      (fun (h, d) -> Printf.printf "DEGRADED at horizon %g: %s\n" h d)
      degradations;
    if res.res_fail && degradations <> [] then begin
      Printf.eprintf "sdft: sweep degraded and --on-limit=fail is set\n";
      raise (Exit_code 1)
    end
  in
  let run file horizons cutoff engine domains cache_path ckpt_path resume res
      obs =
    with_observability obs (fun ctx ->
        with_disk_cache cache_path (fun disk_cache ->
        let sd = or_die (load_model file) in
        let option_sets =
          List.map
            (fun horizon ->
              {
                Sdft_analysis.default_options with
                horizon;
                cutoff;
                engine;
                domains;
                deadline = res.res_deadline;
                mem_limit_mb = res.res_mem_mb;
              })
            horizons
        in
        match ckpt_path with
        | None ->
          if resume then
            or_die (Error "--resume needs --checkpoint FILE");
          let points, cache =
            Sdft_analysis.sweep ?cache:disk_cache ~obs:ctx sd option_sets
          in
          print_header ();
          List.iter (fun p -> print_item (Sdft_analysis.Sweep_run p)) points;
          finish_sweep res
            (List.map (fun p -> Sdft_analysis.Sweep_run p) points)
            cache
        | Some path ->
          let journal =
            try Checkpoint.open_ path with
            | Sys_error m | Failure m ->
              or_die (Error (Printf.sprintf "checkpoint %s: %s" path m))
            | Unix.Unix_error (e, _, _) ->
              or_die
                (Error
                   (Printf.sprintf "checkpoint %s: %s" path
                      (Unix.error_message e)))
          in
          Fun.protect
            ~finally:(fun () ->
              try Checkpoint.close journal
              with Sys_error m ->
                Printf.eprintf "sdft: checkpoint: %s\n" m)
            (fun () ->
              print_header ();
              let items, cache =
                Sdft_analysis.sweep_checkpointed ?cache:disk_cache ~obs:ctx
                  ~journal ~resume ~on_point:print_item sd option_sets
              in
              (match Checkpoint.journal_error journal with
              | Some m ->
                Printf.eprintf
                  "sdft: checkpoint degraded (results unaffected): %s\n" m
              | None -> ());
              finish_sweep res items cache)))
  in
  let horizons =
    Arg.(value & opt (list float) [ 8.0; 24.0; 72.0 ]
         & info [ "horizons" ] ~docv:"H1,H2,.." ~doc:"Comma-separated analysis horizons in hours.")
  in
  let checkpoint =
    Arg.(value & opt (some string) None
         & info [ "checkpoint" ] ~docv:"FILE"
             ~doc:"Append a crash-safe journal record to $(docv) after every \
                   completed sweep point (and after every fresh \
                   quantification), so a killed sweep can be finished with \
                   $(b,--resume) instead of recomputed. The journal uses the \
                   same CRC-framed store format as $(b,--cache); a torn tail \
                   from a crash is truncated away on reopen.")
  in
  let resume =
    Arg.(value & flag
         & info [ "resume" ]
             ~doc:"Resume from the $(b,--checkpoint) journal: sweep points \
                   already certified there are printed from the journal \
                   (marked $(i,checkpointed)) without re-analysis, cached \
                   quantifications are warm-started, and only unfinished \
                   points run. The completed output is bit-identical to an \
                   uninterrupted run.")
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:"Analyze one model over several horizons, sharing the quantification cache across points.")
    Term.(const run $ file_arg $ horizons $ cutoff_arg $ engine_arg $ domains_arg $ cache_arg $ checkpoint $ resume $ resource_term $ observability_term)

(* mcs *)

let mcs_cmd =
  let run file cutoff engine horizon cache_path res obs =
    with_observability obs (fun ctx ->
        (* mcs performs no quantification, so the cache sees no traffic; the
           option is still honoured (uniform interface, and SDFT_CACHE can
           stay exported across a whole pipeline run: opening repairs a torn
           tail and validates the stamp). *)
        with_disk_cache cache_path (fun _disk_cache ->
        let sd = or_die (load_model file) in
        let guard = guard_of_resource ctx res in
        let translation = Sdft_translate.translate sd ~horizon in
        let tree = translation.Sdft_translate.static_tree in
        let resolved = Sdft_analysis.resolve_engine engine tree in
        Sdft_util.Obs.begin_phase ctx "generation" ();
        let generation =
          Sdft_analysis.generate_cutsets ~cutoff ~guard ~obs:ctx resolved tree
        in
        (match generation.Mocus.limit_hit with
        | Some r when generation.Mocus.truncated && generation.Mocus.cutsets = []
          ->
          (* Unlike MOCUS, an interrupted BDD/ZDD compilation has no sound
             partial cutset list to print. *)
          Printf.eprintf
            "sdft: %s cutset generation hit the %s; rerun with a larger \
             budget or --engine mocus\n"
            (Sdft_analysis.engine_name resolved)
            (Sdft_util.Guard.reason_to_string r);
          raise (Exit_code 1)
        | _ -> warn_generation_limit res generation);
        let cutsets = generation.Mocus.cutsets in
        Printf.printf "%d minimal cutsets (engine: %s)\n" (List.length cutsets)
          (Sdft_analysis.engine_name resolved);
        if generation.Mocus.pruned_mass > 0.0 then
          Printf.printf "mass below cutoff/order bounds: %.3e%s\n"
            generation.Mocus.pruned_mass
            (if resolved = Sdft_analysis.Zdd_engine then " (exact)"
             else " (upper bound)");
        List.iter
          (fun c ->
            Format.printf "%.3e  %a@." (Cutset.probability tree c)
              (Cutset.pp tree) c)
          (Cutset.sort_by_probability tree cutsets)))
  in
  Cmd.v
    (Cmd.info "mcs" ~doc:"Generate minimal cutsets of the translated static tree.")
    Term.(const run $ file_arg $ cutoff_arg $ engine_arg $ horizon_arg $ cache_arg $ resource_term $ observability_term)

(* classify *)

let classify_cmd =
  let run file =
    let sd = or_die (load_model file) in
    let report = Sdft_classify.report sd in
    Format.printf "%a@." (Sdft_classify.pp_report sd) report
  in
  Cmd.v
    (Cmd.info "classify" ~doc:"Classify every triggering gate (static branching / static joins / general).")
    Term.(const run $ file_arg)

(* simulate *)

let simulate_cmd =
  let run file horizon trials seed method_ domains batch bias no_forcing
      rel_error level verify cutoff engine cache_path obs =
    with_observability obs (fun ctx ->
        with_disk_cache cache_path (fun disk_cache ->
        let sd = or_die (load_model file) in
        let z =
          match level with
          | `P90 -> 1.6448536269514722
          | `P95 -> Rare_event.z95
          | `P99 -> Rare_event.z99
        in
        let pct = match level with `P90 -> 90 | `P95 -> 95 | `P99 -> 99 in
        let lo, hi =
          match method_ with
          | `Crude ->
            let stats = Simulator.unreliability ~seed sd ~horizon ~trials in
            let lo, hi = Simulator.wilson_interval ~z stats in
            Printf.printf
              "method: crude Monte-Carlo\n\
               failures: %d / %d\n\
               estimate: %.4e (%d%% Wilson CI [%.4e, %.4e])\n"
              stats.Simulator.failures stats.Simulator.trials
              stats.Simulator.estimate pct lo hi;
            (lo, hi)
          | `Is ->
            let options =
              {
                Rare_event.default_options with
                trials;
                seed;
                domains;
                batch;
                static_bias = bias;
                forcing = not no_forcing;
                target_rel_error = rel_error;
              }
            in
            let e = Rare_event.run ~options ~obs:ctx sd ~horizon in
            let lo, hi = Rare_event.confidence ~z e in
            Printf.printf
              "method: importance sampling (%s, static bias x%g)\n\
               trials: %d (hits: %d)\n\
               estimate: %.4e (%d%% CI [%.4e, %.4e])\n\
               std error: %.3e (rel %.2e)\n\
               mean likelihood weight: %.4f\n"
              (if no_forcing then "no forcing" else "forcing")
              bias e.Rare_event.trials e.Rare_event.hits
              e.Rare_event.estimate pct lo hi e.Rare_event.std_error
              e.Rare_event.rel_error e.Rare_event.mean_weight;
            (match Rare_event.variance_reduction e with
            | Some f -> Printf.printf "variance reduction vs crude MC: %.3gx\n" f
            | None -> ());
            (lo, hi)
        in
        if verify then begin
          let options =
            { Sdft_analysis.default_options with horizon; cutoff; engine }
          in
          (* The verification side is an ordinary analysis, so a warm
             persistent cache makes repeated cross-checks nearly free. *)
          let result =
            Sdft_analysis.analyze ~options ?cache:disk_cache ~obs:ctx sd
          in
          let check = Sdft_analysis.verify_sim result ~sim_ci:(lo, hi) in
          Printf.printf "analytic rare-event total: %.4e\n"
            result.Sdft_analysis.total;
          Format.printf "%a@." Sdft_analysis.pp_sim_check check;
          (match disk_cache with
          | Some c -> report_disk_cache c
          | None -> ());
          if not check.Sdft_analysis.overlaps then raise (Exit_code 1)
        end))
  in
  let trials =
    Arg.(value & opt int 100_000 & info [ "trials"; "n" ] ~docv:"N" ~doc:"Number of Monte-Carlo trials.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.") in
  let method_ =
    Arg.(value & opt (enum [ ("is", `Is); ("crude", `Crude) ]) `Is
         & info [ "method" ] ~docv:"METHOD" ~doc:"$(b,is) (rare-event importance sampling, the default) or $(b,crude) (plain Monte-Carlo).")
  in
  let batch =
    Arg.(value & opt int 4096 & info [ "batch" ] ~docv:"N" ~doc:"Trials per RNG stream (importance sampling).")
  in
  let bias =
    Arg.(value & opt float 50.0 & info [ "bias" ] ~docv:"F" ~doc:"Multiplicative failure-biasing boost of static probabilities; 1 disables.")
  in
  let no_forcing =
    Arg.(value & flag & info [ "no-forcing" ] ~doc:"Disable forcing (truncated-exponential conditioning of jump times).")
  in
  let rel_error =
    Arg.(value & opt (some float) None & info [ "target-rel-error" ] ~docv:"R" ~doc:"Stop early once the relative standard error falls below $(docv).")
  in
  let level =
    Arg.(value & opt (enum [ ("90", `P90); ("95", `P95); ("99", `P99) ]) `P95
         & info [ "level" ] ~docv:"PCT" ~doc:"Confidence level of the reported interval: 90, 95 or 99.")
  in
  let verify =
    Arg.(value & flag & info [ "verify" ] ~doc:"Also run the analytic pipeline and check that the simulation CI overlaps its certified budget interval; exit 1 when the intervals are disjoint.")
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Statistical estimate of the failure probability (full SD semantics): rare-event importance sampling or crude Monte-Carlo, optionally cross-checked against the analytic certified interval.")
    Term.(const run $ file_arg $ horizon_arg $ trials $ seed $ method_ $ domains_arg $ batch $ bias $ no_forcing $ rel_error $ level $ verify $ cutoff_arg $ engine_arg $ cache_arg $ observability_term)

(* exact *)

let exact_cmd =
  let run file horizon max_states res obs =
    with_observability obs (fun ctx ->
        let sd = or_die (load_model file) in
        let guard = guard_of_resource ctx res in
        Sdft_util.Obs.begin_phase ctx "exact" ();
        match Sdft_product.solve ~max_states ~guard ~obs:ctx sd ~horizon with
        | p -> Printf.printf "p(FT, %gh) = %.6e\n" horizon p
        | exception Sdft_product.Too_many_states n ->
          Printf.eprintf
            "sdft: product state space exceeds %d states; use 'analyze' or 'simulate'\n"
            n;
          raise (Exit_code 1)
        | exception Sdft_util.Guard.Limit_hit r ->
          (* Exact semantics cannot degrade — a partial product chain is
             not a bound on anything. *)
          Printf.eprintf
            "sdft: exact analysis hit the %s; use 'analyze' (which degrades \
             gracefully) or 'simulate'\n"
            (Sdft_util.Guard.reason_to_string r);
          raise (Exit_code 1))
  in
  let max_states =
    Arg.(value & opt int 1_000_000 & info [ "max-states" ] ~docv:"N" ~doc:"State-space safety limit.")
  in
  Cmd.v
    (Cmd.info "exact" ~doc:"Exact failure probability via the full product Markov chain (small models only).")
    Term.(const run $ file_arg $ horizon_arg $ max_states $ resource_term $ observability_term)

(* translate *)

let translate_cmd =
  let run file horizon =
    let sd = or_die (load_model file) in
    let translation = Sdft_translate.translate sd ~horizon in
    print_string
      (Sdft_format.to_string (Sdft.static_only translation.Sdft_translate.static_tree))
  in
  Cmd.v
    (Cmd.info "translate" ~doc:"Print the static fault tree with equivalent minimal cutsets (Section V-B).")
    Term.(const run $ file_arg $ horizon_arg)

(* importance *)

let importance_cmd =
  let run file cutoff horizon top_n res obs =
    with_observability obs (fun ctx ->
        let sd = or_die (load_model file) in
        let translation = Sdft_translate.translate sd ~horizon in
        let tree = translation.Sdft_translate.static_tree in
        let options = { Mocus.default_options with cutoff } in
        Sdft_util.Obs.begin_phase ctx "generation" ();
        let generation =
          Mocus.run ~options ~guard:(guard_of_resource ctx res) ~obs:ctx tree
        in
        warn_generation_limit res generation;
        let cutsets = generation.Mocus.cutsets in
        let imp = Importance.compute tree cutsets in
        Printf.printf "%-30s %12s %12s %10s %10s\n" "event" "FV" "Birnbaum"
          "RAW" "RRW";
        List.iteri
          (fun i a ->
            if i < top_n then
              Printf.printf "%-30s %12.4e %12.4e %10.3f %10.3f\n"
                (Fault_tree.basic_name tree a)
                (Importance.fussell_vesely imp a)
                (Importance.birnbaum imp a) (Importance.raw imp a)
                (Importance.rrw imp a))
          (Importance.rank_by_fussell_vesely imp))
  in
  let top_n =
    Arg.(value & opt int 25 & info [ "top" ] ~docv:"N" ~doc:"Show the $(docv) most important events.")
  in
  Cmd.v
    (Cmd.info "importance" ~doc:"Importance measures (Fussell-Vesely, Birnbaum, RAW, RRW).")
    Term.(const run $ file_arg $ cutoff_arg $ horizon_arg $ top_n $ resource_term $ observability_term)

(* uncertainty *)

let uncertainty_cmd =
  let run file cutoff horizon samples seed error_factor res obs =
    with_observability obs (fun ctx ->
        let sd = or_die (load_model file) in
        let translation = Sdft_translate.translate sd ~horizon in
        let tree = translation.Sdft_translate.static_tree in
        let options = { Mocus.default_options with cutoff } in
        Sdft_util.Obs.begin_phase ctx "generation" ();
        let generation =
          Mocus.run ~options ~guard:(guard_of_resource ctx res) ~obs:ctx tree
        in
        warn_generation_limit res generation;
        let cutsets = generation.Mocus.cutsets in
        let spec _ = Uncertainty.Lognormal { error_factor } in
        let stats = Uncertainty.propagate ~samples ~seed tree cutsets ~spec in
        Format.printf "%a@." Uncertainty.pp_stats stats)
  in
  let samples =
    Arg.(value & opt int 2000 & info [ "samples"; "n" ] ~docv:"N" ~doc:"Monte-Carlo parameter samples.")
  in
  let seed = Arg.(value & opt int 20240 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.") in
  let ef =
    Arg.(value & opt float 3.0 & info [ "error-factor" ] ~docv:"EF" ~doc:"Lognormal error factor applied to every basic event.")
  in
  Cmd.v
    (Cmd.info "uncertainty" ~doc:"Propagate lognormal parameter uncertainty over the cutset list.")
    Term.(const run $ file_arg $ cutoff_arg $ horizon_arg $ samples $ seed $ ef $ resource_term $ observability_term)

(* sensitivity *)

let sensitivity_cmd =
  let run file cutoff horizon factor top_n res obs =
    with_observability obs (fun ctx ->
        let sd = or_die (load_model file) in
        let translation = Sdft_translate.translate sd ~horizon in
        let tree = translation.Sdft_translate.static_tree in
        let options = { Mocus.default_options with cutoff } in
        Sdft_util.Obs.begin_phase ctx "generation" ();
        let generation =
          Mocus.run ~options ~guard:(guard_of_resource ctx res) ~obs:ctx tree
        in
        warn_generation_limit res generation;
        let cutsets = generation.Mocus.cutsets in
        let t = Sensitivity.tornado ~factor tree cutsets in
        Sensitivity.print_ascii tree ~top:top_n t)
  in
  let factor =
    Arg.(value & opt float 10.0 & info [ "factor" ] ~docv:"F" ~doc:"Multiplicative swing applied to each probability.")
  in
  let top_n =
    Arg.(value & opt int 15 & info [ "top" ] ~docv:"N" ~doc:"Show the $(docv) largest swings.")
  in
  Cmd.v
    (Cmd.info "sensitivity" ~doc:"One-at-a-time tornado sensitivity over the cutset list.")
    Term.(const run $ file_arg $ cutoff_arg $ horizon_arg $ factor $ top_n $ resource_term $ observability_term)

(* convert *)

let convert_cmd =
  let run file output format =
    let sd = or_die (load_model file) in
    let contents =
      match format with
      | `Sdft -> Sdft_format.to_string sd
      | `Opsa ->
        (* The exchange format carries the static structure only; dynamic
           annotations are dropped with a warning. *)
        if Sdft.dynamic_basics sd <> [] then
          prerr_endline
            "sdft: note: Open-PSA output drops the dynamic annotations";
        Open_psa.to_string (Sdft.tree sd)
    in
    match output with
    | None -> print_string contents
    | Some path ->
      let oc = open_out path in
      Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
          output_string oc contents)
  in
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"PATH" ~doc:"Write to $(docv) instead of stdout.")
  in
  let format =
    Arg.(value & opt (enum [ ("sdft", `Sdft); ("opsa", `Opsa) ]) `Sdft
         & info [ "to" ] ~docv:"FORMAT" ~doc:"Output format: $(b,sdft) (native) or $(b,opsa) (Open-PSA XML, static part).")
  in
  Cmd.v
    (Cmd.info "convert" ~doc:"Convert between the native text format and Open-PSA XML (input format by extension).")
    Term.(const run $ file_arg $ output $ format)

(* sequences *)

let sequences_cmd =
  let run file horizon cutoff top_n res obs =
    with_observability obs (fun ctx ->
        let sd = or_die (load_model file) in
        let translation = Sdft_translate.translate sd ~horizon in
        let options = { Mocus.default_options with cutoff } in
        Sdft_util.Obs.begin_phase ctx "generation" ();
        let generation =
          Mocus.run ~options ~guard:(guard_of_resource ctx res) ~obs:ctx
            translation.Sdft_translate.static_tree
        in
        warn_generation_limit res generation;
        let cutsets = generation.Mocus.cutsets in
        let tree = Sdft.tree sd in
        List.iteri
          (fun i c ->
            if i < top_n then begin
              let r = Cut_sequences.of_cutset sd c ~horizon in
              Format.printf "%a (p~ = %.3e):@." (Cutset.pp tree) c
                r.Cut_sequences.total;
              List.iter
                (fun s -> Format.printf "  %a@." (Cut_sequences.pp sd) s)
                r.Cut_sequences.sequences
            end)
          (Cutset.sort_by_probability translation.Sdft_translate.static_tree
             cutsets))
  in
  let top_n =
    Arg.(value & opt int 5 & info [ "top" ] ~docv:"N" ~doc:"Analyse the $(docv) most important cutsets.")
  in
  Cmd.v
    (Cmd.info "sequences" ~doc:"Minimal cut sequences: failure orders of each cutset with their probabilities.")
    Term.(const run $ file_arg $ horizon_arg $ cutoff_arg $ top_n $ resource_term $ observability_term)

(* availability *)

let availability_cmd =
  let run file cutoff res obs =
    with_observability obs (fun ctx ->
        let sd = or_die (load_model file) in
        let guard = guard_of_resource ctx res in
        Sdft_util.Obs.begin_phase ctx "generation" ();
        match Availability.analyze ~cutoff ~guard ~obs:ctx sd with
        | Some r ->
          (* A deadline guard stays tripped after expiry, so probing it here
             tells us whether generation was cut short. *)
          (match Sdft_util.Guard.status guard with
          | Some reason ->
            Printf.eprintf
              "sdft: DEGRADED: cutset generation stopped early (%s); the \
               unavailability sum covers only the cutsets generated before \
               the limit\n"
              (Sdft_util.Guard.reason_to_string reason);
            if res.res_fail then raise (Exit_code 1)
          | None -> ());
          Printf.printf
            "steady-state unavailability (REA over %d cutsets): %.4e\n"
            r.Availability.n_cutsets r.Availability.unavailability;
          let tree = Sdft.tree sd in
          List.iter
            (fun (b, q) ->
              Printf.printf "  %-30s q = %.4e\n"
                (Fault_tree.basic_name tree b) q)
            r.Availability.per_event
        | None ->
          Printf.eprintf
            "sdft: some dynamic event has no steady state (not repairable)\n";
          raise (Exit_code 1))
  in
  Cmd.v
    (Cmd.info "availability" ~doc:"Long-run unavailability of a repairable SD fault tree.")
    Term.(const run $ file_arg $ cutoff_arg $ resource_term $ observability_term)

(* dot *)

let dot_cmd =
  let run file output =
    let sd = or_die (load_model file) in
    let tree = Sdft.tree sd in
    let dot =
      Dot.to_dot
        ~dynamic_basics:(Sdft.is_dynamic sd)
        ~trigger_edges:(Sdft.trigger_edges sd) tree
    in
    match output with
    | None -> print_string dot
    | Some path -> Dot.write_file path dot
  in
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"PATH" ~doc:"Write to $(docv) instead of stdout.")
  in
  Cmd.v
    (Cmd.info "dot" ~doc:"Export the model as a Graphviz graph.")
    Term.(const run $ file_arg $ output)

(* gen *)

let gen_cmd =
  let run which output =
    let sd =
      match which with
      | `Pumps -> Pumps.sd_tree ()
      | `Bwr ->
        Bwr.build
          {
            Bwr.default_config with
            repair_rate = Some 0.1;
            triggers = Bwr.all_trigger_sites;
          }
      | `Small -> Sdft.static_only (Industrial.generate Industrial.small)
      | `Medium -> Sdft.static_only (Industrial.generate Industrial.medium)
      | `Model1 -> Sdft.static_only (Industrial.generate Industrial.model_1)
      | `Model2 -> Sdft.static_only (Industrial.generate Industrial.model_2)
    in
    match output with
    | None -> print_string (Sdft_format.to_string sd)
    | Some path -> Sdft_format.to_file path sd
  in
  let which =
    Arg.(
      required
      & pos 0
          (some
             (enum
                [
                  ("pumps", `Pumps);
                  ("bwr", `Bwr);
                  ("small", `Small);
                  ("medium", `Medium);
                  ("model1", `Model1);
                  ("model2", `Model2);
                ]))
          None
      & info [] ~docv:"MODEL" ~doc:"One of pumps, bwr, small, medium, model1, model2.")
  in
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"PATH" ~doc:"Write to $(docv) instead of stdout.")
  in
  Cmd.v
    (Cmd.info "gen" ~doc:"Emit one of the bundled models in the text format.")
    Term.(const run $ which $ output)

(* serve — the resident analysis daemon. *)

let listen_arg =
  Arg.(value & opt string "unix:sdft.sock"
       & info [ "listen" ] ~docv:"ADDR"
           ~doc:"Endpoint to serve on: $(b,unix:PATH) (default: \
                 $(b,unix:sdft.sock)), $(b,tcp:HOST:PORT), or a bare path \
                 (a Unix socket). A stale socket file is replaced.")

let serve_cmd =
  let run listen workers queue quota request_domains default_deadline
      default_mem watchdog idem_window cache_path metrics_path metrics_format
      =
    let addr = or_die (Sdft_server.Daemon.addr_of_string listen) in
    let config =
      {
        Sdft_server.Server_core.default_config with
        Sdft_server.Server_core.workers;
        queue_capacity = queue;
        client_quota = quota;
        max_request_domains = request_domains;
        default_deadline;
        default_mem_limit_mb = default_mem;
        watchdog_timeout = (if watchdog > 0.0 then Some watchdog else None);
        response_window = idem_window;
      }
    in
    (* A client vanishing mid-response must degrade to a failed write on
       that connection, not a fatal SIGPIPE. *)
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    with_disk_cache cache_path (fun disk_cache ->
        let cache =
          match disk_cache with Some c -> c | None -> Quant_cache.create ()
        in
        let core = Sdft_server.Server_core.create ~config ~cache () in
        let stop_on_signal =
          Sys.Signal_handle
            (fun _ -> Sdft_server.Daemon.request_stop core)
        in
        Sys.set_signal Sys.sigint stop_on_signal;
        Sys.set_signal Sys.sigterm stop_on_signal;
        let write_metrics () =
          match metrics_path with
          | None -> ()
          | Some path -> (
            try
              Sdft_util.Metrics.write_file_in ~format:metrics_format
                (Sdft_server.Server_core.metrics core)
                path
            with Sys_error m -> Printf.eprintf "sdft: %s\n" m)
        in
        Fun.protect ~finally:write_metrics (fun () ->
            Sdft_server.Daemon.serve core addr ~on_ready:(fun () ->
                Printf.printf
                  "sdft: serving on %s (%d workers, queue %d, quota %d)\n%!"
                  (Sdft_server.Daemon.addr_to_string addr)
                  config.Sdft_server.Server_core.workers queue quota));
        (match disk_cache with
        | Some c -> report_disk_cache c
        | None -> ());
        Printf.printf "sdft: server stopped\n%!")
  in
  let workers =
    Arg.(value & opt int 2
         & info [ "workers" ] ~docv:"N"
             ~doc:"Worker domains executing analyze requests.")
  in
  let queue =
    Arg.(value & opt int 64
         & info [ "queue" ] ~docv:"N"
             ~doc:"Admission queue bound; a saturated queue rejects with a \
                   structured $(i,retry_after) response instead of queueing \
                   unboundedly.")
  in
  let quota =
    Arg.(value & opt int 16
         & info [ "quota" ] ~docv:"N"
             ~doc:"Maximum in-flight (queued plus running) requests per \
                   client.")
  in
  let request_domains =
    Arg.(value & opt int 1
         & info [ "request-domains" ] ~docv:"N"
             ~doc:"Clamp on the per-request $(i,domains) parameter (solver \
                   domains nested inside one worker).")
  in
  let default_deadline =
    Arg.(value & opt (some float) None
         & info [ "default-deadline" ] ~docv:"SECONDS"
             ~doc:"Guard deadline applied to requests that do not set \
                   their own; requests degrade gracefully when it \
                   expires.")
  in
  let default_mem =
    Arg.(value & opt (some int) None
         & info [ "default-mem-limit-mb" ] ~docv:"MB"
             ~doc:"Guard heap ceiling applied to requests that do not set \
                   their own.")
  in
  let watchdog =
    Arg.(value & opt float 60.0
         & info [ "watchdog" ] ~docv:"SECONDS"
             ~doc:"Declare a busy worker domain lost after $(docv) seconds \
                   without a heartbeat: its request is failed with a \
                   retryable $(i,worker_lost) error and its pool slot is \
                   respawned, so one hung analysis cannot shrink the pool. \
                   $(b,0) disables the watchdog.")
  in
  let idem_window =
    Arg.(value & opt int 128
         & info [ "idem-window" ] ~docv:"N"
             ~doc:"Remember the last $(docv) response lines per \
                   (client, idem) pair so retried requests carrying an \
                   $(i,idem) key are answered verbatim instead of \
                   recomputed. $(b,0) disables the window.")
  in
  let metrics =
    Arg.(value & opt (some string) None
         & info [ "metrics" ] ~docv:"FILE"
             ~doc:"Dump the server registry (requests, rejections, request \
                   latency histogram, cache roll-up) to $(docv) on exit. \
                   The live equivalents are the $(b,metrics) op and a plain \
                   HTTP $(b,GET /metrics) on the same socket.")
  in
  let metrics_format =
    Arg.(value
         & opt (enum [ ("json", Sdft_util.Metrics.Json_format);
                       ("prom", Sdft_util.Metrics.Prom_format) ])
             Sdft_util.Metrics.Json_format
         & info [ "metrics-format" ] ~docv:"FMT"
             ~doc:"Format of the $(b,--metrics) dump: $(b,json) or \
                   $(b,prom).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Resident analysis server: accept newline-delimited JSON \
             analysis requests over a Unix or TCP socket, multiplexed over \
             a worker-domain pool and one shared quantification cache \
             (flushed on graceful shutdown). Each request runs under its \
             own observability context and resource guard; errors are \
             answered, never fatal.")
    Term.(const run $ listen_arg $ workers $ queue $ quota $ request_domains
          $ default_deadline $ default_mem $ watchdog $ idem_window
          $ cache_arg $ metrics $ metrics_format)

(* client — line-oriented scripting client for serve. *)

let client_cmd =
  let run connect op file id client_name idem timeout retries horizon cutoff
      engine domains deadline mem_limit_mb max_order failpoints verbose raw =
    let addr = or_die (Sdft_server.Daemon.addr_of_string connect) in
    (* Retried analyzes get an idempotency key automatically so a resend
       after a broken socket or a lost worker is answered from the
       server's response window instead of recomputed. *)
    let idem =
      match (idem, raw, op) with
      | (Some _ as k), _, _ -> k
      | None, None, "analyze" when retries > 0 ->
        Some
          (Digest.to_hex
             (Digest.string
                (Printf.sprintf "%d|%.9f|%s" (Unix.getpid ())
                   (Unix.gettimeofday ()) connect)))
      | _ -> None
    in
    let line =
      match raw with
      | Some l -> l
      | None -> (
        match op with
        | "analyze" ->
          let path =
            match file with
            | Some f -> f
            | None ->
              or_die (Error "analyze needs a MODEL file (or use --raw)")
          in
          (* .xml goes through the Open-PSA reader and is re-serialized;
             the native text format travels as-is. *)
          let model =
            if Filename.check_suffix path ".xml" then
              Sdft_format.to_string (or_die (load_model path))
            else
              or_die
                (try
                   Ok In_channel.(with_open_bin path input_all)
                 with Sys_error m -> Error m)
          in
          Sdft_server.Protocol.analyze_line ?id ?client:client_name ?idem
            ?horizon ?cutoff ?engine ?domains ?deadline ?mem_limit_mb
            ?max_order ?failpoints ~verbose ~model ()
        | other -> Sdft_server.Protocol.simple_line ?id ?client:client_name other)
    in
    let cl =
      try Sdft_server.Client.connect ?timeout ~retries addr with
      | Unix.Unix_error (e, _, _) ->
        or_die
          (Error
             (Printf.sprintf "cannot connect to %s: %s" connect
                (Unix.error_message e)))
      | Sdft_server.Client.Timeout tmo ->
        or_die
          (Error
             (Printf.sprintf "connecting to %s timed out after %gs" connect
                tmo))
    in
    let response =
      match Sdft_server.Client.request cl line with
      | r -> r
      | exception End_of_file ->
        or_die (Error "server closed the connection before replying")
      | exception Unix.Unix_error (e, _, _) ->
        or_die (Error (Unix.error_message e))
      | exception Sdft_server.Client.Timeout tmo ->
        or_die
          (Error (Printf.sprintf "no response after %gs (--timeout)" tmo))
    in
    Sdft_server.Client.close cl;
    (* The metrics op unwraps to the raw exposition text (scrape-friendly);
       everything else prints the raw response line for jq-style piping. *)
    let module J = Sdft_util.Json in
    (match
       if op = "metrics" && raw = None then
         Option.bind (Result.to_option (J.parse response)) (fun v ->
             Option.bind (J.member "result" v) (fun r ->
                 Option.bind (J.member "prometheus" r) J.to_string))
       else None
     with
    | Some text -> print_string text
    | None -> print_endline response);
    match Result.to_option (J.parse response) with
    | Some v when J.member "ok" v = Some (J.Bool true) -> ()
    | _ -> raise (Exit_code 1)
  in
  let connect =
    Arg.(value & opt string "unix:sdft.sock"
         & info [ "connect" ] ~docv:"ADDR"
             ~doc:"Server endpoint: $(b,unix:PATH), $(b,tcp:HOST:PORT) or a \
                   bare socket path.")
  in
  let op =
    Arg.(value
         & opt (enum [ ("analyze", "analyze"); ("ping", "ping");
                       ("metrics", "metrics"); ("stats", "stats");
                       ("health", "health"); ("shutdown", "shutdown") ])
             "analyze"
         & info [ "op" ] ~docv:"OP"
             ~doc:"Request op: $(b,analyze) (default), $(b,ping), \
                   $(b,metrics), $(b,stats), $(b,health) or \
                   $(b,shutdown).")
  in
  let file =
    Arg.(value & pos 0 (some file) None
         & info [] ~docv:"MODEL" ~doc:"Model file for $(b,analyze).")
  in
  let id =
    Arg.(value & opt (some string) None
         & info [ "id" ] ~docv:"ID" ~doc:"Request id, echoed in the response.")
  in
  let client_name =
    Arg.(value & opt (some string) None
         & info [ "client" ] ~docv:"NAME" ~doc:"Quota bucket to bill this request to.")
  in
  let idem =
    Arg.(value & opt (some string) None
         & info [ "idem" ] ~docv:"KEY"
             ~doc:"Idempotency key: the server answers a retry of the same \
                   (client, $(docv)) pair with the remembered response line \
                   instead of recomputing. Auto-generated for $(b,analyze) \
                   when $(b,--retries) is positive.")
  in
  let timeout =
    Arg.(value & opt (some float) None
         & info [ "timeout" ] ~docv:"SECONDS"
             ~doc:"Give up on the connect handshake or on waiting for the \
                   response after $(docv) seconds, with a structured error \
                   and exit 2, instead of blocking forever. Timeouts are \
                   never retried.")
  in
  let retries =
    Arg.(value & opt int 0
         & info [ "retries" ] ~docv:"N"
             ~doc:"Retry budget for this request: reconnect-and-resend on a \
                   broken socket and re-submit after $(i,retry_after) on \
                   retryable rejections (saturated, quota_exceeded, \
                   shutting_down, worker_lost), with capped exponential \
                   backoff. Default $(b,0): fail fast.")
  in
  let horizon =
    Arg.(value & opt (some float) None
         & info [ "horizon"; "t" ] ~docv:"HOURS" ~doc:"Analysis horizon.")
  in
  let cutoff =
    Arg.(value & opt (some float) None
         & info [ "cutoff"; "c" ] ~docv:"P" ~doc:"Generation cutoff.")
  in
  let engine =
    Arg.(value & opt (some string) None
         & info [ "engine" ] ~docv:"ENGINE"
             ~doc:"Cutset engine: mocus, mocus-aggressive, bdd, zdd or auto.")
  in
  let domains =
    Arg.(value & opt (some int) None
         & info [ "domains"; "j" ] ~docv:"N"
             ~doc:"Requested solver domains (server clamps).")
  in
  let deadline =
    Arg.(value & opt (some float) None
         & info [ "deadline" ] ~docv:"SECONDS" ~doc:"Per-request guard deadline.")
  in
  let mem_limit =
    Arg.(value & opt (some int) None
         & info [ "mem-limit-mb" ] ~docv:"MB" ~doc:"Per-request heap ceiling.")
  in
  let max_order =
    Arg.(value & opt (some int) None
         & info [ "max-order" ] ~docv:"K" ~doc:"Cutset order bound.")
  in
  let failpoints =
    Arg.(value & opt (some string) None
         & info [ "failpoints" ] ~docv:"SPEC"
             ~doc:"Fault-injection spec armed on this request's private \
                   registry only (SDFT_FAILPOINTS syntax).")
  in
  let verbose =
    Arg.(value & flag
         & info [ "verbose" ]
             ~doc:"Ask for the nondeterministic timing/cache section in \
                   the response.")
  in
  let raw =
    Arg.(value & opt (some string) None
         & info [ "raw" ] ~docv:"LINE"
             ~doc:"Send $(docv) verbatim as the request frame (overrides \
                   every other request option).")
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:"Send one request to a running $(b,sdft serve) daemon and \
             print the response line (exit 0 on ok, 1 on a structured \
             error, 2 on transport trouble).")
    Term.(const run $ connect $ op $ file $ id $ client_name $ idem
          $ timeout $ retries $ horizon $ cutoff $ engine $ domains
          $ deadline $ mem_limit $ max_order $ failpoints $ verbose $ raw)

let main_cmd =
  let info =
    Cmd.info "sdft" ~version:"1.0.0"
      ~doc:"Scalable analysis of fault trees with dynamic features (SD fault trees)"
  in
  Cmd.group info
    [
      analyze_cmd;
      explain_cmd;
      sweep_cmd;
      mcs_cmd;
      classify_cmd;
      simulate_cmd;
      exact_cmd;
      translate_cmd;
      importance_cmd;
      uncertainty_cmd;
      availability_cmd;
      sequences_cmd;
      convert_cmd;
      sensitivity_cmd;
      dot_cmd;
      gen_cmd;
      serve_cmd;
      client_cmd;
    ]

(* [~catch:false] so our exceptions reach this handler instead of cmdliner's
   generic backtrace printer: [Exit_code] carries the intended exit status
   (2 = bad input, 1 = analysis verdict), and the named input-error
   exceptions become one-line diagnostics with exit 2. *)
let () =
  let code =
    try Cmd.eval ~catch:false main_cmd with
    | Exit_code n -> n
    | Sdft_format.Error m | Open_psa.Error m | Sys_error m | Failure m ->
      Printf.eprintf "sdft: %s\n" m;
      2
  in
  (* Fold cmdliner's own usage-error code into the input-error convention:
     2 = bad input (files, models, flags), 1 = analysis verdict. *)
  let code = if code = Cmd.Exit.cli_error then 2 else code in
  exit code

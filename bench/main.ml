(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section VI) on the bundled models, plus validation tables and
   bechamel micro-benchmarks.

   Usage:
     dune exec bench/main.exe                 -- everything, scaled models
     dune exec bench/main.exe -- --full       -- paper-scale industrial models
     dune exec bench/main.exe -- e2 e6        -- selected experiments only
     dune exec bench/main.exe -- --no-micro   -- skip the bechamel pass

   Experiment ids (see DESIGN.md):
     e1 running example   e2 BWR repairs+triggers   e3 model parameters
     e4 dynamization sweep  e5 Figure 2 histograms  e6 Figure 3 per-MCS cost
     e7 phases table        e8 horizon table        v1 validation
     a1 cutoff ablation     a2 relevant-set ablation a3 CCF ablation
     u1 parameter uncertainty *)

module Table = Sdft_util.Table
module Timer = Sdft_util.Timer

let scaled_model_1 () = Industrial.generate Industrial.small

let scaled_model_2 () = Industrial.generate Industrial.medium

let full_scale = ref false

let model_1 () =
  if !full_scale then Industrial.generate Industrial.model_1
  else scaled_model_1 ()

let model_2 () =
  if !full_scale then Industrial.generate Industrial.model_2
  else scaled_model_2 ()

let bdd_options =
  { Sdft_analysis.default_options with engine = Sdft_analysis.Bdd_engine }

(* ------------------------------------------------------------------ *)
(* E1: the running example (Section II, Examples 1-8). *)

let e1_running_example () =
  let tree = Pumps.static_tree () in
  let t = Table.create ~title:"E1: running example (paper Examples 1-8)"
      ~columns:[ "quantity"; "paper"; "ours" ] in
  let a = Option.get (Fault_tree.basic_index tree "a") in
  let d = Option.get (Fault_tree.basic_index tree "d") in
  let p_ad =
    Fault_tree.scenario_probability tree (Sdft_util.Int_set.of_list [ a; d ])
  in
  Table.add_row t [ "p({a,d})"; "2.988e-06"; Table.cell_sci p_ad ];
  let mcs = Mocus.minimal_cutsets tree in
  Table.add_row t [ "# minimal cutsets"; "5"; string_of_int (List.length mcs) ];
  let bdd = Minsol.fault_tree_cutsets tree in
  Table.add_row t
    [ "MOCUS = BDD engine"; "-"; string_of_bool (List.length bdd = List.length mcs) ];
  Table.add_row t
    [ "rare-event approx"; "-"; Table.cell_sci (Cutset.rare_event_approximation tree mcs) ];
  Table.print t

(* ------------------------------------------------------------------ *)
(* E2: BWR — repairs and cumulative triggers (Section VI-A table). *)

let e2_bwr () =
  let tree = Bwr.static_tree () in
  let static_rea, n_mcs = Sdft_analysis.static_rare_event tree in
  Printf.printf
    "BWR model: %d basic events, %d gates, %d minimal cutsets above 1e-15\n"
    (Fault_tree.n_basics tree) (Fault_tree.n_gates tree) n_mcs;
  let t =
    Table.create ~title:"E2: BWR failure frequency (24h, k=1) — cf. Sec. VI-A"
      ~columns:[ "setting"; "failure freq."; "analysis time" ]
  in
  Table.add_row t [ "no timing"; Table.cell_sci static_rea; "-" ];
  let row label config =
    let result, seconds =
      Timer.time (fun () -> Sdft_analysis.analyze (Bwr.build config))
    in
    Table.add_row t
      [ label; Table.cell_sci result.Sdft_analysis.total; Table.cell_duration seconds ];
    result
  in
  let _ = row "dynamic, no repairs" Bwr.default_config in
  let _ = row "repair rate 1/100h" { Bwr.default_config with repair_rate = Some 0.01 } in
  let _ = row "repair rate 1/10h" { Bwr.default_config with repair_rate = Some 0.1 } in
  let base = { Bwr.default_config with repair_rate = Some 0.1 } in
  let labels =
    [ "+FEED&BLEED trigger"; "+RHR trigger"; "+EFW trigger"; "+ECC trigger";
      "+SWS trigger"; "+CCW trigger" ]
  in
  let last = ref None in
  List.iteri
    (fun i label ->
      let triggers = List.filteri (fun j _ -> j <= i) Bwr.all_trigger_sites in
      last := Some (row label { base with triggers }))
    labels;
  Table.print t;
  match !last with
  | Some result ->
    Printf.printf
      "fully dynamic: %d of %d cutsets analysed dynamically; %.2f dynamic \
       events per dynamic cutset on average, of which %.2f added by \
       triggering logic\n"
      result.Sdft_analysis.n_dynamic_cutsets result.Sdft_analysis.n_cutsets
      (let h = Sdft_analysis.dynamic_histogram result in
       let num = ref 0 and acc = ref 0 in
       List.iter
         (fun (b, c) ->
           if b > 0 then begin
             num := !num + c;
             acc := !acc + (b * c)
           end)
         (Sdft_util.Histogram.buckets h);
       if !num = 0 then 0.0 else float_of_int !acc /. float_of_int !num)
      (Sdft_analysis.mean_added_dynamic result)
  | None -> ()

(* ------------------------------------------------------------------ *)
(* E3: industrial model parameters (Section VI-B first table), with the
   cutset-engine comparison substituting for RiskSpectrum timings. *)

let e3_models () =
  let t =
    Table.create
      ~title:"E3: industrial models — cutset generation (cf. Sec. VI-B)"
      ~columns:[ "model"; "engine"; "# BE"; "# gates"; "# MCS"; "generation time" ]
  in
  let run name tree engine engine_name =
    let result, seconds =
      Timer.time (fun () -> Sdft_analysis.generate_cutsets ~cutoff:1e-15 engine tree)
    in
    Table.add_row t
      [
        name;
        engine_name;
        string_of_int (Fault_tree.n_basics tree);
        string_of_int (Fault_tree.n_gates tree);
        string_of_int (List.length result.Mocus.cutsets);
        Table.cell_duration seconds;
      ]
  in
  let m1 = model_1 () and m2 = model_2 () in
  run "model 1" m1 Sdft_analysis.Bdd_engine "BDD/ZDD";
  run "model 1" m1 Sdft_analysis.Mocus_aggressive "MOCUS (gate bounds)";
  if not !full_scale then run "model 1" m1 Sdft_analysis.Mocus_sound "MOCUS (sound)";
  run "model 2" m2 Sdft_analysis.Bdd_engine "BDD/ZDD";
  run "model 2" m2 Sdft_analysis.Mocus_aggressive "MOCUS (gate bounds)";
  Table.print t;
  print_endline
    "(the sound basics-only MOCUS reproduces the hours-scale generation times\n\
    \ the paper reports for the commercial solver; it is skipped at full scale)"

(* ------------------------------------------------------------------ *)
(* E4 + E5: dynamization sweep on model 1 (Section VI-B sweep table) and
   the Figure 2 histograms of dynamic events per cutset. *)

let sweep_percentages = [ 10; 20; 30; 40; 50; 100 ]

let e4_sweep_and_histograms ~histograms () =
  let tree = model_1 () in
  let chain_groups = Industrial.run_event_groups tree in
  let t =
    Table.create ~title:"E4: failure frequency vs share of dynamic events (24h, k=1)"
      ~columns:[ "% dyn. BE"; "% trigg. BE"; "failure freq."; "# MCS"; "dyn. MCS"; "time" ]
  in
  let static_rea, n_static =
    Sdft_analysis.static_rare_event ~engine:Sdft_analysis.Bdd_engine tree
  in
  Table.add_row t
    [ "0"; "0"; Table.cell_sci static_rea; string_of_int n_static; "0"; "-" ];
  let results =
    List.map
      (fun percent ->
        let config =
          {
            Dynamize.default_config with
            dynamic_fraction = float_of_int percent /. 100.0;
            trigger_fraction = float_of_int percent /. 1000.0;
            repair_rate = Some 0.05;
            chain_groups = Some chain_groups;
          }
        in
        let d = Dynamize.run ~config tree in
        let result, seconds =
          Timer.time (fun () -> Sdft_analysis.analyze ~options:bdd_options d.Dynamize.sd)
        in
        Table.add_row t
          [
            string_of_int percent;
            Printf.sprintf "%.1f" (float_of_int percent /. 10.0);
            Table.cell_sci result.Sdft_analysis.total;
            string_of_int result.Sdft_analysis.n_cutsets;
            string_of_int result.Sdft_analysis.n_dynamic_cutsets;
            Table.cell_duration seconds;
          ];
        (percent, result))
      sweep_percentages
  in
  Table.print t;
  if histograms then begin
    print_endline
      "\nE5 (Figure 2): dynamic basic events per minimal cutset, per setting";
    List.iter
      (fun (percent, result) ->
        Sdft_util.Histogram.print_ascii
          ~label:(Printf.sprintf "-- %d%% dynamic --" percent)
          (Sdft_analysis.dynamic_histogram result))
      results
  end

(* ------------------------------------------------------------------ *)
(* E6: Figure 3 — time to solve one cutset's Markov model as a function of
   the number of dynamic events in it and the number of phases. *)

let e6_per_mcs_cost () =
  let t =
    Table.create
      ~title:
        "E6 (Figure 3): per-cutset Markov solve time (chain states | time)"
      ~columns:[ "# dyn events"; "k=1"; "k=2"; "k=3" ]
  in
  let cell n_dyn phases =
    (* A cutset of n dynamic Erlang-k events: top = AND over all of them. *)
    let b = Fault_tree.Builder.create () in
    let leaves =
      List.init n_dyn (fun i ->
          Fault_tree.Builder.basic b (Printf.sprintf "x%d" i))
    in
    let top = Fault_tree.Builder.gate b "top" Fault_tree.And leaves in
    let tree = Fault_tree.Builder.build b ~top in
    let sd =
      Sdft.make tree
        ~dynamic:
          (List.init n_dyn (fun i ->
               ( Printf.sprintf "x%d" i,
                 Dbe.erlang ~phases ~lambda:1e-3 ~mu:0.05 () )))
        ~triggers:[]
    in
    let cutset =
      Sdft_util.Int_set.of_list (List.init n_dyn Fun.id)
    in
    let model = Cutset_model.build sd cutset in
    (* One warm-up, then measure a few repetitions for a stable number. *)
    let _ = Cutset_model.quantify model ~horizon:24.0 in
    let reps = 5 in
    let t0 = Timer.start () in
    let states = ref 0 in
    for _ = 1 to reps do
      let q = Cutset_model.quantify model ~horizon:24.0 in
      states := q.Cutset_model.product_states
    done;
    let seconds = Timer.elapsed_s t0 /. float_of_int reps in
    Printf.sprintf "%d | %.4fs" !states seconds
  in
  List.iter
    (fun n_dyn ->
      Table.add_row t
        [ string_of_int n_dyn; cell n_dyn 1; cell n_dyn 2; cell n_dyn 3 ])
    [ 1; 2; 3; 4; 5; 6 ];
  Table.print t;
  print_endline
    "(chain size is (k+1)^n for n events with k phases: exponential in n\n\
    \ with base growing in k, hence the paper's log-scale growth)"

(* ------------------------------------------------------------------ *)
(* E7: phases table — total analysis time for k = 1, 2, 3. *)

let e7_phases () =
  let t =
    Table.create
      ~title:"E7: quantification cost vs phases k (24h; cells: dyn. MCS | time)"
      ~columns:[ "model"; "k=1"; "k=2"; "k=3" ]
  in
  (* Rates are calibrated so that every event's mission-window failure
     probability is independent of k (Dynamize.Mission_probability):
     otherwise preserving the MTTF makes Erlang failures vanish within the
     mission for rare events and the cutoff empties the cutset list. With
     the probability fixed, k changes only the chain sizes — the paper's
     (k+1)^n effect. *)
  let row name tree fraction =
    let chain_groups = Industrial.run_event_groups tree in
    let cells =
      List.map
        (fun phases ->
          let config =
            {
              Dynamize.default_config with
              dynamic_fraction = fraction;
              trigger_fraction = fraction /. 10.0;
              phases;
              repair_rate = Some 0.05;
              chain_groups = Some chain_groups;
              calibration = Dynamize.Mission_probability;
            }
          in
          let d = Dynamize.run ~config tree in
          let result, seconds =
            Timer.time (fun () ->
                Sdft_analysis.analyze ~options:bdd_options d.Dynamize.sd)
          in
          Printf.sprintf "%d | %s" result.Sdft_analysis.n_dynamic_cutsets
            (Table.cell_duration seconds))
        [ 1; 2; 3 ]
    in
    Table.add_row t (name :: cells)
  in
  row "model 1" (model_1 ()) 1.0;
  row "model 2" (model_2 ()) 0.5;
  Table.print t

(* ------------------------------------------------------------------ *)
(* E8: horizon table on model 2. *)

let e8_horizon () =
  let tree = model_2 () in
  let config =
    {
      Dynamize.default_config with
      dynamic_fraction = 0.3;
      trigger_fraction = 0.03;
      repair_rate = Some 0.05;
      chain_groups = Some (Industrial.run_event_groups tree);
    }
  in
  let d = Dynamize.run ~config tree in
  let t =
    Table.create ~title:"E8: failure frequency and time vs horizon (model 2)"
      ~columns:[ "horizon"; "failure freq."; "analysis time"; "cache h/m" ]
  in
  let option_sets =
    List.map (fun horizon -> { bdd_options with horizon }) [ 24.0; 48.0; 72.0; 96.0 ]
  in
  let points, _cache = Sdft_analysis.sweep d.Dynamize.sd option_sets in
  List.iter
    (fun (p : Sdft_analysis.sweep_point) ->
      Table.add_row t
        [
          Printf.sprintf "%.0fh" p.Sdft_analysis.sweep_options.Sdft_analysis.horizon;
          Table.cell_sci p.Sdft_analysis.sweep_result.Sdft_analysis.total;
          Table.cell_duration
            (p.Sdft_analysis.sweep_result.Sdft_analysis.mcs_generation_seconds
            +. p.Sdft_analysis.sweep_result.Sdft_analysis.quantification_seconds);
          Printf.sprintf "%d/%d" p.Sdft_analysis.cache_hits
            p.Sdft_analysis.cache_misses;
        ])
    points;
  Table.print t;
  print_endline
    "(points share one quantification cache: identical cutset sub-models are\n\
    \ solved once per horizon, repeated component models once overall)"

(* ------------------------------------------------------------------ *)
(* V1: validation — analytic pipeline vs exact product chain vs
   Monte-Carlo on models where all three are feasible. *)

let v1_validation () =
  let t =
    Table.create ~title:"V1: cross-validation of the three engines"
      ~columns:[ "model"; "REA (analysis)"; "exact product"; "Monte-Carlo (95% CI)" ]
  in
  let row name sd horizon trials =
    let options = { Sdft_analysis.default_options with horizon } in
    let r = Sdft_analysis.analyze ~options sd in
    let exact = Sdft_product.solve sd ~horizon in
    let mc = Simulator.unreliability sd ~horizon ~trials in
    let lo, hi = Simulator.confidence_95 mc in
    Table.add_row t
      [
        name;
        Table.cell_sci r.Sdft_analysis.total;
        Table.cell_sci exact;
        Printf.sprintf "[%s, %s]" (Table.cell_sci lo) (Table.cell_sci hi);
      ]
  in
  row "pumps (paper)" (Pumps.sd_tree ()) 24.0 400_000;
  let rng = Sdft_util.Rng.create 2024 in
  row "random SDFT #1"
    (Random_tree.sd rng ~max_prob:0.2 ~n_basics:5 ~n_gates:4 ~n_dynamic:2 ~n_triggers:1)
    8.0 100_000;
  row "random SDFT #2"
    (Random_tree.sd rng ~max_prob:0.2 ~n_basics:6 ~n_gates:5 ~n_dynamic:3 ~n_triggers:2)
    8.0 100_000;
  Table.print t;
  print_endline
    "(the rare-event approximation upper-bounds the exact value — it can\n\
    \ exceed 1 when events are not rare; the CI should cover the exact value)"

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one Test per reproduced table, measuring the
   table's characteristic kernel. *)

let micro_tests () =
  let open Bechamel in
  let pumps_tree = Pumps.static_tree () in
  let pumps_sd = Pumps.sd_tree () in
  let small_tree = scaled_model_1 () in
  let bd = Option.get (Fault_tree.basic_index pumps_tree "b") in
  let dd = Option.get (Fault_tree.basic_index pumps_tree "d") in
  let cutset_bd = Sdft_util.Int_set.of_list [ bd; dd ] in
  let chain = Ctmc.make ~n_states:2 ~transitions:[ (0, 1, 0.01); (1, 0, 0.5) ] in
  [
    Test.make ~name:"e1/mocus-pumps"
      (Staged.stage (fun () -> Mocus.minimal_cutsets pumps_tree));
    Test.make ~name:"e2/analyze-pumps"
      (Staged.stage (fun () -> Sdft_analysis.analyze pumps_sd));
    Test.make ~name:"e3/bdd-cutsets-small-industrial"
      (Staged.stage (fun () ->
           Minsol.fault_tree_cutsets_above small_tree ~cutoff:1e-15));
    Test.make ~name:"e4/translate-pumps"
      (Staged.stage (fun () -> Sdft_translate.translate pumps_sd ~horizon:24.0));
    Test.make ~name:"e6/quantify-cutset-bd"
      (Staged.stage (fun () ->
           let m = Cutset_model.build pumps_sd cutset_bd in
           Cutset_model.quantify m ~horizon:24.0));
    Test.make ~name:"e8/transient-2state"
      (Staged.stage (fun () ->
           Transient.reach_within chain ~init:[ (0, 1.0) ]
             ~target:(fun s -> s = 1)
             ~t:24.0));
  ]

let run_micro () =
  let open Bechamel in
  print_endline "\n== micro-benchmarks (bechamel, ns per run) ==";
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
  let grouped = Test.make_grouped ~name:"sdft" (micro_tests ()) in
  let raw = Benchmark.all cfg [ instance ] grouped in
  let results = Analyze.all ols instance raw in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  List.iter
    (fun (name, ols_result) ->
      match Analyze.OLS.estimates ols_result with
      | Some [ ns ] -> Printf.printf "  %-40s %12.0f ns/run\n" name ns
      | Some _ | None -> Printf.printf "  %-40s (no estimate)\n" name)
    (List.sort compare rows)

(* ------------------------------------------------------------------ *)
(* A1: cutoff ablation — the paper's scalability rests on the cutoff. *)

let a1_cutoff () =
  let tree = model_1 () in
  let t =
    Table.create ~title:"A1: effect of the cutoff c* (scaled model 1, static)"
      ~columns:[ "cutoff"; "# MCS"; "REA"; "generation time" ]
  in
  List.iter
    (fun cutoff ->
      let result, seconds =
        Timer.time (fun () ->
            Sdft_analysis.generate_cutsets ~cutoff Sdft_analysis.Bdd_engine tree)
      in
      let relevant =
        List.filter
          (fun c -> Cutset.probability tree c > cutoff)
          result.Mocus.cutsets
      in
      Table.add_row t
        [
          (if cutoff = 0.0 then "0" else Printf.sprintf "%.0e" cutoff);
          string_of_int (List.length result.Mocus.cutsets);
          Table.cell_sci (Cutset.rare_event_approximation tree relevant);
          Table.cell_duration seconds;
        ])
    [ 1e-9; 1e-12; 1e-15; 1e-18; 0.0 ];
  Table.print t;
  print_endline
    "(looser cutoffs drop cutsets but barely move the frequency — the
    \ rare-event mass concentrates in the few most probable cutsets)"

(* ------------------------------------------------------------------ *)
(* A2: relevant-set rule ablation — quantifies the Section V-C caveat
   documented in DESIGN.md. *)

let a2_rel_rule () =
  let t =
    Table.create
      ~title:"A2: paper relevant sets vs exact general rule (BWR, all triggers)"
      ~columns:[ "rule"; "failure freq."; "mean chain states"; "time"; "fallbacks" ]
  in
  let sd =
    Bwr.build
      {
        Bwr.default_config with
        repair_rate = Some 0.1;
        triggers = Bwr.all_trigger_sites;
      }
  in
  List.iter
    (fun (label, rel_rule) ->
      (* A tight state bound so that blowing cutsets fall back quickly
         instead of exploring millions of states first. *)
      let options =
        { Sdft_analysis.default_options with rel_rule; max_product_states = 100_000 }
      in
      let result, seconds =
        Timer.time (fun () -> Sdft_analysis.analyze ~options sd)
      in
      let dynamic =
        List.filter
          (fun (i : Sdft_analysis.cutset_info) -> i.product_states > 0)
          result.Sdft_analysis.cutsets
      in
      let mean_states =
        if dynamic = [] then 0.0
        else
          float_of_int
            (List.fold_left (fun acc i -> acc + i.Sdft_analysis.product_states) 0 dynamic)
          /. float_of_int (List.length dynamic)
      in
      Table.add_row t
        [
          label;
          Table.cell_sci result.Sdft_analysis.total;
          Printf.sprintf "%.1f" mean_states;
          Table.cell_duration seconds;
          string_of_int result.Sdft_analysis.n_fallbacks;
        ])
    [ ("paper (Sec. V-C)", Cutset_model.Paper); ("all events (exact)", Cutset_model.All_events) ];
  Table.print t;
  print_endline
    "(fallbacks: cutsets whose exact-rule chains exceeded the state bound —
    \ the FEED&BLEED demand gate pulls ~15 Bernoulli guards into the product;
    \ they are quantified by their conservative static product instead.
    \ This blow-up is precisely why Section V-C reduces the relevant sets.)"

(* ------------------------------------------------------------------ *)
(* A3: common-cause failures — "usually dominate the result" (Sec. VI-A). *)

let a3_ccf () =
  let t =
    Table.create ~title:"A3: effect of common-cause failures (BWR)"
      ~columns:[ "model"; "static freq."; "dynamic freq. (repairs+triggers)" ]
  in
  let dynamic_cfg include_ccf =
    {
      Bwr.default_config with
      repair_rate = Some 0.1;
      triggers = Bwr.all_trigger_sites;
      include_ccf;
    }
  in
  List.iter
    (fun include_ccf ->
      let static_rea, _ =
        Sdft_analysis.static_rare_event (Bwr.static_tree ~include_ccf ())
      in
      let dyn = Sdft_analysis.analyze (Bwr.build (dynamic_cfg include_ccf)) in
      Table.add_row t
        [
          (if include_ccf then "with CCF" else "without CCF");
          Table.cell_sci static_rea;
          Table.cell_sci dyn.Sdft_analysis.total;
        ])
    [ false; true ];
  Table.print t;
  print_endline
    "(CCF events are static, so their contribution is untouched by repairs
    \ and triggers — with CCF the relative benefit of dynamics shrinks,
    \ which is why the paper disregards CCF in its dynamics experiment)"

(* ------------------------------------------------------------------ *)
(* U1: parameter uncertainty over the BWR cutset list. *)

let u1_uncertainty () =
  let tree = Bwr.static_tree () in
  let cutsets = Mocus.minimal_cutsets tree in
  let t =
    Table.create ~title:"U1: lognormal parameter uncertainty (BWR, static)"
      ~columns:[ "error factor"; "mean"; "5%"; "median"; "95%" ]
  in
  List.iter
    (fun error_factor ->
      let stats =
        Uncertainty.propagate ~samples:2000 tree cutsets
          ~spec:(fun _ -> Uncertainty.Lognormal { error_factor })
      in
      Table.add_row t
        [
          Printf.sprintf "%.0f" error_factor;
          Table.cell_sci stats.Uncertainty.mean;
          Table.cell_sci stats.Uncertainty.p05;
          Table.cell_sci stats.Uncertainty.median;
          Table.cell_sci stats.Uncertainty.p95;
        ])
    [ 2.0; 3.0; 5.0; 10.0 ];
  Table.print t;
  Printf.printf "point estimate: %s
"
    (Table.cell_sci (Cutset.rare_event_approximation tree cutsets))

(* ------------------------------------------------------------------ *)
(* Kernel benchmarks: the flat-kernel quantification path against the
   retained pre-CSR implementation (Reference). Three layers:
     - dtmc_step: one uniformization step on a product chain;
     - product build: packed mixed-radix exploration vs the array-keyed
       generic path;
     - end-to-end per-cutset quantification (product build + transient
       solve; the shared Cutset_model.build is excluded) over the BWR and
       scaled model-1 cutset lists, single domain.
   Results go to stdout and optionally to a JSON file (--json PATH). *)

let time_ns ?(warmup = 2) ~reps f =
  for _ = 1 to warmup do
    ignore (Sys.opaque_identity (f ()))
  done;
  let t0 = Timer.start () in
  for _ = 1 to reps do
    ignore (Sys.opaque_identity (f ()))
  done;
  Timer.elapsed_s t0 *. 1e9 /. float_of_int reps

(* n AND-ed Erlang-k events — the e6 per-cutset model family. *)
let erlang_cutset_sd ~n_dyn ~phases =
  let b = Fault_tree.Builder.create () in
  let leaves =
    List.init n_dyn (fun i -> Fault_tree.Builder.basic b (Printf.sprintf "x%d" i))
  in
  let top = Fault_tree.Builder.gate b "top" Fault_tree.And leaves in
  let tree = Fault_tree.Builder.build b ~top in
  Sdft.make tree
    ~dynamic:
      (List.init n_dyn (fun i ->
           (Printf.sprintf "x%d" i, Dbe.erlang ~phases ~lambda:1e-3 ~mu:0.05 ())))
    ~triggers:[]

(* The pre-PR quantification pipeline, reconstructed end to end from the
   public semantics API so the benchmark measures new-vs-old rather than
   new-vs-new: allocating gate evaluation per closure pass (no triggered
   shortcut, no reused buffer), array-keyed interning with a state copy per
   explored transition, a transitions list fed to the historical
   hashtable-merge chain builder, and the boxed-row solver with fresh
   vectors per call. *)
type baseline_built = {
  b_chain : Reference.t;
  b_init : (int * float) list;
  b_failed : bool array;
}

let baseline_build sd_c ~max_states =
  let sem = Sdft_product.semantics sd_c in
  let components = Sdft_product.sem_components sem in
  let tree = Sdft.tree sd_c in
  let slot_of_basic = Array.make (Fault_tree.n_basics tree) (-1) in
  Array.iteri
    (fun slot (c : Sdft_product.component) -> slot_of_basic.(c.basic) <- slot)
    components;
  let n_triggered =
    Array.fold_left
      (fun acc (c : Sdft_product.component) ->
        if c.trigger_gate >= 0 then acc + 1 else acc)
      0 components
  in
  let eval state =
    Fault_tree.eval_gates tree ~failed:(fun b ->
        let slot = slot_of_basic.(b) in
        slot >= 0 && components.(slot).Sdft_product.failed_local.(state.(slot)))
  in
  let close state =
    let changed = ref true in
    while !changed do
      changed := false;
      let gates = eval state in
      Array.iteri
        (fun slot (c : Sdft_product.component) ->
          if c.trigger_gate >= 0 then begin
            let on = c.mode_on.(state.(slot)) in
            if on <> gates.(c.trigger_gate) then begin
              state.(slot) <- c.partner.(state.(slot));
              changed := true
            end
          end)
        components
    done;
    ignore n_triggered
  in
  let fails_top state = (eval state).(Fault_tree.top tree) in
  let ids : (int array, int) Hashtbl.t = Hashtbl.create 1024 in
  let states = Sdft_util.Vec.create () in
  let failed_v = Sdft_util.Vec.create () in
  let frontier = Queue.create () in
  let intern state =
    match Hashtbl.find_opt ids state with
    | Some id -> id
    | None ->
      let id = Sdft_util.Vec.length states in
      if id >= max_states then raise (Sdft_product.Too_many_states id);
      Hashtbl.add ids state id;
      Sdft_util.Vec.push states state;
      Sdft_util.Vec.push failed_v (fails_top state);
      Queue.add id frontier;
      id
  in
  let init_mass : (int, float) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (state, m) ->
      let id = intern state in
      let prev = try Hashtbl.find init_mass id with Not_found -> 0.0 in
      Hashtbl.replace init_mass id (prev +. m))
    (Sdft_product.sem_initial_states sem ~max_states);
  let transitions = Sdft_util.Vec.create () in
  while not (Queue.is_empty frontier) do
    let src = Queue.pop frontier in
    let state = Sdft_util.Vec.get states src in
    Array.iteri
      (fun slot (c : Sdft_product.component) ->
        Array.iter
          (fun (dst_local, rate) ->
            let next = Array.copy state in
            next.(slot) <- dst_local;
            close next;
            let dst = intern next in
            if dst <> src then Sdft_util.Vec.push transitions (src, dst, rate))
          c.Sdft_product.rows.(state.(slot)))
      components
  done;
  let n_states = Sdft_util.Vec.length states in
  let chain =
    Reference.make ~n_states ~transitions:(Sdft_util.Vec.to_list transitions)
  in
  {
    b_chain = chain;
    b_init = Hashtbl.fold (fun id m acc -> (id, m) :: acc) init_mass [];
    b_failed = Sdft_util.Vec.to_array failed_v;
  }

let quantify_baseline sd_c ~horizon =
  let b = baseline_build sd_c ~max_states:1_000_000 in
  Reference.reach_within b.b_chain ~init:b.b_init
    ~target:(fun s -> b.b_failed.(s))
    ~t:horizon

let quantify_new ~workspace sd_c ~horizon =
  let built = Sdft_product.build sd_c in
  Sdft_product.unreliability ~workspace built ~horizon

(* Cutset models with a dynamic sub-model, for every cutset of [sd];
   shared-context build. *)
let cutset_models sd =
  let translation = Sdft_translate.translate sd ~horizon:24.0 in
  let generated =
    Sdft_analysis.generate_cutsets ~cutoff:1e-15 Sdft_analysis.Bdd_engine
      translation.Sdft_translate.static_tree
  in
  let context = Cutset_model.context sd in
  List.filter
    (fun m -> m.Cutset_model.model <> None)
    (List.map (Cutset_model.build ~context sd) generated.Mocus.cutsets)

(* Dynamic sub-models of every cutset of [sd]. *)
let cutset_submodels sd =
  List.filter_map (fun m -> m.Cutset_model.model) (cutset_models sd)

let bench_kernels ~json_path () =
  let t =
    Table.create ~title:"Kernel benchmarks: flat path vs pre-CSR reference"
      ~columns:[ "kernel"; "baseline ns/op"; "flat ns/op"; "speedup" ]
  in
  let results = ref [] in
  let record name baseline_ns new_ns =
    let speedup = baseline_ns /. new_ns in
    results := (name, baseline_ns, new_ns, speedup) :: !results;
    Table.add_row t
      [
        name;
        Printf.sprintf "%.0f" baseline_ns;
        Printf.sprintf "%.0f" new_ns;
        Printf.sprintf "%.2fx" speedup;
      ]
  in
  (* 1. Uniformization step on a 6-event Erlang-2 product chain (729
     states), the Figure-3 family's mid-size representative. *)
  let sd6 = erlang_cutset_sd ~n_dyn:6 ~phases:2 in
  let built6 = Sdft_product.build sd6 in
  let chain6 = built6.Sdft_product.chain in
  let ref6 = Reference.of_ctmc chain6 in
  let n6 = Ctmc.n_states chain6 in
  let q6 = Ctmc.max_exit_rate chain6 in
  let pi = Array.make n6 (1.0 /. float_of_int n6) in
  let out = Array.make n6 0.0 in
  Printf.printf "dtmc_step chain: %d states, %d transitions\n" n6
    (Ctmc.n_transitions chain6);
  let step_ref =
    time_ns ~warmup:50 ~reps:2000 (fun () -> Reference.dtmc_step ref6 q6 pi out)
  in
  let step_csr =
    time_ns ~warmup:50 ~reps:2000 (fun () -> Transient.dtmc_step chain6 q6 pi out)
  in
  record "dtmc_step (729 states)" step_ref step_csr;
  (* 2. Product-state exploration: packed vs the pre-PR build. *)
  let build_old =
    time_ns ~warmup:2 ~reps:10 (fun () -> baseline_build sd6 ~max_states:1_000_000)
  in
  let build_packed =
    time_ns ~warmup:2 ~reps:20 (fun () -> Sdft_product.build sd6)
  in
  record "product build (erlang-2 x6)" build_old build_packed;
  (* 3. End-to-end per-cutset quantification, single domain. *)
  let per_cutset name sd ~reps =
    let models = cutset_submodels sd in
    let n = List.length models in
    Printf.printf "%s: %d dynamic cutset sub-models\n%!" name n;
    let ws = Transient.workspace () in
    let horizon = 24.0 in
    (* Sanity: the reconstructed pre-PR pipeline and the flat path must
       agree, or the comparison is meaningless. *)
    List.iteri
      (fun i m ->
        if i < 25 then begin
          let a = quantify_baseline m ~horizon in
          let b = quantify_new ~workspace:ws m ~horizon in
          if Float.abs (a -. b) > 1e-12 then
            failwith
              (Printf.sprintf "%s: baseline %.17g <> flat %.17g" name a b)
        end)
      models;
    let baseline_ns =
      time_ns ~warmup:1 ~reps (fun () ->
          List.iter (fun m -> ignore (quantify_baseline m ~horizon)) models)
    in
    let new_ns =
      time_ns ~warmup:1 ~reps (fun () ->
          List.iter (fun m -> ignore (quantify_new ~workspace:ws m ~horizon)) models)
    in
    record
      (Printf.sprintf "quantify/cutset (%s)" name)
      (baseline_ns /. float_of_int n)
      (new_ns /. float_of_int n)
  in
  let bwr =
    Bwr.build
      { Bwr.default_config with repair_rate = Some 0.1; triggers = Bwr.all_trigger_sites }
  in
  per_cutset "bwr" bwr ~reps:3;
  let m1 =
    let tree = scaled_model_1 () in
    let config =
      {
        Dynamize.default_config with
        dynamic_fraction = 0.3;
        trigger_fraction = 0.03;
        repair_rate = Some 0.05;
        chain_groups = Some (Industrial.run_event_groups tree);
      }
    in
    (Dynamize.run ~config tree).Dynamize.sd
  in
  per_cutset "model-1" m1 ~reps:2;
  (* 4. Cache-key construction per lookup: the pre-PR cost (the full
     canonical fingerprint re-serialized on every lookup) against the
     digest memoized on the cutset model. The memo is warmed first — the
     steady state is what a sweep pays per lookup. *)
  let models = cutset_models bwr in
  let n_models = List.length models in
  let key_old () =
    List.iter
      (fun m ->
        match m.Cutset_model.model with
        | Some sd_c ->
          ignore
            (Sys.opaque_identity
               (Printf.sprintf "%s|e=%h|s=%d|t=%h"
                  (Quant_cache.fingerprint sd_c)
                  1e-12 1_000_000 24.0))
        | None -> ())
      models
  in
  let key_new () =
    List.iter
      (fun m ->
        ignore
          (Sys.opaque_identity
             (Quant_cache.key_of ~epsilon:1e-12 ~max_states:1_000_000
                ~horizon:24.0 m)))
      models
  in
  key_new ();
  let key_old_ns = time_ns ~warmup:5 ~reps:50 key_old in
  let key_new_ns = time_ns ~warmup:5 ~reps:50 key_new in
  record "cache key (bwr, per lookup)"
    (key_old_ns /. float_of_int n_models)
    (key_new_ns /. float_of_int n_models);
  Table.print t;
  match json_path with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    output_string oc "{\n";
    let entries = List.rev !results in
    List.iteri
      (fun i (name, baseline_ns, new_ns, speedup) ->
        Printf.fprintf oc
          "  %S: {\"baseline_ns_per_op\": %.1f, \"flat_ns_per_op\": %.1f, \
           \"speedup\": %.3f}%s\n"
          name baseline_ns new_ns speedup
          (if i = List.length entries - 1 then "" else ","))
      entries;
    output_string oc "}\n";
    close_out oc;
    Printf.printf "kernel benchmark results written to %s\n" path

(* ------------------------------------------------------------------ *)
(* `sim` subcommand: the rare-event importance-sampling oracle against
   crude Monte-Carlo on pumps and BWR — estimates, 99% confidence
   intervals, throughput, and the variance-reduction factor (the headline
   number: how many crude trials one IS trial is worth). *)

let bench_sim ~json_path ~trials () =
  let t =
    Table.create ~title:"sim: importance sampling vs crude Monte-Carlo"
      ~columns:
        [ "model"; "method"; "estimate"; "99% CI"; "hits"; "trials/s"; "VRF" ]
  in
  let entries = ref [] in
  let case name sd =
    let horizon = Sdft_analysis.default_options.Sdft_analysis.horizon in
    let analytic = (Sdft_analysis.analyze sd).Sdft_analysis.total in
    let run_method meth options =
      let t0 = Timer.start () in
      let e = Rare_event.run ~options sd ~horizon in
      let secs = Timer.elapsed_s t0 in
      let lo, hi = Rare_event.confidence ~z:Rare_event.z99 e in
      let tps = float_of_int e.Rare_event.trials /. secs in
      let vrf = Rare_event.variance_reduction e in
      let contains = lo <= analytic && analytic <= hi in
      Table.add_row t
        [
          name;
          meth;
          Table.cell_sci e.Rare_event.estimate;
          Printf.sprintf "[%.2e, %.2e]" lo hi;
          string_of_int e.Rare_event.hits;
          Printf.sprintf "%.0f" tps;
          (match vrf with Some v -> Printf.sprintf "%.1fx" v | None -> "-");
        ];
      entries :=
        Printf.sprintf
          "  {\"model\": %S, \"method\": %S, \"trials\": %d, \"hits\": %d, \
           \"estimate\": %.6e, \"ci99_lower\": %.6e, \"ci99_upper\": %.6e, \
           \"analytic_total\": %.6e, \"contains_analytic\": %b, \
           \"trials_per_sec\": %.1f, \"variance_reduction\": %s}"
          name meth e.Rare_event.trials e.Rare_event.hits
          e.Rare_event.estimate lo hi analytic contains tps
          (match vrf with
          | Some v -> Printf.sprintf "%.2f" v
          | None -> "null")
        :: !entries
    in
    let opts = { Rare_event.default_options with trials } in
    run_method "crude" (Rare_event.crude opts);
    run_method "is" opts
  in
  case "pumps" (Pumps.sd_tree ());
  case "bwr"
    (Bwr.build
       {
         Bwr.default_config with
         repair_rate = Some 0.1;
         triggers = Bwr.all_trigger_sites;
       });
  Table.print t;
  match json_path with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    output_string oc "[\n";
    output_string oc (String.concat ",\n" (List.rev !entries));
    output_string oc "\n]\n";
    close_out oc;
    Printf.printf "sim benchmark results written to %s\n" path

let sim_main args =
  let json_path = ref None in
  let trials = ref 100_000 in
  let rec parse = function
    | [] -> ()
    | "--json" :: path :: rest ->
      json_path := Some path;
      parse rest
    | [ "--json" ] ->
      prerr_endline "sim: --json needs a file argument";
      exit 2
    | "--trials" :: n :: rest -> (
      match int_of_string_opt n with
      | Some n when n > 0 ->
        trials := n;
        parse rest
      | _ ->
        prerr_endline "sim: --trials needs a positive integer";
        exit 2)
    | [ "--trials" ] ->
      prerr_endline "sim: --trials needs an integer argument";
      exit 2
    | other :: _ ->
      Printf.eprintf "sim: unknown argument %S\n" other;
      exit 2
  in
  parse args;
  bench_sim ~json_path:!json_path ~trials:!trials ()

(* ------------------------------------------------------------------ *)
(* `zdd` subcommand: race the MOCUS and modular-ZDD cutset engines on
   static models — generation wall time, emitted families, rare-event
   totals, and the discarded-mass accounting (MOCUS's upper bound vs the
   ZDD engine's exact residual). The subsumed-branch case is the
   certification scenario: MOCUS records nonzero pruned mass while the ZDD
   engine emits every minimal cutset and accounts exactly zero residual. *)

let bench_zdd ~json_path () =
  let t =
    Table.create ~title:"zdd: cutset engine race — MOCUS vs modular ZDD"
      ~columns:
        [
          "model"; "cutoff"; "mocus"; "zdd"; "speedup"; "cutsets";
          "|dtotal|"; "mocus pruned"; "zdd residual";
        ]
  in
  let entries = ref [] in
  let case name ~cutoff tree =
    let t0 = Timer.start () in
    let gm =
      Sdft_analysis.generate_cutsets ~cutoff Sdft_analysis.Mocus_sound tree
    in
    let tm = Timer.elapsed_s t0 in
    let t0 = Timer.start () in
    let rz = Zdd_engine.run ~cutoff tree in
    let tz = Timer.elapsed_s t0 in
    let total sets = Cutset.rare_event_approximation tree sets in
    let total_m = total gm.Mocus.cutsets in
    let total_z = total rz.Zdd_engine.cutsets in
    let diff = Float.abs (total_m -. total_z) in
    let same_family =
      List.sort Sdft_util.Int_set.compare gm.Mocus.cutsets
      = rz.Zdd_engine.cutsets
    in
    Table.add_row t
      [
        name;
        Printf.sprintf "%.0e" cutoff;
        Table.cell_duration tm;
        Table.cell_duration tz;
        (if tz > 0.0 then Printf.sprintf "%.0fx" (tm /. tz) else "-");
        Printf.sprintf "%d/%d%s"
          (List.length gm.Mocus.cutsets)
          (List.length rz.Zdd_engine.cutsets)
          (if same_family then "" else " MISMATCH");
        Table.cell_sci diff;
        Table.cell_sci gm.Mocus.pruned_mass;
        Table.cell_sci rz.Zdd_engine.residual_mass;
      ];
    entries :=
      Printf.sprintf
        "  {\"model\": %S, \"cutoff\": %.6e, \"mocus_seconds\": %.6f, \
         \"zdd_seconds\": %.6f, \"mocus_cutsets\": %d, \"zdd_cutsets\": %d, \
         \"families_identical\": %b, \"mocus_total\": %.17e, \
         \"zdd_total\": %.17e, \"total_abs_diff\": %.6e, \
         \"mocus_pruned_mass\": %.17e, \"zdd_residual_mass\": %.17e, \
         \"zdd_n_minimal\": %d, \"zdd_n_modules\": %d, \
         \"zdd_max_zdd_nodes\": %d}"
        name cutoff tm tz
        (List.length gm.Mocus.cutsets)
        (List.length rz.Zdd_engine.cutsets)
        same_family total_m total_z diff gm.Mocus.pruned_mass
        rz.Zdd_engine.residual_mass rz.Zdd_engine.n_minimal
        rz.Zdd_engine.n_modules rz.Zdd_engine.max_zdd_nodes
      :: !entries
  in
  (* A branch MOCUS prunes that refines only into a non-minimal cutset:
     {x,y,z}'s partial product falls below the cutoff, so MOCUS books
     pruned mass, while the minimal family {x,y} is fully above it and the
     ZDD residual is exactly zero. *)
  let subsumed_branch () =
    let b = Fault_tree.Builder.create () in
    let basic name = Fault_tree.Builder.basic b ~prob:1e-6 name in
    let x = basic "x" and y = basic "y" and z = basic "z" in
    let and2 = Fault_tree.Builder.gate b "and2" Fault_tree.And [ x; y ] in
    let and3 = Fault_tree.Builder.gate b "and3" Fault_tree.And [ x; y; z ] in
    let top = Fault_tree.Builder.gate b "top" Fault_tree.Or [ and2; and3 ] in
    Fault_tree.Builder.build b ~top
  in
  case "pumps" ~cutoff:0.0 (Pumps.static_tree ());
  case "subsumed-branch" ~cutoff:1e-15 (subsumed_branch ());
  case "industrial-small" ~cutoff:1e-15 (Industrial.generate Industrial.small);
  if !full_scale then begin
    case "industrial-medium" ~cutoff:1e-15
      (Industrial.generate Industrial.medium);
    case "industrial-1" ~cutoff:1e-15 (Industrial.generate Industrial.model_1)
  end;
  Table.print t;
  match json_path with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    output_string oc "[\n";
    output_string oc (String.concat ",\n" (List.rev !entries));
    output_string oc "\n]\n";
    close_out oc;
    Printf.printf "zdd engine race results written to %s\n" path

let zdd_main args =
  let json_path = ref None in
  let rec parse = function
    | [] -> ()
    | "--json" :: path :: rest ->
      json_path := Some path;
      parse rest
    | [ "--json" ] ->
      prerr_endline "zdd: --json needs a file argument";
      exit 2
    | "--full" :: rest ->
      full_scale := true;
      parse rest
    | other :: _ ->
      Printf.eprintf "zdd: unknown argument %S\n" other;
      exit 2
  in
  parse args;
  bench_zdd ~json_path:!json_path ()

(* ------------------------------------------------------------------ *)
(* `cache` subcommand: cold-vs-warm persistent quantification cache. A
   horizon sweep runs twice against the same on-disk store — first against
   an empty file (every dynamic sub-model solves and is appended), then
   warm-started from it (every lookup should hit). Reported per model:
   quantification wall time of each pass, hit/miss traffic, the warm hit
   rate, and whether the certified intervals of the two passes are
   bit-identical (they must be — a hit replays the recorded solve). *)

let bench_cache ~json_path () =
  let t =
    Table.create ~title:"cache: cold vs warm persistent quantification cache"
      ~columns:
        [
          "model"; "phase"; "quant time"; "hits"; "misses"; "disk hits";
          "appends"; "speedup";
        ]
  in
  let entries = ref [] in
  let case name sd =
    (* BDD generation: the sweep re-generates cutsets at every point and
       generation is not what this benchmark measures — only the
       quantification phase is cached and timed. *)
    let horizons = [ 12.0; 24.0; 48.0; 72.0 ] in
    let option_sets =
      List.map (fun horizon -> { bdd_options with horizon }) horizons
    in
    let path = Filename.temp_file "sdft_cache_bench" ".store" in
    Sys.remove path;
    let run () =
      let cache = Quant_cache.open_disk path in
      let points, _ = Sdft_analysis.sweep ~cache sd option_sets in
      let quant_seconds =
        List.fold_left
          (fun acc (p : Sdft_analysis.sweep_point) ->
            acc
            +. p.Sdft_analysis.sweep_result
                 .Sdft_analysis.quantification_seconds)
          0.0 points
      in
      (* The certified-interval signature of the sweep; compared bitwise
         between the cold and warm passes. *)
      let signature =
        List.map
          (fun (p : Sdft_analysis.sweep_point) ->
            let r = p.Sdft_analysis.sweep_result in
            ( r.Sdft_analysis.total,
              r.Sdft_analysis.budget.Sdft_analysis.lower,
              r.Sdft_analysis.budget.Sdft_analysis.upper ))
          points
      in
      let hits = Quant_cache.hits cache and misses = Quant_cache.misses cache in
      let stats = Quant_cache.disk_stats cache in
      Quant_cache.close cache;
      (quant_seconds, signature, hits, misses, stats)
    in
    let cold_q, cold_sig, cold_h, cold_m, cold_ds = run () in
    let warm_q, warm_sig, warm_h, warm_m, warm_ds = run () in
    Sys.remove path;
    let speedup = cold_q /. Float.max warm_q 1e-9 in
    let identical = cold_sig = warm_sig in
    let hit_rate =
      if warm_h + warm_m = 0 then 1.0
      else float_of_int warm_h /. float_of_int (warm_h + warm_m)
    in
    let disk_hits ds =
      match ds with
      | Some s -> s.Quant_cache.disk_hits
      | None -> 0
    in
    let appends ds =
      match ds with Some s -> s.Quant_cache.appends | None -> 0
    in
    let row phase q h m ds sp =
      Table.add_row t
        [
          name; phase; Table.cell_duration q; string_of_int h;
          string_of_int m;
          string_of_int (disk_hits ds);
          string_of_int (appends ds);
          sp;
        ]
    in
    row "cold" cold_q cold_h cold_m cold_ds "-";
    row "warm" warm_q warm_h warm_m warm_ds
      (Printf.sprintf "%.1fx%s" speedup
         (if identical then "" else " INTERVAL MISMATCH"));
    entries :=
      Printf.sprintf
        "  {\"model\": %S, \"horizons\": %d, \"cold_quant_seconds\": %.6f, \
         \"warm_quant_seconds\": %.6f, \"speedup\": %.2f, \
         \"cold_hits\": %d, \"cold_misses\": %d, \"warm_hits\": %d, \
         \"warm_misses\": %d, \"warm_hit_rate\": %.4f, \
         \"warm_disk_hits\": %d, \"cold_appends\": %d, \
         \"entries_loaded_warm\": %d, \"intervals_identical\": %b}"
        name (List.length horizons) cold_q warm_q speedup cold_h cold_m
        warm_h warm_m hit_rate (disk_hits warm_ds) (appends cold_ds)
        (match warm_ds with
        | Some s -> s.Quant_cache.entries_loaded
        | None -> 0)
        identical
      :: !entries
  in
  case "bwr"
    (Bwr.build
       {
         Bwr.default_config with
         repair_rate = Some 0.1;
         triggers = Bwr.all_trigger_sites;
       });
  (* Dynamization tuned so the per-cutset transient solves dominate over
     (uncached) cutset-model construction — Erlang-4 chains make the
     product chains grow as (k+1)^n — which is exactly the work a warm
     store eliminates. *)
  let m1 =
    let tree = model_1 () in
    let config =
      {
        Dynamize.default_config with
        dynamic_fraction = 0.6;
        trigger_fraction = 0.06;
        phases = 4;
        repair_rate = Some 0.05;
        chain_groups = Some (Industrial.run_event_groups tree);
        calibration = Dynamize.Mission_probability;
      }
    in
    (Dynamize.run ~config tree).Dynamize.sd
  in
  case "model-1" m1;
  Table.print t;
  print_endline
    "(warm pass: every dynamic sub-model is served from the store; the\n\
    \ certified intervals must be bit-identical to the cold pass)";
  match json_path with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    output_string oc "[\n";
    output_string oc (String.concat ",\n" (List.rev !entries));
    output_string oc "\n]\n";
    close_out oc;
    Printf.printf "cache benchmark results written to %s\n" path

let cache_main args =
  let json_path = ref None in
  let rec parse = function
    | [] -> ()
    | "--json" :: path :: rest ->
      json_path := Some path;
      parse rest
    | [ "--json" ] ->
      prerr_endline "cache: --json needs a file argument";
      exit 2
    | "--full" :: rest ->
      full_scale := true;
      parse rest
    | other :: _ ->
      Printf.eprintf "cache: unknown argument %S\n" other;
      exit 2
  in
  parse args;
  bench_cache ~json_path:!json_path ()

(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("e1", e1_running_example);
    ("e2", e2_bwr);
    ("e3", e3_models);
    ("e4", e4_sweep_and_histograms ~histograms:false);
    ("e5", e4_sweep_and_histograms ~histograms:true);
    ("e6", e6_per_mcs_cost);
    ("e7", e7_phases);
    ("e8", e8_horizon);
    ("v1", v1_validation);
    ("a1", a1_cutoff);
    ("a2", a2_rel_rule);
    ("a3", a3_ccf);
    ("u1", u1_uncertainty);
  ]

let kernels_main args =
  let json_path = ref None in
  let metrics_path = ref None in
  let trace_path = ref None in
  let rec parse = function
    | [] -> ()
    | "--json" :: path :: rest ->
      json_path := Some path;
      parse rest
    | [ "--json" ] ->
      prerr_endline "kernels: --json needs a file argument";
      exit 2
    | "--metrics" :: path :: rest ->
      metrics_path := Some path;
      parse rest
    | [ "--metrics" ] ->
      prerr_endline "kernels: --metrics needs a file argument";
      exit 2
    | "--trace" :: path :: rest ->
      trace_path := Some path;
      parse rest
    | [ "--trace" ] ->
      prerr_endline "kernels: --trace needs a file argument";
      exit 2
    | other :: _ ->
      Printf.eprintf "kernels: unknown argument %S\n" other;
      exit 2
  in
  parse args;
  if !trace_path <> None then Sdft_util.Trace.set_enabled true;
  bench_kernels ~json_path:!json_path ();
  (match !metrics_path with
  | None -> ()
  | Some path ->
    (try Sdft_util.Metrics.write_file path
     with Sys_error m -> Printf.eprintf "kernels: %s\n" m);
    Printf.printf "metrics written to %s\n" path);
  match !trace_path with
  | None -> ()
  | Some path ->
    (try Sdft_util.Trace.write_file path
     with Sys_error m -> Printf.eprintf "kernels: %s\n" m);
    Printf.printf "trace written to %s\n" path

let () =
  let micro = ref true in
  let selected = ref [] in
  let metrics_file = ref None in
  let rec parse = function
    | [] -> ()
    | "kernels" :: rest ->
      kernels_main rest;
      exit 0
    | "sim" :: rest ->
      sim_main rest;
      exit 0
    | "zdd" :: rest ->
      zdd_main rest;
      exit 0
    | "cache" :: rest ->
      cache_main rest;
      exit 0
    | "--full" :: rest ->
      full_scale := true;
      parse rest
    | "--no-micro" :: rest ->
      micro := false;
      parse rest
    | "--metrics" :: path :: rest ->
      metrics_file := Some path;
      parse rest
    | [ "--metrics" ] ->
      prerr_endline "--metrics needs a file argument";
      exit 2
    | name :: rest when List.mem_assoc name experiments ->
      selected := name :: !selected;
      parse rest
    | other :: _ ->
      Printf.eprintf "unknown argument %S\n" other;
      exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let to_run =
    match List.rev !selected with
    | [] ->
      (* e5 subsumes e4 (same sweep, plus histograms). *)
      [ "e1"; "e2"; "e3"; "e5"; "e6"; "e7"; "e8"; "v1"; "a1"; "a2"; "a3"; "u1" ]
    | names -> names
  in
  List.iter
    (fun name ->
      print_newline ();
      (List.assoc name experiments) ())
    to_run;
  if !micro && !selected = [] then run_micro ();
  match !metrics_file with
  | None -> ()
  | Some path ->
    (try Sdft_util.Metrics.write_file path
     with Sys_error m ->
       Printf.eprintf "bench: %s\n" m;
       exit 1);
    Printf.printf "\nmetrics written to %s\n" path

(** Long-run (steady-state) unavailability of repairable SD fault trees.

    The paper's analysis computes mission {e unreliability} — the probability
    of failing at least once within a horizon. For repairable systems the
    complementary standard metric is the long-run {e unavailability}: the
    fraction of time the top gate spends failed. Over a minimal-cutset list
    this is approximated, exactly as in classical PSA practice, by the
    rare-event sum of the products of per-event steady-state
    unavailabilities. *)

val event_unavailability : Dbe.t -> float option
(** Long-run probability that the event is failed, computed on the part of
    its chain reachable from the switched-on initial distribution (for
    triggered events this is the "permanently demanded" worst case). [None]
    when that sub-chain is not irreducible — e.g. an unrepairable event,
    whose long-run unavailability is not meaningful. *)

type result = {
  unavailability : float;  (** rare-event approximation *)
  per_event : (int * float) list;  (** event index, steady-state q *)
  n_cutsets : int;
}

val analyze :
  ?cutoff:float -> ?engine:Sdft_analysis.engine -> ?guard:Sdft_util.Guard.t ->
  ?obs:Sdft_util.Obs.t -> Sdft.t -> result option
(** Minimal cutsets of the translated tree, quantified with steady-state
    unavailabilities: static events keep their probability (interpreted as
    an unavailability per demand), dynamic events use
    {!event_unavailability}. [None] if some dynamic event has no steady
    state (not repairable). [guard] bounds the cutset generation (see
    {!Sdft_analysis.generate_cutsets}); an interrupted MOCUS run sums the
    cutsets found before the limit. *)

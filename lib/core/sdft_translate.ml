type result = {
  static_tree : Fault_tree.t;
  worst_case : float array;
}

let translate ?epsilon ?obs sd ~horizon =
  let tree = Sdft.tree sd in
  let nb = Fault_tree.n_basics tree in
  let worst_case =
    Array.init nb (fun b ->
        if Sdft.is_dynamic sd b then
          (* Each per-event solve is tiny, but translation runs before the
             analysis' degradation ladder can contain anything. If a solve
             is interrupted anyway (memory pressure, injected fault), fall
             back to the trivial bound: worst-case probabilities are only
             ever used as upper bounds, so 1.0 stays sound — it merely
             prunes less. *)
          match
            Dbe.worst_case_failure_probability ?epsilon ?obs (Sdft.dbe sd b)
              ~horizon
          with
          | p -> p
          | exception (Out_of_memory | Sdft_util.Guard.Limit_hit _) -> 1.0
        else Fault_tree.prob tree b)
  in
  let builder = Fault_tree.Builder.create () in
  (* Basic events first, in index order, so indices are preserved. *)
  let basic_nodes =
    Array.init nb (fun b ->
        Fault_tree.Builder.basic builder ~prob:worst_case.(b)
          (Fault_tree.basic_name tree b))
  in
  let gate_memo = Array.make (Fault_tree.n_gates tree) None in
  let wrapper_memo = Array.make nb None in
  (* Mutual recursion across trigger edges terminates because the combined
     graph is acyclic (checked by Sdft.make). *)
  let rec translate_gate g =
    match gate_memo.(g) with
    | Some node -> node
    | None ->
      let inputs =
        Array.to_list (Array.map translate_node (Fault_tree.gate_inputs tree g))
      in
      let node =
        Fault_tree.Builder.gate builder
          (Fault_tree.gate_name tree g)
          (Fault_tree.gate_kind tree g)
          inputs
      in
      gate_memo.(g) <- Some node;
      node
  and translate_node = function
    | Fault_tree.G g -> translate_gate g
    | Fault_tree.B b -> (
      match Sdft.trigger_of sd b with
      | None -> basic_nodes.(b)
      | Some g -> (
        match wrapper_memo.(b) with
        | Some node -> node
        | None ->
          let trigger_node = translate_gate g in
          let node =
            Fault_tree.Builder.gate builder
              (Fault_tree.basic_name tree b ^ "@trig")
              Fault_tree.And
              [ basic_nodes.(b); trigger_node ]
          in
          wrapper_memo.(b) <- Some node;
          node))
  in
  let top = translate_gate (Fault_tree.top tree) in
  { static_tree = Fault_tree.Builder.build builder ~top; worst_case }

(** Dynamic basic events: (triggered) continuous-time Markov chains
    (Section III-A of the paper).

    A dynamic basic event describes how one piece of equipment degrades,
    fails and possibly gets repaired over time. An {e untriggered} event is a
    plain CTMC that runs from time zero. A {e triggered} event additionally
    partitions its states into switched-off states [S_off] and switched-on
    states [S_on] with total maps [on : S_off -> S_on] and
    [off : S_on -> S_off]; the event starts switched off, can be failed only
    while switched on ([F ⊆ S_on]), and is instantaneously switched on/off
    whenever its triggering gate fails/recovers. A broken component that is
    untriggered stops counting as failed but returns to its broken on-state
    when re-triggered. *)

type mode =
  | On
  | Off

type t

(** {1 Construction} *)

val make :
  n_states:int ->
  init:(int * float) list ->
  transitions:(int * int * float) list ->
  failed:int list ->
  ?switch:(mode array * int array) ->
  unit ->
  t
(** General constructor.

    [init] must sum to 1 (within 1e-9). [switch], when present, provides the
    mode of every state and a partner map sending every off-state to its
    on-state and every on-state to its off-state (a single array [partner]
    suffices because the maps go in opposite directions). Triggered events
    must start in off-states and fail only in on-states.

    @raise Invalid_argument when any of these conditions is violated. *)

val exponential : lambda:float -> ?mu:float -> unit -> t
(** Untriggered two-state event: fails with rate [lambda]; [mu] adds a
    repair transition back to the working state. *)

val erlang : phases:int -> lambda:float -> ?mu:float -> unit -> t
(** Untriggered Erlang-[phases] failure (Section VI: phase [i] moves to
    [i+1] with rate [phases * lambda], preserving the mean time to failure);
    phase [phases] is the failed state; [mu] repairs back to phase 0. *)

val triggered_erlang :
  phases:int ->
  lambda:float ->
  ?mu:float ->
  ?passive_factor:float ->
  ?repair_when_off:bool ->
  unit ->
  t
(** The paper's triggered model (Section VI): an off-copy and an on-copy of
    the Erlang chain. Off-phases degrade with rate
    [phases * lambda * passive_factor] (default factor [0.01], the paper's
    "100 times lower"; [0.] disables passive failures as in Example 2).
    Repair acts on the failed on-phase only — "the equipment cannot be
    repaired before it gets triggered" — unless [repair_when_off] is set
    (Example 2's spare pump). *)

val triggered_exponential :
  lambda:float ->
  ?mu:float ->
  ?passive_factor:float ->
  ?repair_when_off:bool ->
  unit ->
  t
(** [triggered_erlang ~phases:1]. *)

(** {1 Accessors} *)

val n_states : t -> int

val chain : t -> Ctmc.t

val init : t -> (int * float) list

val is_failed : t -> int -> bool

val is_triggered_model : t -> bool
(** Does the event carry on/off structure? *)

val mode_of : t -> int -> mode
(** [On] everywhere for untriggered events. *)

val switch_on : t -> int -> int
(** Image of an off-state under [on]. @raise Invalid_argument on on-states
    or untriggered events. *)

val switch_off : t -> int -> int
(** Image of an on-state under [off]. *)

val initial_on : t -> (int * float) list
(** The initial distribution shifted through [on] — the event as if
    triggered at time zero (identity for untriggered events). *)

(** {1 Analysis} *)

val worst_case_failure_probability :
  ?epsilon:float -> ?obs:Sdft_util.Obs.t -> t -> horizon:float -> float
(** The static probability assigned by the translation of Section V-B2: the
    probability that the event fails at least once within the horizon in the
    worst triggering pattern — triggered at time zero and never untriggered
    (failed states made absorbing, trigger edges ignored). For the monotone
    repairable models built by the constructors above this dominates every
    triggering pattern. *)

val pp : Format.formatter -> t -> unit

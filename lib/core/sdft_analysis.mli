(** The two-phase analysis of SD fault trees (Section V).

    Phase 1 translates the SD fault tree into a static one with identical
    minimal cutsets and generates all minimal cutsets above the cutoff with
    MOCUS (the translation's worst-case probabilities make this cutoff
    conservative). Phase 2 quantifies each cutset: a purely static cutset
    contributes its probability product; a cutset with dynamic events gets a
    small model [FT_C] whose product CTMC is solved by transient analysis.
    The rare-event approximation sums all contributions above the cutoff.

    The per-cutset statistics collected here (number of dynamic events in
    each cutset, number of events added by triggering logic, Markov-chain
    sizes, per-cutset solve times) are exactly the quantities reported in
    the paper's Figures 2 and 3 and its summary tables. *)

type engine =
  | Mocus_sound
      (** MOCUS with the paper's basics-only cutoff — never loses a cutset
          above the cutoff *)
  | Mocus_aggressive
      (** MOCUS that additionally prunes on per-gate probability estimates
          (commercial-solver behaviour; can drop borderline cutsets on
          heavily shared DAGs but is far faster on event-tree-shaped
          models) *)
  | Bdd_engine
      (** compile to a BDD, extract the minimal-solutions ZDD, enumerate
          only cutsets above the cutoff (sound; memory-bound instead of
          time-bound) *)
  | Zdd_engine
      (** the modular ZDD cutset engine ({!Zdd_engine.run}): per independent
          module, compile to a BDD, extract the minimal-solutions ZDD and
          quantify by recursive weighted counting without materializing the
          cutset list. The mass dropped by the cutoff and order bounds is
          accounted {e exactly} (total weighted count minus emitted mass),
          so — unlike [Bdd_engine] — the certified interval stays
          non-vacuous: when nothing else degrades its width is bounded by
          the summed solver epsilons plus the (exact) residual. *)
  | Auto
      (** pick per model from structural statistics (see {!resolve_engine}):
          translated trigger logic or very wide modules fall back to
          [Mocus_sound]; everything else gets [Zdd_engine] *)

type options = {
  horizon : float;  (** analysis horizon [t], e.g. 24 hours *)
  cutoff : float;  (** the cutoff [c*] (paper: 1e-15) *)
  transient_epsilon : float;
  max_product_states : int;
  max_cutset_order : int option;
  engine : engine;
  domains : int;
      (** worker domains for the per-cutset quantification phase — the
          paper's closing remark notes this phase is trivially parallel.
          [1] (default) keeps everything on the calling domain. *)
  rel_rule : Cutset_model.rel_rule;
      (** [Paper] (default) uses the class-reduced relevant sets of Section
          V-C; [All_events] quantifies every cutset with the exact general
          rule. *)
  deadline : float option;
      (** wall-clock budget in seconds for the whole analysis (generation
          plus quantification). When it expires the analysis {e degrades}
          instead of aborting: MOCUS folds its unexplored branch mass into
          the pruned mass, and every not-yet-quantified cutset falls back to
          its conservative worst-case product (see {!cutset_info.degraded}).
          [None] (default): no deadline. *)
  mem_limit_mb : int option;
      (** ceiling on the major-heap size in megabytes, probed at the same
          cooperative checkpoints; degrades identically. [None]: no
          ceiling. *)
}

val default_options : options
(** horizon 24.0, cutoff 1e-15, epsilon 1e-12, one million product states,
    no order bound, [Mocus_sound], one domain, no deadline or memory
    ceiling. *)

val engine_name : engine -> string
(** The CLI spelling: ["mocus"], ["mocus-aggressive"], ["bdd"], ["zdd"],
    ["auto"]. *)

val resolve_engine : engine -> Fault_tree.t -> engine
(** Resolve [Auto] against a (translated) static tree; concrete engines
    return themselves. [Auto] falls back to [Mocus_sound] when the tree
    contains translated trigger gates (["<basic>@trig"] — sub-models the
    ZDD path cannot express soundly) or when some independent module's
    effective width (basic events + nested-module pseudo-variables, with
    atleast gates weighted in) exceeds an internal bound beyond which BDD
    compilation risks dwarfing MOCUS's anytime behaviour; otherwise it
    picks [Zdd_engine]. *)

type cutset_info = {
  cutset : Cutset.t;
  probability : float;  (** [p~(C)] — time-aware when dynamic *)
  n_dynamic : int;  (** dynamic events in the cutset itself *)
  n_added_dynamic : int;  (** extra dynamic events in [FT_C] *)
  product_states : int;  (** 0 for purely static cutsets *)
  product_transitions : int;  (** transitions of the product chain *)
  solver_steps : int;  (** uniformized DTMC steps of the transient solve *)
  solver_error : float;
      (** upper bound on this cutset's numerical error (see
          {!Cutset_model.quantification}); for fallback cutsets, the
          cardinality times the transient epsilon *)
  from_cache : bool;  (** served by a {!Quant_cache} hit *)
  solve_seconds : float;
  used_fallback : bool;
      (** the cutset was quantified with its (conservative) worst-case
          static product instead of an exact product-chain solve *)
  degraded : Sdft_util.Guard.reason option;
      (** why the fallback was taken: [State_limit] when the product chain
          exceeded [max_product_states], [Deadline]/[Mem_limit] when a
          resource guard tripped, [Worker_crash] when the quantification of
          this cutset raised and was contained. [None] for an exact solve.
          Always set when [used_fallback]. *)
  engine : engine;
      (** provenance: the (resolved) engine whose generation phase produced
          this cutset — always concrete, never [Auto] *)
}

type error_budget = {
  pruned_mass : float;
      (** mass discarded during generation. For the MOCUS engines: an upper
          bound on the union probability of all cutsets refined from
          branches pruned by the cutoff. For [Zdd_engine]: the {e exact}
          rare-event mass of the minimal cutsets dropped by the cutoff and
          order bounds (total weighted count minus emitted mass). 0 for
          [Bdd_engine], which cannot count what it drops — see [vacuous]. *)
  below_cutoff_mass : float;
      (** mass of quantified cutsets excluded from [total] by the relevance
          filter [p~(C) > cutoff] *)
  solver_error_total : float;
      (** summed per-cutset numerical error bounds (uniformization epsilon
          scaled by static multipliers; fallbacks contribute cardinality
          times epsilon) *)
  rare_event_slack : float;
      (** [total - lower]: how much of the interval width stems from the
          rare-event over-approximation rather than from discarded mass *)
  lower : float;
      (** certified lower bound: the largest individually quantified
          non-fallback cutset probability minus its solver error (any single
          cutset failing implies top failure) *)
  upper : float;
      (** certified upper bound:
          [total + pruned_mass + below_cutoff_mass + solver_error_total];
          may exceed 1 when the rare-event sum does. When [vacuous], the
          budget cannot account for all discarded mass and [upper] degrades
          to [max 1 total]. *)
  vacuous : bool;
      (** the interval is trivial: cutset generation was truncated by a
          resource limit, or the BDD engine dropped below-cutoff cutsets
          without counting their mass. Never set for [Zdd_engine] unless
          generation was truncated, since its residual accounting is
          exact. *)
}

type degradation = {
  generation_limit : Sdft_util.Guard.reason option;
      (** cutset generation was stopped early by a resource limit. For the
          MOCUS engines the unexplored branch mass was folded into
          [budget.pruned_mass], so the certified interval stays sound {e
          and} informative; for the BDD engine nothing can be salvaged and
          the budget is vacuous. *)
  degraded_cutsets : (Sdft_util.Guard.reason * int) list;
      (** how many cutsets fell back to the worst-case bound, per reason
          (reasons with zero count are omitted; fixed reason order) *)
}

type result = {
  total : float;
      (** rare-event approximation: sum of [p~(C)] over cutsets above the
          cutoff *)
  cutoff : float;
      (** the cutoff the analysis ran with — the filter behind [total],
          reused by the importance functions so numerator and denominator
          agree *)
  engine_used : engine;
      (** the concrete engine generation ran with ([Auto] resolved against
          the translated tree — see {!resolve_engine}) *)
  cutsets : cutset_info list;  (** sorted by decreasing probability *)
  n_cutsets : int;
  n_dynamic_cutsets : int;  (** cutsets needing Markov analysis *)
  n_fallbacks : int;
      (** cutsets whose chains exceeded the state bound (conservatively
          quantified; consider [All_events -> Paper] or a larger
          [max_product_states] when nonzero) *)
  budget : error_budget;
      (** certified interval [lower, upper] around [total] with its itemized
          error terms *)
  degradation : degradation;
      (** what graceful degradation, if any, shaped this result *)
  mcs_generation_seconds : float;
  quantification_seconds : float;
  generation : Mocus.result;
      (** cutset-generation statistics (synthesised for the BDD engine) *)
  translation : Sdft_translate.result;
}

val analyze :
  ?options:options -> ?cache:Quant_cache.t -> ?obs:Sdft_util.Obs.t ->
  Sdft.t -> result
(** [cache], when given, routes per-cutset quantification through a
    {!Quant_cache.t} so that isomorphic cutset sub-models — within this call
    or across calls sharing the cache — are solved once. Results are
    bit-identical to the uncached path for models with equal fingerprints.

    With [options.deadline] or [options.mem_limit_mb] set, one
    {!Sdft_util.Guard} is shared by both phases and the analysis never
    raises on a limit: it returns a (possibly) degraded result whose
    [degradation] field records what was cut short. Totals and upper bounds
    remain sound because every degraded cutset is replaced by an upper
    bound on its probability; the certified lower bound never anchors on a
    degraded cutset.

    [obs] (default {!Sdft_util.Obs.default}) is the observability context
    threaded through the whole pipeline: every counter, span, histogram
    (notably the per-cutset [analysis.cutset_solve_s] solve times), trace
    event and failpoint site of this analysis lands in its registries, and
    a {!Sdft_util.Progress} reporter attached to it is driven through the
    two phases (with a cost-weighted ETA over the quantification schedule)
    via the shared guard's probe hook. Instrumentation never changes the
    numbers: results are bit-identical whether [obs] is the default, a
    fresh context, or one with a live progress reporter. *)

val degraded : result -> bool
(** Any degradation at all — generation stopped early, or at least one
    cutset fell back because of a limit or a contained crash. *)

val degradation_description : result -> string
(** One-line human-readable summary of the degradation (the DEGRADED banner
    body); meaningless when [degraded] is false. *)

type sweep_point = {
  sweep_options : options;
  sweep_result : result;
  cache_hits : int;  (** cache hits attributable to this point *)
  cache_misses : int;
}

val sweep :
  ?cache:Quant_cache.t ->
  ?obs:Sdft_util.Obs.t ->
  Sdft.t ->
  options list ->
  sweep_point list * Quant_cache.t
(** [sweep sd option_sets] runs {!analyze} once per option set against [sd],
    sharing one quantification cache across the whole sweep (a fresh one
    unless [cache] is given, which lets several sweeps share). Returns the
    per-point results with their cache-traffic deltas, plus the cache for
    reuse or inspection. Aggregate hit/miss totals are also published on the
    ["quant_cache.hits"/"quant_cache.misses"] metrics counters. *)

(** {1 Checkpointed sweeps}

    A sweep run with a {!Checkpoint} journal survives being killed — even
    with [SIGKILL] — at any instant: every certified per-cutset solve and
    every completed point is journaled as it happens, and a [--resume] run
    skips completed points outright, re-solves only the unfinished cutsets
    of the interrupted point, and produces final results bit-identical to
    an uninterrupted run. *)

val options_fingerprint : options -> string
(** Canonical serialization of every result-influencing option (numerics,
    engine, rel-rule, resource limits). [domains] is excluded: the work
    partition never changes result bits, so a resume may use a different
    parallelism than the interrupted run. *)

val point_key : Sdft.t -> options -> string
(** Stable identity of one sweep point: MD5 of the model's canonical
    fingerprint plus {!options_fingerprint}. This is the key under which
    {!sweep_checkpointed} journals and finds completed points. *)

type sweep_item =
  | Sweep_run of sweep_point  (** computed (or recomputed) this run *)
  | Sweep_skipped of Checkpoint.point
      (** certified by the journal; result replayed without recomputing *)

val sweep_checkpointed :
  ?cache:Quant_cache.t ->
  ?obs:Sdft_util.Obs.t ->
  journal:Checkpoint.t ->
  resume:bool ->
  ?on_point:(sweep_item -> unit) ->
  Sdft.t ->
  options list ->
  sweep_item list * Quant_cache.t
(** Like {!sweep}, journaling into [journal]: each fresh solve is recorded
    through {!Quant_cache.set_on_store}, each completed point as a point
    record. With [resume], the cache is first seeded from the journal's
    item records and points already journaled are returned as
    [Sweep_skipped] without running. [on_point] fires after each item in
    sweep order — the CLI prints (and flushes) its row there, so progress
    is visible and a kill between points loses nothing. The observability
    context's progress phase ["sweep"] prices only the points that actually
    run, surfacing the checkpoint-skipped count separately. *)

val static_rare_event :
  ?cutoff:float -> ?engine:engine -> Fault_tree.t -> float * int
(** Baseline "no timing" analysis of a plain static tree: cutset generation
    plus rare-event approximation. Returns the approximation and the number
    of cutsets above the cutoff. *)

val generate_cutsets :
  ?cutoff:float -> ?max_order:int option -> ?guard:Sdft_util.Guard.t ->
  ?obs:Sdft_util.Obs.t -> engine -> Fault_tree.t -> Mocus.result
(** Run the chosen cutset engine on a static tree ([Auto] is resolved
    first). A tripped [guard] never raises: the MOCUS engines return their
    accounted partial result (see {!Mocus.run}); the BDD and ZDD engines
    return an empty result with [truncated] and [limit_hit] set. For
    [Zdd_engine] the returned [pruned_mass] is the exact residual mass and
    [generated]/[pruned_by_cutoff] count {e all} minimal cutsets
    (saturating at [max_int]). *)

val dynamic_histogram : result -> Sdft_util.Histogram.t
(** Distribution of the number of dynamic basic events per minimal cutset
    (Figure 2). *)

val mean_added_dynamic : result -> float
(** Among cutsets with dynamic events: mean number of events added because
    triggering gates lack static branching (the paper reports 1.78 of 3.02
    for the fully dynamic BWR model). *)

val fussell_vesely : result -> int -> float
(** Time-aware Fussell-Vesely importance: share of the total frequency
    carried by cutsets containing the event, with each cutset weighted by
    its dynamic quantification [p~(C)]. The paper's closing remark about
    importance analyses re-evaluating the cutset list "once for each basic
    event" reduces to these cached sums. *)

val rank_by_fussell_vesely : result -> n_basics:int -> int list
(** All basic events by decreasing time-aware importance. *)

val pp_summary : Format.formatter -> result -> unit
(** One-screen summary including the certified interval. *)

val pp_budget : Format.formatter -> result -> unit
(** Itemized error-budget breakdown with the certified interval. *)

(** {1 Cross-checking against a statistical oracle}

    The rare-event simulator ({!Rare_event} in [sdft.sim]) produces an
    unbiased estimate of the exact product-semantics probability with a
    confidence interval. Since the certified budget interval
    [[budget.lower, budget.upper]] also brackets that exact value, the two
    intervals must overlap (up to the CI's confidence level) whenever both
    the analytic pipeline and the simulator are sound — a disjoint pair is
    strong evidence of a bug in one of them. *)

type sim_check = {
  sim_lower : float;  (** simulation confidence interval *)
  sim_upper : float;
  budget_lower : float;  (** the analysis' certified interval *)
  budget_upper : float;
  overlaps : bool;  (** the intervals intersect *)
  gap : float;  (** distance between the intervals; 0 when overlapping *)
  vacuous_budget : bool;
      (** the budget interval was vacuous, so an overlap is trivial *)
}

val verify_sim : result -> sim_ci:float * float -> sim_check
(** [verify_sim result ~sim_ci:(lo, hi)] compares a simulation confidence
    interval against the result's certified budget interval. The simulation
    side is passed as plain bounds so this check does not depend on the
    simulator library (which sits above this one); [Rare_event.verify]
    wires the two together.

    @raise Invalid_argument when [lo > hi]. *)

val pp_sim_check : Format.formatter -> sim_check -> unit

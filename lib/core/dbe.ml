type mode =
  | On
  | Off

type switch = {
  modes : mode array;
  partner : int array; (* off-state <-> on-state *)
}

type t = {
  n : int;
  chain : Ctmc.t;
  init : (int * float) list;
  failed : bool array;
  switch : switch option;
}

let make ~n_states ~init ~transitions ~failed ?switch () =
  if n_states <= 0 then invalid_arg "Dbe.make: need at least one state";
  let chain = Ctmc.make ~n_states ~transitions in
  let mass =
    List.fold_left
      (fun acc (s, p) ->
        if s < 0 || s >= n_states then invalid_arg "Dbe.make: init state out of range";
        if p < 0.0 then invalid_arg "Dbe.make: negative initial mass";
        acc +. p)
      0.0 init
  in
  if Float.abs (mass -. 1.0) > 1e-9 then
    invalid_arg "Dbe.make: initial distribution must sum to 1";
  let failed_arr = Array.make n_states false in
  List.iter
    (fun s ->
      if s < 0 || s >= n_states then invalid_arg "Dbe.make: failed state out of range";
      failed_arr.(s) <- true)
    failed;
  if not (Array.exists Fun.id failed_arr) then
    invalid_arg "Dbe.make: a dynamic event needs at least one failed state";
  let switch =
    match switch with
    | None -> None
    | Some (modes, partner) ->
      if Array.length modes <> n_states || Array.length partner <> n_states then
        invalid_arg "Dbe.make: switch arrays have wrong length";
      Array.iteri
        (fun s p ->
          if p < 0 || p >= n_states then
            invalid_arg "Dbe.make: switch partner out of range";
          match modes.(s), modes.(p) with
          | On, Off | Off, On -> ()
          | On, On | Off, Off ->
            invalid_arg "Dbe.make: switch partner must be in the opposite mode")
        partner;
      (* F ⊆ S_on *)
      Array.iteri
        (fun s f ->
          if f && modes.(s) = Off then
            invalid_arg "Dbe.make: failed states must be switched on")
        failed_arr;
      (* Initial distribution supported on off-states. *)
      List.iter
        (fun (s, p) ->
          if p > 0.0 && modes.(s) = On then
            invalid_arg "Dbe.make: triggered events must start switched off")
        init;
      Some { modes; partner }
  in
  { n = n_states; chain; init; failed = failed_arr; switch }

let exponential ~lambda ?mu () =
  let transitions = [ (0, 1, lambda) ] in
  let transitions =
    match mu with
    | Some m -> (1, 0, m) :: transitions
    | None -> transitions
  in
  make ~n_states:2 ~init:[ (0, 1.0) ] ~transitions ~failed:[ 1 ] ()

let erlang ~phases ~lambda ?mu () =
  if phases < 1 then invalid_arg "Dbe.erlang: need at least one phase";
  let rate = float_of_int phases *. lambda in
  let transitions = List.init phases (fun i -> (i, i + 1, rate)) in
  let transitions =
    match mu with
    | Some m -> (phases, 0, m) :: transitions
    | None -> transitions
  in
  make ~n_states:(phases + 1) ~init:[ (0, 1.0) ] ~transitions ~failed:[ phases ] ()

let triggered_erlang ~phases ~lambda ?mu ?(passive_factor = 0.01)
    ?(repair_when_off = false) () =
  if phases < 1 then invalid_arg "Dbe.triggered_erlang: need at least one phase";
  if passive_factor < 0.0 then
    invalid_arg "Dbe.triggered_erlang: negative passive factor";
  (* States: off-phase i is state i, on-phase i is state (phases + 1 + i). *)
  let off i = i and on i = phases + 1 + i in
  let n_states = 2 * (phases + 1) in
  let active_rate = float_of_int phases *. lambda in
  let passive_rate = active_rate *. passive_factor in
  let transitions = ref [] in
  for i = 0 to phases - 1 do
    transitions := (on i, on (i + 1), active_rate) :: !transitions;
    if passive_rate > 0.0 then
      transitions := (off i, off (i + 1), passive_rate) :: !transitions
  done;
  (match mu with
  | Some m ->
    transitions := (on phases, on 0, m) :: !transitions;
    if repair_when_off then transitions := (off phases, off 0, m) :: !transitions
  | None -> ());
  let modes = Array.init n_states (fun s -> if s <= phases then Off else On) in
  let partner =
    Array.init n_states (fun s -> if s <= phases then on s else s - (phases + 1))
  in
  make ~n_states ~init:[ (off 0, 1.0) ] ~transitions:!transitions
    ~failed:[ on phases ] ~switch:(modes, partner) ()

let triggered_exponential ~lambda ?mu ?passive_factor ?repair_when_off () =
  triggered_erlang ~phases:1 ~lambda ?mu ?passive_factor ?repair_when_off ()

let n_states t = t.n

let chain t = t.chain

let init t = t.init

let is_failed t s = t.failed.(s)

let is_triggered_model t = t.switch <> None

let mode_of t s =
  match t.switch with
  | None -> On
  | Some sw -> sw.modes.(s)

let switch_on t s =
  match t.switch with
  | None -> invalid_arg "Dbe.switch_on: untriggered event"
  | Some sw ->
    if sw.modes.(s) <> Off then invalid_arg "Dbe.switch_on: not an off-state";
    sw.partner.(s)

let switch_off t s =
  match t.switch with
  | None -> invalid_arg "Dbe.switch_off: untriggered event"
  | Some sw ->
    if sw.modes.(s) <> On then invalid_arg "Dbe.switch_off: not an on-state";
    sw.partner.(s)

let initial_on t =
  match t.switch with
  | None -> t.init
  | Some sw -> List.map (fun (s, p) -> (sw.partner.(s), p)) t.init

let worst_case_failure_probability ?(epsilon = 1e-12) ?obs t ~horizon =
  let options = { Transient.default_options with epsilon } in
  Transient.reach_within ~options ?obs t.chain ~init:(initial_on t)
    ~target:(fun s -> t.failed.(s))
    ~t:horizon

let pp ppf t =
  let kind = if is_triggered_model t then "triggered" else "plain" in
  Format.fprintf ppf "dbe(%s, %d states, %d transitions)" kind t.n
    (Ctmc.n_transitions t.chain)

(* Crash-safe sweep checkpoint journal, built on the same CRC-framed
   append-only Store as the quantification cache. Two record kinds share
   one file, distinguished by a two-byte tag:

     "i|" ^ Quant_cache.encode_record key entry   -- one completed work
         item (a certified per-cutset quantification), exactly the disk
         cache's codec, so a resumed sweep warm-starts its cache from the
         journal and recomputes nothing that was already certified;
     "p|" ^ point codec below                     -- one fully completed
         sweep point (the certified interval the CLI printed), so a
         resumed sweep can skip the point outright and reprint the stored
         result bit-identically.

   The journal opens with batch 1 — every record is flushed as it is
   written — so a SIGKILL loses at most the record being framed, and
   Store's torn-tail truncation guarantees a resume sees exactly the
   records that were completely written. The header stamp extends the
   cache's version stamp, so a solver or codec change invalidates old
   journals instead of resuming from stale certificates. *)

module Store = Sdft_util.Store
module Failpoint = Sdft_util.Failpoint

let stamp = Quant_cache.version_stamp ^ " ckpt/1"

type point = {
  pt_key : string;
  pt_horizon : float;
  pt_total : float;
  pt_lower : float;
  pt_upper : float;
  pt_vacuous : bool;
  pt_n_cutsets : int;
  pt_n_dynamic : int;
  pt_degraded : string option;
}

type t = {
  store : Store.t;
  lock : Mutex.t;
  entries : (string * Quant_cache.entry) list; (* file order *)
  points : (string, point) Hashtbl.t;
  mutable error : string option;
}

(* Point codec: '|'-separated, floats as hex literals (bit-exact
   round-trip), the free-text degradation description last so any '|' it
   contains survives via rejoin. The key is an MD5 hex digest and never
   contains '|'. *)
let encode_point p =
  Printf.sprintf "%s|%h|%h|%h|%h|%d|%d|%d|%s" p.pt_key p.pt_horizon
    p.pt_total p.pt_lower p.pt_upper
    (if p.pt_vacuous then 1 else 0)
    p.pt_n_cutsets p.pt_n_dynamic
    (match p.pt_degraded with None -> "" | Some d -> d)

let decode_point s =
  match String.split_on_char '|' s with
  | key :: horizon :: total :: lower :: upper :: vac :: ncs :: ndyn :: rest
    -> (
    match
      ( float_of_string_opt horizon,
        float_of_string_opt total,
        float_of_string_opt lower,
        float_of_string_opt upper,
        int_of_string_opt vac,
        int_of_string_opt ncs,
        int_of_string_opt ndyn )
    with
    | Some h, Some t, Some l, Some u, Some v, Some n, Some nd ->
      let desc = String.concat "|" rest in
      Some
        {
          pt_key = key;
          pt_horizon = h;
          pt_total = t;
          pt_lower = l;
          pt_upper = u;
          pt_vacuous = v <> 0;
          pt_n_cutsets = n;
          pt_n_dynamic = nd;
          pt_degraded = (if desc = "" then None else Some desc);
        }
    | _ -> None)
  | _ -> None

let open_ path =
  let store, records = Store.open_ ~batch:1 ~stamp path in
  let entries = ref [] in
  let points = Hashtbl.create 16 in
  List.iter
    (fun r ->
      if String.length r >= 2 then begin
        let body = String.sub r 2 (String.length r - 2) in
        match String.sub r 0 2 with
        | "i|" -> (
          match Quant_cache.decode_record body with
          | Some kv -> entries := kv :: !entries
          | None -> ())
        | "p|" -> (
          match decode_point body with
          | Some p -> Hashtbl.replace points p.pt_key p
          | None -> ())
        | _ -> () (* unknown tag: a newer writer; skip, never fail *)
      end)
    records;
  {
    store;
    lock = Mutex.create ();
    entries = List.rev !entries;
    points;
    error = None;
  }

let entries t = t.entries

let find_point t key =
  Mutex.lock t.lock;
  let p = Hashtbl.find_opt t.points key in
  Mutex.unlock t.lock;
  p

let n_points t =
  Mutex.lock t.lock;
  let n = Hashtbl.length t.points in
  Mutex.unlock t.lock;
  n

let read_only t = Store.mode t.store = Store.Reader

let journal_error t =
  Mutex.lock t.lock;
  let e = t.error in
  Mutex.unlock t.lock;
  e

let io_error_message = function
  | Sys_error m -> Some m
  | Unix.Unix_error (err, fn, arg) ->
    Some (Printf.sprintf "%s(%s): %s" fn arg (Unix.error_message err))
  | Failpoint.Injected site -> Some ("injected failure at " ^ site)
  | Failure m -> Some m
  | _ -> None

(* Journal writes must never take the sweep down: a failed append marks
   the journal broken (surfaced through [journal_error]) and the sweep
   carries on — a later resume just has more work to redo. The lock makes
   this safe from the quantification worker domains, which feed item
   records through the cache's on-store hook. *)
let record t payload =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      if t.error = None then
        match
          Failpoint.hit "checkpoint.record";
          Store.append t.store payload
        with
        | true | false -> ()
        | exception exn -> (
          match io_error_message exn with
          | Some m -> t.error <- Some m
          | None -> raise exn))

let record_entry t key e = record t ("i|" ^ Quant_cache.encode_record key e)

let record_point t p =
  record t ("p|" ^ encode_point p);
  Mutex.lock t.lock;
  Hashtbl.replace t.points p.pt_key p;
  Mutex.unlock t.lock

let close t =
  match Store.close t.store with
  | () -> ()
  | exception exn -> (
    match io_error_message exn with
    | Some m ->
      Mutex.lock t.lock;
      if t.error = None then t.error <- Some m;
      Mutex.unlock t.lock
    | None -> raise exn)

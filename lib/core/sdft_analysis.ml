module Metrics = Sdft_util.Metrics
module Trace = Sdft_util.Trace
module Obs = Sdft_util.Obs

(* Per-observability-context instrument handles, resolved once per analyze
   call (physical-equality fast path on the default context — see
   Sdft_util.Obs). *)
type handles = {
  m_runs : Metrics.counter;
  m_mcs_span : Metrics.span;
  m_quant_span : Metrics.span;
  m_fallbacks : Metrics.counter;
  m_product_states : Metrics.counter;
  m_cutsets : Metrics.counter;
  m_solve_s : Metrics.histogram;
}

let handles_in m =
  {
    m_runs = Metrics.counter_in m "analysis.runs";
    m_mcs_span = Metrics.span_in m "analysis.mcs_generation";
    m_quant_span = Metrics.span_in m "analysis.quantification";
    m_fallbacks = Metrics.counter_in m "analysis.fallbacks";
    m_product_states = Metrics.counter_in m "analysis.product_states";
    m_cutsets = Metrics.counter_in m "analysis.cutsets_quantified";
    m_solve_s = Metrics.histogram_in m "analysis.cutset_solve_s";
  }

let default_handles = handles_in Metrics.default

let handles_of m =
  if m == Metrics.default then default_handles else handles_in m

type engine =
  | Mocus_sound
  | Mocus_aggressive
  | Bdd_engine
  | Zdd_engine
  | Auto

type options = {
  horizon : float;
  cutoff : float;
  transient_epsilon : float;
  max_product_states : int;
  max_cutset_order : int option;
  engine : engine;
  domains : int;
  rel_rule : Cutset_model.rel_rule;
  deadline : float option;
  mem_limit_mb : int option;
}

let default_options =
  {
    horizon = 24.0;
    cutoff = 1e-15;
    transient_epsilon = 1e-12;
    max_product_states = 1_000_000;
    max_cutset_order = None;
    engine = Mocus_sound;
    domains = 1;
    rel_rule = Cutset_model.Paper;
    deadline = None;
    mem_limit_mb = None;
  }

let engine_name = function
  | Mocus_sound -> "mocus"
  | Mocus_aggressive -> "mocus-aggressive"
  | Bdd_engine -> "bdd"
  | Zdd_engine -> "zdd"
  | Auto -> "auto"

(* The translation names the AND gates it synthesizes for trigger edges
   "<basic>@trig"; their presence is the structural footprint of dynamic
   triggering logic in an otherwise static tree. *)
let translated_trigger_gate name =
  let n = String.length name in
  n >= 5 && String.sub name (n - 5) 5 = "@trig"

(* Auto-selection threshold on a module's effective variable width. BDD
   sizes are exponential in the worst case in the number of variables of one
   module (nested modules collapse to single pseudo-variables, so only the
   module's own cut width counts); atleast gates additionally multiply the
   diagram's width by their threshold, so they weigh in. Below the bound the
   ZDD engine's exact residual accounting wins; above it MOCUS's anytime
   behaviour (a sound partial list with bounded pruned mass) is the safer
   default. The bound is deliberately generous — realistic tree-shaped
   structure functions compile fine at this width (the industrial benchmark
   tops out at 86), and a pathological case still degrades soundly through
   the resource guard rather than hanging. *)
let zdd_max_module_width = 128

let resolve_engine engine tree =
  match engine with
  | Mocus_sound | Mocus_aggressive | Bdd_engine | Zdd_engine -> engine
  | Auto ->
    let triggered = ref false in
    for g = 0 to Fault_tree.n_gates tree - 1 do
      if translated_trigger_gate (Fault_tree.gate_name tree g) then
        triggered := true
    done;
    (* Triggered sub-models need the translation-aware MOCUS pipeline: the
       ZDD path would treat the @trig conjunctions as ordinary static logic
       and lose the conservative-cutoff reasoning built around them. *)
    if !triggered then Mocus_sound
    else if
      List.exists
        (fun s ->
          s.Zdd_engine.ms_basics + s.Zdd_engine.ms_inner_modules
          + (4 * s.Zdd_engine.ms_atleast)
          > zdd_max_module_width)
        (Zdd_engine.module_stats tree)
    then Mocus_sound
    else Zdd_engine

let generate_cutsets ?(cutoff = 1e-15) ?(max_order = None)
    ?(guard = Sdft_util.Guard.none) ?(obs = Obs.default) engine tree =
  let empty_on limit =
    (* Unlike MOCUS there is no sound partial cutset list to salvage from
       an interrupted BDD/ZDD compilation, and no mass bound for what is
       missing: return an empty truncated (hence vacuous) result. *)
    {
      Mocus.cutsets = [];
      generated = 0;
      pruned_by_cutoff = 0;
      pruned_mass = 0.0;
      truncated = true;
      limit_hit = Some limit;
    }
  in
  match resolve_engine engine tree with
  | Auto -> assert false (* resolve_engine never returns Auto *)
  | (Mocus_sound | Mocus_aggressive) as engine ->
    let options =
      {
        Mocus.default_options with
        cutoff;
        max_order;
        gate_bound_pruning = (engine = Mocus_aggressive);
      }
    in
    Mocus.run ~options ~guard ~obs tree
  | Bdd_engine -> (
    match Minsol.fault_tree_cutsets_above ?max_order ~guard tree ~cutoff with
    | cutsets ->
      {
        Mocus.cutsets;
        generated = List.length cutsets;
        pruned_by_cutoff = 0;
        (* The BDD enumeration drops every cutset below the cutoff without
           counting it, so no mass bound is available here; the error budget
           marks BDD-engine intervals with a nonzero cutoff as vacuous. *)
        pruned_mass = 0.0;
        truncated = false;
        limit_hit = None;
      }
    | exception Sdft_util.Guard.Limit_hit r -> empty_on r
    | exception Out_of_memory -> empty_on Sdft_util.Guard.Mem_limit)
  | Zdd_engine -> (
    match Zdd_engine.run ~cutoff ?max_order ~guard ~obs tree with
    | r ->
      let emitted = List.length r.Zdd_engine.cutsets in
      {
        Mocus.cutsets = r.Zdd_engine.cutsets;
        generated =
          (if r.Zdd_engine.n_minimal_saturated then max_int
           else r.Zdd_engine.n_minimal);
        pruned_by_cutoff =
          (if r.Zdd_engine.n_minimal_saturated then max_int
           else r.Zdd_engine.n_minimal - emitted);
        (* Exact, not an upper bound: the ZDD weighted count covers the mass
           of every minimal cutset without enumerating them, so what the
           cutoff and order bounds dropped is accounted to the last bit and
           the certified interval stays non-vacuous. *)
        pruned_mass = r.Zdd_engine.residual_mass;
        truncated = false;
        limit_hit = None;
      }
    | exception Sdft_util.Guard.Limit_hit r -> empty_on r
    | exception Out_of_memory -> empty_on Sdft_util.Guard.Mem_limit)

type cutset_info = {
  cutset : Cutset.t;
  probability : float;
  n_dynamic : int;
  n_added_dynamic : int;
  product_states : int;
  product_transitions : int;
  solver_steps : int;
  solver_error : float;
  from_cache : bool;
  solve_seconds : float;
  used_fallback : bool;
  degraded : Sdft_util.Guard.reason option;
  engine : engine;
}

type error_budget = {
  pruned_mass : float;
  below_cutoff_mass : float;
  solver_error_total : float;
  rare_event_slack : float;
  lower : float;
  upper : float;
  vacuous : bool;
}

type degradation = {
  generation_limit : Sdft_util.Guard.reason option;
  degraded_cutsets : (Sdft_util.Guard.reason * int) list;
}

type result = {
  total : float;
  cutoff : float;
  engine_used : engine;
  cutsets : cutset_info list;
  n_cutsets : int;
  n_dynamic_cutsets : int;
  n_fallbacks : int;
  budget : error_budget;
  degradation : degradation;
  mcs_generation_seconds : float;
  quantification_seconds : float;
  generation : Mocus.result;
  translation : Sdft_translate.result;
}

let degraded r =
  r.degradation.generation_limit <> None || r.degradation.degraded_cutsets <> []

let analyze ?(options = default_options) ?cache ?(obs = Obs.default) sd =
  let h = handles_of obs.Obs.metrics in
  let sink = obs.Obs.trace in
  Trace.with_span ~sink "analysis.analyze" (fun () ->
  Fun.protect ~finally:(fun () -> Obs.finish_progress obs) @@ fun () ->
  Metrics.incr h.m_runs;
  (* One guard for the whole analysis: the deadline spans generation and
     quantification together, so a generation overrun eats the budget of the
     quantification phase (which then degrades cutset by cutset). A live
     progress reporter rides the same guard: its probe callback runs at the
     guard's amortized stride, so an unlimited-but-observed analysis keeps a
     (passive-limit) guard just for the heartbeat. *)
  let guard =
    match (options.deadline, options.mem_limit_mb, Obs.on_probe obs) with
    | None, None, None -> Sdft_util.Guard.none
    | deadline, mem_limit_mb, on_probe ->
      Sdft_util.Guard.create ?deadline ?mem_limit_mb ?on_probe ()
  in
  Obs.begin_phase obs "generation" ();
  (* Phase 1: translation and cutset generation. [Auto] is resolved against
     the translated tree (trigger gates only exist post-translation) and the
     concrete choice is recorded as provenance on the result and on every
     cutset record. *)
  let (translation, engine_used, mocus_result), mcs_generation_seconds =
    Sdft_util.Timer.time (fun () ->
        Metrics.time h.m_mcs_span (fun () ->
            Trace.with_span ~sink "analysis.mcs_generation" (fun () ->
            let translation =
              Sdft_translate.translate ~epsilon:options.transient_epsilon ~obs
                sd ~horizon:options.horizon
            in
            let engine_used =
              resolve_engine options.engine translation.static_tree
            in
            Trace.add_attr ~sink "engine"
              (Trace.Str (engine_name engine_used));
            ( translation,
              engine_used,
              generate_cutsets ~cutoff:options.cutoff
                ~max_order:options.max_cutset_order ~guard ~obs engine_used
                translation.static_tree ))))
  in
  (* Phase 2: per-cutset quantification, walking a degradation ladder per
     cutset: exact product-chain quantification when resources allow it,
     otherwise the conservative static worst-case product (which
     upper-bounds p~(C)) with the typed reason recorded in the cutset's
     provenance. *)
  let worst_case_product cutset =
    Sdft_util.Int_set.fold
      (fun b acc -> acc *. translation.Sdft_translate.worst_case.(b))
      cutset 1.0
  in
  let count_dynamic cutset =
    Sdft_util.Int_set.fold
      (fun b acc -> if Sdft.is_dynamic sd b then acc + 1 else acc)
      cutset 0
  in
  let fallback_info ?model ~reason cutset =
    let n_dynamic, n_added_dynamic =
      match model with
      | Some m ->
        (m.Cutset_model.n_dynamic_in_cutset, m.Cutset_model.n_added_dynamic)
      | None -> (count_dynamic cutset, 0)
    in
    {
      cutset;
      probability = worst_case_product cutset;
      n_dynamic;
      n_added_dynamic;
      product_states = 0;
      product_transitions = 0;
      solver_steps = 0;
      (* Each worst-case factor was computed by a transient solve with
         error at most [transient_epsilon]; factors are at most 1, so the
         product's absolute error is bounded by the factor count times
         epsilon (first order). *)
      solver_error =
        float_of_int (Sdft_util.Int_set.cardinal cutset)
        *. options.transient_epsilon;
      from_cache = false;
      solve_seconds = 0.0;
      used_fallback = true;
      degraded = Some reason;
      engine = engine_used;
    }
  in
  (* ETA cost proxy for the progress schedule: the product chain grows
     multiplicatively with the dynamic width of the cutset, so weight each
     work item exponentially (capped) rather than uniformly. *)
  let cost_of cutset =
    float_of_int (1 lsl min (count_dynamic cutset) 20)
  in
  let quantify_model ~workspace model ~horizon =
    match cache with
    | Some c ->
      Quant_cache.quantify c ~epsilon:options.transient_epsilon
        ~max_states:options.max_product_states ~guard ~workspace
        ~engine_tag:(engine_name engine_used) ~obs model ~horizon
    | None ->
      Cutset_model.quantify ~epsilon:options.transient_epsilon
        ~max_states:options.max_product_states ~guard ~workspace ~obs model
        ~horizon
  in
  let quantify_one_inner (context, workspace) cutset =
    Trace.with_span ~sink "analysis.cutset" (fun () ->
    match Sdft_util.Guard.status guard with
    | Some r ->
      (* The global limit tripped between work items: skip the model build
         and the solve outright so the remaining cutsets drain fast. *)
      Trace.add_attr ~sink "fallback" (Trace.Bool true);
      fallback_info ~reason:r cutset
    | None ->
      (* Model construction answers to the same guard as the solve: its
         trigger-set BDD compilations can blow up on their own, and a limit
         tripping there is a resource degradation, not a worker crash. *)
      match
        Cutset_model.build ~context ~rel_rule:options.rel_rule ~guard ~obs sd
          cutset
      with
      | exception Sdft_util.Guard.Limit_hit r ->
        Trace.add_attr ~sink "fallback" (Trace.Bool true);
        fallback_info ~reason:r cutset
      | model ->
      (match quantify_model ~workspace model ~horizon:options.horizon with
      | q ->
        Trace.add_attr ~sink "probability"
          (Trace.Float q.Cutset_model.probability);
        Trace.add_attr ~sink "states" (Trace.Int q.Cutset_model.product_states);
        if q.Cutset_model.from_cache then
          Trace.add_attr ~sink "cached" (Trace.Bool true);
        {
          cutset;
          probability = q.Cutset_model.probability;
          n_dynamic = model.Cutset_model.n_dynamic_in_cutset;
          n_added_dynamic = model.Cutset_model.n_added_dynamic;
          product_states = q.Cutset_model.product_states;
          product_transitions = q.Cutset_model.product_transitions;
          solver_steps = q.Cutset_model.solver_steps;
          solver_error = q.Cutset_model.solver_error;
          from_cache = q.Cutset_model.from_cache;
          solve_seconds = q.Cutset_model.seconds;
          used_fallback = false;
          degraded = None;
          engine = engine_used;
        }
      | exception Sdft_product.Too_many_states _ ->
        Trace.add_attr ~sink "fallback" (Trace.Bool true);
        fallback_info ~model ~reason:Sdft_util.Guard.State_limit cutset
      | exception Sdft_util.Guard.Limit_hit r ->
        Trace.add_attr ~sink "fallback" (Trace.Bool true);
        fallback_info ~model ~reason:r cutset
      | exception Out_of_memory ->
        Trace.add_attr ~sink "fallback" (Trace.Bool true);
        fallback_info ~model ~reason:Sdft_util.Guard.Mem_limit cutset))
  in
  let quantify_one worker cutset =
    let info = quantify_one_inner worker cutset in
    if not info.used_fallback then
      Metrics.observe h.m_solve_s info.solve_seconds;
    (* Atomic progress state: safe to step from worker domains. *)
    Obs.step obs ~cost:(cost_of cutset) ();
    info
  in
  (* Last rung of the ladder: any exception neither the guard nor the state
     bound accounts for (a genuine bug, an injected crash) poisons only its
     own cutset — contained as a worst-case fallback marked [Worker_crash]
     instead of killing the whole analysis. *)
  let contain worker cutset =
    match quantify_one worker cutset with
    | info -> info
    | exception exn ->
      Trace.instant ~sink "analysis.worker_crash";
      ignore exn;
      fallback_info ~reason:Sdft_util.Guard.Worker_crash cutset
  in
  let quantify_sequential cutsets =
    let worker = (Cutset_model.context sd, Transient.workspace ()) in
    List.map (contain worker) cutsets
  in
  (* Parallel variant: the shared model is read-only once its lazy
     descendant caches are forced, so workers only need their own
     per-analysis context and solver workspace. [Parallel.map_init]
     distributes work by an atomic counter and re-raises the first worker
     exception after all domains have joined (a crashed worker must not
     surface as an [Option.get] failure on its unfilled result slots). *)
  let quantify_parallel n_domains cutsets =
    let tree = Sdft.tree sd in
    for g = 0 to Fault_tree.n_gates tree - 1 do
      ignore (Fault_tree.descendant_basics tree g);
      ignore (Sdft.dynamic_descendants sd g)
    done;
    let arr = Array.of_list cutsets in
    let n = Array.length arr in
    (* Cost-descending schedule: with an atomic-counter scheduler, a big
       cutset picked up last leaves one domain solving alone while the
       others idle. Hand out the expensive cutsets first — more dynamic
       events means a (multiplicatively) larger product chain, ties broken
       by static probability as a proxy for the remaining work. Results
       are restored to input order, so the Kahan total sums in exactly the
       sequential order and stays bit-identical. *)
    let n_dyn =
      Array.map
        (fun c ->
          Sdft_util.Int_set.fold
            (fun b acc -> if Sdft.is_dynamic sd b then acc + 1 else acc)
            c 0)
        arr
    in
    let static_p =
      Array.map
        (fun c -> Cutset.probability translation.Sdft_translate.static_tree c)
        arr
    in
    let order = Array.init n Fun.id in
    Array.sort
      (fun i j ->
        let c = compare n_dyn.(j) n_dyn.(i) in
        if c <> 0 then c
        else
          let c = compare static_p.(j) static_p.(i) in
          if c <> 0 then c else compare i j)
      order;
    let scheduled = Array.map (fun i -> arr.(i)) order in
    (* The crash-containing map turns a worker exception into an [Error]
       slot; the slot's cutset then takes the worst-case fallback, so one
       poisoned cutset degrades instead of aborting the sweep. *)
    let results =
      Sdft_util.Parallel.map_init_result ~domains:n_domains
        (fun () -> (Cutset_model.context sd, Transient.workspace ()))
        quantify_one scheduled
    in
    let results =
      Array.mapi
        (fun pos r ->
          match r with
          | Ok info -> info
          | Error (_exn, _bt) ->
            fallback_info ~reason:Sdft_util.Guard.Worker_crash scheduled.(pos))
        results
    in
    let restored = Array.make n None in
    Array.iteri (fun pos r -> restored.(order.(pos)) <- Some r) results;
    List.init n (fun i -> Option.get restored.(i))
  in
  let all_cutsets = mocus_result.Mocus.cutsets in
  Obs.begin_phase obs "quantification" ~total:(List.length all_cutsets)
    ~cost_total:
      (List.fold_left (fun acc c -> acc +. cost_of c) 0.0 all_cutsets)
    ();
  let infos, quantification_seconds =
    Sdft_util.Timer.time (fun () ->
        Metrics.time h.m_quant_span (fun () ->
            Trace.with_span ~sink "analysis.quantification" (fun () ->
                if options.domains > 1 then
                  quantify_parallel options.domains all_cutsets
                else quantify_sequential all_cutsets)))
  in
  let relevant =
    List.filter (fun info -> info.probability > options.cutoff) infos
  in
  let total =
    Sdft_util.Kahan.sum_list (List.map (fun info -> info.probability) relevant)
  in
  let sorted =
    List.sort
      (fun a b ->
        let c = compare b.probability a.probability in
        if c <> 0 then c else Sdft_util.Int_set.compare a.cutset b.cutset)
      infos
  in
  let n_fallbacks =
    List.length (List.filter (fun info -> info.used_fallback) infos)
  in
  Metrics.add h.m_cutsets (List.length infos);
  Metrics.add h.m_fallbacks n_fallbacks;
  Metrics.add h.m_product_states
    (List.fold_left (fun acc info -> acc + info.product_states) 0 infos);
  (* Error budget. Upper bound: the rare-event sum over-approximates the
     union, so adding back every discarded mass — branches pruned during
     MOCUS, quantified cutsets dropped by the relevance filter — and the
     total numerical solver error yields a sound upper bound on the true
     top-event probability. Lower bound: the failure of any single cutset
     implies top failure, so the largest individually certified cutset
     probability (minus its own solver error) is a sound lower bound;
     fallback cutsets over-approximate and must not anchor it. *)
  let below_cutoff_mass =
    let acc = Sdft_util.Kahan.create () in
    List.iter
      (fun info ->
        if info.probability <= options.cutoff then
          Sdft_util.Kahan.add acc info.probability)
      infos;
    Sdft_util.Kahan.total acc
  in
  let solver_error_total =
    let acc = Sdft_util.Kahan.create () in
    List.iter (fun info -> Sdft_util.Kahan.add acc info.solver_error) infos;
    Sdft_util.Kahan.total acc
  in
  let lower =
    List.fold_left
      (fun acc info ->
        if info.used_fallback then acc
        else Float.max acc (info.probability -. info.solver_error))
      0.0 infos
  in
  let vacuous =
    (* The ZDD engine is deliberately absent here: its [pruned_mass] is the
       exact residual of the weighted count, so a nonzero cutoff or order
       bound still yields a fully accounted interval. *)
    mocus_result.Mocus.truncated
    || (engine_used = Bdd_engine
        && (options.cutoff > 0.0 || options.max_cutset_order <> None))
  in
  let upper =
    if vacuous then Float.max 1.0 total
    else
      total +. mocus_result.Mocus.pruned_mass +. below_cutoff_mass
      +. solver_error_total
  in
  let budget =
    {
      pruned_mass = mocus_result.Mocus.pruned_mass;
      below_cutoff_mass;
      solver_error_total;
      rare_event_slack = Float.max 0.0 (total -. lower);
      lower;
      upper;
      vacuous;
    }
  in
  let degradation =
    let count r =
      List.length (List.filter (fun info -> info.degraded = Some r) infos)
    in
    {
      generation_limit = mocus_result.Mocus.limit_hit;
      degraded_cutsets =
        List.filter_map
          (fun r ->
            let n = count r in
            if n > 0 then Some (r, n) else None)
          [
            Sdft_util.Guard.Deadline;
            Sdft_util.Guard.Mem_limit;
            Sdft_util.Guard.State_limit;
            Sdft_util.Guard.Worker_crash;
          ];
    }
  in
  Trace.add_attr ~sink "total" (Trace.Float total);
  Trace.add_attr ~sink "lower" (Trace.Float budget.lower);
  Trace.add_attr ~sink "upper" (Trace.Float budget.upper);
  {
    total;
    cutoff = options.cutoff;
    engine_used;
    cutsets = sorted;
    n_cutsets = List.length infos;
    n_dynamic_cutsets =
      List.length (List.filter (fun info -> info.n_dynamic > 0) infos);
    n_fallbacks;
    budget;
    degradation;
    mcs_generation_seconds;
    quantification_seconds;
    generation = mocus_result;
    translation;
  })

let static_rare_event ?(cutoff = 1e-15) ?(engine = Mocus_sound) tree =
  let result = generate_cutsets ~cutoff engine tree in
  let relevant =
    List.filter
      (fun c -> Cutset.probability tree c > cutoff)
      result.Mocus.cutsets
  in
  (Cutset.rare_event_approximation tree relevant, List.length relevant)

let dynamic_histogram result =
  let h = Sdft_util.Histogram.create () in
  List.iter
    (fun info -> Sdft_util.Histogram.observe h info.n_dynamic)
    result.cutsets;
  h

let mean_added_dynamic result =
  let dynamic = List.filter (fun info -> info.n_dynamic > 0) result.cutsets in
  match dynamic with
  | [] -> 0.0
  | _ ->
    let added =
      List.fold_left (fun acc info -> acc + info.n_added_dynamic) 0 dynamic
    in
    float_of_int added /. float_of_int (List.length dynamic)

(* [total] sums only the cutsets above the cutoff, so the importance sums
   must apply the same filter — otherwise the numerator can include mass
   the denominator lacks and the fraction exceeds 1. *)
let relevant_cutsets result =
  List.filter (fun info -> info.probability > result.cutoff) result.cutsets

let fussell_vesely result a =
  if result.total <= 0.0 then 0.0
  else begin
    let acc = Sdft_util.Kahan.create () in
    List.iter
      (fun info ->
        if Sdft_util.Int_set.mem a info.cutset then
          Sdft_util.Kahan.add acc info.probability)
      (relevant_cutsets result);
    Sdft_util.Kahan.total acc /. result.total
  end

let rank_by_fussell_vesely result ~n_basics =
  let score = Array.make n_basics 0.0 in
  List.iter
    (fun info ->
      Sdft_util.Int_set.iter
        (fun a -> score.(a) <- score.(a) +. info.probability)
        info.cutset)
    (relevant_cutsets result);
  List.sort
    (fun a b ->
      let c = compare score.(b) score.(a) in
      if c <> 0 then c else compare a b)
    (List.init n_basics Fun.id)

type sweep_point = {
  sweep_options : options;
  sweep_result : result;
  cache_hits : int;
  cache_misses : int;
}

let sweep ?cache ?obs sd option_sets =
  let cache = match cache with Some c -> c | None -> Quant_cache.create () in
  let points =
    List.map
      (fun opts ->
        let h0 = Quant_cache.hits cache and m0 = Quant_cache.misses cache in
        let r = analyze ~options:opts ~cache ?obs sd in
        {
          sweep_options = opts;
          sweep_result = r;
          cache_hits = Quant_cache.hits cache - h0;
          cache_misses = Quant_cache.misses cache - m0;
        })
      option_sets
  in
  (points, cache)

let degradation_description r =
  let d = r.degradation in
  String.concat "; "
    ((match d.generation_limit with
     | Some reason ->
       [
         "cutset generation stopped early ("
         ^ Sdft_util.Guard.reason_to_string reason
         ^ ")";
       ]
     | None -> [])
    @ List.map
        (fun (reason, n) ->
          Printf.sprintf "%d cutset%s fell back to the worst-case bound (%s)"
            n
            (if n = 1 then "" else "s")
            (Sdft_util.Guard.reason_to_string reason))
        d.degraded_cutsets)

(* ------------------------------------------------------------------ *)
(* Checkpointed sweeps. *)

(* Canonical serialization of everything in [options] that can influence
   the result bits: numerical parameters, engine, rel-rule and the resource
   limits (which steer the degradation ladder). [domains] is deliberately
   excluded — the work partition never changes the result, only the wall
   time — so a resume may use a different [-j] than the interrupted run. *)
let options_fingerprint o =
  Printf.sprintf "h=%h;c=%h;e=%h;s=%d;o=%s;eng=%s;rr=%s;d=%s;m=%s"
    o.horizon o.cutoff o.transient_epsilon o.max_product_states
    (match o.max_cutset_order with None -> "-" | Some k -> string_of_int k)
    (engine_name o.engine)
    (match o.rel_rule with
    | Cutset_model.Paper -> "paper"
    | Cutset_model.All_events -> "all")
    (match o.deadline with None -> "-" | Some d -> Printf.sprintf "%h" d)
    (match o.mem_limit_mb with None -> "-" | Some m -> string_of_int m)

let point_key sd options =
  Digest.to_hex
    (Digest.string
       (Quant_cache.fingerprint sd ^ "\x00" ^ options_fingerprint options))

type sweep_item =
  | Sweep_run of sweep_point
  | Sweep_skipped of Checkpoint.point

let checkpoint_point key opts r =
  {
    Checkpoint.pt_key = key;
    pt_horizon = opts.horizon;
    pt_total = r.total;
    pt_lower = r.budget.lower;
    pt_upper = r.budget.upper;
    pt_vacuous = r.budget.vacuous;
    pt_n_cutsets = r.n_cutsets;
    pt_n_dynamic = r.n_dynamic_cutsets;
    pt_degraded =
      (if degraded r then Some (degradation_description r) else None);
  }

let sweep_checkpointed ?cache ?(obs = Obs.default) ~journal ~resume
    ?on_point sd option_sets =
  let cache = match cache with Some c -> c | None -> Quant_cache.create () in
  (* Warm-start from the journal's item records: points the crash caught
     mid-flight re-solve only their unfinished cutsets, and finished work
     replays bit-identically from the cache (cached and fresh values are
     indistinguishable by the cache's contract). *)
  if resume then ignore (Quant_cache.seed cache (Checkpoint.entries journal));
  (* Journal every fresh solve as it lands — the crash-safety feed. *)
  Quant_cache.set_on_store cache (fun key e ->
      Checkpoint.record_entry journal key e);
  let plan = List.map (fun o -> (o, point_key sd o)) option_sets in
  let skipped =
    if resume then
      List.length
        (List.filter (fun (_, k) -> Checkpoint.find_point journal k <> None)
           plan)
    else 0
  in
  let total_run = List.length plan - skipped in
  let n_done = ref 0 in
  let items =
    List.map
      (fun (opts, key) ->
        let item =
          match
            if resume then Checkpoint.find_point journal key else None
          with
          | Some p -> Sweep_skipped p
          | None ->
            (* Re-assert the sweep-level phase between points: the ETA
               prices only the [total_run] points that actually run, with
               the checkpoint-skipped count surfaced separately. *)
            Obs.begin_phase obs "sweep" ~total:total_run ~skipped
              ~n_done:!n_done ();
            let h0 = Quant_cache.hits cache
            and m0 = Quant_cache.misses cache in
            let r = analyze ~options:opts ~cache ~obs sd in
            incr n_done;
            Checkpoint.record_point journal (checkpoint_point key opts r);
            Sweep_run
              {
                sweep_options = opts;
                sweep_result = r;
                cache_hits = Quant_cache.hits cache - h0;
                cache_misses = Quant_cache.misses cache - m0;
              }
        in
        (match on_point with Some f -> f item | None -> ());
        item)
      plan
  in
  (items, cache)

let pp_summary ppf r =
  Format.fprintf ppf "@[<v>";
  if degraded r then
    Format.fprintf ppf "DEGRADED: %s@," (degradation_description r);
  Format.fprintf ppf
    "failure frequency (rare-event approx): %.3e@,\
     certified interval: [%.3e, %.3e]%s@,\
     minimal cutsets: %d (%d with dynamic events), engine: %s@,\
     MCS generation: %a, quantification: %a@]"
    r.total r.budget.lower r.budget.upper
    (if r.budget.vacuous then "  (vacuous: coverage not certified)" else "")
    r.n_cutsets r.n_dynamic_cutsets (engine_name r.engine_used)
    Sdft_util.Timer.pp_duration r.mcs_generation_seconds
    Sdft_util.Timer.pp_duration r.quantification_seconds

let pp_budget ppf r =
  let b = r.budget in
  Format.fprintf ppf
    "@[<v>error budget:@,\
     \  pruned mass (generation):     %.3e%s@,\
     \  below-cutoff cutset mass:     %.3e@,\
     \  solver error (uniformization): %.3e@,\
     \  rare-event slack (over-approx): %.3e@,\
     \  certified interval: [%.3e, %.3e]%s@]"
    b.pruned_mass
    (match r.engine_used with
    | Zdd_engine -> "  (exact)"
    | Mocus_sound | Mocus_aggressive -> "  (upper bound)"
    | Bdd_engine | Auto -> "")
    b.below_cutoff_mass b.solver_error_total b.rare_event_slack
    b.lower b.upper
    (if b.vacuous then "  VACUOUS (truncated generation or uncounted pruning)"
     else "")

type sim_check = {
  sim_lower : float;
  sim_upper : float;
  budget_lower : float;
  budget_upper : float;
  overlaps : bool;
  gap : float;
  vacuous_budget : bool;
}

let verify_sim result ~sim_ci:(sim_lower, sim_upper) =
  if sim_lower > sim_upper then
    invalid_arg "Sdft_analysis.verify_sim: empty simulation interval";
  let b = result.budget in
  let overlaps = sim_lower <= b.upper && b.lower <= sim_upper in
  let gap =
    if overlaps then 0.0
    else if sim_lower > b.upper then sim_lower -. b.upper
    else b.lower -. sim_upper
  in
  {
    sim_lower;
    sim_upper;
    budget_lower = b.lower;
    budget_upper = b.upper;
    overlaps;
    gap;
    vacuous_budget = b.vacuous;
  }

let pp_sim_check ppf c =
  Format.fprintf ppf
    "@[<v>simulation CI: [%.3e, %.3e]@,\
     analytic certified interval: [%.3e, %.3e]%s@,\
     verdict: %s@]"
    c.sim_lower c.sim_upper c.budget_lower c.budget_upper
    (if c.vacuous_budget then "  (vacuous)" else "")
    (if c.overlaps then "OVERLAP (simulation consistent with the analysis)"
     else Printf.sprintf "DISJOINT (gap %.3e) — the estimators disagree" c.gap)

(** Saved result manifests and differential re-analysis.

    [analyze --save M.json] captures an analysis run as a JSON manifest:
    the run's parameters, its total and certified interval, every cutset
    with its quantification record (via the bit-exact
    {!Cutset_model.quantification_to_json} codec), and a snapshot of the
    quantification-cache entries the run produced. A later
    [analyze --diff M.json] seeds its cache from that snapshot — cutsets
    whose canonical fingerprints are unchanged hit and cost nothing, only
    cutsets affected by the model edit re-solve — and reports which
    cutsets moved the top-event certified interval and by how much.

    Manifests are stamped with {!Quant_cache.version_stamp}; a manifest
    written by a different solver build still diffs (the probability
    comparison stays meaningful) but its cache entries are not trusted for
    seeding (see {!stamp_matches}). *)

type cutset_record = {
  events : string list;  (** sorted basic-event names of the cutset *)
  q : Cutset_model.quantification;
}

type t = {
  stamp : string;  (** {!Quant_cache.version_stamp} of the writing build *)
  engine : string;  (** CLI spelling of the resolved engine *)
  horizon : float;
  cutoff : float;
  epsilon : float;
  max_states : int;
  total : float;
  lower : float;
  upper : float;  (** the certified interval of the saved run *)
  cutsets : cutset_record list;
  cache_entries : (string * Quant_cache.entry) list;
      (** warm-start payload: the cache snapshot of the saved run *)
}

val of_result :
  ?cache:Quant_cache.t ->
  Sdft.t ->
  Sdft_analysis.options ->
  Sdft_analysis.result ->
  t
(** Capture a run. [cache] (the cache the run used) supplies the
    warm-start entries; without it the manifest still diffs but cannot
    warm-start anything. *)

val stamp_matches : t -> bool
(** The manifest was written by this solver build, so its cache entries
    may seed a {!Quant_cache.t}. *)

val save : string -> t -> unit
(** Write as JSON. Floats are emitted with 17 significant digits and
    round-trip bit-exactly. @raise Sys_error on IO failure. *)

val load : string -> (t, string) result
(** Parse a saved manifest; the error names the first offense. *)

val to_json : t -> string
val of_json : Sdft_util.Json.value -> (t, string) result

(** {1 Differential comparison} *)

type change =
  | Moved of float * float  (** old and new [p~(C)]; bitwise different *)
  | Appeared of float  (** cutset only in the new run *)
  | Disappeared of float  (** cutset only in the saved run *)

type diff_entry = {
  d_events : string list;
  d_change : change;
  d_requantified : bool;
      (** the new run re-solved this cutset's product chain (a dynamic
          cutset that missed the warm cache); [false] for cutsets that only
          exist on the old side *)
}

type diff = {
  entries : diff_entry list;
      (** changed cutsets only, by decreasing absolute probability delta *)
  n_unchanged : int;  (** matched cutsets with bit-identical probability *)
  n_requantified : int;
      (** dynamic cutsets of the new run that missed the warm cache — with
          an intact warm-start this counts exactly the cutsets affected by
          the model edit *)
  old_total : float;
  new_total : float;
  old_interval : float * float;
  new_interval : float * float;
}

val diff : t -> Sdft.t -> Sdft_analysis.result -> diff
(** Match the saved cutsets against a fresh result by sorted
    basic-event-name sets. Probabilities are compared bitwise — the codec
    round-trips doubles exactly, so an unchanged cutset served from the
    warm cache shows up as exactly unchanged. *)

val pp_diff : Format.formatter -> diff -> unit
(** The [analyze --diff] report: old/new totals and intervals, then each
    changed cutset with its move. *)

module Int_set = Sdft_util.Int_set

type t = {
  model : Sdft.t option;
  static_multiplier : float;
  impossible : bool;
  n_dynamic_in_cutset : int;
  n_added_dynamic : int;
  n_added_static : int;
  mutable fp_digest : string option;
      (* memoized fixed-width digest of the canonical sub-model
         fingerprint, filled in by the first Quant_cache lookup *)
}

type trigger_result =
  [ `Never | `Always | `Sets of Int_set.t list ]

type context = {
  ctx_sd : Sdft.t;
  class_memo : (int, Sdft_classify.gate_class) Hashtbl.t;
  tsets_memo : (int * Int_set.t * Int_set.t, trigger_result) Hashtbl.t;
}

let context sd =
  { ctx_sd = sd; class_memo = Hashtbl.create 16; tsets_memo = Hashtbl.create 64 }

let classify_cached ?obs ctx g =
  match Hashtbl.find_opt ctx.class_memo g with
  | Some c -> c
  | None ->
    let c = Sdft_classify.classify ?obs ctx.ctx_sd g in
    Hashtbl.add ctx.class_memo g c;
    c

(* Minimal subsets A_1..A_k of [rel] that, together with the assumed-failed
   static events, fail the gate [g]: compile the gate's structure function
   with everything outside [rel] fixed (statics of C to true, the rest to
   false) and extract the minimal solutions. *)
let trigger_sets_uncached ?guard sd ~gate ~rel ~assumed_true : trigger_result =
  let assume b =
    if Int_set.mem b assumed_true then Some true
    else if Int_set.mem b rel then None
    else Some false
  in
  let bm, root = Bdd.of_fault_tree_gate ~assume ?guard (Sdft.tree sd) gate in
  if root = Bdd.zero then `Never
  else if root = Bdd.one then `Always
  else `Sets (Minsol.minimal_cutsets bm root)

let trigger_sets ?guard ctx ~gate ~rel ~assumed_true =
  (* Only the assumed statics below the gate influence the result; keying
     on their restriction makes cutsets differing elsewhere share entries. *)
  let relevant_true =
    Int_set.inter assumed_true (Sdft.static_descendants ctx.ctx_sd gate)
  in
  let key = (gate, rel, relevant_true) in
  match Hashtbl.find_opt ctx.tsets_memo key with
  | Some r -> r
  | None ->
    (* A guard trip propagates before the memo entry is stored, so a limit
       can never poison the table with a partial result. *)
    let r =
      trigger_sets_uncached ?guard ctx.ctx_sd ~gate ~rel
        ~assumed_true:relevant_true
    in
    Hashtbl.add ctx.tsets_memo key r;
    r

type rel_rule =
  | Paper
  | All_events

let build ?context:ctx ?(rel_rule = Paper) ?guard ?obs sd cutset =
  let ctx = match ctx with Some c -> c | None -> context sd in
  let tree = Sdft.tree sd in
  let c_dyn, c_stat =
    List.partition (Sdft.is_dynamic sd) (Int_set.to_list cutset)
  in
  let c_stat_set = Int_set.of_list c_stat in
  let static_multiplier =
    List.fold_left (fun acc b -> acc *. Fault_tree.prob tree b) 1.0 c_stat
  in
  let n_dynamic_in_cutset = List.length c_dyn in
  if c_dyn = [] then
    {
      model = None;
      static_multiplier;
      impossible = false;
      n_dynamic_in_cutset;
      n_added_dynamic = 0;
      n_added_static = 0;
      fp_digest = None;
    }
  else begin
    let builder = Fault_tree.Builder.create () in
    let leaf_memo : (int, Fault_tree.node) Hashtbl.t = Hashtbl.create 16 in
    let dynamic_assoc = ref [] in
    let trigger_assoc = ref [] in
    let queue = Queue.create () in
    let n_added_dynamic = ref 0 and n_added_static = ref 0 in
    let impossible = ref false in
    let constant_leaf = Hashtbl.create 2 in
    let constant name prob =
      match Hashtbl.find_opt constant_leaf name with
      | Some node -> node
      | None ->
        let node = Fault_tree.Builder.basic builder ~prob name in
        Hashtbl.add constant_leaf name node;
        node
    in
    let add_leaf ~from_cutset b =
      match Hashtbl.find_opt leaf_memo b with
      | Some node -> node
      | None ->
        let name = Fault_tree.basic_name tree b in
        let is_dyn = Sdft.is_dynamic sd b in
        let prob = if is_dyn then 0.0 else Fault_tree.prob tree b in
        let node = Fault_tree.Builder.basic builder ~prob name in
        Hashtbl.add leaf_memo b node;
        if is_dyn then begin
          dynamic_assoc := (name, Sdft.dbe sd b) :: !dynamic_assoc;
          if not from_cutset then incr n_added_dynamic;
          if Sdft.trigger_of sd b <> None then
            Queue.add (b, from_cutset) queue
        end
        else if not from_cutset then incr n_added_static;
        node
    in
    let cutset_leaves = List.map (add_leaf ~from_cutset:true) c_dyn in
    (* One triggering gate is modeled once and shared by all events it
       triggers (step 3 of the construction). *)
    let modeled_gate : (int, string) Hashtbl.t = Hashtbl.create 8 in
    let fresh = ref 0 in
    let model_trigger_logic b first_round =
      let g =
        match Sdft.trigger_of sd b with
        | Some g -> g
        | None -> assert false (* only triggered events are enqueued *)
      in
      let basic_nm = Fault_tree.basic_name tree b in
      match Hashtbl.find_opt modeled_gate g with
      | Some gate_nm -> trigger_assoc := (gate_nm, basic_nm) :: !trigger_assoc
      | None ->
        let general_rel () =
          Int_set.diff (Fault_tree.descendant_basics tree g) c_stat_set
        in
        let rel =
          if not first_round then general_rel ()
          else
            match rel_rule with
            | All_events -> general_rel ()
            | Paper -> (
              match classify_cached ?obs ctx g with
              | Sdft_classify.Static_branching ->
                Int_set.inter (Sdft.dynamic_descendants sd g) cutset
              | Sdft_classify.Static_joins _ -> Sdft.dynamic_descendants sd g
              | Sdft_classify.General -> general_rel ())
        in
        let gate_nm = Printf.sprintf "#trig:%s" (Fault_tree.gate_name tree g) in
        let or_inputs =
          match trigger_sets ?guard ctx ~gate:g ~rel ~assumed_true:c_stat_set with
          | `Never ->
            (* The event can never be switched on, hence never fail. *)
            if first_round then impossible := true;
            [ constant "#never" 0.0 ]
          | `Always -> [ constant "#always" 1.0 ]
          | `Sets sets ->
            List.map
              (fun a ->
                let leaves =
                  List.map (add_leaf ~from_cutset:false) (Int_set.to_list a)
                in
                match leaves with
                | [ single ] -> single
                | several ->
                  incr fresh;
                  Fault_tree.Builder.gate builder
                    (Printf.sprintf "%s/and%d" gate_nm !fresh)
                    Fault_tree.And several)
              sets
        in
        let _node =
          Fault_tree.Builder.gate builder gate_nm Fault_tree.Or or_inputs
        in
        Hashtbl.add modeled_gate g gate_nm;
        trigger_assoc := (gate_nm, basic_nm) :: !trigger_assoc
    in
    while not (Queue.is_empty queue) && not !impossible do
      let b, first_round = Queue.pop queue in
      model_trigger_logic b first_round
    done;
    if !impossible then
      {
        model = None;
        static_multiplier;
        impossible = true;
        n_dynamic_in_cutset;
        n_added_dynamic = !n_added_dynamic;
        n_added_static = !n_added_static;
        fp_digest = None;
      }
    else begin
      let top =
        Fault_tree.Builder.gate builder "#cutset" Fault_tree.And cutset_leaves
      in
      let tree_c = Fault_tree.Builder.build builder ~top in
      let model =
        Sdft.make tree_c ~dynamic:!dynamic_assoc ~triggers:!trigger_assoc
      in
      {
        model = Some model;
        static_multiplier;
        impossible = false;
        n_dynamic_in_cutset;
        n_added_dynamic = !n_added_dynamic;
        n_added_static = !n_added_static;
        fp_digest = None;
      }
    end
  end

type quantification = {
  probability : float;
  product_states : int;
  product_transitions : int;
  solver_steps : int;
  solver_error : float;
  from_cache : bool;
  seconds : float;
}

let no_solve ~probability t0 =
  {
    probability;
    product_states = 0;
    product_transitions = 0;
    solver_steps = 0;
    solver_error = 0.0;
    from_cache = false;
    seconds = Sdft_util.Timer.elapsed_s t0;
  }

let quantify ?epsilon ?max_states ?guard ?workspace ?obs t ~horizon =
  let t0 = Sdft_util.Timer.start () in
  if t.impossible then no_solve ~probability:0.0 t0
  else
    match t.model with
    | None -> no_solve ~probability:t.static_multiplier t0
    | Some sd_c ->
      (* Materialize a workspace even when the caller has none so that the
         solver's step count can be read back for provenance. *)
      let ws =
        match workspace with Some w -> w | None -> Transient.workspace ()
      in
      let built = Sdft_product.build ?max_states ?guard ?obs sd_c in
      let p =
        Sdft_product.unreliability ?epsilon ?guard ~workspace:ws ?obs built
          ~horizon
      in
      let eps = Option.value epsilon ~default:1e-12 in
      {
        probability = p *. t.static_multiplier;
        product_states = built.n_states;
        product_transitions = Ctmc.n_transitions built.Sdft_product.chain;
        solver_steps = Transient.last_steps ws;
        (* The transient solve carries a truncation error of at most [eps];
           the static multiplier scales it down with the probability. *)
        solver_error = eps *. t.static_multiplier;
        from_cache = false;
        seconds = Sdft_util.Timer.elapsed_s t0;
      }

(* JSON codec for quantification records — the per-cutset payload of a
   saved result manifest. Floats go through Json.add_float (17 significant
   digits), which round-trips every finite double bit-exactly. *)

module Json = Sdft_util.Json

let add_quantification_json buf q =
  Buffer.add_string buf "{\"probability\": ";
  Json.add_float buf q.probability;
  Buffer.add_string buf ", \"states\": ";
  Buffer.add_string buf (string_of_int q.product_states);
  Buffer.add_string buf ", \"transitions\": ";
  Buffer.add_string buf (string_of_int q.product_transitions);
  Buffer.add_string buf ", \"steps\": ";
  Buffer.add_string buf (string_of_int q.solver_steps);
  Buffer.add_string buf ", \"solver_error\": ";
  Json.add_float buf q.solver_error;
  Buffer.add_char buf '}'

let quantification_to_json q =
  let buf = Buffer.create 128 in
  add_quantification_json buf q;
  Buffer.contents buf

let quantification_of_json v =
  let num name = Option.bind (Json.member name v) Json.to_float in
  let int name = Option.bind (Json.member name v) Json.to_int in
  match
    (num "probability", int "states", int "transitions", int "steps",
     num "solver_error")
  with
  | Some probability, Some product_states, Some product_transitions,
    Some solver_steps, Some solver_error ->
    Ok
      {
        probability;
        product_states;
        product_transitions;
        solver_steps;
        solver_error;
        (* Serialization provenance: the record came from an earlier run's
           manifest, not from a live solve of this one. *)
        from_cache = true;
        seconds = 0.0;
      }
  | _ -> Error "quantification record is missing a field"

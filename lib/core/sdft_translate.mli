(** Translation of an SD fault tree into a static fault tree with the same
    minimal cutsets (Section V-B of the paper).

    Two dynamic features are compiled away: every trigger edge [g --> b]
    becomes an AND gate with inputs [b] and [g] (the event can only
    contribute to a failure when its trigger has failed), and every dynamic
    basic event becomes a static one carrying its worst-case failure
    probability within the horizon (Section V-B2). The cutoff applied to the
    translated tree is then conservative for the SD tree: inequality (1) of
    the paper. *)

type result = {
  static_tree : Fault_tree.t;
      (** Basic events keep their indices and names; each trigger edge adds
          one AND gate named ["<basic>@trig"]. *)
  worst_case : float array;
      (** Per basic event: the probability used in [static_tree] (the
          original probability for static events, the worst-case failure
          probability for dynamic ones). *)
}

val translate :
  ?epsilon:float -> ?obs:Sdft_util.Obs.t -> Sdft.t -> horizon:float -> result
(** [epsilon] is the transient-analysis precision for the worst-case
    probabilities (default 1e-12); [obs] the observability context the
    per-event transient solves report into (default {!Sdft_util.Obs.default}). *)

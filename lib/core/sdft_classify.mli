(** Classification of triggering gates (Section V-A of the paper).

    The cost of quantifying a minimal cutset depends on the shape of the
    subtrees of its triggering gates:

    - {e static branching}: every OR gate in the subtree has at most one
      dynamic child — only the dynamic events of the cutset itself matter;
    - {e static joins}: every AND gate in the subtree has no dynamic child —
      all dynamic events of the subtree matter; with {e uniform triggering}
      (all dynamic events under the gate are triggered by one common gate)
      chains of such systems stay cheap;
    - {e general}: anything else — all basic events of the subtree may
      matter.

    The classification is purely syntactic, so it can be computed up front
    and "indicated to the user" as a prediction of analysis cost. *)

type gate_class =
  | Static_branching
  | Static_joins of { uniform : bool }
  | General

val node_is_dynamic : Sdft.t -> Fault_tree.node -> bool
(** A basic event is dynamic if marked so; a gate is dynamic if its subtree
    contains a dynamic basic event. *)

val has_static_branching : Sdft.t -> int -> bool

val has_static_joins : Sdft.t -> int -> bool

val has_uniform_triggering : Sdft.t -> int -> bool
(** All dynamic basic events under the gate are triggered and share the same
    triggering gate. *)

val classify : ?obs:Sdft_util.Obs.t -> Sdft.t -> int -> gate_class
(** Class of a gate: [Static_branching] when that condition holds (it is
    checked first because it yields the cheapest quantification), otherwise
    [Static_joins] when that holds, otherwise [General]. [obs] (default
    {!Sdft_util.Obs.default}) receives the [classify.gate] trace span. *)

type report = {
  per_trigger_gate : (int * gate_class) list;
  n_static_branching : int;
  n_static_joins_uniform : int;
  n_static_joins_other : int;
  n_general : int;
}

val report : ?obs:Sdft_util.Obs.t -> Sdft.t -> report
(** Classify every triggering gate of the model. *)

val pp_class : Format.formatter -> gate_class -> unit

val pp_report : Sdft.t -> Format.formatter -> report -> unit

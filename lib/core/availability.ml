(* Strongly-connected check by forward and backward reachability from a
   seed: the sub-chain is irreducible iff every reachable state can also
   reach the seed. *)
let reachable_set chain seeds =
  let n = Ctmc.n_states chain in
  let seen = Array.make n false in
  let rec walk s =
    if not seen.(s) then begin
      seen.(s) <- true;
      Array.iter (fun (dst, _) -> walk dst) (Ctmc.outgoing chain s)
    end
  in
  List.iter walk seeds;
  seen

let event_unavailability d =
  let chain = Dbe.chain d in
  let seeds = List.map fst (Dbe.initial_on d) in
  let reachable = reachable_set chain seeds in
  (* Restrict to the reachable sub-chain. *)
  let n = Ctmc.n_states chain in
  let index = Array.make n (-1) in
  let count = ref 0 in
  for s = 0 to n - 1 do
    if reachable.(s) then begin
      index.(s) <- !count;
      incr count
    end
  done;
  let transitions = ref [] in
  Ctmc.iter_transitions chain (fun src dst rate ->
      if reachable.(src) && reachable.(dst) then
        transitions := (index.(src), index.(dst), rate) :: !transitions);
  let sub = Ctmc.make ~n_states:!count ~transitions:!transitions in
  (* Irreducibility: from state 0 of the sub-chain everything is reachable
     (true by construction from the seeds if the seeds communicate) and
     everything reaches back. Check with reversed edges. *)
  let reversed =
    Ctmc.make ~n_states:!count
      ~transitions:(List.map (fun (a, b, r) -> (b, a, r)) !transitions)
  in
  let seed_sub = List.filter_map (fun s -> if index.(s) >= 0 then Some index.(s) else None) seeds in
  let forward = reachable_set sub seed_sub in
  let backward = reachable_set reversed seed_sub in
  let irreducible =
    Array.for_all Fun.id forward && Array.for_all Fun.id backward
  in
  if not irreducible then None
  else
    match
      Steady_state.unavailability sub ~failed:(fun s_sub ->
          (* map back: find original state with this index *)
          let rec find s = if s >= n then false
            else if index.(s) = s_sub then Dbe.is_failed d s
            else find (s + 1)
          in
          find 0)
    with
    | Some q -> Some q
    | None -> None

type result = {
  unavailability : float;
  per_event : (int * float) list;
  n_cutsets : int;
}

let analyze ?(cutoff = 1e-15) ?(engine = Sdft_analysis.Mocus_sound) ?guard
    ?obs sd =
  let tree = Sdft.tree sd in
  let nb = Fault_tree.n_basics tree in
  let rec per_event b acc =
    if b >= nb then Some (List.rev acc)
    else if Sdft.is_dynamic sd b then
      match event_unavailability (Sdft.dbe sd b) with
      | Some q -> per_event (b + 1) ((b, q) :: acc)
      | None -> None
    else per_event (b + 1) ((b, Fault_tree.prob tree b) :: acc)
  in
  match per_event 0 [] with
  | None -> None
  | Some per_event ->
    let q = Array.of_list (List.map snd per_event) in
    (* Generate cutsets on the translated tree (same cutsets as the SD
       model); quantify with steady-state unavailabilities. *)
    let translation = Sdft_translate.translate ?obs sd ~horizon:24.0 in
    let generation =
      Sdft_analysis.generate_cutsets ~cutoff ?guard ?obs engine
        translation.Sdft_translate.static_tree
    in
    let acc = Sdft_util.Kahan.create () in
    List.iter
      (fun c ->
        let p = Sdft_util.Int_set.fold (fun b m -> m *. q.(b)) c 1.0 in
        Sdft_util.Kahan.add acc p)
      generation.Mocus.cutsets;
    Some
      {
        unavailability = Sdft_util.Kahan.total acc;
        per_event =
          List.filter (fun (b, _) -> Sdft.is_dynamic sd b) per_event;
        n_cutsets = List.length generation.Mocus.cutsets;
      }

module Int_set = Sdft_util.Int_set

type gate_class =
  | Static_branching
  | Static_joins of { uniform : bool }
  | General

let node_is_dynamic sd = function
  | Fault_tree.B b -> Sdft.is_dynamic sd b
  | Fault_tree.G g -> Sdft.is_gate_dynamic sd g

(* Iterate over all gates in the subtree of [g], including [g] itself. *)
let iter_subtree_gates sd g f =
  let tree = Sdft.tree sd in
  let seen = Hashtbl.create 16 in
  let rec walk g =
    if not (Hashtbl.mem seen g) then begin
      Hashtbl.add seen g ();
      f g;
      Array.iter
        (function
          | Fault_tree.B _ -> ()
          | Fault_tree.G g' -> walk g')
        (Fault_tree.gate_inputs tree g)
    end
  in
  walk g

let has_static_branching sd g =
  let tree = Sdft.tree sd in
  let ok = ref true in
  iter_subtree_gates sd g (fun g' ->
      match Fault_tree.gate_kind tree g' with
      | Fault_tree.Or ->
        let dynamic_children = ref 0 in
        Array.iter
          (fun n -> if node_is_dynamic sd n then incr dynamic_children)
          (Fault_tree.gate_inputs tree g');
        if !dynamic_children > 1 then ok := false
      | Fault_tree.And -> ()
      | Fault_tree.Atleast _ ->
        (* A voting gate both joins and branches; it only preserves static
           branching when none of its children is dynamic. *)
        if
          Array.exists (node_is_dynamic sd) (Fault_tree.gate_inputs tree g')
        then ok := false);
  !ok

let has_static_joins sd g =
  let tree = Sdft.tree sd in
  let ok = ref true in
  iter_subtree_gates sd g (fun g' ->
      match Fault_tree.gate_kind tree g' with
      | Fault_tree.And | Fault_tree.Atleast _ ->
        if
          Array.exists (node_is_dynamic sd) (Fault_tree.gate_inputs tree g')
        then ok := false
      | Fault_tree.Or -> ());
  !ok

let has_uniform_triggering sd g =
  let dyn = Sdft.dynamic_descendants sd g in
  Int_set.cardinal dyn > 0
  &&
  let triggers =
    List.map (fun b -> Sdft.trigger_of sd b) (Int_set.to_list dyn)
  in
  match triggers with
  | [] -> false
  | first :: rest -> first <> None && List.for_all (fun t -> t = first) rest

let classify ?(obs = Sdft_util.Obs.default) sd g =
  Sdft_util.Trace.with_span ~sink:obs.Sdft_util.Obs.trace "classify.gate"
    ~attrs:[ ("gate", Sdft_util.Trace.Int g) ]
    (fun () ->
      if has_static_branching sd g then Static_branching
      else if has_static_joins sd g then
        Static_joins { uniform = has_uniform_triggering sd g }
      else General)

type report = {
  per_trigger_gate : (int * gate_class) list;
  n_static_branching : int;
  n_static_joins_uniform : int;
  n_static_joins_other : int;
  n_general : int;
}

let report ?obs sd =
  let gates =
    List.sort_uniq compare (List.map fst (Sdft.trigger_edges sd))
  in
  let per_trigger_gate = List.map (fun g -> (g, classify ?obs sd g)) gates in
  let count pred = List.length (List.filter (fun (_, c) -> pred c) per_trigger_gate) in
  {
    per_trigger_gate;
    n_static_branching = count (fun c -> c = Static_branching);
    n_static_joins_uniform = count (fun c -> c = Static_joins { uniform = true });
    n_static_joins_other = count (fun c -> c = Static_joins { uniform = false });
    n_general = count (fun c -> c = General);
  }

let pp_class ppf = function
  | Static_branching -> Format.pp_print_string ppf "static branching"
  | Static_joins { uniform = true } ->
    Format.pp_print_string ppf "static joins (uniform triggering)"
  | Static_joins { uniform = false } ->
    Format.pp_print_string ppf "static joins"
  | General -> Format.pp_print_string ppf "general"

let pp_report sd ppf r =
  Format.fprintf ppf
    "@[<v>trigger gates: %d static branching, %d static joins (uniform), %d \
     static joins (non-uniform), %d general@,"
    r.n_static_branching r.n_static_joins_uniform r.n_static_joins_other
    r.n_general;
  List.iter
    (fun (g, c) ->
      Format.fprintf ppf "  %s: %a@,"
        (Fault_tree.gate_name (Sdft.tree sd) g)
        pp_class c)
    r.per_trigger_gate;
  Format.fprintf ppf "@]"

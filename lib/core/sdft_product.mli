(** The product Markov chain semantics of an SD fault tree
    (Section III-C of the paper).

    Every basic event contributes a component: dynamic events their
    (triggered) CTMC, static events a two-state zero-rate chain whose initial
    distribution is the Bernoulli failure. Product states evolve by
    interleaving component transitions; after each evolution the state is
    {e updated} to a consistent one by switching triggered events on/off
    until every trigger gate's failure status agrees with its events' modes
    (the update closure terminates because the trigger structure is
    acyclic). The failure probability within a horizon is the probability of
    reaching a product state that fails the top gate.

    This module is used in two roles: quantifying the small per-cutset
    models [FT_C] (the paper's workhorse), and as the exact full-state-space
    baseline that the paper argues is infeasible for industrial trees — it
    is exponential in the number of basic events, so keep it to small
    models. *)

type built = {
  chain : Ctmc.t;
  init : (int * float) list;
  failed : bool array;  (** per product state: does it fail the top gate? *)
  participants : int array;  (** basic-event indices, in component order *)
  n_states : int;
}

exception Too_many_states of int
(** Raised when exploration exceeds [max_states]. *)

val build :
  ?max_states:int ->
  ?assumed_failed:Sdft_util.Int_set.t ->
  ?generic:bool ->
  ?guard:Sdft_util.Guard.t ->
  ?obs:Sdft_util.Obs.t ->
  Sdft.t ->
  built
(** [build sd] explores the reachable consistent product states from the
    initial distribution. [assumed_failed] names static basic events that
    are conditioned to be failed — they leave the product and count as
    failed in every gate evaluation (used by the cutset models, where the
    static events of the cutset are factored out). [max_states] defaults to
    1_000_000.

    States are packed into single integers (mixed-radix) whenever the radix
    product fits in an OCaml int, which makes exploration allocation-light;
    [generic:true] forces the array-keyed fallback path instead (used by
    tests and benchmarks — both paths produce bit-identical results).

    [guard] (default {!Sdft_util.Guard.none}) is checkpointed once per
    explored state; on a trip {!Sdft_util.Guard.Limit_hit} propagates to
    the caller (unlike a MOCUS run there is no sound partial result — a
    half-explored chain would silently under-count failure paths). The
    [product.explore] failpoint site of [obs] (default
    {!Sdft_util.Obs.default}) fires at the same place; each build also
    observes its exploration throughput on the context's
    [product.build_states_per_s] histogram.

    @raise Invalid_argument if [assumed_failed] contains a dynamic event. *)

val unreliability :
  ?epsilon:float -> ?guard:Sdft_util.Guard.t ->
  ?workspace:Transient.workspace -> ?obs:Sdft_util.Obs.t -> built ->
  horizon:float -> float
(** [Pr(reach a failed product state within the horizon)]. [workspace]
    removes the solver's per-call vector allocations; [guard] is probed at
    every uniformization step. *)

val solve :
  ?max_states:int -> ?epsilon:float -> ?guard:Sdft_util.Guard.t ->
  ?obs:Sdft_util.Obs.t -> Sdft.t -> horizon:float -> float
(** [build] + [unreliability] on the whole tree — the exact semantics
    [p(FT)] of Section III-C2. *)

(** {1 Low-level semantics}

    The component extraction and the trigger update closure, exposed so
    that augmented explorations (e.g. the failure-order tracking of
    {!Cut_sequences}) can reuse the exact same semantics. *)

type component = {
  basic : int;  (** basic-event index in the tree *)
  n_local : int;
  rows : (int * float) array array;  (** outgoing transitions per state *)
  init_local : (int * float) list;
  failed_local : bool array;
  trigger_gate : int;  (** -1 when untriggered *)
  mode_on : bool array;
  partner : int array;
}

type semantics

val semantics : ?assumed_failed:Sdft_util.Int_set.t -> Sdft.t -> semantics

val sem_components : semantics -> component array

val sem_close : semantics -> int array -> unit
(** Apply the trigger update closure in place. *)

val sem_fails_top : semantics -> int array -> bool
(** Does the (consistent) state fail the top gate? *)

val sem_initial_states : semantics -> max_states:int -> (int array * float) list
(** Enumerate the closed initial product states with their masses. *)

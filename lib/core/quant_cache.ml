module Metrics = Sdft_util.Metrics
module Trace = Sdft_util.Trace
module Obs = Sdft_util.Obs
module Store = Sdft_util.Store

let m_appends = Metrics.counter "cache.appends"
let m_load_ms = Metrics.gauge "cache.load_ms"

(* Per-observability-context instrument handles, resolved once per lookup
   (and through the physical-equality fast path, for free on the default
   context). *)
type handles = {
  m_hits : Metrics.counter;
  m_misses : Metrics.counter;
  m_disk_hits : Metrics.counter;
  m_disk_misses : Metrics.counter;
  m_lookup_s : Metrics.histogram;
}

let handles_in m =
  {
    m_hits = Metrics.counter_in m "quant_cache.hits";
    m_misses = Metrics.counter_in m "quant_cache.misses";
    m_disk_hits = Metrics.counter_in m "cache.disk_hits";
    m_disk_misses = Metrics.counter_in m "cache.disk_misses";
    m_lookup_s = Metrics.histogram_in m "cache.lookup_s";
  }

let default_handles = handles_in Metrics.default

let handles_of m =
  if m == Metrics.default then default_handles else handles_in m

(* What a hit must reproduce: the dynamic probability plus the provenance of
   the solve that produced it (chain size, transition count, DTMC steps),
   so cached and uncached results stay indistinguishable downstream except
   for the [from_cache] flag and the wall time. *)
type entry = {
  e_prob : float;
  e_states : int;
  e_transitions : int;
  e_steps : int;
}

(* Where a table entry came from: a solve of this process, or the disk
   store / a seeded manifest. Only the distinction feeds the disk-tier
   observability counters; the values are interchangeable. *)
type origin = Fresh | Warm

type disk = {
  store : Store.t;
  entries_loaded : int;
  load_ms : float;
  mutable broken : bool; (* an IO failure stopped the appends *)
  mutable disk_error : string option;
}

type t = {
  table : (string, entry * origin) Hashtbl.t;
  lock : Mutex.t;
  hit_count : int Atomic.t;
  miss_count : int Atomic.t;
  disk_hit_count : int Atomic.t;
  disk_miss_count : int Atomic.t;
  disk_lock : Mutex.t;
      (* serializes the disk tier's state machine ([broken]/[disk_error]
         and their check-then-act transitions) under multi-domain callers
         — the analysis server runs many analyses over one shared cache.
         Separate from [lock] so a slow append never blocks lookups; the
         [disk] field itself is written only in [open_disk], before the
         cache can be shared. Store's own mutex covers the raw IO. *)
  mutable disk : disk option;
}

let create () =
  {
    table = Hashtbl.create 256;
    lock = Mutex.create ();
    hit_count = Atomic.make 0;
    miss_count = Atomic.make 0;
    disk_hit_count = Atomic.make 0;
    disk_miss_count = Atomic.make 0;
    disk_lock = Mutex.create ();
    disk = None;
  }

let hits t = Atomic.get t.hit_count

let misses t = Atomic.get t.miss_count

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* Deterministic DFS serialization with first-visit indices in place of
   names. Equal fingerprints imply isomorphic models, hence equal p~; the
   converse need not hold (a reordered-but-equal model just misses). *)
let fingerprint sd =
  let tree = Sdft.tree sd in
  let buf = Buffer.create 512 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let emit_dbe d =
    pf "n=%d;i=" (Dbe.n_states d);
    List.iter (fun (s, m) -> pf "%d:%h," s m) (Dbe.init d);
    Buffer.add_string buf ";t=";
    Ctmc.iter_transitions (Dbe.chain d) (fun src dst r -> pf "%d>%d:%h," src dst r);
    Buffer.add_string buf ";f=";
    for s = 0 to Dbe.n_states d - 1 do
      if Dbe.is_failed d s then pf "%d," s
    done;
    if Dbe.is_triggered_model d then begin
      Buffer.add_string buf ";sw=";
      for s = 0 to Dbe.n_states d - 1 do
        match Dbe.mode_of d s with
        | Dbe.Off -> pf "o%d>%d," s (Dbe.switch_on d s)
        | Dbe.On -> pf "n%d>%d," s (Dbe.switch_off d s)
      done
    end
  in
  let basic_ids : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let gate_ids : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let next_basic = ref 0 and next_gate = ref 0 in
  let rec emit_basic b =
    match Hashtbl.find_opt basic_ids b with
    | Some id -> pf "b%d" id
    | None ->
      let id = !next_basic in
      incr next_basic;
      Hashtbl.add basic_ids b id;
      if Sdft.is_dynamic sd b then begin
        pf "B%d[D:" id;
        emit_dbe (Sdft.dbe sd b);
        (match Sdft.trigger_of sd b with
        | None -> Buffer.add_string buf ";untrig"
        | Some g ->
          Buffer.add_string buf ";trig=";
          emit_gate g);
        Buffer.add_char buf ']'
      end
      else pf "B%d[p=%h]" id (Fault_tree.prob tree b)
  and emit_gate g =
    match Hashtbl.find_opt gate_ids g with
    | Some id -> pf "g%d" id
    | None ->
      let id = !next_gate in
      incr next_gate;
      Hashtbl.add gate_ids g id;
      let kind =
        match Fault_tree.gate_kind tree g with
        | Fault_tree.And -> "&"
        | Fault_tree.Or -> "|"
        | Fault_tree.Atleast k -> Printf.sprintf ">=%d" k
      in
      pf "G%d(%s" id kind;
      Array.iter
        (fun node ->
          Buffer.add_char buf ',';
          match node with
          | Fault_tree.B b -> emit_basic b
          | Fault_tree.G g' -> emit_gate g')
        (Fault_tree.gate_inputs tree g);
      Buffer.add_char buf ')'
  in
  (* Trigger gates hang off dynamic basics rather than off the top gate, so
     the recursion through [emit_basic] is what reaches them. *)
  emit_gate (Fault_tree.top tree);
  Buffer.contents buf

(* The canonical fingerprint is O(sub-model) to build; hashing it down to a
   fixed-width hex digest and memoizing the digest on the Cutset_model
   makes every lookup after the first O(1). Equal digests stand in for
   equal fingerprints: MD5 collisions between 128-bit digests of
   non-adversarial model serializations are negligible next to the solver's
   own epsilon, and the digest also becomes the stable on-disk key. *)
let digest_of (cm : Cutset_model.t) sd_c =
  match cm.Cutset_model.fp_digest with
  | Some d -> d
  | None ->
    let d = Digest.to_hex (Digest.string (fingerprint sd_c)) in
    cm.Cutset_model.fp_digest <- Some d;
    d

let key_of_digest digest ~epsilon ~max_states ~horizon ~engine_tag =
  Printf.sprintf "%s|e=%h|s=%d|t=%h%s" digest epsilon max_states horizon
    (if engine_tag = "" then "" else "|eng=" ^ engine_tag)

let key_of ?(engine_tag = "") ~epsilon ~max_states ~horizon
    (cm : Cutset_model.t) =
  match cm.Cutset_model.model with
  | None -> None
  | Some sd_c ->
    Some
      (key_of_digest (digest_of cm sd_c) ~epsilon ~max_states ~horizon
         ~engine_tag)

(* ------------------------------------------------------------------ *)
(* Record codec for the disk store: one record per cache entry,
   [<key length>:<key>|<prob %h>|<states>|<transitions>|<steps>]. The key
   is length-prefixed (it contains '|' itself); floats travel as hex
   literals, which round-trip bit-exactly. *)

let encode_record key e =
  Printf.sprintf "%d:%s|%h|%d|%d|%d" (String.length key) key e.e_prob
    e.e_states e.e_transitions e.e_steps

let decode_record s =
  match String.index_opt s ':' with
  | None -> None
  | Some colon -> (
    match int_of_string_opt (String.sub s 0 colon) with
    | None -> None
    | Some key_len ->
      if key_len < 0 || colon + 1 + key_len > String.length s then None
      else
        let key = String.sub s (colon + 1) key_len in
        let rest_off = colon + 1 + key_len in
        let rest =
          String.sub s rest_off (String.length s - rest_off)
        in
        (match String.split_on_char '|' rest with
        | [ ""; prob; states; transitions; steps ] -> (
          match
            ( float_of_string_opt prob,
              int_of_string_opt states,
              int_of_string_opt transitions,
              int_of_string_opt steps )
          with
          | Some e_prob, Some e_states, Some e_transitions, Some e_steps ->
            Some (key, { e_prob; e_states; e_transitions; e_steps })
          | _ -> None)
        | _ -> None))

(* ------------------------------------------------------------------ *)
(* Disk tier. *)

(* The header stamp: the record-codec revision concatenated with the
   build-time digest of the solver sources (Solver_stamp is generated by a
   dune rule over transient/ctmc/product/cutset-model/cache sources), so
   both a solver change and a key- or codec-format change invalidate
   existing stores. *)
let version_stamp = "qcache/1 " ^ Solver_stamp.stamp

let io_error_message = function
  | Sys_error m -> Some m
  | Unix.Unix_error (err, fn, arg) ->
    Some (Printf.sprintf "%s(%s): %s" fn arg (Unix.error_message err))
  | Sdft_util.Failpoint.Injected site -> Some ("injected failure at " ^ site)
  | Failure m -> Some m
  | _ -> None

let open_disk ?batch path =
  let t = create () in
  let t0 = Sdft_util.Timer.start () in
  (match Store.open_ ?batch ~stamp:version_stamp path with
  | store, records ->
    let loaded = ref 0 in
    List.iter
      (fun r ->
        match decode_record r with
        | Some (key, e) ->
          if not (Hashtbl.mem t.table key) then begin
            Hashtbl.add t.table key (e, Warm);
            incr loaded
          end
        | None -> ())
      records;
    let load_ms = Sdft_util.Timer.elapsed_s t0 *. 1000.0 in
    Metrics.set m_load_ms load_ms;
    Trace.instant "cache.disk_load";
    t.disk <-
      Some
        {
          store;
          entries_loaded = !loaded;
          load_ms;
          broken = false;
          disk_error = None;
        }
  | exception e -> (
    (* An unusable store must never take the analysis down: degrade to a
       memory-only cache and surface the reason through disk_stats. *)
    match io_error_message e with
    | Some _ -> ()
    | None -> raise e));
  t

type disk_stats = {
  disk_path : string;
  read_only : bool;
  entries_loaded : int;
  load_ms : float;
  disk_hits : int;
  disk_misses : int;
  appends : int;
  disk_error : string option;
}

let disk_stats t =
  match t.disk with
  | None -> None
  | Some d ->
    (* broken/disk_error are read under disk_lock so a snapshot taken
       while another domain is degrading the tier is consistent (never an
       error message without the broken flag's effects, or vice versa). *)
    let disk_error =
      Mutex.lock t.disk_lock;
      let e = d.disk_error in
      Mutex.unlock t.disk_lock;
      e
    in
    Some
      {
        disk_path = Store.path d.store;
        read_only = Store.mode d.store = Store.Reader;
        entries_loaded = d.entries_loaded;
        load_ms = d.load_ms;
        disk_hits = Atomic.get t.disk_hit_count;
        disk_misses = Atomic.get t.disk_miss_count;
        appends = Store.appended d.store;
        disk_error;
      }

let disk_locked t f =
  Mutex.lock t.disk_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.disk_lock) f

(* Append one freshly solved entry; never raises. The [store.append]
   failpoint (inside Store.append) and real IO errors both land here: the
   disk tier is marked broken and the analysis carries on memory-only.
   Under [disk_lock] so the broken-check and its transition are atomic
   with respect to concurrent appends from other domains. *)
let disk_append t key e =
  match t.disk with
  | None -> ()
  | Some d ->
    disk_locked t (fun () ->
        if not d.broken then
          match Store.append d.store (encode_record key e) with
          | true -> Metrics.incr m_appends
          | false -> ()
          | exception exn -> (
            match io_error_message exn with
            | Some m ->
              d.broken <- true;
              d.disk_error <- Some m
            | None -> raise exn))

let flush t =
  match t.disk with
  | None -> ()
  | Some d ->
    disk_locked t (fun () ->
        if not d.broken then
          match Store.flush d.store with
          | () -> Trace.instant "cache.disk_flush"
          | exception exn -> (
            match io_error_message exn with
            | Some m ->
              d.broken <- true;
              d.disk_error <- Some m
            | None -> raise exn))

let close t =
  match t.disk with
  | None -> ()
  | Some d ->
    disk_locked t (fun () ->
        match Store.close d.store with
        | () -> Trace.instant "cache.disk_flush"
        | exception exn -> (
          match io_error_message exn with
          | Some m ->
            d.broken <- true;
            d.disk_error <- Some m
          | None -> raise exn))

let export t =
  locked t (fun () ->
      Hashtbl.fold (fun key (e, _) acc -> (key, e) :: acc) t.table [])

let seed t entries =
  let added = ref 0 in
  locked t (fun () ->
      List.iter
        (fun (key, e) ->
          if not (Hashtbl.mem t.table key) then begin
            Hashtbl.add t.table key (e, Warm);
            incr added
          end)
        entries);
  (* Seeded entries also reach the attached store (outside the table lock:
     Store has its own), so a manifest used once warms the file for every
     later run. *)
  List.iter
    (fun (key, e) ->
      let fresh = locked t (fun () -> Hashtbl.find_opt t.table key) in
      match fresh with
      | Some (e', Warm) when e' == e -> disk_append t key e
      | _ -> ())
    entries;
  !added

let find t key = locked t (fun () -> Hashtbl.find_opt t.table key)

let store t key v =
  let added =
    locked t (fun () ->
        if Hashtbl.mem t.table key then false
        else begin
          Hashtbl.add t.table key (v, Fresh);
          true
        end)
  in
  if added then disk_append t key v

let quantify t ~epsilon ~max_states ?guard ?workspace ?(engine_tag = "")
    ?(obs = Obs.default) (cm : Cutset_model.t) ~horizon =
  match cm.Cutset_model.model with
  | None ->
    (* Purely static or impossible: quantification is a multiplication. *)
    Cutset_model.quantify ~epsilon ~max_states cm ~horizon
  | Some sd_c ->
    let t0 = Sdft_util.Timer.start () in
    let h = handles_of obs.Obs.metrics in
    let sink = obs.Obs.trace in
    Sdft_util.Failpoint.hit_in obs.Obs.failpoints "cache.lookup";
    let key =
      key_of_digest (digest_of cm sd_c) ~epsilon ~max_states ~horizon
        ~engine_tag
    in
    let looked_up = find t key in
    Metrics.observe h.m_lookup_s (Sdft_util.Timer.elapsed_s t0);
    (match looked_up with
    | Some (e, origin) ->
      Atomic.incr t.hit_count;
      Metrics.incr h.m_hits;
      if origin = Warm then begin
        Atomic.incr t.disk_hit_count;
        Metrics.incr h.m_disk_hits
      end;
      Trace.instant ~sink "quant_cache.hit";
      {
        Cutset_model.probability =
          e.e_prob *. cm.Cutset_model.static_multiplier;
        product_states = e.e_states;
        product_transitions = e.e_transitions;
        solver_steps = e.e_steps;
        solver_error = epsilon *. cm.Cutset_model.static_multiplier;
        from_cache = true;
        seconds = Sdft_util.Timer.elapsed_s t0;
      }
    | None ->
      Atomic.incr t.miss_count;
      Metrics.incr h.m_misses;
      if t.disk <> None then begin
        Atomic.incr t.disk_miss_count;
        Metrics.incr h.m_disk_misses
      end;
      Trace.instant ~sink "quant_cache.miss";
      (* Too_many_states and guard interrupts propagate before anything is
         stored, so a limit can never poison the cache with a partial value. *)
      let ws =
        match workspace with Some w -> w | None -> Transient.workspace ()
      in
      let built = Sdft_product.build ~max_states ?guard ~obs sd_c in
      let p_dyn =
        Sdft_product.unreliability ~epsilon ?guard ~workspace:ws ~obs built
          ~horizon
      in
      let transitions = Ctmc.n_transitions built.Sdft_product.chain in
      let steps = Transient.last_steps ws in
      store t key
        {
          e_prob = p_dyn;
          e_states = built.n_states;
          e_transitions = transitions;
          e_steps = steps;
        };
      {
        Cutset_model.probability = p_dyn *. cm.Cutset_model.static_multiplier;
        product_states = built.n_states;
        product_transitions = transitions;
        solver_steps = steps;
        solver_error = epsilon *. cm.Cutset_model.static_multiplier;
        from_cache = false;
        seconds = Sdft_util.Timer.elapsed_s t0;
      })

module Metrics = Sdft_util.Metrics
module Trace = Sdft_util.Trace

let m_hits = Metrics.counter "quant_cache.hits"
let m_misses = Metrics.counter "quant_cache.misses"

(* What a hit must reproduce: the dynamic probability plus the provenance of
   the solve that produced it (chain size, transition count, DTMC steps),
   so cached and uncached results stay indistinguishable downstream except
   for the [from_cache] flag and the wall time. *)
type entry = {
  e_prob : float;
  e_states : int;
  e_transitions : int;
  e_steps : int;
}

type t = {
  table : (string, entry) Hashtbl.t;
  lock : Mutex.t;
  hit_count : int Atomic.t;
  miss_count : int Atomic.t;
}

let create () =
  {
    table = Hashtbl.create 256;
    lock = Mutex.create ();
    hit_count = Atomic.make 0;
    miss_count = Atomic.make 0;
  }

let hits t = Atomic.get t.hit_count

let misses t = Atomic.get t.miss_count

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* Deterministic DFS serialization with first-visit indices in place of
   names. Equal fingerprints imply isomorphic models, hence equal p~; the
   converse need not hold (a reordered-but-equal model just misses). *)
let fingerprint sd =
  let tree = Sdft.tree sd in
  let buf = Buffer.create 512 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let emit_dbe d =
    pf "n=%d;i=" (Dbe.n_states d);
    List.iter (fun (s, m) -> pf "%d:%h," s m) (Dbe.init d);
    Buffer.add_string buf ";t=";
    Ctmc.iter_transitions (Dbe.chain d) (fun src dst r -> pf "%d>%d:%h," src dst r);
    Buffer.add_string buf ";f=";
    for s = 0 to Dbe.n_states d - 1 do
      if Dbe.is_failed d s then pf "%d," s
    done;
    if Dbe.is_triggered_model d then begin
      Buffer.add_string buf ";sw=";
      for s = 0 to Dbe.n_states d - 1 do
        match Dbe.mode_of d s with
        | Dbe.Off -> pf "o%d>%d," s (Dbe.switch_on d s)
        | Dbe.On -> pf "n%d>%d," s (Dbe.switch_off d s)
      done
    end
  in
  let basic_ids : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let gate_ids : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let next_basic = ref 0 and next_gate = ref 0 in
  let rec emit_basic b =
    match Hashtbl.find_opt basic_ids b with
    | Some id -> pf "b%d" id
    | None ->
      let id = !next_basic in
      incr next_basic;
      Hashtbl.add basic_ids b id;
      if Sdft.is_dynamic sd b then begin
        pf "B%d[D:" id;
        emit_dbe (Sdft.dbe sd b);
        (match Sdft.trigger_of sd b with
        | None -> Buffer.add_string buf ";untrig"
        | Some g ->
          Buffer.add_string buf ";trig=";
          emit_gate g);
        Buffer.add_char buf ']'
      end
      else pf "B%d[p=%h]" id (Fault_tree.prob tree b)
  and emit_gate g =
    match Hashtbl.find_opt gate_ids g with
    | Some id -> pf "g%d" id
    | None ->
      let id = !next_gate in
      incr next_gate;
      Hashtbl.add gate_ids g id;
      let kind =
        match Fault_tree.gate_kind tree g with
        | Fault_tree.And -> "&"
        | Fault_tree.Or -> "|"
        | Fault_tree.Atleast k -> Printf.sprintf ">=%d" k
      in
      pf "G%d(%s" id kind;
      Array.iter
        (fun node ->
          Buffer.add_char buf ',';
          match node with
          | Fault_tree.B b -> emit_basic b
          | Fault_tree.G g' -> emit_gate g')
        (Fault_tree.gate_inputs tree g);
      Buffer.add_char buf ')'
  in
  (* Trigger gates hang off dynamic basics rather than off the top gate, so
     the recursion through [emit_basic] is what reaches them. *)
  emit_gate (Fault_tree.top tree);
  Buffer.contents buf

let find t key = locked t (fun () -> Hashtbl.find_opt t.table key)

let store t key v =
  locked t (fun () ->
      if not (Hashtbl.mem t.table key) then Hashtbl.add t.table key v)

let quantify t ~epsilon ~max_states ?guard ?workspace ?(engine_tag = "")
    (cm : Cutset_model.t) ~horizon =
  match cm.Cutset_model.model with
  | None ->
    (* Purely static or impossible: quantification is a multiplication. *)
    Cutset_model.quantify ~epsilon ~max_states cm ~horizon
  | Some sd_c ->
    let t0 = Sdft_util.Timer.start () in
    Sdft_util.Failpoint.hit "cache.lookup";
    let key =
      Printf.sprintf "%s|e=%h|s=%d|t=%h%s" (fingerprint sd_c) epsilon
        max_states horizon
        (if engine_tag = "" then "" else "|eng=" ^ engine_tag)
    in
    (match find t key with
    | Some e ->
      Atomic.incr t.hit_count;
      Metrics.incr m_hits;
      Trace.instant "quant_cache.hit";
      {
        Cutset_model.probability =
          e.e_prob *. cm.Cutset_model.static_multiplier;
        product_states = e.e_states;
        product_transitions = e.e_transitions;
        solver_steps = e.e_steps;
        solver_error = epsilon *. cm.Cutset_model.static_multiplier;
        from_cache = true;
        seconds = Sdft_util.Timer.elapsed_s t0;
      }
    | None ->
      Atomic.incr t.miss_count;
      Metrics.incr m_misses;
      Trace.instant "quant_cache.miss";
      (* Too_many_states and guard interrupts propagate before anything is
         stored, so a limit can never poison the cache with a partial value. *)
      let ws =
        match workspace with Some w -> w | None -> Transient.workspace ()
      in
      let built = Sdft_product.build ~max_states ?guard sd_c in
      let p_dyn =
        Sdft_product.unreliability ~epsilon ?guard ~workspace:ws built ~horizon
      in
      let transitions = Ctmc.n_transitions built.Sdft_product.chain in
      let steps = Transient.last_steps ws in
      store t key
        {
          e_prob = p_dyn;
          e_states = built.n_states;
          e_transitions = transitions;
          e_steps = steps;
        };
      {
        Cutset_model.probability = p_dyn *. cm.Cutset_model.static_multiplier;
        product_states = built.n_states;
        product_transitions = transitions;
        solver_steps = steps;
        solver_error = epsilon *. cm.Cutset_model.static_multiplier;
        from_cache = false;
        seconds = Sdft_util.Timer.elapsed_s t0;
      })

module Metrics = Sdft_util.Metrics
module Trace = Sdft_util.Trace
module Obs = Sdft_util.Obs
module Store = Sdft_util.Store

let m_appends = Metrics.counter "cache.appends"
let m_load_ms = Metrics.gauge "cache.load_ms"
let m_breaker_opens = Metrics.counter "cache.breaker_opens"
let m_breaker_recoveries = Metrics.counter "cache.breaker_recoveries"

(* Per-observability-context instrument handles, resolved once per lookup
   (and through the physical-equality fast path, for free on the default
   context). *)
type handles = {
  m_hits : Metrics.counter;
  m_misses : Metrics.counter;
  m_disk_hits : Metrics.counter;
  m_disk_misses : Metrics.counter;
  m_lookup_s : Metrics.histogram;
}

let handles_in m =
  {
    m_hits = Metrics.counter_in m "quant_cache.hits";
    m_misses = Metrics.counter_in m "quant_cache.misses";
    m_disk_hits = Metrics.counter_in m "cache.disk_hits";
    m_disk_misses = Metrics.counter_in m "cache.disk_misses";
    m_lookup_s = Metrics.histogram_in m "cache.lookup_s";
  }

let default_handles = handles_in Metrics.default

let handles_of m =
  if m == Metrics.default then default_handles else handles_in m

(* What a hit must reproduce: the dynamic probability plus the provenance of
   the solve that produced it (chain size, transition count, DTMC steps),
   so cached and uncached results stay indistinguishable downstream except
   for the [from_cache] flag and the wall time. *)
type entry = {
  e_prob : float;
  e_states : int;
  e_transitions : int;
  e_steps : int;
}

(* Where a table entry came from: a solve of this process, or the disk
   store / a seeded manifest. Only the distinction feeds the disk-tier
   observability counters; the values are interchangeable. *)
type origin = Fresh | Warm

(* The disk tier's circuit breaker. [Closed] appends normally; repeated
   failures (or a single failure that tore the Store handle down) trip it
   to [Open], where appends are skipped — but remembered — for a
   deterministic cooldown counted in skipped appends; the cooldown's end
   moves to [Half_open], and the next append becomes a probe that reopens
   the file if necessary, reconciles it with the table, and closes the
   breaker on success. Each failed probe doubles the next cooldown (capped),
   so a persistently broken disk costs one probe per ~cooldown appends
   instead of one syscall failure per solve. *)
type breaker_state = Closed | Open | Half_open

type disk = {
  dk_path : string;
  dk_batch : int option;
  entries_loaded : int;
  load_ms : float;
  threshold : int; (* consecutive Closed-state failures that trip *)
  cooldown : int; (* skipped appends before the first re-probe *)
  cooldown_cap : int;
  mutable dk_store : Store.t option; (* None while torn down *)
  mutable dk_state : breaker_state;
  mutable failures : int; (* consecutive failures while Closed *)
  mutable skips_left : int; (* Open: appends left before Half_open *)
  mutable episodes : int; (* consecutive Open episodes, for the backoff *)
  mutable opens : int; (* times the breaker tripped, ever *)
  mutable probes : int;
  mutable recoveries : int;
  mutable appends_before : int; (* appends on store handles since closed *)
  mutable lost : (string * entry) list; (* skipped/failed, newest first *)
  mutable dk_closed : bool; (* [close] was called; tier is done *)
  mutable disk_error : string option;
}

type t = {
  table : (string, entry * origin) Hashtbl.t;
  lock : Mutex.t;
  hit_count : int Atomic.t;
  miss_count : int Atomic.t;
  disk_hit_count : int Atomic.t;
  disk_miss_count : int Atomic.t;
  disk_lock : Mutex.t;
      (* serializes the disk tier's breaker state machine (all the mutable
         [disk] fields and their check-then-act transitions) under
         multi-domain callers — the analysis server runs many analyses over
         one shared cache. Separate from [lock] so a slow append never
         blocks lookups; lock order is [lock] strictly inside [disk_lock]
         (the probe's reconcile step), never the other way. Store's own
         mutex covers the raw IO. *)
  mutable disk : disk option;
  mutable on_store : (string -> entry -> unit) option;
      (* fired after a fresh solve lands in the table (not for seeded or
         warm-loaded entries) — the checkpoint journal's feed *)
}

let create () =
  {
    table = Hashtbl.create 256;
    lock = Mutex.create ();
    hit_count = Atomic.make 0;
    miss_count = Atomic.make 0;
    disk_hit_count = Atomic.make 0;
    disk_miss_count = Atomic.make 0;
    disk_lock = Mutex.create ();
    disk = None;
    on_store = None;
  }

let set_on_store t f = t.on_store <- Some f

let hits t = Atomic.get t.hit_count

let misses t = Atomic.get t.miss_count

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* Deterministic DFS serialization with first-visit indices in place of
   names. Equal fingerprints imply isomorphic models, hence equal p~; the
   converse need not hold (a reordered-but-equal model just misses). *)
let fingerprint sd =
  let tree = Sdft.tree sd in
  let buf = Buffer.create 512 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let emit_dbe d =
    pf "n=%d;i=" (Dbe.n_states d);
    List.iter (fun (s, m) -> pf "%d:%h," s m) (Dbe.init d);
    Buffer.add_string buf ";t=";
    Ctmc.iter_transitions (Dbe.chain d) (fun src dst r -> pf "%d>%d:%h," src dst r);
    Buffer.add_string buf ";f=";
    for s = 0 to Dbe.n_states d - 1 do
      if Dbe.is_failed d s then pf "%d," s
    done;
    if Dbe.is_triggered_model d then begin
      Buffer.add_string buf ";sw=";
      for s = 0 to Dbe.n_states d - 1 do
        match Dbe.mode_of d s with
        | Dbe.Off -> pf "o%d>%d," s (Dbe.switch_on d s)
        | Dbe.On -> pf "n%d>%d," s (Dbe.switch_off d s)
      done
    end
  in
  let basic_ids : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let gate_ids : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let next_basic = ref 0 and next_gate = ref 0 in
  let rec emit_basic b =
    match Hashtbl.find_opt basic_ids b with
    | Some id -> pf "b%d" id
    | None ->
      let id = !next_basic in
      incr next_basic;
      Hashtbl.add basic_ids b id;
      if Sdft.is_dynamic sd b then begin
        pf "B%d[D:" id;
        emit_dbe (Sdft.dbe sd b);
        (match Sdft.trigger_of sd b with
        | None -> Buffer.add_string buf ";untrig"
        | Some g ->
          Buffer.add_string buf ";trig=";
          emit_gate g);
        Buffer.add_char buf ']'
      end
      else pf "B%d[p=%h]" id (Fault_tree.prob tree b)
  and emit_gate g =
    match Hashtbl.find_opt gate_ids g with
    | Some id -> pf "g%d" id
    | None ->
      let id = !next_gate in
      incr next_gate;
      Hashtbl.add gate_ids g id;
      let kind =
        match Fault_tree.gate_kind tree g with
        | Fault_tree.And -> "&"
        | Fault_tree.Or -> "|"
        | Fault_tree.Atleast k -> Printf.sprintf ">=%d" k
      in
      pf "G%d(%s" id kind;
      Array.iter
        (fun node ->
          Buffer.add_char buf ',';
          match node with
          | Fault_tree.B b -> emit_basic b
          | Fault_tree.G g' -> emit_gate g')
        (Fault_tree.gate_inputs tree g);
      Buffer.add_char buf ')'
  in
  (* Trigger gates hang off dynamic basics rather than off the top gate, so
     the recursion through [emit_basic] is what reaches them. *)
  emit_gate (Fault_tree.top tree);
  Buffer.contents buf

(* The canonical fingerprint is O(sub-model) to build; hashing it down to a
   fixed-width hex digest and memoizing the digest on the Cutset_model
   makes every lookup after the first O(1). Equal digests stand in for
   equal fingerprints: MD5 collisions between 128-bit digests of
   non-adversarial model serializations are negligible next to the solver's
   own epsilon, and the digest also becomes the stable on-disk key. *)
let digest_of (cm : Cutset_model.t) sd_c =
  match cm.Cutset_model.fp_digest with
  | Some d -> d
  | None ->
    let d = Digest.to_hex (Digest.string (fingerprint sd_c)) in
    cm.Cutset_model.fp_digest <- Some d;
    d

let key_of_digest digest ~epsilon ~max_states ~horizon ~engine_tag =
  Printf.sprintf "%s|e=%h|s=%d|t=%h%s" digest epsilon max_states horizon
    (if engine_tag = "" then "" else "|eng=" ^ engine_tag)

let key_of ?(engine_tag = "") ~epsilon ~max_states ~horizon
    (cm : Cutset_model.t) =
  match cm.Cutset_model.model with
  | None -> None
  | Some sd_c ->
    Some
      (key_of_digest (digest_of cm sd_c) ~epsilon ~max_states ~horizon
         ~engine_tag)

(* ------------------------------------------------------------------ *)
(* Record codec for the disk store: one record per cache entry,
   [<key length>:<key>|<prob %h>|<states>|<transitions>|<steps>]. The key
   is length-prefixed (it contains '|' itself); floats travel as hex
   literals, which round-trip bit-exactly. *)

let encode_record key e =
  Printf.sprintf "%d:%s|%h|%d|%d|%d" (String.length key) key e.e_prob
    e.e_states e.e_transitions e.e_steps

let decode_record s =
  match String.index_opt s ':' with
  | None -> None
  | Some colon -> (
    match int_of_string_opt (String.sub s 0 colon) with
    | None -> None
    | Some key_len ->
      if key_len < 0 || colon + 1 + key_len > String.length s then None
      else
        let key = String.sub s (colon + 1) key_len in
        let rest_off = colon + 1 + key_len in
        let rest =
          String.sub s rest_off (String.length s - rest_off)
        in
        (match String.split_on_char '|' rest with
        | [ ""; prob; states; transitions; steps ] -> (
          match
            ( float_of_string_opt prob,
              int_of_string_opt states,
              int_of_string_opt transitions,
              int_of_string_opt steps )
          with
          | Some e_prob, Some e_states, Some e_transitions, Some e_steps ->
            Some (key, { e_prob; e_states; e_transitions; e_steps })
          | _ -> None)
        | _ -> None))

(* ------------------------------------------------------------------ *)
(* Disk tier. *)

(* The header stamp: the record-codec revision concatenated with the
   build-time digest of the solver sources (Solver_stamp is generated by a
   dune rule over transient/ctmc/product/cutset-model/cache sources), so
   both a solver change and a key- or codec-format change invalidate
   existing stores. *)
let version_stamp = "qcache/1 " ^ Solver_stamp.stamp

let io_error_message = function
  | Sys_error m -> Some m
  | Unix.Unix_error (err, fn, arg) ->
    Some (Printf.sprintf "%s(%s): %s" fn arg (Unix.error_message err))
  | Sdft_util.Failpoint.Injected site -> Some ("injected failure at " ^ site)
  | Failure m -> Some m
  | _ -> None

let open_disk ?batch ?(breaker_threshold = 3) ?(breaker_cooldown = 4)
    ?(breaker_cooldown_cap = 64) path =
  let t = create () in
  let t0 = Sdft_util.Timer.start () in
  (match Store.open_ ?batch ~stamp:version_stamp path with
  | store, records ->
    let loaded = ref 0 in
    List.iter
      (fun r ->
        match decode_record r with
        | Some (key, e) ->
          if not (Hashtbl.mem t.table key) then begin
            Hashtbl.add t.table key (e, Warm);
            incr loaded
          end
        | None -> ())
      records;
    let load_ms = Sdft_util.Timer.elapsed_s t0 *. 1000.0 in
    Metrics.set m_load_ms load_ms;
    Trace.instant "cache.disk_load";
    let threshold = max 1 breaker_threshold in
    let cooldown = max 1 breaker_cooldown in
    t.disk <-
      Some
        {
          dk_path = path;
          dk_batch = batch;
          entries_loaded = !loaded;
          load_ms;
          threshold;
          cooldown;
          cooldown_cap = max cooldown breaker_cooldown_cap;
          dk_store = Some store;
          dk_state = Closed;
          failures = 0;
          skips_left = 0;
          episodes = 0;
          opens = 0;
          probes = 0;
          recoveries = 0;
          appends_before = 0;
          lost = [];
          dk_closed = false;
          disk_error = None;
        }
  | exception e -> (
    (* A store that cannot even be opened must never take the analysis
       down: degrade to a plain memory-only cache (no breaker — there is
       nothing to recover to) and stay silent beyond disk_stats = None. *)
    match io_error_message e with
    | Some _ -> ()
    | None -> raise e));
  t

type disk_stats = {
  disk_path : string;
  read_only : bool;
  entries_loaded : int;
  load_ms : float;
  disk_hits : int;
  disk_misses : int;
  appends : int;
  disk_error : string option;
  breaker : string;
  breaker_opens : int;
  breaker_probes : int;
  breaker_recoveries : int;
}

let breaker_name = function
  | Closed -> "closed"
  | Open -> "open"
  | Half_open -> "half_open"

let disk_locked t f =
  Mutex.lock t.disk_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.disk_lock) f

let disk_stats t =
  match t.disk with
  | None -> None
  | Some d ->
    (* The whole snapshot is taken under disk_lock so a reading domain
       never sees an error message without the breaker transition's other
       effects, or vice versa. *)
    disk_locked t (fun () ->
        Some
          {
            disk_path = d.dk_path;
            read_only =
              (match d.dk_store with
              | Some s -> Store.mode s = Store.Reader
              | None -> false);
            entries_loaded = d.entries_loaded;
            load_ms = d.load_ms;
            disk_hits = Atomic.get t.disk_hit_count;
            disk_misses = Atomic.get t.disk_miss_count;
            appends =
              (d.appends_before
              + match d.dk_store with Some s -> Store.appended s | None -> 0);
            disk_error = d.disk_error;
            breaker = breaker_name d.dk_state;
            breaker_opens = d.opens;
            breaker_probes = d.probes;
            breaker_recoveries = d.recoveries;
          })

(* Breaker transitions below all run under [disk_lock]. *)

let cooldown_for d episodes =
  let rec go c i =
    if i >= episodes || c >= d.cooldown_cap then c else go (c * 2) (i + 1)
  in
  min d.cooldown_cap (go d.cooldown 1)

let trip d msg =
  d.dk_state <- Open;
  d.episodes <- d.episodes + 1;
  d.skips_left <- cooldown_for d d.episodes;
  d.failures <- 0;
  d.opens <- d.opens + 1;
  d.disk_error <- Some msg;
  Metrics.incr m_breaker_opens;
  Trace.instant "cache.breaker_open"

(* Drop a store handle that can no longer append (fd torn down by Store on
   a real IO error, or externally closed), folding its append tally into
   the running total so [disk_stats] stays monotone across reopens. *)
let shed_torn_store d =
  match d.dk_store with
  | Some s when not (Store.healthy s) ->
    d.appends_before <- d.appends_before + Store.appended s;
    (try Store.close s with _ -> ());
    d.dk_store <- None
  | _ -> ()

let note_append_failure d msg =
  let torn =
    match d.dk_store with Some s -> not (Store.healthy s) | None -> true
  in
  if torn then begin
    (* The handle is gone: no point counting towards the threshold, every
       further append would fail the same way. Trip immediately; the
       half-open probe will reopen the file. *)
    shed_torn_store d;
    trip d msg
  end
  else begin
    d.failures <- d.failures + 1;
    if d.failures >= d.threshold then trip d msg
  end

let closed_append d key e =
  match d.dk_store with
  | None ->
    d.lost <- (key, e) :: d.lost;
    note_append_failure d "store handle lost"
  | Some s -> (
    match Store.append s (encode_record key e) with
    | true ->
      d.failures <- 0;
      Metrics.incr m_appends
    | false ->
      (* Reader mode drops appends by design (someone else owns the file);
         a Writer refusing means its fd is gone — that is a failure. *)
      if Store.mode s = Store.Writer then begin
        d.lost <- (key, e) :: d.lost;
        note_append_failure d "store handle closed"
      end
    | exception exn -> (
      match io_error_message exn with
      | Some m ->
        d.lost <- (key, e) :: d.lost;
        note_append_failure d m
      | None -> raise exn))

(* The half-open probe: ensure a live store (reopening the file when the
   old handle was torn down), reconcile file and table, then write the
   pending record and flush so the recovery is durable. Success closes the
   breaker; failure re-opens it with a doubled cooldown. *)
let probe t d key e =
  d.probes <- d.probes + 1;
  Trace.instant "cache.breaker_probe";
  match
    let store, file_keys =
      match d.dk_store with
      | Some s when Store.healthy s -> (s, None)
      | _ ->
        shed_torn_store d;
        let s, records =
          Store.open_ ?batch:d.dk_batch ~stamp:version_stamp d.dk_path
        in
        d.dk_store <- Some s;
        let keys = Hashtbl.create (List.length records + 1) in
        List.iter
          (fun r ->
            match decode_record r with
            | Some (k, re) ->
              Hashtbl.replace keys k ();
              (* Records flushed by the previous handle that this process
                 has not seen (none today, but cheap insurance) merge in
                 as warm entries. Taking [lock] inside [disk_lock] is the
                 sanctioned order. *)
              locked t (fun () ->
                  if not (Hashtbl.mem t.table k) then
                    Hashtbl.add t.table k (re, Warm))
            | None -> ())
          records;
        (s, Some keys)
    in
    (* Backfill what the file is missing: after a reopen, diff the table
       against the file's own key set (covers whole batches lost to the
       crash); on a still-live handle, exactly the records the breaker saw
       fail or skipped while open. *)
    let to_append =
      match file_keys with
      | Some keys ->
        locked t (fun () ->
            Hashtbl.fold
              (fun k (entry, _) acc ->
                if Hashtbl.mem keys k then acc else (k, entry) :: acc)
              t.table [])
      | None -> List.rev d.lost
    in
    List.iter
      (fun (k, entry) ->
        if Store.append store (encode_record k entry) then
          Metrics.incr m_appends)
      to_append;
    if Store.append store (encode_record key e) then Metrics.incr m_appends;
    Store.flush store
  with
  | () ->
    d.dk_state <- Closed;
    d.failures <- 0;
    d.episodes <- 0;
    d.lost <- [];
    d.recoveries <- d.recoveries + 1;
    d.disk_error <- None;
    Metrics.incr m_breaker_recoveries;
    Trace.instant "cache.breaker_recover"
  | exception exn -> (
    match io_error_message exn with
    | Some m ->
      d.lost <- (key, e) :: d.lost;
      shed_torn_store d;
      trip d m (* episodes grows: the next cooldown doubles *)
    | None -> raise exn)

(* Append one freshly solved entry; never raises on IO trouble. The
   [store.append] failpoint (inside Store.append) and real IO errors both
   land in the breaker. Under [disk_lock] so every check-then-act breaker
   transition is atomic with respect to concurrent appends from other
   domains. *)
let disk_append t key e =
  match t.disk with
  | None -> ()
  | Some d ->
    disk_locked t (fun () ->
        if not d.dk_closed then
          match d.dk_state with
          | Closed -> closed_append d key e
          | Open ->
            d.lost <- (key, e) :: d.lost;
            d.skips_left <- d.skips_left - 1;
            if d.skips_left <= 0 then begin
              d.dk_state <- Half_open;
              Trace.instant "cache.breaker_half_open"
            end
          | Half_open -> probe t d key e)

let flush t =
  match t.disk with
  | None -> ()
  | Some d ->
    disk_locked t (fun () ->
        if (not d.dk_closed) && d.dk_state = Closed then
          match d.dk_store with
          | None -> ()
          | Some s -> (
            match Store.flush s with
            | () -> Trace.instant "cache.disk_flush"
            | exception exn -> (
              match io_error_message exn with
              | Some m -> note_append_failure d m
              | None -> raise exn)))

let close t =
  match t.disk with
  | None -> ()
  | Some d ->
    disk_locked t (fun () ->
        if not d.dk_closed then begin
          d.dk_closed <- true;
          match d.dk_store with
          | None -> ()
          | Some s -> (
            match Store.close s with
            | () -> Trace.instant "cache.disk_flush"
            | exception exn -> (
              match io_error_message exn with
              | Some m -> d.disk_error <- Some m
              | None -> raise exn))
        end)

let export t =
  locked t (fun () ->
      Hashtbl.fold (fun key (e, _) acc -> (key, e) :: acc) t.table [])

let seed t entries =
  let added = ref 0 in
  locked t (fun () ->
      List.iter
        (fun (key, e) ->
          if not (Hashtbl.mem t.table key) then begin
            Hashtbl.add t.table key (e, Warm);
            incr added
          end)
        entries);
  (* Seeded entries also reach the attached store (outside the table lock:
     Store has its own), so a manifest used once warms the file for every
     later run. *)
  List.iter
    (fun (key, e) ->
      let fresh = locked t (fun () -> Hashtbl.find_opt t.table key) in
      match fresh with
      | Some (e', Warm) when e' == e -> disk_append t key e
      | _ -> ())
    entries;
  !added

let find t key = locked t (fun () -> Hashtbl.find_opt t.table key)

let store t key v =
  let added =
    locked t (fun () ->
        if Hashtbl.mem t.table key then false
        else begin
          Hashtbl.add t.table key (v, Fresh);
          true
        end)
  in
  if added then begin
    disk_append t key v;
    match t.on_store with Some f -> f key v | None -> ()
  end

let quantify t ~epsilon ~max_states ?guard ?workspace ?(engine_tag = "")
    ?(obs = Obs.default) (cm : Cutset_model.t) ~horizon =
  match cm.Cutset_model.model with
  | None ->
    (* Purely static or impossible: quantification is a multiplication. *)
    Cutset_model.quantify ~epsilon ~max_states cm ~horizon
  | Some sd_c ->
    let t0 = Sdft_util.Timer.start () in
    let h = handles_of obs.Obs.metrics in
    let sink = obs.Obs.trace in
    Sdft_util.Failpoint.hit_in obs.Obs.failpoints "cache.lookup";
    let key =
      key_of_digest (digest_of cm sd_c) ~epsilon ~max_states ~horizon
        ~engine_tag
    in
    let looked_up = find t key in
    Metrics.observe h.m_lookup_s (Sdft_util.Timer.elapsed_s t0);
    (match looked_up with
    | Some (e, origin) ->
      Atomic.incr t.hit_count;
      Metrics.incr h.m_hits;
      if origin = Warm then begin
        Atomic.incr t.disk_hit_count;
        Metrics.incr h.m_disk_hits
      end;
      Trace.instant ~sink "quant_cache.hit";
      {
        Cutset_model.probability =
          e.e_prob *. cm.Cutset_model.static_multiplier;
        product_states = e.e_states;
        product_transitions = e.e_transitions;
        solver_steps = e.e_steps;
        solver_error = epsilon *. cm.Cutset_model.static_multiplier;
        from_cache = true;
        seconds = Sdft_util.Timer.elapsed_s t0;
      }
    | None ->
      Atomic.incr t.miss_count;
      Metrics.incr h.m_misses;
      if t.disk <> None then begin
        Atomic.incr t.disk_miss_count;
        Metrics.incr h.m_disk_misses
      end;
      Trace.instant ~sink "quant_cache.miss";
      (* Too_many_states and guard interrupts propagate before anything is
         stored, so a limit can never poison the cache with a partial value. *)
      let ws =
        match workspace with Some w -> w | None -> Transient.workspace ()
      in
      let built = Sdft_product.build ~max_states ?guard ~obs sd_c in
      let p_dyn =
        Sdft_product.unreliability ~epsilon ?guard ~workspace:ws ~obs built
          ~horizon
      in
      let transitions = Ctmc.n_transitions built.Sdft_product.chain in
      let steps = Transient.last_steps ws in
      store t key
        {
          e_prob = p_dyn;
          e_states = built.n_states;
          e_transitions = transitions;
          e_steps = steps;
        };
      {
        Cutset_model.probability = p_dyn *. cm.Cutset_model.static_multiplier;
        product_states = built.n_states;
        product_transitions = transitions;
        solver_steps = steps;
        solver_error = epsilon *. cm.Cutset_model.static_multiplier;
        from_cache = false;
        seconds = Sdft_util.Timer.elapsed_s t0;
      })

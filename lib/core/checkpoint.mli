(** Crash-safe checkpoint journal for horizon/parameter sweeps.

    A journal is an append-only {!Sdft_util.Store} log (batch 1: every
    record flushed as written) holding two record kinds:

    - {e items} — one per certified per-cutset quantification, in exactly
      the disk cache's codec ({!Quant_cache.encode_record}), appended live
      through {!Quant_cache.set_on_store} as the sweep solves;
    - {e points} — one per fully completed sweep point, carrying the
      certified interval and provenance the CLI printed for that row.

    A sweep killed mid-flight (even [SIGKILL]) therefore leaves a journal
    whose valid prefix is exactly the completed work: on [--resume] the
    sweep seeds its cache from the item records (so partially finished
    points recompute only their unfinished cutsets) and skips point-record
    points outright, reprinting the stored result bit-identically — floats
    travel as hex literals and round-trip exactly.

    The header stamp extends {!Quant_cache.version_stamp}, so a solver or
    codec change invalidates old journals rather than resuming from stale
    certificates. Journal {e writes} never take a sweep down: an IO failure
    (including the ["checkpoint.record"] {!Sdft_util.Failpoint} site and
    ["store.append"] underneath it) marks the journal broken, surfaced via
    {!journal_error}, and the sweep carries on un-checkpointed. *)

type point = {
  pt_key : string;  (** {!Sdft_analysis.point_key} of model + options *)
  pt_horizon : float;
  pt_total : float;
  pt_lower : float;
  pt_upper : float;
  pt_vacuous : bool;
  pt_n_cutsets : int;
  pt_n_dynamic : int;
  pt_degraded : string option;
      (** {!Sdft_analysis.degradation_description} when the point
          degraded, [None] for a clean point *)
}

type t

val open_ : string -> t
(** Open or create the journal at a path, loading every valid record.
    Raises [Unix.Unix_error] / [Sys_error] when the file cannot be opened
    at all — a sweep explicitly asked to checkpoint should fail loudly
    rather than run silently unprotected. If another handle owns the
    writer lock the journal degrades to {!read_only}: records load, new
    ones are dropped. *)

val entries : t -> (string * Quant_cache.entry) list
(** Item records in file order — feed to {!Quant_cache.seed}. *)

val find_point : t -> string -> point option
(** The completed-point record for a point key, if the journal has one. *)

val n_points : t -> int

val record_entry : t -> string -> Quant_cache.entry -> unit
(** Journal one certified item. Never raises on IO trouble (see
    {!journal_error}); drops silently on a read-only or broken journal. *)

val record_point : t -> point -> unit
(** Journal one completed point (and make it visible to {!find_point}).
    Same failure contract as {!record_entry}. *)

val journal_error : t -> string option
(** The first IO failure that broke the journal, if any. *)

val read_only : t -> bool
(** Another handle owns the writer lock; this journal only reads. *)

val close : t -> unit
(** Flush and close. IO failures land in {!journal_error}. *)

(** {1 Codec internals, exposed for tests} *)

val stamp : string

val encode_point : point -> string

val decode_point : string -> point option

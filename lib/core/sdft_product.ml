module Int_set = Sdft_util.Int_set
module Obs = Sdft_util.Obs
module Metrics = Sdft_util.Metrics
module Failpoint = Sdft_util.Failpoint

type built = {
  chain : Ctmc.t;
  init : (int * float) list;
  failed : bool array;
  participants : int array;
  n_states : int;
}

exception Too_many_states of int

(* Per-participant component data, extracted once from the Dbe / static
   probability so the exploration loop works on plain arrays. *)
type component = {
  basic : int;
  n_local : int;
  rows : (int * float) array array;
  init_local : (int * float) list;
  failed_local : bool array;
  trigger_gate : int; (* -1 when untriggered *)
  mode_on : bool array; (* true = on *)
  partner : int array; (* on <-> off; identity for untriggered *)
}

let component_of_basic sd b =
  let tree = Sdft.tree sd in
  if Sdft.is_dynamic sd b then begin
    let d = Sdft.dbe sd b in
    let n_local = Dbe.n_states d in
    let chain = Dbe.chain d in
    let rows = Array.init n_local (Ctmc.outgoing chain) in
    let failed_local = Array.init n_local (Dbe.is_failed d) in
    let triggered = Dbe.is_triggered_model d in
    let mode_on = Array.init n_local (fun s -> Dbe.mode_of d s = Dbe.On) in
    let partner =
      Array.init n_local (fun s ->
          if not triggered then s
          else if mode_on.(s) then Dbe.switch_off d s
          else Dbe.switch_on d s)
    in
    let trigger_gate =
      match Sdft.trigger_of sd b with
      | Some g -> g
      | None -> -1
    in
    {
      basic = b;
      n_local;
      rows;
      init_local = List.filter (fun (_, p) -> p > 0.0) (Dbe.init d);
      failed_local;
      trigger_gate;
      mode_on;
      partner;
    }
  end
  else begin
    let p = Fault_tree.prob tree b in
    let init_local =
      List.filter (fun (_, m) -> m > 0.0) [ (0, 1.0 -. p); (1, p) ]
    in
    {
      basic = b;
      n_local = 2;
      rows = [| [||]; [||] |];
      init_local;
      failed_local = [| false; true |];
      trigger_gate = -1;
      mode_on = [| true; true |];
      partner = [| 0; 1 |];
    }
  end

type semantics = {
  sd : Sdft.t;
  assumed_failed : Int_set.t;
  assumed_arr : bool array; (* assumed_failed as a flat lookup *)
  components : component array;
  slot_of_basic : int array;
  n_triggered : int;
  gates_buf : bool array;
      (* scratch for gate evaluations; closure passes stop allocating a
         gates array per call. One semantics must not be shared between
         domains. *)
}

let semantics ?(assumed_failed = Int_set.empty) sd =
  let tree = Sdft.tree sd in
  Int_set.iter
    (fun b ->
      if Sdft.is_dynamic sd b then
        invalid_arg "Sdft_product: assumed_failed must be static")
    assumed_failed;
  let participants =
    Array.of_list
      (List.filter
         (fun b -> not (Int_set.mem b assumed_failed))
         (List.init (Fault_tree.n_basics tree) Fun.id))
  in
  let components = Array.map (component_of_basic sd) participants in
  let slot_of_basic = Array.make (Fault_tree.n_basics tree) (-1) in
  Array.iteri (fun slot c -> slot_of_basic.(c.basic) <- slot) components;
  let n_triggered =
    Array.fold_left
      (fun acc c -> if c.trigger_gate >= 0 then acc + 1 else acc)
      0 components
  in
  let assumed_arr = Array.make (Fault_tree.n_basics tree) false in
  Int_set.iter (fun b -> assumed_arr.(b) <- true) assumed_failed;
  {
    sd;
    assumed_failed;
    assumed_arr;
    components;
    slot_of_basic;
    n_triggered;
    gates_buf = Array.make (Fault_tree.n_gates tree) false;
  }

let sem_components sem = sem.components

(* Evaluates into the semantics' scratch buffer; the returned array is
   overwritten by the next [eval] on the same semantics. *)
let eval sem state =
  let assumed = sem.assumed_arr in
  let slots = sem.slot_of_basic in
  let comps = sem.components in
  let basic_failed b =
    assumed.(b)
    ||
    let slot = slots.(b) in
    slot >= 0 && comps.(slot).failed_local.(state.(slot))
  in
  Fault_tree.eval_gates_into (Sdft.tree sem.sd) ~failed:basic_failed
    sem.gates_buf;
  sem.gates_buf

(* Update closure: switch triggered events until consistent. Each pass
   settles at least the events whose triggers' values are final, so
   n_triggered + 1 passes always suffice (trigger structure is acyclic).
   Without triggered events every state is already consistent, and the
   exploration loops skip the gate evaluations entirely. *)
let sem_close sem state =
  if sem.n_triggered = 0 then ()
  else begin
  let passes = ref 0 in
  let changed = ref true in
  while !changed do
    changed := false;
    let gates = eval sem state in
    Array.iteri
      (fun slot c ->
        if c.trigger_gate >= 0 then begin
          let on = c.mode_on.(state.(slot)) in
          let want_on = gates.(c.trigger_gate) in
          if on <> want_on then begin
            state.(slot) <- c.partner.(state.(slot));
            changed := true
          end
        end)
      sem.components;
    incr passes;
    if !passes > sem.n_triggered + 2 then
      failwith "Sdft_product: update closure did not converge (cyclic triggers?)"
  done
  end

let sem_fails_top sem state =
  (eval sem state).(Fault_tree.top (Sdft.tree sem.sd))

let sem_initial_states sem ~max_states =
  let n_components = Array.length sem.components in
  let masses : (int array, float) Hashtbl.t = Hashtbl.create 64 in
  let rec enumerate slot prefix mass =
    if mass > 0.0 then begin
      if slot = n_components then begin
        let state = Array.copy prefix in
        sem_close sem state;
        if Hashtbl.length masses >= max_states && not (Hashtbl.mem masses state)
        then raise (Too_many_states (Hashtbl.length masses));
        let prev = try Hashtbl.find masses state with Not_found -> 0.0 in
        Hashtbl.replace masses state (prev +. mass)
      end
      else
        List.iter
          (fun (s, p) ->
            prefix.(slot) <- s;
            enumerate (slot + 1) prefix (mass *. p))
          sem.components.(slot).init_local
    end
  in
  enumerate 0 (Array.make n_components 0) 1.0;
  Hashtbl.fold (fun state m acc -> (state, m) :: acc) masses []

(* Mixed-radix packing: the component state vector fits one OCaml int when
   the product of the local state counts does (FT_C components have 2-6
   local states, so this is virtually always true). Packed states intern
   through an int-keyed table and the successor loop reuses two scratch
   vectors — no per-transition array allocation or polymorphic hashing. *)
let radix_strides components =
  let n = Array.length components in
  let strides = Array.make n 1 in
  let rec fits i acc =
    if i = n then Some strides
    else begin
      strides.(i) <- acc;
      let r = components.(i).n_local in
      if r = 0 || acc > max_int / r then None else fits (i + 1) (acc * r)
    end
  in
  fits 0 1

let pack strides state =
  let key = ref 0 in
  for i = 0 to Array.length state - 1 do
    key := !key + (state.(i) * strides.(i))
  done;
  !key

let unpack strides key state =
  let k = ref key in
  for i = Array.length state - 1 downto 0 do
    let q = !k / strides.(i) in
    state.(i) <- q;
    k := !k - (q * strides.(i))
  done

(* Exploration produces identical state numbering (and hence bit-identical
   chains) on both paths: initial states are interned in the same order and
   the successor loops visit (slot, local transition) pairs identically. *)
let build_packed sem ~max_states ~guard ~fp strides =
  let components = sem.components in
  let n_components = Array.length components in
  let ids : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let keys : int Sdft_util.Vec.t = Sdft_util.Vec.create () in
  let failed_v = Sdft_util.Vec.create () in
  let frontier = Queue.create () in
  let intern key state =
    match Hashtbl.find_opt ids key with
    | Some id -> id
    | None ->
      let id = Sdft_util.Vec.length keys in
      if id >= max_states then raise (Too_many_states id);
      Hashtbl.add ids key id;
      Sdft_util.Vec.push keys key;
      Sdft_util.Vec.push failed_v (sem_fails_top sem state);
      Queue.add id frontier;
      id
  in
  let init_mass : (int, float) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (state, m) ->
      let id = intern (pack strides state) state in
      let prev = try Hashtbl.find init_mass id with Not_found -> 0.0 in
      Hashtbl.replace init_mass id (prev +. m))
    (sem_initial_states sem ~max_states);
  (* Breadth-first exploration of consistent states over two reused scratch
     vectors: [state] is the decoded source, [next] the successor being
     closed. *)
  let srcs : int Sdft_util.Vec.t = Sdft_util.Vec.create () in
  let dsts : int Sdft_util.Vec.t = Sdft_util.Vec.create () in
  let trates : float Sdft_util.Vec.t = Sdft_util.Vec.create () in
  let state = Array.make n_components 0 in
  let next = Array.make n_components 0 in
  while not (Queue.is_empty frontier) do
    Sdft_util.Guard.check guard;
    Failpoint.hit_in fp "product.explore";
    let src = Queue.pop frontier in
    unpack strides (Sdft_util.Vec.get keys src) state;
    for slot = 0 to n_components - 1 do
      let row = components.(slot).rows.(state.(slot)) in
      Array.iter
        (fun (dst_local, rate) ->
          Array.blit state 0 next 0 n_components;
          next.(slot) <- dst_local;
          sem_close sem next;
          let dst = intern (pack strides next) next in
          if dst <> src then begin
            Sdft_util.Vec.push srcs src;
            Sdft_util.Vec.push dsts dst;
            Sdft_util.Vec.push trates rate
          end)
        row
    done
  done;
  let n_states = Sdft_util.Vec.length keys in
  let chain =
    Ctmc.of_arrays ~n_states
      ~srcs:(Sdft_util.Vec.to_array srcs)
      ~dsts:(Sdft_util.Vec.to_array dsts)
      ~rates:(Sdft_util.Vec.to_array trates)
  in
  let init = Hashtbl.fold (fun id m acc -> (id, m) :: acc) init_mass [] in
  {
    chain;
    init;
    failed = Sdft_util.Vec.to_array failed_v;
    participants = Array.map (fun c -> c.basic) components;
    n_states;
  }

(* Generic fallback for oversized radix products: array-keyed interning with
   a state copy per explored transition. *)
let build_generic sem ~max_states ~guard ~fp =
  let components = sem.components in
  let ids : (int array, int) Hashtbl.t = Hashtbl.create 64 in
  let states = Sdft_util.Vec.create () in
  let failed_v = Sdft_util.Vec.create () in
  let frontier = Queue.create () in
  let intern state =
    match Hashtbl.find_opt ids state with
    | Some id -> id
    | None ->
      let id = Sdft_util.Vec.length states in
      if id >= max_states then raise (Too_many_states id);
      Hashtbl.add ids state id;
      Sdft_util.Vec.push states state;
      Sdft_util.Vec.push failed_v (sem_fails_top sem state);
      Queue.add id frontier;
      id
  in
  let init_mass : (int, float) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (state, m) ->
      let id = intern state in
      let prev = try Hashtbl.find init_mass id with Not_found -> 0.0 in
      Hashtbl.replace init_mass id (prev +. m))
    (sem_initial_states sem ~max_states);
  (* Breadth-first exploration of consistent states. *)
  let transitions = Sdft_util.Vec.create () in
  while not (Queue.is_empty frontier) do
    Sdft_util.Guard.check guard;
    Failpoint.hit_in fp "product.explore";
    let src = Queue.pop frontier in
    let state = Sdft_util.Vec.get states src in
    Array.iteri
      (fun slot c ->
        Array.iter
          (fun (dst_local, rate) ->
            let next = Array.copy state in
            next.(slot) <- dst_local;
            sem_close sem next;
            let dst = intern next in
            if dst <> src then Sdft_util.Vec.push transitions (src, dst, rate))
          c.rows.(state.(slot)))
      components
  done;
  let n_states = Sdft_util.Vec.length states in
  let chain =
    Ctmc.make ~n_states ~transitions:(Sdft_util.Vec.to_list transitions)
  in
  let init = Hashtbl.fold (fun id m acc -> (id, m) :: acc) init_mass [] in
  {
    chain;
    init;
    failed = Sdft_util.Vec.to_array failed_v;
    participants = Array.map (fun c -> c.basic) components;
    n_states;
  }

let build ?(max_states = 1_000_000) ?assumed_failed ?(generic = false)
    ?(guard = Sdft_util.Guard.none) ?(obs = Obs.default) sd =
  let sink = obs.Obs.trace in
  let fp = obs.Obs.failpoints in
  Sdft_util.Trace.with_span ~sink "product.build" (fun () ->
      let t0 = Sdft_util.Timer.start () in
      let sem = semantics ?assumed_failed sd in
      let built =
        if generic then build_generic sem ~max_states ~guard ~fp
        else
          match radix_strides sem.components with
          | Some strides -> build_packed sem ~max_states ~guard ~fp strides
          | None -> build_generic sem ~max_states ~guard ~fp
      in
      (* Exploration throughput, one observation per build: the latency
         distribution across cutset products is exactly the per-module
         heterogeneity the explain view wants to surface. *)
      let dt = Sdft_util.Timer.elapsed_s t0 in
      if dt > 0.0 then
        Metrics.observe
          (Metrics.histogram_in obs.Obs.metrics "product.build_states_per_s")
          (float_of_int built.n_states /. dt);
      Sdft_util.Trace.add_attr ~sink "states"
        (Sdft_util.Trace.Int built.n_states);
      Sdft_util.Trace.add_attr ~sink "transitions"
        (Sdft_util.Trace.Int (Ctmc.n_transitions built.chain));
      built)

let unreliability ?(epsilon = 1e-12) ?guard ?workspace ?obs built ~horizon =
  let options = { Transient.default_options with epsilon } in
  Transient.reach_within ~options ?guard ?workspace ?obs built.chain
    ~init:built.init
    ~target:(fun s -> built.failed.(s))
    ~t:horizon

let solve ?max_states ?epsilon ?guard ?obs sd ~horizon =
  let built = build ?max_states ?guard ?obs sd in
  unreliability ?epsilon ?guard ?obs built ~horizon

(** Cross-analysis cache for per-cutset quantification, with an optional
    persistent disk tier.

    A horizon/parameter sweep re-quantifies the same cutset sub-models over
    and over: industrial trees repeat the same component models across
    trains, so many cutsets build {e isomorphic} [FT_C] models, and repeated
    [Sdft_analysis.analyze] calls over one model rebuild identical ones.
    This cache keys the expensive part of {!Cutset_model.quantify} — the
    product-chain construction and transient solve — on a canonical
    fingerprint of the [FT_C] sub-model together with the numerical
    parameters (epsilon, state bound, horizon). The static multiplier is
    factored {e out} of the key, so cutsets that differ only in their static
    events share one entry.

    The fingerprint is a deterministic serialization of the model reached
    from its top gate: gate kinds and input order, static probabilities,
    full CTMC descriptors of dynamic events (states, transitions, initial
    distribution, failed set, on/off structure) and trigger wiring, with
    names replaced by first-visit indices. Two models with equal
    fingerprints are isomorphic up to renaming and therefore have equal
    time-aware probabilities. The rel-rule does not appear in the key
    because it acts upstream, during model {e construction}: its effect is
    already captured by the fingerprinted structure. In-memory and on disk
    the fingerprint is represented by its 128-bit MD5 digest (hex), memoized
    on the {!Cutset_model.t} so repeated lookups skip the O(sub-model)
    serialization; colliding digests of distinct non-adversarial model
    serializations are vastly less likely than solver-epsilon-sized noise.

    Safe to share across domains: lookups and inserts take a per-cache lock
    (negligible next to a CTMC solve), hit/miss tallies are atomics. *)

type t

val create : unit -> t
(** A memory-only cache. *)

val hits : t -> int

val misses : t -> int
(** Misses count only quantifications that were {e cacheable} (the cutset
    had a dynamic sub-model); purely static cutsets bypass the cache and
    count as neither. *)

val fingerprint : Sdft.t -> string
(** Canonical fingerprint of a model (exposed for tests and the cache-key
    micro-benchmark; lookups use its memoized digest, see {!key_of}). *)

val key_of :
  ?engine_tag:string ->
  epsilon:float ->
  max_states:int ->
  horizon:float ->
  Cutset_model.t ->
  string option
(** The exact cache key {!quantify} would use for this cutset — the
    memoized fingerprint digest plus the numerical parameters — or [None]
    for model-less (purely static / impossible) cutsets, which bypass the
    cache. First call on a cutset computes and memoizes the digest. *)

val quantify :
  t ->
  epsilon:float ->
  max_states:int ->
  ?guard:Sdft_util.Guard.t ->
  ?workspace:Transient.workspace ->
  ?engine_tag:string ->
  ?obs:Sdft_util.Obs.t ->
  Cutset_model.t ->
  horizon:float ->
  Cutset_model.quantification
(** Drop-in replacement for {!Cutset_model.quantify}. [engine_tag], when
    non-empty, becomes part of the cache key: entries stay attributable to
    the cutset engine whose analysis produced them, so two engines racing
    over one shared cache never alias each other's entries (at the cost of
    one extra solve per shared sub-model in such races). On a hit,
    [from_cache] is set and the provenance fields ([product_states],
    [product_transitions], [solver_steps]) report the originally solved
    chain; hits and misses are also published as {!Sdft_util.Trace} instant
    events when tracing is enabled.
    [Sdft_product.Too_many_states] — like {!Sdft_util.Guard.Limit_hit} from
    [guard] — propagates uncached, so retrying with a larger bound is never
    poisoned by a previous failure. [obs] (default {!Sdft_util.Obs.default})
    supplies the observability context: its [cache.lookup]
    {!Sdft_util.Failpoint} site fires before each cacheable lookup, each
    lookup's latency lands on its [cache.lookup_s] histogram, and the
    hit/miss counters and trace instants go to its registries. [workspace]
    is per-caller solver scratch (see {!Cutset_model.quantify}); the cache
    itself stays shareable across domains. *)

(** {1 Disk tier}

    A cache opened with {!open_disk} is backed by an append-only
    {!Sdft_util.Store} log: entries present in the file are preloaded into
    the table, and every fresh solve is appended (batched; a crash loses at
    most the last unflushed batch). The store header is stamped with
    {!version_stamp}, so a solver or codec change silently invalidates old
    files instead of replaying stale certified results. When another
    process (or another handle in this one) already owns the writer lock,
    the store degrades to read-only sharing: warm entries still hit, fresh
    solves stay memory-only.

    IO failures after a successful open — including the [store.append]
    {!Sdft_util.Failpoint} site — never fail the analysis: they feed a
    {e circuit breaker}. The breaker starts [closed]; [breaker_threshold]
    consecutive append failures (or a single failure that tore the
    {!Sdft_util.Store} handle down) trip it [open], where appends are
    skipped — but remembered — for a deterministic cooldown counted in
    skipped appends ([breaker_cooldown], doubling per consecutive open
    episode up to [breaker_cooldown_cap]). The cooldown's end moves the
    breaker to [half_open]; the next append becomes a {e probe} that
    reopens the file if necessary, backfills every entry the file is
    missing (skipped records, and — after a reopen — anything lost with an
    unflushed batch), writes the pending record and flushes. A successful
    probe closes the breaker and clears [disk_error] — the disk tier heals
    without restarting the process; a failed probe re-opens it with a
    doubled cooldown. State and counters are visible in {!disk_stats}; a
    failed {!open_disk} itself still degrades to a plain memory-only cache
    (no breaker — there is nothing to recover to). *)

type entry = {
  e_prob : float;  (** dynamic probability, before the static multiplier *)
  e_states : int;
  e_transitions : int;
  e_steps : int;
}
(** The cached value: result plus solve provenance. *)

val version_stamp : string
(** Store-header stamp: record-codec revision + build-time digest of the
    solver sources (see [tools/gen_stamp]). *)

val open_disk :
  ?batch:int ->
  ?breaker_threshold:int ->
  ?breaker_cooldown:int ->
  ?breaker_cooldown_cap:int ->
  string ->
  t
(** [open_disk path] returns a cache warm-started from [path] (created
    empty if absent) that persists fresh solves back to it. [batch] is the
    append count between flushes (default 32). [breaker_threshold] (default
    3) is the consecutive-append-failure count that trips the circuit
    breaker; [breaker_cooldown] (default 4) the skipped-append count before
    the first half-open probe, doubling per consecutive open episode up to
    [breaker_cooldown_cap] (default 64). Never raises on IO trouble: the
    result is then an ordinary memory-only cache ({!disk_stats} =
    [None]). *)

val flush : t -> unit
(** Push buffered appends to disk (no-op for memory-only caches). *)

val close : t -> unit
(** Flush, release the writer lock and close the disk tier. Idempotent;
    the cache remains usable memory-only afterwards. *)

type disk_stats = {
  disk_path : string;
  read_only : bool;  (** another writer owns the file; sharing read-only *)
  entries_loaded : int;  (** valid records preloaded at open *)
  load_ms : float;  (** wall time of the preload *)
  disk_hits : int;  (** hits served by preloaded/seeded entries *)
  disk_misses : int;  (** misses while the disk tier was attached *)
  appends : int;  (** records appended, monotone across breaker reopens *)
  disk_error : string option;
      (** the failure that tripped the breaker; cleared when a probe
          recovers the tier *)
  breaker : string;  (** ["closed"], ["open"] or ["half_open"] *)
  breaker_opens : int;  (** times the breaker tripped *)
  breaker_probes : int;  (** half-open probes attempted *)
  breaker_recoveries : int;  (** probes that restored the disk tier *)
}

val disk_stats : t -> disk_stats option
(** [None] for memory-only caches (including an {!open_disk} whose open
    failed outright). The counters are also published as metrics
    [cache.disk_hits] / [cache.disk_misses] / [cache.appends] /
    [cache.load_ms] / [cache.breaker_opens] / [cache.breaker_recoveries],
    and the load and each flush emit {!Sdft_util.Trace} instants. *)

val set_on_store : t -> (string -> entry -> unit) -> unit
(** Register a callback fired (outside the table lock) each time a {e
    fresh} solve lands in the table — not for warm-loaded or seeded
    entries, and at most once per key. The checkpointed sweep uses this to
    journal every completed work item as it happens. *)

(** {1 Warm-start import/export}

    The manifest side of differential re-analysis ([analyze --save] /
    [--diff]): {!export} captures the (key, entry) pairs of a run for
    embedding in a result manifest, {!seed} preloads them into a fresh
    cache so unchanged-fingerprint cutsets hit and only changed ones
    re-solve. *)

val export : t -> (string * entry) list
(** Snapshot of all entries, in no particular order. *)

val seed : t -> (string * entry) list -> int
(** Insert entries that are not already present; returns how many were
    added. Seeded entries count as warm for {!disk_stats} and are appended
    to an attached writable store, so a manifest used once also warms the
    file. *)

(** {1 Record codec, exposed for tests} *)

val encode_record : string -> entry -> string
(** [encode_record key e] is the store payload for one entry:
    [<key length>:<key>|<prob %h>|<states>|<transitions>|<steps>]. *)

val decode_record : string -> (string * entry) option
(** Inverse of {!encode_record}; [None] on any malformed payload. *)

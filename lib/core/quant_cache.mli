(** Cross-analysis cache for per-cutset quantification.

    A horizon/parameter sweep re-quantifies the same cutset sub-models over
    and over: industrial trees repeat the same component models across
    trains, so many cutsets build {e isomorphic} [FT_C] models, and repeated
    [Sdft_analysis.analyze] calls over one model rebuild identical ones.
    This cache keys the expensive part of {!Cutset_model.quantify} — the
    product-chain construction and transient solve — on a canonical
    fingerprint of the [FT_C] sub-model together with the numerical
    parameters (epsilon, state bound, horizon). The static multiplier is
    factored {e out} of the key, so cutsets that differ only in their static
    events share one entry.

    The fingerprint is a deterministic serialization of the model reached
    from its top gate: gate kinds and input order, static probabilities,
    full CTMC descriptors of dynamic events (states, transitions, initial
    distribution, failed set, on/off structure) and trigger wiring, with
    names replaced by first-visit indices. Two models with equal
    fingerprints are isomorphic up to renaming and therefore have equal
    time-aware probabilities. The rel-rule does not appear in the key
    because it acts upstream, during model {e construction}: its effect is
    already captured by the fingerprinted structure.

    Safe to share across domains: lookups and inserts take a per-cache lock
    (negligible next to a CTMC solve), hit/miss tallies are atomics. *)

type t

val create : unit -> t

val hits : t -> int

val misses : t -> int
(** Misses count only quantifications that were {e cacheable} (the cutset
    had a dynamic sub-model); purely static cutsets bypass the cache and
    count as neither. *)

val fingerprint : Sdft.t -> string
(** Canonical fingerprint of a model (exposed for tests). *)

val quantify :
  t ->
  epsilon:float ->
  max_states:int ->
  ?guard:Sdft_util.Guard.t ->
  ?workspace:Transient.workspace ->
  ?engine_tag:string ->
  Cutset_model.t ->
  horizon:float ->
  Cutset_model.quantification
(** Drop-in replacement for {!Cutset_model.quantify}. [engine_tag], when
    non-empty, becomes part of the cache key: entries stay attributable to
    the cutset engine whose analysis produced them, so two engines racing
    over one shared cache never alias each other's entries (at the cost of
    one extra solve per shared sub-model in such races). On a hit,
    [from_cache] is set and the provenance fields ([product_states],
    [product_transitions], [solver_steps]) report the originally solved
    chain; hits and misses are also published as {!Sdft_util.Trace} instant
    events when tracing is enabled.
    [Sdft_product.Too_many_states] — like {!Sdft_util.Guard.Limit_hit} from
    [guard] — propagates uncached, so retrying with a larger bound is never
    poisoned by a previous failure. The [cache.lookup] {!Sdft_util.Failpoint}
    site fires before each cacheable lookup. [workspace] is per-caller
    solver scratch (see {!Cutset_model.quantify}); the cache itself stays
    shareable across domains. *)

(** Quantification model [FT_C] of a minimal cutset (Section V-C).

    For a cutset [C] the time-aware probability
    [p~(C) = Pr(reach Failed(C) within t)] is computed on a small SD fault
    tree [FT_C] containing only the basic events relevant to [C]:

    + its top gate is an AND over the dynamic events of [C];
    + the static events of [C] are factored out as a plain probability
      product (they are conditioned to be failed, which also fixes them to
      true inside all triggering logic);
    + for every triggered event the timing of its trigger is reconstructed
      from a {e relevant set} [Rel_a] whose extent depends on the class of
      the triggering gate: with static branching only dynamic events of [C]
      below the gate matter, with static joins all dynamic events below the
      gate, and in the general case every basic event below the gate except
      the static ones of [C]. The minimal ways [A_1..A_k] in which the
      relevant events (together with the assumed-failed statics) fail the
      trigger gate are computed exactly by BDD/minimal-solutions and
      rebuilt as an OR-of-ANDs triggering the event;
    + events pulled in by step 3 that are themselves triggered are modeled
      with the general rule.

    Degenerate triggers are handled explicitly: a trigger gate already
    failed by the assumed statics becomes a constant-true trigger (the event
    is switched on from time zero); a trigger gate that can never fail makes
    a cutset event unreachable, so [p~(C) = 0]. *)

type t = {
  model : Sdft.t option;
      (** the SD fault tree [FT_C]; [None] when no product analysis is
          needed (purely static cutset or identically-zero probability) *)
  static_multiplier : float;
      (** product of the probabilities of the static events of [C] *)
  impossible : bool;  (** [p~(C) = 0] (some cutset event can never fail) *)
  n_dynamic_in_cutset : int;
  n_added_dynamic : int;
      (** dynamic events added because triggering gates lack static
          branching (the paper reports this average) *)
  n_added_static : int;
  mutable fp_digest : string option;
      (** memoized fixed-width digest of the canonical fingerprint of
          [model], filled in by the first {!Quant_cache} lookup so repeated
          lookups (sweeps, shared caches) skip the O(sub-model)
          re-serialization. Written at most once per value, by the domain
          quantifying this cutset; [None] until then and for model-less
          cutsets. *)
}

type context
(** Caches shared across cutsets of one analysis run: trigger-gate
    classifications and the BDD-computed minimal trigger sets keyed by
    (gate, relevant set, assumed statics). Industrial cutset lists hit the
    same few trigger gates thousands of times. *)

val context : Sdft.t -> context

type rel_rule =
  | Paper
      (** Section V-C's relevant sets: [Dyn ∩ C] under static branching,
          [Dyn] under static joins, everything except statics-of-C in the
          general case. Efficient, but trigger paths through events outside
          the reduced set are ignored, so [p~(C)] can slightly
          under-approximate [Pr(Reach(Failed C))] when a trigger gate can
          also be failed by events the rule drops. *)
  | All_events
      (** Use the general rule for every trigger gate: exact per-cutset
          quantification at the cost of larger product chains. *)

val build :
  ?context:context ->
  ?rel_rule:rel_rule ->
  ?guard:Sdft_util.Guard.t ->
  ?obs:Sdft_util.Obs.t ->
  Sdft.t ->
  Cutset.t ->
  t
(** Without an explicit [context] a fresh one is used (no sharing).
    [rel_rule] defaults to [Paper]. [guard] is checkpointed inside the
    trigger-set BDD compilations — the one part of model construction that
    can blow up on adversarial trigger gates; on a trip
    {!Sdft_util.Guard.Limit_hit} propagates before the context memo is
    touched (the analysis layer catches it and falls back). *)

type quantification = {
  probability : float;  (** [p~(C)] *)
  product_states : int;  (** size of the Markov chain analysed (0 = none) *)
  product_transitions : int;  (** transitions of that chain (0 = none) *)
  solver_steps : int;
      (** uniformized DTMC steps the transient solve performed *)
  solver_error : float;
      (** upper bound on the numerical error of [probability] contributed by
          the transient solve: the uniformization epsilon scaled by the
          static multiplier; [0.] when no chain was solved. Feeds the
          analysis error budget. *)
  from_cache : bool;
      (** the value was served by a {!Quant_cache} hit (provenance fields
          then describe the originally solved chain) *)
  seconds : float;
}

val quantify :
  ?epsilon:float ->
  ?max_states:int ->
  ?guard:Sdft_util.Guard.t ->
  ?workspace:Transient.workspace ->
  ?obs:Sdft_util.Obs.t ->
  t ->
  horizon:float ->
  quantification
(** Builds the product chain of [model] (when present), runs the transient
    analysis and multiplies by [static_multiplier]. [workspace] lets
    back-to-back quantifications reuse the solver's scratch vectors; do not
    share one workspace across domains. [guard] is threaded into the product
    exploration and the transient solve; on a trip
    {!Sdft_util.Guard.Limit_hit} propagates (the analysis layer catches it
    and falls back to the static worst-case bound). *)

(** {1 Result serialization}

    The per-cutset payload of a saved analysis manifest ([analyze --save] /
    [analyze --diff]). Floats are emitted with 17 significant digits, which
    round-trips every finite double bit-exactly. *)

val quantification_to_json : quantification -> string
(** One JSON object: [probability], [states], [transitions], [steps],
    [solver_error]. The volatile fields ([seconds], [from_cache]) are
    deliberately not serialized. *)

val quantification_of_json :
  Sdft_util.Json.value -> (quantification, string) result
(** Inverse of {!quantification_to_json} on its parsed output. The decoded
    record has [from_cache = true] (the value came from an earlier run) and
    [seconds = 0.]. *)

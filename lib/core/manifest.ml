module Json = Sdft_util.Json

type cutset_record = {
  events : string list;
  q : Cutset_model.quantification;
}

type t = {
  stamp : string;
  engine : string;
  horizon : float;
  cutoff : float;
  epsilon : float;
  max_states : int;
  total : float;
  lower : float;
  upper : float;
  cutsets : cutset_record list;
  cache_entries : (string * Quant_cache.entry) list;
}

let stamp_matches m = m.stamp = Quant_cache.version_stamp

let events_of_cutset sd cutset =
  let tree = Sdft.tree sd in
  List.sort String.compare
    (List.map (Fault_tree.basic_name tree)
       (Sdft_util.Int_set.to_list cutset))

let of_result ?cache sd (options : Sdft_analysis.options)
    (r : Sdft_analysis.result) =
  {
    stamp = Quant_cache.version_stamp;
    engine = Sdft_analysis.engine_name r.Sdft_analysis.engine_used;
    horizon = options.Sdft_analysis.horizon;
    cutoff = options.Sdft_analysis.cutoff;
    epsilon = options.Sdft_analysis.transient_epsilon;
    max_states = options.Sdft_analysis.max_product_states;
    total = r.Sdft_analysis.total;
    lower = r.Sdft_analysis.budget.Sdft_analysis.lower;
    upper = r.Sdft_analysis.budget.Sdft_analysis.upper;
    cutsets =
      List.map
        (fun (info : Sdft_analysis.cutset_info) ->
          {
            events = events_of_cutset sd info.Sdft_analysis.cutset;
            q =
              {
                Cutset_model.probability = info.Sdft_analysis.probability;
                product_states = info.Sdft_analysis.product_states;
                product_transitions = info.Sdft_analysis.product_transitions;
                solver_steps = info.Sdft_analysis.solver_steps;
                solver_error = info.Sdft_analysis.solver_error;
                from_cache = info.Sdft_analysis.from_cache;
                seconds = info.Sdft_analysis.solve_seconds;
              };
          })
        r.Sdft_analysis.cutsets;
    cache_entries =
      (match cache with None -> [] | Some c -> Quant_cache.export c);
  }

(* ------------------------------------------------------------------ *)
(* Serialization. Floats go through Json.add_float (17 significant
   digits), so a manifest round-trips every probability and bound
   bit-exactly — the diff below compares floats with [<>]. *)

let to_json m =
  let buf = Buffer.create 4096 in
  let field name =
    Buffer.add_string buf ", ";
    Json.add_string buf name;
    Buffer.add_string buf ": "
  in
  Buffer.add_string buf "{\"format\": 1";
  field "stamp";
  Json.add_string buf m.stamp;
  field "engine";
  Json.add_string buf m.engine;
  field "horizon";
  Json.add_float buf m.horizon;
  field "cutoff";
  Json.add_float buf m.cutoff;
  field "epsilon";
  Json.add_float buf m.epsilon;
  field "max_states";
  Buffer.add_string buf (string_of_int m.max_states);
  field "total";
  Json.add_float buf m.total;
  field "lower";
  Json.add_float buf m.lower;
  field "upper";
  Json.add_float buf m.upper;
  field "cutsets";
  Buffer.add_string buf "[";
  List.iteri
    (fun i cr ->
      if i > 0 then Buffer.add_string buf ", ";
      Buffer.add_string buf "\n  {\"events\": [";
      List.iteri
        (fun j e ->
          if j > 0 then Buffer.add_string buf ", ";
          Json.add_string buf e)
        cr.events;
      Buffer.add_string buf "], \"quantification\": ";
      Buffer.add_string buf (Cutset_model.quantification_to_json cr.q);
      Buffer.add_char buf '}')
    m.cutsets;
  Buffer.add_string buf "]";
  field "cache";
  Buffer.add_string buf "[";
  List.iteri
    (fun i (key, (e : Quant_cache.entry)) ->
      if i > 0 then Buffer.add_string buf ", ";
      Buffer.add_string buf "\n  {\"key\": ";
      Json.add_string buf key;
      Buffer.add_string buf ", \"prob\": ";
      Json.add_float buf e.Quant_cache.e_prob;
      Buffer.add_string buf
        (Printf.sprintf
           ", \"states\": %d, \"transitions\": %d, \"steps\": %d}"
           e.Quant_cache.e_states e.Quant_cache.e_transitions
           e.Quant_cache.e_steps))
    m.cache_entries;
  Buffer.add_string buf "]}\n";
  Buffer.contents buf

(* Atomic write: a crash mid-save must never leave a torn manifest where a
   good one stood — --diff trusts this file. *)
let save path m = Sdft_util.Atomic_io.write_file path (to_json m)

let of_json v =
  let ( let* ) r f = Result.bind r f in
  let str name =
    match Option.bind (Json.member name v) Json.to_string with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "manifest: missing string field %S" name)
  in
  let num name =
    match Option.bind (Json.member name v) Json.to_float with
    | Some f -> Ok f
    | None -> Error (Printf.sprintf "manifest: missing number field %S" name)
  in
  let int name =
    match Option.bind (Json.member name v) Json.to_int with
    | Some i -> Ok i
    | None -> Error (Printf.sprintf "manifest: missing integer field %S" name)
  in
  let* format = int "format" in
  if format <> 1 then
    Error (Printf.sprintf "manifest: unsupported format %d" format)
  else
    let* stamp = str "stamp" in
    let* engine = str "engine" in
    let* horizon = num "horizon" in
    let* cutoff = num "cutoff" in
    let* epsilon = num "epsilon" in
    let* max_states = int "max_states" in
    let* total = num "total" in
    let* lower = num "lower" in
    let* upper = num "upper" in
    let* cutset_items =
      match Option.bind (Json.member "cutsets" v) Json.to_list with
      | Some l -> Ok l
      | None -> Error "manifest: missing array field \"cutsets\""
    in
    let* cutsets =
      List.fold_left
        (fun acc item ->
          let* acc = acc in
          let* events =
            match Option.bind (Json.member "events" item) Json.to_list with
            | Some l -> (
              let names = List.map Json.to_string l in
              if List.for_all Option.is_some names then
                Ok (List.map Option.get names)
              else Error "manifest: non-string cutset event")
            | None -> Error "manifest: cutset record without events"
          in
          let* q =
            match Json.member "quantification" item with
            | Some qv -> Cutset_model.quantification_of_json qv
            | None -> Error "manifest: cutset record without quantification"
          in
          Ok ({ events; q } :: acc))
        (Ok []) cutset_items
    in
    let* cache_items =
      match Option.bind (Json.member "cache" v) Json.to_list with
      | Some l -> Ok l
      | None -> Error "manifest: missing array field \"cache\""
    in
    let* cache_entries =
      List.fold_left
        (fun acc item ->
          let* acc = acc in
          let get name conv =
            Option.bind (Json.member name item) conv
          in
          match
            ( get "key" Json.to_string,
              get "prob" Json.to_float,
              get "states" Json.to_int,
              get "transitions" Json.to_int,
              get "steps" Json.to_int )
          with
          | Some key, Some e_prob, Some e_states, Some e_transitions,
            Some e_steps ->
            Ok
              ((key,
                {
                  Quant_cache.e_prob;
                  e_states;
                  e_transitions;
                  e_steps;
                })
               :: acc)
          | _ -> Error "manifest: malformed cache entry")
        (Ok []) cache_items
    in
    Ok
      {
        stamp;
        engine;
        horizon;
        cutoff;
        epsilon;
        max_states;
        total;
        lower;
        upper;
        cutsets = List.rev cutsets;
        cache_entries = List.rev cache_entries;
      }

let load path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error m -> Error m
  | text -> (
    match Json.parse text with
    | Error e -> Error ("manifest: " ^ e)
    | Ok v -> of_json v)

(* ------------------------------------------------------------------ *)
(* Differential comparison: match cutsets of a fresh result against a
   saved manifest by their sorted basic-event-name sets and report which
   ones moved the certified interval. *)

type change =
  | Moved of float * float  (** old and new [p~(C)]; bitwise different *)
  | Appeared of float
  | Disappeared of float

type diff_entry = {
  d_events : string list;
  d_change : change;
  d_requantified : bool;
      (** the new run re-solved this cutset's product chain (a dynamic
          cutset missing the warm cache) — [false] for cutsets that only
          exist on the old side *)
}

type diff = {
  entries : diff_entry list;
  n_unchanged : int;
  n_requantified : int;
  old_total : float;
  new_total : float;
  old_interval : float * float;
  new_interval : float * float;
}

let delta_of = function
  | Moved (o, n) -> Float.abs (n -. o)
  | Appeared p | Disappeared p -> Float.abs p

let diff old_m sd (r : Sdft_analysis.result) =
  let tbl = Hashtbl.create 256 in
  List.iter
    (fun cr -> Hashtbl.replace tbl cr.events cr.q.Cutset_model.probability)
    old_m.cutsets;
  let entries = ref [] in
  let n_unchanged = ref 0 in
  let n_requantified = ref 0 in
  List.iter
    (fun (info : Sdft_analysis.cutset_info) ->
      let events = events_of_cutset sd info.Sdft_analysis.cutset in
      let requantified =
        info.Sdft_analysis.n_dynamic > 0
        && not info.Sdft_analysis.from_cache
      in
      if requantified then incr n_requantified;
      (match Hashtbl.find_opt tbl events with
      | Some old_p ->
        Hashtbl.remove tbl events;
        if old_p <> info.Sdft_analysis.probability then
          entries :=
            {
              d_events = events;
              d_change = Moved (old_p, info.Sdft_analysis.probability);
              d_requantified = requantified;
            }
            :: !entries
        else incr n_unchanged
      | None ->
        entries :=
          {
            d_events = events;
            d_change = Appeared info.Sdft_analysis.probability;
            d_requantified = requantified;
          }
          :: !entries))
    r.Sdft_analysis.cutsets;
  Hashtbl.iter
    (fun events old_p ->
      entries :=
        {
          d_events = events;
          d_change = Disappeared old_p;
          d_requantified = false;
        }
        :: !entries)
    tbl;
  let entries =
    List.sort
      (fun a b ->
        let c = compare (delta_of b.d_change) (delta_of a.d_change) in
        if c <> 0 then c else compare a.d_events b.d_events)
      !entries
  in
  {
    entries;
    n_unchanged = !n_unchanged;
    n_requantified = !n_requantified;
    old_total = old_m.total;
    new_total = r.Sdft_analysis.total;
    old_interval = (old_m.lower, old_m.upper);
    new_interval =
      ( r.Sdft_analysis.budget.Sdft_analysis.lower,
        r.Sdft_analysis.budget.Sdft_analysis.upper );
  }

let pp_events ppf events =
  Format.fprintf ppf "{%s}" (String.concat ", " events)

let pp_diff ppf d =
  let ol, ou = d.old_interval and nl, nu = d.new_interval in
  Format.fprintf ppf
    "@[<v>differential re-analysis:@,\
     \  old total %.6e, certified [%.3e, %.3e]@,\
     \  new total %.6e, certified [%.3e, %.3e]@,\
     \  %d cutset%s unchanged, %d requantified, %d moved the interval@]"
    d.old_total ol ou d.new_total nl nu d.n_unchanged
    (if d.n_unchanged = 1 then "" else "s")
    d.n_requantified
    (List.length d.entries);
  List.iter
    (fun e ->
      Format.fprintf ppf "@,  ";
      (match e.d_change with
      | Moved (o, n) ->
        Format.fprintf ppf "%a: %.6e -> %.6e (delta %+.3e)" pp_events
          e.d_events o n (n -. o)
      | Appeared p ->
        Format.fprintf ppf "%a: appeared at %.6e" pp_events e.d_events p
      | Disappeared p ->
        Format.fprintf ppf "%a: disappeared (was %.6e)" pp_events e.d_events p);
      if e.d_requantified then Format.fprintf ppf "  [re-solved]")
    d.entries

type t = {
  fd : Unix.file_descr;
  ic : in_channel;
  mutable closed : bool;
}

let connect addr =
  let fd =
    match addr with
    | Daemon.Unix_sock path ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try Unix.connect fd (Unix.ADDR_UNIX path)
       with e ->
         (try Unix.close fd with _ -> ());
         raise e);
      fd
    | Daemon.Tcp (host, port) ->
      let ip =
        try Unix.inet_addr_of_string host
        with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
      in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      (try Unix.connect fd (Unix.ADDR_INET (ip, port))
       with e ->
         (try Unix.close fd with _ -> ());
         raise e);
      fd
  in
  { fd; ic = Unix.in_channel_of_descr fd; closed = false }

let request t line =
  let payload = Bytes.of_string (line ^ "\n") in
  let n = Bytes.length payload in
  let rec write_all off =
    if off < n then write_all (off + Unix.write t.fd payload off (n - off))
  in
  write_all 0;
  input_line t.ic

let close t =
  if not t.closed then begin
    t.closed <- true;
    try close_in t.ic with Sys_error _ -> ()
  end

(* Retrying line client for the analysis daemon. One connection at a
   time; a select-based reader enforces the optional deadline, transport
   failures trigger reconnect-and-resend, and structured retryable
   rejections (saturated, quota_exceeded, shutting_down, worker_lost)
   are honoured by sleeping [retry_after] before resending. All retries
   within one [request] share a single budget of [retries] attempts. *)

module Json = Sdft_util.Json
module Backoff = Sdft_util.Backoff

exception Timeout of float

type conn = { fd : Unix.file_descr; mutable residue : string }

type t = {
  addr : Daemon.addr;
  timeout : float option;
  retries : int;
  backoff : Backoff.t;
  mutable conn : conn option;
  mutable retried : int;
  mutable closed : bool;
}

(* A transport error means the daemon (or the socket to it) went away:
   the connection is dead and a fresh connect + resend is the only
   recovery. Anything else is the caller's problem. ENOENT covers a
   unix-socket path that vanished while the daemon restarts. *)
let transport_error = function
  | End_of_file -> true
  | Unix.Unix_error
      ( ( Unix.EPIPE | Unix.ECONNRESET | Unix.ECONNREFUSED
        | Unix.ECONNABORTED | Unix.ENOTCONN | Unix.EBADF | Unix.ENOENT ),
        _,
        _ ) ->
    true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Raw connect. *)

let sockaddr_of = function
  | Daemon.Unix_sock path -> (Unix.PF_UNIX, Unix.ADDR_UNIX path)
  | Daemon.Tcp (host, port) ->
    let ip =
      try Unix.inet_addr_of_string host
      with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
    in
    (Unix.PF_INET, Unix.ADDR_INET (ip, port))

(* Connect with the deadline also bounding the handshake: non-blocking
   connect, EINPROGRESS waited out with select, and any pending SO_ERROR
   re-raised as the Unix error the blocking connect would have given. *)
let connect_fd ?timeout addr =
  let domain, sockaddr = sockaddr_of addr in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  (try
     match timeout with
     | None -> Unix.connect fd sockaddr
     | Some tmo ->
       Unix.set_nonblock fd;
       (try Unix.connect fd sockaddr with
       | Unix.Unix_error ((Unix.EINPROGRESS | Unix.EWOULDBLOCK), _, _) -> (
         let _, w, _ = Unix.select [] [ fd ] [] tmo in
         if w = [] then raise (Timeout tmo);
         match Unix.getsockopt_error fd with
         | None -> ()
         | Some err -> raise (Unix.Unix_error (err, "connect", ""))));
       Unix.clear_nonblock fd
   with e ->
     (try Unix.close fd with _ -> ());
     raise e);
  { fd; residue = "" }

(* ------------------------------------------------------------------ *)
(* Deadline-bounded line IO over the raw fd. *)

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write fd b !off (n - !off)
  done

let take_line c =
  match String.index_opt c.residue '\n' with
  | None -> None
  | Some i ->
    let line = String.sub c.residue 0 i in
    c.residue <-
      String.sub c.residue (i + 1) (String.length c.residue - i - 1);
    Some line

let read_line_deadline ?timeout c =
  let deadline = Option.map (fun tmo -> Unix.gettimeofday () +. tmo) timeout in
  let scratch = Bytes.create 65536 in
  let rec go () =
    match take_line c with
    | Some line -> line
    | None ->
      (match deadline with
      | None -> ()
      | Some d ->
        let remaining = d -. Unix.gettimeofday () in
        if remaining <= 0. then raise (Timeout (Option.get timeout));
        let r, _, _ = Unix.select [ c.fd ] [] [] remaining in
        if r = [] then raise (Timeout (Option.get timeout)));
      let n = Unix.read c.fd scratch 0 (Bytes.length scratch) in
      if n = 0 then raise End_of_file;
      c.residue <- c.residue ^ Bytes.sub_string scratch 0 n;
      go ()
  in
  go ()

(* ------------------------------------------------------------------ *)
(* Retry classification of a structured response line. *)

(* [Some retry_after] when the response is a structured error the server
   itself marked transient. [shutting_down] and [worker_lost] carry no
   retry_after; the backoff schedule alone paces those. *)
let retryable_rejection line =
  match Json.parse line with
  | Error _ -> None
  | Ok obj -> (
    match Json.member "ok" obj with
    | Some (Json.Bool false) -> (
      match Json.member "error" obj with
      | None -> None
      | Some err -> (
        match Option.bind (Json.member "code" err) Json.to_string with
        | Some
            ("saturated" | "quota_exceeded" | "shutting_down" | "worker_lost")
          ->
          Some
            (Option.value
               (Option.bind (Json.member "retry_after" err) Json.to_float)
               ~default:0.)
        | _ -> None))
    | _ -> None)

(* ------------------------------------------------------------------ *)
(* Connection lifecycle. *)

let drop_conn t =
  match t.conn with
  | None -> ()
  | Some c ->
    t.conn <- None;
    (try Unix.close c.fd with Unix.Unix_error _ -> ())

let ensure_conn t =
  match t.conn with
  | Some c -> c
  | None ->
    let c = connect_fd ?timeout:t.timeout t.addr in
    t.conn <- Some c;
    c

let connect ?timeout ?(retries = 0) ?backoff_seed addr =
  (* A write to a socket whose daemon died raises SIGPIPE before the
     EPIPE this client recovers from can surface; a retrying client is
     useless under the default kill-the-process disposition. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let backoff = Backoff.create ?seed:backoff_seed () in
  let t =
    {
      addr;
      timeout;
      retries;
      backoff;
      conn = None;
      retried = 0;
      closed = false;
    }
  in
  let rec attempt budget =
    match connect_fd ?timeout addr with
    | c -> t.conn <- Some c
    | exception e when transport_error e && budget > 0 ->
      t.retried <- t.retried + 1;
      Unix.sleepf (Backoff.next t.backoff);
      attempt (budget - 1)
  in
  attempt retries;
  Backoff.reset t.backoff;
  t

let request t line =
  if t.closed then invalid_arg "Client.request: closed client";
  let budget = ref t.retries in
  let spend () =
    decr budget;
    t.retried <- t.retried + 1
  in
  let rec attempt () =
    match
      let c = ensure_conn t in
      write_all c.fd (line ^ "\n");
      read_line_deadline ?timeout:t.timeout c
    with
    | response -> (
      match retryable_rejection response with
      | Some retry_after when !budget > 0 ->
        spend ();
        Unix.sleepf (Float.max retry_after (Backoff.next t.backoff));
        attempt ()
      | _ ->
        Backoff.reset t.backoff;
        response)
    | exception (Timeout _ as e) ->
      (* A timed-out request may still complete server-side; the caller
         decides whether resending (ideally under an idem key) is safe. *)
      drop_conn t;
      raise e
    | exception e when transport_error e ->
      drop_conn t;
      if !budget > 0 then begin
        spend ();
        Unix.sleepf (Backoff.next t.backoff);
        attempt ()
      end
      else raise e
  in
  attempt ()

let retries_used t = t.retried

let close t =
  if not t.closed then begin
    t.closed <- true;
    drop_conn t
  end

(** Bounded multi-producer/multi-consumer FIFO — the server's admission
    queue.

    Producers never block: when the queue is at capacity {!try_push}
    reports [`Full] and the caller turns that into a structured
    [saturated] rejection instead of queueing unboundedly. Consumers
    (worker domains) block in {!take} until a job or shutdown arrives.
    After {!close}, pushes are refused but takers drain what was already
    admitted before seeing [None] — graceful shutdown finishes accepted
    work. *)

type 'a t

val create : capacity:int -> 'a t
(** @raise Invalid_argument when [capacity < 1]. *)

val try_push : 'a t -> 'a -> [ `Ok of int | `Full | `Closed ]
(** Non-blocking admission. [`Ok depth] is the queue length {e after} the
    push (for the depth gauge). *)

val take : 'a t -> 'a option
(** Block until an element is available ([Some]) or the queue is closed
    {e and} drained ([None]). Safe from any number of domains. *)

val close : 'a t -> unit
(** Refuse further pushes and wake every blocked taker. Idempotent. *)

val length : 'a t -> int

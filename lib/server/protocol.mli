(** Wire protocol of the resident analysis server: newline-delimited JSON
    request/response framing.

    One request is one line holding one JSON object; the server answers
    each request with exactly one line holding one JSON object. Responses
    to pipelined requests on a single connection may arrive out of order —
    the echoed [id] is the correlation key. The codec is {e total}: any
    byte garbage, truncated frame or type-confused field parses to a
    structured {!error}, never an exception, because this parser is the
    daemon's network-facing front door.

    Requests:
    {v
    {"id": <any JSON value, echoed verbatim>,
     "client": "<quota bucket, optional>",
     "idem": "<idempotency key, optional>",
     "op": "analyze" | "ping" | "metrics" | "stats" | "health" | "shutdown",
     "model": "<sdft model text>",            // analyze only
     "params": {"horizon": 24, "cutoff": 1e-15, "engine": "auto",
                "domains": 1, "deadline": 0.5, "mem_limit_mb": 512,
                "max_order": 3},              // all optional
     "failpoints": "cache.lookup=raise@nth:2",  // optional, per-request
     "verbose": false}
    v}

    Responses:
    {v
    {"id": ..., "ok": true,  "result": {...}}
    {"id": ..., "ok": false, "error": {"code": "saturated",
                                       "message": "...",
                                       "retry_after": 0.25}}
    v}

    The [result] body of an [analyze] response contains only deterministic
    fields (probabilities, certified bounds, cutset counts, engine,
    degradation) rendered with {!Sdft_util.Json.add_float}'s
    17-significant-digit format, so equal requests produce bit-identical
    response lines regardless of scheduling, cache hits or concurrency.
    [verbose: true] appends a [timing]/[cache] section that is exempt from
    that guarantee. *)

type error_code =
  | Bad_request  (** malformed frame, unknown op, bad model or parameter *)
  | Saturated  (** admission queue full; comes with [retry_after] *)
  | Quota_exceeded
      (** per-client in-flight quota reached; comes with [retry_after] *)
  | Crash  (** contained internal failure of this one request *)
  | Shutting_down  (** daemon is draining; no new work accepted *)
  | Worker_lost
      (** the watchdog declared the worker domain running this request
          hung or dead; the slot was respawned and a retry is safe *)

val error_code_name : error_code -> string
(** The wire spelling: ["bad_request"], ["saturated"], ["quota_exceeded"],
    ["crash"], ["shutting_down"], ["worker_lost"]. *)

type error = {
  code : error_code;
  message : string;
  retry_after : float option;
      (** seconds after which a retry is likely to be admitted; only on
          [Saturated] and [Quota_exceeded] *)
}

type analyze_params = {
  model_text : string;  (** inline SDFT model source *)
  horizon : float;
  cutoff : float;
  engine : Sdft_analysis.engine;
  domains : int;  (** requested solver domains (server clamps) *)
  deadline : float option;
  mem_limit_mb : int option;
  max_order : int option;
  verbose : bool;
}

type op =
  | Analyze of analyze_params
  | Ping
  | Metrics  (** Prometheus exposition of the server registry *)
  | Stats  (** queue/cache/uptime snapshot *)
  | Health
      (** liveness snapshot: worker states, queue depth, breaker state,
          uptime — cheap enough for an external prober *)
  | Shutdown  (** request a graceful drain-and-flush shutdown *)

type request = {
  id : Sdft_util.Json.value;  (** echoed verbatim; [Null] when absent *)
  client : string option;
      (** quota bucket; defaults to the connection identity *)
  failpoints : string option;
      (** {!Sdft_util.Failpoint.configure_string} spec armed on this
          request's private registry only *)
  idem : string option;
      (** idempotency key: the server remembers the response line it sent
          for each (client, idem) pair in a bounded window, and answers a
          retried request from that window instead of recomputing *)
  op : op;
}

val parse_request :
  max_bytes:int -> string -> (request, Sdft_util.Json.value * error) result
(** Parse one request line. Total: never raises. The [Error] carries the
    request id when one could be recovered from the frame (so even a
    rejection can be correlated), [Null] otherwise. *)

val ok_response : id:Sdft_util.Json.value -> (Buffer.t -> unit) -> string
(** [ok_response ~id body] is the response line
    [{"id":<id>,"ok":true,"result":{<body>}}] (no trailing newline). *)

val error_response : id:Sdft_util.Json.value -> error -> string
(** The response line for a failed request (no trailing newline). *)

(** {1 Request builders}

    Used by the [sdft client] helper and the test suite; emit exactly the
    frames {!parse_request} accepts. *)

val analyze_line :
  ?id:string ->
  ?client:string ->
  ?idem:string ->
  ?horizon:float ->
  ?cutoff:float ->
  ?engine:string ->
  ?domains:int ->
  ?deadline:float ->
  ?mem_limit_mb:int ->
  ?max_order:int ->
  ?failpoints:string ->
  ?verbose:bool ->
  model:string ->
  unit ->
  string
(** An [analyze] request line; omitted parameters are left to server
    defaults. *)

val simple_line : ?id:string -> ?client:string -> string -> string
(** [simple_line op] is a request line for a model-less op
    (["ping"], ["metrics"], ["stats"], ["health"], ["shutdown"]). *)

(** Blocking line-oriented client for the analysis server — the engine of
    [sdft client] and of the CI smoke tests.

    One {!t} is one connection. {!request} writes one frame and blocks for
    one response line; it is the right shape for scripting, where requests
    are sequential and the (id-correlated) pipelining freedom of the wire
    protocol is unnecessary. *)

type t

val connect : Daemon.addr -> t
(** @raise Unix.Unix_error when the endpoint refuses or does not exist. *)

val request : t -> string -> string
(** Send one request line, return the next response line.
    @raise End_of_file when the server closes the connection first. *)

val close : t -> unit
(** Idempotent. *)

(** Blocking, retrying line client for the analysis server — the engine
    of [sdft client] and of the CI smoke and chaos tests.

    One {!t} is one logical connection that survives daemon restarts:
    when the socket breaks mid-conversation (daemon killed, connection
    reset, unix-socket path vanished) the client reconnects and resends,
    sleeping a capped exponential {!Sdft_util.Backoff} between attempts.
    Structured transient rejections from the server ([saturated],
    [quota_exceeded], [shutting_down], [worker_lost]) are likewise
    retried, honouring the server's [retry_after] price when it is
    larger than the backoff step. All retries within one {!request}
    share a single budget of [retries] attempts; [retries = 0] (the
    default) restores fail-fast behaviour.

    Resending is only {e exactly-once} when the request carries an
    [idem] key (see {!Protocol.analyze_line}): the server then answers a
    replay from its response window instead of recomputing. Without one,
    a retried analyze may run twice — harmless for deterministic
    analyses, but the CLI attaches idem keys whenever retries are
    enabled.

    {!request} blocks for one response line; the shape is right for
    scripting, where requests are sequential and the id-correlated
    pipelining freedom of the wire protocol is unnecessary. *)

type t

exception Timeout of float
(** Raised by {!connect} and {!request} when the configured [timeout]
    elapses before the handshake completes or the response line arrives.
    Deliberately {e not} retried by {!request}: the request may still be
    running server-side, and only the caller knows whether resending is
    safe. The payload is the timeout that was exceeded, in seconds. *)

val connect :
  ?timeout:float -> ?retries:int -> ?backoff_seed:int -> Daemon.addr -> t
(** Connect eagerly. [timeout] (seconds) bounds the connect handshake
    and every subsequent response wait; omitted means block forever.
    [retries] (default 0) is the per-operation retry budget, applied to
    this initial connect as well. [backoff_seed] makes the retry jitter
    schedule reproducible (default 1). Sets the process's [SIGPIPE]
    disposition to ignore: a daemon dying mid-write must surface as the
    [EPIPE] this client recovers from, not a fatal signal.
    @raise Unix.Unix_error when the endpoint refuses or does not exist
    and the budget is exhausted.
    @raise Timeout when a [timeout] is set and the handshake exceeds
    it. *)

val request : t -> string -> string
(** Send one request line, return the next response line — transparently
    reconnecting and resending on transport failure, and re-submitting
    after [retry_after] on a transient structured rejection, until the
    retry budget runs out. The returned line is whatever the server
    finally said (including a non-retryable or budget-exhausted error
    response, verbatim).
    @raise End_of_file when the server closes the connection and the
    budget is exhausted.
    @raise Unix.Unix_error likewise for socket-level failures.
    @raise Timeout when a [timeout] is set and the response does not
    arrive in time (never retried internally). *)

val retries_used : t -> int
(** Total retry attempts spent over the life of this client — connect
    and request retries combined. Observability for tests and the CLI's
    verbose mode. *)

val close : t -> unit
(** Idempotent. *)

(* The transport-free server engine. See server_core.mli for the contract;
   the short version: admission (quota + bounded queue) happens on the
   caller's thread and never blocks, analyses run on a fixed pool of worker
   domains, and every request gets a private Obs context and Guard so the
   only state shared between concurrent requests is the Quant_cache —
   which is designed for exactly that. *)

module Json = Sdft_util.Json
module Metrics = Sdft_util.Metrics
module Obs = Sdft_util.Obs
module Failpoint = Sdft_util.Failpoint

type config = {
  workers : int;
  queue_capacity : int;
  client_quota : int;
  max_request_bytes : int;
  max_request_domains : int;
  default_deadline : float option;
  default_mem_limit_mb : int option;
  watchdog_timeout : float option;
  response_window : int;
}

let default_config =
  {
    workers = 2;
    queue_capacity = 64;
    client_quota = 16;
    max_request_bytes = 8 * 1024 * 1024;
    max_request_domains = 1;
    default_deadline = None;
    default_mem_limit_mb = None;
    watchdog_timeout = None;
    response_window = 128;
  }

type job = {
  req : Protocol.request;
  params : Protocol.analyze_params;
  job_client : string;
  reply : string -> unit;
}

(* One in-flight request on a worker slot. [answered] is the ownership
   token: whoever wins the false->true CAS — the worker finishing normally,
   or the watchdog declaring the worker lost — replies and does the
   accounting, exactly once. The loser does neither. *)
type running = { r_job : job; r_started : float; answered : bool Atomic.t }

(* One pool slot. A slot whose worker the watchdog declared hung is
   [retired] and replaced by a fresh slot (and domain) at the same pool
   index; the zombie domain, if it ever wakes up, sees [retired], skips the
   already-done reply/accounting, and exits its loop without taking more
   work. *)
type slot = {
  slot_index : int;
  hb : float Atomic.t; (* last heartbeat (Unix time) *)
  current : running option Atomic.t;
  retired : bool Atomic.t;
  mutable dom : unit Domain.t option; (* None only during construction *)
}

type handles = {
  c_requests : Metrics.counter;
  c_ok : Metrics.counter;
  c_errors : Metrics.counter;
  c_rejected_saturated : Metrics.counter;
  c_rejected_quota : Metrics.counter;
  c_bad_requests : Metrics.counter;
  c_crashes : Metrics.counter;
  c_worker_lost : Metrics.counter;
  c_idem_hits : Metrics.counter;
  g_queue_depth : Metrics.gauge;
  h_request_s : Metrics.histogram;
}

type t = {
  config : config;
  cache : Quant_cache.t;
  queue : job Request_queue.t;
  server_metrics : Metrics.t;
  h : handles;
  (* Admission state, all under [admission]: per-client in-flight counts
     (queued + running) and the EWMA of request durations that prices
     [retry_after]. *)
  admission : Mutex.t;
  in_flight : (string, int) Hashtbl.t;
  mutable ewma_request_s : float;
  mutable shutdown_hook : unit -> unit;
  mutable hook_fired : bool;
  mutable joined : bool;
  running : int Atomic.t;
  served : int Atomic.t;
  ok_count : int Atomic.t;
  error_count : int Atomic.t;
  worker_lost_count : int Atomic.t;
  stop : bool Atomic.t;
  started_at : float;
  (* The worker pool, under [admission]: one live slot per index; retired
     slots are replaced in place. Zombie domains are remembered but never
     joined (they may be hung forever — that is why they were retired). *)
  mutable slots : slot array;
  mutable zombies : unit Domain.t list;
  mutable watchdog : Thread.t option;
  watchdog_stop : bool Atomic.t;
  (* Recent-response window for idempotent retries, under [idem_lock]:
     (client, idem key) -> verbatim response line, bounded FIFO. *)
  idem_lock : Mutex.t;
  idem_table : (string, string) Hashtbl.t;
  idem_order : string Queue.t;
}

let handles_of m =
  {
    c_requests = Metrics.counter_in m "server.requests";
    c_ok = Metrics.counter_in m "server.ok";
    c_errors = Metrics.counter_in m "server.errors";
    c_rejected_saturated = Metrics.counter_in m "server.rejected_saturated";
    c_rejected_quota = Metrics.counter_in m "server.rejected_quota";
    c_bad_requests = Metrics.counter_in m "server.bad_requests";
    c_crashes = Metrics.counter_in m "server.crashes";
    c_worker_lost = Metrics.counter_in m "server.worker_lost";
    c_idem_hits = Metrics.counter_in m "server.idem_hits";
    g_queue_depth = Metrics.gauge_max_in m "server.queue_depth";
    h_request_s = Metrics.histogram_in m "server.request_s";
  }

let with_admission t f =
  Mutex.lock t.admission;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.admission) f

(* ------------------------------------------------------------------ *)
(* Recent-response window: (client, idem) -> verbatim response line. A
   client that retries after a broken connection or a worker_lost gets the
   exact bytes of the original answer instead of a recomputation. *)

let idem_key ~client idem = client ^ "\x00" ^ idem

let idem_lookup t key =
  Mutex.lock t.idem_lock;
  let r = Hashtbl.find_opt t.idem_table key in
  Mutex.unlock t.idem_lock;
  r

let idem_store t key response =
  if t.config.response_window > 0 then begin
    Mutex.lock t.idem_lock;
    if not (Hashtbl.mem t.idem_table key) then begin
      Hashtbl.replace t.idem_table key response;
      Queue.push key t.idem_order;
      while Queue.length t.idem_order > t.config.response_window do
        Hashtbl.remove t.idem_table (Queue.pop t.idem_order)
      done
    end;
    Mutex.unlock t.idem_lock
  end

(* ------------------------------------------------------------------ *)
(* retry_after pricing. Clamped so a structured rejection can never tell a
   client "retry immediately" (a stampede) or "retry in an hour" (an
   outage of our own making) because the EWMA went weird. *)

let retry_after_floor = 0.05
let retry_after_cap = 60.0

let clamp_retry_after ra =
  if Float.is_nan ra then retry_after_floor
  else Float.max retry_after_floor (Float.min retry_after_cap ra)

(* ------------------------------------------------------------------ *)
(* Request execution (worker side). *)

let bad_request ~id message =
  Protocol.error_response ~id
    { Protocol.code = Protocol.Bad_request; message; retry_after = None }

let add_int buf n = Buffer.add_string buf (string_of_int n)
let add_bool buf b = Buffer.add_string buf (if b then "true" else "false")

let render_result t ~id ~verbose (r : Sdft_analysis.result) =
  Protocol.ok_response ~id (fun buf ->
      let first = ref true in
      let field name emit =
        if not !first then Buffer.add_char buf ',';
        first := false;
        Json.add_string buf name;
        Buffer.add_char buf ':';
        emit buf
      in
      let b = r.Sdft_analysis.budget in
      field "total" (fun b' -> Json.add_float b' r.Sdft_analysis.total);
      field "lower" (fun b' -> Json.add_float b' b.Sdft_analysis.lower);
      field "upper" (fun b' -> Json.add_float b' b.Sdft_analysis.upper);
      field "vacuous" (fun b' -> add_bool b' b.Sdft_analysis.vacuous);
      field "engine" (fun b' ->
          Json.add_string b'
            (Sdft_analysis.engine_name r.Sdft_analysis.engine_used));
      field "n_cutsets" (fun b' -> add_int b' r.Sdft_analysis.n_cutsets);
      field "n_dynamic_cutsets" (fun b' ->
          add_int b' r.Sdft_analysis.n_dynamic_cutsets);
      field "n_fallbacks" (fun b' -> add_int b' r.Sdft_analysis.n_fallbacks);
      field "pruned_mass" (fun b' ->
          Json.add_float b' b.Sdft_analysis.pruned_mass);
      field "below_cutoff_mass" (fun b' ->
          Json.add_float b' b.Sdft_analysis.below_cutoff_mass);
      field "solver_error_total" (fun b' ->
          Json.add_float b' b.Sdft_analysis.solver_error_total);
      field "rare_event_slack" (fun b' ->
          Json.add_float b' b.Sdft_analysis.rare_event_slack);
      let degraded = Sdft_analysis.degraded r in
      field "degraded" (fun b' -> add_bool b' degraded);
      field "degradation" (fun b' ->
          Json.add_string b'
            (if degraded then Sdft_analysis.degradation_description r else ""));
      if verbose then begin
        (* Timing and cache traffic are inherently nondeterministic and
           excluded from the bit-identity guarantee; gated so default
           responses stay reproducible. *)
        field "timing" (fun b' ->
            Buffer.add_string b' "{\"mcs_s\":";
            Json.add_float b' r.Sdft_analysis.mcs_generation_seconds;
            Buffer.add_string b' ",\"quant_s\":";
            Json.add_float b' r.Sdft_analysis.quantification_seconds;
            Buffer.add_char b' '}');
        field "cache" (fun b' ->
            Buffer.add_string b' "{\"hits\":";
            add_int b' (Quant_cache.hits t.cache);
            Buffer.add_string b' ",\"misses\":";
            add_int b' (Quant_cache.misses t.cache);
            Buffer.add_char b' '}')
      end)

(* Run one admitted analyze request. Returns (ok, response line). Never
   raises: the worker loop wraps it once more as a belt-and-braces
   backstop, but every anticipated failure is converted to a structured
   error here. *)
let run_analyze t (slot : slot) (job : job) =
  let id = job.req.Protocol.id in
  let p = job.params in
  let obs =
    (* The worker's liveness heartbeat rides the analysis guard's amortized
       probe: a worker making solver progress keeps its slot's [hb] fresh
       without any extra instrumentation in the hot loops. Only armed when
       a watchdog is actually watching. *)
    match t.config.watchdog_timeout with
    | Some _ ->
      Obs.with_on_probe (Obs.create ()) (fun () ->
          Atomic.set slot.hb (Unix.gettimeofday ()))
    | None -> Obs.create ()
  in
  let arm_result =
    match job.req.Protocol.failpoints with
    | None -> Ok ()
    | Some spec -> (
      try
        Failpoint.configure_string_in obs.Obs.failpoints spec;
        Ok ()
      with Failure m -> Error ("bad failpoints spec: " ^ m))
  in
  match arm_result with
  | Error m -> (false, bad_request ~id m)
  | Ok () -> (
    match
      (* The server's own injection site, hit on both the request's
         private registry (per-request specs) and the default one
         (operator-wide SDFT_FAILPOINTS). *)
      Failpoint.hit_in obs.Obs.failpoints "server.handle";
      Failpoint.hit "server.handle";
      Sdft_format.of_string p.Protocol.model_text
    with
    | exception Sdft_format.Error m ->
      (false, bad_request ~id ("model parse error: " ^ m))
    | exception Failure m ->
      (false, bad_request ~id ("model parse error: " ^ m))
    | sd ->
      let dflt = Sdft_analysis.default_options in
      let options =
        {
          dflt with
          Sdft_analysis.horizon = p.Protocol.horizon;
          cutoff = p.Protocol.cutoff;
          engine = p.Protocol.engine;
          domains = min p.Protocol.domains t.config.max_request_domains;
          max_cutset_order = p.Protocol.max_order;
          deadline =
            (match p.Protocol.deadline with
            | Some _ as d -> d
            | None -> t.config.default_deadline);
          mem_limit_mb =
            (match p.Protocol.mem_limit_mb with
            | Some _ as m -> m
            | None -> t.config.default_mem_limit_mb);
        }
      in
      let r = Sdft_analysis.analyze ~options ~cache:t.cache ~obs sd in
      (true, render_result t ~id ~verbose:p.Protocol.verbose r))

(* Everything that must happen exactly once per completed request, after
   the reply: request metrics, quota release, throughput counters. Owned
   by whoever won the [answered] CAS — the worker on a normal finish, the
   watchdog on a takeover (which skips the EWMA update: a watchdog timeout
   says nothing about how long healthy requests take). *)
let finish_accounting t ~ok ~dt ~update_ewma (job : job) =
  Metrics.observe t.h.h_request_s dt;
  Metrics.incr (if ok then t.h.c_ok else t.h.c_errors);
  Atomic.incr (if ok then t.ok_count else t.error_count);
  with_admission t (fun () ->
      (match Hashtbl.find_opt t.in_flight job.job_client with
      | Some n when n > 1 -> Hashtbl.replace t.in_flight job.job_client (n - 1)
      | Some _ -> Hashtbl.remove t.in_flight job.job_client
      | None -> ());
      if update_ewma then
        t.ewma_request_s <- (0.8 *. t.ewma_request_s) +. (0.2 *. dt));
  Atomic.decr t.running;
  Atomic.incr t.served

let worker_loop t slot =
  let rec loop () =
    if Atomic.get slot.retired then ()
    else
      match Request_queue.take t.queue with
      | None -> ()
      | Some job ->
        let t0 = Unix.gettimeofday () in
        let r =
          { r_job = job; r_started = t0; answered = Atomic.make false }
        in
        Atomic.set slot.hb t0;
        Atomic.set slot.current (Some r);
        Atomic.incr t.running;
        let ok, response =
          try run_analyze t slot job
          with exn ->
            Metrics.incr t.h.c_crashes;
            ( false,
              Protocol.error_response ~id:job.req.Protocol.id
                {
                  Protocol.code = Protocol.Crash;
                  message =
                    "contained internal error: " ^ Printexc.to_string exn;
                  retry_after = None;
                } )
        in
        Atomic.set slot.current None;
        if Atomic.compare_and_set r.answered false true then begin
          (match job.req.Protocol.idem with
          | Some idem ->
            (* Only real completions enter the window — a watchdog
               worker_lost must not be replayed to a retry. Stored
               before the reply goes out: the moment the client can see
               the answer, a retry of the same key replays it. *)
            idem_store t (idem_key ~client:job.job_client idem) response
          | None -> ());
          (try job.reply response with _ -> ());
          finish_accounting t ~ok
            ~dt:(Unix.gettimeofday () -. t0)
            ~update_ewma:true job
        end;
        (* If the watchdog won the CAS it also retired this slot and
           spawned a replacement: this (now zombie) domain must not steal
           jobs from the fresh worker. *)
        if Atomic.get slot.retired then () else loop ()
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Inline ops. *)

let uptime t = Unix.gettimeofday () -. t.started_at

let prometheus t =
  (* Roll the shared cache's own atomics up into gauges so one scrape of
     the server registry carries the whole picture. *)
  let set name v =
    Metrics.set (Metrics.gauge_in t.server_metrics name) (float_of_int v)
  in
  set "server.cache_hits" (Quant_cache.hits t.cache);
  set "server.cache_misses" (Quant_cache.misses t.cache);
  (match Quant_cache.disk_stats t.cache with
  | None -> ()
  | Some d ->
    set "server.cache_disk_hits" d.Quant_cache.disk_hits;
    set "server.cache_disk_entries_loaded" d.Quant_cache.entries_loaded;
    set "server.cache_disk_appends" d.Quant_cache.appends;
    set "server.cache_breaker_open"
      (if d.Quant_cache.breaker = "closed" then 0 else 1);
    set "server.cache_breaker_opens" d.Quant_cache.breaker_opens;
    set "server.cache_breaker_probes" d.Quant_cache.breaker_probes;
    set "server.cache_breaker_recoveries" d.Quant_cache.breaker_recoveries);
  Metrics.to_prometheus_in t.server_metrics

let stats_response t ~id =
  Protocol.ok_response ~id (fun buf ->
      let first = ref true in
      let field name emit =
        if not !first then Buffer.add_char buf ',';
        first := false;
        Json.add_string buf name;
        Buffer.add_char buf ':';
        emit buf
      in
      field "uptime_s" (fun b -> Json.add_float b (uptime t));
      field "workers" (fun b -> add_int b t.config.workers);
      field "queue_capacity" (fun b -> add_int b t.config.queue_capacity);
      field "client_quota" (fun b -> add_int b t.config.client_quota);
      field "queued" (fun b -> add_int b (Request_queue.length t.queue));
      field "running" (fun b -> add_int b (Atomic.get t.running));
      field "served" (fun b -> add_int b (Atomic.get t.served));
      field "ok" (fun b -> add_int b (Atomic.get t.ok_count));
      field "errors" (fun b -> add_int b (Atomic.get t.error_count));
      field "cache" (fun b ->
          Buffer.add_string b "{\"hits\":";
          add_int b (Quant_cache.hits t.cache);
          Buffer.add_string b ",\"misses\":";
          add_int b (Quant_cache.misses t.cache);
          Buffer.add_string b ",\"disk\":";
          (match Quant_cache.disk_stats t.cache with
          | None -> Buffer.add_string b "null"
          | Some d ->
            Buffer.add_string b "{\"path\":";
            Json.add_string b d.Quant_cache.disk_path;
            Buffer.add_string b ",\"read_only\":";
            add_bool b d.Quant_cache.read_only;
            Buffer.add_string b ",\"entries_loaded\":";
            add_int b d.Quant_cache.entries_loaded;
            Buffer.add_string b ",\"disk_hits\":";
            add_int b d.Quant_cache.disk_hits;
            Buffer.add_string b ",\"appends\":";
            add_int b d.Quant_cache.appends;
            Buffer.add_string b ",\"breaker\":";
            Json.add_string b d.Quant_cache.breaker;
            Buffer.add_string b ",\"breaker_opens\":";
            add_int b d.Quant_cache.breaker_opens;
            Buffer.add_string b ",\"breaker_recoveries\":";
            add_int b d.Quant_cache.breaker_recoveries;
            Buffer.add_string b ",\"error\":";
            (match d.Quant_cache.disk_error with
            | None -> Buffer.add_string b "null"
            | Some e -> Json.add_string b e);
            Buffer.add_char b '}');
          Buffer.add_char b '}'))

(* The health op: a cheap liveness snapshot an external prober (or the
   retrying client) can poll without touching the analysis pipeline. *)
let health_response t ~id =
  Protocol.ok_response ~id (fun buf ->
      let first = ref true in
      let field name emit =
        if not !first then Buffer.add_char buf ',';
        first := false;
        Json.add_string buf name;
        Buffer.add_char buf ':';
        emit buf
      in
      field "healthy" (fun b -> add_bool b (not (Atomic.get t.stop)));
      field "uptime_s" (fun b -> Json.add_float b (uptime t));
      field "workers" (fun b -> add_int b (Array.length t.slots));
      field "workers_busy" (fun b -> add_int b (Atomic.get t.running));
      field "workers_lost" (fun b ->
          add_int b (Atomic.get t.worker_lost_count));
      field "watchdog_s" (fun b ->
          match t.config.watchdog_timeout with
          | None -> Buffer.add_string b "null"
          | Some s -> Json.add_float b s);
      field "queued" (fun b -> add_int b (Request_queue.length t.queue));
      field "queue_capacity" (fun b -> add_int b t.config.queue_capacity);
      field "breaker" (fun b ->
          match Quant_cache.disk_stats t.cache with
          | None -> Buffer.add_string b "null"
          | Some d -> Json.add_string b d.Quant_cache.breaker);
      field "disk_error" (fun b ->
          match Quant_cache.disk_stats t.cache with
          | Some { Quant_cache.disk_error = Some e; _ } -> Json.add_string b e
          | _ -> Buffer.add_string b "null"))

(* ------------------------------------------------------------------ *)
(* Admission (caller side). *)

(* Estimate, under the admission lock, how long until a pool slot frees
   up: backlog ahead of a hypothetical retry, priced at the EWMA request
   duration, divided across the pool. [clamp_retry_after] keeps the
   estimate inside [retry_after_floor, retry_after_cap] whatever the EWMA
   and backlog arithmetic produce. *)
let retry_after_locked t =
  let backlog = Request_queue.length t.queue + Atomic.get t.running in
  clamp_retry_after
    (t.ewma_request_s *. float_of_int (backlog + 1)
    /. float_of_int t.config.workers)

let reject ~id code message retry_after =
  Protocol.error_response ~id
    { Protocol.code = code; message; retry_after }

let fire_shutdown_hook t =
  let hook =
    with_admission t (fun () ->
        if t.hook_fired then None
        else begin
          t.hook_fired <- true;
          Some t.shutdown_hook
        end)
  in
  match hook with None -> () | Some f -> ( try f () with _ -> ())

let submit t ~client ~reply line =
  let reply s = try reply s with _ -> () in
  Metrics.incr t.h.c_requests;
  if Atomic.get t.stop then
    reply
      (reject ~id:Json.Null Protocol.Shutting_down
         "server is shutting down" None)
  else
    match
      Protocol.parse_request ~max_bytes:t.config.max_request_bytes line
    with
    | Error (id, err) ->
      Metrics.incr t.h.c_bad_requests;
      reply (Protocol.error_response ~id err)
    | Ok req -> (
      let id = req.Protocol.id in
      let client = Option.value req.Protocol.client ~default:client in
      match req.Protocol.op with
      | Protocol.Ping ->
        reply
          (Protocol.ok_response ~id (fun b ->
               Buffer.add_string b "\"pong\":true"))
      | Protocol.Metrics ->
        let text = prometheus t in
        reply
          (Protocol.ok_response ~id (fun b ->
               Buffer.add_string b "\"prometheus\":";
               Json.add_string b text))
      | Protocol.Stats -> reply (stats_response t ~id)
      | Protocol.Health -> reply (health_response t ~id)
      | Protocol.Shutdown ->
        Atomic.set t.stop true;
        (* Reply before waking the transport's shutdown hook so the
           requesting client sees its acknowledgement. *)
        reply
          (Protocol.ok_response ~id (fun b ->
               Buffer.add_string b "\"stopping\":true"));
        fire_shutdown_hook t
      | Protocol.Analyze params ->
        (* Idempotent retry: if this (client, idem) pair already completed
           inside the response window, answer with the verbatim original
           response line — bit-identical, and no recomputation. *)
        let replayed =
          match req.Protocol.idem with
          | None -> false
          | Some idem -> (
            match idem_lookup t (idem_key ~client idem) with
            | Some cached ->
              Metrics.incr t.h.c_idem_hits;
              reply cached;
              true
            | None -> false)
        in
        if replayed then ()
        else
        let job = { req; params; job_client = client; reply } in
        let verdict =
          with_admission t (fun () ->
              let inflight =
                Option.value (Hashtbl.find_opt t.in_flight client) ~default:0
              in
              if inflight >= t.config.client_quota then
                `Quota (retry_after_locked t)
              else
                match Request_queue.try_push t.queue job with
                | `Ok depth ->
                  Hashtbl.replace t.in_flight client (inflight + 1);
                  `Admitted depth
                | `Full -> `Full (retry_after_locked t)
                | `Closed -> `Closed)
        in
        (match verdict with
        | `Admitted depth ->
          Metrics.set_max t.h.g_queue_depth (float_of_int depth)
        | `Quota ra ->
          Metrics.incr t.h.c_rejected_quota;
          reply
            (reject ~id Protocol.Quota_exceeded
               (Printf.sprintf
                  "client %S already has %d requests in flight" client
                  t.config.client_quota)
               (Some ra))
        | `Full ra ->
          Metrics.incr t.h.c_rejected_saturated;
          reply
            (reject ~id Protocol.Saturated
               (Printf.sprintf "admission queue full (%d requests)"
                  t.config.queue_capacity)
               (Some ra))
        | `Closed ->
          reply
            (reject ~id Protocol.Shutting_down "server is shutting down"
               None)))

let call t ~client line =
  let m = Mutex.create () in
  let c = Condition.create () in
  let slot = ref None in
  submit t ~client line ~reply:(fun s ->
      Mutex.lock m;
      slot := Some s;
      Condition.signal c;
      Mutex.unlock m);
  Mutex.lock m;
  while !slot = None do
    Condition.wait c m
  done;
  let r = Option.get !slot in
  Mutex.unlock m;
  r

(* ------------------------------------------------------------------ *)
(* Watchdog. *)

let make_slot index =
  {
    slot_index = index;
    hb = Atomic.make (Unix.gettimeofday ());
    current = Atomic.make None;
    retired = Atomic.make false;
    dom = None;
  }

(* The watchdog declared [slot]'s worker hung on [r]. The CAS decides the
   race against a worker that finishes at the same instant: the winner
   replies and accounts, exactly once. On a win the slot is retired, its
   request failed with a structured worker_lost (safe to retry — the
   result was never sent), and a fresh slot+domain takes the pool index so
   capacity is restored without a restart. *)
let take_over t slot r =
  if Atomic.compare_and_set r.answered false true then begin
    let job = r.r_job in
    Atomic.set slot.retired true;
    Metrics.incr t.h.c_worker_lost;
    Atomic.incr t.worker_lost_count;
    let ra = with_admission t (fun () -> retry_after_locked t) in
    (try
       job.reply
         (Protocol.error_response ~id:job.req.Protocol.id
            {
              Protocol.code = Protocol.Worker_lost;
              message =
                "worker executing this request was declared hung; its slot \
                 was respawned and the request may be retried";
              retry_after = Some ra;
            })
     with _ -> ());
    finish_accounting t ~ok:false
      ~dt:(Unix.gettimeofday () -. r.r_started)
      ~update_ewma:false job;
    with_admission t (fun () ->
        (match slot.dom with
        | Some d -> t.zombies <- d :: t.zombies
        | None -> ());
        let fresh = make_slot slot.slot_index in
        t.slots.(slot.slot_index) <- fresh;
        fresh.dom <- Some (Domain.spawn (fun () -> worker_loop t fresh)))
  end

let watchdog_loop t timeout =
  let period = Float.max 0.02 (Float.min 0.5 (timeout /. 4.0)) in
  while not (Atomic.get t.watchdog_stop) do
    Thread.delay period;
    if not (Atomic.get t.watchdog_stop) then begin
      let now = Unix.gettimeofday () in
      let slots = with_admission t (fun () -> Array.copy t.slots) in
      Array.iter
        (fun slot ->
          if not (Atomic.get slot.retired) then
            match Atomic.get slot.current with
            | Some r when now -. Atomic.get slot.hb > timeout ->
              take_over t slot r
            | _ -> ())
        slots
    end
  done

(* ------------------------------------------------------------------ *)
(* Lifecycle. *)

let create ?(config = default_config) ?cache () =
  let cache = match cache with Some c -> c | None -> Quant_cache.create () in
  let server_metrics = Metrics.create () in
  let t =
    {
      config;
      cache;
      queue = Request_queue.create ~capacity:config.queue_capacity;
      server_metrics;
      h = handles_of server_metrics;
      admission = Mutex.create ();
      in_flight = Hashtbl.create 16;
      ewma_request_s = 0.1;
      shutdown_hook = (fun () -> ());
      hook_fired = false;
      joined = false;
      running = Atomic.make 0;
      served = Atomic.make 0;
      ok_count = Atomic.make 0;
      error_count = Atomic.make 0;
      worker_lost_count = Atomic.make 0;
      stop = Atomic.make false;
      started_at = Unix.gettimeofday ();
      slots = [||];
      zombies = [];
      watchdog = None;
      watchdog_stop = Atomic.make false;
      idem_lock = Mutex.create ();
      idem_table = Hashtbl.create 64;
      idem_order = Queue.create ();
    }
  in
  t.slots <- Array.init (max 1 config.workers) make_slot;
  Array.iter
    (fun s -> s.dom <- Some (Domain.spawn (fun () -> worker_loop t s)))
    t.slots;
  (match config.watchdog_timeout with
  | Some timeout when timeout > 0.0 ->
    t.watchdog <- Some (Thread.create (fun () -> watchdog_loop t timeout) ())
  | _ -> ());
  t

let stopping t = Atomic.get t.stop

let set_on_shutdown_request t f =
  with_admission t (fun () -> t.shutdown_hook <- f)

let request_shutdown t =
  Atomic.set t.stop true;
  fire_shutdown_hook t

let shutdown t =
  Atomic.set t.stop true;
  Request_queue.close t.queue;
  Atomic.set t.watchdog_stop true;
  let to_join, wd =
    with_admission t (fun () ->
        if t.joined then ([], None)
        else begin
          t.joined <- true;
          (Array.to_list t.slots, t.watchdog)
        end)
  in
  (match wd with Some th -> Thread.join th | None -> ());
  (* Join only live slots. Zombie domains were retired precisely because
     they may never return; joining them would hang the shutdown on the
     fault the watchdog already routed around. *)
  List.iter
    (fun s ->
      if not (Atomic.get s.retired) then
        match s.dom with Some d -> Domain.join d | None -> ())
    to_join;
  Quant_cache.flush t.cache

let cache t = t.cache

let metrics t = t.server_metrics

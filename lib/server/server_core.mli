(** The resident analysis engine behind [sdft serve]: admission control,
    a fixed worker-domain pool, per-request isolation and the shared
    quantification cache — everything except the socket.

    The transport-free API is deliberate: the in-process test battery
    drives {!submit}/{!call} directly with the same code paths the socket
    daemon ({!Daemon}) uses, so concurrency and fault-injection properties
    proven here hold for the wire.

    {b Isolation.} Every [analyze] request runs under its own
    {!Sdft_util.Obs.create} context (fresh metrics/trace/failpoint
    registries) and its own {!Sdft_util.Guard} budget (the request's
    [deadline]/[mem_limit_mb], falling back to the server defaults), so
    concurrent requests can never contaminate each other's instruments or
    injected faults, and a runaway request degrades itself instead of the
    daemon. A per-request [failpoints] spec arms only that request's
    registry. The aggregate server registry ({!metrics}) carries only the
    server's own instruments ([server.*]).

    {b Admission.} [analyze] requests pass a per-client in-flight quota
    and a bounded queue; both reject {e immediately} with a structured
    error carrying [retry_after] (an EWMA-based estimate of when capacity
    frees up) instead of queueing unboundedly. Cheap ops (ping, metrics,
    stats, shutdown) are answered inline and are not subject to quota.

    {b Crash containment.} Inside the analysis, per-cutset failures are
    contained by the [Worker_crash] machinery and degrade the result;
    anything that still escapes a worker is caught per request and
    answered as a [crash] error — a poisoned request can never kill the
    daemon or its pool.

    {b Self-healing.} With [watchdog_timeout] set, every busy worker
    domain heartbeats through its request's guard probes; a worker silent
    for longer than the timeout is declared {e lost}: its in-flight
    request is failed with a structured [worker_lost] error (safe to
    retry — the result was never sent), the slot is respawned with a fresh
    domain so pool capacity survives, and the zombie domain — should it
    ever wake — finds the reply already owned and exits without stealing
    work. An [answered] compare-and-swap arbitrates the race between a
    worker finishing and the watchdog firing, so the reply and all
    accounting happen exactly once either way.

    {b Idempotent retries.} A request carrying an [idem] key has its
    response line remembered in a bounded per-server window
    ([response_window]); a retry of the same (client, idem) pair is
    answered with the verbatim original bytes instead of recomputed.
    Watchdog [worker_lost] answers are never stored, so a retry after a
    lost worker really re-runs the analysis. *)

type config = {
  workers : int;  (** worker domains executing [analyze] requests *)
  queue_capacity : int;  (** admission queue bound *)
  client_quota : int;  (** max in-flight (queued + running) per client *)
  max_request_bytes : int;  (** hard frame-size cap *)
  max_request_domains : int;
      (** clamp on the per-request solver [domains] parameter *)
  default_deadline : float option;
      (** guard deadline for requests that do not set one *)
  default_mem_limit_mb : int option;
  watchdog_timeout : float option;
      (** seconds without a heartbeat before a busy worker is declared
          hung and its slot respawned; [None] disables the watchdog *)
  response_window : int;
      (** recent responses remembered per (client, idem) for idempotent
          retries; 0 disables the window *)
}

val default_config : config
(** 2 workers, queue 64, quota 16, 8 MiB frames, 1 solver domain per
    request, no default deadline or memory ceiling, watchdog off,
    response window 128. *)

type t

val create : ?config:config -> ?cache:Quant_cache.t -> unit -> t
(** Start the worker pool. [cache] (default: a fresh memory-only cache) is
    shared by every request; the caller keeps ownership and is responsible
    for {!Quant_cache.close} after {!shutdown}. *)

val submit : t -> client:string -> reply:(string -> unit) -> string -> unit
(** Admit one request line. [reply] is invoked exactly once with the
    response line — synchronously for inline ops and rejections, from a
    worker domain for admitted [analyze] requests. Exceptions raised by
    [reply] are swallowed (a vanished connection must not hurt the
    worker). [client] is the quota bucket unless the request carries its
    own ["client"] field. *)

val call : t -> client:string -> string -> string
(** Synchronous convenience over {!submit}: block until the response
    line. *)

val stopping : t -> bool
(** A shutdown has been requested (op or {!shutdown}); new requests are
    answered with [shutting_down]. *)

val set_on_shutdown_request : t -> (unit -> unit) -> unit
(** Hook invoked at most once, on the first [shutdown] op or
    {!request_shutdown} — lets a transport break its accept loop. *)

val request_shutdown : t -> unit
(** Flip into the [stopping] state and fire the shutdown hook, exactly as
    a [shutdown] op would; safe from a signal handler. Does not drain —
    follow with {!shutdown}. *)

val shutdown : t -> unit
(** Graceful shutdown: refuse new work, drain already-admitted requests,
    join the worker pool and {!Quant_cache.flush} the shared cache.
    Idempotent. *)

val cache : t -> Quant_cache.t

val clamp_retry_after : float -> float
(** Clamp a raw [retry_after] estimate into the sane band the server
    promises on the wire: at least 0.05 s (never "retry immediately", a
    stampede), at most 60 s (never an outage of our own pricing), NaN and
    non-finite values mapped to the floor. Every [retry_after] the server
    emits passes through this. *)

val metrics : t -> Sdft_util.Metrics.t
(** The aggregate server registry ([server.requests], [server.ok],
    [server.errors], [server.rejected_saturated], [server.rejected_quota],
    [server.crashes], [server.worker_lost], [server.idem_hits],
    [server.queue_depth], [server.request_s], cache and breaker roll-up
    gauges). *)

val prometheus : t -> string
(** Prometheus exposition of {!metrics} with the cache roll-up gauges
    refreshed — the body of the [/metrics] scrape and of the [metrics]
    op. *)

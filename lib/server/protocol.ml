(* Newline-delimited JSON codec for the analysis server. Parsing is
   deliberately total — this is the daemon's network-facing front door, so
   garbage of any shape must come back as a structured error, never an
   exception. Response rendering keeps a fixed field order and uses
   [Json.add_float] (17 significant digits) so equal requests yield
   bit-identical response lines. *)

module Json = Sdft_util.Json

type error_code =
  | Bad_request
  | Saturated
  | Quota_exceeded
  | Crash
  | Shutting_down
  | Worker_lost

let error_code_name = function
  | Bad_request -> "bad_request"
  | Saturated -> "saturated"
  | Quota_exceeded -> "quota_exceeded"
  | Crash -> "crash"
  | Shutting_down -> "shutting_down"
  | Worker_lost -> "worker_lost"

type error = {
  code : error_code;
  message : string;
  retry_after : float option;
}

type analyze_params = {
  model_text : string;
  horizon : float;
  cutoff : float;
  engine : Sdft_analysis.engine;
  domains : int;
  deadline : float option;
  mem_limit_mb : int option;
  max_order : int option;
  verbose : bool;
}

type op =
  | Analyze of analyze_params
  | Ping
  | Metrics
  | Stats
  | Health
  | Shutdown

type request = {
  id : Json.value;
  client : string option;
  failpoints : string option;
  idem : string option;
  op : op;
}

(* ------------------------------------------------------------------ *)
(* Parsing. *)

let engine_of_string = function
  | "mocus" -> Some Sdft_analysis.Mocus_sound
  | "mocus-aggressive" -> Some Sdft_analysis.Mocus_aggressive
  | "bdd" -> Some Sdft_analysis.Bdd_engine
  | "zdd" -> Some Sdft_analysis.Zdd_engine
  | "auto" -> Some Sdft_analysis.Auto
  | _ -> None

exception Reject of string
(* Internal to [parse_request]; converted to a [Bad_request] error. *)

let reject fmt = Printf.ksprintf (fun m -> raise (Reject m)) fmt

(* Field extractors over an already-parsed object: absent fields take the
   default, present fields of the wrong type or out of range reject. *)

let opt_string obj name =
  match Json.member name obj with
  | None | Some Json.Null -> None
  | Some v -> (
    match Json.to_string v with
    | Some s -> Some s
    | None -> reject "field %S must be a string" name)

let opt_float obj name ~check =
  match Json.member name obj with
  | None | Some Json.Null -> None
  | Some v -> (
    match Json.to_float v with
    | Some f when check f -> Some f
    | Some _ -> reject "field %S is out of range" name
    | None -> reject "field %S must be a number" name)

let opt_int obj name ~check =
  match Json.member name obj with
  | None | Some Json.Null -> None
  | Some v -> (
    match Json.to_int v with
    | Some i when check i -> Some i
    | Some _ -> reject "field %S is out of range" name
    | None -> reject "field %S must be an integer" name)

let opt_bool obj name =
  match Json.member name obj with
  | None | Some Json.Null -> None
  | Some v -> (
    match Json.to_bool v with
    | Some b -> Some b
    | None -> reject "field %S must be a boolean" name)

let pos_finite f = Float.is_finite f && f > 0.
let nonneg_finite f = Float.is_finite f && f >= 0.

let parse_analyze obj =
  let model_text =
    match opt_string obj "model" with
    | Some s -> s
    | None -> reject "analyze request needs a \"model\" field"
  in
  let params =
    match Json.member "params" obj with
    | None | Some Json.Null -> Json.Object []
    | Some (Json.Object _ as o) -> o
    | Some _ -> reject "field \"params\" must be an object"
  in
  let engine =
    match opt_string params "engine" with
    | None -> Sdft_analysis.default_options.Sdft_analysis.engine
    | Some s -> (
      match engine_of_string s with
      | Some e -> e
      | None ->
        reject
          "unknown engine %S (expected mocus, mocus-aggressive, bdd, zdd \
           or auto)"
          s)
  in
  let dflt = Sdft_analysis.default_options in
  {
    model_text;
    horizon =
      Option.value
        (opt_float params "horizon" ~check:pos_finite)
        ~default:dflt.Sdft_analysis.horizon;
    cutoff =
      Option.value
        (opt_float params "cutoff" ~check:nonneg_finite)
        ~default:dflt.Sdft_analysis.cutoff;
    engine;
    domains =
      Option.value
        (opt_int params "domains" ~check:(fun i -> i >= 1 && i <= 1024))
        ~default:1;
    deadline = opt_float params "deadline" ~check:pos_finite;
    mem_limit_mb = opt_int params "mem_limit_mb" ~check:(fun i -> i >= 1);
    max_order = opt_int params "max_order" ~check:(fun i -> i >= 1);
    verbose = Option.value (opt_bool obj "verbose") ~default:false;
  }

let parse_request ~max_bytes line =
  let fail id message =
    Error (id, { code = Bad_request; message; retry_after = None })
  in
  if String.length line > max_bytes then
    fail Json.Null
      (Printf.sprintf "request frame exceeds %d bytes" max_bytes)
  else
    match Json.parse line with
    | Error m -> fail Json.Null ("invalid JSON: " ^ m)
    | Ok (Json.Object _ as obj) -> (
      let id = Option.value (Json.member "id" obj) ~default:Json.Null in
      try
        let client = opt_string obj "client" in
        let failpoints = opt_string obj "failpoints" in
        let idem = opt_string obj "idem" in
        let op =
          match opt_string obj "op" with
          | None -> reject "request needs an \"op\" field"
          | Some "analyze" -> Analyze (parse_analyze obj)
          | Some "ping" -> Ping
          | Some "metrics" -> Metrics
          | Some "stats" -> Stats
          | Some "health" -> Health
          | Some "shutdown" -> Shutdown
          | Some other -> reject "unknown op %S" other
        in
        Ok { id; client; failpoints; idem; op }
      with Reject m -> fail id m)
    | Ok _ -> fail Json.Null "request must be a JSON object"

(* ------------------------------------------------------------------ *)
(* Response rendering. *)

let ok_response ~id body =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "{\"id\":";
  Json.add_value buf id;
  Buffer.add_string buf ",\"ok\":true,\"result\":{";
  body buf;
  Buffer.add_string buf "}}";
  Buffer.contents buf

let error_response ~id err =
  let buf = Buffer.create 128 in
  Buffer.add_string buf "{\"id\":";
  Json.add_value buf id;
  Buffer.add_string buf ",\"ok\":false,\"error\":{\"code\":";
  Json.add_string buf (error_code_name err.code);
  Buffer.add_string buf ",\"message\":";
  Json.add_string buf err.message;
  (match err.retry_after with
  | None -> ()
  | Some s ->
    Buffer.add_string buf ",\"retry_after\":";
    Json.add_float buf s);
  Buffer.add_string buf "}}";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Request builders. *)

let add_field buf ~first name emit =
  if not !first then Buffer.add_char buf ',';
  first := false;
  Json.add_string buf name;
  Buffer.add_char buf ':';
  emit buf

let analyze_line ?id ?client ?idem ?horizon ?cutoff ?engine ?domains
    ?deadline ?mem_limit_mb ?max_order ?failpoints ?(verbose = false) ~model
    () =
  let buf = Buffer.create (String.length model + 128) in
  let first = ref true in
  Buffer.add_char buf '{';
  Option.iter
    (fun v -> add_field buf ~first "id" (fun b -> Json.add_string b v))
    id;
  Option.iter
    (fun v -> add_field buf ~first "client" (fun b -> Json.add_string b v))
    client;
  Option.iter
    (fun v -> add_field buf ~first "idem" (fun b -> Json.add_string b v))
    idem;
  add_field buf ~first "op" (fun b -> Json.add_string b "analyze");
  add_field buf ~first "model" (fun b -> Json.add_string b model);
  let params = Buffer.create 64 in
  let pfirst = ref true in
  Option.iter
    (fun v -> add_field params ~first:pfirst "horizon" (fun b -> Json.add_float b v))
    horizon;
  Option.iter
    (fun v -> add_field params ~first:pfirst "cutoff" (fun b -> Json.add_float b v))
    cutoff;
  Option.iter
    (fun v -> add_field params ~first:pfirst "engine" (fun b -> Json.add_string b v))
    engine;
  Option.iter
    (fun v ->
      add_field params ~first:pfirst "domains" (fun b ->
          Buffer.add_string b (string_of_int v)))
    domains;
  Option.iter
    (fun v -> add_field params ~first:pfirst "deadline" (fun b -> Json.add_float b v))
    deadline;
  Option.iter
    (fun v ->
      add_field params ~first:pfirst "mem_limit_mb" (fun b ->
          Buffer.add_string b (string_of_int v)))
    mem_limit_mb;
  Option.iter
    (fun v ->
      add_field params ~first:pfirst "max_order" (fun b ->
          Buffer.add_string b (string_of_int v)))
    max_order;
  if Buffer.length params > 0 then
    add_field buf ~first "params" (fun b ->
        Buffer.add_char b '{';
        Buffer.add_buffer b params;
        Buffer.add_char b '}');
  Option.iter
    (fun v -> add_field buf ~first "failpoints" (fun b -> Json.add_string b v))
    failpoints;
  if verbose then
    add_field buf ~first "verbose" (fun b -> Buffer.add_string b "true");
  Buffer.add_char buf '}';
  Buffer.contents buf

let simple_line ?id ?client op =
  let buf = Buffer.create 64 in
  let first = ref true in
  Buffer.add_char buf '{';
  Option.iter
    (fun v -> add_field buf ~first "id" (fun b -> Json.add_string b v))
    id;
  Option.iter
    (fun v -> add_field buf ~first "client" (fun b -> Json.add_string b v))
    client;
  add_field buf ~first "op" (fun b -> Json.add_string b op);
  Buffer.add_char buf '}';
  Buffer.contents buf

(** The socket front of the analysis server: listener, connection
    handling, and the [/metrics] scrape endpoint.

    Each accepted connection gets a lightweight thread that reads
    newline-delimited request frames and hands them to
    {!Server_core.submit}; worker domains write the response lines back
    through a per-connection mutex, so responses to pipelined requests may
    interleave (correlate by [id]). A connection whose first line starts
    with ["GET "] is treated as a plain HTTP/1.x scrape: the daemon
    answers one [200 text/plain] response carrying
    {!Server_core.prometheus} and closes — enough for a Prometheus
    scraper, with no HTTP stack.

    {!serve} returns after a graceful shutdown (a [shutdown] op, or
    {!request_stop} from a signal handler): the listener closes, admitted
    requests drain, the worker pool joins and the shared cache is
    flushed. *)

type addr =
  | Unix_sock of string  (** path; any stale socket file is replaced *)
  | Tcp of string * int  (** host, port *)

val addr_of_string : string -> (addr, string) result
(** Accepts ["unix:PATH"], ["tcp:HOST:PORT"], and bare [PATH] (a Unix
    socket). *)

val addr_to_string : addr -> string

val serve : ?on_ready:(unit -> unit) -> Server_core.t -> addr -> unit
(** Bind, listen and serve until shutdown. [on_ready] runs once the
    listener is accepting (the CLI prints its banner there).
    @raise Unix.Unix_error when the initial bind/listen fails — after
    that, per-connection errors never escape. *)

val request_stop : Server_core.t -> unit
(** Initiate the same graceful shutdown as a [shutdown] op; safe to call
    from a signal handler. *)

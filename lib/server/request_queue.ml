(* Mutex + condition bounded FIFO. The lock is held only for O(1) queue
   operations; analysis work happens outside. *)

type 'a t = {
  capacity : int;
  q : 'a Queue.t;
  m : Mutex.t;
  nonempty : Condition.t;
  mutable closed : bool;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Request_queue.create: capacity < 1";
  {
    capacity;
    q = Queue.create ();
    m = Mutex.create ();
    nonempty = Condition.create ();
    closed = false;
  }

let with_lock t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let try_push t x =
  with_lock t (fun () ->
      if t.closed then `Closed
      else if Queue.length t.q >= t.capacity then `Full
      else begin
        Queue.push x t.q;
        Condition.signal t.nonempty;
        `Ok (Queue.length t.q)
      end)

let take t =
  with_lock t (fun () ->
      while Queue.is_empty t.q && not t.closed do
        Condition.wait t.nonempty t.m
      done;
      if Queue.is_empty t.q then None else Some (Queue.pop t.q))

let close t =
  with_lock t (fun () ->
      t.closed <- true;
      Condition.broadcast t.nonempty)

let length t = with_lock t (fun () -> Queue.length t.q)

(* Socket layer. One lightweight thread per connection feeds frames to
   Server_core; the accept loop polls with select so a shutdown op (or
   signal) is noticed within a poll interval without fd-closing races. *)

type addr =
  | Unix_sock of string
  | Tcp of string * int

let addr_of_string s =
  let unix_of p =
    if p = "" then Error "empty unix socket path" else Ok (Unix_sock p)
  in
  match String.index_opt s ':' with
  | None -> unix_of s
  | Some i -> (
    let scheme = String.sub s 0 i in
    let rest = String.sub s (i + 1) (String.length s - i - 1) in
    match scheme with
    | "unix" -> unix_of rest
    | "tcp" -> (
      match String.rindex_opt rest ':' with
      | None -> Error (Printf.sprintf "tcp address %S needs HOST:PORT" rest)
      | Some j -> (
        let host = String.sub rest 0 j in
        let port = String.sub rest (j + 1) (String.length rest - j - 1) in
        match int_of_string_opt port with
        | Some p when p > 0 && p < 65536 ->
          Ok (Tcp ((if host = "" then "127.0.0.1" else host), p))
        | _ -> Error (Printf.sprintf "bad tcp port %S" port)))
    | _ ->
      (* A bare relative path with a colon in it is unlikely; be strict. *)
      Error (Printf.sprintf "unknown address scheme %S (use unix: or tcp:)" scheme))

let addr_to_string = function
  | Unix_sock p -> "unix:" ^ p
  | Tcp (h, p) -> Printf.sprintf "tcp:%s:%d" h p

let request_stop core =
  Server_core.request_shutdown core

(* ------------------------------------------------------------------ *)

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then
      let w = Unix.write fd b off (n - off) in
      go (off + w)
  in
  go 0

(* Per-connection state. Worker domains reply asynchronously, so writes
   are serialized by [wm]; the reader must not close the fd while replies
   are outstanding (fd reuse would misdirect a late write), so completions
   are counted and the close waits for the last one. *)
type conn = {
  fd : Unix.file_descr;
  wm : Mutex.t;
  cm : Mutex.t;
  done_cv : Condition.t;
  mutable pending : int;
  mutable eof : bool;
}

let conn_send c line =
  Mutex.lock c.wm;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock c.wm)
    (fun () -> write_all c.fd (line ^ "\n"))

let conn_track c =
  Mutex.lock c.cm;
  c.pending <- c.pending + 1;
  Mutex.unlock c.cm

let conn_done c =
  Mutex.lock c.cm;
  c.pending <- c.pending - 1;
  if c.pending = 0 && c.eof then Condition.signal c.done_cv;
  Mutex.unlock c.cm

(* Registry of live connections, so shutdown can wake readers blocked in
   [input_line]. A connection unregisters (under the same lock) before
   closing its fd — the sweeper never touches a closed, possibly reused,
   descriptor. *)
type registry = { reg_m : Mutex.t; reg : (int, conn) Hashtbl.t }

let conn_close reg id c =
  Mutex.lock c.cm;
  c.eof <- true;
  while c.pending > 0 do
    Condition.wait c.done_cv c.cm
  done;
  Mutex.unlock c.cm;
  Mutex.lock reg.reg_m;
  Hashtbl.remove reg.reg id;
  (try Unix.close c.fd with Unix.Unix_error _ -> ());
  Mutex.unlock reg.reg_m

let wake_all reg =
  Mutex.lock reg.reg_m;
  Hashtbl.iter
    (fun _ c ->
      try Unix.shutdown c.fd Unix.SHUTDOWN_RECEIVE
      with Unix.Unix_error _ -> ())
    reg.reg;
  Mutex.unlock reg.reg_m

let http_scrape core c ic =
  (* Drain the request headers (we answer any GET with the exposition). *)
  (try
     let rec skip () =
       match input_line ic with
       | "" | "\r" -> ()
       | _ -> skip ()
     in
     skip ()
   with End_of_file -> ());
  let body = Server_core.prometheus core in
  let head =
    Printf.sprintf
      "HTTP/1.1 200 OK\r\n\
       Content-Type: text/plain; version=0.0.4\r\n\
       Content-Length: %d\r\n\
       Connection: close\r\n\r\n"
      (String.length body)
  in
  try write_all c.fd (head ^ body) with Unix.Unix_error _ -> ()

let handle_conn core reg fd conn_id =
  let c =
    {
      fd;
      wm = Mutex.create ();
      cm = Mutex.create ();
      done_cv = Condition.create ();
      pending = 0;
      eof = false;
    }
  in
  Mutex.lock reg.reg_m;
  Hashtbl.replace reg.reg conn_id c;
  Mutex.unlock reg.reg_m;
  let ic = Unix.in_channel_of_descr fd in
  let client = Printf.sprintf "conn-%d" conn_id in
  let submit line =
    conn_track c;
    Server_core.submit core ~client line ~reply:(fun response ->
        Fun.protect
          ~finally:(fun () -> conn_done c)
          (fun () -> try conn_send c response with _ -> ()))
  in
  (try
     let rec loop first =
       match input_line ic with
       | exception End_of_file -> ()
       | exception Sys_error _ -> ()
       | line ->
         if
           first
           && String.length line >= 4
           && String.sub line 0 4 = "GET "
         then http_scrape core c ic
         else begin
           if String.trim line <> "" then submit line;
           loop false
         end
     in
     loop true
   with _ -> ());
  conn_close reg conn_id c

(* ------------------------------------------------------------------ *)

let listener = function
  | Unix_sock path ->
    if Sys.file_exists path then (try Unix.unlink path with Sys_error _ | Unix.Unix_error _ -> ());
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try Unix.bind fd (Unix.ADDR_UNIX path)
     with e -> (try Unix.close fd with _ -> ()); raise e);
    Unix.listen fd 64;
    fd
  | Tcp (host, port) ->
    let ip =
      try Unix.inet_addr_of_string host
      with Failure _ ->
        (Unix.gethostbyname host).Unix.h_addr_list.(0)
    in
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    (try
       Unix.bind fd (Unix.ADDR_INET (ip, port));
       Unix.listen fd 64
     with e -> (try Unix.close fd with _ -> ()); raise e);
    fd

let serve ?on_ready core addr =
  let fd = listener addr in
  (match on_ready with Some f -> f () | None -> ());
  let reg = { reg_m = Mutex.create (); reg = Hashtbl.create 16 } in
  let conn_counter = ref 0 in
  let threads = ref [] in
  (* Poll so that a shutdown requested by an op (possibly on another
     thread) breaks the loop without having to close the listener out from
     under a blocked accept. *)
  while not (Server_core.stopping core) do
    match Unix.select [ fd ] [] [] 0.2 with
    | [], _, _ -> ()
    | _ :: _, _, _ -> (
      match Unix.accept fd with
      | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN), _, _) -> ()
      | cfd, _ ->
        incr conn_counter;
        let id = !conn_counter in
        threads :=
          Thread.create (fun () -> handle_conn core reg cfd id) ()
          :: !threads)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  (try Unix.close fd with Unix.Unix_error _ -> ());
  (match addr with
  | Unix_sock path -> ( try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
  | Tcp _ -> ());
  (* Wake readers blocked on idle connections, let in-flight connections
     hand their last frames to the core, then drain the pool and flush the
     cache. *)
  wake_all reg;
  List.iter (fun th -> try Thread.join th with _ -> ()) !threads;
  Server_core.shutdown core

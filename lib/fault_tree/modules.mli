(** Module (independent-subtree) detection.

    A gate is a {e module} when no node strictly inside its subtree is
    referenced from outside it — the subtree interacts with the rest of the
    tree only through the gate itself. Classical fault tree tools exploit
    modules to solve parts of the tree independently; here the detection is
    exposed for tooling (the paper's related work contrasts SD fault trees
    with approaches that isolate dynamic modules, which only help when the
    dynamic parts happen to be modular). *)

val find : Fault_tree.t -> int list
(** Gates (by index, increasing) whose subtrees are modules. The top gate is
    always one. Unreachable gates are not reported, and references from
    unreachable gates (dangling scaffolding that the top event never sees) do
    not disqualify a module. *)

val is_module : Fault_tree.t -> int -> bool
(** Same reachability rule as {!find}: only parent edges from gates reachable
    from the top event count against modularity. *)

val dynamic_modules : Fault_tree.t -> is_dynamic:(int -> bool) -> int list
(** Modules whose subtree contains at least one event selected by
    [is_dynamic] — the candidates for the modular dynamic/static split of
    Gulati & Dugan discussed in the paper's related work. *)

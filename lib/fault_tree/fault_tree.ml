type gate_kind =
  | And
  | Or
  | Atleast of int

type node =
  | B of int
  | G of int

type t = {
  basic_names : string array;
  probs : float array;
  gate_names : string array;
  kinds : gate_kind array;
  inputs : node array array;
  top : int;
  by_name : (string, node) Hashtbl.t;
  topo : int array; (* creation order is children-before-parents *)
  mutable basics_memo : Sdft_util.Int_set.t array option;
  mutable basic_parents_memo : int array array option;
  mutable gate_parents_memo : int array array option;
}

module Builder = struct
  type tree = t

  type t = {
    basic_names_v : string Sdft_util.Vec.t;
    probs_v : float Sdft_util.Vec.t;
    gate_names_v : string Sdft_util.Vec.t;
    kinds_v : gate_kind Sdft_util.Vec.t;
    inputs_v : node array Sdft_util.Vec.t;
    names : (string, node) Hashtbl.t;
  }

  let create () =
    {
      basic_names_v = Sdft_util.Vec.create ();
      probs_v = Sdft_util.Vec.create ();
      gate_names_v = Sdft_util.Vec.create ();
      kinds_v = Sdft_util.Vec.create ();
      inputs_v = Sdft_util.Vec.create ();
      names = Hashtbl.create 64;
    }

  let check_name b name =
    if Hashtbl.mem b.names name then
      invalid_arg (Printf.sprintf "Fault_tree.Builder: duplicate name %S" name)

  let basic b ?(prob = 0.0) name =
    check_name b name;
    if prob < 0.0 || prob > 1.0 || not (Float.is_finite prob) then
      invalid_arg
        (Printf.sprintf "Fault_tree.Builder: probability of %S out of [0,1]"
           name);
    let id = Sdft_util.Vec.length b.basic_names_v in
    Sdft_util.Vec.push b.basic_names_v name;
    Sdft_util.Vec.push b.probs_v prob;
    let n = B id in
    Hashtbl.add b.names name n;
    n

  let node_exists b = function
    | B i -> i >= 0 && i < Sdft_util.Vec.length b.basic_names_v
    | G i -> i >= 0 && i < Sdft_util.Vec.length b.gate_names_v

  let gate b name kind inputs =
    check_name b name;
    if inputs = [] then
      invalid_arg (Printf.sprintf "Fault_tree.Builder: gate %S has no inputs" name);
    List.iter
      (fun n ->
        if not (node_exists b n) then
          invalid_arg
            (Printf.sprintf "Fault_tree.Builder: gate %S has an unknown input"
               name))
      inputs;
    let distinct = List.sort_uniq compare inputs in
    if List.length distinct <> List.length inputs then
      invalid_arg
        (Printf.sprintf "Fault_tree.Builder: gate %S has duplicate inputs" name);
    (match kind with
    | Atleast k ->
      if k < 1 || k > List.length inputs then
        invalid_arg
          (Printf.sprintf "Fault_tree.Builder: gate %S: bad K-of-N threshold"
             name)
    | And | Or -> ());
    let id = Sdft_util.Vec.length b.gate_names_v in
    Sdft_util.Vec.push b.gate_names_v name;
    Sdft_util.Vec.push b.kinds_v kind;
    Sdft_util.Vec.push b.inputs_v (Array.of_list inputs);
    let n = G id in
    Hashtbl.add b.names name n;
    n

  let node_of_name b name = Hashtbl.find_opt b.names name

  let build b ~top =
    let top_id =
      match top with
      | G i -> i
      | B _ -> invalid_arg "Fault_tree.Builder.build: top must be a gate"
    in
    let n_gates = Sdft_util.Vec.length b.gate_names_v in
    if top_id < 0 || top_id >= n_gates then
      invalid_arg "Fault_tree.Builder.build: unknown top gate";
    {
      basic_names = Sdft_util.Vec.to_array b.basic_names_v;
      probs = Sdft_util.Vec.to_array b.probs_v;
      gate_names = Sdft_util.Vec.to_array b.gate_names_v;
      kinds = Sdft_util.Vec.to_array b.kinds_v;
      inputs = Sdft_util.Vec.to_array b.inputs_v;
      top = top_id;
      by_name = Hashtbl.copy b.names;
      topo = Array.init n_gates (fun i -> i);
      basics_memo = None;
      basic_parents_memo = None;
      gate_parents_memo = None;
    }
end

let n_basics t = Array.length t.basic_names

let n_gates t = Array.length t.gate_names

let top t = t.top

let basic_name t i = t.basic_names.(i)

let gate_name t i = t.gate_names.(i)

let prob t i = t.probs.(i)

let with_probs t probs =
  if Array.length probs <> n_basics t then
    invalid_arg "Fault_tree.with_probs: wrong length";
  Array.iter
    (fun p ->
      if p < 0.0 || p > 1.0 || not (Float.is_finite p) then
        invalid_arg "Fault_tree.with_probs: probability out of [0,1]")
    probs;
  { t with probs = Array.copy probs }

let gate_kind t i = t.kinds.(i)

let gate_inputs t i = t.inputs.(i)

let basic_index t name =
  match Hashtbl.find_opt t.by_name name with
  | Some (B i) -> Some i
  | Some (G _) | None -> None

let gate_index t name =
  match Hashtbl.find_opt t.by_name name with
  | Some (G i) -> Some i
  | Some (B _) | None -> None

let topological_gates t = t.topo

let compute_parents t =
  let bp = Array.make (n_basics t) [] in
  let gp = Array.make (n_gates t) [] in
  Array.iteri
    (fun g inputs ->
      Array.iter
        (function
          | B b -> bp.(b) <- g :: bp.(b)
          | G g' -> gp.(g') <- g :: gp.(g'))
        inputs)
    t.inputs;
  let finish l = Array.of_list (List.rev l) in
  let bp = Array.map finish bp and gp = Array.map finish gp in
  t.basic_parents_memo <- Some bp;
  t.gate_parents_memo <- Some gp;
  (bp, gp)

let basic_parents t b =
  match t.basic_parents_memo with
  | Some bp -> bp.(b)
  | None -> (fst (compute_parents t)).(b)

let gate_parents t g =
  match t.gate_parents_memo with
  | Some gp -> gp.(g)
  | None -> (snd (compute_parents t)).(g)

let eval_gates_into t ~failed values =
  if Array.length values < n_gates t then
    invalid_arg "Fault_tree.eval_gates_into: buffer too small";
  let node_value = function
    | B b -> failed b
    | G g -> values.(g)
  in
  Array.iter
    (fun g ->
      let inputs = t.inputs.(g) in
      let v =
        match t.kinds.(g) with
        | And -> Array.for_all node_value inputs
        | Or -> Array.exists node_value inputs
        | Atleast k ->
          let count = ref 0 in
          Array.iter (fun n -> if node_value n then incr count) inputs;
          !count >= k
      in
      values.(g) <- v)
    t.topo

let eval_gates t ~failed =
  let values = Array.make (n_gates t) false in
  eval_gates_into t ~failed values;
  values

let fails_top t ~failed = (eval_gates t ~failed).(t.top)

let scenario_probability t xi =
  let acc = ref 1.0 in
  for b = 0 to n_basics t - 1 do
    let p = t.probs.(b) in
    acc := !acc *. (if Sdft_util.Int_set.mem b xi then p else 1.0 -. p)
  done;
  !acc

let exact_top_probability_enumerate t =
  let n = n_basics t in
  if n > 20 then
    invalid_arg "Fault_tree.exact_top_probability_enumerate: too many events";
  let acc = Sdft_util.Kahan.create () in
  for mask = 0 to (1 lsl n) - 1 do
    let failed b = mask land (1 lsl b) <> 0 in
    if fails_top t ~failed then begin
      let p = ref 1.0 in
      for b = 0 to n - 1 do
        p := !p *. (if failed b then t.probs.(b) else 1.0 -. t.probs.(b))
      done;
      Sdft_util.Kahan.add acc !p
    end
  done;
  Sdft_util.Kahan.total acc

let descendant_basics t g =
  let memo =
    match t.basics_memo with
    | Some m -> m
    | None ->
      let m = Array.make (n_gates t) Sdft_util.Int_set.empty in
      Array.iter
        (fun gi ->
          let acc = ref Sdft_util.Int_set.empty in
          Array.iter
            (function
              | B b -> acc := Sdft_util.Int_set.add b !acc
              | G g' -> acc := Sdft_util.Int_set.union !acc m.(g'))
            t.inputs.(gi);
          m.(gi) <- !acc)
        t.topo;
      t.basics_memo <- Some m;
      m
  in
  memo.(g)

let depth t =
  let d = Array.make (n_gates t) 1 in
  Array.iter
    (fun g ->
      let deepest = ref 1 in
      Array.iter
        (function
          | B _ -> ()
          | G g' -> if d.(g') + 1 > !deepest then deepest := d.(g') + 1)
        t.inputs.(g);
      d.(g) <- !deepest)
    t.topo;
  d.(t.top)

type stats = {
  n_basic : int;
  n_gate : int;
  n_and : int;
  n_or : int;
  n_atleast : int;
  tree_depth : int;
}

let stats t =
  let n_and = ref 0 and n_or = ref 0 and n_atleast = ref 0 in
  Array.iter
    (function
      | And -> incr n_and
      | Or -> incr n_or
      | Atleast _ -> incr n_atleast)
    t.kinds;
  {
    n_basic = n_basics t;
    n_gate = n_gates t;
    n_and = !n_and;
    n_or = !n_or;
    n_atleast = !n_atleast;
    tree_depth = depth t;
  }

let pp_stats ppf s =
  Format.fprintf ppf
    "%d basic events, %d gates (%d AND, %d OR, %d K/N), depth %d" s.n_basic
    s.n_gate s.n_and s.n_or s.n_atleast s.tree_depth

let pp_node t ppf = function
  | B b -> Format.pp_print_string ppf t.basic_names.(b)
  | G g -> Format.pp_print_string ppf t.gate_names.(g)

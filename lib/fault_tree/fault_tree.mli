(** Coherent static fault trees (Section II of the paper).

    A fault tree is a DAG whose leaves are {e basic events} (with a failure
    probability) and whose inner nodes are {e gates} of kind AND, OR, or
    K-of-N (the standard voting extension; AND and OR are the paper's
    formalism, K-of-N expands to them). A distinguished {e top gate} models
    the failure of the complete system.

    Basic events and gates are indexed densely from 0 so that analysis code
    can use plain arrays; names are kept for reporting. *)

type gate_kind =
  | And
  | Or
  | Atleast of int  (** [Atleast k]: fails when at least [k] inputs fail. *)

type node =
  | B of int  (** basic event index *)
  | G of int  (** gate index *)

type t

(** {1 Construction} *)

module Builder : sig
  type tree = t

  type t

  val create : unit -> t

  val basic : t -> ?prob:float -> string -> node
  (** Declare a basic event. [prob] defaults to [0.]; it must lie in
      [[0, 1]]. Names must be unique across basic events and gates.

      @raise Invalid_argument on duplicate name or invalid probability. *)

  val gate : t -> string -> gate_kind -> node list -> node
  (** Declare a gate over previously declared nodes. Inputs must be distinct
      and non-empty; [Atleast k] requires [1 <= k <=] number of inputs.
      Acyclicity holds by construction because inputs must already exist. *)

  val node_of_name : t -> string -> node option

  val build : t -> top:node -> tree
  (** Finalize. [top] must be a gate. Unreachable nodes are allowed (they are
      simply never failed by the top).

      @raise Invalid_argument when [top] is a basic event. *)
end

(** {1 Accessors} *)

val n_basics : t -> int

val n_gates : t -> int

val top : t -> int
(** Index of the top gate. *)

val basic_name : t -> int -> string

val gate_name : t -> int -> string

val prob : t -> int -> float
(** Failure probability of a basic event. *)

val with_probs : t -> float array -> t
(** Functional update of all basic-event probabilities. *)

val gate_kind : t -> int -> gate_kind

val gate_inputs : t -> int -> node array
(** Shared array; do not mutate. *)

val basic_index : t -> string -> int option

val gate_index : t -> string -> int option

val topological_gates : t -> int array
(** Gate indices ordered children-before-parents. *)

val gate_parents : t -> int -> int array
(** Gates that have the given gate as input. *)

val basic_parents : t -> int -> int array
(** Gates that have the given basic event as input. *)

(** {1 Semantics} *)

val eval_gates : t -> failed:(int -> bool) -> bool array
(** [eval_gates t ~failed] computes, for every gate, whether the scenario
    [{a | failed a}] fails it (bottom-up evaluation). *)

val eval_gates_into : t -> failed:(int -> bool) -> bool array -> unit
(** [eval_gates_into t ~failed values] is {!eval_gates} writing into the
    caller-supplied buffer [values] (at least [n_gates t] entries) instead
    of allocating. Hot closure loops evaluate gates per explored state;
    this keeps them allocation-free.

    @raise Invalid_argument when the buffer is too small. *)

val fails_top : t -> failed:(int -> bool) -> bool
(** Does the scenario fail the top gate? *)

val scenario_probability : t -> Sdft_util.Int_set.t -> float
(** [p(Xi)] — probability that exactly the events of the scenario fail
    (Section II): [prod_{a in Xi} p(a) * prod_{a notin Xi} (1 - p(a))]. *)

val exact_top_probability_enumerate : t -> float
(** Exact [p(FT)] by enumerating all [2^n] scenarios — exponential; intended
    as a test oracle for small trees.

    @raise Invalid_argument when there are more than 20 basic events. *)

(** {1 Structure} *)

val descendant_basics : t -> int -> Sdft_util.Int_set.t
(** Basic events in the subtree of a gate (memoised per tree). *)

val depth : t -> int
(** Longest path from the top gate to a leaf. *)

type stats = {
  n_basic : int;
  n_gate : int;
  n_and : int;
  n_or : int;
  n_atleast : int;
  tree_depth : int;
}

val stats : t -> stats

val pp_stats : Format.formatter -> stats -> unit

val pp_node : t -> Format.formatter -> node -> unit
(** Node rendered by name. *)

(* A gate g is a module iff every strict-subtree node has all its parents
   inside the subtree (the gate itself may be referenced from anywhere). *)

let subtree_nodes tree g =
  let gates = Hashtbl.create 16 and basics = Hashtbl.create 16 in
  let rec walk g =
    if not (Hashtbl.mem gates g) then begin
      Hashtbl.add gates g ();
      Array.iter
        (function
          | Fault_tree.B b -> Hashtbl.replace basics b ()
          | Fault_tree.G g' -> walk g')
        (Fault_tree.gate_inputs tree g)
    end
  in
  walk g;
  (gates, basics)

(* A parent edge only breaks modularity when the parent gate is part of the
   analysed tree. Models routinely carry dangling intermediate gates (e.g.
   generator scaffolding, commented-out subsystems) that reference the same
   basic events; those edges are invisible to the top event and must not
   disqualify a module — in particular the top gate itself must always
   qualify, which the decomposition engines rely on. *)
let is_module_among ~relevant tree g =
  let gates, basics = subtree_nodes tree g in
  let inside_gate g' = Hashtbl.mem gates g' in
  let breaks parent = relevant parent && not (inside_gate parent) in
  let ok = ref true in
  Hashtbl.iter
    (fun g' () ->
      if g' <> g then
        Array.iter
          (fun parent -> if breaks parent then ok := false)
          (Fault_tree.gate_parents tree g'))
    gates;
  Hashtbl.iter
    (fun b () ->
      Array.iter
        (fun parent -> if breaks parent then ok := false)
        (Fault_tree.basic_parents tree b))
    basics;
  !ok

let reachable_gates tree =
  let seen = Hashtbl.create 64 in
  let rec walk g =
    if not (Hashtbl.mem seen g) then begin
      Hashtbl.add seen g ();
      Array.iter
        (function
          | Fault_tree.B _ -> ()
          | Fault_tree.G g' -> walk g')
        (Fault_tree.gate_inputs tree g)
    end
  in
  walk (Fault_tree.top tree);
  seen

let is_module tree g =
  let reachable = reachable_gates tree in
  is_module_among ~relevant:(Hashtbl.mem reachable) tree g

let find tree =
  let reachable = reachable_gates tree in
  let relevant = Hashtbl.mem reachable in
  List.filter
    (fun g -> relevant g && is_module_among ~relevant tree g)
    (List.init (Fault_tree.n_gates tree) Fun.id)

let dynamic_modules tree ~is_dynamic =
  List.filter
    (fun g ->
      Sdft_util.Int_set.exists is_dynamic (Fault_tree.descendant_basics tree g))
    (find tree)

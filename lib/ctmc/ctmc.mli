(** Finite continuous-time Markov chains with a sparse rate matrix.

    A CTMC over states [0 .. n-1] is given by its outgoing transitions
    [R(i,j) >= 0] for [i <> j]. Self-loops carry no semantics in a CTMC and
    are rejected by the builder.

    The matrix is stored in CSR form: three flat arrays [row_ptr]/[cols]/
    [rates] (the rate array is unboxed), plus per-row end markers so that
    {!restrict_absorbing} can share the transition arrays of its parent.
    Hot numeric loops should fetch the arrays once and index directly;
    {!outgoing} remains as an allocating compatibility view. *)

type t

val make : n_states:int -> transitions:(int * int * float) list -> t
(** [make ~n_states ~transitions] builds a chain from [(src, dst, rate)]
    triples. Parallel transitions between the same pair of states are merged
    by summing their rates.

    @raise Invalid_argument on out-of-range states, non-positive rates, or
    self-loops. *)

val of_arrays :
  n_states:int -> srcs:int array -> dsts:int array -> rates:float array -> t
(** [make] from parallel arrays instead of a list of triples: same
    validation and duplicate merging, without building the intermediate
    list. The input arrays are not retained. *)

val n_states : t -> int

val rate : t -> int -> int -> float
(** [rate c i j] is [R(i,j)] (0 when there is no transition). *)

val exit_rate : t -> int -> float
(** Total outgoing rate of a state. *)

val max_exit_rate : t -> float
(** Uniformization constant [q >= max_i E(i)]. *)

(** {1 Flat CSR access}

    The returned arrays are the chain's internals, shared with the chain
    (and possibly with chains derived by {!restrict_absorbing}): do not
    mutate them. Row [i] spans [row_ptr.(i) .. row_end.(i) - 1] of
    [cols]/[rates]; destinations are sorted in increasing order. *)

val row_ptr : t -> int array
(** Row start offsets; length [n_states + 1]. *)

val row_end : t -> int array
(** Row end offsets; length [n_states]. Equal to [row_ptr.(i + 1)] for
    freshly built chains; smaller for rows emptied by
    {!restrict_absorbing}. *)

val cols : t -> int array
(** Transition destinations. *)

val rates : t -> float array
(** Transition rates (unboxed float array). *)

val exit_rates : t -> float array
(** Per-state exit rates; length [n_states]. Shared; do not mutate. *)

val iter_row : t -> int -> (int -> float -> unit) -> unit
(** [iter_row c i f] calls [f dst rate] for every outgoing transition of
    [i], in increasing destination order, without allocating. *)

val outgoing : t -> int -> (int * float) array
(** Outgoing transitions of a state as [(dst, rate)] pairs. Compatibility
    view: unlike the CSR accessors it allocates a fresh array per call. *)

val n_transitions : t -> int

val iter_transitions : t -> (int -> int -> float -> unit) -> unit

val restrict_absorbing : t -> (int -> bool) -> t
(** [restrict_absorbing c is_absorbing] removes every outgoing transition of
    the states selected by [is_absorbing], making them absorbing. Used to
    turn transient occupancy of a target set into time-bounded
    reachability. The result shares the parent's transition arrays; the
    parent is not modified. *)

val embedded_dtmc_row : t -> int -> (int * float) array
(** Jump-chain probabilities of a state: outgoing rates normalised by the
    exit rate. Empty for absorbing states. *)

val pp : Format.formatter -> t -> unit

module Metrics = Sdft_util.Metrics
module Trace = Sdft_util.Trace
module Failpoint = Sdft_util.Failpoint
module Obs = Sdft_util.Obs

type handles = {
  m_solves : Metrics.counter;
  m_steps : Metrics.counter;
  m_window : Metrics.counter;
  m_steady : Metrics.counter;
}

let handles_in m =
  {
    m_solves = Metrics.counter_in m "transient.solves";
    m_steps = Metrics.counter_in m "transient.uniformization_steps";
    m_window = Metrics.counter_in m "transient.window_width_total";
    m_steady = Metrics.counter_in m "transient.steady_state_exits";
  }

let default_handles = handles_in Metrics.default

let handles_of m =
  if m == Metrics.default then default_handles else handles_in m

type options = {
  epsilon : float;
  steady_state_detection : bool;
}

let default_options = { epsilon = 1e-12; steady_state_detection = true }

(* Scratch vectors reused across solves. The buffers only grow, so after a
   batch of solves they are sized to the largest chain seen; any prefix
   beyond the current chain's states is ignored. One workspace must not be
   shared between domains. *)
type workspace = {
  mutable ws_pi : float array;
  mutable ws_scratch : float array;
  mutable ws_result : float array;
  (* Provenance of the most recent solve through this workspace, for
     callers (per-cutset quantification, the explain view) that report how
     much numerical work a result cost. *)
  mutable ws_steps : int;
  mutable ws_window : int;
  (* Cached instrument handles for the registry of the last solve: a
     workspace runs many small solves back to back, so resolving names per
     solve would put a hashtable lookup on the per-cutset path. Keyed by
     physical equality of the registry. *)
  mutable ws_handles : (Metrics.t * handles) option;
}

let workspace () =
  {
    ws_pi = [||];
    ws_scratch = [||];
    ws_result = [||];
    ws_steps = 0;
    ws_window = 0;
    ws_handles = None;
  }

let ws_handles ws m =
  match ws.ws_handles with
  | Some (m', h) when m' == m -> h
  | _ ->
    let h = handles_of m in
    ws.ws_handles <- Some (m, h);
    h

let last_steps ws = ws.ws_steps

let last_window ws = ws.ws_window

let ws_reserve ws n =
  if Array.length ws.ws_pi < n then begin
    ws.ws_pi <- Array.make n 0.0;
    ws.ws_scratch <- Array.make n 0.0;
    ws.ws_result <- Array.make n 0.0
  end

let check_init n init =
  let total =
    List.fold_left
      (fun acc (s, m) ->
        if s < 0 || s >= n then
          invalid_arg "Transient: initial state out of range";
        if m < 0.0 || not (Float.is_finite m) then
          invalid_arg "Transient: initial mass must be non-negative";
        acc +. m)
      0.0 init
  in
  if total > 1.0 +. 1e-9 then
    invalid_arg "Transient: initial distribution sums to more than 1"

(* One step of the uniformized DTMC P = I + Q/q: out := pi * P. Flat index
   loop over the CSR arrays; [pi]/[out] may be workspace buffers longer
   than the state count, so the loop bound comes from the chain. *)
let dtmc_step chain q pi out =
  let n = Ctmc.n_states chain in
  let row_ptr = Ctmc.row_ptr chain in
  let row_end = Ctmc.row_end chain in
  let cols = Ctmc.cols chain in
  let rates = Ctmc.rates chain in
  let exits = Ctmc.exit_rates chain in
  Array.fill out 0 n 0.0;
  for src = 0 to n - 1 do
    let mass = Array.unsafe_get pi src in
    if mass > 0.0 then begin
      let exit = Array.unsafe_get exits src in
      Array.unsafe_set out src
        (Array.unsafe_get out src +. (mass *. (1.0 -. (exit /. q))));
      for k = Array.unsafe_get row_ptr src to Array.unsafe_get row_end src - 1 do
        let dst = Array.unsafe_get cols k in
        Array.unsafe_set out dst
          (Array.unsafe_get out dst
          +. (mass *. Array.unsafe_get rates k /. q))
      done
    end
  done

let max_abs_diff n a b =
  let d = ref 0.0 in
  for i = 0 to n - 1 do
    let diff = Float.abs (a.(i) -. b.(i)) in
    if diff > !d then d := diff
  done;
  !d

(* Core solve writing into [ws.ws_result] (first [n] entries); returns
   [false] when no motion happened and the result is just the initial
   distribution in [ws.ws_pi]. *)
let solve_into ~options ~guard ~obs ws chain ~init ~t =
  let sink = obs.Obs.trace in
  let fp = obs.Obs.failpoints in
  let h = ws_handles ws obs.Obs.metrics in
  Trace.with_span ~sink "transient.solve" (fun () ->
  if t < 0.0 || not (Float.is_finite t) then
    invalid_arg "Transient.distribution: bad horizon";
  let n = Ctmc.n_states chain in
  check_init n init;
  ws_reserve ws n;
  let pi = ws.ws_pi in
  Array.fill pi 0 n 0.0;
  List.iter (fun (s, m) -> pi.(s) <- pi.(s) +. m) init;
  let q = Ctmc.max_exit_rate chain in
  Trace.add_attr ~sink "states" (Trace.Int n);
  if t = 0.0 || q = 0.0 then begin
    ws.ws_steps <- 0;
    ws.ws_window <- 0;
    false
  end
  else begin
    let window = Poisson.weights ~epsilon:options.epsilon (q *. t) in
    Metrics.incr h.m_solves;
    Metrics.add h.m_window (window.Poisson.right - window.Poisson.left + 1);
    let result = ws.ws_result in
    Array.fill result 0 n 0.0;
    let accumulate weight pi =
      if weight > 0.0 then
        for i = 0 to n - 1 do
          result.(i) <- result.(i) +. (weight *. pi.(i))
        done
    in
    let scratch = ws.ws_scratch in
    let weight_of k =
      if k < window.Poisson.left || k > window.Poisson.right then 0.0
      else window.Poisson.weights.(k - window.Poisson.left)
    in
    let k = ref 0 in
    let remaining = ref 1.0 in
    let stationary = ref false in
    while !k <= window.Poisson.right && not !stationary do
      (* One uniformization step costs O(transitions), so an immediate
         (non-amortized) guard probe per step is noise — and amortizing
         over 4k steps would overshoot short deadlines on big chains. *)
      (match guard with
      | Some g -> Sdft_util.Guard.check_now g
      | None -> ());
      Failpoint.hit_in fp "transient.step";
      let w = weight_of !k in
      accumulate w pi;
      remaining := !remaining -. w;
      if !k < window.Poisson.right then begin
        dtmc_step chain q pi scratch;
        if
          options.steady_state_detection
          && max_abs_diff n pi scratch < options.epsilon /. 8.0
        then stationary := true
        else Array.blit scratch 0 pi 0 n
      end;
      incr k
    done;
    (* One atomic add per solve, not per step. *)
    Metrics.add h.m_steps !k;
    if !stationary then Metrics.incr h.m_steady;
    if !stationary && !remaining > 0.0 then accumulate !remaining pi;
    ws.ws_steps <- !k;
    ws.ws_window <- window.Poisson.right - window.Poisson.left + 1;
    Trace.add_attr ~sink "steps" (Trace.Int !k);
    Trace.add_attr ~sink "window" (Trace.Int ws.ws_window);
    if !stationary then Trace.add_attr ~sink "stationary" (Trace.Bool true);
    true
  end)

let distribution ?(options = default_options) ?guard ?workspace:ws
    ?(obs = Obs.default) chain ~init ~t =
  let ws = match ws with Some w -> w | None -> workspace () in
  let n = Ctmc.n_states chain in
  if solve_into ~options ~guard ~obs ws chain ~init ~t then
    Array.sub ws.ws_result 0 n
  else Array.sub ws.ws_pi 0 n

let reach_within ?(options = default_options) ?guard ?workspace:ws
    ?(obs = Obs.default) chain ~init ~target ~t =
  let ws = match ws with Some w -> w | None -> workspace () in
  let absorbed = Ctmc.restrict_absorbing chain target in
  let n = Ctmc.n_states absorbed in
  let dist =
    if solve_into ~options ~guard ~obs ws absorbed ~init ~t then ws.ws_result
    else ws.ws_pi
  in
  let acc = Sdft_util.Kahan.create () in
  for s = 0 to n - 1 do
    if target s then Sdft_util.Kahan.add acc dist.(s)
  done;
  (* Clamp tiny numerical overshoot. *)
  Float.min 1.0 (Sdft_util.Kahan.total acc)

let expected_time_to_absorption chain ~init =
  let n = Ctmc.n_states chain in
  check_init n init;
  let row_ptr = Ctmc.row_ptr chain in
  let row_end = Ctmc.row_end chain in
  let cols = Ctmc.cols chain in
  let rates = Ctmc.rates chain in
  let exits = Ctmc.exit_rates chain in
  (* Solve (for transient states i): E(i) * h(i) = 1 + sum_j R(i,j) h(j),
     i.e. h(i) = (1 + sum_j R(i,j) h(j)) / E(i), by Gauss-Seidel. *)
  let h = Array.make n 0.0 in
  let max_iter = 100_000 and tol = 1e-12 in
  let rec iterate round =
    if round > max_iter then None
    else begin
      let delta = ref 0.0 in
      for i = 0 to n - 1 do
        let e = exits.(i) in
        if e > 0.0 then begin
          let acc = ref 1.0 in
          for k = row_ptr.(i) to row_end.(i) - 1 do
            acc := !acc +. (rates.(k) *. h.(cols.(k)))
          done;
          let v = !acc /. e in
          let d = Float.abs (v -. h.(i)) in
          if d > !delta then delta := d;
          h.(i) <- v
        end
      done;
      if !delta < tol then Some ()
      else iterate (round + 1)
    end
  in
  (* Reachability of absorption must be certain for the system to converge;
     detect obviously divergent cases by bounding the iteration count. *)
  match iterate 0 with
  | None -> None
  | Some () ->
    let total =
      List.fold_left (fun acc (s, m) -> acc +. (m *. h.(s))) 0.0 init
    in
    if Float.is_finite total then Some total else None

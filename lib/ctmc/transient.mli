(** Transient analysis of CTMCs by uniformization.

    This is the numerical core used to quantify every minimal cutset: the
    probability of reaching a target set within a time horizon, computed as
    the transient mass of the target states after making them absorbing. *)

type options = {
  epsilon : float;  (** truncation error bound for the Poisson window *)
  steady_state_detection : bool;
      (** stop iterating the DTMC once the vector is numerically stationary *)
}

val default_options : options

type workspace
(** Reusable scratch vectors ([pi]/[scratch]/[result]) for back-to-back
    solves. A workspace grows to the largest chain it has seen and is then
    reused without further allocation. Not safe to share across domains:
    give every worker its own. *)

val workspace : unit -> workspace

val last_steps : workspace -> int
(** Number of uniformized DTMC steps performed by the most recent solve
    through this workspace (0 when the chain had no motion). Provenance for
    per-cutset reporting. *)

val last_window : workspace -> int
(** Width of the Poisson window of the most recent solve through this
    workspace (0 when the chain had no motion). The per-call truncation
    error of that window is bounded by [options.epsilon]. *)

val dtmc_step : Ctmc.t -> float -> float array -> float array -> unit
(** [dtmc_step chain q pi out] performs one step of the uniformized DTMC
    [P = I + Q/q]: [out := pi * P]. [pi] and [out] must have at least
    [n_states] entries (only that prefix is read and written). Exposed for
    the kernel benchmarks; analysis code should use {!distribution} or
    {!reach_within}. *)

val distribution :
  ?options:options ->
  ?guard:Sdft_util.Guard.t ->
  ?workspace:workspace ->
  ?obs:Sdft_util.Obs.t ->
  Ctmc.t ->
  init:(int * float) list ->
  t:float ->
  float array
(** [distribution chain ~init ~t] is the state distribution at time [t]
    starting from the (sub)distribution [init] (pairs [(state, mass)]; masses
    must be non-negative and sum to at most 1). The returned array is always
    freshly allocated; [workspace] only removes the internal scratch
    allocations.

    [guard], when given, is probed (non-amortized) before every
    uniformization step and raises {!Sdft_util.Guard.Limit_hit} on a trip;
    the [transient.step] failpoint site of [obs] (default
    {!Sdft_util.Obs.default}) fires at the same place, and solve metrics
    and trace spans go to the same context.

    @raise Invalid_argument on a negative horizon or an invalid initial
    distribution. *)

val reach_within :
  ?options:options ->
  ?guard:Sdft_util.Guard.t ->
  ?workspace:workspace ->
  ?obs:Sdft_util.Obs.t ->
  Ctmc.t ->
  init:(int * float) list ->
  target:(int -> bool) ->
  t:float ->
  float
(** [reach_within chain ~init ~target ~t] is
    [Pr(exists t' <= t. X(t') in target)]: target states are made absorbing
    and their transient mass at [t] is summed. With [workspace] the solve
    performs no per-call vector allocation. *)

val expected_time_to_absorption :
  Ctmc.t -> init:(int * float) list -> float option
(** Mean time to reach the absorbing states, by solving the linear system on
    the transient states with Gauss–Seidel; [None] if some initial mass can
    never be absorbed (or the iteration does not converge). Used by tests and
    by model exploration tooling. *)

(** The pre-CSR chain representation ([(dst, rate)] pair rows) and its
    uniformization loop, retained as a differential-testing oracle for the
    flat {!Ctmc}/{!Transient} kernels and as the baseline of the kernel
    benchmarks. No analysis path uses this module. *)

type t

val make : n_states:int -> transitions:(int * int * float) list -> t
(** Historical builder: per-state hashtable merge of duplicate edges. Same
    validation rules as {!Ctmc.make}. *)

val of_ctmc : Ctmc.t -> t

val n_states : t -> int

val max_exit_rate : t -> float

val restrict_absorbing : t -> (int -> bool) -> t

val dtmc_step : t -> float -> float array -> float array -> unit
(** One step of the uniformized DTMC [P = I + Q/q]: [out := pi * P]. Exposed
    so the kernel benchmark can measure it against {!Transient.dtmc_step}. *)

val distribution :
  ?options:Transient.options -> t -> init:(int * float) list -> t:float -> float array

val reach_within :
  ?options:Transient.options ->
  t ->
  init:(int * float) list ->
  target:(int -> bool) ->
  t:float ->
  float

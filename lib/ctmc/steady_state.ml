let solve ?(max_iter = 100_000) ?(tolerance = 1e-12) chain =
  let n = Ctmc.n_states chain in
  (* Incoming-transition view (CSC: counting pass + fill) for the
     Gauss-Seidel update pi(j) = (sum_{i<>j} pi(i) R(i,j)) / E(j). *)
  let in_ptr = Array.make (n + 1) 0 in
  Ctmc.iter_transitions chain (fun _ dst _ ->
      in_ptr.(dst + 1) <- in_ptr.(dst + 1) + 1);
  for j = 0 to n - 1 do
    in_ptr.(j + 1) <- in_ptr.(j + 1) + in_ptr.(j)
  done;
  let in_src = Array.make in_ptr.(n) 0 in
  let in_rate = Array.make in_ptr.(n) 0.0 in
  let fill = Array.sub in_ptr 0 n in
  Ctmc.iter_transitions chain (fun src dst rate ->
      let k = fill.(dst) in
      in_src.(k) <- src;
      in_rate.(k) <- rate;
      fill.(dst) <- k + 1);
  let pi = Array.make n (1.0 /. float_of_int n) in
  let exit = Ctmc.exit_rates chain in
  let normalize () =
    let total = Sdft_util.Kahan.sum pi in
    if total > 0.0 then
      for i = 0 to n - 1 do
        pi.(i) <- pi.(i) /. total
      done
  in
  let rec iterate round =
    if round > max_iter then None
    else begin
      let delta = ref 0.0 in
      for j = 0 to n - 1 do
        if exit.(j) > 0.0 then begin
          (* The historical list view accumulated most-recent-first; walk
             the segment backwards to keep the same summation order. *)
          let inflow = ref 0.0 in
          for k = in_ptr.(j + 1) - 1 downto in_ptr.(j) do
            inflow := !inflow +. (pi.(in_src.(k)) *. in_rate.(k))
          done;
          let v = !inflow /. exit.(j) in
          let d = Float.abs (v -. pi.(j)) in
          if d > !delta then delta := d;
          pi.(j) <- v
        end
      done;
      normalize ();
      if !delta < tolerance then Some ()
      else iterate (round + 1)
    end
  in
  match iterate 0 with
  | None -> None
  | Some () -> Some (Array.copy pi)

let unavailability ?max_iter ?tolerance chain ~failed =
  match solve ?max_iter ?tolerance chain with
  | None -> None
  | Some pi ->
    let acc = Sdft_util.Kahan.create () in
    Array.iteri (fun s m -> if failed s then Sdft_util.Kahan.add acc m) pi;
    Some (Sdft_util.Kahan.total acc)

let expected_occupancy ?(epsilon = 1e-12) chain ~init ~t =
  let n = Ctmc.n_states chain in
  if t < 0.0 || not (Float.is_finite t) then
    invalid_arg "Steady_state.expected_occupancy: bad horizon";
  let pi = Array.make n 0.0 in
  List.iter (fun (s, m) -> pi.(s) <- pi.(s) +. m) init;
  let q = Ctmc.max_exit_rate chain in
  if q = 0.0 || t = 0.0 then
    (* No motion: all mass sits in the initial states for the whole time. *)
    Array.map (fun m -> m *. t) pi
  else begin
    (* integral_0^t pi(s) ds = (1/q) sum_k P(N_qt > k) pi_k, where pi_k are
       the uniformized DTMC iterates and N_qt ~ Poisson(qt). *)
    let window = Poisson.weights ~epsilon (q *. t) in
    let result = Array.make n 0.0 in
    let scratch = Array.make n 0.0 in
    (* tail(k) = P(N > k) = 1 - sum_{j<=k} w(j). *)
    let cumulative = ref 0.0 in
    let tail k =
      if k < window.Poisson.left then 1.0 -. !cumulative
      else if k > window.Poisson.right then 0.0
      else begin
        cumulative := !cumulative +. window.Poisson.weights.(k - window.Poisson.left);
        Float.max 0.0 (1.0 -. !cumulative)
      end
    in
    let pi = ref pi and scratch = ref scratch in
    let k = ref 0 in
    let continue = ref true in
    while !continue do
      let w = tail !k in
      if w <= 0.0 && !k >= window.Poisson.right then continue := false
      else begin
        let p = !pi in
        for i = 0 to n - 1 do
          result.(i) <- result.(i) +. (w *. p.(i))
        done;
        (* advance the DTMC over the flat CSR arrays *)
        let src = !pi and dst = !scratch in
        Transient.dtmc_step chain q src dst;
        pi := dst;
        scratch := src;
        incr k
      end
    done;
    Array.map (fun x -> x /. q) result
  end

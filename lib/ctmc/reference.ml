(* The pre-CSR chain representation and uniformization loop, retained
   verbatim as a differential-testing oracle and as the baseline the kernel
   benchmarks measure speedups against. Not used by any analysis path. *)

type t = {
  n : int;
  rows : (int * float) array array;
  exit : float array;
}

let make ~n_states ~transitions =
  if n_states <= 0 then invalid_arg "Reference.make: need at least one state";
  let buckets = Array.make n_states [] in
  List.iter
    (fun (src, dst, rate) ->
      if src < 0 || src >= n_states || dst < 0 || dst >= n_states then
        invalid_arg "Reference.make: state out of range";
      if src = dst then invalid_arg "Reference.make: self-loop";
      if rate <= 0.0 || not (Float.is_finite rate) then
        invalid_arg "Reference.make: rate must be positive and finite";
      buckets.(src) <- (dst, rate) :: buckets.(src))
    transitions;
  let merge_row lst =
    let tbl = Hashtbl.create 8 in
    List.iter
      (fun (dst, rate) ->
        let prev = try Hashtbl.find tbl dst with Not_found -> 0.0 in
        Hashtbl.replace tbl dst (prev +. rate))
      lst;
    let row = Hashtbl.fold (fun dst rate acc -> (dst, rate) :: acc) tbl [] in
    let row = Array.of_list row in
    Array.sort (fun (a, _) (b, _) -> compare a b) row;
    row
  in
  let rows = Array.map merge_row buckets in
  let exit =
    Array.map (Array.fold_left (fun acc (_, r) -> acc +. r) 0.0) rows
  in
  { n = n_states; rows; exit }

let of_ctmc chain =
  {
    n = Ctmc.n_states chain;
    rows = Array.init (Ctmc.n_states chain) (Ctmc.outgoing chain);
    exit = Array.init (Ctmc.n_states chain) (Ctmc.exit_rate chain);
  }

let n_states c = c.n

let max_exit_rate c = Array.fold_left max 0.0 c.exit

let restrict_absorbing c is_absorbing =
  let rows =
    Array.mapi (fun i row -> if is_absorbing i then [||] else row) c.rows
  in
  let exit =
    Array.map (Array.fold_left (fun acc (_, r) -> acc +. r) 0.0) rows
  in
  { n = c.n; rows; exit }

(* One step of the uniformized DTMC P = I + Q/q: out := pi * P. *)
let dtmc_step chain q pi out =
  let n = Array.length pi in
  Array.fill out 0 n 0.0;
  for src = 0 to n - 1 do
    let mass = pi.(src) in
    if mass > 0.0 then begin
      let exit = chain.exit.(src) in
      out.(src) <- out.(src) +. (mass *. (1.0 -. (exit /. q)));
      let row = chain.rows.(src) in
      Array.iter
        (fun (dst, r) -> out.(dst) <- out.(dst) +. (mass *. r /. q))
        row
    end
  done

let max_abs_diff a b =
  let d = ref 0.0 in
  Array.iteri
    (fun i x ->
      let diff = Float.abs (x -. b.(i)) in
      if diff > !d then d := diff)
    a;
  !d

let check_init n init =
  let total =
    List.fold_left
      (fun acc (s, m) ->
        if s < 0 || s >= n then
          invalid_arg "Reference: initial state out of range";
        if m < 0.0 || not (Float.is_finite m) then
          invalid_arg "Reference: initial mass must be non-negative";
        acc +. m)
      0.0 init
  in
  if total > 1.0 +. 1e-9 then
    invalid_arg "Reference: initial distribution sums to more than 1"

let distribution ?(options = Transient.default_options) chain ~init ~t =
  if t < 0.0 || not (Float.is_finite t) then
    invalid_arg "Reference.distribution: bad horizon";
  let n = chain.n in
  check_init n init;
  let pi0 = Array.make n 0.0 in
  List.iter (fun (s, m) -> pi0.(s) <- pi0.(s) +. m) init;
  let q = max_exit_rate chain in
  if t = 0.0 || q = 0.0 then pi0
  else begin
    let window = Poisson.weights ~epsilon:options.Transient.epsilon (q *. t) in
    let result = Array.make n 0.0 in
    let accumulate weight pi =
      if weight > 0.0 then
        for i = 0 to n - 1 do
          result.(i) <- result.(i) +. (weight *. pi.(i))
        done
    in
    let pi = Array.copy pi0 in
    let scratch = Array.make n 0.0 in
    let weight_of k =
      if k < window.Poisson.left || k > window.Poisson.right then 0.0
      else window.Poisson.weights.(k - window.Poisson.left)
    in
    let k = ref 0 in
    let remaining = ref 1.0 in
    let stationary = ref false in
    while !k <= window.Poisson.right && not !stationary do
      let w = weight_of !k in
      accumulate w pi;
      remaining := !remaining -. w;
      if !k < window.Poisson.right then begin
        dtmc_step chain q pi scratch;
        if
          options.Transient.steady_state_detection
          && max_abs_diff pi scratch < options.Transient.epsilon /. 8.0
        then stationary := true
        else Array.blit scratch 0 pi 0 n
      end;
      incr k
    done;
    if !stationary && !remaining > 0.0 then accumulate !remaining pi;
    result
  end

let reach_within ?(options = Transient.default_options) chain ~init ~target ~t =
  let absorbed = restrict_absorbing chain target in
  let dist = distribution ~options absorbed ~init ~t in
  let acc = Sdft_util.Kahan.create () in
  Array.iteri (fun s m -> if target s then Sdft_util.Kahan.add acc m) dist;
  Float.min 1.0 (Sdft_util.Kahan.total acc)

(* Flat CSR representation: row [i] owns the index range
   [row_ptr.(i) .. row_end.(i) - 1] of [cols]/[rates]. For freshly built
   chains [row_end.(i) = row_ptr.(i + 1)]; [restrict_absorbing] produces
   views that share [row_ptr]/[cols]/[rates] and only replace [row_end]
   (emptied rows) and [exit]. [rates] is an unboxed float array, so the hot
   uniformization loop is two flat-array reads per transition instead of a
   pointer chase through boxed [(int * float)] pairs. *)
type t = {
  n : int;
  row_ptr : int array; (* length n + 1 *)
  row_end : int array; (* length n *)
  cols : int array;
  rates : float array;
  exit : float array;
}

let validate_transition n_states (src, dst, rate) =
  if src < 0 || src >= n_states || dst < 0 || dst >= n_states then
    invalid_arg "Ctmc.make: state out of range";
  if src = dst then invalid_arg "Ctmc.make: self-loop";
  if rate <= 0.0 || not (Float.is_finite rate) then
    invalid_arg "Ctmc.make: rate must be positive and finite"

(* Stable insertion sort of the row segment [lo, hi) by destination, keeping
   [cols] and [rates] in step. Rows are tiny (a handful of entries), and an
   int comparison avoids the polymorphic [compare] on boxed pairs. *)
let sort_row_segment cols rates lo hi =
  for k = lo + 1 to hi - 1 do
    let c = cols.(k) and r = rates.(k) in
    let j = ref k in
    while !j > lo && cols.(!j - 1) > c do
      cols.(!j) <- cols.(!j - 1);
      rates.(!j) <- rates.(!j - 1);
      decr j
    done;
    cols.(!j) <- c;
    rates.(!j) <- r
  done

(* Shared merge pass: rows have been bucket-filled in input order into
   [cols]/[rates] delimited by [row_ptr]; sort each row and merge duplicate
   destinations in place (compacting towards the front). Duplicates are
   summed last-to-first within each run, matching the historical
   hashtable-accumulator order bit for bit. *)
let finish ~n_states row_ptr cols rates =
  let merged_ptr = Array.make (n_states + 1) 0 in
  let w = ref 0 in
  for i = 0 to n_states - 1 do
    merged_ptr.(i) <- !w;
    let lo = row_ptr.(i) and hi = row_ptr.(i + 1) in
    sort_row_segment cols rates lo hi;
    let k = ref lo in
    while !k < hi do
      let dst = cols.(!k) in
      let last = ref !k in
      while !last + 1 < hi && cols.(!last + 1) = dst do incr last done;
      let acc = ref rates.(!last) in
      for p = !last - 1 downto !k do
        acc := !acc +. rates.(p)
      done;
      cols.(!w) <- dst;
      rates.(!w) <- !acc;
      incr w;
      k := !last + 1
    done
  done;
  merged_ptr.(n_states) <- !w;
  let cols = Array.sub cols 0 !w and rates = Array.sub rates 0 !w in
  let exit = Array.make n_states 0.0 in
  for i = 0 to n_states - 1 do
    let acc = ref 0.0 in
    for k = merged_ptr.(i) to merged_ptr.(i + 1) - 1 do
      acc := !acc +. rates.(k)
    done;
    exit.(i) <- !acc
  done;
  {
    n = n_states;
    row_ptr = merged_ptr;
    row_end = Array.sub merged_ptr 1 n_states;
    cols;
    rates;
    exit;
  }

let make ~n_states ~transitions =
  if n_states <= 0 then invalid_arg "Ctmc.make: need at least one state";
  (* Counting pass + fill: no per-state hashtable, no intermediate lists. *)
  let row_ptr = Array.make (n_states + 1) 0 in
  List.iter
    (fun ((src, _, _) as tr) ->
      validate_transition n_states tr;
      row_ptr.(src + 1) <- row_ptr.(src + 1) + 1)
    transitions;
  for i = 0 to n_states - 1 do
    row_ptr.(i + 1) <- row_ptr.(i + 1) + row_ptr.(i)
  done;
  let total = row_ptr.(n_states) in
  let cols = Array.make total 0 and rates = Array.make total 0.0 in
  let fill = Array.sub row_ptr 0 n_states in
  List.iter
    (fun (src, dst, rate) ->
      let k = fill.(src) in
      cols.(k) <- dst;
      rates.(k) <- rate;
      fill.(src) <- k + 1)
    transitions;
  finish ~n_states row_ptr cols rates

let of_arrays ~n_states ~srcs ~dsts ~rates:in_rates =
  if n_states <= 0 then invalid_arg "Ctmc.make: need at least one state";
  let total = Array.length srcs in
  if Array.length dsts <> total || Array.length in_rates <> total then
    invalid_arg "Ctmc.of_arrays: mismatched array lengths";
  let row_ptr = Array.make (n_states + 1) 0 in
  for k = 0 to total - 1 do
    validate_transition n_states (srcs.(k), dsts.(k), in_rates.(k));
    row_ptr.(srcs.(k) + 1) <- row_ptr.(srcs.(k) + 1) + 1
  done;
  for i = 0 to n_states - 1 do
    row_ptr.(i + 1) <- row_ptr.(i + 1) + row_ptr.(i)
  done;
  let cols = Array.make total 0 and rates = Array.make total 0.0 in
  let fill = Array.sub row_ptr 0 n_states in
  for k = 0 to total - 1 do
    let src = srcs.(k) in
    let slot = fill.(src) in
    cols.(slot) <- dsts.(k);
    rates.(slot) <- in_rates.(k);
    fill.(src) <- slot + 1
  done;
  finish ~n_states row_ptr cols rates

let n_states c = c.n

let row_ptr c = c.row_ptr

let row_end c = c.row_end

let cols c = c.cols

let rates c = c.rates

let exit_rates c = c.exit

let rate c i j =
  if i < 0 || i >= c.n || j < 0 || j >= c.n then
    invalid_arg "Ctmc.rate: state out of range";
  let rec loop k =
    if k >= c.row_end.(i) then 0.0
    else if c.cols.(k) = j then c.rates.(k)
    else loop (k + 1)
  in
  loop c.row_ptr.(i)

let exit_rate c i =
  if i < 0 || i >= c.n then invalid_arg "Ctmc.exit_rate: state out of range";
  c.exit.(i)

let max_exit_rate c = Array.fold_left max 0.0 c.exit

let iter_row c i f =
  if i < 0 || i >= c.n then invalid_arg "Ctmc.iter_row: state out of range";
  for k = c.row_ptr.(i) to c.row_end.(i) - 1 do
    f c.cols.(k) c.rates.(k)
  done

let outgoing c i =
  if i < 0 || i >= c.n then invalid_arg "Ctmc.outgoing: state out of range";
  let lo = c.row_ptr.(i) in
  Array.init (c.row_end.(i) - lo) (fun k -> (c.cols.(lo + k), c.rates.(lo + k)))

let n_transitions c =
  let acc = ref 0 in
  for i = 0 to c.n - 1 do
    acc := !acc + (c.row_end.(i) - c.row_ptr.(i))
  done;
  !acc

let iter_transitions c f =
  for src = 0 to c.n - 1 do
    for k = c.row_ptr.(src) to c.row_end.(src) - 1 do
      f src c.cols.(k) c.rates.(k)
    done
  done

let restrict_absorbing c is_absorbing =
  (* Share [row_ptr]/[cols]/[rates]; only the per-row end markers and the
     exit rates change. The parent chain is never mutated. *)
  let row_end =
    Array.init c.n (fun i -> if is_absorbing i then c.row_ptr.(i) else c.row_end.(i))
  in
  let exit = Array.init c.n (fun i -> if is_absorbing i then 0.0 else c.exit.(i)) in
  { c with row_end; exit }

let embedded_dtmc_row c i =
  let e = c.exit.(i) in
  if e = 0.0 then [||]
  else begin
    let lo = c.row_ptr.(i) in
    Array.init (c.row_end.(i) - lo) (fun k ->
        (c.cols.(lo + k), c.rates.(lo + k) /. e))
  end

let pp ppf c =
  Format.fprintf ppf "@[<v>CTMC with %d states, %d transitions@," c.n
    (n_transitions c);
  iter_transitions c (fun src dst r ->
      Format.fprintf ppf "  %d -> %d @@ %g@," src dst r);
  Format.fprintf ppf "@]"

(** Rare-event simulation of SD fault trees: forcing + failure biasing
    importance sampling over the exact product semantics.

    The analytic pipeline quantifies top events whose probability sits
    around 1e-7..1e-12 — far beyond what crude Monte-Carlo ({!Simulator})
    can observe in any feasible number of trials. This engine changes the
    sampling measure so that failures become common, and corrects each
    trial by its likelihood ratio, giving an {e unbiased} estimator of the
    exact Section III-C probability together with a confidence interval: an
    independent statistical oracle for the MOCUS + product-CTMC pipeline
    (cf. Porotsky, {e Rare-Event Estimation for Dynamic Fault Trees}).

    Two variance-reduction devices, both weight-corrected:

    - {e forcing}: each inter-jump time of the exponential race is sampled
      from the exponential conditioned on landing before the horizon
      (inverse transform of the truncated CDF), multiplying the weight by
      the conditioning probability [1 - exp(-rate * remaining)]. Removed
      trajectories are jump-free to the horizon and therefore cannot fail a
      not-yet-failed top — unbiasedness is preserved. A cap on forced jumps
      ([max_forced_jumps]) restores plain sampling on very long
      trajectories so repairable models terminate.
    - {e failure biasing}: static events with probability [p] are flipped
      with the boosted probability [min (cap, bias * p)] instead, weighting
      the failure branch by [p/p'] and the survival branch by
      [(1-p)/(1-p')].

    Trials run in batches over {!Sdft_util.Parallel.map_init}; every batch
    owns a pre-split {!Sdft_util.Rng} stream and batch results are merged
    in index order with compensated sums, so the estimate is bit-identical
    for a given seed {e regardless of the domain count}. *)

type options = {
  trials : int;  (** maximum number of trials (default 100_000) *)
  batch : int;  (** trials per RNG stream / work item (default 4096) *)
  check_batches : int;
      (** batches between evaluations of the stopping rule — fixed by the
          options, never by the domain count, so early stopping is
          deterministic (default 8) *)
  domains : int;  (** worker domains (default 1) *)
  seed : int;
  target_rel_error : float option;
      (** stop once [std_error/estimate] falls below this (default [None]:
          always run all trials) *)
  forcing : bool;  (** condition inter-jump times on the horizon *)
  max_forced_jumps : int;
      (** forced jumps per trial before reverting to plain sampling
          (default 32) *)
  static_bias : float;
      (** multiplicative boost of static failure probabilities;
          [<= 1.0] disables biasing (default 50.0) *)
  static_bias_cap : float;
      (** ceiling of the boosted probabilities, in (0, 1) (default 0.5) *)
}

val default_options : options

val crude : options -> options
(** The same batched parallel estimator with the measure change switched
    off (no forcing, no biasing) — crude Monte-Carlo with all weights 1,
    for baselines and differential tests. *)

type estimate = {
  estimate : float;  (** weighted failure-probability estimate *)
  variance : float;  (** sample variance of the per-trial contributions *)
  std_error : float;
  rel_error : float;  (** [std_error / estimate]; [infinity] at 0 *)
  trials : int;  (** trials actually run (early stopping may cut this) *)
  hits : int;  (** trials that reached top failure *)
  mean_weight : float;
      (** average likelihood ratio over {e all} trials. Under failure
          biasing alone this has expectation 1 (a calibration check);
          forcing pushes it below 1 by the mass of the discarded
          cannot-fail trajectories. *)
}

val run :
  ?options:options -> ?obs:Sdft_util.Obs.t -> Sdft.t -> horizon:float ->
  estimate
(** Estimate the probability that the top gate fails within the horizon.
    Deterministic per seed, independent of [domains]. Publishes the
    ["sim.trials"/"sim.hits"/"sim.jumps"/"sim.forced_jumps"] counters, the
    ["sim.run"] span, and the per-hit likelihood-weight distribution on the
    ["sim.trial_weight"] histogram of [obs] (default
    {!Sdft_util.Obs.default}) — instrumentation never perturbs the
    estimate.

    @raise Invalid_argument on non-positive [trials] or [batch], or a cap
    outside (0, 1). *)

val z95 : float

val z99 : float

val confidence : ?z:float -> estimate -> float * float
(** Normal-approximation interval [estimate +- z * std_error] clamped to
    [[0, 1]]; defaults to [z95]. The weighted estimator is a mean of iid
    bounded contributions, so the normal approximation is sound at the
    trial counts involved (the binomial special case with weights 1 should
    use {!Simulator.wilson_interval} instead when hits are very few). *)

val variance_reduction : estimate -> float option
(** Trial-for-trial variance ratio vs crude Monte-Carlo of the same
    probability: [p(1-p) / variance]. [None] when degenerate (no hits). *)

val verify :
  ?options:options ->
  ?z:float ->
  ?obs:Sdft_util.Obs.t ->
  Sdft.t ->
  horizon:float ->
  Sdft_analysis.result ->
  estimate * Sdft_analysis.sim_check
(** [verify sd ~horizon result] runs the estimator and checks its
    confidence interval (default [z99]) against the result's certified
    budget interval via {!Sdft_analysis.verify_sim} — the end-to-end
    statistical cross-check of the analytic pipeline. *)

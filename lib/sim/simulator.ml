type stats = {
  trials : int;
  failures : int;
  estimate : float;
  std_error : float;
}

(* One trial; returns the failure time when the top gate fails within the
   horizon. *)
let run_trial world rng ~horizon =
  let state = Sim_world.sample_initial world rng in
  Sim_world.close world state;
  let rec step now =
    if Sim_world.top_failed world state then Some now
    else begin
      let total = Sim_world.total_rate world state in
      if total <= 0.0 then None (* no dynamics left: state is final *)
      else begin
        let dt = Sdft_util.Rng.exponential rng total in
        let now = now +. dt in
        if now > horizon then None
        else if Sim_world.apply_jump world rng state ~total then step now
        else None (* numerical corner: treat as no jump *)
      end
    end
  in
  step 0.0

let simulate ?(seed = 42) sd ~horizon ~trials =
  if trials <= 0 then invalid_arg "Simulator: need at least one trial";
  let world = Sim_world.make sd in
  let rng = Sdft_util.Rng.create seed in
  let failures = ref 0 in
  let time_sum = ref 0.0 in
  for _ = 1 to trials do
    match run_trial world rng ~horizon with
    | Some t ->
      incr failures;
      time_sum := !time_sum +. t
    | None -> ()
  done;
  (!failures, !time_sum)

let unreliability ?seed sd ~horizon ~trials =
  let failures, _ = simulate ?seed sd ~horizon ~trials in
  let p = float_of_int failures /. float_of_int trials in
  {
    trials;
    failures;
    estimate = p;
    std_error = sqrt (p *. (1.0 -. p) /. float_of_int trials);
  }

let failure_time ?seed sd ~horizon ~trials =
  let failures, time_sum = simulate ?seed sd ~horizon ~trials in
  if failures = 0 then None else Some (time_sum /. float_of_int failures)

let wilson_interval ?(z = 1.959963984540054) s =
  (* Wilson score bounds: unlike the Wald interval, these stay informative
     when 0 or all trials failed (the binomial standard error is then 0 and
     a +-z*se interval would collapse to a point). *)
  let n = float_of_int s.trials in
  let p = s.estimate in
  let z2 = z *. z in
  let denom = 1.0 +. (z2 /. n) in
  let center = (p +. (z2 /. (2.0 *. n))) /. denom in
  let half =
    z /. denom *. sqrt ((p *. (1.0 -. p) /. n) +. (z2 /. (4.0 *. n *. n)))
  in
  (* At 0 (resp. all) failures the exact lower (upper) endpoint is 0
     (1); pin it rather than leaving the cancellation's rounding residue. *)
  let lo = if p <= 0.0 then 0.0 else Float.max 0.0 (center -. half) in
  let hi = if p >= 1.0 then 1.0 else Float.min 1.0 (center +. half) in
  (lo, hi)

let confidence_95 s = wilson_interval s

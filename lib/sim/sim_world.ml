type component = {
  (* Flat transition layout shared straight from the underlying [Ctmc]
     arrays: state [s] owns [cols]/[rates] entries
     [row_ptr.(s) .. row_end.(s) - 1]. *)
  row_ptr : int array;
  row_end : int array;
  cols : int array;
  rates : float array;
  init_states : int array;
  init_weights : float array;
  failed : bool array;
  trigger_gate : int; (* -1 when untriggered *)
  mode_on : bool array;
  partner : int array;
  is_static : bool;
  static_prob : float; (* failure probability; 0 for dynamic events *)
}

let component_of_basic sd b =
  let tree = Sdft.tree sd in
  if Sdft.is_dynamic sd b then begin
    let d = Sdft.dbe sd b in
    let n = Dbe.n_states d in
    let chain = Dbe.chain d in
    let init = List.filter (fun (_, p) -> p > 0.0) (Dbe.init d) in
    let triggered = Dbe.is_triggered_model d in
    let mode_on = Array.init n (fun s -> Dbe.mode_of d s = Dbe.On) in
    {
      row_ptr = Ctmc.row_ptr chain;
      row_end = Ctmc.row_end chain;
      cols = Ctmc.cols chain;
      rates = Ctmc.rates chain;
      init_states = Array.of_list (List.map fst init);
      init_weights = Array.of_list (List.map snd init);
      failed = Array.init n (Dbe.is_failed d);
      trigger_gate =
        (match Sdft.trigger_of sd b with Some g -> g | None -> -1);
      mode_on;
      partner =
        Array.init n (fun s ->
            if not triggered then s
            else if mode_on.(s) then Dbe.switch_off d s
            else Dbe.switch_on d s);
      is_static = false;
      static_prob = 0.0;
    }
  end
  else begin
    let p = Fault_tree.prob tree b in
    {
      row_ptr = [| 0; 0; 0 |];
      row_end = [| 0; 0 |];
      cols = [||];
      rates = [||];
      init_states = [| 0; 1 |];
      init_weights = [| 1.0 -. p; p |];
      failed = [| false; true |];
      trigger_gate = -1;
      mode_on = [| true; true |];
      partner = [| 0; 1 |];
      is_static = true;
      static_prob = p;
    }
  end

let sample_categorical rng weights =
  let u = Sdft_util.Rng.float rng in
  let rec pick i acc =
    if i = Array.length weights - 1 then i
    else
      let acc = acc +. weights.(i) in
      if u < acc then i else pick (i + 1) acc
  in
  pick 0 0.0

type t = {
  sd : Sdft.t;
  components : component array;
  n_triggered : int;
  gates_buf : bool array; (* scratch for gate evaluations *)
}

let make sd =
  let nb = Sdft.n_basics sd in
  let components = Array.init nb (component_of_basic sd) in
  let n_triggered =
    Array.fold_left
      (fun acc c -> if c.trigger_gate >= 0 then acc + 1 else acc)
      0 components
  in
  {
    sd;
    components;
    n_triggered;
    gates_buf = Array.make (Fault_tree.n_gates (Sdft.tree sd)) false;
  }

let sd t = t.sd

let components t = t.components

let n_components t = Array.length t.components

let eval world state =
  Fault_tree.eval_gates_into (Sdft.tree world.sd)
    ~failed:(fun b -> world.components.(b).failed.(state.(b)))
    world.gates_buf;
  world.gates_buf

let close world state =
  let passes = ref 0 in
  let changed = ref true in
  while !changed do
    changed := false;
    let gates = eval world state in
    Array.iteri
      (fun b c ->
        if c.trigger_gate >= 0 then begin
          let on = c.mode_on.(state.(b)) in
          if on <> gates.(c.trigger_gate) then begin
            state.(b) <- c.partner.(state.(b));
            changed := true
          end
        end)
      world.components;
    incr passes;
    if !passes > world.n_triggered + 2 then
      failwith "Simulator: update closure did not converge"
  done

let top_failed world state =
  (eval world state).(Fault_tree.top (Sdft.tree world.sd))

let sample_initial world rng =
  Array.map
    (fun c -> c.init_states.(sample_categorical rng c.init_weights))
    world.components

let total_rate world state =
  let total = ref 0.0 in
  Array.iteri
    (fun b c ->
      let s = state.(b) in
      for k = c.row_ptr.(s) to c.row_end.(s) - 1 do
        total := !total +. c.rates.(k)
      done)
    world.components;
  !total

let apply_jump world rng state ~total =
  (* Pick the jumping transition proportionally to its rate, apply it, then
     re-establish trigger consistency. *)
  let u = Sdft_util.Rng.float rng *. total in
  let acc = ref 0.0 in
  let done_ = ref false in
  Array.iteri
    (fun b c ->
      if not !done_ then begin
        let s = state.(b) in
        let k = ref c.row_ptr.(s) in
        let stop = c.row_end.(s) in
        while (not !done_) && !k < stop do
          acc := !acc +. c.rates.(!k);
          if u < !acc then begin
            state.(b) <- c.cols.(!k);
            done_ := true
          end;
          incr k
        done
      end)
    world.components;
  if !done_ then close world state;
  !done_

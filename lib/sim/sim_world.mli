(** Shared discrete-event machinery for the Monte-Carlo simulators.

    A {e world} holds the per-basic-event components of the product process
    of Section III-C in the flat [Ctmc] layout (static events as two-state
    zero-rate chains whose initial distribution is the Bernoulli failure,
    dynamic events as their triggered CTMCs) together with a reusable
    gate-evaluation buffer. Both the crude simulator ({!Simulator}) and the
    rare-event importance-sampling engine ({!Rare_event}) run their trials
    on this state; neither ever builds the product state space.

    A world carries mutable scratch space, so parallel workers must each
    build their own (construction is cheap — it only aliases the component
    chains). *)

type component = {
  row_ptr : int array;
  row_end : int array;
  cols : int array;
  rates : float array;
      (** state [s] owns [cols]/[rates] entries
          [row_ptr.(s) .. row_end.(s) - 1] *)
  init_states : int array;
  init_weights : float array;
  failed : bool array;
  trigger_gate : int;  (** -1 when untriggered *)
  mode_on : bool array;
  partner : int array;
  is_static : bool;
  static_prob : float;
      (** Bernoulli failure probability of a static event; [0.] for dynamic
          events *)
}

type t

val make : Sdft.t -> t

val sd : t -> Sdft.t

val components : t -> component array

val n_components : t -> int

val sample_categorical : Sdft_util.Rng.t -> float array -> int
(** Index into a weight vector summing to 1 (the last entry absorbs any
    rounding slack). Draws exactly one uniform. *)

val sample_initial : t -> Sdft_util.Rng.t -> int array
(** Draw an (unclosed) initial local state per component, one uniform per
    component. Call {!close} before evaluating gates. *)

val close : t -> int array -> unit
(** Apply the trigger update closure in place: switch triggered events
    on/off until every trigger gate's failure status agrees with its
    events' modes. *)

val top_failed : t -> int array -> bool
(** Does the (consistent) state fail the top gate? *)

val total_rate : t -> int array -> float
(** Total rate of all enabled transitions — the exponential race rate of
    the next jump. [0.] when the state is final. *)

val apply_jump : t -> Sdft_util.Rng.t -> int array -> total:float -> bool
(** Pick the jumping transition proportionally to its rate (one uniform),
    apply it and the trigger closure. [false] on the numerical corner where
    rounding picked no transition; the state is then unchanged. *)

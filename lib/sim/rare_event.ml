module Rng = Sdft_util.Rng
module Kahan = Sdft_util.Kahan
module Metrics = Sdft_util.Metrics
module Trace = Sdft_util.Trace
module Parallel = Sdft_util.Parallel

type options = {
  trials : int;
  batch : int;
  check_batches : int;
  domains : int;
  seed : int;
  target_rel_error : float option;
  forcing : bool;
  max_forced_jumps : int;
  static_bias : float;
  static_bias_cap : float;
}

let default_options =
  {
    trials = 100_000;
    batch = 4096;
    check_batches = 8;
    domains = 1;
    seed = 42;
    target_rel_error = None;
    forcing = true;
    max_forced_jumps = 32;
    static_bias = 50.0;
    static_bias_cap = 0.5;
  }

let crude options = { options with forcing = false; static_bias = 1.0 }

type estimate = {
  estimate : float;
  variance : float;
  std_error : float;
  rel_error : float;
  trials : int;
  hits : int;
  mean_weight : float;
}

(* Per-observability-context instrument handles (physical-equality fast
   path on the default context — see Sdft_util.Obs). *)
type handles = {
  m_trials : Metrics.counter;
  m_hits : Metrics.counter;
  m_jumps : Metrics.counter;
  m_forced : Metrics.counter;
  m_span : Metrics.span;
  m_weight : Metrics.histogram;
}

let handles_in m =
  {
    m_trials = Metrics.counter_in m "sim.trials";
    m_hits = Metrics.counter_in m "sim.hits";
    m_jumps = Metrics.counter_in m "sim.jumps";
    m_forced = Metrics.counter_in m "sim.forced_jumps";
    m_span = Metrics.span_in m "sim.run";
    m_weight = Metrics.histogram_in m "sim.trial_weight";
  }

let default_handles = handles_in Metrics.default

let handles_of m =
  if m == Metrics.default then default_handles else handles_in m

(* Per-batch accumulators: plain floats summed with Kahan inside the batch;
   batches are merged in index order so the final totals are bit-identical
   no matter how many domains executed them. *)
type batch_result = {
  b_hits : int;
  b_sum : float; (* sum of weighted failure indicators *)
  b_sum2 : float; (* sum of their squares, for the variance *)
  b_weight : float; (* sum of likelihood weights over all trials *)
  b_jumps : int;
  b_forced : int;
}

(* One importance-sampling trial. Returns [(failed, weight)] where [weight]
   is the likelihood ratio dP/dQ of the sampled trajectory.

   Measure change Q:
   - static events with 0 < p < p' are flipped with the biased probability
     p' = min(cap, bias * p) instead of p (weight factor p/p' on the failure
     branch, (1-p)/(1-p') on the survival branch);
   - while fewer than [max_forced_jumps] jumps have fired, each inter-jump
     time of the exponential race (total rate L, remaining time r) is
     conditioned to land before the horizon — sampled from the truncated
     exponential, weight factor 1 - exp(-L r). This only removes
     trajectories whose remaining trace is jump-free before the horizon,
     and those cannot fail the (not yet failed) top, so the estimator stays
     unbiased; after the cap, times are drawn from the plain exponential
     again, restoring full support for long trajectories. *)
let run_trial world rng ~horizon ~opts ~jumps ~forced =
  let components = Sim_world.components world in
  let n = Array.length components in
  let log_w = ref 0.0 in
  let state = Array.make n 0 in
  let bias = opts.static_bias in
  Array.iteri
    (fun b (c : Sim_world.component) ->
      if c.is_static && bias > 1.0 then begin
        let p = c.static_prob in
        let p' = Float.min opts.static_bias_cap (bias *. p) in
        if p' > p then begin
          if Rng.float rng < p' then begin
            state.(b) <- 1;
            log_w := !log_w +. log (p /. p')
          end
          else begin
            state.(b) <- 0;
            log_w := !log_w +. log ((1.0 -. p) /. (1.0 -. p'))
          end
        end
        else
          state.(b) <- c.init_states.(Sim_world.sample_categorical rng c.init_weights)
      end
      else
        state.(b) <- c.init_states.(Sim_world.sample_categorical rng c.init_weights))
    components;
  Sim_world.close world state;
  let rec step now n_forced =
    if Sim_world.top_failed world state then (true, exp !log_w)
    else begin
      let total = Sim_world.total_rate world state in
      let remaining = horizon -. now in
      if total <= 0.0 || remaining <= 0.0 then (false, exp !log_w)
      else if opts.forcing && n_forced < opts.max_forced_jumps then begin
        let c = -.expm1 (-.total *. remaining) in
        if c <= 0.0 then (false, exp !log_w)
        else begin
          let dt = Rng.truncated_exponential rng total ~bound:remaining in
          log_w := !log_w +. log c;
          incr forced;
          incr jumps;
          if Sim_world.apply_jump world rng state ~total then
            step (now +. dt) (n_forced + 1)
          else (false, exp !log_w)
        end
      end
      else begin
        let dt = Rng.exponential rng total in
        let now = now +. dt in
        if now > horizon then (false, exp !log_w)
        else begin
          incr jumps;
          if Sim_world.apply_jump world rng state ~total then step now n_forced
          else (false, exp !log_w)
        end
      end
    end
  in
  step 0.0 0

let run_batch world rng ~horizon ~opts ~h ~size =
  let hits = ref 0 in
  let sum = Kahan.create () in
  let sum2 = Kahan.create () in
  let weight = Kahan.create () in
  let jumps = ref 0 in
  let forced = ref 0 in
  for _ = 1 to size do
    let failed, w = run_trial world rng ~horizon ~opts ~jumps ~forced in
    Kahan.add weight w;
    if failed then begin
      incr hits;
      (* Likelihood-weight spread of the hitting trials: a heavy upper tail
         here is the classic symptom of an over-aggressive measure change. *)
      Metrics.observe h.m_weight w;
      Kahan.add sum w;
      Kahan.add sum2 (w *. w)
    end
  done;
  {
    b_hits = !hits;
    b_sum = Kahan.total sum;
    b_sum2 = Kahan.total sum2;
    b_weight = Kahan.total weight;
    b_jumps = !jumps;
    b_forced = !forced;
  }

let estimate_of ~trials ~hits ~sum ~sum2 ~weight =
  let n = float_of_int trials in
  let est = sum /. n in
  let variance =
    if trials <= 1 then 0.0
    else Float.max 0.0 ((sum2 -. (n *. est *. est)) /. (n -. 1.0))
  in
  let std_error = sqrt (variance /. n) in
  let rel_error = if est > 0.0 then std_error /. est else infinity in
  {
    estimate = est;
    variance;
    std_error;
    rel_error;
    trials;
    hits;
    mean_weight = weight /. n;
  }

let run ?(options = default_options) ?(obs = Sdft_util.Obs.default) sd
    ~horizon =
  if options.trials <= 0 then
    invalid_arg "Rare_event: need at least one trial";
  if options.batch <= 0 then invalid_arg "Rare_event: batch must be positive";
  if options.static_bias_cap <= 0.0 || options.static_bias_cap >= 1.0 then
    invalid_arg "Rare_event: static_bias_cap must lie in (0, 1)";
  let t0 = Sdft_util.Timer.start () in
  let h = handles_of obs.Sdft_util.Obs.metrics in
  let sink = obs.Sdft_util.Obs.trace in
  Trace.with_span ~sink "sim.run"
    ~attrs:[ ("trials", Trace.Int options.trials); ("seed", Trace.Int options.seed) ]
  @@ fun () ->
  let n_batches = (options.trials + options.batch - 1) / options.batch in
  (* Streams are pre-split sequentially from the seed, one per batch, and
     batches are merged in index order below — so the estimate is
     bit-identical for any [domains]. *)
  let rngs = Rng.split_n (Rng.create options.seed) n_batches in
  let sizes =
    Array.init n_batches (fun i ->
        if i = n_batches - 1 then
          options.trials - (options.batch * (n_batches - 1))
        else options.batch)
  in
  let sum = Kahan.create () in
  let sum2 = Kahan.create () in
  let weight = Kahan.create () in
  let hits = ref 0 in
  let trials_done = ref 0 in
  let jumps = ref 0 in
  let forced = ref 0 in
  (* The stopping rule is evaluated every [check_batches] batches — a wave
     size fixed by the options, never by the domain count, so early
     stopping is deterministic too. *)
  let stride = max 1 options.check_batches in
  let next = ref 0 in
  let stop = ref false in
  while (not !stop) && !next < n_batches do
    let hi = min n_batches (!next + stride) in
    let work = Array.init (hi - !next) (fun k -> !next + k) in
    let results =
      Parallel.map_init ~domains:options.domains
        (fun () -> Sim_world.make sd)
        (fun world i ->
          run_batch world rngs.(i) ~horizon ~opts:options ~h ~size:sizes.(i))
        work
    in
    Array.iteri
      (fun k b ->
        hits := !hits + b.b_hits;
        Kahan.add sum b.b_sum;
        Kahan.add sum2 b.b_sum2;
        Kahan.add weight b.b_weight;
        trials_done := !trials_done + sizes.(work.(k));
        jumps := !jumps + b.b_jumps;
        forced := !forced + b.b_forced)
      results;
    next := hi;
    match options.target_rel_error with
    | Some target ->
      let e =
        estimate_of ~trials:!trials_done ~hits:!hits ~sum:(Kahan.total sum)
          ~sum2:(Kahan.total sum2) ~weight:(Kahan.total weight)
      in
      if e.rel_error <= target then stop := true
    | None -> ()
  done;
  Metrics.add h.m_trials !trials_done;
  Metrics.add h.m_hits !hits;
  Metrics.add h.m_jumps !jumps;
  Metrics.add h.m_forced !forced;
  Metrics.record h.m_span (Sdft_util.Timer.elapsed_s t0);
  Trace.add_attr ~sink "hits" (Trace.Int !hits);
  estimate_of ~trials:!trials_done ~hits:!hits ~sum:(Kahan.total sum)
    ~sum2:(Kahan.total sum2) ~weight:(Kahan.total weight)

let z95 = 1.959963984540054

let z99 = 2.5758293035489004

let confidence ?(z = z95) e =
  let half = z *. e.std_error in
  (Float.max 0.0 (e.estimate -. half), Float.min 1.0 (e.estimate +. half))

let variance_reduction e =
  (* Trial-for-trial variance ratio against crude Monte-Carlo estimating
     the same probability: p(1-p) per crude trial vs the measured
     per-trial variance of the weighted estimator. *)
  if e.variance > 0.0 && e.estimate > 0.0 then
    Some (e.estimate *. (1.0 -. e.estimate) /. e.variance)
  else None

let verify ?options ?(z = z99) ?obs sd ~horizon result =
  let e = run ?options ?obs sd ~horizon in
  (e, Sdft_analysis.verify_sim result ~sim_ci:(confidence ~z e))
